// Package repro holds the top-level benchmark suite: one testing.B benchmark
// per table and figure of the paper's evaluation (§7). Each benchmark
// exercises the operation its table measures, at a scale suited to `go test
// -bench`; the full table generators (sweeps, baselines, formatted rows)
// live in internal/bench and the aspen-bench command.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/csr"
	"repro/internal/ctree"
	"repro/internal/encoding"
	"repro/internal/ligra"
	"repro/internal/llama"
	"repro/internal/rmat"
	"repro/internal/stinger"
	"repro/internal/worklist"
)

// benchScale/benchEdges size the shared benchmark graph (~300k directed
// edges after symmetrization).
const (
	benchScale = 14
	benchEdges = 150_000
)

func benchAdjacency() [][]uint32 {
	return rmat.NewGenerator(benchScale, 1).Adjacency(benchEdges)
}

func benchGraph(b *testing.B, p ctree.Params) aspen.Graph {
	b.Helper()
	return aspen.FromAdjacency(p, benchAdjacency())
}

// BenchmarkTable01GraphStats measures snapshot construction and the O(1)
// statistics queries backing Table 1.
func BenchmarkTable01GraphStats(b *testing.B) {
	adj := benchAdjacency()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := aspen.FromAdjacency(ctree.DefaultParams(), adj)
		_ = g.NumVertices()
		_ = g.NumEdges()
	}
}

// BenchmarkTable02MemoryUsage builds each Aspen memory format and reports
// bytes/edge (Table 2).
func BenchmarkTable02MemoryUsage(b *testing.B) {
	adj := benchAdjacency()
	for _, f := range []struct {
		name string
		p    ctree.Params
	}{
		{"Uncompressed", ctree.PlainParams()},
		{"NoDE", ctree.Params{B: ctree.DefaultB, Codec: encoding.Raw}},
		{"DE", ctree.DefaultParams()},
	} {
		b.Run(f.name, func(b *testing.B) {
			var g aspen.Graph
			for i := 0; i < b.N; i++ {
				g = aspen.FromAdjacency(f.p, adj)
			}
			s := g.Stats()
			b.ReportMetric(float64(s.Edge.ChunkBytes)/float64(g.NumEdges()), "chunkB/edge")
		})
	}
}

// BenchmarkTable03BFS/BC/MIS/TwoHop/LocalCluster are the algorithm rows of
// Tables 3-4 over the Aspen graph with flat snapshots.
func BenchmarkTable03BFS(b *testing.B) {
	fs := aspen.BuildFlatSnapshot(benchGraph(b, ctree.DefaultParams()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algos.BFS(fs, 0, false)
	}
}

func BenchmarkTable03BC(b *testing.B) {
	fs := aspen.BuildFlatSnapshot(benchGraph(b, ctree.DefaultParams()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algos.BC(fs, 0, false)
	}
}

func BenchmarkTable03MIS(b *testing.B) {
	fs := aspen.BuildFlatSnapshot(benchGraph(b, ctree.DefaultParams()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algos.MIS(fs, 42)
	}
}

func BenchmarkTable03TwoHop(b *testing.B) {
	g := benchGraph(b, ctree.DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algos.TwoHop(g, uint32(i)%uint32(g.Order()))
	}
}

func BenchmarkTable03LocalCluster(b *testing.B) {
	g := benchGraph(b, ctree.DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algos.LocalCluster(g, uint32(i)%uint32(g.Order()), 1e-6, 10)
	}
}

// BenchmarkTable05ChunkSize sweeps the chunking parameter b (Table 5).
func BenchmarkTable05ChunkSize(b *testing.B) {
	adj := benchAdjacency()
	for _, exp := range []int{2, 5, 8, 11} {
		b.Run(fmt.Sprintf("b=2^%d", exp), func(b *testing.B) {
			p := ctree.DefaultParams()
			p.B = 1 << exp
			g := aspen.FromAdjacency(p, adj)
			fs := aspen.BuildFlatSnapshot(g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algos.BFS(fs, 0, false)
			}
		})
	}
}

// BenchmarkTable06FlatSnapshot measures snapshot flattening (Table 6's FS
// column) and BFS with/without it.
func BenchmarkTable06FlatSnapshot(b *testing.B) {
	g := benchGraph(b, ctree.DefaultParams())
	b.Run("BuildFS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			aspen.BuildFlatSnapshot(g)
		}
	})
	b.Run("BFSWithoutFS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algos.BFS(g, 0, false)
		}
	})
	b.Run("BFSWithFS", func(b *testing.B) {
		fs := aspen.BuildFlatSnapshot(g)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			algos.BFS(fs, 0, false)
		}
	})
}

// BenchmarkTable07SingleUpdates measures the sequential single-edge update
// path (Table 7's update stream).
func BenchmarkTable07SingleUpdates(b *testing.B) {
	vg := aspen.NewVersionedGraph(benchGraph(b, ctree.DefaultParams()))
	gen := rmat.NewGenerator(benchScale, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := gen.Edge(uint64(i))
		vg.InsertEdges(aspen.MakeUndirected([]aspen.Edge{e}))
	}
}

// BenchmarkTable08BatchInsert measures batch-insert throughput by batch size
// (Table 8); edges/sec is the reported metric.
func BenchmarkTable08BatchInsert(b *testing.B) {
	g := benchGraph(b, ctree.DefaultParams())
	gen := rmat.NewGenerator(benchScale, 5)
	for _, size := range []int{10, 1_000, 100_000} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			batch := gen.Edges(0, uint64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.InsertEdges(batch)
			}
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
		})
	}
}

// BenchmarkFigure05BatchDelete is the deletion series of Figure 5.
func BenchmarkFigure05BatchDelete(b *testing.B) {
	base := benchGraph(b, ctree.DefaultParams())
	gen := rmat.NewGenerator(benchScale, 5)
	for _, size := range []int{10, 1_000, 100_000} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			batch := gen.Edges(0, uint64(size))
			g := base.InsertEdges(batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.DeleteEdges(batch)
			}
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
		})
	}
}

// BenchmarkInsertEdges measures the batch-insert hot path (sort → group →
// build → fused MultiInsert) directly, reporting edges/sec and allocs/op.
// This is the headline number for the zero-allocation chunk pipeline.
func BenchmarkInsertEdges(b *testing.B) {
	g := benchGraph(b, ctree.DefaultParams())
	gen := rmat.NewGenerator(benchScale, 21)
	for _, size := range []int{100, 10_000, 1_000_000} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			batch := gen.Edges(0, uint64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.InsertEdges(batch)
			}
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
		})
	}
}

// BenchmarkEdgeMap measures one EdgeMap relaxation round over a mid-size
// frontier (the traversal primitive under BFS/BC), reporting allocs/op.
func BenchmarkEdgeMap(b *testing.B) {
	g := benchGraph(b, ctree.DefaultParams())
	n := g.Order()
	frontier := make([]uint32, 0, n/16)
	for v := 0; v < n; v += 16 {
		frontier = append(frontier, uint32(v))
	}
	f := func(src, dst uint32) bool { return true }
	c := func(v uint32) bool { return true }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := ligra.FromSparse(n, frontier)
		ligra.EdgeMap(g, u, f, c, ligra.EdgeMapOpts{})
	}
}

// BenchmarkTable09Memory builds each system and reports bytes/edge (Table 9).
func BenchmarkTable09Memory(b *testing.B) {
	adj := benchAdjacency()
	var m uint64
	for _, nbrs := range adj {
		m += uint64(len(nbrs))
	}
	b.Run("Stinger", func(b *testing.B) {
		var g *stinger.Graph
		for i := 0; i < b.N; i++ {
			g = stinger.New(len(adj))
			for u, nbrs := range adj {
				for _, v := range nbrs {
					g.InsertEdge(uint32(u), v)
				}
			}
		}
		b.ReportMetric(float64(g.MemoryBytes())/float64(m), "B/edge")
	})
	b.Run("LLAMA", func(b *testing.B) {
		var g *llama.Graph
		for i := 0; i < b.N; i++ {
			g = llama.FromAdjacency(adj)
		}
		b.ReportMetric(float64(g.MemoryBytes())/float64(m), "B/edge")
	})
	b.Run("LigraPlus", func(b *testing.B) {
		var g *csr.Compressed
		for i := 0; i < b.N; i++ {
			g = csr.CompressAdjacency(adj)
		}
		b.ReportMetric(float64(g.MemoryBytes())/float64(m), "B/edge")
	})
}

// BenchmarkTable10EmptyGraphBatch compares batch inserts into empty graphs:
// the Stinger analogue versus Aspen (Table 10).
func BenchmarkTable10EmptyGraphBatch(b *testing.B) {
	gen := rmat.NewGenerator(16, 7)
	const size = 10_000
	batch := gen.Edges(0, size)
	b.Run("Stinger", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := stinger.New(1 << 16)
			st.InsertBatch(batch)
		}
		b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
	})
	b.Run("Aspen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			aspen.NewGraph(ctree.DefaultParams()).InsertEdges(batch)
		}
		b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
	})
}

// BenchmarkTable11BFSNoDirectionOpt compares BFS without direction
// optimization across streaming systems (Table 11).
func BenchmarkTable11BFSNoDirectionOpt(b *testing.B) {
	adj := benchAdjacency()
	b.Run("Stinger", func(b *testing.B) {
		st := stinger.New(len(adj))
		for u, nbrs := range adj {
			for _, v := range nbrs {
				st.InsertEdge(uint32(u), v)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			algos.BFS(st, 0, true)
		}
	})
	b.Run("LLAMA", func(b *testing.B) {
		g := llama.FromAdjacency(adj)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			algos.BFS(g, 0, true)
		}
	})
	b.Run("Aspen", func(b *testing.B) {
		fs := aspen.BuildFlatSnapshot(aspen.FromAdjacency(ctree.DefaultParams(), adj))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			algos.BFS(fs, 0, true)
		}
	})
}

// BenchmarkTable12StaticEngines compares BFS across the static baselines and
// Aspen (Table 12).
func BenchmarkTable12StaticEngines(b *testing.B) {
	adj := benchAdjacency()
	b.Run("GAP", func(b *testing.B) {
		g := csr.FromAdjacency(adj)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			algos.BFS(g, 0, false)
		}
	})
	b.Run("Galois", func(b *testing.B) {
		g := csr.FromAdjacency(adj)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			worklist.BFSAsync(g, 0)
		}
	})
	b.Run("LigraPlus", func(b *testing.B) {
		g := csr.CompressAdjacency(adj)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			algos.BFS(g, 0, false)
		}
	})
	b.Run("Aspen", func(b *testing.B) {
		fs := aspen.BuildFlatSnapshot(aspen.FromAdjacency(ctree.DefaultParams(), adj))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			algos.BFS(fs, 0, false)
		}
	})
}

// BenchmarkTable13UncompressedTrees compares BFS over plain purely-functional
// trees versus C-trees (Table 13).
func BenchmarkTable13UncompressedTrees(b *testing.B) {
	adj := benchAdjacency()
	b.Run("Uncompressed", func(b *testing.B) {
		fs := aspen.BuildFlatSnapshot(aspen.FromAdjacency(ctree.PlainParams(), adj))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			algos.BFS(fs, 0, false)
		}
	})
	b.Run("CTreeDE", func(b *testing.B) {
		fs := aspen.BuildFlatSnapshot(aspen.FromAdjacency(ctree.DefaultParams(), adj))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			algos.BFS(fs, 0, false)
		}
	})
}

// BenchmarkTable14LocalAlgorithms compares the local queries between the
// Ligra+ baseline and Aspen (Tables 14-15's local rows).
func BenchmarkTable14LocalAlgorithms(b *testing.B) {
	adj := benchAdjacency()
	lp := csr.CompressAdjacency(adj)
	g := aspen.FromAdjacency(ctree.DefaultParams(), adj)
	b.Run("LigraPlus2hop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algos.TwoHop(lp, uint32(i)%uint32(lp.Order()))
		}
	})
	b.Run("Aspen2hop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algos.TwoHop(g, uint32(i)%uint32(g.Order()))
		}
	})
	b.Run("LigraPlusLocalCluster", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algos.LocalCluster(lp, uint32(i)%uint32(lp.Order()), 1e-6, 10)
		}
	})
	b.Run("AspenLocalCluster", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algos.LocalCluster(g, uint32(i)%uint32(g.Order()), 1e-6, 10)
		}
	})
}
