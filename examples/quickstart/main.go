// Quickstart: build a small graph, update it functionally, take a snapshot,
// and run BFS — the minimal tour of the Aspen public API.
package main

import (
	"fmt"

	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/ctree"
)

func main() {
	// An Aspen graph is a value: every update returns a new immutable
	// snapshot sharing structure with the old one.
	g := aspen.NewGraph(ctree.DefaultParams())
	g = g.InsertEdges(aspen.MakeUndirected([]aspen.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0},
		{Src: 2, Dst: 4},
	}))
	fmt.Printf("graph: %d vertices, %d directed edges\n", g.NumVertices(), g.NumEdges())

	// The versioned graph coordinates a writer with concurrent readers.
	vg := aspen.NewVersionedGraph(g)
	vg.InsertEdges(aspen.MakeUndirected([]aspen.Edge{{Src: 4, Dst: 5}}))

	// Readers acquire a snapshot; updates never disturb it.
	v := vg.Acquire()
	defer vg.Release(v)

	// Global algorithms use a flat snapshot for O(1) vertex access.
	fs := aspen.BuildFlatSnapshot(v.Graph)
	res := algos.BFS(fs, 0, false)
	fmt.Printf("BFS from 0 reached %d vertices in %d rounds\n", res.Visited, res.Rounds)
	dist := res.Distances()
	for _, u := range []uint32{1, 4, 5} {
		fmt.Printf("  dist(0, %d) = %d\n", u, dist[u])
	}

	// Deletions are functional too.
	g2 := v.Graph.DeleteEdges(aspen.MakeUndirected([]aspen.Edge{{Src: 2, Dst: 4}}))
	fmt.Printf("after deleting {2,4}: %d edges (snapshot still has %d)\n",
		g2.NumEdges(), v.Graph.NumEdges())
}
