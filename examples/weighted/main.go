// Weighted: the weighted-graph extension (the paper's stated future work) —
// maintain a purely-functional weighted graph under streaming weight
// updates and answer single-source shortest-path queries on snapshots.
package main

import (
	"container/heap"
	"fmt"

	"repro/internal/aspen"
)

// pqItem is a Dijkstra priority-queue entry.
type pqItem struct {
	v    uint32
	dist float64
}

type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any          { old := *p; it := old[len(old)-1]; *p = old[:len(old)-1]; return it }

// dijkstra computes shortest path distances from src on a weighted snapshot.
func dijkstra(g aspen.WeightedGraph, src uint32) map[uint32]float64 {
	dist := map[uint32]float64{src: 0}
	h := &pq{{v: src}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.dist > dist[it.v] {
			continue
		}
		g.ForEachNeighborWeight(it.v, func(u uint32, w float32) bool {
			nd := it.dist + float64(w)
			if d, ok := dist[u]; !ok || nd < d {
				dist[u] = nd
				heap.Push(h, pqItem{v: u, dist: nd})
			}
			return true
		})
	}
	return dist
}

func main() {
	// A small road-network-like weighted graph.
	g := aspen.NewWeightedGraph()
	roads := []aspen.WeightedEdge{
		{Src: 0, Dst: 1, Weight: 4}, {Src: 1, Dst: 0, Weight: 4},
		{Src: 1, Dst: 2, Weight: 3}, {Src: 2, Dst: 1, Weight: 3},
		{Src: 0, Dst: 3, Weight: 10}, {Src: 3, Dst: 0, Weight: 10},
		{Src: 2, Dst: 3, Weight: 2}, {Src: 3, Dst: 2, Weight: 2},
	}
	g = g.InsertEdges(roads)
	fmt.Printf("network: %d nodes, %d directed road segments, total length %.0f\n",
		g.NumVertices(), g.NumEdges(), g.TotalWeight())

	before := dijkstra(g, 0)
	fmt.Printf("shortest 0 -> 3 before congestion: %.0f (via 1 and 2)\n", before[3])

	// A traffic update re-weights segment 1<->2; snapshots are persistent,
	// so the old distances remain queryable.
	g2 := g.InsertEdges([]aspen.WeightedEdge{
		{Src: 1, Dst: 2, Weight: 20}, {Src: 2, Dst: 1, Weight: 20},
	})
	after := dijkstra(g2, 0)
	fmt.Printf("shortest 0 -> 3 after congestion:  %.0f (direct road wins)\n", after[3])
	fmt.Printf("old snapshot still answers:         %.0f\n", dijkstra(g, 0)[3])
}
