// Weighted: the weighted-graph extension (the paper's stated future work) —
// maintain a purely-functional weighted graph whose edge weights live
// inside the compressed C-tree chunks, stream weight updates against it,
// and answer single-source shortest-path queries on snapshots with the
// parallel SSSP from the algorithm suite.
package main

import (
	"fmt"

	"repro/internal/algos"
	"repro/internal/aspen"
)

func main() {
	// A small road-network-like weighted graph. Roads are symmetric, so
	// each segment is inserted in both directions with the same weight.
	g := aspen.NewWeightedGraph().InsertEdges(aspen.MakeUndirectedWeighted([]aspen.WeightedEdge{
		{Src: 0, Dst: 1, Weight: 4},
		{Src: 1, Dst: 2, Weight: 3},
		{Src: 0, Dst: 3, Weight: 10},
		{Src: 2, Dst: 3, Weight: 2},
	}))
	fmt.Printf("network: %d nodes, %d directed road segments, total length %.0f\n",
		g.NumVertices(), g.NumEdges(), g.TotalWeight())
	s := g.Stats()
	fmt.Printf("compressed weighted adjacency: %d chunk bytes (ids + weights interleaved)\n",
		s.Edge.ChunkBytes)

	before := algos.SSSP(g, 0)
	fmt.Printf("shortest 0 -> 3 before congestion: %.0f (via 1 and 2)\n", before[3])

	// A traffic update re-weights segment 1<->2 in place (inserting an
	// existing edge overwrites its weight); snapshots are persistent, so
	// the old distances remain queryable.
	g2 := g.InsertEdges(aspen.MakeUndirectedWeighted([]aspen.WeightedEdge{
		{Src: 1, Dst: 2, Weight: 20},
	}))
	after := algos.SSSP(g2, 0)
	fmt.Printf("shortest 0 -> 3 after congestion:  %.0f (direct road wins)\n", after[3])
	fmt.Printf("old snapshot still answers:         %.0f\n", algos.SSSP(g, 0)[3])
}
