// Connectivity: incremental graph analytics over snapshots — track how the
// connected-component structure and local clusters of an evolving network
// change as edges stream in, using one immutable version per analysis round.
package main

import (
	"fmt"

	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/rmat"
)

func countComponents(labels []uint32, g aspen.Graph) int {
	seen := map[uint32]bool{}
	for u := 0; u < g.Order(); u++ {
		if g.HasVertex(uint32(u)) {
			seen[labels[u]] = true
		}
	}
	return len(seen)
}

func main() {
	gen := rmat.NewGenerator(12, 7)
	vg := aspen.NewVersionedGraph(aspen.NewGraph(ctree.DefaultParams()))

	// Stream edges in rounds; after each round analyze a snapshot. Because
	// versions are persistent, all rounds could equally be analyzed at the
	// end, or concurrently.
	const rounds = 5
	const perRound = 20_000
	for round := 1; round <= rounds; round++ {
		lo := uint64((round - 1) * perRound)
		vg.InsertEdges(aspen.MakeUndirected(gen.Edges(lo, lo+perRound)))

		v := vg.Acquire()
		g := v.Graph
		fs := aspen.BuildFlatSnapshot(g)
		labels := algos.ConnectedComponents(fs)
		comps := countComponents(labels, g)
		fmt.Printf("round %d: %7d edges, %5d vertices, %4d components",
			round, g.NumEdges(), g.NumVertices(), comps)

		// Local clustering around the highest-degree vertex.
		hub := uint32(0)
		for u := 0; u < g.Order(); u++ {
			if g.Degree(uint32(u)) > g.Degree(hub) {
				hub = uint32(u)
			}
		}
		lc := algos.LocalCluster(g, hub, 1e-6, 10)
		fmt.Printf(" | hub %d: cluster size %d, conductance %.3f\n",
			hub, len(lc.Cluster), lc.Conductance)
		vg.Release(v)
	}

	// Demonstrate deletion: removing the hub splits its neighborhood.
	v := vg.Acquire()
	g := v.Graph
	hub := uint32(0)
	for u := 0; u < g.Order(); u++ {
		if g.Degree(uint32(u)) > g.Degree(hub) {
			hub = uint32(u)
		}
	}
	before := countComponents(algos.ConnectedComponents(aspen.BuildFlatSnapshot(g)), g)
	g2 := g.DeleteVertices([]uint32{hub})
	after := countComponents(algos.ConnectedComponents(aspen.BuildFlatSnapshot(g2)), g2)
	fmt.Printf("deleting hub %d: components %d -> %d\n", hub, before, after)
	vg.Release(v)
}
