// Streaming: the paper's headline scenario (§7.3) — a writer ingests a live
// stream of edge updates while readers run queries on consistent snapshots,
// with neither blocking the other. A social-network-like rMAT stream plays
// the role of the real-time feed.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/rmat"
)

func main() {
	const scale = 13
	gen := rmat.NewGenerator(scale, 42)

	// Bootstrap with an initial graph.
	g := aspen.NewGraph(ctree.DefaultParams())
	g = g.InsertEdges(aspen.MakeUndirected(gen.Edges(0, 50_000)))
	vg := aspen.NewVersionedGraph(g)
	fmt.Printf("initial graph: %d vertices, %d edges\n",
		g.NumVertices(), g.NumEdges())

	var (
		wg        sync.WaitGroup
		done      atomic.Bool
		batches   atomic.Int64
		queries   atomic.Int64
		queryTime atomic.Int64
	)

	// Writer: ingest batches of 10k updates for one second.
	wg.Add(1)
	go func() {
		defer wg.Done()
		pos := uint64(50_000)
		deadline := time.Now().Add(1 * time.Second)
		for time.Now().Before(deadline) {
			batch := aspen.MakeUndirected(gen.Edges(pos, pos+10_000))
			vg.InsertEdges(batch)
			pos += 10_000
			batches.Add(1)
		}
		done.Store(true)
	}()

	// Readers: run BFS queries on whatever version is current.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !done.Load() {
				v := vg.Acquire()
				start := time.Now()
				res := algos.BFS(v.Graph, uint32(r), false)
				queryTime.Add(int64(time.Since(start)))
				queries.Add(1)
				_ = res
				vg.Release(v)
			}
		}(r)
	}
	wg.Wait()

	final := vg.Acquire()
	defer vg.Release(final)
	fmt.Printf("ingested %d batches (%d edges) concurrently with %d BFS queries\n",
		batches.Load(), final.Graph.NumEdges(), queries.Load())
	if q := queries.Load(); q > 0 {
		fmt.Printf("average BFS latency while streaming: %v\n",
			time.Duration(queryTime.Load()/q))
	}
	fmt.Printf("final version stamp: %d (strictly serializable history)\n", vg.Current())
}
