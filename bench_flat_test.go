package repro

import (
	"fmt"
	"testing"

	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/parallel"
)

// PR-4 benchmarks: the §5.1 flat view as the default fast path for global
// kernels. BenchmarkFlatBuild shows the parallel build scaling with
// workers; BenchmarkFlatKernels records the flat-vs-tree gap CI and
// BENCHMARKS.md track (the acceptance target is flat ≥ 15% faster on BFS,
// CC and SSSP over the rMAT benchmark graphs).

// BenchmarkFlatBuild sweeps the worker count of the per-worker-range
// parallel flat-snapshot build.
func BenchmarkFlatBuild(b *testing.B) {
	g := benchGraph(b, ctree.DefaultParams())
	sweep := []int{1}
	for _, p := range []int{2, 4, parallel.Procs} {
		if p <= parallel.Procs && p > sweep[len(sweep)-1] {
			sweep = append(sweep, p)
		}
	}
	for _, procs := range sweep {
		b.Run(fmt.Sprintf("workers=%d", procs), func(b *testing.B) {
			old := parallel.Procs
			parallel.Procs = procs
			defer func() { parallel.Procs = old }()
			// No ReportAllocs: the parallel build's allocation count scales
			// with the worker goroutines, which would make an allocs gate
			// machine-dependent. Wall time is the metric here.
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				aspen.BuildFlatSnapshot(g)
			}
		})
	}
}

// BenchmarkFlatWeightedBuild is the weighted analogue of BenchmarkFlatBuild
// at full parallelism.
func BenchmarkFlatWeightedBuild(b *testing.B) {
	g := benchWeightedGraph(ctree.DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aspen.BuildFlatWeightedSnapshot(g)
	}
}

// BenchmarkFlatKernels runs each global kernel against the tree snapshot
// and the flat view of the same rMAT graph.
func BenchmarkFlatKernels(b *testing.B) {
	g := benchGraph(b, ctree.DefaultParams())
	fs := aspen.BuildFlatSnapshot(g)
	wg := benchWeightedGraph(ctree.DefaultParams())
	fw := aspen.BuildFlatWeightedSnapshot(wg)

	b.Run("bfs-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algos.BFS(g, 0, false)
		}
	})
	b.Run("bfs-flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algos.BFS(fs, 0, false)
		}
	})
	b.Run("cc-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algos.ConnectedComponents(g)
		}
	})
	b.Run("cc-flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algos.ConnectedComponents(fs)
		}
	})
	b.Run("sssp-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algos.SSSP(wg, 0)
		}
	})
	b.Run("sssp-flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algos.SSSP(fw, 0)
		}
	})
}
