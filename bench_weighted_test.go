package repro

import (
	"fmt"
	"testing"

	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/xhash"
)

// Weighted-workload benchmarks for the generic-payload C-tree stack:
// batch ingest throughput, memory footprint per weighted edge, and SSSP
// over compressed weighted snapshots.

// benchWeightedBatch returns the symmetrized weighted edge batch of the
// shared rMAT benchmark graph.
func benchWeightedBatch() []aspen.WeightedEdge {
	adj := benchAdjacency()
	var batch []aspen.WeightedEdge
	for u, nbrs := range adj {
		for _, v := range nbrs {
			w := 0.5 + float32(xhash.Mix32(uint32(u)^v*0x9e3779b9)%1000)/100
			batch = append(batch, aspen.WeightedEdge{Src: uint32(u), Dst: v, Weight: w})
		}
	}
	return batch
}

func benchWeightedGraph(p ctree.Params) aspen.WeightedGraph {
	return aspen.NewWeightedGraphWith(p).InsertEdges(benchWeightedBatch())
}

// BenchmarkWeightedInsertEdges measures weighted batch ingest into a
// populated compressed graph at several batch sizes (the weighted analogue
// of BenchmarkInsertEdges).
func BenchmarkWeightedInsertEdges(b *testing.B) {
	base := benchWeightedGraph(ctree.DefaultParams())
	all := benchWeightedBatch()
	for _, size := range []int{100, 10_000} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			batch := all[:size]
			// Shift weights so every update is a real overwrite.
			shifted := make([]aspen.WeightedEdge, len(batch))
			for i, e := range batch {
				shifted[i] = aspen.WeightedEdge{Src: e.Src, Dst: e.Dst, Weight: e.Weight + 1}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base.InsertEdges(shifted)
			}
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
		})
	}
}

// BenchmarkWeightedIngestEmpty measures building a weighted graph from
// scratch in one batch, compressed versus plain trees.
func BenchmarkWeightedIngestEmpty(b *testing.B) {
	batch := benchWeightedBatch()
	for _, f := range []struct {
		name string
		p    ctree.Params
	}{
		{"DE", ctree.DefaultParams()},
		{"Plain", ctree.PlainParams()},
	} {
		b.Run(f.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				aspen.NewWeightedGraphWith(f.p).InsertEdges(batch)
			}
			b.ReportMetric(float64(len(batch))*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
		})
	}
}

// BenchmarkWeightedMemory reports weighted chunk bytes per edge for the
// compressed formats (the weighted column missing from Table 2; the plain
// format stores weights in tree nodes and reports 0 chunk bytes).
func BenchmarkWeightedMemory(b *testing.B) {
	batch := benchWeightedBatch()
	for _, f := range []struct {
		name string
		p    ctree.Params
	}{
		{"DE", ctree.DefaultParams()},
		{"NoDE", ctree.Params{B: ctree.DefaultB, Codec: 1}},
	} {
		b.Run(f.name, func(b *testing.B) {
			var g aspen.WeightedGraph
			for i := 0; i < b.N; i++ {
				g = aspen.NewWeightedGraphWith(f.p).InsertEdges(batch)
			}
			s := g.Stats()
			b.ReportMetric(float64(s.Edge.ChunkBytes)/float64(g.NumEdges()), "chunkB/edge")
		})
	}
}

// BenchmarkSSSP runs Bellman-Ford over the weighted EdgeMap on a compressed
// weighted snapshot, with the sequential Dijkstra as the reference row.
func BenchmarkSSSP(b *testing.B) {
	g := benchWeightedGraph(ctree.DefaultParams())
	b.Run("BellmanFordEdgeMap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			algos.SSSP(g, 0)
		}
	})
	b.Run("DijkstraRef", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algos.DijkstraRef(g, 0)
		}
	})
}
