// Command aspen-graph is a small toolbox over the library: generate
// synthetic graphs, convert between formats, print statistics, and run a
// single algorithm over a graph file. Examples:
//
//	aspen-graph gen -scale 16 -edges 600000 -o graph.adj
//	aspen-graph stats graph.adj
//	aspen-graph bfs -src 0 graph.adj
//	aspen-graph convert -binary graph.adj graph.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/graphio"
	"repro/internal/rmat"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	case "bfs":
		cmdBFS(os.Args[2:])
	case "convert":
		cmdConvert(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: aspen-graph {gen|stats|bfs|convert} [flags] [file...]")
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "aspen-graph:", err)
	os.Exit(1)
}

func load(path string) [][]uint32 {
	f, err := os.Open(path)
	if err != nil {
		die(err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		adj, err := graphio.ReadBinary(f)
		if err != nil {
			die(err)
		}
		return adj
	}
	adj, err := graphio.ReadAdjacency(f)
	if err != nil {
		die(err)
	}
	return adj
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	scale := fs.Int("scale", 14, "log2 of the vertex count")
	edges := fs.Uint64("edges", 100_000, "rMAT samples before symmetrization")
	seed := fs.Uint64("seed", 1, "generator seed")
	out := fs.String("o", "", "output file (.adj text or .bin binary)")
	fs.Parse(args)
	adj := rmat.NewGenerator(*scale, *seed).Adjacency(*edges)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		defer f.Close()
		w = f
	}
	var err error
	if strings.HasSuffix(*out, ".bin") {
		err = graphio.WriteBinary(w, adj)
	} else {
		err = graphio.WriteAdjacency(w, adj)
	}
	if err != nil {
		die(err)
	}
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	adj := load(fs.Arg(0))
	g := aspen.FromAdjacency(ctree.DefaultParams(), adj)
	s := g.Stats()
	fmt.Printf("vertices:       %d\n", g.NumVertices())
	fmt.Printf("directed edges: %d\n", g.NumEdges())
	fmt.Printf("avg degree:     %.2f\n", float64(g.NumEdges())/float64(g.NumVertices()))
	fmt.Printf("edge-tree heads:%d\n", s.Edge.Nodes)
	fmt.Printf("chunk bytes:    %d (%.2f bytes/edge)\n", s.Edge.ChunkBytes,
		float64(s.Edge.ChunkBytes)/float64(g.NumEdges()))
}

func cmdBFS(args []string) {
	fs := flag.NewFlagSet("bfs", flag.ExitOnError)
	src := fs.Uint("src", 0, "source vertex")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	adj := load(fs.Arg(0))
	g := aspen.FromAdjacency(ctree.DefaultParams(), adj)
	snap := aspen.BuildFlatSnapshot(g)
	res := algos.BFS(snap, uint32(*src), false)
	fmt.Printf("reached %d of %d vertices in %d rounds\n",
		res.Visited, g.NumVertices(), res.Rounds)
}

func cmdConvert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	binary := fs.Bool("binary", false, "write binary output")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	adj := load(fs.Arg(0))
	f, err := os.Create(fs.Arg(1))
	if err != nil {
		die(err)
	}
	defer f.Close()
	if *binary || strings.HasSuffix(fs.Arg(1), ".bin") {
		err = graphio.WriteBinary(f, adj)
	} else {
		err = graphio.WriteAdjacency(f, adj)
	}
	if err != nil {
		die(err)
	}
}
