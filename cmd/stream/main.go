// Command stream reproduces the paper's §7.8 experiment on the live-stream
// engine: N reader goroutines issue analytics queries (BFS/CC/SSSP) against
// pinned snapshots while a single writer sustains batched edge inserts and
// deletes, reporting update throughput and p50/p95/p99 commit and query
// latencies. Examples:
//
//	stream -scale 17 -init 1000000 -batch 5000 -readers 1,4,8 -duration 5s
//	stream -weighted -algos bfs,sssp -readers 4
//	stream -quick -json BENCH_pr3_stream.json -merge bench_snap.json
//
// With -shards the driver instead runs the PR-5 sharded-ingest sweep
// (shard counts × reader counts × saturated, plus paced when -interval is
// set), comparing multi-writer clusters against the single-engine
// baseline (shard count 1):
//
//	stream -scale 16 -init 500000 -shards 1,2,4 -readers 1,4 -interval 20ms
//	stream -quick -shards 2 -partition hash -priority 64
//
// With -json the results are written as a BENCH_*.json document; -merge
// folds the "benchmarks" array of an existing snapshot (produced with
// `cmd/benchdiff -out`) into the same file so one document carries both
// the §7.8 reproduction and the CI-gated benchmark metrics.
//
// -obs-addr mounts the observability plane for the whole process:
// Prometheus-text /metrics for the current run's engine (or sharded
// cluster, or remote client), JSON /statusz with the commit stage
// breakdown and slow-commit traces, /healthz, and /debug/pprof.
// -trace-slow <dur> additionally captures every commit slower than
// <dur> into a bounded ring and dumps it (per-stage: enqueue, coalesce,
// wal_append, fsync, apply, flat_patch, ack) after each run:
//
//	stream -quick -obs-addr 127.0.0.1:9090 -trace-slow 2ms -duration 30s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/ligra"
	"repro/internal/rmat"
	"repro/internal/shard"
	"repro/internal/shard/remote"
	"repro/internal/stream"
	"repro/internal/xhash"
)

func main() {
	var (
		scale    = flag.Int("scale", 17, "log2 of the vertex-id space")
		initE    = flag.Uint64("init", 1_000_000, "rMAT edges sampled for the initial graph")
		batch    = flag.Uint64("batch", 5_000, "edges per update batch (before symmetrization)")
		readers  = flag.String("readers", "1,4", "comma list of concurrent reader counts to sweep")
		duration = flag.Duration("duration", 3*time.Second, "sustained load per run")
		weighted = flag.Bool("weighted", false, "serve aspen.WeightedGraph instead of aspen.Graph")
		algoList = flag.String("algos", "", "comma list of kernels: bfs,cc,sssp (default bfs,cc; bfs,sssp when -weighted)")
		queueCap = flag.Int("queue", 256, "ingest queue capacity (batches)")
		coalesce = flag.Int("coalesce", 32, "max batches folded into one commit")
		isolate  = flag.Bool("isolate", true, "also run update-only and query-only baselines")
		flat     = flag.Bool("flat", true, "run kernels on the per-version cached flat view (§5.1)")
		prebuild = flag.Bool("prebuild-flat", false, "build each version's flat view on commit instead of lazily on first query")
		patch    = flag.Bool("patch-flat", false, "derive each version's flat view from its predecessor's by O(batch) copy-on-write patching instead of O(n) rebuilds")
		incCC    = flag.Bool("inc-cc", false, "maintain incremental connectivity on the commit path and query it as an extra kernel (single-engine runs)")
		delmix   = flag.Uint64("delmix", 10, "delete-batch period of the writer schedule: one delete every N batches (10 = the classic 9:1 mix, 2 = delete-heavy expiry)")
		interval = flag.Duration("interval", 0, "pace the writer to one batch per interval (0 = saturate)")
		shards   = flag.String("shards", "", "comma list of shard counts: run the PR-5 sharded-ingest sweep instead of the single-engine sweep (1 = plain engine baseline)")
		connect  = flag.String("connect", "", "comma list of shardd primary addresses: drive a remote cluster (PR 8) instead of in-process engines")
		readFrom = flag.String("read-from", "", "comma list of shardd replica addresses (one per -connect shard, empty entries allowed)")
		dialTO   = flag.Duration("dial-timeout", 0, "remote: one dial attempt's timeout (0 = default 1s)")
		rpcDL    = flag.Duration("rpc-deadline", 0, "remote: per-RPC response deadline (0 = default 10s, negative disables)")
		retryDL  = flag.Duration("retry-deadline", 0, "remote: total retry budget per submit before its error surfaces (0 = default 2m)")
		maxStale = flag.Duration("max-stale", 0, "remote: when a shard is fully unreachable, serve its last cached view if at most this old (0 = fail the read instead)")
		partKind = flag.String("partition", "range", "shard partitioner: range or hash")
		priority = flag.Int("priority", 0, "priority-lane threshold in edges (0 disables the small-batch lane)")
		quick    = flag.Bool("quick", false, "tiny smoke-test configuration")
		jsonOut  = flag.String("json", "", "write results as a BENCH_*.json document")
		jsonTag  = flag.String("tag", "stream", "tag recorded in the -json document")
		mergeIn  = flag.String("merge", "", "snapshot file whose benchmarks array is merged into -json")
		seed     = flag.Uint64("seed", 42, "rMAT stream seed")

		dataDir  = flag.String("data", "", "durability directory: WAL + checkpoints; recovers existing state on start")
		fsyncPol = flag.String("fsync", "interval", "WAL fsync policy with -data: per-commit, interval, or off")
		fsyncInt = flag.Duration("fsync-every", 20*time.Millisecond, "fsync interval under -fsync interval")
		ckptEv   = flag.Int("ckpt-every", 256, "checkpoint after this many commits with -data")
		recOnly  = flag.Bool("recover-only", false, "recover -data, report what survived, and exit")
		killN    = flag.Int("killtest", 0, "ingest N deterministic durable batches into -data, printing an ack line per commit (crash-harness mode)")

		obsAddr   = flag.String("obs-addr", "", "observability listen address serving /metrics, /statusz, /healthz and /debug/pprof (empty disables)")
		traceSlow = flag.Duration("trace-slow", 0, "capture per-stage breakdowns of commits slower than this; dumped after each run and served via /statusz (0 disables)")
	)
	flag.Parse()
	if *killN > 0 {
		if *dataDir == "" {
			fatal("-killtest requires -data")
		}
		runKillTest(*dataDir, *killN)
		return
	}
	if *recOnly {
		if *dataDir == "" {
			fatal("-recover-only requires -data")
		}
		runRecoverOnly(*dataDir, *weighted)
		return
	}
	if *quick {
		// Shrink only the flags the user did not set explicitly.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		quickDefaults := []struct {
			name  string
			apply func()
		}{
			{"scale", func() { *scale = 12 }},
			{"init", func() { *initE = 40_000 }},
			{"batch", func() { *batch = 1_000 }},
			{"duration", func() { *duration = 300 * time.Millisecond }},
			{"readers", func() { *readers = "2" }},
		}
		for _, d := range quickDefaults {
			if !set[d.name] {
				d.apply()
			}
		}
	}
	if *algoList == "" {
		if *weighted {
			*algoList = "bfs,sssp"
		} else {
			*algoList = "bfs,cc"
		}
	}
	readerCounts, err := parseInts(*readers)
	if err != nil {
		fatal("bad -readers: %v", err)
	}
	if *scale < 1 || *scale > 31 {
		fatal("-scale must be in [1, 31] (vertex ids are uint32)")
	}

	if *delmix == 1 {
		fatal("-delmix must be 0 (inserts only) or ≥ 2")
	}
	cfg := config{
		Scale: *scale, InitEdges: *initE, Batch: *batch, Weighted: *weighted,
		Algos: *algoList, QueueCap: *queueCap, MaxCoalesce: *coalesce,
		Flat: *flat, PrebuildFlat: *prebuild, PatchFlat: *patch,
		IncCC: *incCC, DelPeriod: *delmix, Priority: *priority,
		Partition:  *partKind,
		DurationNS: duration.Nanoseconds(), IntervalNS: interval.Nanoseconds(),
		Seed: *seed, Procs: runtime.GOMAXPROCS(0),
		Data: *dataDir, Fsync: *fsyncPol,
		FsyncIntervalNS: fsyncInt.Nanoseconds(), CkptEvery: *ckptEv,
		TraceSlowNS: traceSlow.Nanoseconds(),
	}
	startObs(*obsAddr)
	fmt.Printf("stream: scale=%d init=%d batch=%d weighted=%v algos=%s flat=%v patch=%v inc-cc=%v delmix=%d procs=%d\n",
		*scale, *initE, *batch, *weighted, *algoList, *flat, *patch, *incCC, *delmix, cfg.Procs)

	// Graceful shutdown: SIGINT/SIGTERM stops the in-flight run early (the
	// writer quits, submitted batches flush, readers drain) and skips the
	// rest of the sweep; durable engines still close cleanly, writing a
	// final checkpoint.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	stop := ctx.Done()

	if *connect != "" {
		if *shards != "" || *dataDir != "" {
			fatal("-connect drives remote shardd processes; -shards/-data do not apply")
		}
		ro := remote.Options{
			DialTimeout:   *dialTO,
			RPCDeadline:   *rpcDL,
			RetryDeadline: *retryDL,
			MaxStaleness:  *maxStale,
		}
		runRemote(ctx, cfg, *connect, *readFrom, ro, readerCounts, *duration,
			time.Duration(cfg.IntervalNS), *jsonOut, *jsonTag, *mergeIn)
		return
	}
	if *readFrom != "" || *dialTO != 0 || *rpcDL != 0 || *retryDL != 0 || *maxStale != 0 {
		fatal("-read-from/-dial-timeout/-rpc-deadline/-retry-deadline/-max-stale require -connect")
	}

	if *shards != "" {
		if *dataDir != "" {
			fatal("-data applies to the single-engine sweep (shard durability is driven through the library)")
		}
		shardCounts, err := parseInts(*shards)
		if err != nil {
			fatal("bad -shards: %v", err)
		}
		sruns := shardSweep(ctx, cfg, shardCounts, readerCounts, *duration, time.Duration(cfg.IntervalNS))
		if *jsonOut != "" {
			writeShardJSON(*jsonOut, *jsonTag, *mergeIn, cfg, sruns)
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		return
	}

	var runs []runResult
	addRun := func(rr runResult) {
		printRun(rr)
		runs = append(runs, rr)
	}
	interrupted := func() bool {
		if ctx.Err() != nil {
			fmt.Println("stream: interrupted, skipping remaining runs")
			return true
		}
		return false
	}
	if *isolate && !interrupted() {
		addRun(oneRun(cfg, 0, "update-only", *duration, true, stop))
	}
	for _, r := range readerCounts {
		if interrupted() {
			break
		}
		addRun(oneRun(cfg, r, fmt.Sprintf("%d readers", r), *duration, true, stop))
	}
	if *isolate && !interrupted() {
		last := readerCounts[len(readerCounts)-1]
		addRun(oneRun(cfg, last, fmt.Sprintf("query-only (%d readers)", last), *duration, false, stop))
	}

	if *jsonOut != "" {
		writeJSON(*jsonOut, *jsonTag, *mergeIn, cfg, runs)
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

// config records the experiment parameters in the JSON document.
type config struct {
	Scale        int    `json:"scale"`
	InitEdges    uint64 `json:"init_edges"`
	Batch        uint64 `json:"batch"`
	Weighted     bool   `json:"weighted"`
	Algos        string `json:"algos"`
	QueueCap     int    `json:"queue_cap"`
	MaxCoalesce  int    `json:"max_coalesce"`
	Flat         bool   `json:"flat"`
	PrebuildFlat bool   `json:"prebuild_flat"`
	PatchFlat    bool   `json:"patch_flat"`
	IncCC        bool   `json:"inc_cc"`
	DelPeriod    uint64 `json:"del_period"`
	Priority     int    `json:"priority_edges"`
	Partition    string `json:"partition"`
	DurationNS   int64  `json:"duration_ns"`
	IntervalNS   int64  `json:"interval_ns"`
	Seed         uint64 `json:"seed"`
	Procs        int    `json:"procs"`

	// Durability settings (-data empty means in-memory).
	Data            string `json:"data_dir,omitempty"`
	Fsync           string `json:"fsync,omitempty"`
	FsyncIntervalNS int64  `json:"fsync_interval_ns,omitempty"`
	CkptEvery       int    `json:"ckpt_every,omitempty"`

	// TraceSlowNS is the -trace-slow slow-commit threshold (0 = off).
	TraceSlowNS int64 `json:"trace_slow_ns,omitempty"`
}

// durability translates the config into a stream.Durability (Data must be
// non-empty).
func (cfg config) durability() stream.Durability {
	return durabilityFlags{
		dir: cfg.Data, policy: cfg.Fsync,
		fsyncInt: time.Duration(cfg.FsyncIntervalNS), ckptEvery: cfg.CkptEvery,
	}.build()
}

type runResult struct {
	Name   string        `json:"name"`
	Report stream.Report `json:"report"`
	// IncCC carries the incremental-connectivity maintenance counters when
	// the run kept a standing algos.IncrementalCC on the commit path.
	IncCC *algos.IncrementalCCStats `json:"inc_cc,omitempty"`
}

// weightOf derives a deterministic non-negative weight for stream edge i.
func weightOf(i uint64) float32 {
	return 1 + float32(xhash.Mix64(i)%1000)/1000
}

// weightedBatch maps a directed edge range of the generator onto
// symmetrized weighted updates.
func weightedBatch(gen rmat.Generator, lo, hi uint64) []aspen.WeightedEdge {
	es := gen.Edges(lo, hi)
	out := make([]aspen.WeightedEdge, 0, 2*len(es))
	for j, e := range es {
		w := weightOf(lo + uint64(j))
		out = append(out,
			aspen.WeightedEdge{Src: e.Src, Dst: e.Dst, Weight: w},
			aspen.WeightedEdge{Src: e.Dst, Dst: e.Src, Weight: w})
	}
	return out
}

// preload pushes the initial edge set through a durable engine's own
// ingest path in moderate chunks (so it is WAL-logged and checkpointed like
// any other batch) and flushes.
func preload[G ligra.Graph, E any](e *stream.Engine[G, E], edges []E) {
	const chunk = 1 << 17
	for lo := 0; lo < len(edges); lo += chunk {
		hi := min(lo+chunk, len(edges))
		if _, err := e.Insert(edges[lo:hi]); err != nil {
			fatal("preload: %v", err)
		}
	}
	if _, err := e.Flush(); err != nil {
		fatal("preload flush: %v", err)
	}
	if err := e.Err(); err != nil {
		fatal("preload: %v", err)
	}
}

// closeEngine closes e and, when durable, reports the WAL/checkpoint work
// the run generated (Close writes a final checkpoint).
func closeEngine[G ligra.Graph, E any](e *stream.Engine[G, E]) {
	st := e.Stats()
	e.Close()
	if err := e.Err(); err != nil {
		fatal("durability failure: %v", err)
	}
	if st.Durable {
		fin := e.Stats()
		fmt.Printf("durability: %d WAL appends, %d fsyncs, %d MiB logged, %d checkpoints (final on close)\n",
			fin.WAL.Appends, fin.WAL.Syncs, fin.WAL.Bytes>>20, fin.Checkpoints)
	}
}

// oneRun executes one run: combined writer+readers, update-only
// (readers == 0), or query-only (withWriter == false, the isolated
// query-latency baseline). With cfg.Data set the engine is durable: it
// recovers the directory's prior state, logs every commit, and writes a
// final checkpoint on close; stop (when non-nil) ends the run early.
func oneRun(cfg config, readers int, name string, d time.Duration, withWriter bool, stop <-chan struct{}) runResult {
	gen := rmat.NewGenerator(cfg.Scale, cfg.Seed)
	opts := stream.Options{QueueCap: cfg.QueueCap, MaxCoalesce: cfg.MaxCoalesce,
		PrebuildFlat: cfg.PrebuildFlat, PatchFlat: cfg.PatchFlat, PriorityEdges: cfg.Priority,
		TraceSlow: time.Duration(cfg.TraceSlowNS)}
	var rep stream.Report
	var ccq *algos.IncrementalCC
	if cfg.Weighted {
		var e *stream.Engine[aspen.WeightedGraph, aspen.WeightedEdge]
		if cfg.Data != "" {
			var err error
			e, err = stream.RecoverWeightedEngine(ctree.DefaultParams(), opts, cfg.durability())
			if err != nil {
				fatal("recover %s: %v", cfg.Data, err)
			}
			preload(e, weightedBatch(gen, 0, cfg.InitEdges))
		} else {
			g := aspen.NewWeightedGraph().InsertEdges(weightedBatch(gen, 0, cfg.InitEdges))
			e = stream.NewWeightedEngine(g, opts)
		}
		if cfg.IncCC {
			// Attached after the preload flush (ingest is quiescent here):
			// the bootstrap covers the initial graph, the commit hook
			// everything after.
			ccq = stream.AttachWeightedIncrementalCC(e)
		}
		mountEngineObs(e)
		w := stream.Workload[aspen.WeightedGraph, aspen.WeightedEdge]{
			Engine:   e,
			Readers:  readers,
			Kernels:  weightedKernels(cfg, ccq),
			Duration: d,
			Interval: time.Duration(cfg.IntervalNS),
			UseFlat:  cfg.Flat,
			Stop:     stop,
		}
		if withWriter {
			w.NextBatch = stream.UpdateScheduleMix(cfg.InitEdges, cfg.Batch, cfg.DelPeriod,
				func(lo, hi uint64) []aspen.WeightedEdge { return weightedBatch(gen, lo, hi) })
		}
		rep = w.Run()
		if cfg.TraceSlowNS > 0 {
			dumpSlowTraces(e.Tracer(), time.Duration(cfg.TraceSlowNS))
		}
		closeEngine(e)
	} else {
		var e *stream.Engine[aspen.Graph, aspen.Edge]
		if cfg.Data != "" {
			var err error
			e, err = stream.RecoverGraphEngine(ctree.DefaultParams(), opts, cfg.durability())
			if err != nil {
				fatal("recover %s: %v", cfg.Data, err)
			}
			preload(e, aspen.MakeUndirected(gen.Edges(0, cfg.InitEdges)))
		} else {
			g := aspen.NewGraph(ctree.DefaultParams()).InsertEdges(aspen.MakeUndirected(gen.Edges(0, cfg.InitEdges)))
			e = stream.NewGraphEngine(g, opts)
		}
		if cfg.IncCC {
			ccq = stream.AttachGraphIncrementalCC(e)
		}
		mountEngineObs(e)
		w := stream.Workload[aspen.Graph, aspen.Edge]{
			Engine:   e,
			Readers:  readers,
			Kernels:  unweightedKernels(cfg, ccq),
			Duration: d,
			Interval: time.Duration(cfg.IntervalNS),
			UseFlat:  cfg.Flat,
			Stop:     stop,
		}
		if withWriter {
			w.NextBatch = stream.UpdateScheduleMix(cfg.InitEdges, cfg.Batch, cfg.DelPeriod,
				func(lo, hi uint64) []aspen.Edge { return aspen.MakeUndirected(gen.Edges(lo, hi)) })
		}
		rep = w.Run()
		if cfg.TraceSlowNS > 0 {
			dumpSlowTraces(e.Tracer(), time.Duration(cfg.TraceSlowNS))
		}
		closeEngine(e)
	}
	rr := runResult{Name: name, Report: rep}
	if ccq != nil {
		st := ccq.Stats()
		rr.IncCC = &st
	}
	return rr
}

// srcCycler varies kernel sources deterministically across calls; shared
// by every reader goroutine, hence the atomic counter.
func srcCycler(n uint32) func() uint32 {
	var i atomic.Uint64
	return func() uint32 {
		return uint32(xhash.Seeded(13, i.Add(1)) % uint64(n))
	}
}

func unweightedKernels(cfg config, ccq *algos.IncrementalCC) []stream.Kernel[aspen.Graph] {
	n := uint32(1) << cfg.Scale
	var ks []stream.Kernel[aspen.Graph]
	for _, a := range strings.Split(cfg.Algos, ",") {
		switch strings.TrimSpace(a) {
		case "bfs":
			src := srcCycler(n)
			ks = append(ks, stream.Kernel[aspen.Graph]{Name: "bfs",
				Run:     func(g aspen.Graph) { algos.BFS(g, src(), false) },
				RunFlat: func(g ligra.Graph) { algos.BFS(g, src(), false) }})
		case "cc":
			ks = append(ks, stream.Kernel[aspen.Graph]{Name: "cc",
				Run:     func(g aspen.Graph) { algos.ConnectedComponents(g) },
				RunFlat: func(g ligra.Graph) { algos.ConnectedComponents(g) }})
		case "sssp":
			fatal("sssp requires -weighted")
		default:
			fatal("unknown algo %q", a)
		}
	}
	if ccq != nil {
		// The standing structure answers from its arrays — no kernel run,
		// no transaction snapshot needed; its latency row is the point.
		src := srcCycler(n)
		ks = append(ks, stream.Kernel[aspen.Graph]{Name: "inccc",
			Run:     func(aspen.Graph) { ccq.Component(src()) },
			RunFlat: func(ligra.Graph) { ccq.Component(src()) }})
	}
	return ks
}

func weightedKernels(cfg config, ccq *algos.IncrementalCC) []stream.Kernel[aspen.WeightedGraph] {
	n := uint32(1) << cfg.Scale
	var ks []stream.Kernel[aspen.WeightedGraph]
	for _, a := range strings.Split(cfg.Algos, ",") {
		switch strings.TrimSpace(a) {
		case "bfs":
			src := srcCycler(n)
			ks = append(ks, stream.Kernel[aspen.WeightedGraph]{Name: "bfs",
				Run:     func(g aspen.WeightedGraph) { algos.BFS(g, src(), false) },
				RunFlat: func(g ligra.Graph) { algos.BFS(g, src(), false) }})
		case "cc":
			ks = append(ks, stream.Kernel[aspen.WeightedGraph]{Name: "cc",
				Run:     func(g aspen.WeightedGraph) { algos.ConnectedComponents(g) },
				RunFlat: func(g ligra.Graph) { algos.ConnectedComponents(g) }})
		case "sssp":
			src := srcCycler(n)
			ks = append(ks, stream.Kernel[aspen.WeightedGraph]{Name: "sssp",
				Run:     func(g aspen.WeightedGraph) { algos.SSSP(g, src()) },
				RunFlat: func(g ligra.Graph) { algos.SSSP(g.(ligra.WeightedGraph), src()) }})
		default:
			fatal("unknown algo %q", a)
		}
	}
	if ccq != nil {
		src := srcCycler(n)
		ks = append(ks, stream.Kernel[aspen.WeightedGraph]{Name: "inccc",
			Run:     func(aspen.WeightedGraph) { ccq.Component(src()) },
			RunFlat: func(ligra.Graph) { ccq.Component(src()) }})
	}
	return ks
}

// shardRunResult is one entry of the PR-5 sharded sweep.
type shardRunResult struct {
	Name   string       `json:"name"`
	Shards int          `json:"shards"`
	Report shard.Report `json:"report"`
}

// shardSweep runs the PR-5 experiment: shard counts × reader counts ×
// {saturated, paced (when -interval is set)}. Shard count 1 runs the plain
// single engine — the baseline every speedup is quoted against.
func shardSweep(ctx context.Context, cfg config, shardCounts, readerCounts []int, d, interval time.Duration) []shardRunResult {
	var out []shardRunResult
	paceModes := []time.Duration{0}
	if interval > 0 {
		paceModes = append(paceModes, interval)
	}
	stop := ctx.Done()
	for _, pace := range paceModes {
		mode := "saturated"
		if pace > 0 {
			mode = fmt.Sprintf("paced %v", pace)
		}
		for _, r := range readerCounts {
			// Speedups are quoted against the single-engine run of the
			// same reader count and pace mode — like against like.
			var base float64
			for _, s := range shardCounts {
				if ctx.Err() != nil {
					fmt.Println("stream: interrupted, skipping remaining runs")
					return out
				}
				name := fmt.Sprintf("%d shards, %d readers, %s", s, r, mode)
				var rep shard.Report
				if s <= 1 {
					name = fmt.Sprintf("single engine, %d readers, %s", r, mode)
					rep = oneShardRunSingle(cfg, r, d, pace, stop)
					base = rep.UpdatesPerSec
				} else {
					rep = oneShardRun(cfg, s, r, d, pace, stop)
				}
				printShardRun(name, rep, base)
				out = append(out, shardRunResult{Name: name, Shards: max(s, 1), Report: rep})
			}
		}
	}
	return out
}

// shardPartitioner builds the requested partitioner over the id space.
func shardPartitioner(cfg config, s int) shard.Partitioner {
	if cfg.Partition == "hash" {
		return shard.NewHashPartitioner(s)
	}
	return shard.NewRangePartitioner(s, uint32(1)<<cfg.Scale)
}

// shardKernels adapts the -algos list to sharded views (both tree and
// stitched flat arrive as ligra.Graph; weighted kernels type-assert).
func shardKernels(cfg config) []shard.Kernel {
	n := uint32(1) << cfg.Scale
	var ks []shard.Kernel
	for _, a := range strings.Split(cfg.Algos, ",") {
		switch strings.TrimSpace(a) {
		case "bfs":
			src := srcCycler(n)
			ks = append(ks, shard.Kernel{Name: "bfs",
				Run: func(g ligra.Graph) { algos.BFS(g, src(), false) }})
		case "cc":
			ks = append(ks, shard.Kernel{Name: "cc",
				Run: func(g ligra.Graph) { algos.ConnectedComponents(g) }})
		case "sssp":
			if !cfg.Weighted {
				fatal("sssp requires -weighted")
			}
			src := srcCycler(n)
			ks = append(ks, shard.Kernel{Name: "sssp",
				Run: func(g ligra.Graph) { algos.SSSP(g.(ligra.WeightedGraph), src()) }})
		default:
			fatal("unknown algo %q", a)
		}
	}
	return ks
}

// oneShardRun executes one sharded run at s shards.
func oneShardRun(cfg config, s, readers int, d, pace time.Duration, stop <-chan struct{}) shard.Report {
	gen := rmat.NewGenerator(cfg.Scale, cfg.Seed)
	part := shardPartitioner(cfg, s)
	opts := stream.Options{QueueCap: cfg.QueueCap, MaxCoalesce: cfg.MaxCoalesce,
		PrebuildFlat: cfg.PrebuildFlat, PatchFlat: cfg.PatchFlat, PriorityEdges: cfg.Priority,
		TraceSlow: time.Duration(cfg.TraceSlowNS)}
	if cfg.Weighted {
		// Initial load outside the serving path (NewWeightedClusterFrom),
		// matching how the single-engine baseline preloads before engine
		// construction — counters and latency digests see only the stream.
		c := shard.NewWeightedClusterFrom(part, ctree.DefaultParams(), weightedBatch(gen, 0, cfg.InitEdges), opts)
		mountClusterObs(c)
		w := shard.Workload[aspen.WeightedGraph, aspen.WeightedEdge]{
			Cluster: c, Readers: readers, Kernels: shardKernels(cfg),
			Duration: d, Interval: pace, UseFlat: cfg.Flat, Stop: stop,
			NextBatch: stream.UpdateScheduleMix(cfg.InitEdges, cfg.Batch, cfg.DelPeriod,
				func(lo, hi uint64) []aspen.WeightedEdge { return weightedBatch(gen, lo, hi) }),
		}
		rep := w.Run()
		c.Close()
		return rep
	}
	c := shard.NewGraphClusterFrom(part, ctree.DefaultParams(),
		aspen.MakeUndirected(gen.Edges(0, cfg.InitEdges)), opts)
	mountClusterObs(c)
	w := shard.Workload[aspen.Graph, aspen.Edge]{
		Cluster: c, Readers: readers, Kernels: shardKernels(cfg),
		Duration: d, Interval: pace, UseFlat: cfg.Flat, Stop: stop,
		NextBatch: stream.UpdateScheduleMix(cfg.InitEdges, cfg.Batch, cfg.DelPeriod,
			func(lo, hi uint64) []aspen.Edge { return aspen.MakeUndirected(gen.Edges(lo, hi)) }),
	}
	rep := w.Run()
	c.Close()
	return rep
}

// oneShardRunSingle is the unsharded baseline of the sweep, reported in the
// sharded Report shape so the rows compare directly.
func oneShardRunSingle(cfg config, readers int, d, pace time.Duration, stop <-chan struct{}) shard.Report {
	pacedCfg := cfg
	pacedCfg.IntervalNS = pace.Nanoseconds()
	rr := oneRun(pacedCfg, readers, "baseline", d, true, stop)
	r := rr.Report
	return shard.Report{
		Shards: 1, Duration: r.Duration, Readers: r.Readers,
		Updates: r.Updates, UpdatesPerSec: r.UpdatesPerSec,
		Commits: r.Commits, Batches: r.Batches,
		CommitWorst: r.Commit,
		Queries:     r.Queries, QueriesPerSec: r.QueriesPerSec, Query: r.Query,
		PerKernel:    r.PerKernel,
		LiveVersions: r.LiveVersions, RetiredVersions: r.RetiredVersions,
		FinalStamps: []uint64{r.FinalStamp},
		FlatBuilds:  r.FlatBuilds, FlatPatches: r.FlatPatches, FlatHits: r.FlatHits,
	}
}

func printShardRun(name string, r shard.Report, base float64) {
	fmt.Printf("\n== %s ==\n", name)
	if r.Updates > 0 {
		speed := ""
		if base > 0 && r.Shards > 1 {
			speed = fmt.Sprintf(" (%.2fx vs single engine)", r.UpdatesPerSec/base)
		}
		fmt.Printf("updates: %.3g edges/sec%s (%d edges, %d batches, %d commits across %d shards)\n",
			r.UpdatesPerSec, speed, r.Updates, r.Batches, r.Commits, r.Shards)
		fmt.Printf("commit latency (worst shard): p50 %-10v p95 %-10v p99 %-10v max %v\n",
			r.CommitWorst.P50, r.CommitWorst.P95, r.CommitWorst.P99, r.CommitWorst.Max)
	}
	if r.Queries > 0 {
		fmt.Printf("queries: %.1f/sec across %d readers\n", r.QueriesPerSec, r.Readers)
		fmt.Printf("query latency:   p50 %-10v p95 %-10v p99 %-10v max %v\n",
			r.Query.P50, r.Query.P95, r.Query.P99, r.Query.Max)
	}
	fmt.Printf("versions: stamps %v, %d retired, %d live\n", r.FinalStamps, r.RetiredVersions, r.LiveVersions)
	if r.StitchBuilds+r.StitchPatches+r.StitchHits > 0 {
		fmt.Printf("stitched flat: %d builds, %d delta stitches, %d hits; per-shard flat: %d builds, %d patches, %d hits\n",
			r.StitchBuilds, r.StitchPatches, r.StitchHits, r.FlatBuilds, r.FlatPatches, r.FlatHits)
	}
}

// writeShardJSON writes the sharded sweep as a BENCH_*.json document
// (benchdiff reads the benchmarks array; the shard_experiment payload is
// the PR-5 record).
func writeShardJSON(path, tag, mergePath string, cfg config, runs []shardRunResult) {
	doc := shardBenchDoc{
		Tag: tag,
		Description: "Sharded serving layer sweep: multi-writer vertex-range shards with " +
			"consistent cross-shard snapshots (PR 5); shard count 1 is the plain single " +
			"engine. Benchmarks array gates allocs in CI via cmd/benchdiff.",
		Machine:    runtime.GOOS + "/" + runtime.GOARCH,
		Benchmarks: json.RawMessage("[]"),
		Shard:      shardDoc{Config: cfg, Runs: runs},
	}
	if mergePath != "" {
		raw, err := os.ReadFile(mergePath)
		if err != nil {
			fatal("-merge: %v", err)
		}
		var snap struct {
			Benchmarks json.RawMessage `json:"benchmarks"`
		}
		if err := json.Unmarshal(raw, &snap); err != nil {
			fatal("-merge: %v", err)
		}
		if len(snap.Benchmarks) > 0 {
			doc.Benchmarks = snap.Benchmarks
		}
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal("marshal: %v", err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fatal("write: %v", err)
	}
}

type shardBenchDoc struct {
	Tag         string          `json:"tag"`
	Description string          `json:"description"`
	Machine     string          `json:"machine,omitempty"`
	Benchmarks  json.RawMessage `json:"benchmarks"`
	Shard       shardDoc        `json:"shard_experiment"`
}

type shardDoc struct {
	Config config           `json:"config"`
	Runs   []shardRunResult `json:"runs"`
}

func printRun(rr runResult) {
	name, r := rr.Name, rr.Report
	fmt.Printf("\n== %s ==\n", name)
	if r.Updates > 0 {
		fmt.Printf("updates: %.3g edges/sec (%d edges, %d batches, %d commits, coalesce %.2f)\n",
			r.UpdatesPerSec, r.Updates, r.Batches, r.Commits, r.Coalesce)
		fmt.Printf("commit latency:  p50 %-10v p95 %-10v p99 %-10v max %v\n",
			r.Commit.P50, r.Commit.P95, r.Commit.P99, r.Commit.Max)
	}
	if r.Queries > 0 {
		fmt.Printf("queries: %.1f/sec across %d readers\n", r.QueriesPerSec, r.Readers)
		fmt.Printf("query latency:   p50 %-10v p95 %-10v p99 %-10v max %v\n",
			r.Query.P50, r.Query.P95, r.Query.P99, r.Query.Max)
		for _, k := range r.PerKernel {
			fmt.Printf("  %-5s          p50 %-10v p95 %-10v p99 %-10v (%d runs)\n",
				k.Name, k.Latency.P50, k.Latency.P95, k.Latency.P99, k.Latency.Count)
		}
	}
	fmt.Printf("versions: %d published, %d retired+released, %d live\n",
		r.FinalStamp, r.RetiredVersions, r.LiveVersions)
	if r.FlatBuilds+r.FlatPatches+r.FlatHits > 0 {
		fmt.Printf("flat cache: %d builds, %d patches, %d hits (%.1f queries per materialization)\n",
			r.FlatBuilds, r.FlatPatches, r.FlatHits,
			float64(r.FlatBuilds+r.FlatPatches+r.FlatHits)/float64(max(r.FlatBuilds+r.FlatPatches, 1)))
	}
	if rr.IncCC != nil {
		fmt.Printf("inc-cc: %d unions, %d delete recomputes, %d vertices reverified\n",
			rr.IncCC.Unions, rr.IncCC.Recomputes, rr.IncCC.Reverified)
	}
}

// benchDoc is the on-disk BENCH_*.json shape: the benchdiff snapshot
// fields plus the §7.8 experiment payload (benchdiff ignores the extras).
type benchDoc struct {
	Tag         string          `json:"tag"`
	Description string          `json:"description"`
	Machine     string          `json:"machine,omitempty"`
	Benchmarks  json.RawMessage `json:"benchmarks"`
	Stream      streamDoc       `json:"stream_experiment"`
}

type streamDoc struct {
	Config config      `json:"config"`
	Runs   []runResult `json:"runs"`
}

func writeJSON(path, tag, mergePath string, cfg config, runs []runResult) {
	doc := benchDoc{
		Tag: tag,
		Description: "Live-stream engine §7.8 reproduction: concurrent readers + single writer " +
			"over epoch-refcounted snapshots, kernels on per-version cached flat views; " +
			"benchmarks array gates allocs in CI via cmd/benchdiff.",
		Machine:    runtime.GOOS + "/" + runtime.GOARCH,
		Benchmarks: json.RawMessage("[]"),
		Stream:     streamDoc{Config: cfg, Runs: runs},
	}
	if mergePath != "" {
		raw, err := os.ReadFile(mergePath)
		if err != nil {
			fatal("-merge: %v", err)
		}
		var snap struct {
			Benchmarks json.RawMessage `json:"benchmarks"`
		}
		if err := json.Unmarshal(raw, &snap); err != nil {
			fatal("-merge: %v", err)
		}
		if len(snap.Benchmarks) > 0 {
			doc.Benchmarks = snap.Benchmarks
		}
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal("marshal: %v", err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fatal("write: %v", err)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fmt.Errorf("negative count %d", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "stream: "+format+"\n", args...)
	os.Exit(1)
}
