// Durability integration for cmd/stream: -data puts the single-engine
// experiment on a WAL-backed engine (recovering whatever the directory
// already holds), -recover-only measures recovery alone, and -killtest is
// the crash half of the kill -9 harness in main_test.go — a serial durable
// ingest loop that prints an ack line per committed batch so the test knows
// exactly which prefix must survive.
package main

import (
	"fmt"
	"time"

	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/stream"
	"repro/internal/xhash"
)

// durabilityFlags carries the -data/-fsync/-ckpt-every settings.
type durabilityFlags struct {
	dir       string
	policy    string
	fsyncInt  time.Duration
	ckptEvery int
}

// build translates the flags into a stream.Durability (dir must be set).
func (df durabilityFlags) build() stream.Durability {
	pol, err := stream.ParseSyncPolicy(df.policy)
	if err != nil {
		fatal("%v", err)
	}
	return stream.Durability{
		Dir:             df.dir,
		Policy:          pol,
		Interval:        df.fsyncInt,
		CheckpointEvery: df.ckptEvery,
	}
}

// killBatch is the deterministic update stream the kill -9 harness replays:
// batch i inserts (or, every fifth batch, deletes) a seeded random set of
// undirected edges over a small id space. The recovery check in
// main_test.go rebuilds the same prefixes — binary and test must agree, so
// both live in package main.
func killBatch(i int) (del bool, edges []aspen.Edge) {
	seed := uint64(3000 + i)
	if i%5 == 4 {
		seed = uint64(3000 + i - 2) // delete a recently inserted batch: real work
	}
	rng := xhash.NewRNG(seed)
	pairs := make([]aspen.Edge, 20)
	for j := range pairs {
		pairs[j] = aspen.Edge{Src: rng.Uint32() % 256, Dst: rng.Uint32() % 256}
	}
	return i%5 == 4, aspen.MakeUndirected(pairs)
}

// killParams is the edge-tree configuration shared by the kill harness's
// ingest and recovery sides.
func killParams() ctree.Params { return ctree.Params{B: 8} }

// runKillTest ingests n killBatch batches serially under fsync-per-commit,
// printing "acked batch=<i>" after each commit is durable — the line the
// harness scans before delivering SIGKILL. A clean exit closes the engine
// (final checkpoint) and prints "done".
func runKillTest(dir string, n int) {
	d := stream.Durability{Dir: dir, Policy: stream.SyncEveryCommit, CheckpointEvery: 5}
	e, err := stream.RecoverGraphEngine(killParams(), stream.Options{}, d)
	if err != nil {
		fatal("killtest open: %v", err)
	}
	for i := 0; i < n; i++ {
		del, edges := killBatch(i)
		var p stream.Pending
		if del {
			p, err = e.Delete(edges)
		} else {
			p, err = e.Insert(edges)
		}
		if err != nil {
			fatal("killtest submit %d: %v", i, err)
		}
		if stamp := p.Wait(); stamp == 0 {
			fatal("killtest batch %d nacked: %v", i, e.Err())
		}
		fmt.Printf("acked batch=%d\n", i)
	}
	e.Close()
	if err := e.Err(); err != nil {
		fatal("killtest close: %v", err)
	}
	fmt.Println("done")
}

// runRecoverOnly opens -data, reports what recovery found, and exits — the
// operational "is this directory intact?" probe.
func runRecoverOnly(dir string, weighted bool) {
	t0 := time.Now()
	var (
		n, m  uint64
		stamp uint64
		err   error
	)
	if weighted {
		var g aspen.WeightedGraph
		g, stamp, err = stream.LoadWeightedGraph(ctree.DefaultParams(), dir)
		if err == nil {
			n, m = uint64(g.Order()), g.NumEdges()
		}
	} else {
		var g aspen.Graph
		g, stamp, err = stream.LoadGraph(ctree.DefaultParams(), dir)
		if err == nil {
			n, m = uint64(g.Order()), g.NumEdges()
		}
	}
	if err != nil {
		fatal("recover %s: %v", dir, err)
	}
	fmt.Printf("recovered %s in %v: %d vertices, %d edges, %d batches applied\n",
		dir, time.Since(t0).Round(time.Millisecond), n, m, stamp)
}
