// Observability plane of cmd/stream: -obs-addr mounts one obs.Server
// for the whole process (metrics, statusz, healthz, pprof) and each
// sweep run swaps in a registry for the engine/cluster/client it just
// built — the engine is rebuilt per run, the server is not. -trace-slow
// additionally dumps the slow-commit ring (per-stage breakdown) after
// every run, attributing fsync and flat-patch cost per commit.
package main

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/faults"
	"repro/internal/ligra"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/shard/remote"
	"repro/internal/stream"
)

// obsSrv is the process-wide observability server; nil without
// -obs-addr. Mutated only during flag handling in main, before any run
// starts.
var obsSrv *obs.Server

// startObs mounts the plane on addr ("" disables).
func startObs(addr string) {
	if addr == "" {
		return
	}
	obsSrv = obs.NewServer()
	if err := obsSrv.Start(addr); err != nil {
		fatal("obs: %v", err)
	}
	fmt.Printf("stream: obs on http://%s (/metrics /statusz /healthz /debug/pprof)\n", obsSrv.Addr())
}

// faultsGauge registers the armed-failpoint gauge every mode shares.
func faultsGauge(reg *obs.Registry) {
	reg.GaugeFunc("aspen_faults_armed",
		"Failpoints currently armed in the process-global registry.",
		func() float64 { return float64(faults.Default.ArmedCount()) })
}

// mountEngineObs swaps the current run's engine into the obs server:
// full engine metrics, /healthz from the durability error, /statusz
// with the stage breakdown and slow-commit ring.
func mountEngineObs[G ligra.Graph, E any](e *stream.Engine[G, E]) {
	if obsSrv == nil {
		return
	}
	reg := obs.NewRegistry()
	e.RegisterMetrics(reg)
	faultsGauge(reg)
	obsSrv.SetRegistry(reg)
	obsSrv.SetHealth(e.Err)
	obsSrv.SetStatus(func() any {
		slow, seen := e.Tracer().SlowViews()
		return map[string]any{
			"engine":       e.Stats(),
			"stages":       stageStatus(e.Tracer()),
			"slow_commits": map[string]any{"seen": seen, "traces": slow},
			"faults_armed": faults.Default.ArmedCount(),
		}
	})
}

// mountClusterObs is mountEngineObs for the in-process sharded sweep:
// per-shard engine series (shard="N") plus the stitch counters.
func mountClusterObs[G ligra.Graph, E any](c *shard.Cluster[G, E]) {
	if obsSrv == nil {
		return
	}
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)
	faultsGauge(reg)
	obsSrv.SetRegistry(reg)
	obsSrv.SetHealth(nil)
	obsSrv.SetStatus(func() any {
		return map[string]any{
			"cluster":      c.Stats(),
			"faults_armed": faults.Default.ArmedCount(),
		}
	})
}

// mountRemoteObs mounts the remote-mode client counters (the PR 9
// resilience ladder live, instead of only in the end-of-run report).
func mountRemoteObs[E any](c *remote.Cluster[E]) {
	if obsSrv == nil {
		return
	}
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)
	faultsGauge(reg)
	obsSrv.SetRegistry(reg)
	obsSrv.SetHealth(nil)
	obsSrv.SetStatus(func() any {
		return map[string]any{
			"client":       c.Stats(),
			"faults_armed": faults.Default.ArmedCount(),
		}
	})
}

// stageStatus renders the tracer's per-stage summaries for /statusz,
// dropping stages that never ran.
func stageStatus(t *obs.StageTracer) map[string]obs.LatencySummary {
	sums := t.Summaries()
	out := make(map[string]obs.LatencySummary, len(sums))
	for i, s := range sums {
		if s.Count > 0 {
			out[obs.Stage(i).String()] = s
		}
	}
	return out
}

// dumpSlowTraces prints the run's slow-commit ring, newest first: one
// line per commit with its per-stage breakdown, then the per-stage
// summary over every commit of the run. Called at the end of a run when
// -trace-slow is set.
func dumpSlowTraces(t *obs.StageTracer, threshold time.Duration) {
	traces, seen := t.Slow()
	fmt.Printf("slow commits (>= %v): %d seen, %d retained\n", threshold, seen, len(traces))
	for _, tr := range traces {
		fmt.Printf("  stamp %-8d %4d batches %7d edges total %-10v", tr.Stamp, tr.Batches, tr.Edges, tr.Total().Round(time.Microsecond))
		for i, d := range tr.Durs {
			if d > 0 {
				fmt.Printf(" %s %v", obs.Stage(i).String(), d.Round(time.Microsecond))
			}
		}
		fmt.Println()
	}
	sums := stageStatus(t)
	names := make([]string, 0, len(sums))
	for n := range sums {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("stage breakdown (all commits):")
	for _, n := range names {
		s := sums[n]
		fmt.Printf("  %-10s p50 %-10v p95 %-10v p99 %-10v max %-10v (%d commits)\n",
			n, s.P50, s.P95, s.P99, s.Max, s.Count)
	}
}
