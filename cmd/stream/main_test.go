package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"

	"repro/internal/aspen"
	"repro/internal/stream"
)

// TestMain doubles as the kill -9 victim: when STREAM_KILLTEST_DIR is set,
// the test binary runs the durable ingest loop from durable.go instead of
// the test suite, so TestKillRecover can SIGKILL a real separate process
// (real files, real page cache) without building cmd/stream first.
func TestMain(m *testing.M) {
	if dir := os.Getenv("STREAM_KILLTEST_DIR"); dir != "" {
		n, err := strconv.Atoi(os.Getenv("STREAM_KILLTEST_N"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad STREAM_KILLTEST_N:", err)
			os.Exit(1)
		}
		runKillTest(dir, n)
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// killPrefixes[j] is the graph after killBatch batches 0..j-1.
func killPrefixes(n int) []aspen.Graph {
	out := []aspen.Graph{aspen.NewGraph(killParams())}
	g := out[0]
	for i := 0; i < n; i++ {
		del, edges := killBatch(i)
		if del {
			g = g.DeleteEdges(edges)
		} else {
			g = g.InsertEdges(edges)
		}
		out = append(out, g)
	}
	return out
}

// TestKillRecover is the end-to-end crash test: a subprocess ingests
// durable batches under fsync-per-commit, we SIGKILL it mid-stream after
// scanning its ack lines, and recovery must land on the acked prefix or at
// most one batch past it — an acknowledged commit survives a hard kill.
func TestKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	const n = 200
	const killAfter = 25 // acks to observe before killing

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"STREAM_KILLTEST_DIR="+dir,
		"STREAM_KILLTEST_N="+strconv.Itoa(n))
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	acked := -1
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "acked batch=") {
			continue
		}
		k, err := strconv.Atoi(strings.TrimPrefix(line, "acked batch="))
		if err != nil {
			t.Fatalf("bad ack line %q: %v", line, err)
		}
		acked = k
		if acked+1 >= killAfter {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if acked < 0 {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		t.Fatal("subprocess produced no ack lines")
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	_ = cmd.Wait()

	g, lastSeq, err := stream.LoadGraph(killParams(), dir)
	if err != nil {
		t.Fatalf("recovery after SIGKILL: %v", err)
	}
	// The scanner may lag the victim: an ack printed but not yet read still
	// counts, so re-derive the durable floor from the WAL itself — every
	// acked batch was fsynced before its ack line, hence lastSeq >= acked+1
	// (batch i is WAL sequence i+1).
	if lastSeq < uint64(acked+1) {
		t.Fatalf("WAL replayed to seq %d, below %d observed acks", lastSeq, acked+1)
	}
	if lastSeq > n {
		t.Fatalf("WAL replayed to seq %d, beyond the %d-batch stream", lastSeq, n)
	}
	prefixes := killPrefixes(int(lastSeq) + 1)
	if !g.Equal(prefixes[lastSeq]) {
		t.Fatalf("recovered graph (%d edges) does not match the %d-batch prefix (%d edges)",
			g.NumEdges(), lastSeq, prefixes[lastSeq].NumEdges())
	}

	// The directory keeps serving: reopen, ingest the rest of the stream,
	// close cleanly, and verify the full-stream graph.
	d := stream.Durability{Dir: dir, Policy: stream.SyncEveryCommit, CheckpointEvery: 5}
	e, err := stream.RecoverGraphEngine(killParams(), stream.Options{}, d)
	if err != nil {
		t.Fatalf("reopen after SIGKILL: %v", err)
	}
	for i := int(lastSeq); i < n; i++ {
		del, edges := killBatch(i)
		var p stream.Pending
		if del {
			p, err = e.Delete(edges)
		} else {
			p, err = e.Insert(edges)
		}
		if err != nil {
			t.Fatal(err)
		}
		if p.Wait() == 0 {
			t.Fatalf("batch %d nacked after recovery: %v", i, e.Err())
		}
	}
	e.Close()
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	g2, seq2, err := stream.LoadGraph(killParams(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq2 != n {
		t.Fatalf("final WAL seq %d, want %d", seq2, n)
	}
	full := killPrefixes(n)
	if !g2.Equal(full[n]) {
		t.Fatal("post-recovery continuation diverged from the deterministic stream")
	}
}

// TestKillRecoverGraceful exercises the clean-exit half of the harness: the
// subprocess finishes all batches, closes (final checkpoint), and recovery
// reproduces the full stream.
func TestKillRecoverGraceful(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	const n = 30
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"STREAM_KILLTEST_DIR="+dir,
		"STREAM_KILLTEST_N="+strconv.Itoa(n))
	outb, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("subprocess: %v\n%s", err, outb)
	}
	if !strings.Contains(string(outb), "done") {
		t.Fatalf("subprocess did not finish cleanly:\n%s", outb)
	}
	g, seq, err := stream.LoadGraph(killParams(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != n {
		t.Fatalf("recovered seq %d, want %d", seq, n)
	}
	if want := killPrefixes(n)[n]; !g.Equal(want) {
		t.Fatal("graceful recovery diverged from the deterministic stream")
	}
}
