// Remote-cluster mode for cmd/stream: -connect points the §7.8 driver
// at a running cluster of cmd/shardd processes instead of an in-process
// engine, exercising the full distributed read/write path — routed
// submits over the rpc frame protocol, pinned version vectors, and
// stitched flat views fetched from the shard servers (from replicas,
// with -read-from). The servers keep their state between runs of the
// sweep, so the writer schedule keeps one cursor across all runs.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/aspen"
	"repro/internal/rmat"
	"repro/internal/shard/remote"
	"repro/internal/stream"
)

// remoteRunResult is one entry of the remote sweep.
type remoteRunResult struct {
	Name   string        `json:"name"`
	Report remote.Report `json:"report"`
}

// persistentSchedule wraps an UpdateScheduleMix closure (which owns the
// generator cursor) with a call counter that survives across the
// sweep's runs: Drive restarts its batch index at 0 every run, but the
// remote servers keep their state, so the stream must not replay.
func persistentSchedule[E any](inner func(i uint64) (bool, []E)) func(i uint64) (bool, []E) {
	var calls uint64 // writer-goroutine only, one run at a time
	return func(uint64) (bool, []E) {
		i := calls
		calls++
		return inner(i)
	}
}

// runRemote drives the remote sweep: reader counts × {saturated, paced
// when -interval is set} against one dialed cluster.
func runRemote(ctx context.Context, cfg config, connect, readFrom string, ro remote.Options,
	readerCounts []int, d, interval time.Duration, jsonOut, jsonTag, mergeIn string) {
	primaries := splitAddrs(connect)
	var replicas []string
	if readFrom != "" {
		replicas = splitAddrs(readFrom)
		if len(replicas) != len(primaries) {
			fatal("-read-from lists %d addresses for %d shards (use empty entries for shards without replicas)", len(replicas), len(primaries))
		}
	}
	part := shardPartitioner(cfg, len(primaries))
	stop := ctx.Done()
	gen := rmat.NewGenerator(cfg.Scale, cfg.Seed)

	var oneRun func(readers int, pace time.Duration) remote.Report
	var closeC func()
	if cfg.Weighted {
		c, err := remote.DialWeighted(part, primaries, replicas, ro)
		if err != nil {
			fatal("%v", err)
		}
		closeC = c.Close
		mountRemoteObs(c)
		next := persistentSchedule(stream.UpdateScheduleMix(0, cfg.Batch, cfg.DelPeriod,
			func(lo, hi uint64) []aspen.WeightedEdge { return weightedBatch(gen, lo, hi) }))
		oneRun = func(readers int, pace time.Duration) remote.Report {
			w := &remote.Workload[aspen.WeightedEdge]{
				Cluster: c, NextBatch: next, Readers: readers,
				Kernels: shardKernels(cfg), Duration: d, Interval: pace, Stop: stop,
			}
			return w.Run()
		}
	} else {
		c, err := remote.DialGraph(part, primaries, replicas, ro)
		if err != nil {
			fatal("%v", err)
		}
		closeC = c.Close
		mountRemoteObs(c)
		next := persistentSchedule(stream.UpdateScheduleMix(0, cfg.Batch, cfg.DelPeriod,
			func(lo, hi uint64) []aspen.Edge { return aspen.MakeUndirected(gen.Edges(lo, hi)) }))
		oneRun = func(readers int, pace time.Duration) remote.Report {
			w := &remote.Workload[aspen.Edge]{
				Cluster: c, NextBatch: next, Readers: readers,
				Kernels: shardKernels(cfg), Duration: d, Interval: pace, Stop: stop,
			}
			return w.Run()
		}
	}
	defer closeC()

	paceModes := []time.Duration{0}
	if interval > 0 {
		paceModes = append(paceModes, interval)
	}
	var runs []remoteRunResult
	for _, pace := range paceModes {
		mode := "saturated"
		if pace > 0 {
			mode = fmt.Sprintf("paced %v", pace)
		}
		for _, r := range readerCounts {
			if ctx.Err() != nil {
				fmt.Println("stream: interrupted, skipping remaining runs")
				break
			}
			name := fmt.Sprintf("remote %d shards, %d readers, %s", part.Shards(), r, mode)
			rep := oneRun(r, pace)
			printRemoteRun(name, rep)
			runs = append(runs, remoteRunResult{Name: name, Report: rep})
		}
	}
	if jsonOut != "" {
		writeRemoteJSON(jsonOut, jsonTag, mergeIn, cfg, runs)
		fmt.Printf("wrote %s\n", jsonOut)
	}
}

func printRemoteRun(name string, r remote.Report) {
	fmt.Printf("\n== %s ==\n", name)
	if r.Updates > 0 {
		fmt.Printf("updates: %.3g edges/sec (%d edges, %d submit frames across %d shards)\n",
			r.UpdatesPerSec, r.Updates, r.Batches, r.Shards)
		fmt.Printf("commit latency (worst shard): p50 %-10v p95 %-10v p99 %-10v max %v\n",
			r.CommitWorst.P50, r.CommitWorst.P95, r.CommitWorst.P99, r.CommitWorst.Max)
	}
	if r.Queries > 0 {
		fmt.Printf("queries: %.1f/sec across %d readers (%d errors)\n", r.QueriesPerSec, r.Readers, r.QueryErrs)
		fmt.Printf("query latency:   p50 %-10v p95 %-10v p99 %-10v max %v\n",
			r.Query.P50, r.Query.P95, r.Query.P99, r.Query.Max)
		for _, k := range r.PerKernel {
			fmt.Printf("  %-5s          p50 %-10v p95 %-10v p99 %-10v (%d runs)\n",
				k.Name, k.Latency.P50, k.Latency.P95, k.Latency.P99, k.Latency.Count)
		}
	}
	cs := r.Client
	fmt.Printf("client: %d range RPCs, %d view fetches, %d view hits, %d stitches, %d stitch hits",
		cs.RangeRPCs, cs.ViewFetches, cs.ViewHits, cs.StitchBuilds, cs.StitchHits)
	if cs.ReplicaReads+cs.PrimaryFallbacks > 0 {
		fmt.Printf(", %d replica reads, %d primary fallbacks", cs.ReplicaReads, cs.PrimaryFallbacks)
	}
	fmt.Println()
	if cs.Retries+cs.DedupAcks+cs.BreakerOpens+cs.BreakerFastFails+cs.RPCTimeouts+
		cs.Failovers+cs.Promotions+cs.DegradedPins+cs.StaleReads > 0 {
		fmt.Printf("faults: %d retries, %d dedup acks, %d breaker opens (%d fast fails), %d rpc timeouts, %d failovers, %d promotions, %d degraded pins, %d stale reads\n",
			cs.Retries, cs.DedupAcks, cs.BreakerOpens, cs.BreakerFastFails, cs.RPCTimeouts,
			cs.Failovers, cs.Promotions, cs.DegradedPins, cs.StaleReads)
	}
	fmt.Printf("versions: final stamps %v\n", r.FinalStamps)
}

// splitAddrs splits a comma list, keeping empty entries (a shard with
// no replica).
func splitAddrs(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// writeRemoteJSON writes the remote sweep as a BENCH_*.json document.
func writeRemoteJSON(path, tag, mergePath string, cfg config, runs []remoteRunResult) {
	doc := remoteBenchDoc{
		Tag: tag,
		Description: "Distributed shard transport sweep (PR 8): rpc frame protocol, routed " +
			"remote submits with commit-acked durability, pinned version vectors, stitched " +
			"remote flat views, optional WAL-tailed read replicas. Benchmarks array gates " +
			"allocs in CI via cmd/benchdiff.",
		Machine:    runtime.GOOS + "/" + runtime.GOARCH,
		Benchmarks: json.RawMessage("[]"),
		Remote:     remoteDoc{Config: cfg, Runs: runs},
	}
	if mergePath != "" {
		raw, err := os.ReadFile(mergePath)
		if err != nil {
			fatal("-merge: %v", err)
		}
		var snap struct {
			Benchmarks json.RawMessage `json:"benchmarks"`
		}
		if err := json.Unmarshal(raw, &snap); err != nil {
			fatal("-merge: %v", err)
		}
		if len(snap.Benchmarks) > 0 {
			doc.Benchmarks = snap.Benchmarks
		}
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal("marshal: %v", err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fatal("write: %v", err)
	}
}

type remoteBenchDoc struct {
	Tag         string          `json:"tag"`
	Description string          `json:"description"`
	Machine     string          `json:"machine,omitempty"`
	Benchmarks  json.RawMessage `json:"benchmarks"`
	Remote      remoteDoc       `json:"remote_experiment"`
}

type remoteDoc struct {
	Config config            `json:"config"`
	Runs   []remoteRunResult `json:"runs"`
}
