// Command benchdiff compares a `go test -bench` run against a committed
// BENCH_*.json baseline snapshot and flags regressions beyond a threshold
// (ROADMAP follow-up (d); see BENCHMARKS.md for the workflow).
//
// Usage:
//
//	go test -run=NONE -bench 'InsertEdges|Union' -benchmem ./... | \
//	    go run ./cmd/benchdiff -baseline BENCH_pr1_zero_alloc.json
//
//	# CI guards the deterministic metric only:
//	... | go run ./cmd/benchdiff -baseline BENCH_pr1_zero_alloc.json -metrics allocs_op
//
// Exit status is 1 when any compared metric regresses by more than
// -threshold percent. Benchmarks present in only one side are reported but
// never fail the run (new benchmarks land with their first snapshot).
// With -out, the observed numbers are also written as a fresh snapshot
// file for committing alongside a PR.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// entry mirrors one benchmark record of a BENCH_*.json snapshot. Metrics
// are pointers so that "absent" (not measured) is distinct from a genuine
// zero — an allocs_op of 0 is the repo's best possible result and must
// still gate regressions.
type entry struct {
	Name     string   `json:"name"`
	Pkg      string   `json:"pkg,omitempty"`
	NsOp     *float64 `json:"ns_op,omitempty"`
	BOp      *float64 `json:"b_op,omitempty"`
	AllocsOp *float64 `json:"allocs_op,omitempty"`
	EdgesSec *float64 `json:"edges_sec,omitempty"`
}

type snapshot struct {
	Tag         string  `json:"tag,omitempty"`
	Description string  `json:"description,omitempty"`
	Machine     string  `json:"machine,omitempty"`
	Benchmarks  []entry `json:"benchmarks"`
}

// metric describes how a comparable quantity is read and judged.
type metric struct {
	get        func(e entry) *float64
	set        func(e *entry, v float64)
	lowerWorse bool // true when a smaller value is a regression (throughput)
}

var metrics = map[string]metric{
	"ns_op":     {get: func(e entry) *float64 { return e.NsOp }, set: func(e *entry, v float64) { e.NsOp = &v }},
	"b_op":      {get: func(e entry) *float64 { return e.BOp }, set: func(e *entry, v float64) { e.BOp = &v }},
	"allocs_op": {get: func(e entry) *float64 { return e.AllocsOp }, set: func(e *entry, v float64) { e.AllocsOp = &v }},
	"edges_sec": {get: func(e entry) *float64 { return e.EdgesSec }, set: func(e *entry, v float64) { e.EdgesSec = &v }, lowerWorse: true},
}

// unitToMetric maps `go test -bench` output units to snapshot fields.
var unitToMetric = map[string]string{
	"ns/op":     "ns_op",
	"B/op":      "b_op",
	"allocs/op": "allocs_op",
	"edges/sec": "edges_sec",
}

// parseBenchOutput extracts benchmark lines ("BenchmarkX-8  10  123 ns/op
// 45 B/op 6 allocs/op 7 edges/sec") from r.
func parseBenchOutput(r io.Reader) (map[string]entry, error) {
	out := map[string]entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the GOMAXPROCS suffix ("-8").
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		e := out[name]
		e.Name = name
		// Value/unit pairs follow the iteration count.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if m, ok := unitToMetric[fields[i+1]]; ok {
				metrics[m].set(&e, v)
			}
		}
		out[name] = e
	}
	return out, sc.Err()
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed BENCH_*.json snapshot to compare against")
		input        = flag.String("input", "-", "bench output to read ('-' = stdin)")
		threshold    = flag.Float64("threshold", 15, "regression threshold in percent")
		metricList   = flag.String("metrics", "ns_op,allocs_op", "comma-separated metrics to compare (ns_op, b_op, allocs_op, edges_sec)")
		outPath      = flag.String("out", "", "write the observed numbers as a new snapshot to this file")
		tag          = flag.String("tag", "", "tag recorded in the -out snapshot")
	)
	flag.Parse()
	if *baselinePath == "" && *outPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: need -baseline and/or -out")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	got, err := parseBenchOutput(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: reading bench output: %v\n", err)
		os.Exit(2)
	}
	if len(got) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines in input")
		os.Exit(2)
	}

	if *outPath != "" {
		names := make([]string, 0, len(got))
		for n := range got {
			names = append(names, n)
		}
		sort.Strings(names)
		snap := snapshot{Tag: *tag, Benchmarks: make([]entry, 0, len(names))}
		for _, n := range names {
			snap.Benchmarks = append(snap.Benchmarks, got[n])
		}
		data, _ := json.MarshalIndent(snap, "", "  ")
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %d benchmarks to %s\n", len(snap.Benchmarks), *outPath)
	}
	if *baselinePath == "" {
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	var base snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: parsing %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}

	compare := strings.Split(*metricList, ",")
	for _, m := range compare {
		if _, ok := metrics[strings.TrimSpace(m)]; !ok {
			fmt.Fprintf(os.Stderr, "benchdiff: unknown metric %q\n", m)
			os.Exit(2)
		}
	}

	regressions := 0
	compared := 0
	for _, b := range base.Benchmarks {
		g, ok := got[b.Name]
		if !ok {
			continue
		}
		for _, mn := range compare {
			mn = strings.TrimSpace(mn)
			m := metrics[mn]
			bp, gp := m.get(b), m.get(g)
			if bp == nil || gp == nil {
				continue // metric absent on one side
			}
			bv, gv := *bp, *gp
			compared++
			var deltaPct float64
			switch {
			case bv == gv:
				deltaPct = 0
			case bv == 0:
				// Any growth from a true zero baseline is a regression
				// (zero allocs is the floor the pipeline defends).
				deltaPct = 100
			case m.lowerWorse:
				deltaPct = (bv - gv) / bv * 100
			default:
				deltaPct = (gv - bv) / bv * 100
			}
			status := "ok"
			if deltaPct > *threshold {
				status = "REGRESSION"
				regressions++
			}
			fmt.Printf("%-55s %-10s base=%-12.4g got=%-12.4g %+.1f%% [%s]\n",
				b.Name, mn, bv, gv, deltaPct, status)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no overlapping benchmarks/metrics between run and baseline")
		os.Exit(2)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed more than %.0f%%\n", regressions, *threshold)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d comparisons within %.0f%% of %s\n", compared, *threshold, *baselinePath)
}
