// Command shardd hosts one shard of the distributed serving layer: a
// durable stream.Engine behind the internal/rpc frame protocol. A
// cluster of shardd processes (one per shard) serves the same facade
// as the in-process sharded cluster — cmd/stream -connect drives it,
// and every algos kernel runs unmodified on stitched remote views.
//
//	shardd -shard 0 -shards 3 -addr 127.0.0.1:7070 -data /var/lib/shard0
//	shardd -shard 0 -shards 3 -replica-of 127.0.0.1:7070 -addr 127.0.0.1:7170
//
// With -replica-of the process is a read replica instead: it tails the
// primary's WAL record stream and serves pinned reads addressed by WAL
// sequence number (no local durability; it re-tails on restart).
//
// Submits are acknowledged only after the batch commits, so under the
// default fsync-per-commit policy an acked batch survives kill -9 of
// the process — the multi-process crash test in main_test.go proves
// exactly that.
//
// -obs-addr mounts the observability plane on a second listener:
// Prometheus-text /metrics (engine, WAL, per-verb RPC latency, dedup
// occupancy, armed failpoints), JSON /statusz (stage breakdown, version
// stamp, slow-commit traces), /healthz (503 once a durability error
// moved the engine to fail-stop), and /debug/pprof. -trace-slow arms
// the slow-commit ring behind /statusz.
//
//	shardd -shard 0 -shards 3 -addr 127.0.0.1:7070 -data d0 -obs-addr 127.0.0.1:9090
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/ctree"
	"repro/internal/faults"
	"repro/internal/ligra"
	"repro/internal/obs"
	"repro/internal/shard/remote"
	"repro/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "shardd:", err)
		os.Exit(1)
	}
}

// run is the whole daemon behind a testable seam: flags, engine (or
// replica), listener, serve loop, graceful shutdown on SIGINT/SIGTERM.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("shardd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:0", "listen address (port 0 picks one; the chosen address is printed)")
		shardID   = fs.Int("shard", 0, "this process's shard index")
		shards    = fs.Int("shards", 1, "total shard count of the cluster")
		weighted  = fs.Bool("weighted", false, "serve aspen.WeightedGraph instead of aspen.Graph")
		dataDir   = fs.String("data", "", "durability directory: WAL + checkpoints; recovers existing state on start (required for primaries)")
		fsyncPol  = fs.String("fsync", "per-commit", "WAL fsync policy: per-commit, interval, or off")
		fsyncInt  = fs.Duration("fsync-every", 20*time.Millisecond, "fsync interval under -fsync interval")
		ckptEvery = fs.Int("ckpt-every", 256, "checkpoint after this many commits")
		queueCap  = fs.Int("queue", 256, "ingest queue capacity (batches)")
		coalesce  = fs.Int("coalesce", 32, "max batches folded into one commit")
		replicaOf = fs.String("replica-of", "", "run as a read replica tailing this primary address instead of a primary")
		ring      = fs.Int("ring", 0, "replica: retained (seq, graph) states for exact-seq reads (0 = default)")
		promote   = fs.Duration("promote-after", 0, "replica: promote to accepting primary after this much sustained primary loss (0 = never)")
		dialTO    = fs.Duration("dial-timeout", 0, "replica: one dial attempt's timeout (0 = default 1s)")
		dedupWin  = fs.Int("dedup-window", 0, "exactly-once window: retried submits within the last N client seqs are acked, not re-applied (0 = default 4096)")
		obsAddr   = fs.String("obs-addr", "", "observability listen address serving /metrics, /statusz, /healthz and /debug/pprof (empty disables)")
		traceSlow = fs.Duration("trace-slow", 0, "capture per-stage breakdowns of commits slower than this into the /statusz slow ring (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shardID < 0 || *shards < 1 || *shardID >= *shards {
		return fmt.Errorf("bad -shard %d / -shards %d", *shardID, *shards)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	p := ctree.DefaultParams()
	if *replicaOf != "" {
		role := "replica"
		fmt.Fprintf(stdout, "shardd: shard %d/%d %s of %s listening on %s\n",
			*shardID, *shards, role, *replicaOf, ln.Addr())
		ro := remote.Options{PromoteAfter: *promote, DialTimeout: *dialTO, DedupWindow: *dedupWin}
		if *weighted {
			r := remote.NewWeightedReplica(*replicaOf, p, *shardID, *shards, *ring, ro)
			if err := wireReplicaObs(stdout, *obsAddr, r.Stats); err != nil {
				ln.Close()
				return err
			}
			go func() { <-sigs; r.Close() }()
			return r.Serve(ln)
		}
		r := remote.NewGraphReplica(*replicaOf, p, *shardID, *shards, *ring, ro)
		if err := wireReplicaObs(stdout, *obsAddr, r.Stats); err != nil {
			ln.Close()
			return err
		}
		go func() { <-sigs; r.Close() }()
		return r.Serve(ln)
	}

	if *dataDir == "" {
		ln.Close()
		return fmt.Errorf("-data is required (primaries are durable; acks imply committed + logged state)")
	}
	pol, err := stream.ParseSyncPolicy(*fsyncPol)
	if err != nil {
		ln.Close()
		return err
	}
	// The dedup window is rebuilt from the WAL's idempotency notes
	// before the server takes traffic, so a submit retried across a
	// crash-restart is still answered from the window, not re-applied.
	win := remote.NewDedup(*dedupWin)
	dur := stream.Durability{
		Dir:             *dataDir,
		Policy:          pol,
		Interval:        *fsyncInt,
		CheckpointEvery: *ckptEvery,
		OnReplayNote:    win.Observe,
	}
	opts := stream.Options{QueueCap: *queueCap, MaxCoalesce: *coalesce, TraceSlow: *traceSlow}

	t0 := time.Now()
	if *weighted {
		eng, err := stream.RecoverWeightedEngine(p, opts, dur)
		if err != nil {
			ln.Close()
			return fmt.Errorf("recover %s: %w", *dataDir, err)
		}
		srv := remote.NewWeightedServer(eng, p, *dataDir, *shardID, *shards)
		srv.SetDedup(win)
		if err := wirePrimaryObs(stdout, *obsAddr, eng, srv, win, *shardID); err != nil {
			ln.Close()
			return err
		}
		return servePrimary(stdout, ln, sigs, srv.Serve, srv.Close, eng, t0, *shardID, *shards)
	}
	eng, err := stream.RecoverGraphEngine(p, opts, dur)
	if err != nil {
		ln.Close()
		return fmt.Errorf("recover %s: %w", *dataDir, err)
	}
	srv := remote.NewGraphServer(eng, p, *dataDir, *shardID, *shards)
	srv.SetDedup(win)
	if err := wirePrimaryObs(stdout, *obsAddr, eng, srv, win, *shardID); err != nil {
		ln.Close()
		return err
	}
	return servePrimary(stdout, ln, sigs, srv.Serve, srv.Close, eng, t0, *shardID, *shards)
}

// wirePrimaryObs mounts the observability plane of a primary: the
// engine's full metric set (commit stages, WAL, checkpoints), the RPC
// server's per-verb dispatch latency, dedup occupancy, and the armed-
// failpoint gauge; /statusz carries the stage breakdown, slow-commit
// traces and engine stats; /healthz turns 503 once a durability error
// moves the engine to fail-stop. Empty addr disables the plane.
func wirePrimaryObs[G ligra.Graph, E any](stdout io.Writer, addr string,
	eng *stream.Engine[G, E], srv *remote.Server[G, E], win *remote.Dedup, shardID int) error {
	if addr == "" {
		return nil
	}
	reg := obs.NewRegistry()
	eng.RegisterMetrics(reg)
	srv.RegisterMetrics(reg)
	reg.GaugeFunc("aspen_faults_armed",
		"Failpoints currently armed in the process-global registry.",
		func() float64 { return float64(faults.Default.ArmedCount()) })
	osrv := obs.NewServer()
	osrv.SetRegistry(reg)
	osrv.SetHealth(eng.Err)
	osrv.SetStatus(func() any {
		slow, seen := eng.Tracer().SlowViews()
		clients, entries := win.Occupancy()
		return map[string]any{
			"shard":        shardID,
			"engine":       eng.Stats(),
			"stages":       stageStatus(eng.Tracer()),
			"slow_commits": map[string]any{"seen": seen, "traces": slow},
			"dedup":        map[string]int{"clients": clients, "entries": entries},
			"faults_armed": faults.Default.ArmedCount(),
		}
	})
	if err := osrv.Start(addr); err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	fmt.Fprintf(stdout, "shardd: obs on http://%s (/metrics /statusz /healthz /debug/pprof)\n", osrv.Addr())
	return nil
}

// wireReplicaObs is the replica's smaller plane: no local engine, so
// /statusz serves the replica's tail/read counters and /metrics the
// armed-failpoint gauge plus those counters as read-through views.
func wireReplicaObs(stdout io.Writer, addr string, stats func() remote.ReplicaStats) error {
	if addr == "" {
		return nil
	}
	reg := obs.NewRegistry()
	reg.GaugeFunc("aspen_faults_armed",
		"Failpoints currently armed in the process-global registry.",
		func() float64 { return float64(faults.Default.ArmedCount()) })
	reg.CounterFunc("aspen_replica_records_total",
		"WAL records applied from the primary's tail stream.",
		func() uint64 { return stats().Records })
	reg.GaugeFunc("aspen_replica_applied_seq",
		"Highest WAL sequence number applied (read watermark).",
		func() float64 { return float64(stats().Applied) })
	reg.CounterFunc("aspen_replica_reads_total",
		"Reads served by this replica.",
		func() uint64 { return stats().Reads })
	reg.CounterFunc("aspen_replica_resyncs_total",
		"Tail resynchronization rounds.",
		func() uint64 { return stats().Resyncs })
	osrv := obs.NewServer()
	osrv.SetRegistry(reg)
	osrv.SetStatus(func() any { return stats() })
	if err := osrv.Start(addr); err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	fmt.Fprintf(stdout, "shardd: obs on http://%s (/metrics /statusz /healthz /debug/pprof)\n", osrv.Addr())
	return nil
}

// stageStatus renders the tracer's per-stage summaries for /statusz.
func stageStatus(t *obs.StageTracer) map[string]obs.LatencySummary {
	sums := t.Summaries()
	out := make(map[string]obs.LatencySummary, len(sums))
	for i, s := range sums {
		if s.Count > 0 {
			out[obs.Stage(i).String()] = s
		}
	}
	return out
}

// engineCloser is the slice of stream.Engine the shutdown path needs.
type engineCloser interface {
	Close()
	Err() error
	Stats() stream.Stats
}

// servePrimary announces the listener, serves until a signal, then
// closes the server (draining connections) and the engine (final
// checkpoint).
func servePrimary(stdout io.Writer, ln net.Listener, sigs <-chan os.Signal,
	serve func(net.Listener) error, closeSrv func(), eng engineCloser,
	t0 time.Time, shardID, shards int) error {
	st := eng.Stats()
	fmt.Fprintf(stdout, "shardd: shard %d/%d recovered stamp %d in %v, listening on %s\n",
		shardID, shards, st.Stamp, time.Since(t0).Round(time.Millisecond), ln.Addr())
	done := make(chan struct{})
	go func() {
		<-sigs
		closeSrv()
		close(done)
	}()
	err := serve(ln)
	select {
	case <-done: // signal-driven shutdown: not an error
		err = nil
	default:
	}
	eng.Close()
	if eerr := eng.Err(); eerr != nil {
		return fmt.Errorf("engine: %w", eerr)
	}
	fmt.Fprintln(stdout, "shardd: clean shutdown")
	return err
}
