package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"slices"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/shard"
	"repro/internal/shard/remote"
	"repro/internal/xhash"
)

// TestMain doubles as the shardd child process: with SHARDD_ARGS set,
// the test binary runs the daemon instead of the suite, so the
// multi-process tests below get real shardd processes (real sockets,
// real files, real SIGKILL) without building cmd/shardd first.
func TestMain(m *testing.M) {
	if args := os.Getenv("SHARDD_ARGS"); args != "" {
		if err := run(strings.Fields(args), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "shardd child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// shardProc is one spawned shardd child.
type shardProc struct {
	cmd  *exec.Cmd
	addr string
}

// startShard spawns a shardd child and scans its stdout for the
// "listening on" line to learn the bound address.
func startShard(t *testing.T, args string) *shardProc {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "SHARDD_ARGS="+args)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &shardProc{cmd: cmd}
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			p.addr = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if p.addr == "" {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		t.Fatalf("child never announced its address (args %q)", args)
	}
	// Keep draining stdout so the child never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
		_, _ = io.Copy(io.Discard, out)
	}()
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	return p
}

// clusterBatch is the deterministic insert stream of the kill test:
// batch i is a seeded random undirected edge set over a small id space.
func clusterBatch(i int) []aspen.Edge {
	rng := xhash.NewRNG(uint64(9000 + i))
	pairs := make([]aspen.Edge, 25)
	for j := range pairs {
		pairs[j] = aspen.Edge{Src: rng.Uint32() % 512, Dst: rng.Uint32() % 512}
	}
	return aspen.MakeUndirected(pairs)
}

// TestClusterKillRecover is the distributed crash test: a 2-process
// cluster ingests acked batches under fsync-per-commit, one shard
// server is SIGKILLed mid-stream, restarted on the same directory and
// address, and every batch that was fully acked before the kill must be
// present in the recovered cluster view — an ack means committed and
// durable, cluster-wide.
func TestClusterKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	const shards = 2
	const span = 512
	dirs := [shards]string{t.TempDir(), t.TempDir()}
	procs := make([]*shardProc, shards)
	for s := 0; s < shards; s++ {
		procs[s] = startShard(t, fmt.Sprintf(
			"-shard %d -shards %d -addr 127.0.0.1:0 -data %s -fsync per-commit", s, shards, dirs[s]))
	}
	part := shard.NewRangePartitioner(shards, span)
	addrs := []string{procs[0].addr, procs[1].addr}
	c, err := remote.DialGraph(part, addrs, nil, remote.Options{DialWait: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	acked := make(map[int]bool)
	submit := func(i int) bool {
		p, err := c.Insert(clusterBatch(i))
		if err != nil {
			return false
		}
		if err := p.Wait(); err != nil {
			return false
		}
		acked[i] = true
		return true
	}

	const beforeKill = 30
	for i := 0; i < beforeKill; i++ {
		if !submit(i) {
			t.Fatalf("batch %d failed before the kill", i)
		}
	}

	// SIGKILL shard 1: no shutdown path runs, no final checkpoint.
	if err := procs[1].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = procs[1].cmd.Wait()

	// Submissions touching the dead shard fail; acked ones stay acked.
	submit(beforeKill)

	// Restart on the same directory and address; the client's
	// connection redials transparently on next use.
	procs[1] = startShard(t, fmt.Sprintf(
		"-shard 1 -shards %d -addr %s -data %s -fsync per-commit", shards, addrs[1], dirs[1]))
	if procs[1].addr != addrs[1] {
		t.Fatalf("restart bound %s, want %s", procs[1].addr, addrs[1])
	}

	for i := beforeKill + 1; i < beforeKill+10; i++ {
		if !submit(i) {
			t.Fatalf("batch %d failed after the restart", i)
		}
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}

	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	g, err := tx.Flat()
	if err != nil {
		t.Fatal(err)
	}
	// Every fully-acked batch's edges must be present (insert-only
	// stream: nothing ever removes them).
	for i := range acked {
		for _, e := range clusterBatch(i) {
			found := false
			g.ForEachNeighbor(e.Src, func(w uint32) bool {
				if w == e.Dst {
					found = true
					return false
				}
				return true
			})
			if !found {
				t.Fatalf("acked batch %d: edge %d->%d missing after kill+recover", i, e.Src, e.Dst)
			}
		}
	}
}

// killBatch is the deterministic mixed insert/delete stream of the
// retried-submit kill test: every fourth batch deletes, so a batch
// applied twice (an insert replayed after a later delete) changes the
// final edge set and fails the differential check.
func killBatch(i int) (del bool, edges []aspen.Edge) {
	rng := xhash.NewRNG(uint64(7000 + i))
	edges = make([]aspen.Edge, 0, 40)
	for j := 0; j < 40; j++ {
		u, v := rng.Uint32()%512, rng.Uint32()%512
		if u != v {
			edges = append(edges, aspen.Edge{Src: u, Dst: v})
		}
	}
	return i%4 == 3, edges
}

// TestKillDuringRetriedSubmit SIGKILLs a durable shardd while a burst of
// pipelined submits is in flight, restarts it on the same directory and
// address, and requires every submit to succeed exactly once: the client
// retries across the crash, the recovered server replays its WAL
// idempotency notes, and retried batches that committed before the kill
// are acked as duplicates instead of re-applied. The mixed
// insert/delete stream makes any double-apply visible in the final
// graph, which must equal a reference applying each batch once.
func TestKillDuringRetriedSubmit(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	p := startShard(t, "-shard 0 -shards 1 -addr 127.0.0.1:0 -data "+dir+" -fsync per-commit")
	part := shard.NewRangePartitioner(1, 512)
	c, err := remote.DialGraph(part, []string{p.addr}, nil, remote.Options{
		DialWait:        15 * time.Second,
		RetryDeadline:   60 * time.Second,
		Backoff:         remote.Backoff{Base: 2 * time.Millisecond, Max: 25 * time.Millisecond},
		BreakerCooldown: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const batches = 40
	submit := func(i int) *remote.Pending {
		del, edges := killBatch(i)
		var pend *remote.Pending
		var err error
		if del {
			pend, err = c.Delete(edges)
		} else {
			pend, err = c.Insert(edges)
		}
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		return pend
	}

	// Pipeline the first 30 batches without waiting — with
	// fsync-per-commit the server falls behind immediately, so the kill
	// lands with most of them unacked (committed-but-unacked ones are
	// exactly the retries the dedup window must absorb).
	pendings := make([]*remote.Pending, 0, batches)
	for i := 0; i < 30; i++ {
		pendings = append(pendings, submit(i))
	}
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = p.cmd.Wait()

	// Restart on the same directory and address; WAL replay re-observes
	// the idempotency notes before the listener comes back up.
	p2 := startShard(t, fmt.Sprintf(
		"-shard 0 -shards 1 -addr %s -data %s -fsync per-commit", p.addr, dir))
	if p2.addr != p.addr {
		t.Fatalf("restart bound %s, want %s", p2.addr, p.addr)
	}
	for i := 30; i < batches; i++ {
		pendings = append(pendings, submit(i))
	}
	for i, pend := range pendings {
		if err := pend.Wait(); err != nil {
			t.Fatalf("batch %d never committed across the kill: %v", i, err)
		}
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.Retries == 0 {
		t.Fatal("no submit was retried — the kill missed the in-flight window")
	}
	t.Logf("retries=%d dedup_acks=%d breaker_opens=%d", st.Retries, st.DedupAcks, st.BreakerOpens)

	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	flat, err := tx.Flat()
	if err != nil {
		t.Fatal(err)
	}
	ref := aspen.NewGraph(ctree.DefaultParams())
	for i := 0; i < batches; i++ {
		if del, edges := killBatch(i); del {
			ref = ref.DeleteEdges(edges)
		} else {
			ref = ref.InsertEdges(edges)
		}
	}
	if flat.Order() != ref.Order() {
		t.Fatalf("Order = %d, want %d", flat.Order(), ref.Order())
	}
	if flat.NumEdges() != ref.NumEdges() {
		t.Fatalf("NumEdges = %d, want %d (exactly-once violated)", flat.NumEdges(), ref.NumEdges())
	}
	for u := 0; u < ref.Order(); u++ {
		var want, got []uint32
		ref.ForEachNeighbor(uint32(u), func(w uint32) bool { want = append(want, w); return true })
		flat.ForEachNeighbor(uint32(u), func(w uint32) bool { got = append(got, w); return true })
		if !slices.Equal(got, want) {
			t.Fatalf("neighbors of %d differ after kill+retry: got %v want %v", u, got, want)
		}
	}
}

// TestGracefulShutdown sends SIGTERM and expects a clean exit (final
// checkpoint written, exit code 0).
func TestGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	p := startShard(t, "-shard 0 -shards 1 -addr 127.0.0.1:0 -data "+dir)
	part := shard.NewRangePartitioner(1, 512)
	c, err := remote.DialGraph(part, []string{p.addr}, nil, remote.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pend, err := c.Insert(clusterBatch(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := pend.Wait(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM exit: %v", err)
	}
}
