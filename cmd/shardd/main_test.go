package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/aspen"
	"repro/internal/shard"
	"repro/internal/shard/remote"
	"repro/internal/xhash"
)

// TestMain doubles as the shardd child process: with SHARDD_ARGS set,
// the test binary runs the daemon instead of the suite, so the
// multi-process tests below get real shardd processes (real sockets,
// real files, real SIGKILL) without building cmd/shardd first.
func TestMain(m *testing.M) {
	if args := os.Getenv("SHARDD_ARGS"); args != "" {
		if err := run(strings.Fields(args), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "shardd child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// shardProc is one spawned shardd child.
type shardProc struct {
	cmd  *exec.Cmd
	addr string
}

// startShard spawns a shardd child and scans its stdout for the
// "listening on" line to learn the bound address.
func startShard(t *testing.T, args string) *shardProc {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "SHARDD_ARGS="+args)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &shardProc{cmd: cmd}
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			p.addr = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if p.addr == "" {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		t.Fatalf("child never announced its address (args %q)", args)
	}
	// Keep draining stdout so the child never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
		_, _ = io.Copy(io.Discard, out)
	}()
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	return p
}

// clusterBatch is the deterministic insert stream of the kill test:
// batch i is a seeded random undirected edge set over a small id space.
func clusterBatch(i int) []aspen.Edge {
	rng := xhash.NewRNG(uint64(9000 + i))
	pairs := make([]aspen.Edge, 25)
	for j := range pairs {
		pairs[j] = aspen.Edge{Src: rng.Uint32() % 512, Dst: rng.Uint32() % 512}
	}
	return aspen.MakeUndirected(pairs)
}

// TestClusterKillRecover is the distributed crash test: a 2-process
// cluster ingests acked batches under fsync-per-commit, one shard
// server is SIGKILLed mid-stream, restarted on the same directory and
// address, and every batch that was fully acked before the kill must be
// present in the recovered cluster view — an ack means committed and
// durable, cluster-wide.
func TestClusterKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	const shards = 2
	const span = 512
	dirs := [shards]string{t.TempDir(), t.TempDir()}
	procs := make([]*shardProc, shards)
	for s := 0; s < shards; s++ {
		procs[s] = startShard(t, fmt.Sprintf(
			"-shard %d -shards %d -addr 127.0.0.1:0 -data %s -fsync per-commit", s, shards, dirs[s]))
	}
	part := shard.NewRangePartitioner(shards, span)
	addrs := []string{procs[0].addr, procs[1].addr}
	c, err := remote.DialGraph(part, addrs, nil, remote.Options{DialWait: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	acked := make(map[int]bool)
	submit := func(i int) bool {
		p, err := c.Insert(clusterBatch(i))
		if err != nil {
			return false
		}
		if err := p.Wait(); err != nil {
			return false
		}
		acked[i] = true
		return true
	}

	const beforeKill = 30
	for i := 0; i < beforeKill; i++ {
		if !submit(i) {
			t.Fatalf("batch %d failed before the kill", i)
		}
	}

	// SIGKILL shard 1: no shutdown path runs, no final checkpoint.
	if err := procs[1].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = procs[1].cmd.Wait()

	// Submissions touching the dead shard fail; acked ones stay acked.
	submit(beforeKill)

	// Restart on the same directory and address; the client's
	// connection redials transparently on next use.
	procs[1] = startShard(t, fmt.Sprintf(
		"-shard 1 -shards %d -addr %s -data %s -fsync per-commit", shards, addrs[1], dirs[1]))
	if procs[1].addr != addrs[1] {
		t.Fatalf("restart bound %s, want %s", procs[1].addr, addrs[1])
	}

	for i := beforeKill + 1; i < beforeKill+10; i++ {
		if !submit(i) {
			t.Fatalf("batch %d failed after the restart", i)
		}
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}

	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	g, err := tx.Flat()
	if err != nil {
		t.Fatal(err)
	}
	// Every fully-acked batch's edges must be present (insert-only
	// stream: nothing ever removes them).
	for i := range acked {
		for _, e := range clusterBatch(i) {
			found := false
			g.ForEachNeighbor(e.Src, func(w uint32) bool {
				if w == e.Dst {
					found = true
					return false
				}
				return true
			})
			if !found {
				t.Fatalf("acked batch %d: edge %d->%d missing after kill+recover", i, e.Src, e.Dst)
			}
		}
	}
}

// TestGracefulShutdown sends SIGTERM and expects a clean exit (final
// checkpoint written, exit code 0).
func TestGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	p := startShard(t, "-shard 0 -shards 1 -addr 127.0.0.1:0 -data "+dir)
	part := shard.NewRangePartitioner(1, 512)
	c, err := remote.DialGraph(part, []string{p.addr}, nil, remote.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pend, err := c.Insert(clusterBatch(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := pend.Wait(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM exit: %v", err)
	}
}
