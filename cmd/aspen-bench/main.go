// Command aspen-bench regenerates the paper's evaluation tables and figures
// (see DESIGN.md for the experiment index). Examples:
//
//	aspen-bench -list
//	aspen-bench -run table2
//	aspen-bench -run figure5 -quick
//	aspen-bench -all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		run   = flag.String("run", "", "experiment id to run (e.g. table2, figure5)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "use small inputs (smoke-test scale)")
		list  = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()
	cfg := bench.Config{Quick: *quick}
	switch {
	case *list:
		seen := map[string]bool{}
		for _, e := range bench.Experiments {
			if !seen[e.Title] {
				seen[e.Title] = true
				fmt.Printf("%-10s %s\n", e.ID, e.Title)
			}
		}
	case *all:
		bench.RunAll(os.Stdout, cfg)
	case *run != "":
		e, ok := bench.Lookup(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "aspen-bench: unknown experiment %q (try -list)\n", *run)
			os.Exit(1)
		}
		fmt.Printf("== %s ==\n", e.Title)
		e.Run(os.Stdout, cfg)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
