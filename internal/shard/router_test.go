package shard

import (
	"testing"
	"unsafe"

	"repro/internal/aspen"
	"repro/internal/xhash"
)

func randomEdges(n int, idSpace uint32, seed uint64) []aspen.Edge {
	rng := xhash.NewRNG(seed)
	out := make([]aspen.Edge, n)
	for i := range out {
		out[i] = aspen.Edge{Src: rng.Uint32() % idSpace, Dst: rng.Uint32() % idSpace}
	}
	return out
}

func TestRouteSplitsByOwner(t *testing.T) {
	edges := randomEdges(5_000, 1<<16, 9)
	for _, p := range []Partitioner{
		NewRangePartitioner(4, 1<<16),
		NewHashPartitioner(3),
		NewRangePartitioner(1, 1<<16),
	} {
		parts := Route(p, edges, EdgeSource)
		if len(parts) != p.Shards() {
			t.Fatalf("Route returned %d parts, want %d", len(parts), p.Shards())
		}
		// Every edge lands on its owner, and the per-shard order equals the
		// input order filtered to that shard (stability).
		want := make([][]aspen.Edge, p.Shards())
		for _, e := range edges {
			o := p.Owner(e.Src)
			want[o] = append(want[o], e)
		}
		total := 0
		for s, sub := range parts {
			total += len(sub)
			if len(sub) != len(want[s]) {
				t.Fatalf("shard %d got %d edges, want %d", s, len(sub), len(want[s]))
			}
			for i, e := range sub {
				if e != want[s][i] {
					t.Fatalf("shard %d edge %d = %v, want %v (order not stable)", s, i, e, want[s][i])
				}
			}
		}
		if total != len(edges) {
			t.Fatalf("routed %d edges, want %d", total, len(edges))
		}
	}
}

func TestRouteZeroCopyBacking(t *testing.T) {
	edges := randomEdges(1_000, 1<<12, 10)
	p := NewRangePartitioner(4, 1<<12)
	parts := Route(p, edges, EdgeSource)
	var prev []aspen.Edge
	for _, sub := range parts {
		if len(sub) == 0 {
			continue
		}
		// Capacity is clipped to the slice: an append cannot clobber the
		// next shard's region of the shared backing array.
		if cap(sub) != len(sub) {
			t.Fatalf("sub-batch capacity %d > len %d: not clipped", cap(sub), len(sub))
		}
		// Consecutive non-empty shards are adjacent in one backing array.
		if prev != nil {
			end := uintptr(unsafe.Pointer(&prev[0])) + uintptr(len(prev))*unsafe.Sizeof(prev[0])
			if uintptr(unsafe.Pointer(&sub[0])) != end {
				t.Fatal("per-shard slices are not contiguous views of one backing array")
			}
		}
		prev = sub
	}
}

func TestRouteEmptyAndSingle(t *testing.T) {
	p := NewRangePartitioner(4, 1<<10)
	parts := Route(p, nil, EdgeSource)
	for s, sub := range parts {
		if len(sub) != 0 {
			t.Fatalf("empty batch produced edges on shard %d", s)
		}
	}
	edges := randomEdges(100, 1<<10, 11)
	one := Route(NewRangePartitioner(1, 1<<10), edges, EdgeSource)
	if len(one) != 1 || &one[0][0] != &edges[0] {
		t.Fatal("single-shard route must return the input slice itself")
	}
}
