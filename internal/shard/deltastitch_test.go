package shard

import (
	"fmt"
	"testing"

	"repro/internal/aspen"
	"repro/internal/ligra"
	"repro/internal/rmat"
	"repro/internal/stream"
)

// stitchedViews returns the per-shard view slice behind a stitched flat
// view (tests run in-package, so the internals are reachable).
func stitchedViews(t *testing.T, g ligra.Graph) []ligra.Graph {
	t.Helper()
	fv := flatViewOf(g)
	if fv == nil {
		t.Fatalf("not a stitched flat view: %T", g)
	}
	return fv.views
}

// TestDeltaStitchPointerIdentity is the acceptance check for the stitched
// fast path: after a commit confined to shard 0, the next stitched view
// must reuse shard 1's per-shard view verbatim — the same pointer, no
// engine round-trip — and refresh only shard 0's.
func TestDeltaStitchPointerIdentity(t *testing.T) {
	part := NewRangePartitioner(2, 1<<8)
	c := NewGraphCluster(part, testParams(), stream.Options{})
	defer c.Close()
	single := aspen.NewGraph(testParams())

	apply := func(edges []aspen.Edge) {
		single = single.InsertEdges(edges)
		if _, err := c.Insert(edges); err != nil {
			t.Fatal(err)
		}
		if err := c.Barrier(); err != nil {
			t.Fatal(err)
		}
	}

	// Seed both shards, stitch once in full.
	gen := rmat.NewGenerator(8, 77)
	apply(aspen.MakeUndirected(gen.Edges(0, 1_200)))
	tx1 := c.Begin()
	before := stitchedViews(t, tx1.Flat())
	kept := before[1]
	tx1.Close()
	if st := c.Stats(); st.StitchBuilds != 1 || st.StitchPatches != 0 {
		t.Fatalf("after first stitch: builds=%d patches=%d, want 1/0", st.StitchBuilds, st.StitchPatches)
	}

	// A batch whose endpoints all live in shard 0's range [0, 128).
	batch := aspen.MakeUndirected([]aspen.Edge{{Src: 3, Dst: 90}, {Src: 17, Dst: 44}, {Src: 100, Dst: 101}})
	apply(batch)

	tx2 := c.Begin()
	defer tx2.Close()
	flat := tx2.Flat()
	after := stitchedViews(t, flat)
	if after[1] != kept {
		t.Fatal("unmoved shard 1's view was rebuilt instead of reused (pointer differs)")
	}
	if after[0] == before[0] {
		t.Fatal("moved shard 0's view was not refreshed")
	}
	checkStructure(t, single, flat)
	st := c.Stats()
	if st.StitchBuilds != 1 || st.StitchPatches != 1 {
		t.Fatalf("builds=%d patches=%d, want exactly one full stitch and one delta", st.StitchBuilds, st.StitchPatches)
	}
	// Shard 1's engine built its flat view once, for the original version.
	if fb := st.PerShard[1].FlatBuilds; fb != 1 {
		t.Fatalf("shard 1 flat builds = %d, want 1 (delta stitch must not re-ask)", fb)
	}
}

// TestDeltaStitchDifferential chains delta stitches down schedules that
// always leave one shard untouched, for both partitioner families, checking
// every stitched view against a single-engine ground truth and asserting
// pointer reuse for every unmoved shard at every step.
func TestDeltaStitchDifferential(t *testing.T) {
	for _, part := range []Partitioner{
		NewRangePartitioner(3, 1<<9),
		NewHashPartitioner(3),
	} {
		t.Run(fmt.Sprintf("%T-%d", part, part.Shards()), func(t *testing.T) {
			c := NewGraphCluster(part, testParams(), stream.Options{})
			defer c.Close()
			single := aspen.NewGraph(testParams())
			gen := rmat.NewGenerator(9, 101)

			// avoid drops edges touching shard s, so a batch never moves it.
			avoid := func(edges []aspen.Edge, s int) []aspen.Edge {
				var out []aspen.Edge
				for _, e := range edges {
					if part.Owner(e.Src) != s && part.Owner(e.Dst) != s {
						out = append(out, e)
					}
				}
				return out
			}

			var history [][]aspen.Edge
			var pos uint64
			prevStamps := make([]uint64, part.Shards())
			var prevViews []ligra.Graph
			for step := 0; step < 12; step++ {
				quiet := step % part.Shards()
				var edges []aspen.Edge
				del := step%4 == 3 && len(history) > 1
				if del {
					edges = avoid(history[0], quiet)
					history = history[1:]
				} else {
					edges = avoid(aspen.MakeUndirected(gen.Edges(pos, pos+350)), quiet)
					pos += 350
					history = append(history, edges)
				}
				var err error
				if del {
					single = single.DeleteEdges(edges)
					_, err = c.Delete(edges)
				} else {
					single = single.InsertEdges(edges)
					_, err = c.Insert(edges)
				}
				if err != nil {
					t.Fatal(err)
				}
				if err := c.Barrier(); err != nil {
					t.Fatal(err)
				}

				tx := c.Begin()
				flat := tx.Flat()
				views := stitchedViews(t, flat)
				stamps := append([]uint64(nil), tx.Stamps()...)
				checkStructure(t, single, flat)
				if prevViews != nil {
					for s := range stamps {
						if stamps[s] == prevStamps[s] && views[s] != prevViews[s] {
							t.Fatalf("step %d: shard %d did not move but its view was rebuilt", step, s)
						}
					}
				}
				prevViews = append([]ligra.Graph(nil), views...)
				prevStamps = stamps
				tx.Close()
			}
			st := c.Stats()
			if st.StitchPatches == 0 {
				t.Fatal("schedule never took the delta-stitch path")
			}
			if st.StitchBuilds == 0 {
				t.Fatal("first stitch should have been a full build")
			}
		})
	}
}

// TestDeltaStitchWeighted covers the weighted wrapper: a delta-stitched
// weighted cluster view must still satisfy ligra.FlatWeightedGraph and
// reuse unmoved shards' views.
func TestDeltaStitchWeighted(t *testing.T) {
	part := NewRangePartitioner(2, 1<<8)
	c := NewWeightedCluster(part, testParams(), stream.Options{})
	defer c.Close()
	mkw := func(es []aspen.Edge, w float32) []aspen.WeightedEdge {
		out := make([]aspen.WeightedEdge, 0, 2*len(es))
		for _, e := range es {
			out = append(out,
				aspen.WeightedEdge{Src: e.Src, Dst: e.Dst, Weight: w},
				aspen.WeightedEdge{Src: e.Dst, Dst: e.Src, Weight: w})
		}
		return out
	}
	gen := rmat.NewGenerator(8, 55)
	if _, err := c.Insert(mkw(gen.Edges(0, 800), 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	tx1 := c.Begin()
	kept := stitchedViews(t, tx1.Flat())[1]
	tx1.Close()

	if _, err := c.Insert(mkw([]aspen.Edge{{Src: 9, Dst: 120}}, 5)); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	tx2 := c.Begin()
	defer tx2.Close()
	flat := tx2.Flat()
	if _, ok := flat.(ligra.FlatWeightedGraph); !ok {
		t.Fatalf("delta-stitched weighted view is %T, want ligra.FlatWeightedGraph", flat)
	}
	if stitchedViews(t, flat)[1] != kept {
		t.Fatal("unmoved weighted shard's view was rebuilt")
	}
	if st := c.Stats(); st.StitchPatches != 1 {
		t.Fatalf("stitch patches = %d, want 1", st.StitchPatches)
	}
}
