package shard

import (
	"fmt"
	"math"
	"slices"
	"testing"

	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/ligra"
	"repro/internal/rmat"
	"repro/internal/stream"
	"repro/internal/xhash"
)

func testParams() ctree.Params { return ctree.Params{B: 8} }

// op is one update batch of a differential schedule.
type op struct {
	del   bool
	edges []aspen.Edge
}

// rmatOps builds an insert/delete schedule from the rMAT stream: batches of
// fresh inserts with every third batch followed by a delete replaying part
// of a previous one — the same shape the §7.8 driver uses.
func rmatOps(scale int, batches, batchSize int, seed uint64) []op {
	gen := rmat.NewGenerator(scale, seed)
	var ops []op
	var pos uint64
	for i := 0; i < batches; i++ {
		lo := pos
		pos += uint64(batchSize)
		ops = append(ops, op{edges: aspen.MakeUndirected(gen.Edges(lo, pos))})
		if i%3 == 2 && lo >= uint64(batchSize) {
			// Replay half of the previous batch as deletions.
			ops = append(ops, op{del: true,
				edges: aspen.MakeUndirected(gen.Edges(lo-uint64(batchSize), lo-uint64(batchSize)/2))})
		}
	}
	return ops
}

// randomOps builds uniform-random insert/delete batches (deletes drawn from
// the same distribution, so some hit and some miss).
func randomOps(idSpace uint32, batches, batchSize int, seed uint64) []op {
	rng := xhash.NewRNG(seed)
	var ops []op
	for i := 0; i < batches; i++ {
		edges := make([]aspen.Edge, 0, batchSize)
		for j := 0; j < batchSize; j++ {
			u, v := rng.Uint32()%idSpace, rng.Uint32()%idSpace
			if u != v {
				edges = append(edges, aspen.Edge{Src: u, Dst: v})
			}
		}
		ops = append(ops, op{del: i%4 == 3, edges: aspen.MakeUndirected(edges)})
	}
	return ops
}

// applyBoth replays the schedule into a fresh single-engine ground truth
// and into a cluster over part, barriers the cluster, and returns both.
// The caller owns closing the cluster.
func applyBoth(t *testing.T, part Partitioner, ops []op) (aspen.Graph, *Cluster[aspen.Graph, aspen.Edge]) {
	t.Helper()
	single := aspen.NewGraph(testParams())
	c := NewGraphCluster(part, testParams(), stream.Options{})
	for _, o := range ops {
		var err error
		if o.del {
			single = single.DeleteEdges(o.edges)
			_, err = c.Delete(o.edges)
		} else {
			single = single.InsertEdges(o.edges)
			_, err = c.Insert(o.edges)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	return single, c
}

// checkStructure compares the sharded views against the ground truth at the
// graph-interface level: order, edge count, degrees, and adjacency lists.
func checkStructure(t *testing.T, g aspen.Graph, views ...ligra.Graph) {
	t.Helper()
	for vi, v := range views {
		if v.Order() != g.Order() {
			t.Fatalf("view %d: Order = %d, want %d", vi, v.Order(), g.Order())
		}
		if v.NumEdges() != g.NumEdges() {
			t.Fatalf("view %d: NumEdges = %d, want %d", vi, v.NumEdges(), g.NumEdges())
		}
		for u := 0; u < g.Order(); u++ {
			id := uint32(u)
			if v.Degree(id) != g.Degree(id) {
				t.Fatalf("view %d: Degree(%d) = %d, want %d", vi, id, v.Degree(id), g.Degree(id))
			}
			var want, got []uint32
			g.ForEachNeighbor(id, func(w uint32) bool { want = append(want, w); return true })
			v.ForEachNeighbor(id, func(w uint32) bool { got = append(got, w); return true })
			if !slices.Equal(got, want) {
				t.Fatalf("view %d: neighbors of %d differ: %v vs %v", vi, id, got, want)
			}
		}
	}
}

func approxEqual(t *testing.T, name string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol*(1+math.Abs(want[i])) {
			t.Fatalf("%s[%d] = %g, want %g", name, i, got[i], want[i])
		}
	}
}

// checkKernels runs the full unweighted kernel suite on each view and
// compares against the single-engine ground truth: deterministic kernels
// must be bit-identical, floating-point ones equal within rounding.
func checkKernels(t *testing.T, g aspen.Graph, views ...ligra.Graph) {
	t.Helper()
	srcs := []uint32{0, 1, 7, uint32(g.Order()) / 2}
	for vi, v := range views {
		tag := fmt.Sprintf("view %d", vi)
		for _, src := range srcs {
			if want, got := algos.BFS(g, src, false).Distances(), algos.BFS(v, src, false).Distances(); !slices.Equal(got, want) {
				t.Fatalf("%s: BFS(%d) distances differ", tag, src)
			}
		}
		if want, got := algos.ConnectedComponents(g), algos.ConnectedComponents(v); !slices.Equal(got, want) {
			t.Fatalf("%s: CC labels differ", tag)
		}
		if want, got := algos.KCore(g), algos.KCore(v); !slices.Equal(got, want) {
			t.Fatalf("%s: coreness differs", tag)
		}
		if want, got := algos.TriangleCount(g), algos.TriangleCount(v); got != want {
			t.Fatalf("%s: triangles = %d, want %d", tag, got, want)
		}
		if want, got := algos.MIS(g, 42), algos.MIS(v, 42); !slices.Equal(got, want) {
			t.Fatalf("%s: MIS differs", tag)
		}
		for _, src := range srcs[:2] {
			want, got := algos.TwoHop(g, src), algos.TwoHop(v, src)
			slices.Sort(want)
			slices.Sort(got)
			if !slices.Equal(got, want) {
				t.Fatalf("%s: TwoHop(%d) differs", tag, src)
			}
		}
		approxEqual(t, tag+": PageRank", algos.PageRank(v, 1e-10, 30), algos.PageRank(g, 1e-10, 30), 1e-8)
		approxEqual(t, tag+": BC", algos.BC(v, 1, false), algos.BC(g, 1, false), 1e-9)
	}
}

func TestShardedMatchesSingleEngine(t *testing.T) {
	schedules := map[string][]op{
		"rmat":   rmatOps(10, 8, 1_500, 21),
		"random": randomOps(1<<10, 8, 1_200, 22),
	}
	for name, ops := range schedules {
		for _, part := range []Partitioner{
			NewRangePartitioner(2, 1<<10),
			NewRangePartitioner(4, 1<<10),
			NewHashPartitioner(3),
		} {
			t.Run(fmt.Sprintf("%s/%T-%d", name, part, part.Shards()), func(t *testing.T) {
				single, c := applyBoth(t, part, ops)
				defer c.Close()
				tx := c.Begin()
				defer tx.Close()
				tree := tx.Ligra()
				flat := tx.Flat()
				if _, ok := flat.(ligra.FlatGraph); !ok {
					t.Fatal("stitched flat view does not satisfy ligra.FlatGraph")
				}
				checkStructure(t, single, tree, flat)
				checkKernels(t, single, tree, flat)
			})
		}
	}
}

// TestShardedWeightedMatchesSingleEngine runs the weighted suite: SSSP on
// the sharded tree and stitched flat views against the single weighted
// graph, plus the unweighted kernels that weighted graphs also serve.
func TestShardedWeightedMatchesSingleEngine(t *testing.T) {
	gen := rmat.NewGenerator(10, 5)
	weightOf := func(i uint64) float32 { return 1 + float32(xhash.Mix64(i)%1000)/1000 }
	mkBatch := func(lo, hi uint64) []aspen.WeightedEdge {
		es := gen.Edges(lo, hi)
		out := make([]aspen.WeightedEdge, 0, 2*len(es))
		for j, e := range es {
			if e.Src == e.Dst {
				continue
			}
			w := weightOf(lo + uint64(j))
			out = append(out,
				aspen.WeightedEdge{Src: e.Src, Dst: e.Dst, Weight: w},
				aspen.WeightedEdge{Src: e.Dst, Dst: e.Src, Weight: w})
		}
		return out
	}
	for _, part := range []Partitioner{
		NewRangePartitioner(4, 1<<10),
		NewHashPartitioner(2),
	} {
		t.Run(fmt.Sprintf("%T-%d", part, part.Shards()), func(t *testing.T) {
			single := aspen.NewWeightedGraphWith(testParams())
			c := NewWeightedCluster(part, testParams(), stream.Options{})
			defer c.Close()
			var pos uint64
			for i := 0; i < 6; i++ {
				batch := mkBatch(pos, pos+1_000)
				pos += 1_000
				single = single.InsertEdges(batch)
				if _, err := c.Insert(batch); err != nil {
					t.Fatal(err)
				}
				if i == 3 { // delete a slice of the first batch
					del := mkBatch(0, 500)
					single = single.DeleteEdges(del)
					if _, err := c.Delete(del); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := c.Barrier(); err != nil {
				t.Fatal(err)
			}
			tx := c.Begin()
			defer tx.Close()
			tree, treeOK := tx.Ligra().(ligra.WeightedGraph)
			if !treeOK {
				t.Fatal("weighted cluster tree view does not satisfy ligra.WeightedGraph")
			}
			flat, flatOK := tx.Flat().(ligra.FlatWeightedGraph)
			if !flatOK {
				t.Fatal("weighted stitched flat view does not satisfy ligra.FlatWeightedGraph")
			}
			for _, src := range []uint32{0, 3, 200} {
				want := algos.SSSP(single, src)
				for vi, v := range []ligra.WeightedGraph{tree, flat} {
					got := algos.SSSP(v, src)
					if len(got) != len(want) {
						t.Fatalf("view %d: SSSP length %d vs %d", vi, len(got), len(want))
					}
					for i := range want {
						wi, gi := float64(want[i]), float64(got[i])
						if math.IsInf(wi, 1) != math.IsInf(gi, 1) ||
							(!math.IsInf(wi, 1) && math.Abs(gi-wi) > 1e-5*(1+math.Abs(wi))) {
							t.Fatalf("view %d: SSSP(%d)[%d] = %g, want %g", vi, src, i, gi, wi)
						}
					}
				}
			}
			if want, got := algos.BFS(single, 1, false).Distances(), algos.BFS(tree, 1, false).Distances(); !slices.Equal(got, want) {
				t.Fatal("weighted sharded BFS differs from single engine")
			}
			if want, got := algos.ConnectedComponents(single), algos.ConnectedComponents(flat); !slices.Equal(got, want) {
				t.Fatal("weighted sharded CC differs from single engine")
			}
		})
	}
}
