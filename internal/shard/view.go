package shard

import (
	"repro/internal/aspen"
	"repro/internal/ligra"
	"repro/internal/parallel"
)

// View is the cross-shard tree snapshot: one pinned per-shard graph per
// entry of the version vector, served through the ligra traversal
// interfaces by dispatching every vertex access to the shard that owns it.
// Because ownership is by source vertex over the full id space, Degree and
// ForEachNeighbor answer exactly as the equivalent single-engine snapshot
// would: the owner holds u's complete adjacency and every other shard
// holds u with no out-edges (or not at all). A View is valid only while
// the transaction that produced it is open.
type View[G ligra.Graph] struct {
	part  Partitioner
	gs    []G
	order int
	m     uint64
}

// Order returns the vertex-id space size: the maximum over the pinned
// shard snapshots (destination ride-along vertices make every id reachable
// on some shard, so this equals the unsharded Order).
func (v *View[G]) Order() int { return v.order }

// NumEdges returns the directed edge count, summed over shards in O(S).
func (v *View[G]) NumEdges() uint64 { return v.m }

// Degree returns u's degree from its owning shard. O(log n_s).
func (v *View[G]) Degree(u uint32) int { return v.gs[v.part.Owner(u)].Degree(u) }

// ForEachNeighbor applies f to u's neighbors in increasing order until f
// returns false, reading the owning shard's edge tree.
func (v *View[G]) ForEachNeighbor(u uint32, f func(w uint32) bool) {
	v.gs[v.part.Owner(u)].ForEachNeighbor(u, f)
}

// ForEachNeighborPar applies f to u's neighbors with edge-tree parallelism
// when the shard snapshot supports it (aspen graphs do).
func (v *View[G]) ForEachNeighborPar(u uint32, f func(w uint32)) {
	g := v.gs[v.part.Owner(u)]
	if pg, ok := any(g).(ligra.ParallelNeighborGraph); ok {
		pg.ForEachNeighborPar(u, f)
		return
	}
	g.ForEachNeighbor(u, func(w uint32) bool { f(w); return true })
}

// WeightedView adapts the weighted cluster's tree view to
// ligra.WeightedGraph, so SSSP and friends run on sharded snapshots
// unmodified.
type WeightedView struct {
	*View[aspen.WeightedGraph]
}

// ForEachNeighborW applies f to u's (neighbor, weight) pairs in increasing
// neighbor order until f returns false.
func (v WeightedView) ForEachNeighborW(u uint32, f func(w uint32, wt float32) bool) {
	v.gs[v.part.Owner(u)].ForEachNeighborW(u, f)
}

// FlatView is the stitched §5.1 flat snapshot of a version vector: each
// shard's per-version flat view (built and cached by its engine) plus one
// global id-indexed degree array assembled from the per-shard degree
// arrays — contiguous copies under a RangePartitioner, an ownership
// scatter otherwise. The stitched array is what ligra's FlatGraph routing
// consumes: O(1) degree access and exact work-based frontier partitioning
// on degree prefix sums, now spanning all shards. Neighbor iteration
// dispatches to the owning shard's flat view in O(1).
type FlatView struct {
	part  Partitioner
	views []ligra.Graph
	degs  []int32
	order int
	m     uint64
}

// Order returns the vertex-id space size.
func (f *FlatView) Order() int { return f.order }

// NumEdges returns the directed edge count over all shards.
func (f *FlatView) NumEdges() uint64 { return f.m }

// Degree returns u's degree in O(1) from the stitched array. Total:
// out-of-range ids have degree 0.
func (f *FlatView) Degree(u uint32) int {
	if int(u) >= f.order {
		return 0
	}
	return int(f.degs[u])
}

// Degrees exposes the stitched id-indexed degree array — the
// ligra.FlatGraph capability. Callers must treat it as read-only.
func (f *FlatView) Degrees() []int32 { return f.degs }

// ForEachNeighbor applies fn to u's neighbors in increasing order until fn
// returns false, via the owning shard's flat view.
func (f *FlatView) ForEachNeighbor(u uint32, fn func(w uint32) bool) {
	f.views[f.part.Owner(u)].ForEachNeighbor(u, fn)
}

// ForEachNeighborPar applies fn with edge-tree parallelism when the
// owning shard's view supports it.
func (f *FlatView) ForEachNeighborPar(u uint32, fn func(w uint32)) {
	v := f.views[f.part.Owner(u)]
	if pg, ok := v.(ligra.ParallelNeighborGraph); ok {
		pg.ForEachNeighborPar(u, fn)
		return
	}
	v.ForEachNeighbor(u, func(w uint32) bool { fn(w); return true })
}

// FlatWeightedView is the stitched flat view of a weighted cluster; it
// additionally satisfies ligra.WeightedGraph (and so
// ligra.FlatWeightedGraph), giving weighted kernels the stitched degree
// array too.
type FlatWeightedView struct {
	*FlatView
}

// ForEachNeighborW applies fn to u's (neighbor, weight) pairs in
// increasing neighbor order until fn returns false.
func (f FlatWeightedView) ForEachNeighborW(u uint32, fn func(w uint32, wt float32) bool) {
	if wg, ok := f.views[f.part.Owner(u)].(ligra.WeightedGraph); ok {
		wg.ForEachNeighborW(u, fn)
	}
}

// stitchFlat assembles the global flat view from per-shard views. O(n)
// work: the stitched degree array is filled by contiguous copies of each
// shard's owned range (RangePartitioner) or a parallel ownership scatter
// (any other partitioner); ids a shard never saw keep degree 0, matching
// the unsharded flat view's totality. Returns a FlatWeightedView when
// every shard view carries weights.
func stitchFlat(part Partitioner, views []ligra.Graph) ligra.Graph {
	order := 0
	var m uint64
	for _, v := range views {
		if o := v.Order(); o > order {
			order = o
		}
		m += v.NumEdges()
	}
	degs := make([]int32, order)
	// Per-shard dense degree arrays, nil when a shard has no flat view
	// (engine flatten disabled): those fall back to Degree calls.
	sdegs := make([][]int32, len(views))
	for s, v := range views {
		if fg, ok := v.(ligra.FlatGraph); ok {
			sdegs[s] = fg.Degrees()
		}
	}
	if rp, ok := part.(RangePartitioner); ok {
		for s, v := range views {
			lo, hi := rp.Range(s)
			if lo >= uint64(order) {
				continue
			}
			if hi > uint64(order) {
				hi = uint64(order)
			}
			if sd := sdegs[s]; sd != nil {
				end := hi
				if end > uint64(len(sd)) {
					end = uint64(len(sd))
				}
				if lo < end {
					copy(degs[lo:end], sd[lo:end])
				}
				continue
			}
			for u := lo; u < hi; u++ {
				degs[u] = int32(v.Degree(uint32(u)))
			}
		}
	} else {
		parallel.ForGrain(order, 1024, func(u int) {
			s := part.Owner(uint32(u))
			if sd := sdegs[s]; sd != nil {
				if u < len(sd) {
					degs[u] = sd[u]
				}
				return
			}
			degs[u] = int32(views[s].Degree(uint32(u)))
		})
	}
	fv := &FlatView{part: part, views: views, degs: degs, order: order, m: m}
	return wrapWeighted(fv, views)
}

// StitchViews assembles the global flat view from per-shard views under
// part's ownership — the same stitch the in-process Tx.Flat performs,
// exported so a remote cluster client can stitch views it fetched over
// the wire. Views must answer as complete per-shard snapshots (Order,
// NumEdges, Degree, ForEachNeighbor over owned vertices); the result is
// a FlatWeightedView when every view satisfies ligra.WeightedGraph.
func StitchViews(part Partitioner, views []ligra.Graph) ligra.Graph {
	return stitchFlat(part, views)
}

// wrapWeighted returns the view as FlatWeightedView when every shard view
// carries weights, else as-is.
func wrapWeighted(fv *FlatView, views []ligra.Graph) ligra.Graph {
	for _, v := range views {
		if _, ok := v.(ligra.WeightedGraph); !ok {
			return fv
		}
	}
	return FlatWeightedView{fv}
}

// flatViewOf unwraps the stitched FlatView behind either wrapper.
func flatViewOf(g ligra.Graph) *FlatView {
	switch v := g.(type) {
	case *FlatView:
		return v
	case FlatWeightedView:
		return v.FlatView
	}
	return nil
}

// deltaStitch assembles the flat view of a version vector out of a
// previously stitched base: every shard whose vector component did not move
// keeps its per-shard view verbatim (pointer identity — its version is
// unchanged, so its flat view is too), and only moved shards fetch fresh
// views and refill their slice of the degree array. The base degree array
// is copied wholesale (a memmove) before the refill, so the cost is
// O(n copy + moved-shard ranges) instead of the full O(n) degree gather
// with per-shard dispatch — and, more importantly, unmoved shards' engines
// are never asked for their views at all. The base is never mutated.
// Returns nil when the delta brings no advantage (no unmoved shard, or the
// base is not a stitched flat view), signaling the caller to stitch fully.
func deltaStitch(part Partitioner, base ligra.Graph, baseStamps, stamps []uint64, fetch func(s int) ligra.Graph) ligra.Graph {
	bv := flatViewOf(base)
	if bv == nil || len(bv.views) != len(stamps) || len(baseStamps) != len(stamps) {
		return nil
	}
	moved := make([]bool, len(stamps))
	anyKept := false
	for s := range stamps {
		moved[s] = stamps[s] != baseStamps[s]
		anyKept = anyKept || !moved[s]
	}
	if !anyKept {
		return nil
	}
	views := make([]ligra.Graph, len(stamps))
	order := 0
	var m uint64
	for s := range views {
		if moved[s] {
			views[s] = fetch(s)
		} else {
			views[s] = bv.views[s]
		}
		if o := views[s].Order(); o > order {
			order = o
		}
		m += views[s].NumEdges()
	}
	degs := make([]int32, order)
	copy(degs, bv.degs) // ids beyond the base order stay 0 until refilled
	if rp, ok := part.(RangePartitioner); ok {
		for s, v := range views {
			if !moved[s] {
				continue
			}
			lo, hi := rp.Range(s)
			if lo >= uint64(order) {
				continue
			}
			if hi > uint64(order) {
				hi = uint64(order)
			}
			var sd []int32
			if fg, ok := v.(ligra.FlatGraph); ok {
				sd = fg.Degrees()
			}
			if sd != nil {
				end := hi
				if end > uint64(len(sd)) {
					end = uint64(len(sd))
				}
				if lo < end {
					copy(degs[lo:end], sd[lo:end])
				}
				// The shard may have shrunk (or the base order may exceed
				// the new per-shard array): the copied base values past the
				// new array are stale, zero them.
				for u := end; u < hi; u++ {
					degs[u] = 0
				}
				continue
			}
			for u := lo; u < hi; u++ {
				degs[u] = int32(v.Degree(uint32(u)))
			}
		}
	} else {
		// Arbitrary ownership: one O(n) pass testing the owner against the
		// moved set — still far cheaper than the full gather, which
		// dispatches a Degree read (or array index) per id on every shard.
		sdegs := make([][]int32, len(views))
		for s, v := range views {
			if fg, ok := v.(ligra.FlatGraph); ok {
				sdegs[s] = fg.Degrees()
			}
		}
		parallel.ForGrain(order, 1024, func(u int) {
			s := part.Owner(uint32(u))
			if !moved[s] {
				return
			}
			if sd := sdegs[s]; sd != nil {
				if u < len(sd) {
					degs[u] = sd[u]
				} else {
					degs[u] = 0
				}
				return
			}
			degs[u] = int32(views[s].Degree(uint32(u)))
		})
	}
	fv := &FlatView{part: part, views: views, degs: degs, order: order, m: m}
	return wrapWeighted(fv, views)
}
