package shard

import (
	"strconv"

	"repro/internal/obs"
)

// RegisterMetrics federates every shard engine's counters into reg
// under a shard="N" label, plus the cluster-level stitch-cache counters
// — the same words Stats() aggregates, registered once at wiring time.
func (c *Cluster[G, E]) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	for i, eng := range c.engines {
		ls := make([]obs.Label, 0, len(labels)+1)
		ls = append(ls, labels...)
		ls = append(ls, obs.Label{Key: "shard", Value: strconv.Itoa(i)})
		eng.RegisterMetrics(reg, ls...)
	}
	reg.CounterFunc("aspen_stitch_builds_total",
		"Cluster flat views stitched from every shard (full gathers).",
		c.stitch.builds.Load, labels...)
	reg.CounterFunc("aspen_stitch_patches_total",
		"Cluster flat views delta-stitched off the previous slot.",
		c.stitch.patches.Load, labels...)
	reg.CounterFunc("aspen_stitch_hits_total",
		"Cluster flat views served from the stitch cache.",
		c.stitch.hits.Load, labels...)
}
