package shard

import (
	"testing"

	"repro/internal/aspen"
	"repro/internal/ligra"
	"repro/internal/stream"
)

func TestClusterInsertDeleteVisibility(t *testing.T) {
	c := NewGraphCluster(NewRangePartitioner(2, 100), testParams(), stream.Options{})
	defer c.Close()

	batch := aspen.MakeUndirected([]aspen.Edge{{Src: 10, Dst: 90}}) // crosses the shard boundary
	p, err := c.Insert(batch)
	if err != nil {
		t.Fatal(err)
	}
	p.Wait()
	tx := c.Begin()
	g := tx.Graph()
	if g.Degree(10) != 1 || g.Degree(90) != 1 {
		t.Fatalf("cross-shard edge not visible: deg(10)=%d deg(90)=%d", g.Degree(10), g.Degree(90))
	}
	// Each direction must live on its source's shard.
	if got := tx.Shard(c.part.Owner(10)).Degree(10); got != 1 {
		t.Fatalf("shard of 10 reports degree %d", got)
	}
	if got := tx.Shard(c.part.Owner(90)).Degree(90); got != 1 {
		t.Fatalf("shard of 90 reports degree %d", got)
	}
	tx.Close()

	p, err = c.Delete(batch)
	if err != nil {
		t.Fatal(err)
	}
	p.Wait()
	tx = c.Begin()
	if tx.Graph().Degree(10) != 0 || tx.Graph().Degree(90) != 0 {
		t.Fatal("deleted cross-shard edge still visible")
	}
	tx.Close()
}

func TestClusterStitchCache(t *testing.T) {
	c := NewGraphCluster(NewRangePartitioner(2, 1<<8), testParams(), stream.Options{})
	defer c.Close()
	if _, err := c.Insert(aspen.MakeUndirected(randomEdges(500, 1<<8, 1))); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}

	tx1 := c.Begin()
	f1 := tx1.Flat()
	if f1 == nil {
		t.Fatal("no stitched flat view")
	}
	tx2 := c.Begin()
	if f2 := tx2.Flat(); f2 != f1 {
		t.Fatal("same version vector produced a second stitched view")
	}
	st := c.Stats()
	if st.StitchBuilds != 1 || st.StitchHits != 1 {
		t.Fatalf("stitch builds/hits = %d/%d, want 1/1", st.StitchBuilds, st.StitchHits)
	}
	tx1.Close()
	tx2.Close()

	// A commit moves the vector: the next Flat must rebuild.
	if _, err := c.Insert(aspen.MakeUndirected(randomEdges(100, 1<<8, 2))); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	tx3 := c.Begin()
	if f3 := tx3.Flat(); f3 == f1 {
		t.Fatal("stale stitched view served for a newer version vector")
	}
	tx3.Close()
	if st := c.Stats(); st.StitchBuilds != 2 {
		t.Fatalf("stitch builds = %d, want 2", st.StitchBuilds)
	}
}

func TestClusterErrClosedAfterClose(t *testing.T) {
	c := NewGraphCluster(NewHashPartitioner(2), testParams(), stream.Options{})
	c.Close()
	if _, err := c.Insert(aspen.MakeUndirected([]aspen.Edge{{Src: 1, Dst: 2}})); err != stream.ErrClosed {
		t.Fatalf("Insert after Close: err = %v, want ErrClosed", err)
	}
}

func TestWeightedClusterViews(t *testing.T) {
	c := NewWeightedCluster(NewRangePartitioner(2, 1<<8), testParams(), stream.Options{})
	defer c.Close()
	batch := aspen.MakeUndirectedWeighted([]aspen.WeightedEdge{
		{Src: 3, Dst: 200, Weight: 2.5},
		{Src: 7, Dst: 9, Weight: 1.25},
	})
	if _, err := c.Insert(batch); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	tx := c.Begin()
	defer tx.Close()

	wv, ok := tx.Ligra().(ligra.WeightedGraph)
	if !ok {
		t.Fatal("weighted tree view lacks ligra.WeightedGraph")
	}
	sum := float32(0)
	wv.ForEachNeighborW(3, func(_ uint32, w float32) bool { sum += w; return true })
	if sum != 2.5 {
		t.Fatalf("tree view weight sum = %g, want 2.5", sum)
	}
	fw, ok := tx.Flat().(ligra.FlatWeightedGraph)
	if !ok {
		t.Fatal("weighted flat view lacks ligra.FlatWeightedGraph")
	}
	got := float32(0)
	fw.ForEachNeighborW(200, func(v uint32, w float32) bool {
		if v == 3 {
			got = w
		}
		return true
	})
	if got != 2.5 {
		t.Fatalf("flat view weight(200,3) = %g, want 2.5", got)
	}
}

func TestTxPoolReuseIsClean(t *testing.T) {
	c := NewGraphCluster(NewRangePartitioner(2, 1<<8), testParams(), stream.Options{})
	defer c.Close()
	if _, err := c.Insert(aspen.MakeUndirected(randomEdges(200, 1<<8, 3))); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	tx := c.Begin()
	tx.Graph()
	tx.Flat()
	tx.Close()
	tx.Close() // idempotent: must not double-release or double-pool

	// A commit between pooled uses: the reused tx must see the new vector,
	// not leftovers.
	if _, err := c.Insert(aspen.MakeUndirected(randomEdges(50, 1<<8, 4))); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	tx2 := c.Begin()
	defer tx2.Close()
	st := c.Stats()
	for s, stamp := range tx2.Stamps() {
		if stamp != st.PerShard[s].Stamp {
			t.Fatalf("reused tx pinned stamp %d on shard %d, latest is %d", stamp, s, st.PerShard[s].Stamp)
		}
	}
}
