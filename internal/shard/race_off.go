//go:build !race

package shard

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
