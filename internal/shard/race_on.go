//go:build race

package shard

// raceEnabled reports whether the race detector instruments this build.
// sync.Pool intentionally drops items at random under the race detector,
// so pooled-transaction allocation guarantees cannot be asserted there.
const raceEnabled = true
