package shard

import (
	"testing"

	"repro/internal/xhash"
)

func TestRangePartitionerOwnership(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 7, 16} {
		for _, span := range []uint32{0, 1, 5, 1 << 10, 1 << 20, 1<<32 - 1} {
			p := NewRangePartitioner(shards, span)
			if p.Shards() != shards {
				t.Fatalf("Shards() = %d, want %d", p.Shards(), shards)
			}
			rng := xhash.NewRNG(uint64(shards)*31 + uint64(span))
			for i := 0; i < 2000; i++ {
				u := rng.Uint32()
				s := p.Owner(u)
				if s < 0 || s >= shards {
					t.Fatalf("Owner(%d) = %d out of [0, %d)", u, s, shards)
				}
				lo, hi := p.Range(s)
				if uint64(u) < lo || uint64(u) >= hi {
					t.Fatalf("u=%d not in Range(Owner(u)) = [%d, %d)", u, lo, hi)
				}
			}
			// Ranges tile the id space: contiguous, in order, full cover.
			var prev uint64
			for s := 0; s < shards; s++ {
				lo, hi := p.Range(s)
				if lo != prev {
					t.Fatalf("shard %d range starts at %d, want %d", s, lo, prev)
				}
				if hi <= lo && s != shards-1 {
					t.Fatalf("shard %d has empty range [%d, %d)", s, lo, hi)
				}
				prev = hi
			}
			if _, hi := p.Range(shards - 1); hi != 1<<32 {
				t.Fatalf("last shard range ends at %d, want 2^32", hi)
			}
		}
	}
}

func TestHashPartitionerOwnership(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		p := NewHashPartitioner(shards)
		counts := make([]int, shards)
		for u := uint32(0); u < 10_000; u++ {
			s := p.Owner(u)
			if s < 0 || s >= shards {
				t.Fatalf("Owner(%d) = %d out of [0, %d)", u, s, shards)
			}
			if p.Owner(u) != s {
				t.Fatalf("Owner(%d) not stable", u)
			}
			counts[s]++
		}
		// The mixed hash should land every shard within 2x of fair share.
		for s, c := range counts {
			if shards > 1 && (c < 10_000/(2*shards) || c > 2*10_000/shards) {
				t.Fatalf("shard %d holds %d of 10000 ids (shards=%d): badly skewed", s, c, shards)
			}
		}
	}
}

func TestPartitionerClamping(t *testing.T) {
	if got := NewRangePartitioner(0, 100).Shards(); got != 1 {
		t.Fatalf("range shards clamped to %d, want 1", got)
	}
	if got := NewHashPartitioner(-3).Shards(); got != 1 {
		t.Fatalf("hash shards clamped to %d, want 1", got)
	}
	if got := NewRangePartitioner(4, 0).Owner(1 << 31); got != 0 {
		t.Fatalf("zero-span range partitioner Owner = %d, want 0", got)
	}
}

// FuzzPartitionRoundTrip checks the partition invariants over arbitrary
// (id, shards, span) combinations: owners stay in range, the range
// partitioner's Owner agrees with its Range intervals, and hash ownership
// is stable — the properties the router and the stitched flat view build
// on (CI fuzz-smokes this target).
func FuzzPartitionRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint8(1), uint32(0))
	f.Add(uint32(1<<31), uint8(4), uint32(1<<20))
	f.Add(uint32(1<<32-1), uint8(255), uint32(7))
	f.Fuzz(func(t *testing.T, u uint32, shards uint8, span uint32) {
		n := int(shards)
		if n == 0 {
			n = 1
		}
		rp := NewRangePartitioner(n, span)
		s := rp.Owner(u)
		if s < 0 || s >= n {
			t.Fatalf("range Owner(%d) = %d out of [0, %d)", u, s, n)
		}
		lo, hi := rp.Range(s)
		if uint64(u) < lo || uint64(u) >= hi {
			t.Fatalf("range round-trip: u=%d outside Range(%d) = [%d, %d)", u, s, lo, hi)
		}
		hp := NewHashPartitioner(n)
		hs := hp.Owner(u)
		if hs < 0 || hs >= n {
			t.Fatalf("hash Owner(%d) = %d out of [0, %d)", u, hs, n)
		}
		if hp.Owner(u) != hs {
			t.Fatalf("hash Owner(%d) unstable", u)
		}
	})
}
