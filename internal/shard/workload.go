package shard

import (
	"sort"
	"time"

	"repro/internal/ligra"
	"repro/internal/stream"
)

// Kernel is a named analytics query over a cross-shard snapshot. Both
// access paths hand the kernel a ligra.Graph (WeightedView /
// FlatWeightedView for weighted clusters — weighted kernels type-assert
// ligra.WeightedGraph exactly as on the single engine).
type Kernel struct {
	Name string
	Run  func(g ligra.Graph)
}

// Workload drives the sharded §7.8 experiment: one writer goroutine routes
// batched updates through the cluster (each batch fanning out to all
// touched shard writers concurrently) while Readers goroutines query
// pinned version vectors, for Duration. The run loop itself is the shared
// stream.Drive, so measurement semantics match the single-engine Workload
// by construction.
type Workload[G ligra.Graph, E any] struct {
	Cluster *Cluster[G, E]
	// NextBatch returns the i-th update batch of the stream (del reports a
	// deletion batch). Called only from the writer goroutine; nil means an
	// idle writer (query-only baseline).
	NextBatch func(i uint64) (del bool, edges []E)
	// Readers is the number of concurrent query goroutines.
	Readers int
	// Kernels are cycled round-robin by every reader.
	Kernels []Kernel
	// Duration is how long the writer sustains updates; readers stop with
	// the writer.
	Duration time.Duration
	// Interval, when positive, paces the writer to one batch per Interval;
	// zero saturates (submit as fast as the shard queues accept).
	Interval time.Duration
	// UseFlat routes kernels through the stitched flat view (Tx.Flat)
	// instead of the cross-shard tree view.
	UseFlat bool
	// Stop, when non-nil, ends the run early once closed (graceful
	// shutdown): the writer stops submitting, submitted batches flush on
	// every shard, and readers drain as usual.
	Stop <-chan struct{}
}

// Report is the outcome of one sharded workload run. Counters are deltas
// over the run — a cluster preloaded through its own ingest path does not
// leak the load into the streamed-update numbers — while latency digests
// are engine-lifetime (histograms are cumulative; preload through the
// serving path lands its commit samples there, so drivers preload via the
// *With constructors instead). Digests that span shards (CommitWorst)
// report the worst shard's distribution — tail latency is the serving
// metric, and the slowest shard is the tail.
type Report struct {
	Shards        int           `json:"shards"`
	Duration      time.Duration `json:"duration_ns"`
	Readers       int           `json:"readers"`
	Updates       uint64        `json:"updates"`
	UpdatesPerSec float64       `json:"updates_per_sec"`
	Commits       uint64        `json:"commits"`
	Batches       uint64        `json:"batches"`

	// CommitWorst is the commit-latency digest of the shard with the
	// highest p99; PerShard carries every shard's full counters.
	CommitWorst stream.LatencySummary `json:"commit_worst"`
	PerShard    []stream.Stats        `json:"per_shard"`

	Queries       uint64                `json:"queries"`
	QueriesPerSec float64               `json:"queries_per_sec"`
	Query         stream.LatencySummary `json:"query_latency"`
	PerKernel     []stream.KernelStat   `json:"per_kernel"`

	LiveVersions    int64    `json:"live_versions"`
	RetiredVersions uint64   `json:"retired_versions"`
	FinalStamps     []uint64 `json:"final_stamps"`

	FlatBuilds    uint64 `json:"flat_builds"`
	FlatPatches   uint64 `json:"flat_patches,omitempty"`
	FlatHits      uint64 `json:"flat_hits"`
	StitchBuilds  uint64 `json:"stitch_builds"`
	StitchPatches uint64 `json:"stitch_patches,omitempty"`
	StitchHits    uint64 `json:"stitch_hits"`
}

// Run executes the workload and reports. The cluster is flushed but left
// open (Close it separately).
func (w *Workload[G, E]) Run() Report {
	before := w.Cluster.Stats()
	var stamps []uint64
	spec := stream.DriveSpec{
		Readers: w.Readers,
		Kernels: len(w.Kernels),
		RunKernel: func(k int) {
			tx := w.Cluster.Begin()
			if w.UseFlat {
				w.Kernels[k].Run(tx.Flat())
			} else {
				w.Kernels[k].Run(tx.Ligra())
			}
			tx.Close()
		},
		Flush:    func() { stamps, _ = w.Cluster.FlushAll() },
		Duration: w.Duration,
		Interval: w.Interval,
		Stop:     w.Stop,
	}
	if w.NextBatch != nil {
		spec.Submit = func(i uint64) error {
			del, edges := w.NextBatch(i)
			var err error
			if del {
				_, err = w.Cluster.Delete(edges)
			} else {
				_, err = w.Cluster.Insert(edges)
			}
			return err
		}
	}
	ds := stream.Drive(spec)

	st := w.Cluster.Stats()
	rep := Report{
		Shards:          st.Shards,
		Duration:        ds.Elapsed,
		Readers:         w.Readers,
		Updates:         st.Edges - before.Edges,
		UpdatesPerSec:   float64(st.Edges-before.Edges) / ds.Elapsed.Seconds(),
		Commits:         st.Commits - before.Commits,
		Batches:         st.Batches - before.Batches,
		PerShard:        st.PerShard,
		Queries:         ds.Queries,
		QueriesPerSec:   float64(ds.Queries) / ds.Elapsed.Seconds(),
		Query:           ds.Query,
		LiveVersions:    st.LiveVersions,
		RetiredVersions: st.RetiredVersions - before.RetiredVersions,
		FinalStamps:     stamps,
		FlatBuilds:      st.FlatBuilds - before.FlatBuilds,
		FlatPatches:     st.FlatPatches - before.FlatPatches,
		FlatHits:        st.FlatHits - before.FlatHits,
		StitchBuilds:    st.StitchBuilds - before.StitchBuilds,
		StitchPatches:   st.StitchPatches - before.StitchPatches,
		StitchHits:      st.StitchHits - before.StitchHits,
	}
	for _, es := range st.PerShard {
		if es.Commit.P99 >= rep.CommitWorst.P99 {
			rep.CommitWorst = es.Commit
		}
	}
	for i, k := range w.Kernels {
		rep.PerKernel = append(rep.PerKernel, stream.KernelStat{Name: k.Name, Latency: ds.PerKernel[i]})
	}
	sort.Slice(rep.PerKernel, func(i, j int) bool { return rep.PerKernel[i].Name < rep.PerKernel[j].Name })
	return rep
}
