package shard

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/aspen"
	"repro/internal/stream"
	"repro/internal/wal"
)

// clusterBatch returns the i-th batch of the deterministic cluster update
// stream: mostly inserts, with every fifth batch deleting a previously
// inserted batch's edges (so deletions do real work).
func clusterBatch(i int) (del bool, edges []aspen.Edge) {
	if i%5 == 4 {
		return true, aspen.MakeUndirected(randomEdges(30, 1<<9, uint64(2000+i-2)))
	}
	return false, aspen.MakeUndirected(randomEdges(30, 1<<9, uint64(2000+i)))
}

// shardPrefixes[s][j] is shard s's graph after cluster batches 0..j-1 were
// routed and applied — the per-shard ground truth recovery must land on.
func shardPrefixes(part Partitioner, n int) [][]aspen.Graph {
	out := make([][]aspen.Graph, part.Shards())
	cur := make([]aspen.Graph, part.Shards())
	for s := range cur {
		cur[s] = aspen.NewGraph(testParams())
		out[s] = append(out[s], cur[s])
	}
	for i := 0; i < n; i++ {
		del, edges := clusterBatch(i)
		for s, sub := range Route(part, edges, EdgeSource) {
			if len(sub) > 0 {
				if del {
					cur[s] = cur[s].DeleteEdges(sub)
				} else {
					cur[s] = cur[s].InsertEdges(sub)
				}
			}
			out[s] = append(out[s], cur[s])
		}
	}
	return out
}

func shardGraph(t *testing.T, c *Cluster[aspen.Graph, aspen.Edge], s int) aspen.Graph {
	t.Helper()
	tx := c.Engine(s).Begin()
	defer tx.Close()
	return tx.Graph()
}

func TestDurableClusterRestart(t *testing.T) {
	root := t.TempDir()
	part := NewRangePartitioner(3, 1<<9)
	dur := stream.Durability{Dir: root, Policy: stream.SyncOff, CheckpointEvery: 4}

	c, err := OpenGraphCluster(part, testParams(), stream.Options{}, dur)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		del, edges := clusterBatch(i)
		var p Pending
		if del {
			p, err = c.Delete(edges)
		} else {
			p, err = c.Insert(edges)
		}
		if err != nil {
			t.Fatal(err)
		}
		p.Wait()
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	if got := CountShardDirs(root); got != 3 {
		t.Fatalf("CountShardDirs = %d, want 3", got)
	}

	// Reopen: every shard must recover exactly its full routed stream (the
	// graceful Close wrote a final checkpoint per shard).
	c2, err := OpenGraphCluster(part, testParams(), stream.Options{}, dur)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	want := shardPrefixes(part, n)
	for s := 0; s < part.Shards(); s++ {
		if g := shardGraph(t, c2, s); !g.Equal(want[s][n]) {
			t.Fatalf("shard %d recovered %d edges, want %d (full stream)",
				s, g.NumEdges(), want[s][n].NumEdges())
		}
	}

	// The recovered cluster keeps serving: one more cross-shard batch.
	p, err := c2.Insert(aspen.MakeUndirected([]aspen.Edge{{Src: 1, Dst: 400}}))
	if err != nil {
		t.Fatal(err)
	}
	p.Wait()
	tx := c2.Begin()
	defer tx.Close()
	found := false
	tx.Graph().ForEachNeighbor(400, func(v uint32) bool {
		found = found || v == 1
		return !found
	})
	if !found {
		t.Fatal("post-recovery insert not visible")
	}
}

// TestDurableClusterShardCrash fail-stops one shard's WAL mid-stream while
// the others keep committing, then recovers the whole cluster. The crashed
// shard must come back as a prefix of its own routed stream no older than
// its last cluster-acknowledged batch (fsync-per-commit: acked implies
// durable); the healthy shards must come back complete.
func TestDurableClusterShardCrash(t *testing.T) {
	root := t.TempDir()
	part := NewRangePartitioner(3, 1<<9)
	const crashShard = 1
	dur := stream.Durability{Dir: root, Policy: stream.SyncEveryCommit, CheckpointEvery: 3}

	// Assemble the cluster by hand so only one shard gets the failpoint.
	var appends atomic.Int64
	boom := errors.New("injected shard crash")
	engines := make([]*stream.Engine[aspen.Graph, aspen.Edge], part.Shards())
	for s := range engines {
		d := dur
		d.Dir = ShardDir(root, s)
		if s == crashShard {
			d.Fail = func(op string) error {
				if op == "append" && appends.Add(1) > 6 {
					return boom
				}
				return nil
			}
		}
		e, err := stream.RecoverGraphEngine(testParams(), stream.Options{}, d)
		if err != nil {
			t.Fatal(err)
		}
		engines[s] = e
	}
	c := New(part, engines, EdgeSource)

	const n = 20
	acked, submitted := 0, 0
	for i := 0; i < n; i++ {
		del, edges := clusterBatch(i)
		var p Pending
		var err error
		if del {
			p, err = c.Delete(edges)
		} else {
			p, err = c.Insert(edges)
		}
		if err != nil {
			break
		}
		submitted = i + 1
		p.Wait()
		if c.Err() != nil {
			break
		}
		acked = i + 1
	}
	if c.Err() == nil {
		t.Fatal("injected crash never fired")
	}
	c.Close()

	// Recover through the public open path (no failpoints this time).
	c2, err := OpenGraphCluster(part, testParams(), stream.Options{}, dur)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	want := shardPrefixes(part, n)
	for s := 0; s < part.Shards(); s++ {
		g := shardGraph(t, c2, s)
		match := -1
		for j := acked; j <= submitted; j++ {
			if g.Equal(want[s][j]) {
				match = j
				break
			}
		}
		if match < 0 {
			t.Fatalf("shard %d recovered %d edges: matches no routed prefix in [%d, %d]",
				s, g.NumEdges(), acked, submitted)
		}
		if s != crashShard && !g.Equal(want[s][submitted]) {
			t.Fatalf("healthy shard %d lost batches: recovered prefix %d of %d submitted", s, match, submitted)
		}
	}
}

func TestDurableBarrierForcesFsync(t *testing.T) {
	root := t.TempDir()
	part := NewHashPartitioner(2)
	dur := stream.Durability{Dir: root, Policy: stream.SyncOff}
	c, err := OpenGraphCluster(part, testParams(), stream.Options{}, dur)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Insert(aspen.MakeUndirected(randomEdges(100, 1<<9, 77))); err != nil {
		t.Fatal(err)
	}
	if err := c.DurableBarrier(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < part.Shards(); s++ {
		st := c.Engine(s).WALStats()
		if st.Appends == 0 {
			t.Fatalf("shard %d logged nothing", s)
		}
		if st.Syncs == 0 {
			t.Fatalf("shard %d: DurableBarrier did not fsync (policy off)", s)
		}
	}
}

func TestOpenClusterPropagatesShardError(t *testing.T) {
	root := t.TempDir()
	part := NewHashPartitioner(2)
	fail := func(op string) error {
		if op == "sync" {
			return wal.ErrCrash
		}
		return nil
	}
	dur := stream.Durability{Dir: root, Policy: stream.SyncEveryCommit, Fail: fail}
	if _, err := OpenGraphCluster(part, testParams(), stream.Options{}, dur); err != nil {
		// Opening an empty directory does not sync; if this ever changes the
		// error must name the shard.
		t.Logf("open failed early: %v", err)
	}
}
