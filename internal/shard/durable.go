package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/stream"
)

// Per-shard durability: each shard's engine owns a private WAL + checkpoint
// directory under the cluster root (shard-0000, shard-0001, ...), so shards
// log and checkpoint with zero cross-shard coordination — the single-writer
// invariant extends to the disk layout. Recovery opens every shard
// directory independently; because batches are routed deterministically by
// source vertex, each shard recovers to a prefix of *its own* stream, and a
// DurableBarrier (flush + fsync on every shard) establishes a cross-shard
// durability point: everything submitted before the barrier survives a
// crash on any subset of shards.

// ShardDir returns the durability directory for shard s under root.
func ShardDir(root string, s int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%04d", s))
}

// openDirs prepares one durability config per shard, creating directories.
func openDirs(part Partitioner, d stream.Durability) ([]stream.Durability, error) {
	if d.Dir == "" {
		return nil, fmt.Errorf("shard: durability root directory not set")
	}
	durs := make([]stream.Durability, part.Shards())
	for s := range durs {
		ds := d
		ds.Dir = ShardDir(d.Dir, s)
		if err := os.MkdirAll(ds.Dir, 0o755); err != nil {
			return nil, err
		}
		durs[s] = ds
	}
	return durs, nil
}

// OpenGraphCluster opens (or creates) a durable unweighted cluster rooted
// at d.Dir: shard s recovers from d.Dir/shard-%04d — latest valid
// checkpoint plus WAL tail — and logs its commits there from then on. The
// partitioner must match the one the directory was written with (routing is
// deterministic, so a mismatch would replay batches onto the wrong shards;
// callers persist/derive the shard count from the directory layout, see
// CountShardDirs).
func OpenGraphCluster(part Partitioner, p ctree.Params, opts stream.Options, d stream.Durability) (*Cluster[aspen.Graph, aspen.Edge], error) {
	durs, err := openDirs(part, d)
	if err != nil {
		return nil, err
	}
	engines := make([]*stream.Engine[aspen.Graph, aspen.Edge], part.Shards())
	for s := range engines {
		e, err := stream.RecoverGraphEngine(p, opts, durs[s])
		if err != nil {
			for _, prev := range engines[:s] {
				prev.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		engines[s] = e
	}
	return New(part, engines, EdgeSource), nil
}

// OpenWeightedCluster is OpenGraphCluster for weighted graphs.
func OpenWeightedCluster(part Partitioner, p ctree.Params, opts stream.Options, d stream.Durability) (*Cluster[aspen.WeightedGraph, aspen.WeightedEdge], error) {
	durs, err := openDirs(part, d)
	if err != nil {
		return nil, err
	}
	engines := make([]*stream.Engine[aspen.WeightedGraph, aspen.WeightedEdge], part.Shards())
	for s := range engines {
		e, err := stream.RecoverWeightedEngine(p, opts, durs[s])
		if err != nil {
			for _, prev := range engines[:s] {
				prev.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		engines[s] = e
	}
	return New(part, engines, WeightedEdgeSource), nil
}

// CountShardDirs reports how many consecutive shard-%04d directories exist
// under root (0 if none) — the shard count a durable cluster directory was
// written with.
func CountShardDirs(root string) int {
	n := 0
	for {
		if _, err := os.Stat(ShardDir(root, n)); err != nil {
			return n
		}
		n++
	}
}

// DurableBarrier is Barrier plus durability: it flushes every shard (all
// batches submitted before the call are committed) and then forces an fsync
// of every shard's WAL, so the barrier state survives power loss on any
// subset of shards regardless of fsync policy. Returns the first error —
// a failed shard's engine is fail-stopped, not rolled back.
func (c *Cluster[G, E]) DurableBarrier() error {
	if err := c.Barrier(); err != nil {
		return err
	}
	errs := make([]error, len(c.engines))
	var wg sync.WaitGroup
	for s, e := range c.engines {
		wg.Add(1)
		go func(s int, e *stream.Engine[G, E]) {
			defer wg.Done()
			errs[s] = e.SyncWAL()
		}(s, e)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	return nil
}

// Err returns the first shard's durability fail-stop error, or nil.
func (c *Cluster[G, E]) Err() error {
	for s, e := range c.engines {
		if err := e.Err(); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	return nil
}
