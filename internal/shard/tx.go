package shard

import (
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/aspen"
	"repro/internal/ligra"
	"repro/internal/stream"
)

// Tx is a cross-shard read transaction: one epoch-refcounted version
// pinned per shard — a version vector. Each component is an immutable
// committed prefix of its shard's serialized history, so the joint
// snapshot is prefix-consistent per shard: no torn shard state, ever,
// though components may pin different points of the global submission
// order unless the caller quiesces writers behind Barrier first (which is
// exactly what the differential tests do). Transactions never block
// commits and commits never disturb open transactions.
//
// Tx objects are pooled: the views a Tx hands out (Graph, Ligra, Flat,
// Stamps) are valid only until Close, after which the Tx may be reused by
// a later Begin.
type Tx[G ligra.Graph, E any] struct {
	c      *Cluster[G, E]
	txs    []stream.Tx[G]
	stamps []uint64
	view   View[G]
	viewOK bool
	flat   ligra.Graph
	open   bool
}

// Begin pins the latest published version of every shard, in shard order,
// and returns the transaction over the resulting version vector. Lock-free
// per shard; allocation-free on the steady state (transactions are
// pooled).
func (c *Cluster[G, E]) Begin() *Tx[G, E] {
	t, _ := c.txPool.Get().(*Tx[G, E])
	if t == nil {
		t = &Tx[G, E]{
			c:      c,
			txs:    make([]stream.Tx[G], len(c.engines)),
			stamps: make([]uint64, len(c.engines)),
		}
		t.view = View[G]{part: c.part, gs: make([]G, len(c.engines))}
	}
	for i, e := range c.engines {
		t.txs[i] = e.Begin()
		t.stamps[i] = t.txs[i].Stamp()
	}
	t.open = true
	return t
}

// Stamps returns the pinned version vector, in shard order. The slice is
// owned by the transaction: copy it to retain it past Close.
func (t *Tx[G, E]) Stamps() []uint64 { return t.stamps }

// Shard returns the pinned snapshot of shard s directly (tests and
// shard-local queries).
func (t *Tx[G, E]) Shard(s int) G { return t.txs[s].Graph() }

// Graph returns the cross-shard tree view of the pinned version vector.
// Order and NumEdges are computed once per transaction, in O(S log n).
func (t *Tx[G, E]) Graph() *View[G] {
	if !t.viewOK {
		order := 0
		var m uint64
		for i := range t.txs {
			g := t.txs[i].Graph()
			t.view.gs[i] = g
			if o := g.Order(); o > order {
				order = o
			}
			m += g.NumEdges()
		}
		t.view.order, t.view.m = order, m
		t.viewOK = true
	}
	return &t.view
}

// Ligra returns the pinned snapshot as a ligra-facing view: the tree View,
// wrapped as WeightedView when the cluster serves weighted graphs (so the
// result satisfies ligra.WeightedGraph and SSSP-style kernels can
// type-assert it).
func (t *Tx[G, E]) Ligra() ligra.Graph {
	v := t.Graph()
	if wv, ok := any(v).(*View[aspen.WeightedGraph]); ok {
		return WeightedView{wv}
	}
	return v
}

// Flat returns the stitched §5.1 flat view of the pinned version vector —
// the default fast path for global kernels on sharded snapshots. Per-shard
// flat views come from each engine's per-version cache (built at most once
// per shard version); the cross-shard stitch is cached in the cluster's
// single slot keyed by the exact version vector, so steady-state readers
// share one stitched view and pay no allocation. Like Graph, the result
// must not be used after Close. The returned view satisfies
// ligra.FlatGraph (and ligra.FlatWeightedGraph for weighted clusters).
func (t *Tx[G, E]) Flat() ligra.Graph {
	if t.flat != nil {
		return t.flat
	}
	if f := t.c.stitch.lookup(t.stamps); f != nil {
		t.flat = f
		return f
	}
	// Slot miss. When the slot holds a stitched view of an earlier vector,
	// delta-stitch off it: shards whose component didn't move keep their
	// per-shard views verbatim (no engine round-trip, pointer-identical),
	// only moved shards fetch fresh views and refill their degree ranges.
	// Concurrent first-stitchers of the same vector may duplicate this
	// work; the slot keeps the last result, and correctness never depends
	// on which copy a reader holds.
	if base, baseStamps := t.c.stitch.base(len(t.stamps)); base != nil {
		if f := deltaStitch(t.c.part, base, baseStamps, t.stamps, func(s int) ligra.Graph { return t.txs[s].Flat() }); f != nil {
			t.c.stitch.patches.Add(1)
			t.c.stitch.store(t.stamps, f)
			t.flat = f
			return f
		}
	}
	// No usable base: gather every per-shard view (cache hits inside each
	// engine unless this vector component is fresh) and stitch in full.
	views := make([]ligra.Graph, len(t.txs))
	for i := range t.txs {
		views[i] = t.txs[i].Flat()
	}
	f := stitchFlat(t.c.part, views)
	t.c.stitch.builds.Add(1)
	t.c.stitch.store(t.stamps, f)
	t.flat = f
	return f
}

// Close releases every shard pin, allowing retired versions to drop, and
// returns the transaction to the cluster's pool. Views obtained from this
// transaction must not be used afterwards. Idempotent for a given open
// transaction; using a Tx after Close is a caller error.
func (t *Tx[G, E]) Close() {
	if !t.open {
		return
	}
	t.open = false
	for i := range t.txs {
		t.txs[i].Close()
	}
	var zero G
	for i := range t.view.gs {
		t.view.gs[i] = zero
	}
	t.view.order, t.view.m = 0, 0
	t.viewOK = false
	t.flat = nil
	t.c.txPool.Put(t)
}

// stitchCache is the cluster's single-slot cache of the latest stitched
// flat view, keyed by the exact version vector. One slot suffices: the
// steady state has all readers pinning the same (latest) vector, and a
// reader racing a commit simply rebuilds into the slot. The slot holds
// per-shard views alive past their versions' retirement until the next
// vector lands, which the runtime GC then reclaims — same lifetime
// discipline as the engines' own caches, one version longer at worst.
type stitchCache struct {
	mu     sync.Mutex
	stamps []uint64
	flat   ligra.Graph

	builds  atomic.Uint64 // full stitches (every shard gathered)
	patches atomic.Uint64 // delta stitches off the previous slot contents
	hits    atomic.Uint64
}

// lookup returns the cached stitched view when the slot matches the exact
// version vector, else nil. Allocation-free.
func (c *stitchCache) lookup(stamps []uint64) ligra.Graph {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.flat != nil && slices.Equal(c.stamps, stamps) {
		c.hits.Add(1)
		return c.flat
	}
	return nil
}

// base returns the slot's current view and a copy of its vector, for use
// as a delta-stitch base — any vector of matching width will do, newer or
// older (the reuse test is per-component equality). Nil when the slot is
// empty or the width differs (resharding never happens live, so that means
// an unset slot).
func (c *stitchCache) base(n int) (ligra.Graph, []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.flat == nil || len(c.stamps) != n {
		return nil, nil
	}
	return c.flat, slices.Clone(c.stamps)
}

// store installs a freshly stitched view for the given vector. A slow
// stitcher of an older vector must not evict a newer one already in the
// slot — steady-state readers pin the newest vector, and regressing the
// slot would force them all back into O(n) rebuilds — so the store is
// skipped when the slot is component-wise at least as new as the incoming
// vector.
func (c *stitchCache) store(stamps []uint64, flat ligra.Graph) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.flat != nil && len(c.stamps) == len(stamps) {
		newer := true
		for i, s := range c.stamps {
			if s < stamps[i] {
				newer = false
				break
			}
		}
		if newer {
			return
		}
	}
	c.stamps = append(c.stamps[:0], stamps...)
	c.flat = flat
}
