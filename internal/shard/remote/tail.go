package remote

import (
	"bytes"
	"fmt"

	"repro/internal/rpc"
	"repro/internal/stream"
	"repro/internal/wal"
)

// tailSubCap buffers this many live records per subscriber before the
// subscriber is marked lost and must resync from the WAL files.
const tailSubCap = 1024

// tailRec is one shipped WAL record. Data is an immutable copy shared
// by every subscriber of the publish.
type tailRec struct {
	seq   uint64
	kind  wal.Kind
	width uint8
	count uint32
	data  []byte
}

// tailSub is one live subscription: a buffered record channel plus a
// lost flag set when the publisher could not keep the channel drained.
type tailSub struct {
	ch   chan tailRec
	lost bool // guarded by the hub mutex
}

// tailHub fans the engine's WAL append stream out to subscribers. The
// publish callback runs synchronously on the ingest goroutine (data
// aliases the engine's scratch buffer), so it copies the payload once
// and only ever does non-blocking sends.
type tailHub struct {
	mu   chMutex
	subs map[*tailSub]struct{}
}

// chMutex is a tiny channel-based mutex so tailHub has no lock-order
// relationship with anything else (publish runs on the ingest path).
type chMutex chan struct{}

func (m chMutex) lock()   { m <- struct{}{} }
func (m chMutex) unlock() { <-m }

func newTailHub() *tailHub {
	return &tailHub{mu: make(chMutex, 1), subs: make(map[*tailSub]struct{})}
}

// publish ships one appended WAL record to every live subscriber.
// Signature matches stream.Engine.OnWALAppend.
func (h *tailHub) publish(seq uint64, kind wal.Kind, width uint8, count uint32, data []byte) {
	h.mu.lock()
	if len(h.subs) == 0 {
		h.mu.unlock()
		return
	}
	rec := tailRec{seq: seq, kind: kind, width: width, count: count,
		data: append([]byte(nil), data...)}
	for sub := range h.subs {
		if sub.lost {
			continue
		}
		select {
		case sub.ch <- rec:
		default:
			sub.lost = true // subscriber resyncs from the WAL files
		}
	}
	h.mu.unlock()
}

func (h *tailHub) subscribe() *tailSub {
	sub := &tailSub{ch: make(chan tailRec, tailSubCap)}
	h.mu.lock()
	h.subs[sub] = struct{}{}
	h.mu.unlock()
	return sub
}

func (h *tailHub) unsubscribe(sub *tailSub) {
	h.mu.lock()
	delete(h.subs, sub)
	h.mu.unlock()
}

// takeLost atomically reads and clears the sub's lost flag.
func (h *tailHub) takeLost(sub *tailSub) bool {
	h.mu.lock()
	lost := sub.lost
	sub.lost = false
	h.mu.unlock()
	return lost
}

// handleTail subscribes the connection to the shard's commit log. Body:
// [after u64] — the last WAL seq the subscriber already holds. The
// server replies with a plain ack, then pushes (with the same request
// id) an optional VerbTailSnap bootstrap followed by VerbTailRec frames
// in strict sequence order, forever.
func (sc *serverConn[G, E]) handleTail(m rpc.Msg) error {
	d := rpc.NewBody(m.Body)
	after := d.U64()
	if err := d.Err(); err != nil {
		return sc.replyErr(m.Verb, m.ReqID, 0, err.Error())
	}
	if sc.s.hub == nil {
		return sc.replyErr(m.Verb, m.ReqID, 0, "tail unavailable: shard has no durable log")
	}
	if err := sc.reply(m.Verb, 0, m.ReqID, nil); err != nil {
		return err
	}
	sc.s.wg.Add(1)
	go func() {
		defer sc.s.wg.Done()
		sc.serveTail(m.ReqID, after)
	}()
	return nil
}

// serveTail streams the WAL record stream after seq `after` until the
// connection dies. Protocol per resync round: register a live
// subscription, SyncWAL (records published before registration are
// file-visible after the sync), bridge any truncation gap with a
// checkpoint snapshot, catch up from the WAL files, then serve the live
// channel with contiguous-seq dedupe. A lost flag (channel overflow)
// starts a new round; file-visible records cover whatever was dropped.
func (sc *serverConn[G, E]) serveTail(id uint64, after uint64) {
	s := sc.s
	next := after + 1
	for {
		sub := s.hub.subscribe()
		if err := s.eng.SyncWAL(); err != nil {
			sc.replyErr(rpc.VerbTail, id, 0, err.Error())
			s.hub.unsubscribe(sub)
			return
		}
		oldest, err := wal.OldestSeq(s.dir)
		if err != nil {
			sc.replyErr(rpc.VerbTail, id, 0, err.Error())
			s.hub.unsubscribe(sub)
			return
		}
		if oldest > 0 && next < oldest {
			// The log was truncated past the subscriber: bootstrap from
			// the newest checkpoint (retention keeps one at or behind
			// the truncation point, so it covers the gap).
			snapSeq, err := sc.sendTailSnap(id)
			if err != nil {
				s.hub.unsubscribe(sub)
				return
			}
			if snapSeq+1 > next {
				next = snapSeq + 1
			}
		}
		// File catch-up: everything appended before the subscription
		// registered is replayable here; later records arrive live.
		_, err = wal.Replay(s.dir, next-1, func(r wal.Record) error {
			if err := sc.sendTailRec(id, r.Seq, r.Kind, r.Width, r.Count, r.Data); err != nil {
				return err
			}
			next = r.Seq + 1
			return nil
		})
		if err != nil {
			s.hub.unsubscribe(sub)
			return
		}
		// Live stream: the channel may replay records the file pass
		// already covered (published after registration, appended
		// before the replay read them) — the seq check dedupes.
	live:
		for {
			select {
			case <-sc.done:
				s.hub.unsubscribe(sub)
				return
			case rec := <-sub.ch:
				if s.hub.takeLost(sub) {
					break live
				}
				if rec.seq < next {
					continue
				}
				if rec.seq > next {
					break live // gap: resync from the files
				}
				if err := sc.sendTailRec(id, rec.seq, rec.kind, rec.width, rec.count, rec.data); err != nil {
					s.hub.unsubscribe(sub)
					return
				}
				next = rec.seq + 1
			}
		}
		s.hub.unsubscribe(sub)
	}
}

// sendTailRec pushes one WAL record frame:
//
//	[seq u64][kind u8][width u8][count u32][payload]
//
// payload is count*width edge bytes, preceded by the wal.NoteLen
// idempotency note for the Noted* kinds — replicas shadow those notes
// into their own dedup window.
func (sc *serverConn[G, E]) sendTailRec(id, seq uint64, kind wal.Kind, width uint8, count uint32, data []byte) error {
	return sc.reply(rpc.VerbTailRec, 0, id, func(e *rpc.Encoder) {
		e.U64(seq)
		e.U8(uint8(kind))
		e.U8(width)
		e.U32(count)
		e.Bytes(data)
	})
}

// sendTailSnap pushes a checkpoint bootstrap frame [seq u64][snapshot]
// and returns the seq it covers.
func (sc *serverConn[G, E]) sendTailSnap(id uint64) (uint64, error) {
	g, seq, ok, err := stream.LoadCheckpoint(sc.s.dir, sc.s.snap)
	if err != nil {
		sc.replyErr(rpc.VerbTail, id, 0, err.Error())
		return 0, err
	}
	if !ok {
		err := fmt.Errorf("log truncated but no checkpoint exists")
		sc.replyErr(rpc.VerbTail, id, 0, err.Error())
		return 0, err
	}
	var buf bytes.Buffer
	if err := sc.s.snap.Write(&buf, g); err != nil {
		sc.replyErr(rpc.VerbTail, id, 0, err.Error())
		return 0, err
	}
	err = sc.reply(rpc.VerbTailSnap, 0, id, func(e *rpc.Encoder) {
		e.U64(seq)
		e.Bytes(buf.Bytes())
	})
	return seq, err
}
