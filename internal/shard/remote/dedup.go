package remote

import (
	"fmt"
	"sync"
)

// defaultDedupWindow is the per-client exactly-once window when the
// owner does not size one explicitly.
const defaultDedupWindow = 4096

// dupVerdict classifies one (client, seq) submit against the window.
type dupVerdict int

const (
	// dupNew: first sighting — apply it and complete/abort later.
	dupNew dupVerdict = iota
	// dupDone: already committed — ack with the recorded stamp.
	dupDone
	// dupInflight: a previous attempt is still committing — the waiter
	// is registered and fires when it completes or aborts.
	dupInflight
	// dupFenced: the seq predates a promotion fence; the outcome of the
	// original attempt is unknowable, so refuse rather than re-apply.
	dupFenced
	// dupEvicted: the seq fell out of the window (client retried
	// something ancient); refuse rather than risk a re-apply.
	dupEvicted
)

// dedupEntry is one remembered submit.
type dedupEntry struct {
	done    bool
	stamp   uint64
	waiters []func(stamp uint64, errMsg string)
}

// clientWindow is one client's slice of the table.
type clientWindow struct {
	entries map[uint64]*dedupEntry
	floor   uint64 // lowest seq still answerable; seqs below were evicted
	maxSeq  uint64 // highest completed seq
	fence   uint64 // seqs at or below are refused (promotion fence)
}

// Dedup is the per-client exactly-once window a shard server (or a
// promoted replica) consults before applying a submit. Completed
// entries are journaled implicitly: the engine tags each noted batch's
// WAL record with (client, seq), and recovery replays them back in via
// Observe, so a retry that arrives after a crash-restart still dedups.
//
// Seqs are expected to be contiguous per (client, shard) — the cluster
// client allocates them from a per-shard counter — which keeps eviction
// a simple floor advance.
type Dedup struct {
	mu      sync.Mutex
	window  uint64
	clients map[uint64]*clientWindow
}

// NewDedup returns a table remembering the last window completed seqs
// per client (<=0 selects the default, 4096).
func NewDedup(window int) *Dedup {
	if window <= 0 {
		window = defaultDedupWindow
	}
	return &Dedup{window: uint64(window), clients: make(map[uint64]*clientWindow)}
}

func (d *Dedup) client(cid uint64) *clientWindow {
	cw := d.clients[cid]
	if cw == nil {
		cw = &clientWindow{entries: make(map[uint64]*dedupEntry), floor: 1}
		d.clients[cid] = cw
	}
	return cw
}

// begin classifies (cid, cseq). dupNew registers an in-flight entry the
// caller must later complete or abort. For dupDone the recorded stamp
// is returned (0 when the entry was journal-replayed and the true stamp
// is unknown — callers substitute a current stamp, which is at or above
// the original commit's and exactly as binding). For dupInflight the
// waiter is registered and fires exactly once from complete or abort.
func (d *Dedup) begin(cid, cseq uint64, waiter func(stamp uint64, errMsg string)) (dupVerdict, uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cw := d.client(cid)
	if e := cw.entries[cseq]; e != nil {
		if e.done {
			return dupDone, e.stamp
		}
		if waiter != nil {
			e.waiters = append(e.waiters, waiter)
		}
		return dupInflight, 0
	}
	if cseq <= cw.fence {
		return dupFenced, 0
	}
	if cseq < cw.floor {
		return dupEvicted, 0
	}
	cw.entries[cseq] = &dedupEntry{}
	return dupNew, 0
}

// complete records cseq's commit stamp, wakes duplicate waiters and
// evicts entries that fell out of the window (stopping at an in-flight
// entry so an unresolved attempt is never forgotten).
func (d *Dedup) complete(cid, cseq, stamp uint64) {
	d.mu.Lock()
	cw := d.client(cid)
	e := cw.entries[cseq]
	if e == nil {
		e = &dedupEntry{}
		cw.entries[cseq] = e
	}
	waiters := e.waiters
	e.waiters = nil
	e.done = true
	e.stamp = stamp
	if cseq > cw.maxSeq {
		cw.maxSeq = cseq
	}
	for cw.maxSeq > d.window && cw.floor <= cw.maxSeq-d.window {
		if e := cw.entries[cw.floor]; e != nil && !e.done {
			break
		}
		delete(cw.entries, cw.floor)
		cw.floor++
	}
	d.mu.Unlock()
	for _, w := range waiters {
		w(stamp, "")
	}
}

// abort forgets an in-flight cseq (the submit was refused before
// commit) and fails its duplicate waiters; a later retry is dupNew.
func (d *Dedup) abort(cid, cseq uint64, msg string) {
	d.mu.Lock()
	cw := d.client(cid)
	e := cw.entries[cseq]
	var waiters []func(uint64, string)
	if e != nil && !e.done {
		waiters = e.waiters
		delete(cw.entries, cseq)
	}
	d.mu.Unlock()
	for _, w := range waiters {
		w(0, msg)
	}
}

// Observe records (client, seq) as committed with an unknown stamp.
// It is the journal-replay hook (stream.Durability.OnReplayNote) and
// the replica tail's way of shadowing the primary's window.
func (d *Dedup) Observe(client, seq uint64) {
	if client == 0 {
		return
	}
	d.complete(client, seq, 0)
}

// fenceAll, called at replica promotion, fences every known client at
// its highest completed seq: in-flight seqs at the dead primary are
// unknowable here, so retries of anything at or below the fence are
// refused instead of risking a second apply.
func (d *Dedup) fenceAll() {
	d.mu.Lock()
	for _, cw := range d.clients {
		if cw.maxSeq > cw.fence {
			cw.fence = cw.maxSeq
		}
		for seq, e := range cw.entries {
			if !e.done {
				// Promotion on a replica: nothing is actually in flight
				// locally, but be safe against misuse.
				for _, w := range e.waiters {
					go w(0, "fenced by promotion")
				}
				delete(cw.entries, seq)
			}
		}
	}
	d.mu.Unlock()
}

func (v dupVerdict) String() string {
	switch v {
	case dupNew:
		return "new"
	case dupDone:
		return "done"
	case dupInflight:
		return "inflight"
	case dupFenced:
		return "fenced"
	case dupEvicted:
		return "evicted"
	}
	return fmt.Sprintf("dupVerdict(%d)", int(v))
}
