package remote

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aspen"
	"repro/internal/ligra"
	"repro/internal/rpc"
	"repro/internal/shard"
	"repro/internal/stream"
)

// maxSubmitEdges bounds one Submit frame; larger sub-batches are split
// into several pipelined frames (the engine coalesces them back).
const maxSubmitEdges = 1 << 20

// Options tunes the cluster client.
type Options struct {
	// MaxInFlight bounds pipelined Submit frames per shard connection
	// (backpressure, mirroring the engine's bounded queue). Default 256.
	MaxInFlight int
	// DialWait is how long an op retries dialing a down shard before
	// failing (lets cluster processes start in any order). Default 5s.
	DialWait time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 256
	}
	if o.DialWait <= 0 {
		o.DialWait = 5 * time.Second
	}
	return o
}

// Cluster is the client half of the distributed shard layer: the same
// facade as the in-process shard.Cluster, speaking rpc frames to one
// primary (and optionally one read replica) per shard.
type Cluster[E any] struct {
	part     shard.Partitioner
	codec    stream.Codec[E]
	srcOf    func(E) uint32
	weighted bool
	prim     []*Conn
	repl     []*Conn // nil entry: no replica for that shard
	sems     []chan struct{}

	txPool sync.Pool

	vmu    sync.Mutex
	views  []cachedView
	stitch stitchSlot

	// client-observed counters (see Stats).
	edges, batches, submitErrs         atomic.Uint64
	pins, rangeRPCs, viewFetches       atomic.Uint64
	viewHits, stitchBuilds, stitchHits atomic.Uint64
	replicaReads, primaryFallbacks     atomic.Uint64
}

type cachedView struct {
	stamp uint64
	view  ligra.Graph
}

type stitchSlot struct {
	stamps []uint64
	flat   ligra.Graph
}

// Dial connects a generic cluster client: one primary address per
// shard (len must equal part.Shards()) and optional replica addresses
// (nil, or same length with "" meaning no replica). Connections are
// lazy: a down shard fails the first operation that needs it.
func Dial[E any](part shard.Partitioner, primaries, replicas []string, codec stream.Codec[E], srcOf func(E) uint32, weighted bool, o Options) (*Cluster[E], error) {
	o = o.withDefaults()
	if len(primaries) != part.Shards() {
		return nil, fmt.Errorf("remote: %d primary addresses for %d shards", len(primaries), part.Shards())
	}
	if replicas != nil && len(replicas) != part.Shards() {
		return nil, fmt.Errorf("remote: %d replica addresses for %d shards", len(replicas), part.Shards())
	}
	c := &Cluster[E]{
		part:     part,
		codec:    codec,
		srcOf:    srcOf,
		weighted: weighted,
		prim:     make([]*Conn, part.Shards()),
		repl:     make([]*Conn, part.Shards()),
		sems:     make([]chan struct{}, part.Shards()),
		views:    make([]cachedView, part.Shards()),
	}
	for s := range c.prim {
		hi := helloInfo{shard: s, shards: part.Shards(), weighted: weighted, width: codec.Width, role: rolePrimary}
		c.prim[s] = newConn(primaries[s], hi, o.DialWait)
		if replicas != nil && replicas[s] != "" {
			rhi := hi
			rhi.role = roleReplica
			c.repl[s] = newConn(replicas[s], rhi, o.DialWait)
		}
		c.sems[s] = make(chan struct{}, o.MaxInFlight)
	}
	return c, nil
}

// DialGraph connects an unweighted cluster client.
func DialGraph(part shard.Partitioner, primaries, replicas []string, o Options) (*Cluster[aspen.Edge], error) {
	return Dial(part, primaries, replicas, stream.EdgeCodec, shard.EdgeSource, false, o)
}

// DialWeighted connects a weighted cluster client.
func DialWeighted(part shard.Partitioner, primaries, replicas []string, o Options) (*Cluster[aspen.WeightedEdge], error) {
	return Dial(part, primaries, replicas, stream.WeightedEdgeCodec, shard.WeightedEdgeSource, true, o)
}

// Shards returns the shard count.
func (c *Cluster[E]) Shards() int { return len(c.prim) }

// Partitioner returns the cluster's vertex partitioner.
func (c *Cluster[E]) Partitioner() shard.Partitioner { return c.part }

// Pending tracks one logical batch across the shards (and frames) it
// was split into. Wait blocks until every remote commit acknowledged
// and returns the first error (nil: the whole batch is committed
// remotely — and durable, under a per-commit fsync policy).
type Pending struct {
	calls []*call
	errs  []error
	done  bool
}

// Wait blocks until every sub-batch resolves. Idempotent.
func (p *Pending) Wait() error {
	if !p.done {
		p.errs = make([]error, len(p.calls))
		for i, ca := range p.calls {
			p.errs[i] = <-ca.done
		}
		p.done = true
		p.calls = nil
	}
	for _, err := range p.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Insert routes a batch of edge insertions and pipelines each
// sub-batch to its shard's primary. Pipelined: the call returns once
// every frame is written (or backpressure admits it), with commit acks
// collected by the returned Pending.
func (c *Cluster[E]) Insert(edges []E) (*Pending, error) { return c.submit(false, edges) }

// Delete routes a batch of edge deletions.
func (c *Cluster[E]) Delete(edges []E) (*Pending, error) { return c.submit(true, edges) }

func (c *Cluster[E]) submit(del bool, edges []E) (*Pending, error) {
	parts := shard.Route(c.part, edges, c.srcOf)
	p := &Pending{}
	var firstErr error
	for s, sub := range parts {
		for len(sub) > 0 && firstErr == nil {
			chunk := sub
			if len(chunk) > maxSubmitEdges {
				chunk = chunk[:maxSubmitEdges]
			}
			sub = sub[len(chunk):]
			ca, err := c.submitChunk(s, del, chunk)
			if err != nil {
				firstErr = err
				break
			}
			p.calls = append(p.calls, ca)
		}
		if firstErr != nil {
			break
		}
	}
	if firstErr != nil {
		// Frames already written stay in flight; their acks are still
		// collected so counters and backpressure stay correct.
		p.Wait()
		return p, firstErr
	}
	return p, nil
}

// submitChunk writes one Submit frame for shard s and returns its
// in-flight call. Blocks while the shard's in-flight window is full.
func (c *Cluster[E]) submitChunk(s int, del bool, chunk []E) (*call, error) {
	sem := c.sems[s]
	sem <- struct{}{}
	n := uint64(len(chunk))
	ca := &call{done: make(chan error, 1)}
	ca.onDone = func(err error) {
		<-sem
		if err != nil {
			c.submitErrs.Add(1)
		} else {
			c.edges.Add(n)
			c.batches.Add(1)
		}
	}
	flags := uint8(0)
	if del {
		flags = rpc.FlagDel
	}
	w := c.codec.Width
	err := c.prim[s].start(rpc.VerbSubmit, flags, func(e *rpc.Encoder) {
		e.U32(uint32(len(chunk)))
		buf := e.Reserve(w * len(chunk))
		for i, ed := range chunk {
			c.codec.Encode(buf[i*w:], ed)
		}
	}, ca)
	if err != nil {
		<-sem
		c.submitErrs.Add(1)
		return nil, err
	}
	return ca, nil
}

// FlushAll flushes every shard concurrently and returns the resulting
// version vector of commit stamps.
func (c *Cluster[E]) FlushAll() ([]uint64, error) {
	stamps := make([]uint64, len(c.prim))
	calls := make([]*call, len(c.prim))
	var firstErr error
	for s := range c.prim {
		s := s
		ca := callPool.Get().(*call)
		ca.onBody = func(_ uint8, d *rpc.Body) error {
			stamps[s] = d.U64()
			d.U64() // seq watermark, unused here
			return nil
		}
		if err := c.prim[s].start(rpc.VerbFlush, 0, nil, ca); err != nil {
			ca.onBody = nil
			callPool.Put(ca)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		calls[s] = ca
	}
	for _, ca := range calls {
		if ca == nil {
			continue
		}
		err := <-ca.done
		ca.onBody = nil
		callPool.Put(ca)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return stamps, firstErr
}

// Barrier waits until every shard has committed everything submitted
// before the call.
func (c *Cluster[E]) Barrier() error {
	_, err := c.FlushAll()
	return err
}

// Close tears down every connection. Server-side pins held by them are
// released by the servers' connection teardown.
func (c *Cluster[E]) Close() {
	for _, cn := range c.prim {
		cn.Close()
	}
	for _, cn := range c.repl {
		if cn != nil {
			cn.Close()
		}
	}
}

// Stats are the client-observed counters: acked ingest volume and the
// read-path cache/fallback behavior. Server-side engine counters come
// from ShardStats.
type Stats struct {
	Shards           int    `json:"shards"`
	Edges            uint64 `json:"edges"`
	Batches          uint64 `json:"batches"`
	SubmitErrs       uint64 `json:"submit_errs,omitempty"`
	Pins             uint64 `json:"pins"`
	RangeRPCs        uint64 `json:"range_rpcs"`
	ViewFetches      uint64 `json:"view_fetches"`
	ViewHits         uint64 `json:"view_hits"`
	StitchBuilds     uint64 `json:"stitch_builds"`
	StitchHits       uint64 `json:"stitch_hits"`
	ReplicaReads     uint64 `json:"replica_reads,omitempty"`
	PrimaryFallbacks uint64 `json:"primary_fallbacks,omitempty"`
}

// Stats returns the client-side counters.
func (c *Cluster[E]) Stats() Stats {
	return Stats{
		Shards:           len(c.prim),
		Edges:            c.edges.Load(),
		Batches:          c.batches.Load(),
		SubmitErrs:       c.submitErrs.Load(),
		Pins:             c.pins.Load(),
		RangeRPCs:        c.rangeRPCs.Load(),
		ViewFetches:      c.viewFetches.Load(),
		ViewHits:         c.viewHits.Load(),
		StitchBuilds:     c.stitchBuilds.Load(),
		StitchHits:       c.stitchHits.Load(),
		ReplicaReads:     c.replicaReads.Load(),
		PrimaryFallbacks: c.primaryFallbacks.Load(),
	}
}

// ShardStats fetches every shard server's engine counters.
func (c *Cluster[E]) ShardStats() ([]stream.Stats, error) {
	out := make([]stream.Stats, len(c.prim))
	for s, cn := range c.prim {
		raw, err := fetchStatsJSON(cn)
		if err != nil {
			return out, err
		}
		if err := unmarshalStats(raw, &out[s]); err != nil {
			return out, err
		}
	}
	return out, nil
}

// Tx is a pinned cross-shard read transaction: stamps is the version
// vector (one committed prefix per shard), seqs the per-shard WAL
// watermarks replica reads are addressed by.
type Tx[E any] struct {
	c      *Cluster[E]
	stamps []uint64
	seqs   []uint64
	pinned []bool
	open   bool
}

// Begin pins the latest version on every shard and returns the
// transaction. One Pin round trip per shard, pipelined.
func (c *Cluster[E]) Begin() (*Tx[E], error) {
	tx, _ := c.txPool.Get().(*Tx[E])
	if tx == nil {
		tx = &Tx[E]{
			c:      c,
			stamps: make([]uint64, len(c.prim)),
			seqs:   make([]uint64, len(c.prim)),
			pinned: make([]bool, len(c.prim)),
		}
	}
	tx.open = true
	for s := range tx.pinned {
		tx.stamps[s], tx.seqs[s], tx.pinned[s] = 0, 0, false
	}
	calls := make([]*call, len(c.prim))
	var firstErr error
	for s := range c.prim {
		s := s
		ca := callPool.Get().(*call)
		ca.onBody = func(_ uint8, d *rpc.Body) error {
			tx.stamps[s] = d.U64()
			tx.seqs[s] = d.U64()
			return nil
		}
		if err := c.prim[s].start(rpc.VerbPin, 0, nil, ca); err != nil {
			ca.onBody = nil
			callPool.Put(ca)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		calls[s] = ca
	}
	for s, ca := range calls {
		if ca == nil {
			continue
		}
		err := <-ca.done
		ca.onBody = nil
		callPool.Put(ca)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			tx.pinned[s] = true
		}
	}
	c.pins.Add(uint64(len(c.prim)))
	if firstErr != nil {
		tx.releasePins()
		tx.open = false
		c.txPool.Put(tx)
		return nil, firstErr
	}
	return tx, nil
}

// Stamps returns the pinned version vector. Valid until Close.
func (t *Tx[E]) Stamps() []uint64 { return t.stamps }

// Seqs returns the per-shard WAL watermarks taken at pin time.
func (t *Tx[E]) Seqs() []uint64 { return t.seqs }

// Flat fetches (or reuses) the stitched flat view of the pinned
// vector; every algos kernel runs on it unmodified.
func (t *Tx[E]) Flat() (ligra.Graph, error) {
	if !t.open {
		return nil, errors.New("remote: use of closed Tx")
	}
	return t.c.flatFor(t.stamps, t.seqs)
}

// Close releases the pins. Idempotent.
func (t *Tx[E]) Close() {
	if !t.open {
		return
	}
	t.releasePins()
	t.open = false
	t.c.txPool.Put(t)
}

func (t *Tx[E]) releasePins() {
	for s := range t.c.prim {
		if !t.pinned[s] {
			continue
		}
		t.pinned[s] = false
		stamp := t.stamps[s]
		// Fire-and-forget: a lost release is reclaimed by server-side
		// connection teardown.
		ca := &call{done: make(chan error, 1)}
		_ = t.c.prim[s].start(rpc.VerbRelease, 0, func(e *rpc.Encoder) {
			e.U64(stamp)
		}, ca)
	}
}
