package remote

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aspen"
	"repro/internal/ligra"
	"repro/internal/rpc"
	"repro/internal/shard"
	"repro/internal/stream"
)

// maxSubmitEdges bounds one Submit frame; larger sub-batches are split
// into several pipelined frames (the engine coalesces them back).
const maxSubmitEdges = 1 << 20

// Cluster is the client half of the distributed shard layer: the same
// facade as the in-process shard.Cluster, speaking rpc frames to one
// primary (and optionally one read replica) per shard.
type Cluster[E any] struct {
	part     shard.Partitioner
	codec    stream.Codec[E]
	srcOf    func(E) uint32
	weighted bool
	opts     Options
	clientID uint64
	prim     []*Conn
	repl     []*Conn // nil entry: no replica for that shard
	send     []*sender
	subSeq   []atomic.Uint64 // per-shard client seq (contiguous per shard)
	sems     []chan struct{}
	nstat    *netCounters
	stop     chan struct{}
	stopOnce sync.Once

	txPool sync.Pool

	vmu    sync.Mutex
	views  []cachedView
	stitch stitchSlot

	// client-observed counters (see Stats).
	edges, batches, submitErrs         atomic.Uint64
	pins, rangeRPCs, viewFetches       atomic.Uint64
	viewHits, stitchBuilds, stitchHits atomic.Uint64
	replicaReads, primaryFallbacks     atomic.Uint64
}

type cachedView struct {
	stamp uint64
	seq   uint64
	at    time.Time
	view  ligra.Graph
}

type stitchSlot struct {
	stamps []uint64
	seqs   []uint64
	flat   ligra.Graph
}

// Dial connects a generic cluster client: one primary address per
// shard (len must equal part.Shards()) and optional replica addresses
// (nil, or same length with "" meaning no replica). Connections are
// lazy: a down shard fails the first operation that needs it.
func Dial[E any](part shard.Partitioner, primaries, replicas []string, codec stream.Codec[E], srcOf func(E) uint32, weighted bool, o Options) (*Cluster[E], error) {
	o = o.withDefaults()
	if len(primaries) != part.Shards() {
		return nil, fmt.Errorf("remote: %d primary addresses for %d shards", len(primaries), part.Shards())
	}
	if replicas != nil && len(replicas) != part.Shards() {
		return nil, fmt.Errorf("remote: %d replica addresses for %d shards", len(replicas), part.Shards())
	}
	var idb [8]byte
	if _, err := crand.Read(idb[:]); err != nil {
		return nil, fmt.Errorf("remote: client id: %w", err)
	}
	c := &Cluster[E]{
		part:     part,
		codec:    codec,
		srcOf:    srcOf,
		weighted: weighted,
		opts:     o,
		clientID: binary.LittleEndian.Uint64(idb[:]) | 1, // 0 is the no-dedup sentinel
		prim:     make([]*Conn, part.Shards()),
		repl:     make([]*Conn, part.Shards()),
		send:     make([]*sender, part.Shards()),
		subSeq:   make([]atomic.Uint64, part.Shards()),
		sems:     make([]chan struct{}, part.Shards()),
		nstat:    &netCounters{},
		stop:     make(chan struct{}),
		views:    make([]cachedView, part.Shards()),
	}
	anyReplica := false
	for s := range c.prim {
		hi := helloInfo{shard: s, shards: part.Shards(), weighted: weighted, width: codec.Width, role: rolePrimary}
		c.prim[s] = newConn(primaries[s], hi, o, c.nstat)
		if replicas != nil && replicas[s] != "" {
			rhi := hi
			rhi.role = roleReplica
			c.repl[s] = newConn(replicas[s], rhi, o, c.nstat)
			anyReplica = true
		}
		c.send[s] = newSender(c.prim[s], c.repl[s], o, c.nstat)
		c.sems[s] = make(chan struct{}, o.MaxInFlight)
	}
	if anyReplica {
		go c.prober()
	}
	return c, nil
}

// DialGraph connects an unweighted cluster client.
func DialGraph(part shard.Partitioner, primaries, replicas []string, o Options) (*Cluster[aspen.Edge], error) {
	return Dial(part, primaries, replicas, stream.EdgeCodec, shard.EdgeSource, false, o)
}

// DialWeighted connects a weighted cluster client.
func DialWeighted(part shard.Partitioner, primaries, replicas []string, o Options) (*Cluster[aspen.WeightedEdge], error) {
	return Dial(part, primaries, replicas, stream.WeightedEdgeCodec, shard.WeightedEdgeSource, true, o)
}

// Shards returns the shard count.
func (c *Cluster[E]) Shards() int { return len(c.prim) }

// Partitioner returns the cluster's vertex partitioner.
func (c *Cluster[E]) Partitioner() shard.Partitioner { return c.part }

// prober watches down primaries that have a replica: when the replica
// reports it has promoted itself, the shard's submit stream fails over
// to it.
func (c *Cluster[E]) prober() {
	t := time.NewTicker(c.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		for s, pc := range c.prim {
			rc := c.repl[s]
			if rc == nil || c.send[s].hasFailedOver() || pc.state() != epDown {
				continue
			}
			c.nstat.probes.Add(1)
			role, _, _, err := rc.health()
			if err != nil || role != rolePromoted {
				continue
			}
			c.nstat.promotions.Add(1)
			if c.send[s].failover() {
				c.nstat.failovers.Add(1)
			}
		}
	}
}

func (s *sender) hasFailedOver() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failedOver
}

// Pending tracks one logical batch across the shards (and frames) it
// was split into. Wait blocks until every remote commit acknowledged
// and returns the first error (nil: the whole batch is committed
// remotely — and durable, under a per-commit fsync policy).
type Pending struct {
	calls []*call
	errs  []error
	done  bool
}

// Wait blocks until every sub-batch resolves. Idempotent.
func (p *Pending) Wait() error {
	if !p.done {
		p.errs = make([]error, len(p.calls))
		for i, ca := range p.calls {
			p.errs[i] = <-ca.done
		}
		p.done = true
		p.calls = nil
	}
	for _, err := range p.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Insert routes a batch of edge insertions and pipelines each
// sub-batch to its shard's primary. Pipelined: the call returns once
// every frame is written (or backpressure admits it), with commit acks
// collected by the returned Pending. Transport failures are retried
// with backoff under the clients' exactly-once (clientID, seq) notes;
// only a server refusal or an exhausted retry budget surfaces.
func (c *Cluster[E]) Insert(edges []E) (*Pending, error) {
	return c.submit(context.Background(), false, edges)
}

// Delete routes a batch of edge deletions.
func (c *Cluster[E]) Delete(edges []E) (*Pending, error) {
	return c.submit(context.Background(), true, edges)
}

// InsertCtx is Insert with cancellation: ctx aborts waiting for
// backpressure admission and expires queued retries early.
func (c *Cluster[E]) InsertCtx(ctx context.Context, edges []E) (*Pending, error) {
	return c.submit(ctx, false, edges)
}

// DeleteCtx is Delete with cancellation.
func (c *Cluster[E]) DeleteCtx(ctx context.Context, edges []E) (*Pending, error) {
	return c.submit(ctx, true, edges)
}

func (c *Cluster[E]) submit(ctx context.Context, del bool, edges []E) (*Pending, error) {
	parts := shard.Route(c.part, edges, c.srcOf)
	p := &Pending{}
	var firstErr error
	for s, sub := range parts {
		for len(sub) > 0 && firstErr == nil {
			chunk := sub
			if len(chunk) > maxSubmitEdges {
				chunk = chunk[:maxSubmitEdges]
			}
			sub = sub[len(chunk):]
			ca, err := c.submitChunk(ctx, s, del, chunk)
			if err != nil {
				firstErr = err
				break
			}
			p.calls = append(p.calls, ca)
		}
		if firstErr != nil {
			break
		}
	}
	if firstErr != nil {
		// Frames already queued stay in flight; their acks are still
		// collected so counters and backpressure stay correct.
		p.Wait()
		return p, firstErr
	}
	return p, nil
}

// submitChunk allocates the chunk's (clientID, seq) identity, hands it
// to the shard's retry sender and returns the in-flight call. Blocks
// while the shard's in-flight window is full. The seq is fixed here,
// so every retransmission of this chunk is the same submit to the
// server's dedup window.
func (c *Cluster[E]) submitChunk(ctx context.Context, s int, del bool, chunk []E) (*call, error) {
	sem := c.sems[s]
	select {
	case sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	n := uint64(len(chunk))
	ca := &call{done: make(chan error, 1)}
	ca.onBody = func(flags uint8, d *rpc.Body) error {
		if flags&rpc.FlagDeduped != 0 {
			c.nstat.dedupAcks.Add(1)
		}
		return nil
	}
	ca.onDone = func(err error) {
		<-sem
		if err != nil {
			c.submitErrs.Add(1)
		} else {
			c.edges.Add(n)
			c.batches.Add(1)
		}
	}
	flags := uint8(0)
	if del {
		flags = rpc.FlagDel
	}
	w := c.codec.Width
	cid, cseq := c.clientID, c.subSeq[s].Add(1)
	rec := &sendRec{
		s:     c.send[s],
		verb:  rpc.VerbSubmit,
		flags: flags,
		build: func(e *rpc.Encoder) {
			e.U64(cid)
			e.U64(cseq)
			e.U32(uint32(len(chunk)))
			buf := e.Reserve(w * len(chunk))
			for i, ed := range chunk {
				c.codec.Encode(buf[i*w:], ed)
			}
		},
		ca:          ca,
		cancel:      ctx.Done(),
		ackDeadline: c.opts.SubmitAckDeadline,
		expiry:      time.Now().Add(c.opts.RetryDeadline),
	}
	ca.rec = rec
	c.send[s].enqueue(rec)
	return ca, nil
}

// FlushAll flushes every shard concurrently and returns the resulting
// version vector of commit stamps. Flushes ride the same per-shard
// retry queue as submits, so a flush never reorders ahead of a queued
// batch and survives connection churn.
func (c *Cluster[E]) FlushAll() ([]uint64, error) {
	stamps := make([]uint64, len(c.prim))
	calls := make([]*call, len(c.prim))
	for s := range c.prim {
		s := s
		ca := &call{done: make(chan error, 1)}
		ca.onBody = func(_ uint8, d *rpc.Body) error {
			stamps[s] = d.U64()
			d.U64() // seq watermark, unused here
			return nil
		}
		rec := &sendRec{
			s:           c.send[s],
			verb:        rpc.VerbFlush,
			ca:          ca,
			ackDeadline: c.opts.SubmitAckDeadline,
			expiry:      time.Now().Add(c.opts.RetryDeadline),
		}
		ca.rec = rec
		c.send[s].enqueue(rec)
		calls[s] = ca
	}
	var firstErr error
	for _, ca := range calls {
		if err := <-ca.done; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return stamps, firstErr
}

// Barrier waits until every shard has committed everything submitted
// before the call.
func (c *Cluster[E]) Barrier() error {
	_, err := c.FlushAll()
	return err
}

// Close tears down every connection. Server-side pins held by them are
// released by the servers' connection teardown.
func (c *Cluster[E]) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	for _, sn := range c.send {
		sn.close()
	}
	for _, cn := range c.prim {
		cn.Close()
	}
	for _, cn := range c.repl {
		if cn != nil {
			cn.Close()
		}
	}
}

// Stats are the client-observed counters: acked ingest volume, the
// read-path cache/fallback behavior, and the resilience layer's
// retry/breaker/failover transitions. Server-side engine counters come
// from ShardStats.
type Stats struct {
	Shards           int    `json:"shards"`
	Edges            uint64 `json:"edges"`
	Batches          uint64 `json:"batches"`
	SubmitErrs       uint64 `json:"submit_errs,omitempty"`
	Pins             uint64 `json:"pins"`
	RangeRPCs        uint64 `json:"range_rpcs"`
	ViewFetches      uint64 `json:"view_fetches"`
	ViewHits         uint64 `json:"view_hits"`
	StitchBuilds     uint64 `json:"stitch_builds"`
	StitchHits       uint64 `json:"stitch_hits"`
	ReplicaReads     uint64 `json:"replica_reads,omitempty"`
	PrimaryFallbacks uint64 `json:"primary_fallbacks,omitempty"`
	Retries          uint64 `json:"retries,omitempty"`
	DedupAcks        uint64 `json:"dedup_acks,omitempty"`
	BreakerOpens     uint64 `json:"breaker_opens,omitempty"`
	BreakerFastFails uint64 `json:"breaker_fast_fails,omitempty"`
	Suspects         uint64 `json:"suspects,omitempty"`
	RPCTimeouts      uint64 `json:"rpc_timeouts,omitempty"`
	Failovers        uint64 `json:"failovers,omitempty"`
	Promotions       uint64 `json:"promotions,omitempty"`
	DegradedPins     uint64 `json:"degraded_pins,omitempty"`
	StaleReads       uint64 `json:"stale_reads,omitempty"`
	HealthProbes     uint64 `json:"health_probes,omitempty"`
}

// Stats returns the client-side counters.
func (c *Cluster[E]) Stats() Stats {
	return Stats{
		Shards:           len(c.prim),
		Edges:            c.edges.Load(),
		Batches:          c.batches.Load(),
		SubmitErrs:       c.submitErrs.Load(),
		Pins:             c.pins.Load(),
		RangeRPCs:        c.rangeRPCs.Load(),
		ViewFetches:      c.viewFetches.Load(),
		ViewHits:         c.viewHits.Load(),
		StitchBuilds:     c.stitchBuilds.Load(),
		StitchHits:       c.stitchHits.Load(),
		ReplicaReads:     c.replicaReads.Load(),
		PrimaryFallbacks: c.primaryFallbacks.Load(),
		Retries:          c.nstat.retries.Load(),
		DedupAcks:        c.nstat.dedupAcks.Load(),
		BreakerOpens:     c.nstat.breakerOpens.Load(),
		BreakerFastFails: c.nstat.breakerFastFails.Load(),
		Suspects:         c.nstat.suspects.Load(),
		RPCTimeouts:      c.nstat.timeouts.Load(),
		Failovers:        c.nstat.failovers.Load(),
		Promotions:       c.nstat.promotions.Load(),
		DegradedPins:     c.nstat.degradedPins.Load(),
		StaleReads:       c.nstat.staleReads.Load(),
		HealthProbes:     c.nstat.probes.Load(),
	}
}

// ShardStats fetches every shard server's engine counters.
func (c *Cluster[E]) ShardStats() ([]stream.Stats, error) {
	out := make([]stream.Stats, len(c.prim))
	for s, cn := range c.prim {
		raw, err := fetchStatsJSON(cn)
		if err != nil {
			return out, err
		}
		if err := unmarshalStats(raw, &out[s]); err != nil {
			return out, err
		}
	}
	return out, nil
}

// Tx is a pinned cross-shard read transaction: stamps is the version
// vector (one committed prefix per shard; 0 means the shard is pinned
// on a replica and addressed purely by seq), seqs the per-shard WAL
// watermarks replica reads are addressed by. pinned records which
// connection holds each shard's pin (nil: stale cached view, nothing
// to release).
type Tx[E any] struct {
	c      *Cluster[E]
	stamps []uint64
	seqs   []uint64
	pinned []*Conn
	open   bool
}

// Begin pins the latest version on every shard and returns the
// transaction. One Pin round trip per shard, pipelined. A shard whose
// primary is unreachable degrades down the ladder: replica pin
// (fresh-at-pin-time bounded staleness), then — with Options.
// MaxStaleness set — the shard's last cached view if recent enough.
func (c *Cluster[E]) Begin() (*Tx[E], error) {
	tx, _ := c.txPool.Get().(*Tx[E])
	if tx == nil {
		tx = &Tx[E]{
			c:      c,
			stamps: make([]uint64, len(c.prim)),
			seqs:   make([]uint64, len(c.prim)),
			pinned: make([]*Conn, len(c.prim)),
		}
	}
	tx.open = true
	for s := range tx.pinned {
		tx.stamps[s], tx.seqs[s], tx.pinned[s] = 0, 0, nil
	}
	calls := make([]*call, len(c.prim))
	for s := range c.prim {
		s := s
		ca := callPool.Get().(*call)
		ca.onBody = func(_ uint8, d *rpc.Body) error {
			tx.stamps[s] = d.U64()
			tx.seqs[s] = d.U64()
			return nil
		}
		ca.deadline = 0
		if c.opts.RPCDeadline > 0 {
			ca.deadline = time.Now().Add(c.opts.RPCDeadline).UnixNano()
		}
		if err := c.prim[s].start(rpc.VerbPin, 0, nil, ca); err != nil {
			ca.onBody = nil
			callPool.Put(ca)
			continue // fall back below
		}
		calls[s] = ca
	}
	var firstErr error
	for s, ca := range calls {
		var err error
		if ca != nil {
			err = <-ca.done
			ca.onBody = nil
			callPool.Put(ca)
			if err == nil {
				tx.pinned[s] = c.prim[s]
				continue
			}
		}
		if ferr := c.pinFallback(tx, s); ferr != nil && firstErr == nil {
			firstErr = ferr
		}
	}
	c.pins.Add(uint64(len(c.prim)))
	if firstErr != nil {
		tx.releasePins()
		tx.open = false
		c.txPool.Put(tx)
		return nil, firstErr
	}
	return tx, nil
}

// pinFallback pins shard s through the degradation ladder after its
// primary refused: a replica pin if the shard has a live replica, then
// a bounded-stale cached view under Options.MaxStaleness.
func (c *Cluster[E]) pinFallback(tx *Tx[E], s int) error {
	if rc := c.repl[s]; rc != nil {
		var stamp, seq uint64
		err := rc.roundTrip(rpc.VerbPin, 0, nil, func(_ uint8, d *rpc.Body) error {
			stamp = d.U64()
			seq = d.U64()
			return nil
		})
		if err == nil {
			tx.stamps[s], tx.seqs[s] = stamp, seq
			tx.pinned[s] = rc
			c.nstat.degradedPins.Add(1)
			return nil
		}
	}
	if c.opts.MaxStaleness > 0 {
		c.vmu.Lock()
		cv := c.views[s]
		c.vmu.Unlock()
		if cv.view != nil && time.Since(cv.at) <= c.opts.MaxStaleness {
			tx.stamps[s], tx.seqs[s] = cv.stamp, cv.seq
			c.nstat.staleReads.Add(1)
			return nil
		}
	}
	return fmt.Errorf("remote: shard %d unreachable and no degraded fallback", s)
}

// Stamps returns the pinned version vector. Valid until Close.
func (t *Tx[E]) Stamps() []uint64 { return t.stamps }

// Seqs returns the per-shard WAL watermarks taken at pin time.
func (t *Tx[E]) Seqs() []uint64 { return t.seqs }

// Flat fetches (or reuses) the stitched flat view of the pinned
// vector; every algos kernel runs on it unmodified.
func (t *Tx[E]) Flat() (ligra.Graph, error) {
	if !t.open {
		return nil, errors.New("remote: use of closed Tx")
	}
	return t.c.flatFor(t.stamps, t.seqs)
}

// Close releases the pins. Idempotent.
func (t *Tx[E]) Close() {
	if !t.open {
		return
	}
	t.releasePins()
	t.open = false
	t.c.txPool.Put(t)
}

func (t *Tx[E]) releasePins() {
	for s, pc := range t.pinned {
		if pc == nil {
			continue
		}
		t.pinned[s] = nil
		stamp := t.stamps[s]
		// Fire-and-forget: a lost release is reclaimed by server-side
		// connection teardown.
		ca := &call{done: make(chan error, 1)}
		_ = pc.start(rpc.VerbRelease, 0, func(e *rpc.Encoder) {
			e.U64(stamp)
		}, ca)
	}
}
