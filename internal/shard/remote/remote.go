// Package remote puts the sharded serving layer on the network: a
// Server hosts one durable stream.Engine per process (cmd/shardd) and
// a client-side Cluster speaks the internal/rpc frame protocol to
// present the same facade as the in-process shard.Cluster — batches
// are routed with the same zero-copy shard.Route, reads pin a version
// vector of per-shard commit stamps, and flat views are stitched with
// the same shard.StitchViews from per-shard degree/adjacency ranges
// fetched over the wire, so every algos kernel runs unmodified against
// a cluster of processes.
//
// Consistency model. Each pinned stamp is a committed prefix of its
// shard's serialized history, exactly as in-process; a Barrier with
// writers quiet makes the pinned vector the exact global graph. Read
// replicas are fed by WAL tail shipping (every committed record
// streams to subscribers before it is acknowledged) and serve reads
// addressed by WAL sequence number: a replica read returns a committed
// prefix at least as fresh as the pinned stamp, and a replica that
// lags the pin watermark refuses (rpc.FlagLagging) so the client falls
// back to the primary. Exact-vector reads therefore always have the
// primary path; replicas trade bounded staleness-above-the-pin for
// query fan-out.
package remote

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/rpc"
)

// ErrLagging is wrapped by replica read errors that mean "behind the
// requested sequence"; the client falls back to the primary.
var ErrLagging = errors.New("remote: replica lagging")

// ServerError is a remote-side failure relayed over an error frame.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "remote: server: " + e.Msg }

// call is one in-flight request. onBody (if set) parses the success
// response on the reader goroutine; onDone (if set) runs after the
// outcome is known — both must be quick and non-blocking. done is
// buffered so the reader never blocks delivering the outcome.
type call struct {
	done   chan error
	onBody func(flags uint8, d *rpc.Body) error
	onDone func(err error)
}

var callPool = sync.Pool{New: func() any {
	return &call{done: make(chan error, 1)}
}}

// Conn is one multiplexed client connection to a shard server.
// Requests are pipelined: the writer is serialized under mu, responses
// are matched to calls by request id on a single reader goroutine, and
// submit acks arrive whenever the remote commit completes. A broken
// connection fails every in-flight call and redials on next use.
type Conn struct {
	addr     string
	hello    helloInfo
	dialWait time.Duration

	mu  sync.Mutex // dial state + frame writer
	nc  net.Conn
	bw  *bufio.Writer
	enc rpc.Encoder
	gen uint64 // bumped per successful dial

	pmu     sync.Mutex
	pending map[uint64]*call
	pgen    uint64 // generation the pending map belongs to
	nextID  uint64
}

// helloInfo is the identity the client expects the server to confirm.
type helloInfo struct {
	shard    int
	shards   int
	weighted bool
	width    int
	role     uint8 // 0 primary, 1 replica
}

func newConn(addr string, hi helloInfo, dialWait time.Duration) *Conn {
	return &Conn{addr: addr, hello: hi, dialWait: dialWait, pending: make(map[uint64]*call)}
}

// ensureLocked dials and handshakes if the connection is down. Called
// with mu held. Retries the dial for up to dialWait so cluster
// processes may come up in any order.
func (c *Conn) ensureLocked() error {
	if c.nc != nil {
		return nil
	}
	deadline := time.Now().Add(c.dialWait)
	var nc net.Conn
	var err error
	for {
		nc, err = net.DialTimeout("tcp", c.addr, time.Second)
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("remote: dial %s: %w", c.addr, err)
	}
	bw := bufio.NewWriterSize(nc, 1<<16)
	if err := handshake(nc, bw, c.hello); err != nil {
		nc.Close()
		return fmt.Errorf("remote: handshake %s: %w", c.addr, err)
	}
	c.nc, c.bw = nc, bw
	c.gen++
	c.pmu.Lock()
	c.pending = make(map[uint64]*call)
	c.pgen = c.gen
	c.pmu.Unlock()
	go c.readLoop(nc, c.gen)
	return nil
}

// handshake performs the Hello exchange synchronously on a fresh
// connection, before the reader goroutine exists.
func handshake(nc net.Conn, bw *bufio.Writer, hi helloInfo) error {
	var enc rpc.Encoder
	enc.Begin(rpc.VerbHello, 0, 0)
	enc.U32(rpc.ProtoVersion)
	enc.U32(uint32(hi.shard))
	enc.U32(uint32(hi.shards))
	if hi.weighted {
		enc.U8(1)
	} else {
		enc.U8(0)
	}
	f, err := enc.Finish()
	if err != nil {
		return err
	}
	if _, err := bw.Write(f); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	defer nc.SetReadDeadline(time.Time{})
	m, err := rpc.NewReader(nc).Next()
	if err != nil {
		return err
	}
	if m.Flags&rpc.FlagErr != 0 {
		return &ServerError{Msg: string(m.Body)}
	}
	d := rpc.NewBody(m.Body)
	proto := d.U32()
	shard := int(d.U32())
	shards := int(d.U32())
	weighted := d.U8() != 0
	role := d.U8()
	width := int(d.U8())
	if err := d.Err(); err != nil {
		return err
	}
	if proto != rpc.ProtoVersion {
		return fmt.Errorf("protocol version %d, want %d", proto, rpc.ProtoVersion)
	}
	if shard != hi.shard || shards != hi.shards {
		return fmt.Errorf("server is shard %d/%d, want %d/%d", shard, shards, hi.shard, hi.shards)
	}
	if weighted != hi.weighted {
		return fmt.Errorf("server weighted=%v, client weighted=%v", weighted, hi.weighted)
	}
	if role != hi.role {
		return fmt.Errorf("server role %d, want %d", role, hi.role)
	}
	if width != hi.width {
		return fmt.Errorf("server edge width %d, want %d", width, hi.width)
	}
	return nil
}

// readLoop matches response frames to in-flight calls until the
// connection dies, then fails everything outstanding.
func (c *Conn) readLoop(nc net.Conn, gen uint64) {
	r := rpc.NewReader(bufio.NewReaderSize(nc, 1<<16))
	for {
		m, err := r.Next()
		if err != nil {
			c.fail(nc, gen, err)
			return
		}
		if m.Flags&rpc.FlagResp == 0 {
			c.fail(nc, gen, fmt.Errorf("remote: unexpected push frame verb %d", m.Verb))
			return
		}
		c.pmu.Lock()
		ca := c.pending[m.ReqID]
		delete(c.pending, m.ReqID)
		c.pmu.Unlock()
		if ca == nil {
			continue
		}
		var cerr error
		switch {
		case m.Flags&rpc.FlagErr != 0:
			if m.Flags&rpc.FlagLagging != 0 {
				cerr = fmt.Errorf("%w: %s", ErrLagging, string(m.Body))
			} else {
				cerr = &ServerError{Msg: string(m.Body)}
			}
		case ca.onBody != nil:
			d := rpc.NewBody(m.Body)
			cerr = ca.onBody(m.Flags, &d)
			if cerr == nil {
				cerr = d.Err()
			}
		}
		if ca.onDone != nil {
			ca.onDone(cerr)
		}
		ca.done <- cerr
	}
}

// fail tears down one connection generation: every call that was in
// flight on it errors out, and the next operation redials. The
// generation check keeps a stale reader from touching calls that
// belong to a newer connection.
func (c *Conn) fail(nc net.Conn, gen uint64, err error) {
	c.mu.Lock()
	if c.gen == gen && c.nc == nc {
		c.nc.Close()
		c.nc, c.bw = nil, nil
	}
	c.mu.Unlock()
	c.drainGen(gen, err)
}

// drainGen errors out every pending call of generation gen.
func (c *Conn) drainGen(gen uint64, err error) {
	c.pmu.Lock()
	var stale map[uint64]*call
	if c.pgen == gen {
		stale = c.pending
		c.pending = make(map[uint64]*call)
	}
	c.pmu.Unlock()
	if len(stale) == 0 {
		return
	}
	werr := fmt.Errorf("remote: %s: connection failed: %w", c.addr, err)
	for _, ca := range stale {
		if ca.onDone != nil {
			ca.onDone(werr)
		}
		ca.done <- werr
	}
}

// start registers ca, encodes one request frame and flushes it. On a
// write error the call is unregistered and the error returned — the
// caller must not wait on it.
func (c *Conn) start(verb rpc.Verb, flags uint8, build func(e *rpc.Encoder), ca *call) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureLocked(); err != nil {
		return err
	}
	gen := c.gen
	c.pmu.Lock()
	c.nextID++
	id := c.nextID
	c.pending[id] = ca
	c.pmu.Unlock()
	c.enc.Begin(verb, flags, id)
	if build != nil {
		build(&c.enc)
	}
	f, err := c.enc.Finish()
	if err == nil {
		if _, werr := c.bw.Write(f); werr != nil {
			err = werr
		} else {
			err = c.bw.Flush()
		}
	}
	if err != nil {
		// The connection is unusable: earlier pipelined calls on it
		// will never see responses either, so fail the generation.
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		c.nc.Close()
		c.nc, c.bw = nil, nil
		c.drainGen(gen, err)
		return fmt.Errorf("remote: %s: write: %w", c.addr, err)
	}
	return nil
}

// roundTrip issues one request and blocks for its response. onBody
// parses the success body (reader goroutine; must not block).
func (c *Conn) roundTrip(verb rpc.Verb, flags uint8, build func(e *rpc.Encoder), onBody func(flags uint8, d *rpc.Body) error) error {
	ca := callPool.Get().(*call)
	ca.onBody, ca.onDone = onBody, nil
	if err := c.start(verb, flags, build, ca); err != nil {
		ca.onBody = nil
		callPool.Put(ca)
		return err
	}
	err := <-ca.done
	ca.onBody = nil
	callPool.Put(ca)
	return err
}

// Close tears the connection down; in-flight calls fail.
func (c *Conn) Close() {
	c.mu.Lock()
	nc, gen := c.nc, c.gen
	c.mu.Unlock()
	if nc != nil {
		c.fail(nc, gen, errors.New("closed"))
	}
}
