// Package remote puts the sharded serving layer on the network: a
// Server hosts one durable stream.Engine per process (cmd/shardd) and
// a client-side Cluster speaks the internal/rpc frame protocol to
// present the same facade as the in-process shard.Cluster — batches
// are routed with the same zero-copy shard.Route, reads pin a version
// vector of per-shard commit stamps, and flat views are stitched with
// the same shard.StitchViews from per-shard degree/adjacency ranges
// fetched over the wire, so every algos kernel runs unmodified against
// a cluster of processes.
//
// Consistency model. Each pinned stamp is a committed prefix of its
// shard's serialized history, exactly as in-process; a Barrier with
// writers quiet makes the pinned vector the exact global graph. Read
// replicas are fed by WAL tail shipping (every committed record
// streams to subscribers before it is acknowledged) and serve reads
// addressed by WAL sequence number: a replica read returns a committed
// prefix at least as fresh as the pinned stamp, and a replica that
// lags the pin watermark refuses (rpc.FlagLagging) so the client falls
// back to the primary. Exact-vector reads therefore always have the
// primary path; replicas trade bounded staleness-above-the-pin for
// query fan-out.
//
// Failure model. Submits are exactly-once across retries: each batch
// carries a (clientID, clientSeq) note, the server journals it with
// the commit, and a retried duplicate is acked from the dedup window
// (rpc.FlagDeduped) instead of re-applied. Connections carry per-verb
// deadlines enforced by a watchdog, redials back off exponentially
// with jitter, and a per-endpoint circuit breaker fails fast while an
// endpoint is down. Reads degrade gracefully: primary → replica →
// promoted replica → bounded-staleness cached views (Options.
// MaxStaleness), with every transition counted in Stats.
package remote

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rpc"
)

// ErrLagging is wrapped by replica read errors that mean "behind the
// requested sequence"; the client falls back to the primary.
var ErrLagging = errors.New("remote: replica lagging")

// ErrUnavailable is returned without touching the network while an
// endpoint's circuit breaker is open.
var ErrUnavailable = errors.New("remote: endpoint unavailable (breaker open)")

// ServerError is a remote-side failure relayed over an error frame.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "remote: server: " + e.Msg }

// netCounters aggregates the resilience counters one Cluster's
// connections share; surfaced through Stats.
type netCounters struct {
	retries          atomic.Uint64 // submit frames retransmitted
	dedupAcks        atomic.Uint64 // acks answered from the server dedup window
	breakerOpens     atomic.Uint64 // endpoint transitions to down
	breakerFastFails atomic.Uint64 // operations refused while a breaker was open
	suspects         atomic.Uint64 // endpoint transitions healthy→suspect
	timeouts         atomic.Uint64 // RPC deadlines that closed a connection
	failovers        atomic.Uint64 // submit streams redirected to a promoted replica
	promotions       atomic.Uint64 // replica promotions observed by the health prober
	degradedPins     atomic.Uint64 // Begin pins served by a replica with the primary down
	staleReads       atomic.Uint64 // Begin pins served from bounded-stale cached views
	probes           atomic.Uint64 // health probes issued
}

// Endpoint health states (Conn.epState).
const (
	epHealthy uint32 = iota
	epSuspect        // recent failures below the breaker threshold
	epDown           // breaker open: fail fast until cooldown expires
)

// call is one in-flight request. onBody (if set) parses the success
// response on the reader goroutine; onDone (if set) runs after the
// outcome is known — both must be quick and non-blocking. done is
// buffered so the reader never blocks delivering the outcome. deadline
// (unixnano, 0=none) is enforced by the connection watchdog. rec, when
// set, routes the outcome through the retry sender first.
type call struct {
	done     chan error
	onBody   func(flags uint8, d *rpc.Body) error
	onDone   func(err error)
	deadline int64
	rec      *sendRec
}

var callPool = sync.Pool{New: func() any {
	return &call{done: make(chan error, 1)}
}}

// Conn is one multiplexed client connection to a shard server.
// Requests are pipelined: the writer is serialized under mu, responses
// are matched to calls by request id on a single reader goroutine, and
// submit acks arrive whenever the remote commit completes. A broken
// connection fails every in-flight call and redials on next use,
// subject to the endpoint's circuit breaker.
type Conn struct {
	addr  string
	hello helloInfo
	opts  Options
	nstat *netCounters

	mu    sync.Mutex // dial state + frame writer
	nc    net.Conn
	bw    *bufio.Writer
	enc   rpc.Encoder
	gen   uint64 // generation of the live connection (globally unique per dial)
	wstop chan struct{}

	// Breaker state, under mu except epState (read lock-free).
	epState   atomic.Uint32
	failures  int // consecutive dial/handshake failures
	opens     int // consecutive breaker opens (cooldown doubling)
	openUntil time.Time
	everUp    bool // endpoint has handshaked at least once

	pmu     sync.Mutex
	pending map[uint64]*call
	pgen    uint64 // generation the pending map belongs to
	nextID  uint64
}

// helloInfo is the identity the client expects the server to confirm.
type helloInfo struct {
	shard    int
	shards   int
	weighted bool
	width    int
	role     uint8 // rolePrimary, roleReplica (rolePromoted accepted too)
}

func newConn(addr string, hi helloInfo, opts Options, nstat *netCounters) *Conn {
	if nstat == nil {
		nstat = &netCounters{}
	}
	return &Conn{addr: addr, hello: hi, opts: opts, nstat: nstat, pending: make(map[uint64]*call)}
}

// state reports the endpoint's breaker state (epHealthy/epSuspect/epDown).
func (c *Conn) state() uint32 { return c.epState.Load() }

// noteFailLocked records a failed dial or handshake. mu held.
func (c *Conn) noteFailLocked() {
	c.failures++
	if c.failures < c.opts.BreakerThreshold {
		if c.epState.CompareAndSwap(epHealthy, epSuspect) {
			c.nstat.suspects.Add(1)
		}
		return
	}
	cool := c.opts.BreakerCooldown << uint(min(c.opens, 5))
	if maxCool := 20 * c.opts.BreakerCooldown; cool > maxCool {
		cool = maxCool
	}
	c.opens++
	c.openUntil = time.Now().Add(cool)
	c.epState.Store(epDown)
	c.nstat.breakerOpens.Add(1) // counts re-opens after failed half-open probes too
}

// noteOKLocked records a successful handshake. mu held.
func (c *Conn) noteOKLocked() {
	c.failures, c.opens = 0, 0
	c.openUntil = time.Time{}
	c.everUp = true
	c.epState.Store(epHealthy)
}

// ensureLocked dials and handshakes if the connection is down. Called
// with mu held. First contact retries the dial for up to DialWait so
// cluster processes may come up in any order; after that, redials are
// single attempts gated by the circuit breaker (one half-open probe
// per cooldown while down).
func (c *Conn) ensureLocked() error {
	if c.nc != nil {
		return nil
	}
	if c.epState.Load() == epDown && time.Now().Before(c.openUntil) {
		c.nstat.breakerFastFails.Add(1)
		return fmt.Errorf("%w: %s", ErrUnavailable, c.addr)
	}
	var nc net.Conn
	var err error
	if c.everUp {
		nc, err = c.opts.Dialer("tcp", c.addr, c.opts.DialTimeout)
	} else {
		deadline := time.Now().Add(c.opts.DialWait)
		for {
			nc, err = c.opts.Dialer("tcp", c.addr, c.opts.DialTimeout)
			if err == nil || time.Now().After(deadline) {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	if err != nil {
		c.noteFailLocked()
		return fmt.Errorf("remote: dial %s: %w", c.addr, err)
	}
	bw := bufio.NewWriterSize(nc, 1<<16)
	if err := handshake(nc, bw, c.hello, c.opts.WriteTimeout); err != nil {
		nc.Close()
		c.noteFailLocked()
		return fmt.Errorf("remote: handshake %s: %w", c.addr, err)
	}
	c.noteOKLocked()
	c.nc, c.bw = nc, bw
	c.gen = connGenCtr.Add(1)
	c.wstop = make(chan struct{})
	c.pmu.Lock()
	c.pending = make(map[uint64]*call)
	c.pgen = c.gen
	c.pmu.Unlock()
	go c.readLoop(nc, c.gen)
	go c.watchdog(nc, c.wstop)
	return nil
}

// handshake performs the Hello exchange synchronously on a fresh
// connection, before the reader goroutine exists.
func handshake(nc net.Conn, bw *bufio.Writer, hi helloInfo, writeTimeout time.Duration) error {
	var enc rpc.Encoder
	enc.Begin(rpc.VerbHello, 0, 0)
	enc.U32(rpc.ProtoVersion)
	enc.U32(uint32(hi.shard))
	enc.U32(uint32(hi.shards))
	if hi.weighted {
		enc.U8(1)
	} else {
		enc.U8(0)
	}
	f, err := enc.Finish()
	if err != nil {
		return err
	}
	if writeTimeout > 0 {
		if err := nc.SetWriteDeadline(time.Now().Add(writeTimeout)); err != nil {
			return err
		}
	}
	if _, err := bw.Write(f); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := nc.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return err
	}
	m, err := rpc.NewReader(nc).Next()
	if err != nil {
		return err
	}
	if err := nc.SetReadDeadline(time.Time{}); err != nil {
		return err
	}
	if m.Flags&rpc.FlagErr != 0 {
		return &ServerError{Msg: string(m.Body)}
	}
	d := rpc.NewBody(m.Body)
	proto := d.U32()
	shard := int(d.U32())
	shards := int(d.U32())
	weighted := d.U8() != 0
	role := d.U8()
	width := int(d.U8())
	if err := d.Err(); err != nil {
		return err
	}
	if proto != rpc.ProtoVersion {
		return fmt.Errorf("protocol version %d, want %d", proto, rpc.ProtoVersion)
	}
	if shard != hi.shard || shards != hi.shards {
		return fmt.Errorf("server is shard %d/%d, want %d/%d", shard, shards, hi.shard, hi.shards)
	}
	if weighted != hi.weighted {
		return fmt.Errorf("server weighted=%v, client weighted=%v", weighted, hi.weighted)
	}
	// A replica endpoint may have promoted itself to an accepting
	// primary since we last spoke; that is still a valid peer.
	if role != hi.role && !(hi.role == roleReplica && role == rolePromoted) {
		return fmt.Errorf("server role %d, want %d", role, hi.role)
	}
	if width != hi.width {
		return fmt.Errorf("server edge width %d, want %d", width, hi.width)
	}
	return nil
}

// watchdog enforces per-call deadlines for one connection generation:
// when any in-flight call is past its deadline the transport is closed,
// which fails the generation through the usual reader path. It exits
// when the generation is torn down.
func (c *Conn) watchdog(nc net.Conn, stop chan struct{}) {
	tick := c.opts.RPCDeadline / 4
	if tick <= 0 {
		tick = 100 * time.Millisecond
	}
	tick = max(10*time.Millisecond, min(tick, 500*time.Millisecond))
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		now := time.Now().UnixNano()
		expired := false
		c.pmu.Lock()
		for _, ca := range c.pending {
			if ca.deadline != 0 && now > ca.deadline {
				expired = true
				break
			}
		}
		c.pmu.Unlock()
		if expired {
			c.nstat.timeouts.Add(1)
			nc.Close()
			return
		}
	}
}

// readLoop matches response frames to in-flight calls until the
// connection dies, then fails everything outstanding.
func (c *Conn) readLoop(nc net.Conn, gen uint64) {
	r := rpc.NewReader(bufio.NewReaderSize(nc, 1<<16))
	for {
		m, err := r.Next()
		if err != nil {
			c.fail(nc, gen, err)
			return
		}
		if m.Flags&rpc.FlagResp == 0 {
			c.fail(nc, gen, fmt.Errorf("remote: unexpected push frame verb %d", m.Verb))
			return
		}
		c.pmu.Lock()
		ca := c.pending[m.ReqID]
		delete(c.pending, m.ReqID)
		c.pmu.Unlock()
		if ca == nil {
			// Duplicate or late frame (e.g. an injected duplicate write
			// replayed the response); the call already resolved.
			continue
		}
		var cerr error
		switch {
		case m.Flags&rpc.FlagErr != 0:
			if m.Flags&rpc.FlagLagging != 0 {
				cerr = fmt.Errorf("%w: %s", ErrLagging, string(m.Body))
			} else {
				cerr = &ServerError{Msg: string(m.Body)}
			}
		case ca.onBody != nil:
			d := rpc.NewBody(m.Body)
			cerr = ca.onBody(m.Flags, &d)
			if cerr == nil {
				cerr = d.Err()
			}
		}
		c.deliver(ca, cerr)
	}
}

// deliver resolves one call's outcome. A call owned by a retry sender
// may instead be requeued (transient error, budget remaining), in
// which case the outcome is not final and nothing fires here.
func (c *Conn) deliver(ca *call, err error) {
	if ca.rec != nil && ca.rec.s.onOutcome(ca.rec, err) {
		return
	}
	if ca.onDone != nil {
		ca.onDone(err)
	}
	ca.done <- err
}

// fail tears down one connection generation: every call that was in
// flight on it errors out, and the next operation redials. The
// generation check keeps a stale reader from touching calls that
// belong to a newer connection.
func (c *Conn) fail(nc net.Conn, gen uint64, err error) {
	c.mu.Lock()
	if c.gen == gen {
		c.teardownLocked(nc)
	}
	c.mu.Unlock()
	c.drainGen(gen, err)
}

// teardownLocked closes the live transport if it is still nc and stops
// its watchdog. mu held.
func (c *Conn) teardownLocked(nc net.Conn) {
	if c.nc != nc {
		return
	}
	c.nc.Close()
	c.nc, c.bw = nil, nil
	if c.wstop != nil {
		close(c.wstop)
		c.wstop = nil
	}
}

// drainGen errors out every pending call of generation gen.
func (c *Conn) drainGen(gen uint64, err error) {
	c.pmu.Lock()
	var stale map[uint64]*call
	if c.pgen == gen {
		stale = c.pending
		c.pending = make(map[uint64]*call)
	}
	c.pmu.Unlock()
	if len(stale) == 0 {
		return
	}
	werr := fmt.Errorf("remote: %s: connection failed: %w", c.addr, err)
	for _, ca := range stale {
		c.deliver(ca, werr)
	}
}

// start registers ca, encodes one request frame and flushes it. On a
// write error the call is unregistered and the error returned — the
// caller must not wait on it.
// connGenCtr issues globally unique connection generations, so a
// (conn, dial) incarnation is identified by its gen alone — senders pin
// in-flight records to one.
var connGenCtr atomic.Uint64

func (c *Conn) start(verb rpc.Verb, flags uint8, build func(e *rpc.Encoder), ca *call) error {
	_, err := c.startPinned(verb, flags, build, ca, 0)
	return err
}

// startPinned is start with a connection-generation pin: when mustGen
// is nonzero the frame is only written if the connection is live on
// exactly that generation — it never redials. Senders use the pin to
// keep a shard's FIFO intact across connection churn: records sent on
// a generation that died are requeued by its teardown drain, and until
// that drain lands nothing newer may overtake them on a fresh
// connection. Returns the generation the frame was written on.
func (c *Conn) startPinned(verb rpc.Verb, flags uint8, build func(e *rpc.Encoder), ca *call, mustGen uint64) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if mustGen != 0 && (c.nc == nil || c.gen != mustGen) {
		return 0, fmt.Errorf("remote: %s: connection superseded, in-flight requeue pending", c.addr)
	}
	if err := c.ensureLocked(); err != nil {
		return 0, err
	}
	gen := c.gen
	c.pmu.Lock()
	c.nextID++
	id := c.nextID
	c.pending[id] = ca
	c.pmu.Unlock()
	c.enc.Begin(verb, flags, id)
	if build != nil {
		build(&c.enc)
	}
	f, err := c.enc.Finish()
	if err == nil && c.opts.WriteTimeout > 0 {
		err = c.nc.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout))
	}
	if err == nil {
		if _, werr := c.bw.Write(f); werr != nil {
			err = werr
		} else {
			err = c.bw.Flush()
		}
	}
	if err != nil {
		// The connection is unusable: earlier pipelined calls on it
		// will never see responses either, so fail the generation.
		// Draining must not run under mu — a drained submit may requeue
		// through its sender, which re-enters this Conn.
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		c.teardownLocked(c.nc)
		go c.drainGen(gen, err)
		return 0, fmt.Errorf("remote: %s: write: %w", c.addr, err)
	}
	return gen, nil
}

// roundTrip issues one request and blocks for its response. onBody
// parses the success body (reader goroutine; must not block).
func (c *Conn) roundTrip(verb rpc.Verb, flags uint8, build func(e *rpc.Encoder), onBody func(flags uint8, d *rpc.Body) error) error {
	ca := callPool.Get().(*call)
	ca.onBody, ca.onDone, ca.rec = onBody, nil, nil
	ca.deadline = 0
	if c.opts.RPCDeadline > 0 {
		ca.deadline = time.Now().Add(c.opts.RPCDeadline).UnixNano()
	}
	if err := c.start(verb, flags, build, ca); err != nil {
		ca.onBody = nil
		callPool.Put(ca)
		return err
	}
	err := <-ca.done
	ca.onBody = nil
	callPool.Put(ca)
	return err
}

// health asks the endpoint for its role and progress (VerbHealth).
func (c *Conn) health() (role uint8, stamp, applied uint64, err error) {
	err = c.roundTrip(rpc.VerbHealth, 0, nil, func(_ uint8, d *rpc.Body) error {
		role = d.U8()
		stamp = d.U64()
		applied = d.U64()
		return nil
	})
	return role, stamp, applied, err
}

// Close tears the connection down; in-flight calls fail.
func (c *Conn) Close() {
	c.mu.Lock()
	nc, gen := c.nc, c.gen
	c.mu.Unlock()
	if nc != nil {
		c.fail(nc, gen, errors.New("closed"))
	}
}
