package remote

import (
	"math/rand/v2"
	"net"
	"time"
)

// Backoff is a capped exponential backoff with jitter, shared by
// redials, idempotent submit retries and the replica tail loop.
type Backoff struct {
	// Base is the first delay. Default 25ms.
	Base time.Duration
	// Max caps the grown delay. Default 1s.
	Max time.Duration
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 25 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = time.Second
	}
	return b
}

// delay returns the attempt'th backoff delay with ±25% jitter, so
// retry storms from many clients decorrelate instead of thundering.
func (b Backoff) delay(attempt int) time.Duration {
	d := b.Base << uint(min(attempt, 20))
	if d <= 0 || d > b.Max {
		d = b.Max
	}
	j := time.Duration(rand.Int64N(int64(d)/2 + 1))
	return d - d/4 + j
}

// Options tunes the cluster client, the shard server's dedup window
// and the replica tail loop. The zero value selects the defaults
// documented per field.
type Options struct {
	// MaxInFlight bounds pipelined Submit frames per shard connection
	// (backpressure, mirroring the engine's bounded queue). Default 256.
	MaxInFlight int
	// DialWait is how long the FIRST contact with an endpoint retries
	// dialing before failing (lets cluster processes start in any
	// order). After an endpoint has been up once, redials are single
	// attempts paced by Backoff. Default 5s.
	DialWait time.Duration
	// DialTimeout bounds one TCP dial attempt. Default 1s.
	DialTimeout time.Duration
	// RPCDeadline bounds the wait for a response to read-path verbs
	// (Pin, Read, Flush-less round trips, Health, Stats); a stalled
	// connection is closed and its calls fail over the usual error
	// path. Default 10s; <0 disables.
	RPCDeadline time.Duration
	// SubmitAckDeadline bounds the wait for one submit attempt's commit
	// ack (commits can legitimately queue behind a deep ingest backlog,
	// so this is looser than RPCDeadline). Default 30s; <0 disables.
	SubmitAckDeadline time.Duration
	// RetryDeadline is the total retry budget of one submitted batch
	// across redials and retransmits; past it the last transport error
	// surfaces to the caller. Default 2m.
	RetryDeadline time.Duration
	// WriteTimeout bounds each frame write (both ends), so a peer that
	// stops reading cannot wedge a writer goroutine forever. Default
	// 10s; <0 disables.
	WriteTimeout time.Duration
	// Backoff paces redials, submit retransmits and replica re-tails.
	Backoff Backoff
	// BreakerThreshold is how many consecutive failures move an
	// endpoint from suspect to down (breaker open: operations fail fast
	// without touching the network until the cooldown expires, then one
	// half-open probe attempt decides). Default 3.
	BreakerThreshold int
	// BreakerCooldown is the first open window; it doubles per
	// consecutive open, capped at 20×. Default 250ms.
	BreakerCooldown time.Duration
	// ProbeInterval paces the cluster's health prober, which watches
	// down primaries for a promoted replica to fail over to. Default
	// 250ms.
	ProbeInterval time.Duration
	// PromoteAfter, on a Replica, promotes it to an accepting primary
	// after this much sustained primary loss (no tail progress). 0
	// disables promotion.
	PromoteAfter time.Duration
	// MaxStaleness enables degraded reads: when a shard is fully
	// unreachable (primary and replica), Begin pins fall back to the
	// shard's last cached view if it is at most this old, marking the
	// transaction stale rather than failing it. 0 disables.
	MaxStaleness time.Duration
	// DedupWindow is the per-client exactly-once window on servers and
	// promoted replicas: how many recent client seqs stay answerable as
	// duplicates. Default 4096.
	DedupWindow int
	// Dialer overrides the TCP dial (fault injection; see
	// faults.Transport.Dialer). Nil uses net.DialTimeout.
	Dialer func(network, addr string, timeout time.Duration) (net.Conn, error)
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 256
	}
	if o.DialWait <= 0 {
		o.DialWait = 5 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = time.Second
	}
	if o.RPCDeadline == 0 {
		o.RPCDeadline = 10 * time.Second
	}
	if o.SubmitAckDeadline == 0 {
		o.SubmitAckDeadline = 30 * time.Second
	}
	if o.RetryDeadline <= 0 {
		o.RetryDeadline = 2 * time.Minute
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 10 * time.Second
	}
	o.Backoff = o.Backoff.withDefaults()
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 250 * time.Millisecond
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.DedupWindow <= 0 {
		o.DedupWindow = 4096
	}
	if o.Dialer == nil {
		o.Dialer = net.DialTimeout
	}
	return o
}
