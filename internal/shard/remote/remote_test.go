package remote

import (
	"fmt"
	"math"
	"net"
	"slices"
	"testing"
	"time"

	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/ligra"
	"repro/internal/rmat"
	"repro/internal/shard"
	"repro/internal/stream"
	"repro/internal/wal"
	"repro/internal/xhash"
)

func testParams() ctree.Params { return ctree.Params{B: 8} }

// testServer is one in-process shard server for the differential tests
// (the multi-process path is exercised by cmd/shardd's tests).
type testServer struct {
	eng  *stream.Engine[aspen.Graph, aspen.Edge]
	srv  *Server[aspen.Graph, aspen.Edge]
	addr string
	dir  string // WAL dir when durable
}

// startServers brings up one shard server per shard of part. durable
// gives each shard a WAL dir (required for tail subscriptions).
func startServers(t *testing.T, part shard.Partitioner, durable bool) ([]*testServer, []string) {
	t.Helper()
	n := part.Shards()
	servers := make([]*testServer, n)
	addrs := make([]string, n)
	for s := 0; s < n; s++ {
		var eng *stream.Engine[aspen.Graph, aspen.Edge]
		dir := ""
		if durable {
			dir = t.TempDir()
			var err error
			eng, err = stream.RecoverGraphEngine(testParams(), stream.Options{}, stream.Durability{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
		} else {
			eng = stream.NewGraphEngine(aspen.NewGraph(testParams()), stream.Options{})
		}
		srv := NewGraphServer(eng, testParams(), dir, s, n)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		ts := &testServer{eng: eng, srv: srv, addr: ln.Addr().String(), dir: dir}
		servers[s] = ts
		addrs[s] = ts.addr
		t.Cleanup(func() {
			ts.srv.Close()
			ts.eng.Close()
		})
	}
	return servers, addrs
}

type op struct {
	del   bool
	edges []aspen.Edge
}

func rmatOps(scale int, batches, batchSize int, seed uint64) []op {
	gen := rmat.NewGenerator(scale, seed)
	var ops []op
	var pos uint64
	for i := 0; i < batches; i++ {
		lo := pos
		pos += uint64(batchSize)
		ops = append(ops, op{edges: aspen.MakeUndirected(gen.Edges(lo, pos))})
		if i%3 == 2 && lo >= uint64(batchSize) {
			ops = append(ops, op{del: true,
				edges: aspen.MakeUndirected(gen.Edges(lo-uint64(batchSize), lo-uint64(batchSize)/2))})
		}
	}
	return ops
}

func randomOps(idSpace uint32, batches, batchSize int, seed uint64) []op {
	rng := xhash.NewRNG(seed)
	var ops []op
	for i := 0; i < batches; i++ {
		edges := make([]aspen.Edge, 0, batchSize)
		for j := 0; j < batchSize; j++ {
			u, v := rng.Uint32()%idSpace, rng.Uint32()%idSpace
			if u != v {
				edges = append(edges, aspen.Edge{Src: u, Dst: v})
			}
		}
		ops = append(ops, op{del: i%4 == 3, edges: aspen.MakeUndirected(edges)})
	}
	return ops
}

// checkAgainst compares a remote view against the single-engine ground
// truth: structure, then the kernel answers the acceptance gate names.
func checkAgainst(t *testing.T, g aspen.Graph, v ligra.Graph) {
	t.Helper()
	if v.Order() != g.Order() {
		t.Fatalf("Order = %d, want %d", v.Order(), g.Order())
	}
	if v.NumEdges() != g.NumEdges() {
		t.Fatalf("NumEdges = %d, want %d", v.NumEdges(), g.NumEdges())
	}
	for u := 0; u < g.Order(); u++ {
		id := uint32(u)
		if v.Degree(id) != g.Degree(id) {
			t.Fatalf("Degree(%d) = %d, want %d", id, v.Degree(id), g.Degree(id))
		}
		var want, got []uint32
		g.ForEachNeighbor(id, func(w uint32) bool { want = append(want, w); return true })
		v.ForEachNeighbor(id, func(w uint32) bool { got = append(got, w); return true })
		if !slices.Equal(got, want) {
			t.Fatalf("neighbors of %d differ: %v vs %v", id, got, want)
		}
	}
	for _, src := range []uint32{0, 1, uint32(g.Order()) / 2} {
		if want, got := algos.BFS(g, src, false).Distances(), algos.BFS(v, src, false).Distances(); !slices.Equal(got, want) {
			t.Fatalf("BFS(%d) distances differ", src)
		}
	}
	if want, got := algos.ConnectedComponents(g), algos.ConnectedComponents(v); !slices.Equal(got, want) {
		t.Fatal("CC labels differ")
	}
}

func TestRemoteMatchesInProcess(t *testing.T) {
	schedules := map[string][]op{
		"rmat":   rmatOps(10, 6, 1_200, 31),
		"random": randomOps(1<<10, 8, 1_000, 32),
	}
	for name, ops := range schedules {
		for _, part := range []shard.Partitioner{
			shard.NewRangePartitioner(3, 1<<10),
			shard.NewHashPartitioner(2),
		} {
			t.Run(fmt.Sprintf("%s/%T-%d", name, part, part.Shards()), func(t *testing.T) {
				_, addrs := startServers(t, part, false)
				c, err := DialGraph(part, addrs, nil, Options{})
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()

				single := aspen.NewGraph(testParams())
				inproc := shard.NewGraphCluster(part, testParams(), stream.Options{})
				defer inproc.Close()
				for _, o := range ops {
					var p *Pending
					var err error
					if o.del {
						single = single.DeleteEdges(o.edges)
						_, err = inproc.Delete(o.edges)
						if err == nil {
							p, err = c.Delete(o.edges)
						}
					} else {
						single = single.InsertEdges(o.edges)
						_, err = inproc.Insert(o.edges)
						if err == nil {
							p, err = c.Insert(o.edges)
						}
					}
					if err != nil {
						t.Fatal(err)
					}
					if err := p.Wait(); err != nil {
						t.Fatal(err)
					}
				}
				if err := c.Barrier(); err != nil {
					t.Fatal(err)
				}
				if err := inproc.Barrier(); err != nil {
					t.Fatal(err)
				}

				tx, err := c.Begin()
				if err != nil {
					t.Fatal(err)
				}
				defer tx.Close()
				flat, err := tx.Flat()
				if err != nil {
					t.Fatal(err)
				}
				if _, ok := flat.(ligra.FlatGraph); !ok {
					t.Fatal("remote stitched view does not satisfy ligra.FlatGraph")
				}
				checkAgainst(t, single, flat)

				// And against the in-process cluster's stitched view —
				// the same facade must yield the same graph.
				itx := inproc.Begin()
				defer itx.Close()
				iflat := itx.Flat()
				if flat.NumEdges() != iflat.NumEdges() {
					t.Fatalf("remote NumEdges %d, in-process %d", flat.NumEdges(), iflat.NumEdges())
				}
			})
		}
	}
}

func TestRemoteWeightedSSSP(t *testing.T) {
	part := shard.NewRangePartitioner(2, 1<<10)
	n := part.Shards()
	addrs := make([]string, n)
	for s := 0; s < n; s++ {
		eng := stream.NewWeightedEngine(aspen.NewWeightedGraphWith(testParams()), stream.Options{})
		srv := NewWeightedServer(eng, testParams(), "", s, n)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		addrs[s] = ln.Addr().String()
		t.Cleanup(func() {
			srv.Close()
			eng.Close()
		})
	}
	c, err := DialWeighted(part, addrs, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	gen := rmat.NewGenerator(10, 5)
	weightOf := func(i uint64) float32 { return 1 + float32(xhash.Mix64(i)%1000)/1000 }
	mkBatch := func(lo, hi uint64) []aspen.WeightedEdge {
		es := gen.Edges(lo, hi)
		out := make([]aspen.WeightedEdge, 0, 2*len(es))
		for j, e := range es {
			if e.Src == e.Dst {
				continue
			}
			w := weightOf(lo + uint64(j))
			out = append(out,
				aspen.WeightedEdge{Src: e.Src, Dst: e.Dst, Weight: w},
				aspen.WeightedEdge{Src: e.Dst, Dst: e.Src, Weight: w})
		}
		return out
	}
	single := aspen.NewWeightedGraphWith(testParams())
	var pos uint64
	for i := 0; i < 5; i++ {
		batch := mkBatch(pos, pos+1_000)
		pos += 1_000
		single = single.InsertEdges(batch)
		if _, err := c.Insert(batch); err != nil {
			t.Fatal(err)
		}
		if i == 3 {
			del := mkBatch(0, 400)
			single = single.DeleteEdges(del)
			if _, err := c.Delete(del); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	g, err := tx.Flat()
	if err != nil {
		t.Fatal(err)
	}
	flat, ok := g.(ligra.FlatWeightedGraph)
	if !ok {
		t.Fatal("remote weighted view does not satisfy ligra.FlatWeightedGraph")
	}
	for _, src := range []uint32{0, 3, 200} {
		want := algos.SSSP(single, src)
		got := algos.SSSP(flat, src)
		if len(got) != len(want) {
			t.Fatalf("SSSP(%d) length %d vs %d", src, len(got), len(want))
		}
		for i := range want {
			wi, gi := float64(want[i]), float64(got[i])
			if math.IsInf(wi, 1) != math.IsInf(gi, 1) ||
				(!math.IsInf(wi, 1) && math.Abs(wi-gi) > 1e-5*(1+math.Abs(wi))) {
				t.Fatalf("SSSP(%d)[%d] = %g, want %g", src, i, gi, wi)
			}
		}
	}
}

// TestRemoteViewCaching proves the client's read-path caches: repinning
// an unchanged cluster hits the stitched-view slot, and a write to one
// shard refetches only that shard.
func TestRemoteViewCaching(t *testing.T) {
	part := shard.NewRangePartitioner(3, 1<<9)
	_, addrs := startServers(t, part, false)
	c, err := DialGraph(part, addrs, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	seed := aspen.MakeUndirected(rmat.NewGenerator(9, 7).Edges(0, 4_000))
	if _, err := c.Insert(seed); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	read := func() {
		tx, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		defer tx.Close()
		if _, err := tx.Flat(); err != nil {
			t.Fatal(err)
		}
	}
	read()
	read() // unchanged: stitched-slot hit
	if st := c.Stats(); st.StitchHits == 0 {
		t.Fatalf("expected a stitch hit on an unchanged repin: %+v", st)
	}
	// Touch only shard 0's range; shards 1-2 must reuse cached views.
	if _, err := c.Insert([]aspen.Edge{{Src: 1, Dst: 2}, {Src: 2, Dst: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	read()
	st := c.Stats()
	if st.ViewHits <= before.ViewHits {
		t.Fatalf("expected unmoved shards to hit the view cache: %+v -> %+v", before, st)
	}
	if st.ViewFetches != before.ViewFetches+1 {
		t.Fatalf("expected exactly one shard refetch, got %d", st.ViewFetches-before.ViewFetches)
	}
}

// TestReplicaServesReads tails a durable primary into a replica and
// proves pinned reads land there, with the result identical to the
// primary's.
func TestReplicaServesReads(t *testing.T) {
	part := shard.NewRangePartitioner(1, 1<<20)
	servers, addrs := startServers(t, part, true)

	repl := NewGraphReplica(addrs[0], testParams(), 0, 1, 0, Options{})
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go repl.Serve(rln)
	t.Cleanup(repl.Close)

	c, err := DialGraph(part, addrs, []string{rln.Addr().String()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	single := aspen.NewGraph(testParams())
	for _, o := range rmatOps(9, 5, 800, 41) {
		var err error
		if o.del {
			single = single.DeleteEdges(o.edges)
			_, err = c.Delete(o.edges)
		} else {
			single = single.InsertEdges(o.edges)
			_, err = c.Insert(o.edges)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	// The ack covers the primary's commit; give the tail a moment to
	// drain into the replica (reads fall back to the primary until it
	// does, so correctness never depends on this).
	want := servers[0].eng.WALSeq()
	for i := 0; i < 200 && repl.Applied() < want; i++ {
		time.Sleep(5 * time.Millisecond)
	}

	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	flat, err := tx.Flat()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainst(t, single, flat)
	if st := c.Stats(); repl.Applied() >= want && st.ReplicaReads == 0 {
		t.Fatalf("caught-up replica served no reads: %+v", st)
	}
	if rs := repl.Stats(); rs.Records == 0 && rs.Snapshots == 0 {
		t.Fatalf("replica applied nothing: %+v", rs)
	}
}

// TestReplicaLagFallsBack points the cluster at a replica that can
// never catch up (its tail target does not answer) and proves reads
// degrade to the primary instead of failing.
func TestReplicaLagFallsBack(t *testing.T) {
	part := shard.NewRangePartitioner(1, 1<<20)
	_, addrs := startServers(t, part, true)

	// A replica of an address nothing listens on: applied stays 0.
	repl := NewGraphReplica("127.0.0.1:1", testParams(), 0, 1, 0, Options{})
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go repl.Serve(rln)
	t.Cleanup(repl.Close)

	c, err := DialGraph(part, addrs, []string{rln.Addr().String()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	single := aspen.NewGraph(testParams())
	batch := aspen.MakeUndirected(rmat.NewGenerator(9, 3).Edges(0, 2_000))
	single = single.InsertEdges(batch)
	if _, err := c.Insert(batch); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	flat, err := tx.Flat()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainst(t, single, flat)
	if st := c.Stats(); st.PrimaryFallbacks == 0 {
		t.Fatalf("expected a primary fallback from the lagging replica: %+v", st)
	}
}

// TestReplicaSnapshotBootstrap truncates the primary's WAL behind a
// checkpoint before the replica first connects, forcing the tail to
// bootstrap from the shipped checkpoint snapshot.
func TestReplicaSnapshotBootstrap(t *testing.T) {
	dir := t.TempDir()
	eng, err := stream.RecoverGraphEngine(testParams(), stream.Options{}, stream.Durability{
		Dir:             dir,
		CheckpointEvery: 2,
		SegmentBytes:    1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewGraphServer(eng, testParams(), dir, 0, 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})

	single := aspen.NewGraph(testParams())
	gen := rmat.NewGenerator(9, 11)
	var pos uint64
	for i := 0; i < 20; i++ {
		batch := aspen.MakeUndirected(gen.Edges(pos, pos+500))
		pos += 500
		single = single.InsertEdges(batch)
		p, err := eng.Insert(batch)
		if err != nil {
			t.Fatal(err)
		}
		if p.Wait() == 0 {
			t.Fatal("insert nacked")
		}
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	// Wait for checkpoint+truncation to move the log's oldest seq past
	// 1, which is what forces the snapshot bootstrap.
	var oldest uint64
	for i := 0; i < 400; i++ {
		if err := eng.SyncWAL(); err != nil {
			t.Fatal(err)
		}
		oldest, err = wal.OldestSeq(dir)
		if err != nil {
			t.Fatal(err)
		}
		if oldest > 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if oldest <= 1 {
		t.Skip("log never truncated; cannot exercise the bootstrap path")
	}

	repl := NewGraphReplica(ln.Addr().String(), testParams(), 0, 1, 0, Options{})
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go repl.Serve(rln)
	t.Cleanup(repl.Close)

	want := eng.WALSeq()
	for i := 0; i < 400 && repl.Applied() < want; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if repl.Applied() < want {
		t.Fatalf("replica stuck at %d, want %d", repl.Applied(), want)
	}
	rs := repl.Stats()
	if rs.Snapshots == 0 {
		t.Fatalf("expected a snapshot bootstrap: %+v", rs)
	}
	// The replica's current state must equal the primary's graph.
	g, ok := repl.stateAt(repl.Applied())
	if !ok {
		t.Fatal("replica lost its own applied state")
	}
	checkAgainst(t, single, g)
}

// TestRemoteWorkload smoke-runs the remote §7.8 driver.
func TestRemoteWorkload(t *testing.T) {
	part := shard.NewRangePartitioner(2, 1<<9)
	_, addrs := startServers(t, part, false)
	c, err := DialGraph(part, addrs, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	gen := rmat.NewGenerator(9, 17)
	w := &Workload[aspen.Edge]{
		Cluster: c,
		NextBatch: stream.UpdateSchedule(0, 500, func(lo, hi uint64) []aspen.Edge {
			return aspen.MakeUndirected(gen.Edges(lo, hi))
		}),
		Readers: 2,
		Kernels: []shard.Kernel{
			{Name: "bfs", Run: func(g ligra.Graph) { algos.BFS(g, 0, false) }},
			{Name: "cc", Run: func(g ligra.Graph) { algos.ConnectedComponents(g) }},
		},
		Duration: 150 * time.Millisecond,
	}
	rep := w.Run()
	if rep.Updates == 0 {
		t.Fatal("workload applied no updates")
	}
	if rep.Queries == 0 {
		t.Fatal("workload ran no queries")
	}
	if rep.QueryErrs != 0 {
		t.Fatalf("%d query errors", rep.QueryErrs)
	}
}

// BenchmarkRemoteTxBegin measures the pin round trip against a local
// server — the per-query fixed cost of the remote read path. Gated on
// allocs/op in CI.
func BenchmarkRemoteTxBegin(b *testing.B) {
	part := shard.NewRangePartitioner(1, 1<<20)
	eng := stream.NewGraphEngine(aspen.NewGraph(testParams()), stream.Options{})
	srv := NewGraphServer(eng, testParams(), "", 0, 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		srv.Close()
		eng.Close()
	}()
	c, err := DialGraph(part, []string{ln.Addr().String()}, nil, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	// Warm the connection.
	tx, err := c.Begin()
	if err != nil {
		b.Fatal(err)
	}
	tx.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := c.Begin()
		if err != nil {
			b.Fatal(err)
		}
		tx.Close()
	}
}
