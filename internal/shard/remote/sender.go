package remote

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/rpc"
)

// sendRec is one retryable request: a submit (or flush) whose body can
// be re-encoded verbatim, so a transport failure retransmits it instead
// of surfacing an error. Exactly-once comes from the (clientID,
// clientSeq) note inside the body — a retransmit the server already
// committed acks from its dedup window.
type sendRec struct {
	s           *sender
	verb        rpc.Verb
	flags       uint8
	build       func(e *rpc.Encoder)
	ca          *call
	cancel      <-chan struct{} // context cancellation, nil = none
	expiry      time.Time       // total retry budget for this record
	ackDeadline time.Duration   // per-attempt ack deadline (0 = none)
	sent        bool            // currently registered on a conn's pending map
	gen         uint64          // connection generation the record is in flight on
	tries       int
	lastErr     error
}

// sender serializes one shard's retryable stream: records go out FIFO,
// a transport failure requeues them (preserving order) and a single
// backoff timer paces reattempts. After failover() records flow to the
// promoted replica instead of the primary.
type sender struct {
	prim  *Conn
	repl  *Conn // may be nil
	opts  Options
	nstat *netCounters

	mu         sync.Mutex
	queue      []*sendRec
	failedOver bool
	attempts   int // consecutive failed pump rounds, for backoff
	timerSet   bool
	closed     bool
}

func newSender(prim, repl *Conn, opts Options, nstat *netCounters) *sender {
	return &sender{prim: prim, repl: repl, opts: opts, nstat: nstat}
}

// target returns the conn records currently flow to.
func (s *sender) target() *Conn {
	if s.failedOver && s.repl != nil {
		return s.repl
	}
	return s.prim
}

// enqueue hands a record to the sender; its call resolves when the
// request is acked, permanently refused, or out of retry budget.
func (s *sender) enqueue(rec *sendRec) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		rec.ca.deliverFinal(errors.New("remote: cluster closed"))
		return
	}
	s.queue = append(s.queue, rec)
	s.pumpLocked()
	s.mu.Unlock()
}

// pumpLocked sends every unsent record in FIFO order, pinned to one
// connection generation: in-flight records all ride the same (conn,
// dial) incarnation, and while any of them sit on a dead one — their
// teardown drain not yet landed — nothing newer goes out, or a retried
// record could overtake a later one on a fresh connection and break the
// shard's FIFO. On a transport error it stops (the failed record stays
// queued, unsent) and arms the backoff timer. mu held.
func (s *sender) pumpLocked() {
	tgt := s.target()
	var pinned uint64 // gen the sent prefix rides; 0 = nothing in flight
	for _, rec := range s.queue {
		if rec.sent {
			pinned = rec.gen
			continue
		}
		rec.ca.deadline = 0
		if rec.ackDeadline > 0 {
			rec.ca.deadline = time.Now().Add(rec.ackDeadline).UnixNano()
		}
		gen, err := tgt.startPinned(rec.verb, rec.flags, rec.build, rec.ca, pinned)
		if err != nil {
			rec.lastErr = err
			s.scheduleLocked()
			return
		}
		if rec.tries > 0 {
			s.nstat.retries.Add(1)
		}
		rec.tries++
		rec.sent = true
		rec.gen = gen
		pinned = gen
	}
	s.attempts = 0
}

// onOutcome routes a resolved call that belongs to rec. It returns
// true when the record was requeued for retry (outcome not final).
// Permanent errors — the server refused the request — surface; only
// transport-shaped failures retry.
func (s *sender) onOutcome(rec *sendRec, err error) bool {
	s.mu.Lock()
	if err == nil || isPermanent(err) || s.closed {
		s.removeLocked(rec)
		s.mu.Unlock()
		return false
	}
	rec.sent = false
	rec.lastErr = err
	if s.expiredLocked(rec) {
		s.removeLocked(rec)
		s.mu.Unlock()
		rec.ca.deliverFinal(s.budgetErr(rec))
		return true // we delivered the final outcome ourselves
	}
	s.scheduleLocked()
	s.mu.Unlock()
	return true
}

// expiredLocked reports whether rec is out of retry budget or its
// context was cancelled. mu held.
func (s *sender) expiredLocked(rec *sendRec) bool {
	if rec.cancel != nil {
		select {
		case <-rec.cancel:
			return true
		default:
		}
	}
	return !rec.expiry.IsZero() && time.Now().After(rec.expiry)
}

func (s *sender) budgetErr(rec *sendRec) error {
	if rec.cancel != nil {
		select {
		case <-rec.cancel:
			return context.Canceled
		default:
		}
	}
	if rec.lastErr != nil {
		return fmt.Errorf("remote: retry budget exhausted: %w", rec.lastErr)
	}
	return errors.New("remote: retry budget exhausted")
}

// removeLocked deletes rec from the queue. mu held.
func (s *sender) removeLocked(rec *sendRec) {
	for i, r := range s.queue {
		if r == rec {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// scheduleLocked arms the single retry timer with the next backoff
// delay. mu held.
func (s *sender) scheduleLocked() {
	if s.timerSet || s.closed {
		return
	}
	s.timerSet = true
	d := s.opts.Backoff.delay(s.attempts)
	s.attempts++
	time.AfterFunc(d, s.retry)
}

// retry expires overdue records and pumps the rest.
func (s *sender) retry() {
	s.mu.Lock()
	s.timerSet = false
	if s.closed {
		s.mu.Unlock()
		return
	}
	var expired []*sendRec
	for i := 0; i < len(s.queue); {
		rec := s.queue[i]
		if !rec.sent && s.expiredLocked(rec) {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			expired = append(expired, rec)
			continue
		}
		i++
	}
	s.pumpLocked()
	s.mu.Unlock()
	for _, rec := range expired {
		rec.ca.deliverFinal(s.budgetErr(rec))
	}
}

// failover redirects the stream to the replica endpoint (which must
// have promoted itself). Records already in flight on the primary are
// left alone: its connection teardown requeues them, and the next pump
// sends them to the new target. Returns false when there is no replica
// or the stream already failed over.
func (s *sender) failover() bool {
	s.mu.Lock()
	if s.repl == nil || s.failedOver || s.closed {
		s.mu.Unlock()
		return false
	}
	s.failedOver = true
	s.attempts = 0
	s.pumpLocked()
	s.mu.Unlock()
	return true
}

// close fails every unsent record; sent records resolve through their
// connection's teardown.
func (s *sender) close() {
	s.mu.Lock()
	s.closed = true
	var orphans []*sendRec
	for _, rec := range s.queue {
		if !rec.sent {
			orphans = append(orphans, rec)
		}
	}
	s.queue = nil
	s.mu.Unlock()
	err := errors.New("remote: cluster closed")
	for _, rec := range orphans {
		rec.ca.deliverFinal(err)
	}
}

// isPermanent reports whether err is a server-side refusal (retrying
// would repeat it) rather than a transport failure.
func isPermanent(err error) bool {
	var se *ServerError
	return errors.As(err, &se) || errors.Is(err, ErrLagging)
}

// deliverFinal resolves a call outside the sender path.
func (ca *call) deliverFinal(err error) {
	if ca.onDone != nil {
		ca.onDone(err)
	}
	ca.done <- err
}
