package remote

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/ligra"
	"repro/internal/rpc"
	"repro/internal/shard"
	"repro/internal/stream"
)

// Server roles confirmed in the Hello exchange.
const (
	rolePrimary  uint8 = 0
	roleReplica  uint8 = 1
	rolePromoted uint8 = 2 // replica that assumed primary duty after sustained primary loss
)

// remoteView is one shard's flat snapshot assembled from fetched
// degree/adjacency ranges: a CSR (degrees + prefix offsets +
// concatenated neighbor lists) over the shard's whole vertex-id range.
// It satisfies ligra.FlatGraph, so shard.StitchViews stitches it
// exactly like an engine-local flat view.
type remoteView struct {
	order int
	m     uint64
	degs  []int32
	offs  []uint64
	nbrs  []uint32
	wts   []float32 // nil for unweighted shards
}

func newRemoteView(order uint32, m uint64, weighted bool) *remoteView {
	v := &remoteView{
		order: int(order),
		m:     m,
		degs:  make([]int32, order),
		offs:  make([]uint64, uint64(order)+1),
		nbrs:  make([]uint32, 0, m),
	}
	if weighted {
		v.wts = make([]float32, 0, m)
	}
	return v
}

// Order returns the shard's vertex-id space size.
func (v *remoteView) Order() int { return v.order }

// NumEdges returns the shard's directed edge count.
func (v *remoteView) NumEdges() uint64 { return v.m }

// Degree returns u's degree in O(1); ids beyond order have degree 0.
func (v *remoteView) Degree(u uint32) int {
	if int(u) >= v.order {
		return 0
	}
	return int(v.degs[u])
}

// Degrees exposes the id-indexed degree array (ligra.FlatGraph).
func (v *remoteView) Degrees() []int32 { return v.degs }

// ForEachNeighbor applies f to u's neighbors in increasing order until
// f returns false.
func (v *remoteView) ForEachNeighbor(u uint32, f func(w uint32) bool) {
	if int(u) >= v.order {
		return
	}
	for _, w := range v.nbrs[v.offs[u]:v.offs[u+1]] {
		if !f(w) {
			return
		}
	}
}

// remoteWeightedView adds the weighted traversal capability.
type remoteWeightedView struct{ *remoteView }

// ForEachNeighborW applies f to u's (neighbor, weight) pairs in
// increasing neighbor order until f returns false.
func (v remoteWeightedView) ForEachNeighborW(u uint32, f func(w uint32, wt float32) bool) {
	if int(u) >= v.order {
		return
	}
	lo, hi := v.offs[u], v.offs[u+1]
	for i := lo; i < hi; i++ {
		if !f(v.nbrs[i], v.wts[i]) {
			return
		}
	}
}

// appendRange folds one Read response chunk starting at vertex lo.
func (v *remoteView) appendRange(lo uint32, n uint32, degs, nbrs, wts []byte) error {
	if uint64(lo)+uint64(n) > uint64(v.order) {
		return fmt.Errorf("remote: read chunk [%d,%d) exceeds order %d", lo, uint64(lo)+uint64(n), v.order)
	}
	for i := uint32(0); i < n; i++ {
		d := binary.LittleEndian.Uint32(degs[i*4:])
		v.degs[lo+i] = int32(d)
		v.offs[lo+i+1] = v.offs[lo+i] + uint64(d)
	}
	for i := 0; i+4 <= len(nbrs); i += 4 {
		v.nbrs = append(v.nbrs, binary.LittleEndian.Uint32(nbrs[i:]))
	}
	if v.wts != nil {
		for i := 0; i+4 <= len(wts); i += 4 {
			v.wts = append(v.wts, math.Float32frombits(binary.LittleEndian.Uint32(wts[i:])))
		}
	}
	return nil
}

// finish validates that the fetched ranges cover the whole shard.
func (v *remoteView) finish() error {
	if v.offs[v.order] != v.m || uint64(len(v.nbrs)) != v.m {
		return fmt.Errorf("remote: fetched %d edges (offsets %d), shard reports %d",
			len(v.nbrs), v.offs[v.order], v.m)
	}
	if v.wts != nil && uint64(len(v.wts)) != v.m {
		return fmt.Errorf("remote: fetched %d weights for %d edges", len(v.wts), v.m)
	}
	return nil
}

func equalVec(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// flatFor returns the stitched flat view of a pinned version vector:
// a single-slot stitched cache (keyed by the exact stamp vector), a
// per-shard view cache (unmoved shards reuse their fetched views, the
// remote analogue of the in-process delta stitch), and a fetch for
// whatever moved — replica first when one is configured, primary
// fallback when the replica lags or is down.
func (c *Cluster[E]) flatFor(stamps, seqs []uint64) (ligra.Graph, error) {
	// Cache keys are the composite (stamp, seq): a degraded replica pin
	// has stamp 0 and is identified purely by its WAL watermark, and a
	// promoted replica's stamps live in a different domain than the old
	// primary's, so neither vector alone is unique.
	c.vmu.Lock()
	if c.stitch.flat != nil && equalVec(c.stitch.stamps, stamps) && equalVec(c.stitch.seqs, seqs) {
		flat := c.stitch.flat
		c.vmu.Unlock()
		c.stitchHits.Add(1)
		return flat, nil
	}
	c.vmu.Unlock()

	views := make([]ligra.Graph, len(stamps))
	errs := make([]error, len(stamps))
	var wg sync.WaitGroup
	for s := range stamps {
		c.vmu.Lock()
		cv := c.views[s]
		c.vmu.Unlock()
		if cv.view != nil && cv.stamp == stamps[s] && cv.seq == seqs[s] {
			views[s] = cv.view
			c.viewHits.Add(1)
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			v, err := c.fetchShardView(s, stamps[s], seqs[s])
			if err != nil {
				errs[s] = err
				return
			}
			views[s] = v
			c.vmu.Lock()
			c.views[s] = cachedView{stamp: stamps[s], seq: seqs[s], at: time.Now(), view: v}
			c.vmu.Unlock()
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	flat := shard.StitchViews(c.part, views)
	c.stitchBuilds.Add(1)
	c.vmu.Lock()
	c.stitch = stitchSlot{
		stamps: append([]uint64(nil), stamps...),
		seqs:   append([]uint64(nil), seqs...),
		flat:   flat,
	}
	c.vmu.Unlock()
	return flat, nil
}

// fetchShardView fetches shard s's complete flat snapshot: from its
// replica at the pinned WAL watermark when one is configured (a state
// at least as fresh as the pinned stamp), falling back to the primary
// (exactly the pinned stamp) when the replica lags or errors.
func (c *Cluster[E]) fetchShardView(s int, stamp, seq uint64) (ligra.Graph, error) {
	c.viewFetches.Add(1)
	if rc := c.repl[s]; rc != nil && seq > 0 {
		v, err := c.fetchFrom(rc, rpc.FlagBySeq, seq)
		if err == nil {
			c.replicaReads.Add(1)
			return v, nil
		}
		if stamp == 0 {
			// Degraded pin: the shard is addressed purely by replica
			// seq; there is no primary stamp to fall back to.
			return nil, err
		}
		c.primaryFallbacks.Add(1)
	}
	return c.fetchFrom(c.prim[s], 0, stamp)
}

// fetchFrom pulls one shard view in range chunks over cn, addressed by
// pinned stamp (primary) or WAL seq (replica, FlagBySeq).
func (c *Cluster[E]) fetchFrom(cn *Conn, flags uint8, ref uint64) (ligra.Graph, error) {
	var v *remoteView
	lo := uint32(0)
	for {
		var n uint32
		err := cn.roundTrip(rpc.VerbRead, flags, func(e *rpc.Encoder) {
			e.U64(ref)
			e.U32(lo)
		}, func(_ uint8, d *rpc.Body) error {
			order := d.U32()
			m := d.U64()
			n = d.U32()
			edges := d.U64()
			degs := d.Bytes(int(n) * 4)
			nbrs := d.Bytes(int(edges) * 4)
			var wts []byte
			if c.weighted {
				wts = d.Bytes(int(edges) * 4)
			}
			if err := d.Err(); err != nil {
				return err
			}
			if v == nil {
				v = newRemoteView(order, m, c.weighted)
			} else if v.order != int(order) || v.m != m {
				return fmt.Errorf("remote: shard view changed mid-fetch (order %d→%d, m %d→%d)", v.order, order, v.m, m)
			}
			return v.appendRange(lo, n, degs, nbrs, wts)
		})
		if err != nil {
			return nil, err
		}
		c.rangeRPCs.Add(1)
		lo += n
		if v == nil || int(lo) >= v.order {
			break
		}
		if n == 0 {
			return nil, fmt.Errorf("remote: read made no progress at vertex %d of %d", lo, v.order)
		}
	}
	if v == nil {
		return nil, fmt.Errorf("remote: empty read response")
	}
	if err := v.finish(); err != nil {
		return nil, err
	}
	if c.weighted {
		return remoteWeightedView{v}, nil
	}
	return v, nil
}

// fetchStatsJSON pulls the server's JSON stats snapshot.
func fetchStatsJSON(cn *Conn) ([]byte, error) {
	var raw []byte
	err := cn.roundTrip(rpc.VerbStats, 0, nil, func(_ uint8, d *rpc.Body) error {
		raw = append([]byte(nil), d.Rest()...) // body aliases reader scratch
		return nil
	})
	return raw, err
}

func unmarshalStats(raw []byte, out *stream.Stats) error {
	return json.Unmarshal(raw, out)
}
