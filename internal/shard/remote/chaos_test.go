package remote

import (
	"encoding/binary"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aspen"
	"repro/internal/faults"
	"repro/internal/rmat"
	"repro/internal/rpc"
	"repro/internal/shard"
	"repro/internal/stream"
	"repro/internal/wal"
)

// chaosOpts are aggressive-timing client options so fault tests converge
// in test time rather than production time.
func chaosOpts() Options {
	return Options{
		DialWait:          2 * time.Second,
		DialTimeout:       500 * time.Millisecond,
		RPCDeadline:       5 * time.Second,
		SubmitAckDeadline: 10 * time.Second,
		RetryDeadline:     30 * time.Second,
		Backoff:           Backoff{Base: 2 * time.Millisecond, Max: 25 * time.Millisecond},
		BreakerCooldown:   10 * time.Millisecond,
	}
}

// applyOps folds an op schedule into the single-graph reference.
func applyOps(g aspen.Graph, ops []op) aspen.Graph {
	for _, o := range ops {
		if o.del {
			g = g.DeleteEdges(o.edges)
		} else {
			g = g.InsertEdges(o.edges)
		}
	}
	return g
}

// TestDedupWindow unit-tests the exactly-once table: verdicts, waiter
// delivery, window eviction (stopping at in-flight entries), and the
// promotion fence.
func TestDedupWindow(t *testing.T) {
	d := NewDedup(4)
	const cid = 7

	// First sighting is new; a concurrent duplicate parks as a waiter
	// and fires with the commit stamp.
	if v, _ := d.begin(cid, 1, nil); v != dupNew {
		t.Fatalf("first begin = %v, want new", v)
	}
	var gotStamp atomic.Uint64
	var gotMsg atomic.Value
	if v, _ := d.begin(cid, 1, func(stamp uint64, msg string) {
		gotStamp.Store(stamp)
		gotMsg.Store(msg)
	}); v != dupInflight {
		t.Fatalf("duplicate of in-flight = %v, want inflight", v)
	}
	d.complete(cid, 1, 42)
	if gotStamp.Load() != 42 || gotMsg.Load().(string) != "" {
		t.Fatalf("waiter got (%d, %q), want (42, \"\")", gotStamp.Load(), gotMsg.Load())
	}
	if v, stamp := d.begin(cid, 1, nil); v != dupDone || stamp != 42 {
		t.Fatalf("retry after commit = (%v, %d), want (done, 42)", v, stamp)
	}

	// abort forgets the entry (a later retry is new again) and fails
	// its waiters.
	if v, _ := d.begin(cid, 2, nil); v != dupNew {
		t.Fatal("seq 2 not new")
	}
	var aborted atomic.Value
	d.begin(cid, 2, func(_ uint64, msg string) { aborted.Store(msg) })
	d.abort(cid, 2, "refused")
	if aborted.Load().(string) != "refused" {
		t.Fatalf("abort waiter got %q", aborted.Load())
	}
	if v, _ := d.begin(cid, 2, nil); v != dupNew {
		t.Fatal("retry after abort should be new")
	}
	d.complete(cid, 2, 43)

	// Completing far past the window evicts old seqs...
	for seq := uint64(3); seq <= 10; seq++ {
		if v, _ := d.begin(cid, seq, nil); v != dupNew {
			t.Fatalf("seq %d not new", seq)
		}
		d.complete(cid, seq, 40+seq)
	}
	if v, _ := d.begin(cid, 3, nil); v != dupEvicted {
		t.Fatalf("ancient retry = %v, want evicted", v)
	}
	if v, stamp := d.begin(cid, 9, nil); v != dupDone || stamp != 49 {
		t.Fatalf("in-window retry = (%v, %d), want (done, 49)", v, stamp)
	}

	// ...but eviction never advances past an unresolved in-flight entry.
	const cid2 = 8
	if v, _ := d.begin(cid2, 1, nil); v != dupNew {
		t.Fatal("cid2 seq 1 not new")
	}
	for seq := uint64(2); seq <= 10; seq++ {
		d.complete(cid2, seq, seq)
	}
	if v, _ := d.begin(cid2, 1, nil); v != dupInflight {
		t.Fatalf("in-flight entry was evicted: %v", v)
	}
	d.complete(cid2, 1, 99)
	if v, _ := d.begin(cid2, 2, nil); v != dupEvicted {
		t.Fatalf("eviction did not resume after the in-flight entry resolved: %v", v)
	}

	// Observe is a journal-replayed completion: done with stamp 0.
	d.Observe(cid, 11)
	if v, stamp := d.begin(cid, 11, nil); v != dupDone || stamp != 0 {
		t.Fatalf("observed seq = (%v, %d), want (done, 0)", v, stamp)
	}

	// The promotion fence refuses unknown seqs at or below the highest
	// completed one, while completed entries stay answerable.
	d.fenceAll()
	if v, _ := d.begin(cid, 6, nil); v != dupFenced {
		t.Fatalf("unknown pre-fence seq = %v, want fenced", v)
	}
	if v, _ := d.begin(cid, 11, nil); v != dupDone {
		t.Fatal("completed entry lost at the fence")
	}
	if v, _ := d.begin(cid, 12, nil); v != dupNew {
		t.Fatal("post-fence seq should be new")
	}
}

// TestSubmitRetriesAfterConnDrop churns connections under the client
// with swallowed writes and severed connections; every batch must still
// commit exactly once and the final graph must match the fault-free
// reference.
func TestSubmitRetriesAfterConnDrop(t *testing.T) {
	part := shard.NewRangePartitioner(2, 1<<9)
	_, addrs := startServers(t, part, false)
	tr := faults.NewTransport()
	o := chaosOpts()
	o.Dialer = tr.Dialer(nil)
	c, err := DialGraph(part, addrs, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ops := randomOps(1<<9, 12, 400, 7)
	var pendings []*Pending
	for i, o := range ops {
		switch i % 4 {
		case 1:
			tr.DropNext(1)
		case 3:
			tr.KillAll()
		}
		var p *Pending
		var err error
		if o.del {
			p, err = c.Delete(o.edges)
		} else {
			p, err = c.Insert(o.edges)
		}
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}
	for _, p := range pendings {
		if err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	tr.ClearScheduled()
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}

	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	flat, err := tx.Flat()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainst(t, applyOps(aspen.NewGraph(testParams()), ops), flat)
	st := c.Stats()
	if st.Retries == 0 {
		t.Fatalf("connection churn caused no retries: %+v", st)
	}
	if _, drops, _, _ := tr.Stats(); drops == 0 {
		t.Fatal("transport swallowed no writes; the fault schedule never fired")
	}
}

// TestExactlyOnceAckLost severs the connection after the server commits
// but before the ack reaches the client — the classic duplicate-submit
// shape. The retried batch must be answered from the dedup window
// (FlagDeduped), never re-applied, which the WAL's idempotency notes
// prove record by record.
func TestExactlyOnceAckLost(t *testing.T) {
	part := shard.NewRangePartitioner(2, 1<<9)
	servers, addrs := startServers(t, part, true)
	t.Cleanup(func() { faults.Clear("remote.submit.ack") })
	c, err := DialGraph(part, addrs, nil, chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ops := randomOps(1<<9, 10, 300, 77)
	var pendings []*Pending
	for i, o := range ops {
		if i%2 == 0 {
			// Drop the next commit ack: the server applies the batch,
			// notes it in the window, then kills the connection.
			faults.Set("remote.submit.ack", 0, 1, nil)
		}
		var p *Pending
		var err error
		if o.del {
			p, err = c.Delete(o.edges)
		} else {
			p, err = c.Insert(o.edges)
		}
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}
	for _, p := range pendings {
		if err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	faults.Clear("remote.submit.ack")
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}

	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	flat, err := tx.Flat()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainst(t, applyOps(aspen.NewGraph(testParams()), ops), flat)
	st := c.Stats()
	if st.DedupAcks == 0 {
		t.Fatalf("no retried submit was answered from the dedup window: %+v", st)
	}
	if st.Retries == 0 {
		t.Fatalf("lost acks caused no retries: %+v", st)
	}

	// Every idempotency note in every shard's WAL must be unique: a
	// duplicate note is a re-applied batch.
	for s, ts := range servers {
		if err := ts.eng.SyncWAL(); err != nil {
			t.Fatal(err)
		}
		seen := make(map[[2]uint64]uint64)
		noted := 0
		if _, err := wal.Replay(ts.dir, 0, func(r wal.Record) error {
			if !r.Kind.HasNote() {
				return nil
			}
			noted++
			key := [2]uint64{binary.LittleEndian.Uint64(r.Data), binary.LittleEndian.Uint64(r.Data[8:])}
			if prev, dup := seen[key]; dup {
				t.Fatalf("shard %d: note (client %d, seq %d) applied at WAL seq %d and again at %d",
					s, key[0], key[1], prev, r.Seq)
			}
			seen[key] = r.Seq
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if noted == 0 {
			t.Fatalf("shard %d logged no idempotency notes", s)
		}
	}
}

// TestChaosDifferential drives a durable two-shard cluster through the
// whole fault menu — swallowed, duplicated, truncated and delayed
// writes, severed connections, a brief full partition — and checks the
// committed result against a fault-free single-graph reference.
func TestChaosDifferential(t *testing.T) {
	part := shard.NewRangePartitioner(2, 1<<9)
	_, addrs := startServers(t, part, true)
	tr := faults.NewTransport()
	o := chaosOpts()
	o.Dialer = tr.Dialer(nil)
	c, err := DialGraph(part, addrs, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ops := randomOps(1<<9, 24, 300, 99)
	var pendings []*Pending
	for i, o := range ops {
		switch i % 6 {
		case 0:
			tr.DropNext(1)
		case 1:
			tr.DuplicateNext(2)
		case 2:
			tr.TruncateNext(1)
		case 4:
			tr.KillAll()
		case 5:
			tr.Delay(time.Millisecond)
		}
		if i == len(ops)/2 {
			tr.Partition(true)
		}
		var p *Pending
		var err error
		if o.del {
			p, err = c.Delete(o.edges)
		} else {
			p, err = c.Insert(o.edges)
		}
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
		if i == len(ops)/2 {
			time.Sleep(50 * time.Millisecond) // let retries pile up against the partition
			tr.Partition(false)
		}
	}
	tr.Delay(0)
	for _, p := range pendings {
		if err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	tr.ClearScheduled()
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}

	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	flat, err := tx.Flat()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainst(t, applyOps(aspen.NewGraph(testParams()), ops), flat)
	st := c.Stats()
	if st.Retries == 0 {
		t.Fatalf("chaos schedule caused no retries: %+v", st)
	}
	dials, drops, dups, truncs := tr.Stats()
	t.Logf("chaos: %d dials, %d drops, %d dups, %d truncs; client %+v", dials, drops, dups, truncs, st)
}

// TestPromotionFailover kills the primary under a replicated shard and
// proves the pipeline survives: the replica promotes itself after
// sustained primary loss, the client's health prober fails the submit
// stream over to it, and post-failover submits + reads land on the
// promoted replica with nothing lost or doubled.
func TestPromotionFailover(t *testing.T) {
	part := shard.NewRangePartitioner(1, 1<<9)
	servers, addrs := startServers(t, part, true)

	ro := Options{
		PromoteAfter: 300 * time.Millisecond,
		DialTimeout:  200 * time.Millisecond,
		Backoff:      Backoff{Base: 5 * time.Millisecond, Max: 25 * time.Millisecond},
	}
	repl := NewGraphReplica(addrs[0], testParams(), 0, 1, 0, ro)
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go repl.Serve(rln)
	t.Cleanup(repl.Close)

	co := chaosOpts()
	co.ProbeInterval = 20 * time.Millisecond
	co.BreakerThreshold = 2
	c, err := DialGraph(part, addrs, []string{rln.Addr().String()}, co)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ops := randomOps(1<<9, 6, 300, 55)
	phase1, phase2 := ops[:3], ops[3:]
	for _, o := range phase1 {
		p, err := c.Insert(o.edges)
		if o.del {
			p, err = c.Delete(o.edges)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	// Quiesce: the replica must hold everything before the primary dies,
	// or the promoted state would legitimately miss data.
	want := servers[0].eng.WALSeq()
	for i := 0; i < 600 && repl.Applied() < want; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if repl.Applied() < want {
		t.Fatalf("replica stuck at %d, want %d", repl.Applied(), want)
	}

	servers[0].srv.Close()
	servers[0].eng.Close()

	var pendings []*Pending
	for _, o := range phase2 {
		var p *Pending
		var err error
		if o.del {
			p, err = c.Delete(o.edges)
		} else {
			p, err = c.Insert(o.edges)
		}
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}
	for _, p := range pendings {
		if err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	if !repl.Promoted() {
		t.Fatal("replica never promoted")
	}

	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	flat, err := tx.Flat()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainst(t, applyOps(aspen.NewGraph(testParams()), ops), flat)
	st := c.Stats()
	if st.Failovers == 0 || st.Promotions == 0 {
		t.Fatalf("no observed failover: %+v", st)
	}
	if st.DegradedPins == 0 {
		t.Fatalf("post-failover read did not pin the replica: %+v", st)
	}
	if rs := repl.Stats(); !rs.Promoted || rs.Submits == 0 {
		t.Fatalf("promoted replica served no submits: %+v", rs)
	}
}

// TestDegradedStaleReads kills the only shard of a replica-less cluster
// and proves Begin degrades to the bounded-stale cached view instead of
// failing, within Options.MaxStaleness.
func TestDegradedStaleReads(t *testing.T) {
	part := shard.NewRangePartitioner(1, 1<<9)
	servers, addrs := startServers(t, part, false)
	o := chaosOpts()
	o.BreakerThreshold = 1
	o.BreakerCooldown = time.Minute // stay fast-failed for the whole test
	o.MaxStaleness = time.Hour
	c, err := DialGraph(part, addrs, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	batch := aspen.MakeUndirected(rmat.NewGenerator(9, 3).Edges(0, 2_000))
	if _, err := c.Insert(batch); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	flat, err := tx.Flat()
	if err != nil {
		t.Fatal(err)
	}
	wantEdges := flat.NumEdges()
	tx.Close()

	servers[0].srv.Close()
	servers[0].eng.Close()

	tx2, err := c.Begin()
	if err != nil {
		t.Fatalf("Begin should degrade to the cached view, got %v", err)
	}
	defer tx2.Close()
	flat2, err := tx2.Flat()
	if err != nil {
		t.Fatal(err)
	}
	if flat2.NumEdges() != wantEdges {
		t.Fatalf("stale view has %d edges, want %d", flat2.NumEdges(), wantEdges)
	}
	st := c.Stats()
	if st.StaleReads == 0 {
		t.Fatalf("degraded read not accounted: %+v", st)
	}
}

// TestBreakerFastFail proves a dead endpoint trips the circuit breaker:
// after BreakerThreshold consecutive failures the endpoint is down and
// further operations are refused instantly instead of re-dialing.
func TestBreakerFastFail(t *testing.T) {
	part := shard.NewRangePartitioner(1, 1<<9)
	servers, addrs := startServers(t, part, false)
	o := chaosOpts()
	o.BreakerThreshold = 2
	o.BreakerCooldown = time.Minute
	c, err := DialGraph(part, addrs, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Insert([]aspen.Edge{{Src: 1, Dst: 2}, {Src: 2, Dst: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	servers[0].srv.Close()
	servers[0].eng.Close()

	// Only failed dials count against the breaker, and the first Begin
	// after the kill may still ride the not-yet-torn-down connection —
	// keep failing until the breaker trips and fast-fails.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().BreakerFastFails == 0 && time.Now().Before(deadline) {
		if _, err := c.Begin(); err == nil {
			t.Fatal("Begin succeeded against a dead shard with no fallback")
		}
	}
	st := c.Stats()
	if st.Suspects == 0 || st.BreakerOpens == 0 {
		t.Fatalf("breaker never opened: %+v", st)
	}
	if st.BreakerFastFails == 0 {
		t.Fatalf("open breaker did not fast-fail: %+v", st)
	}
}

// TestReplicaChurnFallback (issue satellite) kills and restarts the
// replica mid-sweep: every read must be served — replica when up,
// primary fallback when not — with the two counters accounting for
// every fetch and no error ever surfacing.
func TestReplicaChurnFallback(t *testing.T) {
	part := shard.NewRangePartitioner(1, 1<<9)
	servers, addrs := startServers(t, part, true)

	repl := NewGraphReplica(addrs[0], testParams(), 0, 1, 0, Options{})
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	raddr := rln.Addr().String()
	go repl.Serve(rln)
	t.Cleanup(repl.Close)

	o := chaosOpts()
	o.BreakerThreshold = 2
	o.BreakerCooldown = 5 * time.Millisecond
	c, err := DialGraph(part, addrs, []string{raddr}, o)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ref := aspen.NewGraph(testParams())
	var repl2 *Replica[aspen.Graph, aspen.Edge]
	read := func() {
		t.Helper()
		tx, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		defer tx.Close()
		if _, err := tx.Flat(); err != nil {
			t.Fatal(err)
		}
	}
	for i, op := range randomOps(1<<9, 12, 300, 13) {
		if op.del {
			ref = ref.DeleteEdges(op.edges)
			if _, err := c.Delete(op.edges); err != nil {
				t.Fatal(err)
			}
		} else {
			ref = ref.InsertEdges(op.edges)
			if _, err := c.Insert(op.edges); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Barrier(); err != nil {
			t.Fatal(err)
		}
		read()
		switch i {
		case 4:
			repl.Close() // mid-sweep: reads must fall back to the primary
		case 8:
			// Restart on the same address; the client's replica
			// connection redials it transparently.
			var rln2 net.Listener
			for j := 0; j < 200; j++ {
				if rln2, err = net.Listen("tcp", raddr); err == nil {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			if rln2 == nil {
				t.Fatalf("could not rebind %s: %v", raddr, err)
			}
			repl2 = NewGraphReplica(addrs[0], testParams(), 0, 1, 0, Options{})
			go repl2.Serve(rln2)
			t.Cleanup(repl2.Close)
		}
	}
	// Wait out the restarted replica's catch-up and breaker cooldown,
	// then read until the replica serves again.
	want := servers[0].eng.WALSeq()
	for i := 0; i < 600 && repl2.Applied() < want; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().ReplicaReads == 0 && time.Now().Before(deadline) {
		read()
		time.Sleep(10 * time.Millisecond)
	}

	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	flat, err := tx.Flat()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainst(t, ref, flat)
	st := c.Stats()
	if st.ReplicaReads == 0 {
		t.Fatalf("replica served no reads: %+v", st)
	}
	if st.PrimaryFallbacks == 0 {
		t.Fatalf("replica downtime caused no primary fallbacks: %+v", st)
	}
	if st.ViewFetches != st.ReplicaReads+st.PrimaryFallbacks {
		t.Fatalf("unaccounted view fetches: %d fetches, %d replica + %d fallback",
			st.ViewFetches, st.ReplicaReads, st.PrimaryFallbacks)
	}
}

// BenchmarkSubmitEncode measures the healthy-path submit frame encode —
// the (clientID, seq) identity plus the edge payload. Gated on
// allocs/op in CI: the hot ingest path must not allocate.
func BenchmarkSubmitEncode(b *testing.B) {
	codec := stream.EdgeCodec
	w := codec.Width
	chunk := aspen.MakeUndirected(rmat.NewGenerator(10, 3).Edges(0, 256))
	var enc rpc.Encoder
	encodeOne := func(reqID uint64) {
		enc.Begin(rpc.VerbSubmit, 0, reqID)
		enc.U64(0xdeadbeef | 1)
		enc.U64(reqID)
		enc.U32(uint32(len(chunk)))
		buf := enc.Reserve(w * len(chunk))
		for i, ed := range chunk {
			codec.Encode(buf[i*w:], ed)
		}
		if _, err := enc.Finish(); err != nil {
			b.Fatal(err)
		}
	}
	encodeOne(0) // warm the grow-only buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encodeOne(uint64(i) + 1)
	}
}

// BenchmarkDedupCheck measures the retried-submit dedup verdict — the
// path a duplicate ack is answered from. Gated on allocs/op in CI.
func BenchmarkDedupCheck(b *testing.B) {
	d := NewDedup(0)
	d.complete(7, 1, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v, stamp := d.begin(7, 1, nil); v != dupDone || stamp != 42 {
			b.Fatalf("verdict (%v, %d)", v, stamp)
		}
	}
}
