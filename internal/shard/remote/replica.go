package remote

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/ligra"
	"repro/internal/rpc"
	"repro/internal/stream"
	"repro/internal/wal"
)

// defaultReplicaRing is how many consecutive (seq, graph) states a
// replica retains for exact-seq reads; behind that, readers fall back
// to the primary.
const defaultReplicaRing = 512

// seqState is one retained replica state: the graph after applying WAL
// records 1..seq.
type seqState[G ligra.Graph] struct {
	seq uint64
	g   G
}

// Replica tails a primary's WAL record stream and serves reads
// addressed by WAL sequence number. Each applied record yields an
// immutable graph state; a bounded ring of recent states answers
// exact-seq reads, and anything outside the ring is refused with
// rpc.FlagLagging so the client falls back to the primary. The replica
// keeps nothing durable: on restart it re-tails from scratch
// (bootstrapping from the primary's checkpoint when the log was
// truncated).
type Replica[G ligra.Graph, E any] struct {
	primary  string
	codec    stream.Codec[E]
	snap     stream.SnapshotCodec[G]
	apply    func(g G, del bool, edges []E) G
	weighted bool
	shardID  int
	shards   int
	ringCap  int

	smu     sync.Mutex
	states  []seqState[G] // ascending seq; contiguous between snapshot jumps
	applied uint64
	cur     G

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	stop     chan struct{}
	wg       sync.WaitGroup
	tailOnce sync.Once

	records, snaps, resyncs atomic.Uint64
	reads, lagging          atomic.Uint64
}

// NewReplica builds a replica of the shard primary at addr. ringCap
// bounds retained states (<=0: default 512).
func NewReplica[G ligra.Graph, E any](addr string, empty G, apply func(g G, del bool, edges []E) G, codec stream.Codec[E], snap stream.SnapshotCodec[G], weighted bool, shardID, shards, ringCap int) *Replica[G, E] {
	if ringCap <= 0 {
		ringCap = defaultReplicaRing
	}
	return &Replica[G, E]{
		primary:  addr,
		codec:    codec,
		snap:     snap,
		apply:    apply,
		weighted: weighted,
		shardID:  shardID,
		shards:   shards,
		ringCap:  ringCap,
		cur:      empty,
		conns:    make(map[net.Conn]struct{}),
		stop:     make(chan struct{}),
	}
}

// NewGraphReplica builds an unweighted replica.
func NewGraphReplica(addr string, p ctree.Params, shardID, shards, ringCap int) *Replica[aspen.Graph, aspen.Edge] {
	apply := func(g aspen.Graph, del bool, edges []aspen.Edge) aspen.Graph {
		if del {
			return g.DeleteEdges(edges)
		}
		return g.InsertEdges(edges)
	}
	return NewReplica(addr, aspen.NewGraph(p), apply, stream.EdgeCodec, stream.GraphSnapshotCodec(p), false, shardID, shards, ringCap)
}

// NewWeightedReplica builds a weighted replica.
func NewWeightedReplica(addr string, p ctree.Params, shardID, shards, ringCap int) *Replica[aspen.WeightedGraph, aspen.WeightedEdge] {
	apply := func(g aspen.WeightedGraph, del bool, edges []aspen.WeightedEdge) aspen.WeightedGraph {
		if del {
			return g.DeleteEdges(edges)
		}
		return g.InsertEdges(edges)
	}
	return NewReplica(addr, aspen.NewWeightedGraphWith(p), apply, stream.WeightedEdgeCodec, stream.WeightedSnapshotCodec(p), true, shardID, shards, ringCap)
}

// Applied returns the highest WAL seq the replica has applied.
func (r *Replica[G, E]) Applied() uint64 {
	r.smu.Lock()
	defer r.smu.Unlock()
	return r.applied
}

// Serve starts the tail loop (once) and accepts read connections on ln
// until Close. Blocks.
func (r *Replica[G, E]) Serve(ln net.Listener) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		ln.Close()
		return errors.New("remote: replica closed")
	}
	r.ln = ln
	r.mu.Unlock()
	r.tailOnce.Do(func() {
		r.wg.Add(1)
		go r.tailLoop()
	})
	for {
		nc, err := ln.Accept()
		if err != nil {
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			nc.Close()
			return nil
		}
		r.conns[nc] = struct{}{}
		r.wg.Add(1)
		r.mu.Unlock()
		go r.handle(nc)
	}
}

// Close stops the tail loop and every read connection.
func (r *Replica[G, E]) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.stop)
	ln := r.ln
	for nc := range r.conns {
		nc.Close()
	}
	r.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	r.wg.Wait()
}

func (r *Replica[G, E]) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// tailLoop keeps one tail subscription alive against the primary,
// redialing with backoff whenever the connection drops.
func (r *Replica[G, E]) tailLoop() {
	defer r.wg.Done()
	for {
		if r.isClosed() {
			return
		}
		if err := r.tailOnceConn(); err == nil || r.isClosed() {
			return
		}
		r.resyncs.Add(1)
		select {
		case <-r.stop:
			return
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// tailOnceConn runs one tail subscription: dial, handshake, subscribe
// after the applied watermark, then apply the pushed record stream
// until the connection fails. Returns nil only on shutdown.
func (r *Replica[G, E]) tailOnceConn() error {
	nc, err := net.DialTimeout("tcp", r.primary, time.Second)
	if err != nil {
		return err
	}
	defer nc.Close()
	// Tear the connection down on Close so the blocking read exits.
	stopDone := make(chan struct{})
	defer close(stopDone)
	go func() {
		select {
		case <-r.stop:
			nc.Close()
		case <-stopDone:
		}
	}()
	bw := bufio.NewWriterSize(nc, 1<<16)
	hi := helloInfo{shard: r.shardID, shards: r.shards, weighted: r.weighted, width: r.codec.Width, role: rolePrimary}
	if err := handshake(nc, bw, hi); err != nil {
		return err
	}
	var enc rpc.Encoder
	enc.Begin(rpc.VerbTail, 0, 1)
	enc.U64(r.Applied())
	f, err := enc.Finish()
	if err != nil {
		return err
	}
	if _, err := bw.Write(f); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	rd := rpc.NewReader(bufio.NewReaderSize(nc, 1<<18))
	ack, err := rd.Next()
	if err != nil {
		return err
	}
	if ack.Verb != rpc.VerbTail || ack.Flags&rpc.FlagErr != 0 {
		return fmt.Errorf("remote: tail subscribe: %s", string(ack.Body))
	}
	for {
		m, err := rd.Next()
		if err != nil {
			if r.isClosed() {
				return nil
			}
			return err
		}
		switch m.Verb {
		case rpc.VerbTailRec:
			if m.Flags&rpc.FlagErr != 0 {
				return fmt.Errorf("remote: tail: %s", string(m.Body))
			}
			if err := r.applyRec(m.Body); err != nil {
				return err
			}
		case rpc.VerbTailSnap:
			if err := r.applySnap(m.Body); err != nil {
				return err
			}
		case rpc.VerbTail:
			if m.Flags&rpc.FlagErr != 0 {
				return fmt.Errorf("remote: tail: %s", string(m.Body))
			}
		default:
			return fmt.Errorf("remote: unexpected tail frame verb %d", m.Verb)
		}
	}
}

// applyRec applies one shipped WAL record, retaining the new state.
func (r *Replica[G, E]) applyRec(body []byte) error {
	d := rpc.NewBody(body)
	seq := d.U64()
	kind := wal.Kind(d.U8())
	width := int(d.U8())
	count := d.U32()
	payload := d.Bytes(int(count) * width)
	if err := d.Err(); err != nil {
		return err
	}
	if width != r.codec.Width {
		return fmt.Errorf("remote: tail record width %d, codec %d", width, r.codec.Width)
	}
	r.smu.Lock()
	defer r.smu.Unlock()
	if seq <= r.applied {
		return nil // already covered (file/live overlap on the server)
	}
	if r.applied != 0 && seq != r.applied+1 {
		return fmt.Errorf("remote: tail gap: applied %d, got %d", r.applied, seq)
	}
	edges := make([]E, count)
	for i := range edges {
		edges[i] = r.codec.Decode(payload[i*width:])
	}
	r.cur = r.apply(r.cur, kind == wal.Delete, edges)
	r.applied = seq
	r.pushStateLocked(seq, r.cur)
	r.records.Add(1)
	return nil
}

// applySnap installs a checkpoint bootstrap, resetting the ring.
func (r *Replica[G, E]) applySnap(body []byte) error {
	d := rpc.NewBody(body)
	seq := d.U64()
	raw := d.Rest()
	if err := d.Err(); err != nil {
		return err
	}
	g, err := r.snap.Read(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("remote: tail snapshot: %w", err)
	}
	r.smu.Lock()
	defer r.smu.Unlock()
	if seq < r.applied {
		return nil // already past it
	}
	r.cur = g
	r.applied = seq
	r.states = r.states[:0]
	r.pushStateLocked(seq, g)
	r.snaps.Add(1)
	return nil
}

func (r *Replica[G, E]) pushStateLocked(seq uint64, g G) {
	r.states = append(r.states, seqState[G]{seq: seq, g: g})
	if len(r.states) > r.ringCap {
		// Drop the oldest half in one slide so eviction is amortized
		// O(1) without holding graphs live through a full reslice.
		keep := r.ringCap / 2
		n := copy(r.states, r.states[len(r.states)-keep:])
		for i := n; i < len(r.states); i++ {
			r.states[i] = seqState[G]{}
		}
		r.states = r.states[:n]
	}
}

// stateAt returns the graph exactly at WAL seq, or false when the
// replica has not reached (or no longer retains) it.
func (r *Replica[G, E]) stateAt(seq uint64) (G, bool) {
	r.smu.Lock()
	defer r.smu.Unlock()
	if seq == r.applied && r.applied != 0 {
		return r.cur, true
	}
	lo, hi := 0, len(r.states)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.states[mid].seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(r.states) && r.states[lo].seq == seq {
		return r.states[lo].g, true
	}
	var zero G
	return zero, false
}

// ReplicaStats are the replica's observability counters.
type ReplicaStats struct {
	Applied   uint64 `json:"applied"`
	States    int    `json:"states"`
	Records   uint64 `json:"records"`
	Snapshots uint64 `json:"snapshots,omitempty"`
	Resyncs   uint64 `json:"resyncs,omitempty"`
	Reads     uint64 `json:"reads"`
	Lagging   uint64 `json:"lagging,omitempty"`
}

// Stats returns the replica's counters.
func (r *Replica[G, E]) Stats() ReplicaStats {
	r.smu.Lock()
	applied, states := r.applied, len(r.states)
	r.smu.Unlock()
	return ReplicaStats{
		Applied:   applied,
		States:    states,
		Records:   r.records.Load(),
		Snapshots: r.snaps.Load(),
		Resyncs:   r.resyncs.Load(),
		Reads:     r.reads.Load(),
		Lagging:   r.lagging.Load(),
	}
}

// handle serves one read connection: Hello, by-seq Reads, Stats.
func (r *Replica[G, E]) handle(nc net.Conn) {
	defer r.wg.Done()
	defer func() {
		nc.Close()
		r.mu.Lock()
		delete(r.conns, nc)
		r.mu.Unlock()
	}()
	bw := bufio.NewWriterSize(nc, 1<<16)
	var enc rpc.Encoder
	reply := func(verb rpc.Verb, flags uint8, id uint64, build func(e *rpc.Encoder)) error {
		enc.Begin(verb, flags|rpc.FlagResp, id)
		if build != nil {
			build(&enc)
		}
		f, err := enc.Finish()
		if err != nil {
			return err
		}
		if _, err := bw.Write(f); err != nil {
			return err
		}
		return bw.Flush()
	}
	replyErr := func(verb rpc.Verb, id uint64, flags uint8, msg string) error {
		return reply(verb, rpc.FlagErr|flags, id, func(e *rpc.Encoder) { e.String(msg) })
	}
	rd := rpc.NewReader(bufio.NewReaderSize(nc, 1<<16))
	for {
		m, err := rd.Next()
		if err != nil {
			return
		}
		switch m.Verb {
		case rpc.VerbHello:
			d := rpc.NewBody(m.Body)
			proto := d.U32()
			shard := int(d.U32())
			shards := int(d.U32())
			weighted := d.U8() != 0
			if err := d.Err(); err != nil {
				err = replyErr(m.Verb, m.ReqID, 0, err.Error())
			} else if proto != rpc.ProtoVersion {
				err = replyErr(m.Verb, m.ReqID, 0, fmt.Sprintf("protocol version %d, server speaks %d", proto, rpc.ProtoVersion))
			} else if shard != r.shardID || shards != r.shards || weighted != r.weighted {
				err = replyErr(m.Verb, m.ReqID, 0, fmt.Sprintf("replica is shard %d/%d weighted=%v", r.shardID, r.shards, r.weighted))
			} else {
				err = reply(m.Verb, 0, m.ReqID, func(e *rpc.Encoder) {
					e.U32(rpc.ProtoVersion)
					e.U32(uint32(r.shardID))
					e.U32(uint32(r.shards))
					if r.weighted {
						e.U8(1)
					} else {
						e.U8(0)
					}
					e.U8(roleReplica)
					e.U8(uint8(r.codec.Width))
				})
			}
			if err != nil {
				return
			}
		case rpc.VerbRead:
			d := rpc.NewBody(m.Body)
			seq := d.U64()
			lo := d.U32()
			if err := d.Err(); err != nil {
				if replyErr(m.Verb, m.ReqID, 0, err.Error()) != nil {
					return
				}
				continue
			}
			if m.Flags&rpc.FlagBySeq == 0 {
				if replyErr(m.Verb, m.ReqID, 0, "replica serves by-seq reads only") != nil {
					return
				}
				continue
			}
			r.reads.Add(1)
			g, ok := r.stateAt(seq)
			if !ok {
				r.lagging.Add(1)
				if replyErr(m.Verb, m.ReqID, rpc.FlagLagging, fmt.Sprintf("seq %d not held (applied %d)", seq, r.Applied())) != nil {
					return
				}
				continue
			}
			if reply(m.Verb, 0, m.ReqID, func(e *rpc.Encoder) {
				encodeRange(e, g, r.weighted, lo)
			}) != nil {
				return
			}
		case rpc.VerbStats:
			raw, err := json.Marshal(r.Stats())
			if err != nil {
				if replyErr(m.Verb, m.ReqID, 0, err.Error()) != nil {
					return
				}
				continue
			}
			if reply(m.Verb, 0, m.ReqID, func(e *rpc.Encoder) { e.Bytes(raw) }) != nil {
				return
			}
		default:
			if replyErr(m.Verb, m.ReqID, 0, fmt.Sprintf("replica: unsupported verb %d", m.Verb)) != nil {
				return
			}
		}
	}
}
