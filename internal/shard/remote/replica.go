package remote

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/ligra"
	"repro/internal/rpc"
	"repro/internal/stream"
	"repro/internal/wal"
)

// defaultReplicaRing is how many consecutive (seq, graph) states a
// replica retains for exact-seq reads; behind that, readers fall back
// to the primary.
const defaultReplicaRing = 512

// seqState is one retained replica state: the graph after applying WAL
// records 1..seq.
type seqState[G ligra.Graph] struct {
	seq uint64
	g   G
}

// Replica tails a primary's WAL record stream and serves reads
// addressed by WAL sequence number. Each applied record yields an
// immutable graph state; a bounded ring of recent states answers
// exact-seq reads, and anything outside the ring is refused with
// rpc.FlagLagging so the client falls back to the primary. The replica
// keeps nothing durable: on restart it re-tails from scratch
// (bootstrapping from the primary's checkpoint when the log was
// truncated).
//
// With Options.PromoteAfter set, a replica that loses its primary for
// that long promotes itself: it fences the dedup window it shadowed
// from the tail stream (outcomes in flight at the dead primary are
// unknowable, so their retries are refused rather than re-applied) and
// starts accepting submits, stamping each with its applied watermark.
type Replica[G ligra.Graph, E any] struct {
	primary  string
	codec    stream.Codec[E]
	snap     stream.SnapshotCodec[G]
	apply    func(g G, del bool, edges []E) G
	weighted bool
	shardID  int
	shards   int
	ringCap  int
	opts     Options
	dedup    *Dedup

	promoted atomic.Bool

	smu     sync.Mutex
	states  []seqState[G] // ascending seq; contiguous between snapshot jumps
	applied uint64
	cur     G

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	stop     chan struct{}
	wg       sync.WaitGroup
	tailOnce sync.Once

	records, snaps, resyncs atomic.Uint64
	reads, lagging, submits atomic.Uint64
}

// NewReplica builds a replica of the shard primary at addr. ringCap
// bounds retained states (<=0: default 512).
func NewReplica[G ligra.Graph, E any](addr string, empty G, apply func(g G, del bool, edges []E) G, codec stream.Codec[E], snap stream.SnapshotCodec[G], weighted bool, shardID, shards, ringCap int, o Options) *Replica[G, E] {
	if ringCap <= 0 {
		ringCap = defaultReplicaRing
	}
	o = o.withDefaults()
	return &Replica[G, E]{
		primary:  addr,
		codec:    codec,
		snap:     snap,
		apply:    apply,
		weighted: weighted,
		shardID:  shardID,
		shards:   shards,
		ringCap:  ringCap,
		opts:     o,
		dedup:    NewDedup(o.DedupWindow),
		cur:      empty,
		conns:    make(map[net.Conn]struct{}),
		stop:     make(chan struct{}),
	}
}

// NewGraphReplica builds an unweighted replica.
func NewGraphReplica(addr string, p ctree.Params, shardID, shards, ringCap int, o Options) *Replica[aspen.Graph, aspen.Edge] {
	apply := func(g aspen.Graph, del bool, edges []aspen.Edge) aspen.Graph {
		if del {
			return g.DeleteEdges(edges)
		}
		return g.InsertEdges(edges)
	}
	return NewReplica(addr, aspen.NewGraph(p), apply, stream.EdgeCodec, stream.GraphSnapshotCodec(p), false, shardID, shards, ringCap, o)
}

// NewWeightedReplica builds a weighted replica.
func NewWeightedReplica(addr string, p ctree.Params, shardID, shards, ringCap int, o Options) *Replica[aspen.WeightedGraph, aspen.WeightedEdge] {
	apply := func(g aspen.WeightedGraph, del bool, edges []aspen.WeightedEdge) aspen.WeightedGraph {
		if del {
			return g.DeleteEdges(edges)
		}
		return g.InsertEdges(edges)
	}
	return NewReplica(addr, aspen.NewWeightedGraphWith(p), apply, stream.WeightedEdgeCodec, stream.WeightedSnapshotCodec(p), true, shardID, shards, ringCap, o)
}

// Applied returns the highest WAL seq the replica has applied.
func (r *Replica[G, E]) Applied() uint64 {
	r.smu.Lock()
	defer r.smu.Unlock()
	return r.applied
}

// Promoted reports whether the replica has assumed primary duty.
func (r *Replica[G, E]) Promoted() bool { return r.promoted.Load() }

// role is the identity the replica confirms in Hello and Health.
func (r *Replica[G, E]) role() uint8 {
	if r.promoted.Load() {
		return rolePromoted
	}
	return roleReplica
}

// Serve starts the tail loop (once) and accepts read connections on ln
// until Close. Blocks.
func (r *Replica[G, E]) Serve(ln net.Listener) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		ln.Close()
		return errors.New("remote: replica closed")
	}
	r.ln = ln
	r.mu.Unlock()
	r.tailOnce.Do(func() {
		r.wg.Add(1)
		go r.tailLoop()
	})
	for {
		nc, err := ln.Accept()
		if err != nil {
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			nc.Close()
			return nil
		}
		r.conns[nc] = struct{}{}
		r.wg.Add(1)
		r.mu.Unlock()
		go r.handle(nc)
	}
}

// Close stops the tail loop and every read connection.
func (r *Replica[G, E]) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.stop)
	ln := r.ln
	for nc := range r.conns {
		nc.Close()
	}
	r.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	r.wg.Wait()
}

func (r *Replica[G, E]) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// tailLoop keeps one tail subscription alive against the primary,
// redialing with backoff whenever the connection drops. Sustained loss
// with no tail progress for Options.PromoteAfter promotes the replica
// (when enabled) and ends the loop — the primary is presumed dead.
func (r *Replica[G, E]) tailLoop() {
	defer r.wg.Done()
	attempt := 0
	var downSince time.Time
	for {
		if r.isClosed() {
			return
		}
		before := r.Applied()
		err := r.tailOnceConn()
		if err == nil || r.isClosed() {
			return
		}
		if r.Applied() > before || downSince.IsZero() {
			// Progress this round (or first failure): restart the loss
			// clock and the backoff ladder.
			if r.Applied() > before {
				attempt = 0
			}
			downSince = time.Now()
		}
		r.resyncs.Add(1)
		if pa := r.opts.PromoteAfter; pa > 0 && time.Since(downSince) >= pa {
			r.promote()
			return
		}
		select {
		case <-r.stop:
			return
		case <-time.After(r.opts.Backoff.delay(attempt)):
		}
		attempt++
	}
}

// promote fences the shadowed dedup window and switches the replica to
// an accepting primary.
func (r *Replica[G, E]) promote() {
	r.dedup.fenceAll()
	r.promoted.Store(true)
}

// tailOnceConn runs one tail subscription: dial, handshake, subscribe
// after the applied watermark, then apply the pushed record stream
// until the connection fails. Returns nil only on shutdown.
func (r *Replica[G, E]) tailOnceConn() error {
	nc, err := r.opts.Dialer("tcp", r.primary, r.opts.DialTimeout)
	if err != nil {
		return err
	}
	defer nc.Close()
	// Tear the connection down on Close so the blocking read exits.
	stopDone := make(chan struct{})
	defer close(stopDone)
	go func() {
		select {
		case <-r.stop:
			nc.Close()
		case <-stopDone:
		}
	}()
	bw := bufio.NewWriterSize(nc, 1<<16)
	hi := helloInfo{shard: r.shardID, shards: r.shards, weighted: r.weighted, width: r.codec.Width, role: rolePrimary}
	if err := handshake(nc, bw, hi, r.opts.WriteTimeout); err != nil {
		return err
	}
	var enc rpc.Encoder
	enc.Begin(rpc.VerbTail, 0, 1)
	enc.U64(r.Applied())
	f, err := enc.Finish()
	if err != nil {
		return err
	}
	if _, err := bw.Write(f); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	rd := rpc.NewReader(bufio.NewReaderSize(nc, 1<<18))
	ack, err := rd.Next()
	if err != nil {
		return err
	}
	if ack.Verb != rpc.VerbTail || ack.Flags&rpc.FlagErr != 0 {
		return fmt.Errorf("remote: tail subscribe: %s", string(ack.Body))
	}
	for {
		m, err := rd.Next()
		if err != nil {
			if r.isClosed() {
				return nil
			}
			return err
		}
		switch m.Verb {
		case rpc.VerbTailRec:
			if m.Flags&rpc.FlagErr != 0 {
				return fmt.Errorf("remote: tail: %s", string(m.Body))
			}
			if err := r.applyRec(m.Body); err != nil {
				return err
			}
		case rpc.VerbTailSnap:
			if err := r.applySnap(m.Body); err != nil {
				return err
			}
		case rpc.VerbTail:
			if m.Flags&rpc.FlagErr != 0 {
				return fmt.Errorf("remote: tail: %s", string(m.Body))
			}
		default:
			return fmt.Errorf("remote: unexpected tail frame verb %d", m.Verb)
		}
	}
}

// applyRec applies one shipped WAL record, retaining the new state.
// Idempotency notes on Noted* records are shadowed into the replica's
// dedup window, so a promotion can answer retried submits the dead
// primary already committed.
func (r *Replica[G, E]) applyRec(body []byte) error {
	d := rpc.NewBody(body)
	seq := d.U64()
	kind := wal.Kind(d.U8())
	width := int(d.U8())
	count := d.U32()
	plen := int(count) * width
	if kind.HasNote() {
		plen += wal.NoteLen
	}
	payload := d.Bytes(plen)
	if err := d.Err(); err != nil {
		return err
	}
	if width != r.codec.Width {
		return fmt.Errorf("remote: tail record width %d, codec %d", width, r.codec.Width)
	}
	r.smu.Lock()
	defer r.smu.Unlock()
	if seq <= r.applied {
		return nil // already covered (file/live overlap on the server)
	}
	if r.applied != 0 && seq != r.applied+1 {
		return fmt.Errorf("remote: tail gap: applied %d, got %d", r.applied, seq)
	}
	if kind.HasNote() {
		r.dedup.Observe(binary.LittleEndian.Uint64(payload), binary.LittleEndian.Uint64(payload[8:]))
		payload = payload[wal.NoteLen:]
	}
	edges := make([]E, count)
	for i := range edges {
		edges[i] = r.codec.Decode(payload[i*width:])
	}
	r.cur = r.apply(r.cur, kind.IsDelete(), edges)
	r.applied = seq
	r.pushStateLocked(seq, r.cur)
	r.records.Add(1)
	return nil
}

// applySnap installs a checkpoint bootstrap, resetting the ring.
func (r *Replica[G, E]) applySnap(body []byte) error {
	d := rpc.NewBody(body)
	seq := d.U64()
	raw := d.Rest()
	if err := d.Err(); err != nil {
		return err
	}
	g, err := r.snap.Read(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("remote: tail snapshot: %w", err)
	}
	r.smu.Lock()
	defer r.smu.Unlock()
	if seq < r.applied {
		return nil // already past it
	}
	r.cur = g
	r.applied = seq
	r.states = r.states[:0]
	r.pushStateLocked(seq, g)
	r.snaps.Add(1)
	return nil
}

func (r *Replica[G, E]) pushStateLocked(seq uint64, g G) {
	r.states = append(r.states, seqState[G]{seq: seq, g: g})
	if len(r.states) > r.ringCap {
		// Drop the oldest half in one slide so eviction is amortized
		// O(1) without holding graphs live through a full reslice.
		keep := r.ringCap / 2
		n := copy(r.states, r.states[len(r.states)-keep:])
		for i := n; i < len(r.states); i++ {
			r.states[i] = seqState[G]{}
		}
		r.states = r.states[:n]
	}
}

// stateAt returns the graph exactly at WAL seq, or false when the
// replica has not reached (or no longer retains) it.
func (r *Replica[G, E]) stateAt(seq uint64) (G, bool) {
	r.smu.Lock()
	defer r.smu.Unlock()
	if seq == r.applied && r.applied != 0 {
		return r.cur, true
	}
	lo, hi := 0, len(r.states)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.states[mid].seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(r.states) && r.states[lo].seq == seq {
		return r.states[lo].g, true
	}
	var zero G
	return zero, false
}

// ReplicaStats are the replica's observability counters.
type ReplicaStats struct {
	Applied   uint64 `json:"applied"`
	States    int    `json:"states"`
	Records   uint64 `json:"records"`
	Snapshots uint64 `json:"snapshots,omitempty"`
	Resyncs   uint64 `json:"resyncs,omitempty"`
	Reads     uint64 `json:"reads"`
	Lagging   uint64 `json:"lagging,omitempty"`
	Promoted  bool   `json:"promoted,omitempty"`
	Submits   uint64 `json:"submits,omitempty"`
}

// Stats returns the replica's counters.
func (r *Replica[G, E]) Stats() ReplicaStats {
	r.smu.Lock()
	applied, states := r.applied, len(r.states)
	r.smu.Unlock()
	return ReplicaStats{
		Applied:   applied,
		States:    states,
		Records:   r.records.Load(),
		Snapshots: r.snaps.Load(),
		Resyncs:   r.resyncs.Load(),
		Reads:     r.reads.Load(),
		Lagging:   r.lagging.Load(),
		Promoted:  r.promoted.Load(),
		Submits:   r.submits.Load(),
	}
}

// handle serves one connection: Hello, by-seq Reads, Pin/Release,
// Health, Stats — and, once promoted, Submit/Flush. The reply path is
// mutexed because dedup waiters registered by duplicate submits may
// fire from another connection's commit.
func (r *Replica[G, E]) handle(nc net.Conn) {
	defer r.wg.Done()
	defer func() {
		nc.Close()
		r.mu.Lock()
		delete(r.conns, nc)
		r.mu.Unlock()
	}()
	bw := bufio.NewWriterSize(nc, 1<<16)
	var wmu sync.Mutex
	var enc rpc.Encoder
	reply := func(verb rpc.Verb, flags uint8, id uint64, build func(e *rpc.Encoder)) error {
		wmu.Lock()
		defer wmu.Unlock()
		enc.Begin(verb, flags|rpc.FlagResp, id)
		if build != nil {
			build(&enc)
		}
		f, err := enc.Finish()
		if err != nil {
			return err
		}
		if err := nc.SetWriteDeadline(time.Now().Add(serverWriteTimeout)); err != nil {
			return err
		}
		if _, err := bw.Write(f); err != nil {
			return err
		}
		return bw.Flush()
	}
	replyErr := func(verb rpc.Verb, id uint64, flags uint8, msg string) error {
		return reply(verb, rpc.FlagErr|flags, id, func(e *rpc.Encoder) { e.String(msg) })
	}
	replyDeduped := func(verb rpc.Verb, id uint64, stamp uint64) {
		if stamp == 0 {
			stamp = r.Applied()
			if stamp == 0 {
				stamp = 1
			}
		}
		reply(verb, rpc.FlagDeduped, id, func(e *rpc.Encoder) { e.U64(stamp) })
	}
	rd := rpc.NewReader(bufio.NewReaderSize(nc, 1<<16))
	for {
		m, err := rd.Next()
		if err != nil {
			return
		}
		switch m.Verb {
		case rpc.VerbHello:
			d := rpc.NewBody(m.Body)
			proto := d.U32()
			shard := int(d.U32())
			shards := int(d.U32())
			weighted := d.U8() != 0
			if err := d.Err(); err != nil {
				err = replyErr(m.Verb, m.ReqID, 0, err.Error())
			} else if proto != rpc.ProtoVersion {
				err = replyErr(m.Verb, m.ReqID, 0, fmt.Sprintf("protocol version %d, server speaks %d", proto, rpc.ProtoVersion))
			} else if shard != r.shardID || shards != r.shards || weighted != r.weighted {
				err = replyErr(m.Verb, m.ReqID, 0, fmt.Sprintf("replica is shard %d/%d weighted=%v", r.shardID, r.shards, r.weighted))
			} else {
				err = reply(m.Verb, 0, m.ReqID, func(e *rpc.Encoder) {
					e.U32(rpc.ProtoVersion)
					e.U32(uint32(r.shardID))
					e.U32(uint32(r.shards))
					if r.weighted {
						e.U8(1)
					} else {
						e.U8(0)
					}
					e.U8(r.role())
					e.U8(uint8(r.codec.Width))
				})
			}
			if err != nil {
				return
			}
		case rpc.VerbRead:
			d := rpc.NewBody(m.Body)
			seq := d.U64()
			lo := d.U32()
			if err := d.Err(); err != nil {
				if replyErr(m.Verb, m.ReqID, 0, err.Error()) != nil {
					return
				}
				continue
			}
			if m.Flags&rpc.FlagBySeq == 0 {
				if replyErr(m.Verb, m.ReqID, 0, "replica serves by-seq reads only") != nil {
					return
				}
				continue
			}
			r.reads.Add(1)
			g, ok := r.stateAt(seq)
			if !ok {
				r.lagging.Add(1)
				if replyErr(m.Verb, m.ReqID, rpc.FlagLagging, fmt.Sprintf("seq %d not held (applied %d)", seq, r.Applied())) != nil {
					return
				}
				continue
			}
			if reply(m.Verb, 0, m.ReqID, func(e *rpc.Encoder) {
				encodeRange(e, g, r.weighted, lo)
			}) != nil {
				return
			}
		case rpc.VerbPin:
			// The replica holds no refcounted pins: the pinned state is
			// whatever the ring retains at this seq. Stamp is zero while
			// unpromoted (the read is addressed purely by seq) and the
			// applied watermark once promoted (its stamp domain).
			applied := r.Applied()
			stamp := uint64(0)
			if r.promoted.Load() {
				stamp = applied
			}
			if reply(m.Verb, 0, m.ReqID, func(e *rpc.Encoder) {
				e.U64(stamp)
				e.U64(applied)
			}) != nil {
				return
			}
		case rpc.VerbRelease:
			// Pins are not refcounted here; release is a courtesy no-op.
			if reply(m.Verb, 0, m.ReqID, nil) != nil {
				return
			}
		case rpc.VerbHealth:
			applied := r.Applied()
			if reply(m.Verb, 0, m.ReqID, func(e *rpc.Encoder) {
				e.U8(r.role())
				e.U64(applied)
				e.U64(applied)
			}) != nil {
				return
			}
		case rpc.VerbSubmit:
			if !r.promoted.Load() {
				if replyErr(m.Verb, m.ReqID, 0, "replica not promoted; submits go to the primary") != nil {
					return
				}
				continue
			}
			if err := r.handlePromotedSubmit(m, reply, replyErr, replyDeduped); err != nil {
				return
			}
		case rpc.VerbFlush:
			if !r.promoted.Load() {
				if replyErr(m.Verb, m.ReqID, 0, "replica not promoted; flushes go to the primary") != nil {
					return
				}
				continue
			}
			// Promoted submits apply synchronously on their reader
			// goroutine, so everything this connection submitted before
			// the flush is already applied.
			applied := r.Applied()
			if reply(m.Verb, 0, m.ReqID, func(e *rpc.Encoder) {
				e.U64(applied)
				e.U64(applied)
			}) != nil {
				return
			}
		case rpc.VerbStats:
			raw, err := json.Marshal(r.Stats())
			if err != nil {
				if replyErr(m.Verb, m.ReqID, 0, err.Error()) != nil {
					return
				}
				continue
			}
			if reply(m.Verb, 0, m.ReqID, func(e *rpc.Encoder) { e.Bytes(raw) }) != nil {
				return
			}
		default:
			if replyErr(m.Verb, m.ReqID, 0, fmt.Sprintf("replica: unsupported verb %d", m.Verb)) != nil {
				return
			}
		}
	}
}

// handlePromotedSubmit applies one submit on a promoted replica:
// dedup-gated exactly like the primary, applied synchronously under
// the state lock, stamped with the advanced watermark. Not durable —
// the promoted replica is an availability bridge, and DESIGN.md's
// failure model spells out that trade.
func (r *Replica[G, E]) handlePromotedSubmit(
	m rpc.Msg,
	reply func(verb rpc.Verb, flags uint8, id uint64, build func(e *rpc.Encoder)) error,
	replyErr func(verb rpc.Verb, id uint64, flags uint8, msg string) error,
	replyDeduped func(verb rpc.Verb, id uint64, stamp uint64),
) error {
	d := rpc.NewBody(m.Body)
	cid := d.U64()
	cseq := d.U64()
	count := d.U32()
	w := r.codec.Width
	payload := d.Bytes(int(count) * w)
	if err := d.Err(); err != nil {
		return replyErr(m.Verb, m.ReqID, 0, err.Error())
	}
	if d.Len() != 0 {
		return replyErr(m.Verb, m.ReqID, 0, "trailing bytes in submit")
	}
	id := m.ReqID
	verb := m.Verb
	if cid != 0 {
		resolved := make(chan struct{})
		waiter := func(stamp uint64, errMsg string) {
			defer close(resolved)
			if errMsg != "" {
				replyErr(verb, id, 0, errMsg)
				return
			}
			replyDeduped(verb, id, stamp)
		}
		switch v, stamp := r.dedup.begin(cid, cseq, waiter); v {
		case dupDone:
			replyDeduped(verb, id, stamp)
			return nil
		case dupInflight:
			// Same connection-churn FIFO guard as the primary's gate:
			// hold this read loop until the original attempt resolves
			// so later frames cannot be applied ahead of it.
			<-resolved
			return nil
		case dupFenced, dupEvicted:
			return replyErr(verb, id, 0, fmt.Sprintf("submit (client %d, seq %d) %s: original outcome unknown, refusing re-apply", cid, cseq, v))
		}
	}
	edges := make([]E, count)
	for i := range edges {
		edges[i] = r.codec.Decode(payload[i*w:])
	}
	r.smu.Lock()
	r.cur = r.apply(r.cur, m.Flags&rpc.FlagDel != 0, edges)
	r.applied++
	stamp := r.applied
	r.pushStateLocked(stamp, r.cur)
	r.smu.Unlock()
	r.submits.Add(1)
	if cid != 0 {
		r.dedup.complete(cid, cseq, stamp)
	}
	return reply(verb, 0, id, func(e *rpc.Encoder) { e.U64(stamp) })
}
