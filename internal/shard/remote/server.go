package remote

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/faults"
	"repro/internal/ligra"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/stream"
)

// serverWriteTimeout bounds each response frame write so one client
// that stops reading cannot wedge the connection's repliers.
const serverWriteTimeout = 15 * time.Second

// Read response chunking: one chunk stops after this many vertices or
// once it has gathered at least this many edges, whichever comes
// first, bounding the response frame well under rpc.MaxFrame.
const (
	maxReadVerts = 1 << 17
	maxReadEdges = 1 << 20
)

// Server hosts one shard's engine behind the rpc frame protocol: the
// process side of cmd/shardd. Submits are acknowledged only after the
// remote commit (so an ack carries the same durability the engine's
// fsync policy gives a local ack), reads serve pinned versions, and
// tail subscriptions ship the WAL record stream to read replicas.
type Server[G ligra.Graph, E any] struct {
	eng      *stream.Engine[G, E]
	codec    stream.Codec[E]
	snap     stream.SnapshotCodec[G]
	weighted bool
	dir      string
	shardID  int
	shards   int
	hub      *tailHub
	dedup    *Dedup

	// verbHists records the synchronous dispatch latency of each RPC
	// verb (indexed by rpc.Verb): parse-to-reply for reads, parse-to-
	// enqueue for submits (the commit ack goes out asynchronously) and
	// tail handshakes (the stream runs on its own goroutine). Exported
	// by RegisterMetrics as aspen_rpc_dispatch_seconds{verb=...}.
	verbHists [rpc.NumVerbs]obs.Hist

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps an engine. dir is the engine's durable data
// directory ("" disables tail subscriptions); the server registers the
// engine's OnWALAppend observer, so it must be constructed before the
// engine serves traffic.
func NewServer[G ligra.Graph, E any](eng *stream.Engine[G, E], codec stream.Codec[E], snap stream.SnapshotCodec[G], weighted bool, dir string, shardID, shards int) *Server[G, E] {
	s := &Server[G, E]{
		eng:      eng,
		codec:    codec,
		snap:     snap,
		weighted: weighted,
		dir:      dir,
		shardID:  shardID,
		shards:   shards,
		conns:    make(map[net.Conn]struct{}),
		dedup:    NewDedup(0),
	}
	if dir != "" {
		s.hub = newTailHub()
		eng.OnWALAppend(s.hub.publish)
	}
	return s
}

// SetDedup swaps in an externally built dedup window — the one the
// owner registered as stream.Durability.OnReplayNote before recovery,
// so submits retried across a server restart still dedup. Call before
// Serve.
func (s *Server[G, E]) SetDedup(d *Dedup) {
	if d != nil {
		s.dedup = d
	}
}

// NewGraphServer wraps an unweighted durable engine.
func NewGraphServer(eng *stream.Engine[aspen.Graph, aspen.Edge], p ctree.Params, dir string, shardID, shards int) *Server[aspen.Graph, aspen.Edge] {
	return NewServer(eng, stream.EdgeCodec, stream.GraphSnapshotCodec(p), false, dir, shardID, shards)
}

// NewWeightedServer wraps a weighted durable engine.
func NewWeightedServer(eng *stream.Engine[aspen.WeightedGraph, aspen.WeightedEdge], p ctree.Params, dir string, shardID, shards int) *Server[aspen.WeightedGraph, aspen.WeightedEdge] {
	return NewServer(eng, stream.WeightedEdgeCodec, stream.WeightedSnapshotCodec(p), true, dir, shardID, shards)
}

// Serve accepts connections on ln until Close. Blocks.
func (s *Server[G, E]) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("remote: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(nc)
	}
}

// Close stops accepting, closes every connection (releasing its pins)
// and waits for the handlers. The engine is not closed — its owner
// decides when ingest stops.
func (s *Server[G, E]) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// pinEntry refcounts one pinned version held on behalf of a client
// connection; refs coalesce repeated pins of the same stamp.
type pinEntry[G ligra.Graph] struct {
	tx   stream.Tx[G]
	refs int
}

// serverConn is per-connection handler state. The pins map is touched
// only by the connection's reader goroutine; the frame writer is
// shared with async submit/flush repliers under wmu.
type serverConn[G ligra.Graph, E any] struct {
	s    *Server[G, E]
	nc   net.Conn
	done chan struct{} // closed on connection teardown; stops tail streams
	wmu  sync.Mutex
	bw   *bufio.Writer
	enc  rpc.Encoder
	pins map[uint64]*pinEntry[G]
}

func (s *Server[G, E]) handle(nc net.Conn) {
	defer s.wg.Done()
	sc := &serverConn[G, E]{
		s:    s,
		nc:   nc,
		done: make(chan struct{}),
		bw:   bufio.NewWriterSize(nc, 1<<16),
		pins: make(map[uint64]*pinEntry[G]),
	}
	defer func() {
		close(sc.done)
		nc.Close()
		for _, p := range sc.pins {
			p.tx.Close()
		}
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
	}()
	r := rpc.NewReader(bufio.NewReaderSize(nc, 1<<16))
	for {
		m, err := r.Next()
		if err != nil {
			return
		}
		if err := sc.dispatch(m); err != nil {
			return
		}
	}
}

// reply writes one response frame (thread-safe; async repliers share
// the connection writer).
func (sc *serverConn[G, E]) reply(verb rpc.Verb, flags uint8, id uint64, build func(e *rpc.Encoder)) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.enc.Begin(verb, flags|rpc.FlagResp, id)
	if build != nil {
		build(&sc.enc)
	}
	f, err := sc.enc.Finish()
	if err != nil {
		return err
	}
	if err := sc.nc.SetWriteDeadline(time.Now().Add(serverWriteTimeout)); err != nil {
		return err
	}
	if _, err := sc.bw.Write(f); err != nil {
		return err
	}
	return sc.bw.Flush()
}

// replyErr sends an error response.
func (sc *serverConn[G, E]) replyErr(verb rpc.Verb, id uint64, flags uint8, msg string) error {
	return sc.reply(verb, rpc.FlagErr|flags, id, func(e *rpc.Encoder) { e.String(msg) })
}

// dispatch handles one request frame. A returned error kills the
// connection (protocol violations); per-request failures are relayed
// as error responses instead.
func (sc *serverConn[G, E]) dispatch(m rpc.Msg) error {
	start := time.Now()
	err := sc.dispatchVerb(m)
	if int(m.Verb) < len(sc.s.verbHists) {
		sc.s.verbHists[m.Verb].Observe(time.Since(start))
	}
	return err
}

func (sc *serverConn[G, E]) dispatchVerb(m rpc.Msg) error {
	switch m.Verb {
	case rpc.VerbHello:
		return sc.handleHello(m)
	case rpc.VerbSubmit:
		return sc.handleSubmit(m)
	case rpc.VerbFlush:
		return sc.handleFlush(m)
	case rpc.VerbPin:
		return sc.handlePin(m)
	case rpc.VerbRelease:
		return sc.handleRelease(m)
	case rpc.VerbRead:
		return sc.handleRead(m)
	case rpc.VerbStats:
		return sc.handleStats(m)
	case rpc.VerbTail:
		return sc.handleTail(m)
	case rpc.VerbHealth:
		return sc.handleHealth(m)
	default:
		return sc.replyErr(m.Verb, m.ReqID, 0, fmt.Sprintf("unknown verb %d", m.Verb))
	}
}

func (sc *serverConn[G, E]) handleHello(m rpc.Msg) error {
	d := rpc.NewBody(m.Body)
	proto := d.U32()
	shard := int(d.U32())
	shards := int(d.U32())
	weighted := d.U8() != 0
	if err := d.Err(); err != nil {
		return sc.replyErr(m.Verb, m.ReqID, 0, err.Error())
	}
	if proto != rpc.ProtoVersion {
		return sc.replyErr(m.Verb, m.ReqID, 0, fmt.Sprintf("protocol version %d, server speaks %d", proto, rpc.ProtoVersion))
	}
	if shard != sc.s.shardID || shards != sc.s.shards {
		return sc.replyErr(m.Verb, m.ReqID, 0, fmt.Sprintf("this is shard %d/%d, client wants %d/%d", sc.s.shardID, sc.s.shards, shard, shards))
	}
	if weighted != sc.s.weighted {
		return sc.replyErr(m.Verb, m.ReqID, 0, fmt.Sprintf("server weighted=%v, client weighted=%v", sc.s.weighted, weighted))
	}
	return sc.reply(m.Verb, 0, m.ReqID, func(e *rpc.Encoder) {
		e.U32(rpc.ProtoVersion)
		e.U32(uint32(sc.s.shardID))
		e.U32(uint32(sc.s.shards))
		if sc.s.weighted {
			e.U8(1)
		} else {
			e.U8(0)
		}
		e.U8(rolePrimary)
		e.U8(uint8(sc.s.codec.Width))
	})
}

func (sc *serverConn[G, E]) handleSubmit(m rpc.Msg) error {
	d := rpc.NewBody(m.Body)
	cid := d.U64()
	cseq := d.U64()
	count := d.U32()
	w := sc.s.codec.Width
	payload := d.Bytes(int(count) * w)
	if err := d.Err(); err != nil {
		return sc.replyErr(m.Verb, m.ReqID, 0, err.Error())
	}
	if d.Len() != 0 {
		return sc.replyErr(m.Verb, m.ReqID, 0, "trailing bytes in submit")
	}
	id := m.ReqID
	verb := m.Verb
	if cid != 0 {
		// Exactly-once gate: a retransmit of a submit we already
		// committed (or are committing) is answered from the window,
		// never re-applied. The waiter may fire on this connection for
		// a duplicate whose original attempt arrived on another.
		resolved := make(chan struct{})
		waiter := func(stamp uint64, errMsg string) {
			defer close(resolved)
			if errMsg != "" {
				sc.replyErr(verb, id, 0, errMsg)
				return
			}
			sc.replyDeduped(verb, id, stamp)
		}
		switch v, stamp := sc.s.dedup.begin(cid, cseq, waiter); v {
		case dupDone:
			sc.replyDeduped(verb, id, stamp)
			return nil
		case dupInflight:
			// The original attempt is still committing — possibly on
			// another connection whose kernel buffer the server is
			// still draining. Block this read loop until it resolves,
			// so a later frame on this connection cannot be applied
			// ahead of it: the client's per-shard FIFO must survive
			// connection churn.
			<-resolved
			return nil
		case dupFenced, dupEvicted:
			return sc.replyErr(verb, id, 0, fmt.Sprintf("submit (client %d, seq %d) %s: original outcome unknown, refusing re-apply", cid, cseq, v))
		}
	}
	edges := make([]E, count)
	for i := range edges {
		edges[i] = sc.s.codec.Decode(payload[i*w:])
	}
	var note stream.Note
	if cid != 0 {
		note = stream.Note{Client: cid, Seq: cseq}
	}
	p, err := sc.s.eng.SubmitNoted(m.Flags&rpc.FlagDel != 0, edges, note)
	if err != nil {
		if cid != 0 {
			sc.s.dedup.abort(cid, cseq, err.Error())
		}
		return sc.replyErr(verb, id, 0, err.Error())
	}
	// The ack is deferred until the batch commits: an acked submit is
	// part of the shard's committed prefix (and durable, under the
	// per-commit fsync policy) before the client ever sees the ack.
	go func() {
		stamp := p.Wait()
		if stamp == 0 {
			msg := "batch nacked"
			if werr := sc.s.eng.Err(); werr != nil {
				msg = werr.Error()
			}
			if cid != 0 {
				sc.s.dedup.abort(cid, cseq, msg)
			}
			sc.replyErr(verb, id, 0, msg)
			return
		}
		if cid != 0 {
			sc.s.dedup.complete(cid, cseq, stamp)
		}
		if faults.Hit("remote.submit.ack") != nil {
			// Injected ack loss: the commit stands, the ack vanishes —
			// the client's retry must be answered from the window.
			sc.nc.Close()
			return
		}
		sc.reply(verb, 0, id, func(e *rpc.Encoder) { e.U64(stamp) })
	}()
	return nil
}

// replyDeduped acks a duplicate submit from the dedup window. A
// journal-replayed entry has no recorded stamp; the engine's current
// stamp is at or above the original commit's and exactly as binding.
func (sc *serverConn[G, E]) replyDeduped(verb rpc.Verb, id uint64, stamp uint64) {
	if stamp == 0 {
		stamp = sc.s.eng.Stamp()
		if stamp == 0 {
			stamp = 1
		}
	}
	sc.reply(verb, rpc.FlagDeduped, id, func(e *rpc.Encoder) { e.U64(stamp) })
}

func (sc *serverConn[G, E]) handleHealth(m rpc.Msg) error {
	return sc.reply(m.Verb, 0, m.ReqID, func(e *rpc.Encoder) {
		e.U8(rolePrimary)
		e.U64(sc.s.eng.Stamp())
		e.U64(sc.s.eng.WALSeq())
	})
}

func (sc *serverConn[G, E]) handleFlush(m rpc.Msg) error {
	// Prior submits on this connection were enqueued by this reader
	// goroutine before we got here, so the engine flush covers them.
	id := m.ReqID
	verb := m.Verb
	go func() {
		stamp, err := sc.s.eng.Flush()
		if err != nil {
			sc.replyErr(verb, id, 0, err.Error())
			return
		}
		seq := sc.s.eng.WALSeq()
		sc.reply(verb, 0, id, func(e *rpc.Encoder) {
			e.U64(stamp)
			e.U64(seq)
		})
	}()
	return nil
}

func (sc *serverConn[G, E]) handlePin(m rpc.Msg) error {
	tx := sc.s.eng.Begin()
	stamp := tx.Stamp()
	if ent, ok := sc.pins[stamp]; ok {
		ent.refs++
		tx.Close()
	} else {
		sc.pins[stamp] = &pinEntry[G]{tx: tx, refs: 1}
	}
	seq := sc.s.eng.WALSeq()
	return sc.reply(m.Verb, 0, m.ReqID, func(e *rpc.Encoder) {
		e.U64(stamp)
		e.U64(seq)
	})
}

func (sc *serverConn[G, E]) handleRelease(m rpc.Msg) error {
	d := rpc.NewBody(m.Body)
	stamp := d.U64()
	if err := d.Err(); err != nil {
		return sc.replyErr(m.Verb, m.ReqID, 0, err.Error())
	}
	ent, ok := sc.pins[stamp]
	if !ok {
		return sc.replyErr(m.Verb, m.ReqID, 0, fmt.Sprintf("stamp %d not pinned", stamp))
	}
	ent.refs--
	if ent.refs == 0 {
		ent.tx.Close()
		delete(sc.pins, stamp)
	}
	return sc.reply(m.Verb, 0, m.ReqID, nil)
}

func (sc *serverConn[G, E]) handleRead(m rpc.Msg) error {
	d := rpc.NewBody(m.Body)
	ref := d.U64()
	lo := d.U32()
	if err := d.Err(); err != nil {
		return sc.replyErr(m.Verb, m.ReqID, 0, err.Error())
	}
	if m.Flags&rpc.FlagBySeq != 0 {
		return sc.replyErr(m.Verb, m.ReqID, 0, "by-seq reads are served by replicas")
	}
	ent, ok := sc.pins[ref]
	if !ok {
		return sc.replyErr(m.Verb, m.ReqID, 0, fmt.Sprintf("stamp %d not pinned on this connection", ref))
	}
	return sc.reply(m.Verb, 0, m.ReqID, func(e *rpc.Encoder) {
		encodeRange(e, ent.tx.Flat(), sc.s.weighted, lo)
	})
}

func (sc *serverConn[G, E]) handleStats(m rpc.Msg) error {
	raw, err := json.Marshal(sc.s.eng.Stats())
	if err != nil {
		return sc.replyErr(m.Verb, m.ReqID, 0, err.Error())
	}
	return sc.reply(m.Verb, 0, m.ReqID, func(e *rpc.Encoder) { e.Bytes(raw) })
}

// encodeRange appends one Read response body: the chunk of g starting
// at vertex lo, bounded by maxReadVerts/maxReadEdges with at least one
// vertex of progress.
//
//	[order u32][m u64][n u32][edges u64][degs n*u32][nbrs edges*u32][wts edges*f32?]
func encodeRange(e *rpc.Encoder, g ligra.Graph, weighted bool, lo uint32) {
	order := g.Order()
	var degs []int32
	if fg, ok := g.(ligra.FlatGraph); ok {
		degs = fg.Degrees()
	}
	degOf := func(u uint32) uint32 {
		if degs != nil {
			if int(u) < len(degs) {
				return uint32(degs[u])
			}
			return 0
		}
		return uint32(g.Degree(u))
	}
	n := uint32(0)
	edges := uint64(0)
	for u := uint64(lo); u < uint64(order); u++ {
		if n >= maxReadVerts || edges >= maxReadEdges {
			break
		}
		edges += uint64(degOf(uint32(u)))
		n++
	}
	e.U32(uint32(order))
	e.U64(g.NumEdges())
	e.U32(n)
	e.U64(edges)
	for u := lo; u < lo+n; u++ {
		e.U32(degOf(u))
	}
	// One Reserve for both arrays: a second Reserve could reallocate
	// the frame buffer and invalidate the first slice.
	total := int(edges) * 4
	if weighted {
		total *= 2
	}
	buf := e.Reserve(total)
	nbuf := buf[:int(edges)*4]
	var wbuf []byte
	if weighted {
		wbuf = buf[int(edges)*4:]
	}
	i, lim := 0, int(edges)
	if weighted {
		wg := g.(ligra.WeightedGraph)
		for u := lo; u < lo+n; u++ {
			wg.ForEachNeighborW(u, func(w uint32, wt float32) bool {
				if i >= lim {
					return false
				}
				binary.LittleEndian.PutUint32(nbuf[i*4:], w)
				binary.LittleEndian.PutUint32(wbuf[i*4:], math.Float32bits(wt))
				i++
				return true
			})
		}
	} else {
		for u := lo; u < lo+n; u++ {
			g.ForEachNeighbor(u, func(w uint32) bool {
				if i >= lim {
					return false
				}
				binary.LittleEndian.PutUint32(nbuf[i*4:], w)
				i++
				return true
			})
		}
	}
}
