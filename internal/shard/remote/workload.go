package remote

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/shard"
	"repro/internal/stream"
)

// Workload drives the §7.8 experiment against a remote cluster: one
// writer goroutine routes batched updates over the wire while Readers
// goroutines pin version vectors and run kernels on stitched flat
// views fetched from the shard servers. The run loop is the shared
// stream.Drive, so measurement semantics match the in-process
// workloads by construction.
type Workload[E any] struct {
	Cluster *Cluster[E]
	// NextBatch returns the i-th update batch (del reports a deletion
	// batch). Writer-goroutine only; nil means an idle writer.
	NextBatch func(i uint64) (del bool, edges []E)
	// Readers is the number of concurrent query goroutines.
	Readers int
	// Kernels are cycled round-robin by every reader. Remote kernels
	// always see the stitched flat view.
	Kernels []shard.Kernel
	// Duration is how long the writer sustains updates.
	Duration time.Duration
	// Interval, when positive, paces the writer; zero saturates.
	Interval time.Duration
	// Stop, when non-nil, ends the run early once closed.
	Stop <-chan struct{}
}

// Report is the outcome of one remote workload run: client-observed
// throughput/latency plus the cluster client counters and each shard
// server's engine counters.
type Report struct {
	Shards        int           `json:"shards"`
	Duration      time.Duration `json:"duration_ns"`
	Readers       int           `json:"readers"`
	Updates       uint64        `json:"updates"`
	UpdatesPerSec float64       `json:"updates_per_sec"`
	Batches       uint64        `json:"batches"`

	Queries       uint64                `json:"queries"`
	QueriesPerSec float64               `json:"queries_per_sec"`
	Query         stream.LatencySummary `json:"query_latency"`
	PerKernel     []stream.KernelStat   `json:"per_kernel"`
	QueryErrs     uint64                `json:"query_errs,omitempty"`

	FinalStamps []uint64       `json:"final_stamps"`
	Client      Stats          `json:"client"`
	PerShard    []stream.Stats `json:"per_shard,omitempty"`

	// CommitWorst is the commit-latency digest of the shard server with
	// the highest p99 (engine-lifetime, like the in-process report).
	CommitWorst stream.LatencySummary `json:"commit_worst"`
}

// Run executes the workload and reports. The cluster is flushed but
// left open (Close it separately).
func (w *Workload[E]) Run() Report {
	before := w.Cluster.Stats()
	var stamps []uint64
	var queryErrs atomic.Uint64
	spec := stream.DriveSpec{
		Readers: w.Readers,
		Kernels: len(w.Kernels),
		RunKernel: func(k int) {
			tx, err := w.Cluster.Begin()
			if err != nil {
				queryErrs.Add(1)
				return
			}
			g, err := tx.Flat()
			if err != nil {
				queryErrs.Add(1)
				tx.Close()
				return
			}
			w.Kernels[k].Run(g)
			tx.Close()
		},
		Flush:    func() { stamps, _ = w.Cluster.FlushAll() },
		Duration: w.Duration,
		Interval: w.Interval,
		Stop:     w.Stop,
	}
	if w.NextBatch != nil {
		spec.Submit = func(i uint64) error {
			del, edges := w.NextBatch(i)
			var p *Pending
			var err error
			if del {
				p, err = w.Cluster.Delete(edges)
			} else {
				p, err = w.Cluster.Insert(edges)
			}
			_ = p // acks drain through the in-flight window
			return err
		}
	}
	ds := stream.Drive(spec)

	st := w.Cluster.Stats()
	rep := Report{
		Shards:        st.Shards,
		Duration:      ds.Elapsed,
		Readers:       w.Readers,
		Updates:       st.Edges - before.Edges,
		UpdatesPerSec: float64(st.Edges-before.Edges) / ds.Elapsed.Seconds(),
		Batches:       st.Batches - before.Batches,
		Queries:       ds.Queries,
		QueriesPerSec: float64(ds.Queries) / ds.Elapsed.Seconds(),
		Query:         ds.Query,
		QueryErrs:     queryErrs.Load(),
		FinalStamps:   stamps,
		Client:        st,
	}
	if per, err := w.Cluster.ShardStats(); err == nil {
		rep.PerShard = per
		for _, es := range per {
			if es.Commit.P99 >= rep.CommitWorst.P99 {
				rep.CommitWorst = es.Commit
			}
		}
	}
	for i, k := range w.Kernels {
		rep.PerKernel = append(rep.PerKernel, stream.KernelStat{Name: k.Name, Latency: ds.PerKernel[i]})
	}
	sort.Slice(rep.PerKernel, func(i, j int) bool { return rep.PerKernel[i].Name < rep.PerKernel[j].Name })
	return rep
}
