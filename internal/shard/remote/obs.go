package remote

import (
	"repro/internal/obs"
	"repro/internal/rpc"
)

// This file federates the distributed layer's counters into an
// obs.Registry: the client Cluster's ingest/read/resilience counters
// (the same atomics Stats() reads), the shard server's per-verb RPC
// dispatch latency, and the dedup window's occupancy.

// RegisterMetrics registers the client-side counters. The resilience
// counters (retries, breaker, failover) make the PR 9 degradation
// ladder observable live instead of only in the end-of-run report.
func (c *Cluster[E]) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.CounterFunc("aspen_client_edges_total",
		"Edge updates acknowledged by shard servers.", c.edges.Load, labels...)
	reg.CounterFunc("aspen_client_batches_total",
		"Submit frames acknowledged.", c.batches.Load, labels...)
	reg.CounterFunc("aspen_client_submit_errors_total",
		"Submits that failed after exhausting retries.", c.submitErrs.Load, labels...)
	reg.CounterFunc("aspen_client_pins_total",
		"Version-vector pins taken by Begin.", c.pins.Load, labels...)
	reg.CounterFunc("aspen_client_range_rpcs_total",
		"Vertex-range read RPCs issued.", c.rangeRPCs.Load, labels...)
	reg.CounterFunc("aspen_client_view_fetches_total",
		"Per-shard flat views fetched over the wire.", c.viewFetches.Load, labels...)
	reg.CounterFunc("aspen_client_view_hits_total",
		"Per-shard flat views served from the client cache.", c.viewHits.Load, labels...)
	reg.CounterFunc("aspen_client_stitch_builds_total",
		"Cluster views stitched client-side.", c.stitchBuilds.Load, labels...)
	reg.CounterFunc("aspen_client_stitch_hits_total",
		"Cluster views served from the client stitch cache.", c.stitchHits.Load, labels...)
	reg.CounterFunc("aspen_client_replica_reads_total",
		"Pins served by a read replica.", c.replicaReads.Load, labels...)
	reg.CounterFunc("aspen_client_primary_fallbacks_total",
		"Replica reads that fell back to the primary (lagging watermark).",
		c.primaryFallbacks.Load, labels...)
	reg.CounterFunc("aspen_client_retries_total",
		"Submit frames retransmitted.", c.nstat.retries.Load, labels...)
	reg.CounterFunc("aspen_client_dedup_acks_total",
		"Acks answered from a server dedup window.", c.nstat.dedupAcks.Load, labels...)
	reg.CounterFunc("aspen_client_breaker_opens_total",
		"Endpoint transitions to down (breaker open).", c.nstat.breakerOpens.Load, labels...)
	reg.CounterFunc("aspen_client_breaker_fast_fails_total",
		"Operations refused while a breaker was open.", c.nstat.breakerFastFails.Load, labels...)
	reg.CounterFunc("aspen_client_suspects_total",
		"Endpoint transitions healthy to suspect.", c.nstat.suspects.Load, labels...)
	reg.CounterFunc("aspen_client_rpc_timeouts_total",
		"RPC deadlines that closed a connection.", c.nstat.timeouts.Load, labels...)
	reg.CounterFunc("aspen_client_failovers_total",
		"Submit streams redirected to a promoted replica.", c.nstat.failovers.Load, labels...)
	reg.CounterFunc("aspen_client_promotions_total",
		"Replica promotions observed by the health prober.", c.nstat.promotions.Load, labels...)
	reg.CounterFunc("aspen_client_degraded_pins_total",
		"Begin pins served by a replica with the primary down.", c.nstat.degradedPins.Load, labels...)
	reg.CounterFunc("aspen_client_stale_reads_total",
		"Begin pins served from bounded-stale cached views.", c.nstat.staleReads.Load, labels...)
	reg.CounterFunc("aspen_client_health_probes_total",
		"Health probes issued.", c.nstat.probes.Load, labels...)
}

// RegisterMetrics registers the server's per-verb RPC dispatch latency
// summaries and the dedup window occupancy gauges.
func (s *Server[G, E]) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	for v := rpc.Verb(1); int(v) < rpc.NumVerbs; v++ {
		// Push-only verbs (tail_rec, tail_snap) never arrive as
		// requests; skip their always-empty series.
		if v == rpc.VerbTailRec || v == rpc.VerbTailSnap {
			continue
		}
		ls := make([]obs.Label, 0, len(labels)+1)
		ls = append(ls, labels...)
		ls = append(ls, obs.Label{Key: "verb", Value: v.String()})
		reg.Summary("aspen_rpc_dispatch_seconds",
			"Synchronous RPC dispatch latency per verb (submit acks complete asynchronously).",
			&s.verbHists[v], ls...)
	}
	d := s.dedup
	reg.GaugeFunc("aspen_dedup_clients",
		"Clients tracked by the exactly-once dedup window.", func() float64 {
			clients, _ := d.Occupancy()
			return float64(clients)
		}, labels...)
	reg.GaugeFunc("aspen_dedup_entries",
		"Entries held across all client dedup windows.", func() float64 {
			_, entries := d.Occupancy()
			return float64(entries)
		}, labels...)
}

// Occupancy reports how much the dedup table currently remembers:
// tracked clients and total window entries (completed + in-flight)
// across them — the /statusz signal for sizing the window against the
// checkpoint cadence.
func (d *Dedup) Occupancy() (clients, entries int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, cw := range d.clients {
		entries += len(cw.entries)
	}
	return len(d.clients), entries
}
