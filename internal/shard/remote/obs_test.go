package remote

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/shard"
)

// TestMetricsScrapeUnderChaos federates client and server counters into
// obs registries and scrapes them concurrently with a saturated writer
// whose connections are being churned (dropped writes, severed conns) —
// the -race proof that the observability plane never synchronizes with
// the submit/retry/dedup path, and that the exposition reflects the
// PR 9 resilience ladder (retries, dedup acks) live.
func TestMetricsScrapeUnderChaos(t *testing.T) {
	part := shard.NewRangePartitioner(2, 1<<9)
	servers, addrs := startServers(t, part, true)
	tr := faults.NewTransport()
	o := chaosOpts()
	o.Dialer = tr.Dialer(nil)
	c, err := DialGraph(part, addrs, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	clientReg := obs.NewRegistry()
	c.RegisterMetrics(clientReg)
	serverReg := obs.NewRegistry()
	for i, ts := range servers {
		ts.srv.RegisterMetrics(serverReg, obs.Label{Key: "shard", Value: string(rune('0' + i))})
	}

	stopScrape := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ { // concurrent scrapers over both registries
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopScrape:
					return
				default:
				}
				var sb strings.Builder
				if err := clientReg.WritePrometheus(&sb); err != nil {
					t.Errorf("client scrape: %v", err)
					return
				}
				sb.Reset()
				if err := serverReg.WritePrometheus(&sb); err != nil {
					t.Errorf("server scrape: %v", err)
					return
				}
			}
		}()
	}

	// Saturated writer with connection churn, as in
	// TestSubmitRetriesAfterConnDrop.
	ops := randomOps(1<<9, 12, 400, 11)
	var pendings []*Pending
	for i, op := range ops {
		switch i % 4 {
		case 1:
			tr.DropNext(1)
		case 3:
			tr.KillAll()
		}
		var p *Pending
		var err error
		if op.del {
			p, err = c.Delete(op.edges)
		} else {
			p, err = c.Insert(op.edges)
		}
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}
	for _, p := range pendings {
		if err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	tr.ClearScheduled()
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	close(stopScrape)
	wg.Wait()

	// The client exposition must agree with Stats() at quiescence and
	// show the resilience counters moving.
	var sb strings.Builder
	if err := clientReg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	st := c.Stats()
	if st.Retries == 0 {
		t.Fatalf("chaos schedule caused no retries: %+v", st)
	}
	for _, want := range []string{
		fmt.Sprintf("aspen_client_batches_total %d", st.Batches),
		fmt.Sprintf("aspen_client_retries_total %d", st.Retries),
		"aspen_client_dedup_acks_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("client exposition missing %q", want)
		}
	}

	// The server exposition carries per-verb dispatch latency per shard
	// and the dedup occupancy gauges.
	sb.Reset()
	if err := serverReg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text = sb.String()
	for _, want := range []string{
		`aspen_rpc_dispatch_seconds_count{shard="0",verb="submit"}`,
		`aspen_rpc_dispatch_seconds_count{shard="1",verb="hello"}`,
		`aspen_dedup_clients{shard="0"}`,
		"aspen_dedup_entries",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("server exposition missing %q", want)
		}
	}
	for _, ts := range servers {
		if clients, entries := ts.srv.dedup.Occupancy(); clients == 0 || entries == 0 {
			t.Errorf("dedup occupancy = (%d, %d), want both > 0 after retried submits", clients, entries)
		}
	}
}
