package shard

import (
	"slices"
	"sync"
	"testing"

	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/stream"
	"repro/internal/xhash"
)

// TestConcurrentWritersAndReaders is the multi-writer race surface: several
// goroutines submit insert batches through the cluster concurrently (so
// shard queues see interleaved producers) while readers pin version
// vectors, run a kernel on the stitched flat view, and release — across
// live commits and retirements. Insert-only batches commute, so the final
// barriered state must equal the single-engine union regardless of the
// interleaving. Run under -race in CI.
func TestConcurrentWritersAndReaders(t *testing.T) {
	const (
		writers      = 4
		batchesEach  = 12
		edgesPer     = 300
		idSpace      = 1 << 9
		readerRounds = 40
	)
	part := NewRangePartitioner(4, idSpace)
	c := NewGraphCluster(part, testParams(), stream.Options{QueueCap: 16, PriorityEdges: 8})
	defer c.Close()

	// Pre-generate every writer's batches so the reference union is
	// deterministic.
	all := make([][][]aspen.Edge, writers)
	for w := range all {
		all[w] = make([][]aspen.Edge, batchesEach)
		for b := range all[w] {
			all[w][b] = aspen.MakeUndirected(randomEdges(edgesPer, idSpace, uint64(w*1000+b)))
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, batch := range all[w] {
				if _, err := c.Insert(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	var readerWG sync.WaitGroup
	stopReaders := make(chan struct{})
	for r := 0; r < 3; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rng := xhash.NewRNG(uint64(r) + 99)
			for i := 0; i < readerRounds; i++ {
				select {
				case <-stopReaders:
					return
				default:
				}
				tx := c.Begin()
				stamps := slices.Clone(tx.Stamps())
				g := tx.Flat()
				if g.Order() > 0 {
					algos.BFS(g, rng.Uint32()%uint32(g.Order()), false)
				}
				// The pinned vector must still be the one we started with:
				// commits during the query must not move an open tx.
				if !slices.Equal(stamps, tx.Stamps()) {
					t.Error("version vector moved under an open transaction")
				}
				tx.Close()
			}
		}(r)
	}

	wg.Wait()
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	close(stopReaders)
	readerWG.Wait()

	single := aspen.NewGraph(testParams())
	for _, wb := range all {
		for _, batch := range wb {
			single = single.InsertEdges(batch)
		}
	}
	tx := c.Begin()
	checkStructure(t, single, tx.Ligra(), tx.Flat())
	tx.Close()

	// With every transaction closed, each shard must drain to exactly its
	// current live version (retired snapshots released).
	st := c.Stats()
	if st.LiveVersions != int64(c.Shards()) {
		t.Fatalf("live versions = %d, want %d (one per shard)", st.LiveVersions, c.Shards())
	}
}

// TestVersionVectorPinning holds one transaction across later commits and
// checks it still answers from its original vector while new transactions
// see the new state.
func TestVersionVectorPinning(t *testing.T) {
	part := NewHashPartitioner(3)
	c := NewGraphCluster(part, testParams(), stream.Options{})
	defer c.Close()

	first := aspen.MakeUndirected([]aspen.Edge{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}})
	if _, err := c.Insert(first); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	old := c.Begin()
	oldEdges := old.Graph().NumEdges()

	second := aspen.MakeUndirected([]aspen.Edge{{Src: 5, Dst: 6}, {Src: 7, Dst: 8}})
	if _, err := c.Insert(second); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}

	if got := old.Graph().NumEdges(); got != oldEdges {
		t.Fatalf("pinned tx saw %d edges after a commit, want %d", got, oldEdges)
	}
	if old.Graph().Degree(5) != 0 {
		t.Fatal("pinned tx sees an edge committed after Begin")
	}
	fresh := c.Begin()
	if got := fresh.Graph().NumEdges(); got != oldEdges+uint64(len(second)) {
		t.Fatalf("fresh tx sees %d edges, want %d", got, oldEdges+uint64(len(second)))
	}
	if fresh.Graph().Degree(5) != 1 {
		t.Fatal("fresh tx missing the committed edge")
	}
	fresh.Close()
	old.Close()
}
