package shard

import (
	"sync"

	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/ligra"
	"repro/internal/stream"
)

// Cluster is the multi-writer serving facade: S independent stream.Engine
// instances, one per shard, each the single writer for the vertices its
// partition owns. Submitted batches are routed per shard and enqueued on
// every touched shard's writer concurrently, so under load the shards
// commit in parallel — the paper's single-writer engine scaled across
// cores. Readers open cross-shard transactions with Begin; writers never
// block readers and readers never block writers, exactly as within one
// engine.
type Cluster[G ligra.Graph, E any] struct {
	part    Partitioner
	engines []*stream.Engine[G, E]
	srcOf   func(E) uint32

	txPool sync.Pool // *Tx[G, E]
	stitch stitchCache
}

// New assembles a cluster from a partitioner and one pre-built engine per
// shard (len(engines) must equal part.Shards()); srcOf extracts the routing
// key from an update. The graph-flavored constructors below cover the two
// aspen instantiations.
func New[G ligra.Graph, E any](part Partitioner, engines []*stream.Engine[G, E], srcOf func(E) uint32) *Cluster[G, E] {
	if len(engines) != part.Shards() {
		panic("shard: engine count does not match partitioner shard count")
	}
	return &Cluster[G, E]{part: part, engines: engines, srcOf: srcOf}
}

// NewGraphCluster builds a cluster of unweighted engines, each starting
// from an empty graph with edge-tree params p. Route initial edges through
// Insert + Barrier.
func NewGraphCluster(part Partitioner, p ctree.Params, opts stream.Options) *Cluster[aspen.Graph, aspen.Edge] {
	engines := make([]*stream.Engine[aspen.Graph, aspen.Edge], part.Shards())
	for i := range engines {
		engines[i] = stream.NewGraphEngine(aspen.NewGraph(p), opts)
	}
	return New(part, engines, EdgeSource)
}

// NewWeightedCluster builds a cluster of weighted engines, each starting
// from an empty weighted graph with edge-tree params p.
func NewWeightedCluster(part Partitioner, p ctree.Params, opts stream.Options) *Cluster[aspen.WeightedGraph, aspen.WeightedEdge] {
	engines := make([]*stream.Engine[aspen.WeightedGraph, aspen.WeightedEdge], part.Shards())
	for i := range engines {
		engines[i] = stream.NewWeightedEngine(aspen.NewWeightedGraphWith(p), opts)
	}
	return New(part, engines, WeightedEdgeSource)
}

// NewGraphClusterFrom builds a cluster whose shards start from an initial
// edge set loaded *outside* the serving path: the batch is routed per
// shard and each shard's graph built with one direct InsertEdges, so the
// engines' ingest counters and commit histograms start clean — exactly
// how a single engine is constructed over a pre-built graph. This is what
// benchmark drivers must use; loading through Cluster.Insert would charge
// the preload to the streamed-update numbers and land one giant commit
// sample in every shard's latency digest.
func NewGraphClusterFrom(part Partitioner, p ctree.Params, initial []aspen.Edge, opts stream.Options) *Cluster[aspen.Graph, aspen.Edge] {
	parts := Route(part, initial, EdgeSource)
	engines := make([]*stream.Engine[aspen.Graph, aspen.Edge], part.Shards())
	for i := range engines {
		engines[i] = stream.NewGraphEngine(aspen.NewGraph(p).InsertEdges(parts[i]), opts)
	}
	return New(part, engines, EdgeSource)
}

// NewWeightedClusterFrom is NewGraphClusterFrom for weighted graphs.
func NewWeightedClusterFrom(part Partitioner, p ctree.Params, initial []aspen.WeightedEdge, opts stream.Options) *Cluster[aspen.WeightedGraph, aspen.WeightedEdge] {
	parts := Route(part, initial, WeightedEdgeSource)
	engines := make([]*stream.Engine[aspen.WeightedGraph, aspen.WeightedEdge], part.Shards())
	for i := range engines {
		engines[i] = stream.NewWeightedEngine(aspen.NewWeightedGraphWith(p).InsertEdges(parts[i]), opts)
	}
	return New(part, engines, WeightedEdgeSource)
}

// Shards returns the shard count.
func (c *Cluster[G, E]) Shards() int { return len(c.engines) }

// Partitioner returns the cluster's vertex partitioner.
func (c *Cluster[G, E]) Partitioner() Partitioner { return c.part }

// Engine returns shard s's engine (for stats, tests and tuning hooks).
func (c *Cluster[G, E]) Engine(s int) *stream.Engine[G, E] { return c.engines[s] }

// Pending tracks one logical batch across the shards it touched; Wait
// blocks until every shard has committed its share.
type Pending struct {
	ps []stream.Pending
}

// Wait blocks until the batch is visible on every touched shard.
func (p Pending) Wait() {
	for _, sp := range p.ps {
		sp.Wait()
	}
}

// Insert routes a batch of edge insertions per shard and enqueues each
// sub-batch on its shard's writer; sub-batches are submitted concurrently,
// so one shard's backpressure does not serialize the others. The returned
// Pending resolves when every shard has published its share. A racing
// Close may accept some shards' sub-batches (they drain and commit) while
// others observe ErrClosed; the error is returned in that case.
func (c *Cluster[G, E]) Insert(edges []E) (Pending, error) { return c.submit(false, edges) }

// Delete routes a batch of edge deletions per shard.
func (c *Cluster[G, E]) Delete(edges []E) (Pending, error) { return c.submit(true, edges) }

func (c *Cluster[G, E]) submit(del bool, edges []E) (Pending, error) {
	parts := Route(c.part, edges, c.srcOf)
	touched := 0
	last := -1
	for s, sub := range parts {
		if len(sub) > 0 {
			touched++
			last = s
		}
	}
	if touched == 0 {
		return Pending{}, nil
	}
	one := func(e *stream.Engine[G, E], sub []E) (stream.Pending, error) {
		if del {
			return e.Delete(sub)
		}
		return e.Insert(sub)
	}
	if touched == 1 {
		p, err := one(c.engines[last], parts[last])
		if err != nil {
			return Pending{}, err
		}
		return Pending{ps: []stream.Pending{p}}, nil
	}
	// Concurrent submission: Insert blocks under queue backpressure, and a
	// full shard 0 must not delay shards 1..S-1 from making progress.
	ps := make([]stream.Pending, 0, touched)
	errs := make([]error, len(parts))
	pend := make([]stream.Pending, len(parts))
	var wg sync.WaitGroup
	for s, sub := range parts {
		if len(sub) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, sub []E) {
			defer wg.Done()
			pend[s], errs[s] = one(c.engines[s], sub)
		}(s, sub)
	}
	wg.Wait()
	for s := range parts {
		if errs[s] != nil {
			return Pending{}, errs[s]
		}
		if len(parts[s]) > 0 {
			ps = append(ps, pend[s])
		}
	}
	return Pending{ps: ps}, nil
}

// FlushAll flushes every shard concurrently and returns the resulting
// version vector: stamps[s] is the stamp current on shard s once every
// batch submitted to it before the call has committed. A Begin after
// FlushAll (with writers quiet) pins exactly the flushed global state.
func (c *Cluster[G, E]) FlushAll() ([]uint64, error) {
	stamps := make([]uint64, len(c.engines))
	errs := make([]error, len(c.engines))
	var wg sync.WaitGroup
	for s, e := range c.engines {
		wg.Add(1)
		go func(s int, e *stream.Engine[G, E]) {
			defer wg.Done()
			stamps[s], errs[s] = e.Flush()
		}(s, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return stamps, err
		}
	}
	return stamps, nil
}

// Barrier waits until every shard has committed everything submitted
// before the call — the cross-shard consistency point the differential
// tests pin against a single-engine ground truth.
func (c *Cluster[G, E]) Barrier() error {
	_, err := c.FlushAll()
	return err
}

// Close stops every shard's ingest loop after draining its queue.
func (c *Cluster[G, E]) Close() {
	var wg sync.WaitGroup
	for _, e := range c.engines {
		wg.Add(1)
		go func(e *stream.Engine[G, E]) {
			defer wg.Done()
			e.Close()
		}(e)
	}
	wg.Wait()
}

// Stats aggregates the engines' counters across the cluster.
type Stats struct {
	Shards int `json:"shards"`
	// Edges / Batches / Commits sum the per-shard ingest counters (a routed
	// batch counts once per touched shard in Batches).
	Edges   uint64 `json:"edges"`
	Batches uint64 `json:"batches"`
	Commits uint64 `json:"commits"`
	// QueueDepth sums the shards' queued-but-uncommitted batches.
	QueueDepth int `json:"queue_depth"`
	// LiveVersions / RetiredVersions sum the per-shard epoch registries
	// (live is ≥ Shards: each shard's current version is live).
	LiveVersions    int64  `json:"live_versions"`
	RetiredVersions uint64 `json:"retired_versions"`
	// FlatBuilds / FlatPatches / FlatHits sum the per-shard §5.1 flat-view
	// caches; StitchBuilds / StitchPatches / StitchHits count cross-shard
	// stitched views (at most one full build or delta stitch per distinct
	// version vector, served from the cluster's stitch slot otherwise; a
	// delta stitch reuses unmoved shards' views verbatim).
	FlatBuilds    uint64 `json:"flat_builds"`
	FlatPatches   uint64 `json:"flat_patches,omitempty"`
	FlatHits      uint64 `json:"flat_hits"`
	StitchBuilds  uint64 `json:"stitch_builds"`
	StitchPatches uint64 `json:"stitch_patches,omitempty"`
	StitchHits    uint64 `json:"stitch_hits"`
	// PerShard carries each engine's full counter set, in shard order.
	PerShard []stream.Stats `json:"per_shard"`
}

// Stats returns the aggregated cluster counters. Safe to call concurrently
// with everything else.
func (c *Cluster[G, E]) Stats() Stats {
	st := Stats{
		Shards:        len(c.engines),
		StitchBuilds:  c.stitch.builds.Load(),
		StitchPatches: c.stitch.patches.Load(),
		StitchHits:    c.stitch.hits.Load(),
		PerShard:      make([]stream.Stats, len(c.engines)),
	}
	for s, e := range c.engines {
		es := e.Stats()
		st.PerShard[s] = es
		st.Edges += es.Edges
		st.Batches += es.Batches
		st.Commits += es.Commits
		st.QueueDepth += es.QueueDepth
		st.LiveVersions += es.LiveVersions
		st.RetiredVersions += es.RetiredVersions
		st.FlatBuilds += es.FlatBuilds
		st.FlatPatches += es.FlatPatches
		st.FlatHits += es.FlatHits
	}
	return st
}
