package shard

import (
	"fmt"
	"testing"

	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/rmat"
	"repro/internal/stream"
)

// benchCluster builds a cluster preloaded with an rMAT graph and
// barriered, for the read-path benchmarks and alloc gates.
func benchCluster(b testing.TB, shards int) *Cluster[aspen.Graph, aspen.Edge] {
	b.Helper()
	gen := rmat.NewGenerator(14, 42)
	c := NewGraphCluster(NewRangePartitioner(shards, 1<<14), ctree.DefaultParams(), stream.Options{})
	if _, err := c.Insert(aspen.MakeUndirected(gen.Edges(0, 200_000))); err != nil {
		b.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkClusterBeginClose is the sharded read-tx hot path: pin one
// version per shard, release. Pooled transactions keep it allocation-free
// (CI gates allocs_op at 0).
func BenchmarkClusterBeginClose(b *testing.B) {
	c := benchCluster(b, 4)
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := c.Begin()
		tx.Close()
	}
}

// BenchmarkClusterFlatStitchCached measures the steady-state stitched-flat
// path: the vector is unchanged, so Flat is a slot hit (CI gates allocs_op
// at 0).
func BenchmarkClusterFlatStitchCached(b *testing.B) {
	c := benchCluster(b, 4)
	defer c.Close()
	warm := c.Begin()
	warm.Flat()
	warm.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := c.Begin()
		if tx.Flat() == nil {
			b.Fatal("no flat view")
		}
		tx.Close()
	}
}

// BenchmarkRoute measures the per-batch routing cost (counting scatter
// into one backing array).
func BenchmarkRoute(b *testing.B) {
	edges := aspen.MakeUndirected(rmat.NewGenerator(16, 7).Edges(0, 5_000))
	p := NewRangePartitioner(4, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Route(p, edges, EdgeSource)
	}
	b.SetBytes(int64(len(edges) * 8))
}

// BenchmarkShardedIngest measures saturated ingest throughput through the
// cluster facade at 1, 2 and 4 shards — the multi-writer scaling surface
// (edges/sec is the headline §7.8 comparison; on a single-core host the
// shard counts should at least not regress each other).
func BenchmarkShardedIngest(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			gen := rmat.NewGenerator(16, 9)
			c := NewGraphCluster(NewRangePartitioner(shards, 1<<16), ctree.DefaultParams(), stream.Options{})
			if _, err := c.Insert(aspen.MakeUndirected(gen.Edges(0, 100_000))); err != nil {
				b.Fatal(err)
			}
			if err := c.Barrier(); err != nil {
				b.Fatal(err)
			}
			const batchSize = 5_000
			pos := uint64(100_000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := aspen.MakeUndirected(gen.Edges(pos, pos+batchSize))
				pos += batchSize
				if _, err := c.Insert(batch); err != nil {
					b.Fatal(err)
				}
			}
			if err := c.Barrier(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*batchSize*2)/b.Elapsed().Seconds(), "edges/sec")
			c.Close()
		})
	}
}

func TestBeginCloseAllocFree(t *testing.T) {
	if raceEnabled {
		// The race detector makes sync.Pool drop items at random, so the
		// pooled-tx path cannot be allocation-free under it; the non-race
		// CI lanes and the bench gate hold the 0-alloc guarantee.
		t.Skip("pooled allocations are not deterministic under -race")
	}
	c := benchCluster(t, 2)
	defer c.Close()
	warm := c.Begin()
	warm.Flat()
	warm.Close()
	if avg := testing.AllocsPerRun(200, func() {
		tx := c.Begin()
		tx.Close()
	}); avg > 0 {
		t.Fatalf("Begin/Close allocates %.1f objects per op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		tx := c.Begin()
		tx.Flat()
		tx.Close()
	}); avg > 0 {
		t.Fatalf("Begin/Flat/Close (cached) allocates %.1f objects per op, want 0", avg)
	}
}
