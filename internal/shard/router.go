package shard

import (
	"repro/internal/aspen"
)

// Route splits one edge batch into per-shard sub-batches by the owner of
// each edge's source vertex. The split is a stable counting scatter into a
// single backing array — one pass to count, one to place — and every
// returned sub-batch is a subslice of that array (the zero-copy
// groupBySource discipline of PR 1 applied across engines): no per-shard
// re-allocation, and within a shard the batch order is preserved, so
// same-shard insert/delete sequencing survives routing. Entry s of the
// result is nil when shard s received no edges. The input slice is not
// modified.
func Route[E any](p Partitioner, edges []E, srcOf func(E) uint32) [][]E {
	s := p.Shards()
	out := make([][]E, s)
	if len(edges) == 0 {
		return out
	}
	if s == 1 {
		out[0] = edges
		return out
	}
	owners := make([]int32, len(edges))
	counts := make([]int, s)
	for i, e := range edges {
		o := p.Owner(srcOf(e))
		owners[i] = int32(o)
		counts[o]++
	}
	backing := make([]E, len(edges))
	// Exclusive prefix sums give each shard its region of the backing
	// array; the sequential scatter keeps per-shard batch order stable.
	offsets := make([]int, s)
	sum := 0
	for i, c := range counts {
		offsets[i] = sum
		sum += c
	}
	next := append([]int(nil), offsets...)
	for i, e := range edges {
		o := owners[i]
		backing[next[o]] = e
		next[o]++
	}
	for i := 0; i < s; i++ {
		if counts[i] > 0 {
			out[i] = backing[offsets[i] : offsets[i]+counts[i] : offsets[i]+counts[i]]
		}
	}
	return out
}

// EdgeSource is the router key for unweighted edge updates.
func EdgeSource(e aspen.Edge) uint32 { return e.Src }

// WeightedEdgeSource is the router key for weighted edge updates.
func WeightedEdgeSource(e aspen.WeightedEdge) uint32 { return e.Src }
