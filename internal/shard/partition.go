// Package shard scales the serving layer across writers: a Cluster runs N
// independent stream.Engine instances — each the single writer for one
// slice of the vertex-id space — behind one facade (ROADMAP (j)). A
// Partitioner assigns every vertex to exactly one shard by its *source*
// endpoint, so each shard holds the complete out-adjacency of the vertices
// it owns over the full id space; a Router splits incoming edge batches
// into per-shard sub-batches (subslices of one backing array, the zero-copy
// discipline of PR 1) and submits them to all shard writers concurrently.
//
// Purely-functional snapshots make the cross-shard consistency story
// simple: a "global snapshot" is a vector of immutable per-shard roots. A
// Tx pins one refcounted version per shard — a version vector — and serves
// the whole vector through the ligra traversal interfaces (View for the
// tree path, a stitched FlatView for the §5.1 fast path), so every algos
// kernel runs unmodified on a sharded snapshot. Each component of the
// vector is a committed prefix of its shard's serialized history; after
// Barrier (all shards flushed, writers quiet) the vector is exactly the
// global graph, which is what the differential tests pin against the
// single-engine ground truth.
package shard

import (
	"repro/internal/xhash"
)

// Partitioner maps every vertex id to the shard that owns it. Ownership is
// by source vertex: shard Owner(u) holds all of u's out-edges (on the
// symmetrized graphs this repository serves, that is u's full adjacency).
// Owner must be a pure function onto [0, Shards()) over the entire uint32
// id space — destinations of routed edges land on whatever shard owns
// their source, so every shard must be able to answer Owner for any id.
type Partitioner interface {
	// Shards returns the number of shards S (≥ 1).
	Shards() int
	// Owner returns the shard index of u, in [0, S).
	Owner(u uint32) int
}

// RangePartitioner splits the id space [0, Span) into contiguous,
// nearly-equal vertex ranges: shard s owns [s*width, (s+1)*width), with ids
// ≥ Span falling into the last shard. Contiguous ranges keep each shard's
// vertex-tree a compact id interval (good locality, cheap flat stitching)
// but inherit any skew in the id assignment.
type RangePartitioner struct {
	shards int
	width  uint64
}

// NewRangePartitioner partitions [0, span) into shards contiguous ranges.
// shards is clamped to ≥ 1; a zero span makes one shard own everything.
func NewRangePartitioner(shards int, span uint32) RangePartitioner {
	if shards < 1 {
		shards = 1
	}
	width := (uint64(span) + uint64(shards) - 1) / uint64(shards)
	if width == 0 {
		width = 1 << 32 // single-shard or empty span: everything in shard 0
	}
	return RangePartitioner{shards: shards, width: width}
}

// Shards returns the shard count.
func (p RangePartitioner) Shards() int { return p.shards }

// Owner returns u's shard: u/width, clamped into the last shard for ids at
// or beyond the partitioned span.
func (p RangePartitioner) Owner(u uint32) int {
	s := uint64(u) / p.width
	if s >= uint64(p.shards) {
		return p.shards - 1
	}
	return int(s)
}

// Range returns the id interval [lo, hi) owned by shard s; the last shard's
// interval extends to the end of the uint32 space.
func (p RangePartitioner) Range(s int) (lo, hi uint64) {
	lo = uint64(s) * p.width
	hi = lo + p.width
	if s == p.shards-1 {
		hi = 1 << 32
	}
	return lo, hi
}

// HashPartitioner spreads ids over shards by a mixed 64-bit hash —
// insensitive to skewed or clustered id ranges, at the cost of scattering
// each shard's vertices across the whole id space (flat stitching then
// walks ids instead of copying ranges).
type HashPartitioner struct {
	shards int
}

// NewHashPartitioner returns a hash partitioner over shards shards
// (clamped to ≥ 1).
func NewHashPartitioner(shards int) HashPartitioner {
	if shards < 1 {
		shards = 1
	}
	return HashPartitioner{shards: shards}
}

// Shards returns the shard count.
func (p HashPartitioner) Shards() int { return p.shards }

// Owner returns the shard of u by mixing the id through xhash.
func (p HashPartitioner) Owner(u uint32) int {
	return int(xhash.Mix32(u) % uint64(p.shards))
}
