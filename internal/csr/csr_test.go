package csr

import (
	"testing"

	"repro/internal/algos"
	"repro/internal/rmat"
)

func TestFlatCSRBasics(t *testing.T) {
	adj := [][]uint32{{1, 2}, {0}, {0}, {}}
	g := FromAdjacency(adj)
	if g.Order() != 4 || g.NumEdges() != 4 {
		t.Fatalf("order=%d m=%d", g.Order(), g.NumEdges())
	}
	if g.Degree(0) != 2 || g.Degree(3) != 0 {
		t.Fatal("degrees wrong")
	}
	var nbrs []uint32
	g.ForEachNeighbor(0, func(v uint32) bool { nbrs = append(nbrs, v); return true })
	if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 2 {
		t.Fatalf("neighbors = %v", nbrs)
	}
	if g.MemoryBytes() == 0 {
		t.Fatal("memory accounting zero")
	}
}

func TestCompressedMatchesFlat(t *testing.T) {
	gen := rmat.NewGenerator(10, 42)
	adj := gen.Adjacency(8000)
	flat := FromAdjacency(adj)
	comp := CompressAdjacency(adj)
	if flat.Order() != comp.Order() || flat.NumEdges() != comp.NumEdges() {
		t.Fatal("headers differ")
	}
	for u := 0; u < flat.Order(); u++ {
		if flat.Degree(uint32(u)) != comp.Degree(uint32(u)) {
			t.Fatalf("degree mismatch at %d", u)
		}
		var a, b []uint32
		flat.ForEachNeighbor(uint32(u), func(v uint32) bool { a = append(a, v); return true })
		comp.ForEachNeighbor(uint32(u), func(v uint32) bool { b = append(b, v); return true })
		if len(a) != len(b) {
			t.Fatalf("neighbor count mismatch at %d", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("neighbor mismatch at %d", u)
			}
		}
	}
}

func TestCompressionSavesSpace(t *testing.T) {
	gen := rmat.NewGenerator(12, 7)
	adj := gen.Adjacency(60_000)
	flat := FromAdjacency(adj)
	comp := CompressAdjacency(adj)
	if comp.MemoryBytes() >= flat.MemoryBytes() {
		t.Fatalf("compressed %d >= flat %d bytes", comp.MemoryBytes(), flat.MemoryBytes())
	}
	if comp.BytesPerEdge() <= 0 {
		t.Fatal("bytes/edge should be positive")
	}
}

func TestAlgorithmsOverCSR(t *testing.T) {
	gen := rmat.NewGenerator(9, 3)
	adj := gen.Adjacency(4000)
	flat := FromAdjacency(adj)
	comp := CompressAdjacency(adj)
	a := algos.BFS(flat, 0, false).Distances()
	b := algos.BFS(comp, 0, false).Distances()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("BFS mismatch at %d: %d vs %d", i, a[i], b[i])
		}
	}
	ccA := algos.ConnectedComponents(flat)
	ccB := algos.ConnectedComponents(comp)
	for i := range ccA {
		if ccA[i] != ccB[i] {
			t.Fatalf("CC mismatch at %d", i)
		}
	}
}
