// Package csr provides the two static-graph baselines of §7.7: a flat
// compressed-sparse-row graph (the representation GAP uses) and a
// byte-code-compressed CSR with difference-encoded adjacency lists (the
// representation Ligra+ uses). Both are immutable after construction and
// implement the ligra.Graph interface, so the shared algorithm suite runs on
// them unchanged — mirroring how the paper compares Aspen against static
// frameworks on identical algorithms.
package csr

import (
	"repro/internal/encoding"
	"repro/internal/parallel"
)

// Graph is a flat CSR (offset array + edge array), the GAP-style baseline.
type Graph struct {
	offs  []uint64
	edges []uint32
}

// FromAdjacency builds a flat CSR. Neighbor lists are used as given (they
// should be sorted for deterministic traversal order).
func FromAdjacency(adj [][]uint32) *Graph {
	offs := make([]uint64, len(adj)+1)
	for u, nbrs := range adj {
		offs[u+1] = offs[u] + uint64(len(nbrs))
	}
	edges := make([]uint32, offs[len(adj)])
	parallel.ForGrain(len(adj), 64, func(u int) {
		copy(edges[offs[u]:offs[u+1]], adj[u])
	})
	return &Graph{offs: offs, edges: edges}
}

// Order returns the vertex-id space size.
func (g *Graph) Order() int { return len(g.offs) - 1 }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() uint64 { return g.offs[len(g.offs)-1] }

// Degree returns the degree of u.
func (g *Graph) Degree(u uint32) int {
	if int(u) >= g.Order() {
		return 0
	}
	return int(g.offs[u+1] - g.offs[u])
}

// ForEachNeighbor applies f to u's neighbors until f returns false. O(deg)
// contiguous reads — the locality target C-trees approximate (§1).
func (g *Graph) ForEachNeighbor(u uint32, f func(v uint32) bool) {
	if int(u) >= g.Order() {
		return
	}
	for _, v := range g.edges[g.offs[u]:g.offs[u+1]] {
		if !f(v) {
			return
		}
	}
}

// MemoryBytes returns the flat CSR footprint: 8 bytes per vertex offset and
// 4 bytes per edge.
func (g *Graph) MemoryBytes() uint64 {
	return uint64(len(g.offs))*8 + uint64(len(g.edges))*4
}

// Compressed is a byte-code-compressed CSR: each adjacency list is
// difference-encoded with the same varint byte codes as C-tree chunks. This
// is the Ligra+-style baseline and the space lower bound Aspen is compared
// against in Tables 2 and 9.
type Compressed struct {
	offs []uint64 // byte offsets into data, len n+1
	degs []uint32
	data []byte
	m    uint64
}

// CompressAdjacency builds a compressed CSR from sorted adjacency lists.
func CompressAdjacency(adj [][]uint32) *Compressed {
	n := len(adj)
	chunks := make([]encoding.Chunk, n)
	parallel.ForGrain(n, 64, func(u int) {
		chunks[u] = encoding.Encode(encoding.Delta, adj[u])
	})
	c := &Compressed{offs: make([]uint64, n+1), degs: make([]uint32, n)}
	for u := 0; u < n; u++ {
		c.offs[u+1] = c.offs[u] + uint64(len(chunks[u]))
		c.degs[u] = uint32(len(adj[u]))
		c.m += uint64(len(adj[u]))
	}
	c.data = make([]byte, c.offs[n])
	parallel.ForGrain(n, 64, func(u int) {
		copy(c.data[c.offs[u]:c.offs[u+1]], chunks[u])
	})
	return c
}

// Order returns the vertex-id space size.
func (c *Compressed) Order() int { return len(c.degs) }

// NumEdges returns the number of directed edges.
func (c *Compressed) NumEdges() uint64 { return c.m }

// Degree returns the degree of u.
func (c *Compressed) Degree(u uint32) int {
	if int(u) >= len(c.degs) {
		return 0
	}
	return int(c.degs[u])
}

// ForEachNeighbor decodes u's difference-encoded list on the fly.
func (c *Compressed) ForEachNeighbor(u uint32, f func(v uint32) bool) {
	if int(u) >= len(c.degs) || c.degs[u] == 0 {
		return
	}
	chunk := encoding.Chunk(c.data[c.offs[u]:c.offs[u+1]])
	chunk.ForEach(encoding.Delta, f)
}

// MemoryBytes returns the compressed footprint: offsets, degrees and the
// byte-coded edge payload.
func (c *Compressed) MemoryBytes() uint64 {
	return uint64(len(c.offs))*8 + uint64(len(c.degs))*4 + uint64(len(c.data))
}

// BytesPerEdge is a convenience for the space tables.
func (c *Compressed) BytesPerEdge() float64 {
	if c.m == 0 {
		return 0
	}
	return float64(c.MemoryBytes()) / float64(c.m)
}
