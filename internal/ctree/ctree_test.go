package ctree

import (
	"testing"
	"testing/quick"

	"repro/internal/encoding"
	"repro/internal/xhash"
)

// testParams covers the three paper configurations plus a tiny-b stress
// configuration that promotes many heads.
var testParams = []Params{
	{B: 2, Codec: encoding.Delta},
	{B: 8, Codec: encoding.Delta},
	{B: 128, Codec: encoding.Delta},
	{B: 128, Codec: encoding.Raw},
	PlainParams(),
}

func sortedUnique(r *xhash.RNG, n, maxVal int) []uint32 {
	seen := map[uint32]bool{}
	for len(seen) < n {
		seen[r.Uint32()%uint32(maxVal)] = true
	}
	out := make([]uint32, 0, n)
	for v := range seen {
		out = append(out, v)
	}
	// insertion sort is fine at test sizes
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func slicesEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildAndEnumerate(t *testing.T) {
	r := xhash.NewRNG(1)
	for _, p := range testParams {
		for _, n := range []int{0, 1, 2, 10, 500, 5000} {
			elems := sortedUnique(r, n, 4*n+10)
			tr := Build(p, elems)
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("params %+v n=%d: %v", p, n, err)
			}
			if got := tr.ToSlice(); !slicesEqual(got, elems) {
				t.Fatalf("params %+v n=%d: enumeration mismatch", p, n)
			}
			if tr.Size() != uint64(n) {
				t.Fatalf("params %+v n=%d: Size=%d", p, n, tr.Size())
			}
		}
	}
}

func TestContains(t *testing.T) {
	r := xhash.NewRNG(2)
	for _, p := range testParams {
		elems := sortedUnique(r, 1000, 10_000)
		tr := Build(p, elems)
		in := map[uint32]bool{}
		for _, e := range elems {
			in[e] = true
			if !tr.Contains(e) {
				t.Fatalf("params %+v: missing %d", p, e)
			}
		}
		for i := 0; i < 2000; i++ {
			q := r.Uint32() % 12_000
			if tr.Contains(q) != in[q] {
				t.Fatalf("params %+v: Contains(%d) = %v", p, q, !in[q])
			}
		}
	}
}

func TestFirst(t *testing.T) {
	for _, p := range testParams {
		if _, ok := New(p).First(); ok {
			t.Fatal("empty tree has First")
		}
		tr := Build(p, []uint32{7, 9, 100})
		if f, ok := tr.First(); !ok || f != 7 {
			t.Fatalf("First = %d,%v", f, ok)
		}
	}
}

func TestInsertDeleteModel(t *testing.T) {
	for _, p := range testParams {
		r := xhash.NewRNG(3)
		tr := New(p)
		model := map[uint32]bool{}
		for step := 0; step < 1500; step++ {
			e := r.Uint32() % 400
			if r.Intn(3) != 0 {
				tr = tr.Insert(e)
				model[e] = true
			} else {
				tr = tr.Delete(e)
				delete(model, e)
			}
			if step%300 == 0 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("params %+v step %d: %v", p, step, err)
				}
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("params %+v: %v", p, err)
		}
		if int(tr.Size()) != len(model) {
			t.Fatalf("params %+v: size %d, want %d", p, tr.Size(), len(model))
		}
		for e := range model {
			if !tr.Contains(e) {
				t.Fatalf("params %+v: lost %d", p, e)
			}
		}
	}
}

func TestPersistenceAcrossVersions(t *testing.T) {
	p := Params{B: 4, Codec: encoding.Delta}
	tr := New(p)
	var versions []Set
	for i := uint32(0); i < 300; i++ {
		versions = append(versions, tr)
		tr = tr.Insert(i)
	}
	for i, v := range versions {
		if v.Size() != uint64(i) {
			t.Fatalf("version %d mutated: size %d", i, v.Size())
		}
		if i > 0 && !v.Contains(uint32(i-1)) {
			t.Fatalf("version %d lost element", i)
		}
		if v.Contains(uint32(i)) {
			t.Fatalf("version %d sees future element", i)
		}
	}
}

func TestSplitProperty(t *testing.T) {
	for _, p := range testParams {
		p := p
		if err := quick.Check(func(seed uint64, kRaw uint16) bool {
			r := xhash.NewRNG(seed)
			elems := sortedUnique(r, int(seed%200), 600)
			k := uint32(kRaw % 700)
			tr := Build(p, elems)
			l, found, rr := tr.Split(k)
			if err := l.CheckInvariants(); err != nil {
				return false
			}
			if err := rr.CheckInvariants(); err != nil {
				return false
			}
			var wantL, wantR []uint32
			wantFound := false
			for _, e := range elems {
				switch {
				case e < k:
					wantL = append(wantL, e)
				case e > k:
					wantR = append(wantR, e)
				default:
					wantFound = true
				}
			}
			return slicesEqual(l.ToSlice(), wantL) &&
				slicesEqual(rr.ToSlice(), wantR) &&
				found == wantFound
		}, &quick.Config{MaxCount: 120}); err != nil {
			t.Fatalf("params %+v: %v", p, err)
		}
	}
}

func setOf(elems []uint32) map[uint32]bool {
	m := make(map[uint32]bool, len(elems))
	for _, e := range elems {
		m[e] = true
	}
	return m
}

func TestSetAlgebraProperty(t *testing.T) {
	for _, p := range testParams {
		p := p
		if err := quick.Check(func(s1, s2 uint64) bool {
			r1, r2 := xhash.NewRNG(s1), xhash.NewRNG(s2)
			ea := sortedUnique(r1, int(s1%300), 900)
			eb := sortedUnique(r2, int(s2%300), 900)
			a, b := Build(p, ea), Build(p, eb)
			u := a.Union(b)
			d := a.Difference(b)
			in := a.Intersect(b)
			for _, tr := range []Set{u, d, in} {
				if err := tr.CheckInvariants(); err != nil {
					return false
				}
			}
			sa, sb := setOf(ea), setOf(eb)
			var wantU, wantD, wantI []uint32
			for x := uint32(0); x < 900; x++ {
				if sa[x] || sb[x] {
					wantU = append(wantU, x)
				}
				if sa[x] && !sb[x] {
					wantD = append(wantD, x)
				}
				if sa[x] && sb[x] {
					wantI = append(wantI, x)
				}
			}
			return slicesEqual(u.ToSlice(), wantU) &&
				slicesEqual(d.ToSlice(), wantD) &&
				slicesEqual(in.ToSlice(), wantI)
		}, &quick.Config{MaxCount: 80}); err != nil {
			t.Fatalf("params %+v: %v", p, err)
		}
	}
}

func TestUnionCommutative(t *testing.T) {
	p := DefaultParams()
	if err := quick.Check(func(s1, s2 uint64) bool {
		r1, r2 := xhash.NewRNG(s1), xhash.NewRNG(s2)
		a := Build(p, sortedUnique(r1, 200, 2000))
		b := Build(p, sortedUnique(r2, 200, 2000))
		return slicesEqual(a.Union(b).ToSlice(), b.Union(a).ToSlice())
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiInsertDelete(t *testing.T) {
	for _, p := range testParams {
		r := xhash.NewRNG(9)
		base := sortedUnique(r, 800, 5000)
		batch := sortedUnique(r, 300, 5000)
		tr := Build(p, base).MultiInsert(batch)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("params %+v: %v", p, err)
		}
		want := setOf(base)
		for _, e := range batch {
			want[e] = true
		}
		if int(tr.Size()) != len(want) {
			t.Fatalf("params %+v: size after MultiInsert = %d, want %d", p, tr.Size(), len(want))
		}
		tr2 := tr.MultiDelete(batch)
		if err := tr2.CheckInvariants(); err != nil {
			t.Fatalf("params %+v: %v", p, err)
		}
		for _, e := range batch {
			if tr2.Contains(e) {
				t.Fatalf("params %+v: %d survived MultiDelete", p, e)
			}
		}
		for _, e := range base {
			inBatch := false
			for _, x := range batch {
				if x == e {
					inBatch = true
					break
				}
			}
			if !inBatch && !tr2.Contains(e) {
				t.Fatalf("params %+v: MultiDelete removed unrelated %d", p, e)
			}
		}
	}
}

func TestInsertDeleteRoundTripProperty(t *testing.T) {
	p := Params{B: 8, Codec: encoding.Delta}
	if err := quick.Check(func(seed uint64, e uint32) bool {
		r := xhash.NewRNG(seed)
		elems := sortedUnique(r, 100, 1000)
		e %= 1200
		tr := Build(p, elems)
		had := tr.Contains(e)
		tr2 := tr.Insert(e).Delete(e)
		if tr2.Contains(e) {
			return false
		}
		if had {
			return int(tr2.Size()) == len(elems)-1
		}
		return slicesEqual(tr2.ToSlice(), elems)
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	p := Params{B: 4, Codec: encoding.Delta}
	tr := Build(p, []uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	count := 0
	tr.ForEach(func(e uint32) bool {
		count++
		return e < 5
	})
	if count != 5 {
		t.Fatalf("visited %d elements, want 5", count)
	}
}

func TestForEachParCoversAll(t *testing.T) {
	p := DefaultParams()
	r := xhash.NewRNG(12)
	elems := sortedUnique(r, 20_000, 100_000)
	tr := Build(p, elems)
	hits := make(chan uint32, 256)
	go func() {
		tr.ForEachPar(func(e uint32) { hits <- e })
		close(hits)
	}()
	got := map[uint32]int{}
	for e := range hits {
		got[e]++
	}
	if len(got) != len(elems) {
		t.Fatalf("visited %d distinct elements, want %d", len(got), len(elems))
	}
	for e, c := range got {
		if c != 1 {
			t.Fatalf("element %d visited %d times", e, c)
		}
	}
}

func TestChunkSizeDistribution(t *testing.T) {
	// With b = 64, chunks should average close to 64 elements (paper §3.1).
	p := Params{B: 64, Codec: encoding.Delta}
	elems := make([]uint32, 1<<16)
	for i := range elems {
		elems[i] = uint32(i)
	}
	tr := Build(p, elems)
	st := tr.Stats()
	if st.Nodes == 0 {
		t.Fatal("no heads")
	}
	avg := float64(len(elems)) / float64(st.Nodes)
	if avg < 40 || avg > 100 {
		t.Fatalf("average chunk size %.1f, want near 64", avg)
	}
}

func TestStats(t *testing.T) {
	p := DefaultParams()
	elems := make([]uint32, 10_000)
	for i := range elems {
		elems[i] = uint32(2 * i)
	}
	tr := Build(p, elems)
	st := tr.Stats()
	if st.Elements != uint64(len(elems)) {
		t.Fatalf("Elements = %d", st.Elements)
	}
	// Difference encoding of gap-2 runs: ~1 byte per element + headers.
	if st.ChunkBytes > 3*len(elems) {
		t.Fatalf("ChunkBytes = %d too large", st.ChunkBytes)
	}
	plain := Build(PlainParams(), elems)
	ps := plain.Stats()
	if ps.Nodes != len(elems) {
		t.Fatalf("plain mode nodes = %d, want %d", ps.Nodes, len(elems))
	}
	if ps.ChunkBytes != 0 {
		t.Fatalf("plain mode chunk bytes = %d, want 0", ps.ChunkBytes)
	}
}

func TestIntersectSlice(t *testing.T) {
	p := DefaultParams()
	tr := Build(p, []uint32{1, 3, 5, 7, 9, 11})
	got := tr.IntersectSlice([]uint32{2, 3, 4, 5, 12})
	if !slicesEqual(got, []uint32{3, 5}) {
		t.Fatalf("IntersectSlice = %v", got)
	}
}

func TestBuildUnsorted(t *testing.T) {
	p := DefaultParams()
	tr := BuildUnsorted(p, []uint32{5, 1, 5, 3, 1, 9})
	if !slicesEqual(tr.ToSlice(), []uint32{1, 3, 5, 9}) {
		t.Fatalf("BuildUnsorted = %v", tr.ToSlice())
	}
}

func TestParamMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on params mismatch")
		}
	}()
	a := Build(Params{B: 8, Codec: encoding.Delta}, []uint32{1})
	b := Build(Params{B: 16, Codec: encoding.Delta}, []uint32{2})
	a.Union(b)
}

func TestLargeUnionStress(t *testing.T) {
	p := DefaultParams()
	r := xhash.NewRNG(77)
	a := Build(p, sortedUnique(r, 30_000, 200_000))
	b := Build(p, sortedUnique(r, 30_000, 200_000))
	u := a.Union(b)
	if err := u.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := setOf(a.ToSlice())
	for _, e := range b.ToSlice() {
		want[e] = true
	}
	if int(u.Size()) != len(want) {
		t.Fatalf("union size %d, want %d", u.Size(), len(want))
	}
	d := u.Difference(b)
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, e := range b.ToSlice() {
		if d.Contains(e) {
			t.Fatalf("difference kept %d", e)
		}
	}
}

func TestEqualRep(t *testing.T) {
	p := DefaultParams()
	r := xhash.NewRNG(41)
	elems := sortedUnique(r, 500, 5000)
	a := Build(p, elems)
	if !a.EqualRep(a) {
		t.Fatal("tree must equal its own representation")
	}
	b := Build(p, elems)
	if a.EqualRep(b) {
		t.Fatal("independently built trees must not share representation")
	}
	// A functional no-op update (inserting a present element) returns the
	// same representation.
	c := a.Insert(elems[10])
	if !a.EqualRep(c) {
		t.Fatal("no-op insert should return the identical tree")
	}
	// Difference of shared representations is empty without traversal.
	if !a.Difference(c).Empty() {
		t.Fatal("self-difference should be empty")
	}
}

// TestZeroValueTreeReads pins the historical behavior of the zero Tree:
// read operations are safe no-ops (PR 2's interned-config representation
// must resolve it lazily rather than dereference a nil config).
func TestZeroValueTreeReads(t *testing.T) {
	var s Set
	if s.Contains(3) {
		t.Fatal("zero tree contains an element")
	}
	if _, ok := s.Find(3); ok {
		t.Fatal("zero tree finds an element")
	}
	if !s.Empty() || s.Size() != 0 {
		t.Fatal("zero tree not empty")
	}
	s.ForEach(func(uint32) bool { t.Fatal("zero tree enumerated"); return false })
	s.ForEachPar(func(uint32) { t.Fatal("zero tree enumerated (par)") })
	if got := s.ToSlice(); len(got) != 0 {
		t.Fatalf("zero tree ToSlice = %v", got)
	}
	if _, ok := s.First(); ok {
		t.Fatal("zero tree has First")
	}
	var w Tree[float32]
	if _, ok := w.Find(9); ok {
		t.Fatal("zero weighted tree finds an element")
	}
	w.ForEachKV(func(uint32, float32) bool { t.Fatal("zero weighted tree enumerated"); return false })
}
