package ctree

import (
	"testing"

	"repro/internal/xhash"
)

func benchElems(n int, seed uint64) []uint32 {
	r := xhash.NewRNG(seed)
	elems := make([]uint32, 0, n)
	seen := map[uint32]bool{}
	for len(elems) < n {
		v := r.Uint32() % uint32(8*n)
		if !seen[v] {
			seen[v] = true
			elems = append(elems, v)
		}
	}
	sortInPlace(elems)
	return elems
}

func sortInPlace(a []uint32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	elems := benchElems(50_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(DefaultParams(), elems)
	}
}

func BenchmarkFind(b *testing.B) {
	elems := benchElems(50_000, 2)
	t := Build(DefaultParams(), elems)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Contains(elems[i%len(elems)])
	}
}

func BenchmarkUnion(b *testing.B) {
	t1 := Build(DefaultParams(), benchElems(50_000, 3))
	t2 := Build(DefaultParams(), benchElems(50_000, 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t1.Union(t2)
	}
}

func BenchmarkMultiInsertSmallBatch(b *testing.B) {
	t := Build(DefaultParams(), benchElems(100_000, 5))
	batch := benchElems(1_000, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.MultiInsert(batch)
	}
}

func BenchmarkForEach(b *testing.B) {
	t := Build(DefaultParams(), benchElems(100_000, 7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var count int
		t.ForEach(func(uint32) bool { count++; return true })
	}
}
