package ctree

import (
	"testing"

	"repro/internal/xhash"
)

// diffEntry is one emitted element-level change, captured for comparison.
type diffEntry[V Value] struct {
	e    uint32
	kind DiffKind
	oldV V
	newV V
}

// collectDiff runs Diff and captures its emissions in order.
func collectDiff[V Value](t *testing.T, old, new Tree[V]) []diffEntry[V] {
	t.Helper()
	var out []diffEntry[V]
	if !Diff(old, new, func(e uint32, kind DiffKind, oldV, newV V) bool {
		out = append(out, diffEntry[V]{e, kind, oldV, newV})
		return true
	}) {
		t.Fatal("Diff stopped without emit returning false")
	}
	return out
}

// referenceDiff computes the expected diff by full decode-and-compare: both
// trees enumerated into maps, classified per element, emitted in ascending
// order — the oracle Diff's pruned walk must match exactly.
func referenceDiff[V Value](old, new Tree[V]) []diffEntry[V] {
	om := map[uint32]V{}
	nm := map[uint32]V{}
	old.ForEachKV(func(e uint32, v V) bool { om[e] = v; return true })
	new.ForEachKV(func(e uint32, v V) bool { nm[e] = v; return true })
	var ids []uint32
	for e := range om {
		ids = append(ids, e)
	}
	for e := range nm {
		if _, ok := om[e]; !ok {
			ids = append(ids, e)
		}
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	var z V
	var out []diffEntry[V]
	for _, e := range ids {
		ov, inOld := om[e]
		nv, inNew := nm[e]
		switch {
		case inOld && !inNew:
			out = append(out, diffEntry[V]{e, DiffRemoved, ov, z})
		case !inOld && inNew:
			out = append(out, diffEntry[V]{e, DiffAdded, z, nv})
		case ov != nv:
			out = append(out, diffEntry[V]{e, DiffChanged, ov, nv})
		}
	}
	return out
}

func checkDiff[V Value](t *testing.T, old, new Tree[V], ctx string) {
	t.Helper()
	got := collectDiff(t, old, new)
	want := referenceDiff(old, new)
	if len(got) != len(want) {
		t.Fatalf("%s: diff emitted %d entries, reference %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: entry %d: got %+v (%v), want %+v (%v)",
				ctx, i, got[i], got[i].kind, want[i], want[i].kind)
		}
	}
}

func TestDiffBasic(t *testing.T) {
	for _, p := range testParams {
		base := Build(p, []uint32{1, 5, 9, 20, 300})
		ins := base.MultiInsert([]uint32{2, 21, 1000})
		del := base.MultiDelete([]uint32{5, 300})
		checkDiff(t, base, ins, "insert")
		checkDiff(t, ins, base, "insert reversed")
		checkDiff(t, base, del, "delete")
		checkDiff(t, base, base, "identical")
		var zero Set
		checkDiff(t, zero, base, "from zero")
		checkDiff(t, base, zero, "to zero")
		checkDiff(t, zero, zero, "zero vs zero")
	}
}

// TestDiffSharedIsEmpty pins the sharing shortcut: a version diffed against
// itself (or a rebuilt EqualRep twin) emits nothing.
func TestDiffSharedIsEmpty(t *testing.T) {
	for _, p := range testParams {
		tr := Build(p, sortedUnique(xhash.NewRNG(7), 500, 4000))
		if got := collectDiff(t, tr, tr); len(got) != 0 {
			t.Fatalf("params %+v: self-diff emitted %d entries", p, len(got))
		}
	}
}

// TestDiffFuzz replays random insert/delete schedules, diffing every
// adjacent and non-adjacent version pair against the decode-and-compare
// reference, across all parameter configurations.
func TestDiffFuzz(t *testing.T) {
	for _, p := range testParams {
		r := xhash.NewRNG(uint64(p.B)<<8 + 3)
		versions := []Set{Build(p, sortedUnique(r, 200, 2000))}
		for step := 0; step < 12; step++ {
			cur := versions[len(versions)-1]
			var next Set
			if r.Intn(3) == 0 {
				// Delete a random subset of the current elements.
				var sel []uint32
				cur.ForEach(func(e uint32) bool {
					if r.Intn(4) == 0 {
						sel = append(sel, e)
					}
					return true
				})
				next = cur.MultiDelete(sel)
			} else {
				next = cur.MultiInsert(sortedUnique(r, 30+r.Intn(100), 2500))
			}
			versions = append(versions, next)
		}
		for i := range versions {
			for j := range versions {
				if (i+j)%3 == 0 || j == i+1 {
					checkDiff(t, versions[i], versions[j], "fuzz pair")
				}
			}
		}
	}
}

// TestDiffWeightedChanged verifies payload-only updates surface as
// DiffChanged with both values, and that equal payloads that merely moved
// chunks are suppressed.
func TestDiffWeightedChanged(t *testing.T) {
	for _, p := range testParams {
		ids := []uint32{3, 7, 50, 51, 400}
		vals := []float32{1, 2, 3, 4, 5}
		base := BuildKV(p, ids, vals)
		// Re-weight one element, leave the rest identical.
		reweighted := base.Put(50, 99)
		got := collectDiff(t, base, reweighted)
		if len(got) != 1 || got[0].e != 50 || got[0].kind != DiffChanged ||
			got[0].oldV != 3 || got[0].newV != 99 {
			t.Fatalf("params %+v: reweight diff = %+v, want one changed(50, 3→99)", p, got)
		}
		// Put with the same value: representation may move, diff must not.
		same := base.Put(50, 3)
		checkDiff(t, base, same, "same-value put")
	}
}

// TestDiffFuzzWeighted fuzzes keyed payload updates against the reference.
func TestDiffFuzzWeighted(t *testing.T) {
	for _, p := range testParams {
		r := xhash.NewRNG(uint64(p.B) + 99)
		ids := sortedUnique(r, 300, 3000)
		vals := make([]float32, len(ids))
		for i := range vals {
			vals[i] = float32(r.Intn(50))
		}
		versions := []Tree[float32]{BuildKV(p, ids, vals)}
		for step := 0; step < 10; step++ {
			cur := versions[len(versions)-1]
			next := cur
			for k := 0; k < 20; k++ {
				e := uint32(r.Intn(3000))
				switch r.Intn(3) {
				case 0:
					next = next.Put(e, float32(r.Intn(50)))
				case 1:
					next = next.Delete(e)
				default:
					next = next.Insert(e)
				}
			}
			versions = append(versions, next)
		}
		for i := 0; i+1 < len(versions); i++ {
			checkDiff(t, versions[i], versions[i+1], "weighted fuzz")
			checkDiff(t, versions[0], versions[i+1], "weighted fuzz from base")
		}
	}
}

// TestDiffEarlyStop verifies emit returning false stops the walk and
// propagates false.
func TestDiffEarlyStop(t *testing.T) {
	for _, p := range testParams {
		base := Build(p, sortedUnique(xhash.NewRNG(5), 100, 1000))
		next := base.MultiInsert(sortedUnique(xhash.NewRNG(6), 50, 1200))
		total := len(collectDiff(t, base, next))
		if total < 2 {
			t.Fatalf("params %+v: fuzz setup produced %d diffs", p, total)
		}
		for _, stopAt := range []int{1, total / 2, total - 1} {
			n := 0
			if Diff(base, next, func(uint32, DiffKind, struct{}, struct{}) bool {
				n++
				return n < stopAt
			}) {
				t.Fatalf("params %+v: Diff reported completion despite early stop", p)
			}
			if n != stopAt {
				t.Fatalf("params %+v: emitted %d entries after stop at %d", p, n, stopAt)
			}
		}
	}
}
