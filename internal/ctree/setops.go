package ctree

import (
	"math"

	"repro/internal/encoding"
	"repro/internal/parallel"
)

// This file implements the C-tree batch algorithms of §4: Split
// (Algorithm 3), Union (Algorithm 1) with its prefix base case UnionBC
// (Algorithm 2), and the symmetric Difference and Intersect — generalized
// to carry per-element payloads. Payload collisions are resolved by a merge
// policy threaded through the recursion; because the recursion swaps the
// roles of its operands (a prefix-only side is always merged *into* the
// chunked side), every entry point materializes both orientations of the
// policy once — fwd(av, bv) and rev(bv, av) — so no closures are allocated
// inside the recursion.

// Split partitions t around k: left receives elements < k, right elements
// > k, and found reports whether k was present. O(b log n) work w.h.p.
func (t Tree[V]) Split(k uint32) (left Tree[V], found bool, right Tree[V]) {
	l, _, found, r := t.SplitKV(k)
	return l, found, r
}

// SplitKV is Split returning k's payload as well.
func (t Tree[V]) SplitKV(k uint32) (left Tree[V], v V, found bool, right Tree[V]) {
	t = t.norm()
	return t.splitRec(t.root, t.prefix, k)
}

// splitRec implements Algorithm 3 on a (root, prefix) pair.
func (t Tree[V]) splitRec(root *hnode[V], prefix encoding.Chunk, k uint32) (Tree[V], V, bool, Tree[V]) {
	var z V
	if root == nil && prefix.Empty() {
		return t.wrap(nil, nil), z, false, t.wrap(nil, nil)
	}
	if !prefix.Empty() {
		switch {
		case k < prefix.First():
			return t.wrap(nil, nil), z, false, t.wrap(root, prefix)
		case k <= prefix.Last():
			pl, pv, found, pr := encoding.SplitKV[V](t.h.p.Codec, prefix, k)
			return t.wrap(nil, pl), pv, found, t.wrap(root, pr)
		default:
			lt, fv, found, gt := t.splitRec(root, nil, k)
			// lt.prefix is empty when the input prefix is empty, so
			// the left side keeps the original prefix.
			return t.wrap(lt.root, t.chunkUnion(prefix, lt.prefix, nil)), fv, found, gt
		}
	}
	if root == nil {
		return t.wrap(nil, nil), z, false, t.wrap(nil, nil)
	}
	l, h, v, r := root.Left(), root.Key(), root.Val(), root.Right()
	switch {
	case k == h:
		return t.wrap(l, nil), v.hv, true, t.wrap(r, v.c)
	case k < h:
		ll, fv, found, lgt := t.splitRec(l, nil, k)
		return ll, fv, found, t.wrap(t.h.ops.Join(lgt.root, h, v, r), lgt.prefix)
	default: // k > h: k may split h's tail, else recurse right.
		if !v.c.Empty() && k <= v.c.Last() {
			vl, fv, found, vr := encoding.SplitKV[V](t.h.p.Codec, v.c, k)
			return t.wrap(t.h.ops.Join(l, h, tail[V]{hv: v.hv, c: vl}, nil), nil), fv, found, t.wrap(r, vr)
		}
		rl, fv, found, rgt := t.splitRec(r, nil, k)
		return t.wrap(t.h.ops.Join(l, h, v, rl.root), rl.prefix), fv, found, rgt
	}
}

// splitGE partitions t into elements < k and elements >= k (k, unlike in
// Split, is kept on the right with its payload). Used by
// Difference/Intersect to align the other tree against a head boundary.
func (t Tree[V]) splitGE(k uint64) (Tree[V], Tree[V]) {
	if k > math.MaxUint32 {
		return t, t.wrap(nil, nil)
	}
	lo, kv, found, hi := t.SplitKV(uint32(k))
	if !found {
		return lo, hi
	}
	// Re-attach k on the right. k is a head here only if it hashes as one;
	// when it does, hi's prefix is exactly k's tail. When it does not, it
	// must become the first element of hi's prefix.
	kk := uint32(k)
	if t.h.p.isHead(kk) {
		return lo, t.wrap(t.h.ops.Join(nil, kk, tail[V]{hv: kv, c: hi.prefix}, hi.root), nil)
	}
	return lo, t.wrap(hi.root, encoding.InsertKV(t.h.p.Codec, hi.prefix, kk, kv, false))
}

// Union returns the set union of t and u; payloads of elements present in
// both sides keep u's value (last-writer-wins with u as the newer side).
// Parallel; O(b^2 k log(n/k + 1)) expected work (paper Theorem 10.2).
func (t Tree[V]) Union(u Tree[V]) Tree[V] { return t.UnionWith(u, nil) }

// UnionWith is Union with an explicit payload merge policy: elements
// present in both trees store merge(tVal, uVal). A nil merge keeps u's
// value.
func (t Tree[V]) UnionWith(u Tree[V], merge func(tv, uv V) V) Tree[V] {
	t, u = t.norm(), u.norm()
	// Materialize both orientations once. The nil (LWW) policy reuses the
	// function values interned in the per-V config — materializing a
	// generic function reference allocates its dictionary-carrying funcval,
	// which would cost one allocation per Union; a custom policy pays one
	// closure for the reversed direction.
	if merge == nil {
		return t.unionPair(u, t.h.takeNew, t.h.takeOld)
	}
	return t.unionPair(u, merge, func(b, a V) V { return merge(a, b) })
}

// unionPair is the Union entry taking both pre-oriented merge policies
// (rev(bv, av) must equal fwd(av, bv)); it lets callers holding interned
// policy pairs skip the closure UnionWith builds for custom merges.
func (t Tree[V]) unionPair(u Tree[V], fwd, rev func(V, V) V) Tree[V] {
	t.samep(u)
	t, u = t.norm(), u.norm()
	return t.unionRec(t, u, fwd, rev)
}

// unionRec merges a and b with fwd(aVal, bVal) resolving collisions
// (rev is fwd with swapped arguments, threaded so role swaps stay free).
func (t Tree[V]) unionRec(a, b Tree[V], fwd, rev func(V, V) V) Tree[V] {
	switch {
	case a.Empty():
		return b
	case b.Empty():
		return a
	case a.root == nil:
		return t.unionBC(a.prefix, b, fwd, rev)
	case b.root == nil:
		return t.unionBC(b.prefix, a, rev, fwd)
	}
	// Expose b's root and split a around it (Algorithm 1).
	l2, k2, v2, r2 := b.root.Left(), b.root.Key(), b.root.Val(), b.root.Right()
	aLess, ak2, aHasK2, aGr := a.splitRec(a.root, a.prefix, k2)
	hv := v2.hv
	if aHasK2 {
		hv = fwd(ak2, v2.hv)
	}
	// Elements of k2's tail that fall past aGr's first head belong to
	// tails inside aGr; symmetric for aGr's prefix vs r2's first head.
	vl, vr := t.splitChunkBelow(v2.c, smallestHead(t.h.ops, aGr.root))
	pl, pr := t.splitChunkBelow(aGr.prefix, smallestHead(t.h.ops, r2))
	// vl is b-side, pl is a-side: resolve collisions as fwd(aVal, bVal)
	// via the reversed orientation.
	tl := t.chunkUnion(vl, pl, rev)
	var cl, cr Tree[V]
	t.maybePar(a.root, b.root,
		func() { cl = t.unionRec(aLess, t.wrap(l2, b.prefix), fwd, rev) },
		func() { cr = t.unionRec(t.wrap(aGr.root, pr), t.wrap(r2, vr), fwd, rev) },
	)
	// cr's prefix is provably empty (every element of pr and vr follows
	// the first head on the right); merging defensively keeps the
	// invariant even so.
	if !cr.prefix.Empty() {
		tl = t.chunkUnion(tl, cr.prefix, nil)
	}
	return t.wrap(t.h.ops.Join(cl.root, k2, tail[V]{hv: hv, c: tl}, cr.root), cl.prefix)
}

// unionBC merges a prefix-only C-tree (chunk p) into c (Algorithm 2).
// Collisions resolve as mPC(pVal, cVal); mCP is the reverse orientation.
// A prefix-only tree contains no head-hashed elements, so p never collides
// with a head of c.
func (t Tree[V]) unionBC(p encoding.Chunk, c Tree[V], mPC, mCP func(V, V) V) Tree[V] {
	if p.Empty() {
		return c
	}
	if c.root == nil {
		return t.wrap(nil, t.chunkUnion(p, c.prefix, mPC))
	}
	pl, pr := t.splitChunkBelow(p, smallestHead(t.h.ops, c.root))
	prefix := t.chunkUnion(pl, c.prefix, mPC)
	root := c.root
	if !pr.Empty() {
		// Group pr's elements by the head whose tail they join, walking the
		// head tree in order alongside pr's element stream: the cursor
		// advances O(1) amortized per run instead of the former
		// FindLE-per-element probes (O(log n) each). The cursor stack lives
		// in a stack-resident array (weight-balanced height is ~2·log2 n,
		// far under its capacity; append spills to the heap only then).
		var stackBuf [72]*hnode[V]
		cur := newHeadCursor(c.root, stackBuf[:0])
		it := encoding.NewIterKV[V](t.h.p.Codec, pr)
		if uint64(it.Value()) < smallestHead(t.h.ops, c.root) {
			panic("ctree: unionBC element precedes every head")
		}
		for it.Valid() {
			cur.seek(it.Value())
			node := cur.node()
			g := encoding.NewBuilderKV[V](t.h.p.Codec)
			for it.Valid() && uint64(it.Value()) < cur.nextKey() {
				g.AppendKV(it.Value(), it.Payload())
				it.Next()
			}
			// Existing tail is c-side, the group is p-side.
			merged := t.chunkUnion(node.Val().c, g.Chunk(), mCP)
			g.Release()
			root = t.h.ops.Insert(root, node.Key(), tail[V]{hv: node.Val().hv, c: merged}, nil)
		}
	}
	return t.wrap(root, prefix)
}

// headCursor is an explicit-stack in-order cursor over a head tree with
// one node of lookahead, used by unionBC to locate each element's head in
// O(1) amortized instead of a root-to-leaf search.
type headCursor[V Value] struct {
	stack []*hnode[V]
	cur   *hnode[V]
	next  *hnode[V]
}

func newHeadCursor[V Value](root *hnode[V], stack []*hnode[V]) headCursor[V] {
	c := headCursor[V]{stack: stack}
	c.pushLeft(root)
	c.cur = c.pop()
	c.next = c.pop()
	return c
}

func (c *headCursor[V]) pushLeft(n *hnode[V]) {
	for n != nil {
		c.stack = append(c.stack, n)
		n = n.Left()
	}
}

// pop removes and returns the next in-order node, descending into its right
// subtree; nil when exhausted.
func (c *headCursor[V]) pop() *hnode[V] {
	if len(c.stack) == 0 {
		return nil
	}
	n := c.stack[len(c.stack)-1]
	c.stack = c.stack[:len(c.stack)-1]
	c.pushLeft(n.Right())
	return n
}

// node returns the cursor's current head node.
func (c *headCursor[V]) node() *hnode[V] { return c.cur }

// nextKey returns the key of the successor head, or +infinity at the end.
func (c *headCursor[V]) nextKey() uint64 {
	if c.next == nil {
		return math.MaxUint64
	}
	return uint64(c.next.Key())
}

// seek advances the cursor until it rests on the last head <= e. e must be
// >= the current head's key.
func (c *headCursor[V]) seek(e uint32) {
	for c.next != nil && c.next.Key() <= e {
		c.cur = c.next
		c.next = c.pop()
	}
}

// maybePar runs f and g in parallel when both trees are large enough.
func (t Tree[V]) maybePar(a, b *hnode[V], f, g func()) {
	const par = 1 << 9
	if parallel.Procs > 1 && a.Size() > par && b.Size() > par {
		parallel.Do(f, g)
	} else {
		f()
		g()
	}
}

// Difference returns the elements of t not present in u, keeping t's
// payloads. Pointer-identical trees (shared across versions)
// short-circuit to empty.
func (t Tree[V]) Difference(u Tree[V]) Tree[V] {
	t.samep(u)
	t, u = t.norm(), u.norm()
	if t.EqualRep(u) {
		return t.wrap(nil, nil)
	}
	return t.diffRec(t, u)
}

func (t Tree[V]) diffRec(a, b Tree[V]) Tree[V] {
	switch {
	case a.Empty() || b.Empty():
		return a
	case a.root == nil:
		// Filter a's prefix by membership in b, streaming straight from the
		// encoded form into the result encoding.
		out := encoding.NewBuilderKV[V](t.h.p.Codec)
		for it := encoding.NewIterKV[V](t.h.p.Codec, a.prefix); it.Valid(); it.Next() {
			if !b.Contains(it.Value()) {
				out.AppendKV(it.Value(), it.Payload())
			}
		}
		c := out.Chunk()
		out.Release()
		return t.wrap(nil, c)
	case b.root == nil:
		// Remove b's few prefix elements one by one.
		res := a
		t.chunkForEach(b.prefix, func(e uint32) bool {
			res = res.Delete(e)
			return true
		})
		return res
	}
	l1, k1, v1, r1 := a.root.Left(), a.root.Key(), a.root.Val(), a.root.Right()
	bLess, _, foundK1, bGr := b.splitRec(b.root, b.prefix, k1)
	bIn, bHi := bGr.splitGE(smallestHead(t.h.ops, r1))
	var cl, cr Tree[V]
	t.maybePar(a.root, b.root,
		func() { cl = t.diffRec(t.wrap(l1, a.prefix), bLess) },
		func() { cr = t.diffRec(t.wrap(r1, nil), bHi) },
	)
	// Strip from k1's tail the elements deleted by bIn.
	v1p := v1.c
	if !bIn.Empty() && !v1.c.Empty() {
		out := encoding.NewBuilderKV[V](t.h.p.Codec)
		for it := encoding.NewIterKV[V](t.h.p.Codec, v1.c); it.Valid(); it.Next() {
			if !bIn.Contains(it.Value()) {
				out.AppendKV(it.Value(), it.Payload())
			}
		}
		v1p = out.Chunk()
		out.Release()
	}
	mid := t.chunkUnion(v1p, cr.prefix, nil)
	if !foundK1 {
		return t.wrap(t.h.ops.Join(cl.root, k1, tail[V]{hv: v1.hv, c: mid}, cr.root), cl.prefix)
	}
	return t.concat(cl, mid, cr.root)
}

// Intersect returns the elements common to t and u, keeping t's payloads.
func (t Tree[V]) Intersect(u Tree[V]) Tree[V] {
	t.samep(u)
	t, u = t.norm(), u.norm()
	return t.interRec(t, u)
}

func (t Tree[V]) interRec(a, b Tree[V]) Tree[V] {
	switch {
	case a.Empty() || b.Empty():
		return t.wrap(nil, nil)
	case a.root == nil:
		out := encoding.NewBuilderKV[V](t.h.p.Codec)
		for it := encoding.NewIterKV[V](t.h.p.Codec, a.prefix); it.Valid(); it.Next() {
			if b.Contains(it.Value()) {
				out.AppendKV(it.Value(), it.Payload())
			}
		}
		c := out.Chunk()
		out.Release()
		return t.wrap(nil, c)
	case b.root == nil:
		// b is a small prefix: keep a's entries whose ids appear in it.
		// (The roles cannot simply be swapped as in the unweighted code —
		// the result must carry a's payloads.)
		out := encoding.NewBuilderKV[V](t.h.p.Codec)
		t.chunkForEach(b.prefix, func(e uint32) bool {
			if v, ok := a.Find(e); ok {
				out.AppendKV(e, v)
			}
			return true
		})
		c := out.Chunk()
		out.Release()
		return t.wrap(nil, c)
	}
	l1, k1, v1, r1 := a.root.Left(), a.root.Key(), a.root.Val(), a.root.Right()
	bLess, _, foundK1, bGr := b.splitRec(b.root, b.prefix, k1)
	bIn, bHi := bGr.splitGE(smallestHead(t.h.ops, r1))
	var cl, cr Tree[V]
	t.maybePar(a.root, b.root,
		func() { cl = t.interRec(t.wrap(l1, a.prefix), bLess) },
		func() { cr = t.interRec(t.wrap(r1, nil), bHi) },
	)
	var v1p encoding.Chunk
	if !bIn.Empty() && !v1.c.Empty() {
		out := encoding.NewBuilderKV[V](t.h.p.Codec)
		for it := encoding.NewIterKV[V](t.h.p.Codec, v1.c); it.Valid(); it.Next() {
			if bIn.Contains(it.Value()) {
				out.AppendKV(it.Value(), it.Payload())
			}
		}
		v1p = out.Chunk()
		out.Release()
	}
	mid := t.chunkUnion(v1p, cr.prefix, nil)
	if foundK1 {
		return t.wrap(t.h.ops.Join(cl.root, k1, tail[V]{hv: v1.hv, c: mid}, cr.root), cl.prefix)
	}
	return t.concat(cl, mid, cr.root)
}

// concat glues a left C-tree, a middle chunk (elements between cl's last
// element and rroot's first head) and a right head tree whose prefix has
// already been absorbed into mid. It is the C-tree analogue of Join2.
func (t Tree[V]) concat(cl Tree[V], mid encoding.Chunk, rroot *hnode[V]) Tree[V] {
	if cl.root == nil {
		return t.wrap(rroot, t.chunkUnion(cl.prefix, mid, nil))
	}
	root := cl.root
	if !mid.Empty() {
		root = t.appendToLastTail(root, mid)
	}
	return t.wrap(t.h.ops.Join2(root, rroot), cl.prefix)
}

// appendToLastTail merges c into the tail of the rightmost head of root,
// copying the right spine (root must be non-nil; all elements of c follow
// every element of root).
func (t Tree[V]) appendToLastTail(root *hnode[V], c encoding.Chunk) *hnode[V] {
	last := t.h.ops.Last(root)
	merged := tail[V]{hv: last.Val().hv, c: t.chunkUnion(last.Val().c, c, nil)}
	return t.h.ops.Insert(root, last.Key(), merged, nil)
}
