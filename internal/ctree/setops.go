package ctree

import (
	"math"

	"repro/internal/encoding"
	"repro/internal/parallel"
)

// This file implements the C-tree batch algorithms of §4: Split
// (Algorithm 3), Union (Algorithm 1) with its prefix base case UnionBC
// (Algorithm 2), and the symmetric Difference and Intersect.

// Split partitions t around k: left receives elements < k, right elements
// > k, and found reports whether k was present. O(b log n) work w.h.p.
func (t Tree) Split(k uint32) (left Tree, found bool, right Tree) {
	l, found, r := t.splitRec(t.root, t.prefix, k)
	return l, found, r
}

// splitRec implements Algorithm 3 on a (root, prefix) pair.
func (t Tree) splitRec(root *hnode, prefix encoding.Chunk, k uint32) (Tree, bool, Tree) {
	if root == nil && prefix.Empty() {
		return t.wrap(nil, nil), false, t.wrap(nil, nil)
	}
	if !prefix.Empty() {
		switch {
		case k < prefix.First():
			return t.wrap(nil, nil), false, t.wrap(root, prefix)
		case k <= prefix.Last():
			pl, found, pr := prefix.Split(t.p.Codec, k)
			return t.wrap(nil, pl), found, t.wrap(root, pr)
		default:
			lt, found, gt := t.splitRec(root, nil, k)
			// lt.prefix is empty when the input prefix is empty, so
			// the left side keeps the original prefix.
			return t.wrap(lt.root, t.chunkUnion(prefix, lt.prefix)), found, gt
		}
	}
	if root == nil {
		return t.wrap(nil, nil), false, t.wrap(nil, nil)
	}
	l, h, v, r := root.Left(), root.Key(), root.Val(), root.Right()
	switch {
	case k == h:
		return t.wrap(l, nil), true, t.wrap(r, v)
	case k < h:
		ll, found, lgt := t.splitRec(l, nil, k)
		return ll, found, t.wrap(hops.Join(lgt.root, h, v, r), lgt.prefix)
	default: // k > h: k may split h's tail, else recurse right.
		if !v.Empty() && k <= v.Last() {
			vl, found, vr := v.Split(t.p.Codec, k)
			return t.wrap(hops.Join(l, h, vl, nil), nil), found, t.wrap(r, vr)
		}
		rl, found, rgt := t.splitRec(r, nil, k)
		return t.wrap(hops.Join(l, h, v, rl.root), rl.prefix), found, rgt
	}
}

// splitGE partitions t into elements < k and elements >= k (k, unlike in
// Split, is kept on the right). Used by Difference/Intersect to align the
// other tree against a head boundary.
func (t Tree) splitGE(k uint64) (Tree, Tree) {
	if k > math.MaxUint32 {
		return t, t.wrap(nil, nil)
	}
	lo, found, hi := t.Split(uint32(k))
	if !found {
		return lo, hi
	}
	// Re-attach k on the right. k is a head here only if it hashes as one;
	// when it does, hi's prefix is exactly k's tail. When it does not, it
	// must become the first element of hi's prefix.
	kk := uint32(k)
	if t.p.isHead(kk) {
		return lo, t.wrap(hops.Join(nil, kk, hi.prefix, hi.root), nil)
	}
	return lo, t.wrap(hi.root, hi.prefix.Insert(t.p.Codec, kk))
}

// Union returns the set union of t and u. Parallel; O(b^2 k log(n/k + 1))
// expected work (paper Theorem 10.2).
func (t Tree) Union(u Tree) Tree {
	t.samep(u)
	return t.unionRec(t, u)
}

func (t Tree) unionRec(a, b Tree) Tree {
	switch {
	case a.Empty():
		return b
	case b.Empty():
		return a
	case a.root == nil:
		return t.unionBC(a.prefix, b)
	case b.root == nil:
		return t.unionBC(b.prefix, a)
	}
	// Expose b's root and split a around it (Algorithm 1).
	l2, k2, v2, r2 := b.root.Left(), b.root.Key(), b.root.Val(), b.root.Right()
	aLess, _, aGr := a.splitRec(a.root, a.prefix, k2)
	// Elements of k2's tail that fall past aGr's first head belong to
	// tails inside aGr; symmetric for aGr's prefix vs r2's first head.
	vl, vr := t.splitChunkBelow(v2, smallestHead(aGr.root))
	pl, pr := t.splitChunkBelow(aGr.prefix, smallestHead(r2))
	tail := t.chunkUnion(vl, pl)
	var cl, cr Tree
	t.maybePar(a.root, b.root,
		func() { cl = t.unionRec(aLess, t.wrap(l2, b.prefix)) },
		func() { cr = t.unionRec(t.wrap(aGr.root, pr), t.wrap(r2, vr)) },
	)
	// cr's prefix is provably empty (every element of pr and vr follows
	// the first head on the right); merging defensively keeps the
	// invariant even so.
	if !cr.prefix.Empty() {
		tail = t.chunkUnion(tail, cr.prefix)
	}
	return t.wrap(hops.Join(cl.root, k2, tail, cr.root), cl.prefix)
}

// unionBC merges a prefix-only C-tree (chunk p) into c (Algorithm 2).
func (t Tree) unionBC(p encoding.Chunk, c Tree) Tree {
	if p.Empty() {
		return c
	}
	if c.root == nil {
		return t.wrap(nil, t.chunkUnion(p, c.prefix))
	}
	pl, pr := t.splitChunkBelow(p, smallestHead(c.root))
	prefix := t.chunkUnion(pl, c.prefix)
	root := c.root
	if !pr.Empty() {
		// Group pr's elements by the head whose tail they join. The decode
		// is transient, so it goes through the pooled scratch.
		scratch := encoding.GetScratch()
		defer encoding.PutScratch(scratch)
		elems := pr.Decode(t.p.Codec, *scratch)
		*scratch = elems // pool keeps any growth
		for i := 0; i < len(elems); {
			n, ok := hops.FindLE(root, elems[i])
			if !ok {
				panic("ctree: unionBC element precedes every head")
			}
			h := n.Key()
			// Extend the run of elements that share this head.
			j := i + 1
			for j < len(elems) {
				m, _ := hops.FindLE(root, elems[j])
				if m.Key() != h {
					break
				}
				j++
			}
			group := encoding.Encode(t.p.Codec, elems[i:j])
			tail := t.chunkUnion(n.Val(), group)
			root = hops.Insert(root, h, tail, nil)
			i = j
		}
	}
	return t.wrap(root, prefix)
}

// maybePar runs f and g in parallel when both trees are large enough.
func (t Tree) maybePar(a, b *hnode, f, g func()) {
	const par = 1 << 9
	if parallel.Procs > 1 && a.Size() > par && b.Size() > par {
		parallel.Do(f, g)
	} else {
		f()
		g()
	}
}

// Difference returns the elements of t not present in u. Pointer-identical
// trees (shared across versions) short-circuit to empty.
func (t Tree) Difference(u Tree) Tree {
	t.samep(u)
	if t.EqualRep(u) {
		return t.wrap(nil, nil)
	}
	return t.diffRec(t, u)
}

func (t Tree) diffRec(a, b Tree) Tree {
	switch {
	case a.Empty() || b.Empty():
		return a
	case a.root == nil:
		// Filter a's prefix by membership in b, streaming straight from the
		// encoded form into the result encoding.
		out := encoding.NewBuilder(t.p.Codec)
		for it := encoding.NewIter(t.p.Codec, a.prefix); it.Valid(); it.Next() {
			if !b.Contains(it.Value()) {
				out.Append(it.Value())
			}
		}
		c := out.Chunk()
		out.Release()
		return t.wrap(nil, c)
	case b.root == nil:
		// Remove b's few prefix elements one by one.
		res := a
		b.prefix.ForEach(t.p.Codec, func(e uint32) bool {
			res = res.Delete(e)
			return true
		})
		return res
	}
	l1, k1, v1, r1 := a.root.Left(), a.root.Key(), a.root.Val(), a.root.Right()
	bLess, foundK1, bGr := b.splitRec(b.root, b.prefix, k1)
	bIn, bHi := bGr.splitGE(smallestHead(r1))
	var cl, cr Tree
	t.maybePar(a.root, b.root,
		func() { cl = t.diffRec(t.wrap(l1, a.prefix), bLess) },
		func() { cr = t.diffRec(t.wrap(r1, nil), bHi) },
	)
	// Strip from k1's tail the elements deleted by bIn.
	v1p := v1
	if !bIn.Empty() && !v1.Empty() {
		out := encoding.NewBuilder(t.p.Codec)
		for it := encoding.NewIter(t.p.Codec, v1); it.Valid(); it.Next() {
			if !bIn.Contains(it.Value()) {
				out.Append(it.Value())
			}
		}
		v1p = out.Chunk()
		out.Release()
	}
	mid := t.chunkUnion(v1p, cr.prefix)
	if !foundK1 {
		return t.wrap(hops.Join(cl.root, k1, mid, cr.root), cl.prefix)
	}
	return t.concat(cl, mid, cr.root)
}

// Intersect returns the elements common to t and u.
func (t Tree) Intersect(u Tree) Tree {
	t.samep(u)
	return t.interRec(t, u)
}

func (t Tree) interRec(a, b Tree) Tree {
	switch {
	case a.Empty() || b.Empty():
		return t.wrap(nil, nil)
	case a.root == nil:
		out := encoding.NewBuilder(t.p.Codec)
		for it := encoding.NewIter(t.p.Codec, a.prefix); it.Valid(); it.Next() {
			if b.Contains(it.Value()) {
				out.Append(it.Value())
			}
		}
		c := out.Chunk()
		out.Release()
		return t.wrap(nil, c)
	case b.root == nil:
		return t.interRec(t.wrap(nil, b.prefix), a)
	}
	l1, k1, v1, r1 := a.root.Left(), a.root.Key(), a.root.Val(), a.root.Right()
	bLess, foundK1, bGr := b.splitRec(b.root, b.prefix, k1)
	bIn, bHi := bGr.splitGE(smallestHead(r1))
	var cl, cr Tree
	t.maybePar(a.root, b.root,
		func() { cl = t.interRec(t.wrap(l1, a.prefix), bLess) },
		func() { cr = t.interRec(t.wrap(r1, nil), bHi) },
	)
	var v1p encoding.Chunk
	if !bIn.Empty() && !v1.Empty() {
		out := encoding.NewBuilder(t.p.Codec)
		for it := encoding.NewIter(t.p.Codec, v1); it.Valid(); it.Next() {
			if bIn.Contains(it.Value()) {
				out.Append(it.Value())
			}
		}
		v1p = out.Chunk()
		out.Release()
	}
	mid := t.chunkUnion(v1p, cr.prefix)
	if foundK1 {
		return t.wrap(hops.Join(cl.root, k1, mid, cr.root), cl.prefix)
	}
	return t.concat(cl, mid, cr.root)
}

// concat glues a left C-tree, a middle chunk (elements between cl's last
// element and rroot's first head) and a right head tree whose prefix has
// already been absorbed into mid. It is the C-tree analogue of Join2.
func (t Tree) concat(cl Tree, mid encoding.Chunk, rroot *hnode) Tree {
	if cl.root == nil {
		return t.wrap(rroot, t.chunkUnion(cl.prefix, mid))
	}
	root := cl.root
	if !mid.Empty() {
		root = t.appendToLastTail(root, mid)
	}
	return t.wrap(hops.Join2(root, rroot), cl.prefix)
}

// appendToLastTail merges c into the tail of the rightmost head of root,
// copying the right spine (root must be non-nil; all elements of c follow
// every element of root).
func (t Tree) appendToLastTail(root *hnode, c encoding.Chunk) *hnode {
	last := hops.Last(root)
	return hops.Insert(root, last.Key(), t.chunkUnion(last.Val(), c), nil)
}
