package ctree

import (
	"testing"
	"testing/quick"

	"repro/internal/encoding"
	"repro/internal/xhash"
)

// Differential and fuzz tests of the compressed weighted C-tree
// (Tree[float32]) against a plain map/plain-tree reference. The reference
// semantics are those of the old uncompressed weighted graph: Union is
// last-writer-wins with the argument as the newer side, Difference and
// Intersect keep the receiver's payloads.

var weightedParams = []Params{
	{B: 2, Codec: encoding.Delta},
	{B: 8, Codec: encoding.Delta},
	{B: 128, Codec: encoding.Delta},
	{B: 128, Codec: encoding.Raw},
	PlainParams(),
}

// wmodel is the reference: a map from id to weight.
type wmodel map[uint32]float32

func (m wmodel) sortedIDs() []uint32 {
	ids := make([]uint32, 0, len(m))
	for k := range m {
		ids = append(ids, k)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	return ids
}

func (m wmodel) build(p Params) Tree[float32] {
	ids := m.sortedIDs()
	vals := make([]float32, len(ids))
	for i, id := range ids {
		vals[i] = m[id]
	}
	return BuildKV(p, ids, vals)
}

func randomModel(seed uint64, n, maxVal int) wmodel {
	r := xhash.NewRNG(seed)
	m := wmodel{}
	for len(m) < n {
		id := r.Uint32() % uint32(maxVal)
		m[id] = float32(r.Intn(1000)) / 4
	}
	return m
}

// mustMatch fails unless tr enumerates exactly the model's pairs in order.
func mustMatch(t *testing.T, tr Tree[float32], m wmodel, what string) {
	t.Helper()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	if int(tr.Size()) != len(m) {
		t.Fatalf("%s: size %d, want %d", what, tr.Size(), len(m))
	}
	var prev int64 = -1
	ok := true
	tr.ForEachKV(func(e uint32, v float32) bool {
		if int64(e) <= prev {
			t.Errorf("%s: out of order at %d", what, e)
			ok = false
			return false
		}
		prev = int64(e)
		want, in := m[e]
		if !in || want != v {
			t.Errorf("%s: pair (%d, %v), want (%d, %v) present=%v", what, e, v, e, want, in)
			ok = false
			return false
		}
		return true
	})
	if !ok {
		t.FailNow()
	}
}

func TestWeightedBuildFindForEach(t *testing.T) {
	for _, p := range weightedParams {
		for _, n := range []int{0, 1, 5, 300, 4000} {
			m := randomModel(uint64(n)+7, n, 6*n+10)
			tr := m.build(p)
			mustMatch(t, tr, m, "build")
			for id, w := range m {
				if v, ok := tr.Find(id); !ok || v != w {
					t.Fatalf("params %+v: Find(%d) = %v,%v want %v", p, id, v, ok, w)
				}
			}
			r := xhash.NewRNG(99)
			for i := 0; i < 500; i++ {
				q := r.Uint32() % uint32(8*n+20)
				_, want := m[q]
				if _, got := tr.Find(q); got != want {
					t.Fatalf("params %+v: Find(%d) presence = %v", p, q, got)
				}
			}
		}
	}
}

func TestWeightedUnionLWW(t *testing.T) {
	for _, p := range weightedParams {
		p := p
		if err := quick.Check(func(s1, s2 uint64) bool {
			ma := randomModel(s1, int(s1%200), 900)
			mb := randomModel(s2, int(s2%200), 900)
			a, b := ma.build(p), mb.build(p)
			u := a.Union(b)
			want := wmodel{}
			for k, v := range ma {
				want[k] = v
			}
			for k, v := range mb {
				want[k] = v // b (newer side) wins
			}
			mustMatch(t, u, want, "union")
			// Explicit keep-old policy.
			uo := a.UnionWith(b, func(av, _ float32) float32 { return av })
			wantOld := wmodel{}
			for k, v := range mb {
				wantOld[k] = v
			}
			for k, v := range ma {
				wantOld[k] = v
			}
			mustMatch(t, uo, wantOld, "union-keep-old")
			return true
		}, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("params %+v: %v", p, err)
		}
	}
}

func TestWeightedDifferenceIntersect(t *testing.T) {
	for _, p := range weightedParams {
		p := p
		if err := quick.Check(func(s1, s2 uint64) bool {
			ma := randomModel(s1, int(s1%250), 800)
			mb := randomModel(s2, int(s2%250), 800)
			a, b := ma.build(p), mb.build(p)
			d := a.Difference(b)
			wantD := wmodel{}
			for k, v := range ma {
				if _, in := mb[k]; !in {
					wantD[k] = v
				}
			}
			mustMatch(t, d, wantD, "difference")
			in := a.Intersect(b)
			wantI := wmodel{}
			for k, v := range ma {
				if _, ok := mb[k]; ok {
					wantI[k] = v // receiver's payloads survive
				}
			}
			mustMatch(t, in, wantI, "intersect")
			return true
		}, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("params %+v: %v", p, err)
		}
	}
}

func TestWeightedPutDeleteModel(t *testing.T) {
	for _, p := range weightedParams {
		r := xhash.NewRNG(17)
		tr := NewKV[float32](p)
		m := wmodel{}
		for step := 0; step < 1200; step++ {
			e := r.Uint32() % 300
			switch r.Intn(4) {
			case 0:
				tr = tr.Delete(e)
				delete(m, e)
			case 1:
				tr = tr.Insert(e) // zero payload, keeps existing
				if _, ok := m[e]; !ok {
					m[e] = 0
				}
			default:
				w := float32(r.Intn(500)) / 2
				tr = tr.Put(e, w)
				m[e] = w
			}
			if step%300 == 0 {
				mustMatch(t, tr, m, "put/delete")
			}
		}
		mustMatch(t, tr, m, "put/delete final")
	}
}

func TestWeightedSplitKV(t *testing.T) {
	p := Params{B: 8, Codec: encoding.Delta}
	if err := quick.Check(func(seed uint64, kRaw uint16) bool {
		m := randomModel(seed, int(seed%150), 600)
		k := uint32(kRaw % 700)
		tr := m.build(p)
		l, kv, found, r := tr.SplitKV(k)
		wantL, wantR := wmodel{}, wmodel{}
		wantFound := false
		for id, w := range m {
			switch {
			case id < k:
				wantL[id] = w
			case id > k:
				wantR[id] = w
			default:
				wantFound = true
				if kv != w {
					return false
				}
			}
		}
		if found != wantFound {
			return false
		}
		mustMatch(t, l, wantL, "split-left")
		mustMatch(t, r, wantR, "split-right")
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedMultiInsertKV(t *testing.T) {
	p := DefaultParams()
	base := randomModel(3, 500, 4000)
	tr := base.build(p)
	batch := randomModel(4, 200, 4000)
	ids := batch.sortedIDs()
	vals := make([]float32, len(ids))
	for i, id := range ids {
		vals[i] = batch[id]
	}
	// LWW (nil merge): batch overwrites.
	lww := tr.MultiInsertKV(ids, vals, nil)
	want := wmodel{}
	for k, v := range base {
		want[k] = v
	}
	for k, v := range batch {
		want[k] = v
	}
	mustMatch(t, lww, want, "multiinsertkv-lww")
	// Additive merge.
	add := tr.MultiInsertKV(ids, vals, func(old, new float32) float32 { return old + new })
	wantAdd := wmodel{}
	for k, v := range batch {
		wantAdd[k] = v
	}
	for k, v := range base {
		if bv, ok := batch[k]; ok {
			wantAdd[k] = v + bv
		} else {
			wantAdd[k] = v
		}
	}
	mustMatch(t, add, wantAdd, "multiinsertkv-add")
	// Unweighted-compat MultiInsert keeps existing payloads.
	keep := tr.MultiInsert(ids)
	wantKeep := wmodel{}
	for k := range batch {
		wantKeep[k] = 0
	}
	for k, v := range base {
		wantKeep[k] = v
	}
	mustMatch(t, keep, wantKeep, "multiinsert-keeps-old")
}

func TestWeightedPersistence(t *testing.T) {
	p := Params{B: 4, Codec: encoding.Delta}
	tr := NewKV[float32](p)
	var versions []Tree[float32]
	for i := uint32(0); i < 200; i++ {
		versions = append(versions, tr)
		tr = tr.Put(i, float32(i))
	}
	for i, v := range versions {
		if v.Size() != uint64(i) {
			t.Fatalf("version %d mutated: size %d", i, v.Size())
		}
		if i > 0 {
			if w, ok := v.Find(uint32(i - 1)); !ok || w != float32(i-1) {
				t.Fatalf("version %d lost payload", i)
			}
		}
	}
}

// FuzzWeightedSetOps cross-checks the weighted set algebra against the map
// reference on fuzz-generated inputs.
func FuzzWeightedSetOps(f *testing.F) {
	f.Add(uint64(1), uint64(2))
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(31), uint64(1007))
	f.Fuzz(func(t *testing.T, s1, s2 uint64) {
		p := Params{B: 8, Codec: encoding.Delta}
		ma := randomModel(s1, int(s1%180), 700)
		mb := randomModel(s2, int(s2%180), 700)
		a, b := ma.build(p), mb.build(p)
		wantU := wmodel{}
		for k, v := range ma {
			wantU[k] = v
		}
		for k, v := range mb {
			wantU[k] = v
		}
		mustMatch(t, a.Union(b), wantU, "fuzz-union")
		wantD := wmodel{}
		for k, v := range ma {
			if _, in := mb[k]; !in {
				wantD[k] = v
			}
		}
		mustMatch(t, a.Difference(b), wantD, "fuzz-difference")
		wantI := wmodel{}
		for k, v := range ma {
			if _, in := mb[k]; in {
				wantI[k] = v
			}
		}
		mustMatch(t, a.Intersect(b), wantI, "fuzz-intersect")
	})
}

// TestWeightedUnionAllocBound pins the allocation behavior of the weighted
// compressed path: a chunk-sized weighted union must stay within a small
// constant number of allocations per op, like its unweighted twin.
func TestWeightedUnionAllocBound(t *testing.T) {
	p := Params{B: 1 << 10, Codec: encoding.Delta} // single-chunk trees
	ma := randomModel(5, 256, 2000)
	mb := randomModel(6, 256, 2000)
	a, b := ma.build(p), mb.build(p)
	a.Union(b) // warm pools
	// Mostly prefix-only trees with at most a couple of promoted heads:
	// one result chunk for the prefix merge plus a handful of head
	// split/join copies. The bound catches any return of per-element
	// allocations (which would cost hundreds).
	if n := testing.AllocsPerRun(100, func() { a.Union(b) }); n > 12 {
		t.Errorf("weighted small Union allocated %.1f/op, want <= 12", n)
	}
}

func TestWeightedInsertAllocBound(t *testing.T) {
	p := DefaultParams()
	m := randomModel(7, 2000, 20_000)
	tr := m.build(p)
	r := xhash.NewRNG(8)
	tr.Put(r.Uint32()%20_000, 1) // warm pools
	if n := testing.AllocsPerRun(200, func() {
		tr.Put(r.Uint32()%20_000, 3.5)
	}); n > 24 {
		t.Errorf("weighted Put allocated %.1f/op, want <= 24", n)
	}
}
