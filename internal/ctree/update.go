package ctree

import "repro/internal/parallel"

// Insert returns t with e added. O(log n + b) expected work: inserting a
// non-head re-encodes one chunk; inserting a head splits the chunk it lands
// in and copies one root-to-leaf path (the advantage over B-trees shown in
// the paper's Figure 2).
func (t Tree) Insert(e uint32) Tree {
	if t.Contains(e) {
		return t
	}
	if t.p.isHead(e) {
		// Elements greater than e up to the next head become e's tail;
		// Split exposes them as the right part's prefix.
		l, _, r := t.Split(e)
		return t.wrap(hops.Join(l.root, e, r.prefix, r.root), l.prefix)
	}
	// Non-head: e joins the chunk that covers it.
	n, ok := hops.FindLE(t.root, e)
	if !ok {
		return t.wrap(t.root, t.prefix.Insert(t.p.Codec, e))
	}
	return t.wrap(hops.Insert(t.root, n.Key(), n.Val().Insert(t.p.Codec, e), nil), t.prefix)
}

// Delete returns t with e removed (no-op when absent).
func (t Tree) Delete(e uint32) Tree {
	if t.p.isHead(e) {
		l, found, r := t.Split(e)
		if !found {
			return t
		}
		// e's orphaned tail (r's prefix) re-attaches to the preceding
		// chunk.
		return t.concat(l, r.prefix, r.root)
	}
	if t.prefix.Contains(t.p.Codec, e) {
		return t.wrap(t.root, t.prefix.Remove(t.p.Codec, e))
	}
	n, ok := hops.FindLE(t.root, e)
	if !ok || !n.Val().Contains(t.p.Codec, e) {
		return t
	}
	return t.wrap(hops.Insert(t.root, n.Key(), n.Val().Remove(t.p.Codec, e), nil), t.prefix)
}

// MultiInsert returns t with the strictly increasing elements of batch
// added. Implemented as Union with a tree built over the batch (paper §4.1).
func (t Tree) MultiInsert(batch []uint32) Tree {
	if len(batch) == 0 {
		return t
	}
	return t.Union(Build(t.p, batch))
}

// MultiDelete returns t without the strictly increasing elements of batch.
func (t Tree) MultiDelete(batch []uint32) Tree {
	if len(batch) == 0 {
		return t
	}
	return t.Difference(Build(t.p, batch))
}

// BuildUnsorted sorts and dedupes elems (destructively) and builds a C-tree.
func BuildUnsorted(p Params, elems []uint32) Tree {
	parallel.SortUint32(elems)
	return Build(p, parallel.DedupSortedUint32(elems))
}

// Intersection via decode is exported for completeness of the element-level
// API: IntersectSlice intersects the tree with a sorted slice, returning the
// common elements. Useful for triangle-style queries on adjacency sets.
func (t Tree) IntersectSlice(sorted []uint32) []uint32 {
	var out []uint32
	i := 0
	t.ForEach(func(e uint32) bool {
		for i < len(sorted) && sorted[i] < e {
			i++
		}
		if i >= len(sorted) {
			return false
		}
		if sorted[i] == e {
			out = append(out, e)
			i++
		}
		return true
	})
	return out
}
