package ctree

import (
	"repro/internal/encoding"
	"repro/internal/parallel"
)

// Insert returns t with e added carrying the zero payload; if e is already
// present, t is returned unchanged (the stored payload survives). O(log n
// + b) expected work: inserting a non-head re-encodes one chunk; inserting
// a head splits the chunk it lands in and copies one root-to-leaf path
// (the advantage over B-trees shown in the paper's Figure 2).
func (t Tree[V]) Insert(e uint32) Tree[V] {
	if t.Contains(e) {
		return t
	}
	var z V
	return t.Put(e, z)
}

// Put returns t with (e, v) stored, overwriting any existing payload of e.
func (t Tree[V]) Put(e uint32, v V) Tree[V] {
	t = t.norm()
	if t.h.p.isHead(e) {
		// Elements greater than e up to the next head become e's tail;
		// SplitKV exposes them as the right part's prefix (and drops any
		// previous copy of e).
		l, _, _, r := t.SplitKV(e)
		return t.wrap(t.h.ops.Join(l.root, e, tail[V]{hv: v, c: r.prefix}, r.root), l.prefix)
	}
	// Non-head: e joins the chunk that covers it.
	n, ok := t.h.ops.FindLE(t.root, e)
	if !ok {
		return t.wrap(t.root, encoding.InsertKV(t.h.p.Codec, t.prefix, e, v, true))
	}
	nt := tail[V]{hv: n.Val().hv, c: encoding.InsertKV(t.h.p.Codec, n.Val().c, e, v, true)}
	return t.wrap(t.h.ops.Insert(t.root, n.Key(), nt, nil), t.prefix)
}

// Delete returns t with e removed (no-op when absent).
func (t Tree[V]) Delete(e uint32) Tree[V] {
	t = t.norm()
	if t.h.p.isHead(e) {
		l, found, r := t.Split(e)
		if !found {
			return t
		}
		// e's orphaned tail (r's prefix) re-attaches to the preceding
		// chunk.
		return t.concat(l, r.prefix, r.root)
	}
	if encoding.ContainsKV[V](t.h.p.Codec, t.prefix, e) {
		return t.wrap(t.root, encoding.RemoveKV[V](t.h.p.Codec, t.prefix, e))
	}
	n, ok := t.h.ops.FindLE(t.root, e)
	if !ok || !encoding.ContainsKV[V](t.h.p.Codec, n.Val().c, e) {
		return t
	}
	nt := tail[V]{hv: n.Val().hv, c: encoding.RemoveKV[V](t.h.p.Codec, n.Val().c, e)}
	return t.wrap(t.h.ops.Insert(t.root, n.Key(), nt, nil), t.prefix)
}

// MultiInsert returns t with the strictly increasing elements of batch
// added carrying zero payloads; payloads of elements already present are
// preserved. Implemented as Union with a tree built over the batch (paper
// §4.1).
func (t Tree[V]) MultiInsert(batch []uint32) Tree[V] {
	if len(batch) == 0 {
		return t
	}
	t = t.norm()
	// Keep-old with the interned policy pair: no closure per call.
	return t.unionPair(t.BuildLike(batch, nil), t.h.takeOld, t.h.takeNew)
}

// MultiInsertKV returns t with the strictly increasing ids added carrying
// vals; collisions with existing elements store merge(oldVal, newVal), or
// the new value when merge is nil (last-writer-wins).
func (t Tree[V]) MultiInsertKV(ids []uint32, vals []V, merge func(old, new V) V) Tree[V] {
	if len(ids) == 0 {
		return t
	}
	return t.UnionWith(t.BuildLike(ids, vals), merge)
}

// MultiDelete returns t without the strictly increasing elements of batch.
func (t Tree[V]) MultiDelete(batch []uint32) Tree[V] {
	if len(batch) == 0 {
		return t
	}
	return t.Difference(t.BuildLike(batch, nil))
}

// BuildUnsorted sorts and dedupes elems (destructively) and builds an
// id-only C-tree.
func BuildUnsorted(p Params, elems []uint32) Set {
	parallel.SortUint32(elems)
	return Build(p, parallel.DedupSortedUint32(elems))
}

// IntersectSlice intersects the tree with a sorted slice, returning the
// common elements. Useful for triangle-style queries on adjacency sets.
func (t Tree[V]) IntersectSlice(sorted []uint32) []uint32 {
	var out []uint32
	i := 0
	t.ForEach(func(e uint32) bool {
		for i < len(sorted) && sorted[i] < e {
			i++
		}
		if i >= len(sorted) {
			return false
		}
		if sorted[i] == e {
			out = append(out, e)
			i++
		}
		return true
	})
	return out
}
