package ctree

import (
	"repro/internal/encoding"
	"repro/internal/pftree"
)

// DiffKind classifies one element's change between two tree versions. The
// kinds are pftree's — the head-tree diff underneath this one.
type DiffKind = pftree.DiffKind

// Re-exported kinds, so ctree (and aspen) callers need not import pftree.
const (
	DiffAdded   = pftree.DiffAdded
	DiffRemoved = pftree.DiffRemoved
	DiffChanged = pftree.DiffChanged
)

// chunkSameRep reports whether two chunks share backing storage (the chunk
// analogue of Tree.EqualRep): functional updates copy chunks they touch and
// alias the rest, so pointer-equal storage implies identical contents.
func chunkSameRep(a, b encoding.Chunk) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// diffStream accumulates the elements of one side's differing regions, in
// ascending order: the prefix (when its storage moved) followed by every
// differing head and its tail. Region boundaries can move between versions
// — deleting a head folds its tail into the predecessor's chunk or the
// prefix — so membership is only decided by the final merge of the two
// streams, never per region.
type diffStream[V Value] struct {
	ids  []uint32
	vals []V
}

func (s *diffStream[V]) add(e uint32, v V) {
	s.ids = append(s.ids, e)
	s.vals = append(s.vals, v)
}

func (s *diffStream[V]) addChunk(codec encoding.Codec, c encoding.Chunk) {
	encoding.ForEachKV[V](codec, c, func(e uint32, v V) bool {
		s.add(e, v)
		return true
	})
}

// Diff emits every element whose membership or payload differs between old
// and new, in ascending element order, classified as added (new only),
// removed (old only) or changed (present in both with different payloads).
// emit receives the zero V for the side an element is absent from and may
// return false to stop; Diff reports whether it ran to completion.
//
// Cost is O(d·b + log n) expected for d differing elements: the head-tree
// walk skips pointer-shared subtrees (pftree.Ops.Diff) and compares
// surviving heads by chunk storage identity in O(1), so only chunks whose
// storage actually moved — O(diff/b + 1) of them per touched region, each
// of expected size b — are decoded and merged element-wise. A zero-value
// tree on either side adopts the other's parameters, so diffing against an
// absent tree yields every element as added (or removed).
func Diff[V Value](old, new Tree[V], emit func(e uint32, kind DiffKind, oldV, newV V) bool) bool {
	switch {
	case old.h == nil && new.h == nil:
		return true
	case old.h == nil:
		old.h = new.h
	case new.h == nil:
		new.h = old.h
	}
	old.samep(new)
	if old.EqualRep(new) {
		return true
	}
	codec := old.h.p.Codec
	var os, ns diffStream[V]
	if !chunkSameRep(old.prefix, new.prefix) {
		os.addChunk(codec, old.prefix)
		ns.addChunk(codec, new.prefix)
	}
	old.h.ops.Diff(old.root, new.root,
		func(a, b tail[V]) bool { return a.hv == b.hv && chunkSameRep(a.c, b.c) },
		func(h uint32, kind DiffKind, ot, nt tail[V]) bool {
			if kind != DiffAdded {
				os.add(h, ot.hv)
				os.addChunk(codec, ot.c)
			}
			if kind != DiffRemoved {
				ns.add(h, nt.hv)
				ns.addChunk(codec, nt.c)
			}
			return true
		})
	return mergeDiff(os, ns, emit)
}

// mergeDiff merges the two sorted differing-region streams and emits the
// element-level classification. Elements appearing in both streams with
// equal payloads only moved containers (a head deletion redistributing its
// tail, say) and are not a diff.
func mergeDiff[V Value](os, ns diffStream[V], emit func(e uint32, kind DiffKind, oldV, newV V) bool) bool {
	var z V
	i, j := 0, 0
	for i < len(os.ids) && j < len(ns.ids) {
		switch oe, ne := os.ids[i], ns.ids[j]; {
		case oe < ne:
			if !emit(oe, DiffRemoved, os.vals[i], z) {
				return false
			}
			i++
		case oe > ne:
			if !emit(ne, DiffAdded, z, ns.vals[j]) {
				return false
			}
			j++
		default:
			if os.vals[i] != ns.vals[j] && !emit(oe, DiffChanged, os.vals[i], ns.vals[j]) {
				return false
			}
			i++
			j++
		}
	}
	for ; i < len(os.ids); i++ {
		if !emit(os.ids[i], DiffRemoved, os.vals[i], z) {
			return false
		}
	}
	for ; j < len(ns.ids); j++ {
		if !emit(ns.ids[j], DiffAdded, z, ns.vals[j]) {
			return false
		}
	}
	return true
}
