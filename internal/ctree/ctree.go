// Package ctree implements the C-tree (paper §3–§4): a compressed
// purely-functional search tree over uint32 elements. A hash function
// promotes roughly one in B elements to be a head; heads live in a
// purely-functional weight-balanced tree and every head stores, as its value,
// the chunk of non-head elements that follow it (its tail). Non-head elements
// smaller than every head form the prefix. Because head-ness is determined by
// the element's hash, the same element is a head in every tree that contains
// it, which keeps the batch algorithms simple and efficient.
//
// Chunks are stored contiguously and, for the Delta codec, difference-encoded
// with byte codes, giving the space usage and locality of compressed static
// representations while keeping O(log n)-ish purely-functional updates.
//
// Three configurations reproduce the paper's three memory formats:
//
//   - Params{Plain: true}: every element is a head with an empty tail — an
//     ordinary purely-functional tree ("Aspen Uncomp.").
//   - Params{B: b, Codec: encoding.Raw}: chunked, not difference-encoded
//     ("Aspen (No DE)").
//   - Params{B: b, Codec: encoding.Delta}: chunked and difference-encoded
//     ("Aspen (DE)") — the default.
package ctree

import (
	"fmt"
	"math"

	"repro/internal/encoding"
	"repro/internal/pftree"
	"repro/internal/xhash"
)

// Params fixes the chunking parameter and chunk representation of a C-tree.
// Trees combined by set operations must share identical Params.
type Params struct {
	// B is the expected chunk size: an element e is a head iff
	// hash(e) mod B == 0. Must be >= 1.
	B uint32
	// Codec selects the chunk payload encoding.
	Codec encoding.Codec
	// Plain promotes every element to a head, disabling chunking; the
	// result is an ordinary purely-functional tree.
	Plain bool
}

// DefaultB is the chunk size used across the paper's experiments (2^8,
// chosen in Table 5 as the best memory/parallelism tradeoff).
const DefaultB = 1 << 8

// DefaultParams returns the paper's default configuration: b = 2^8 with
// difference encoding.
func DefaultParams() Params { return Params{B: DefaultB, Codec: encoding.Delta} }

// PlainParams returns the uncompressed purely-functional tree configuration.
func PlainParams() Params { return Params{B: 1, Plain: true} }

// isHead reports whether e is promoted to a head under p.
func (p Params) isHead(e uint32) bool {
	return p.Plain || xhash.Mix32(e)%uint64(p.B) == 0
}

// hnode is a node of the head tree: key = head element, value = tail chunk,
// augmented with the total element count (head + tail) of the subtree.
type hnode = pftree.Node[uint32, encoding.Chunk, uint64]

// hops is the shared node-level operation set for head trees.
var hops = &pftree.Ops[uint32, encoding.Chunk, uint64]{
	Cmp: func(a, b uint32) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	},
	Aug: pftree.Augment[uint32, encoding.Chunk, uint64]{
		Zero:      0,
		FromEntry: func(_ uint32, tail encoding.Chunk) uint64 { return 1 + uint64(tail.Count()) },
		Combine:   func(a, b uint64) uint64 { return a + b },
	},
}

// Tree is an immutable C-tree. The zero Tree has unusable Params; construct
// trees with New or Build. All operations return new trees that share
// structure with their inputs, so existing snapshots are never disturbed.
type Tree struct {
	p      Params
	prefix encoding.Chunk
	root   *hnode
}

// New returns an empty C-tree with the given parameters.
func New(p Params) Tree {
	if p.B < 1 {
		panic("ctree: Params.B must be >= 1")
	}
	return Tree{p: p}
}

// Build constructs a C-tree over elems, which must be strictly increasing.
// O(n) work given sorted input; O(b log n) depth w.h.p.
func Build(p Params, elems []uint32) Tree {
	t := New(p)
	if len(elems) == 0 {
		return t
	}
	// Single pass: each element is hashed once (isHead costs a multiply and
	// a divide) and every head's tail segment is encoded in place as soon
	// as the next head is found. The entry slice is sized to the expected
	// head count, n/B, so growth is rare.
	entries := make([]pftree.Entry[uint32, encoding.Chunk], 0, len(elems)/int(p.B)+1)
	head := -1 // index of the pending head
	for i, e := range elems {
		if !p.isHead(e) {
			continue
		}
		if head < 0 {
			t.prefix = encoding.Encode(p.Codec, elems[:i])
		} else {
			entries = append(entries, pftree.Entry[uint32, encoding.Chunk]{
				Key: elems[head],
				Val: encoding.Encode(p.Codec, elems[head+1:i]),
			})
		}
		head = i
	}
	if head < 0 {
		t.prefix = encoding.Encode(p.Codec, elems)
		return t
	}
	entries = append(entries, pftree.Entry[uint32, encoding.Chunk]{
		Key: elems[head],
		Val: encoding.Encode(p.Codec, elems[head+1:]),
	})
	t.root = hops.BuildSorted(entries)
	return t
}

// Params returns the tree's parameters.
func (t Tree) Params() Params { return t.p }

// Size returns the number of elements, in O(1) via augmentation.
func (t Tree) Size() uint64 {
	return uint64(t.prefix.Count()) + hops.AugOf(t.root)
}

// Empty reports whether the tree holds no elements.
func (t Tree) Empty() bool { return t.root == nil && t.prefix.Empty() }

// Contains reports whether e is in the tree. O(log n + b) expected work.
func (t Tree) Contains(e uint32) bool {
	if t.prefix.Contains(t.p.Codec, e) {
		return true
	}
	n, ok := hops.FindLE(t.root, e)
	if !ok {
		return false
	}
	if n.Key() == e {
		return true
	}
	return n.Val().Contains(t.p.Codec, e)
}

// ForEach applies f to every element in increasing order until f returns
// false.
func (t Tree) ForEach(f func(e uint32) bool) {
	stop := false
	t.prefix.ForEach(t.p.Codec, func(e uint32) bool {
		if !f(e) {
			stop = true
		}
		return !stop
	})
	if stop {
		return
	}
	hops.ForEach(t.root, func(h uint32, tail encoding.Chunk) bool {
		if !f(h) {
			return false
		}
		ok := true
		tail.ForEach(t.p.Codec, func(e uint32) bool {
			if !f(e) {
				ok = false
			}
			return ok
		})
		return ok
	})
}

// ForEachPar applies f to every element with tree-node parallelism; within a
// chunk elements are delivered sequentially in order, across chunks the
// order is unspecified. f must be safe for concurrent use.
func (t Tree) ForEachPar(f func(e uint32)) {
	t.prefix.ForEach(t.p.Codec, func(e uint32) bool { f(e); return true })
	hops.ForEachPar(t.root, func(h uint32, tail encoding.Chunk) {
		f(h)
		tail.ForEach(t.p.Codec, func(e uint32) bool { f(e); return true })
	})
}

// ToSlice returns all elements in increasing order.
func (t Tree) ToSlice() []uint32 {
	out := make([]uint32, 0, t.Size())
	t.ForEach(func(e uint32) bool {
		out = append(out, e)
		return true
	})
	return out
}

// First returns the smallest element.
func (t Tree) First() (uint32, bool) {
	if !t.prefix.Empty() {
		return t.prefix.First(), true
	}
	if n := hops.First(t.root); n != nil {
		return n.Key(), true
	}
	return 0, false
}

// Stats describes the memory shape of a C-tree for the space experiments.
type Stats struct {
	// Nodes is the number of head-tree nodes.
	Nodes int
	// ChunkBytes is the total encoded size of all chunks (tails + prefix),
	// including their 12-byte headers.
	ChunkBytes int
	// Elements is the total element count.
	Elements uint64
}

// Add accumulates s2 into s.
func (s *Stats) Add(s2 Stats) {
	s.Nodes += s2.Nodes
	s.ChunkBytes += s2.ChunkBytes
	s.Elements += s2.Elements
}

// Stats walks the tree and returns its memory shape.
func (t Tree) Stats() Stats {
	s := Stats{ChunkBytes: t.prefix.Bytes(), Elements: t.Size()}
	hops.ForEach(t.root, func(_ uint32, tail encoding.Chunk) bool {
		s.Nodes++
		s.ChunkBytes += tail.Bytes()
		return true
	})
	return s
}

// smallestHead returns the smallest head of n, or math.MaxUint64 when n is
// nil (so comparisons treat the empty tree as +infinity).
func smallestHead(n *hnode) uint64 {
	if n == nil {
		return math.MaxUint64
	}
	return uint64(hops.First(n).Key())
}

// splitChunkBelow splits c around bound (an exclusive upper key that is
// either a head value or +infinity). Heads never occur inside chunks, so the
// middle "found" slot is impossible; it is asserted away.
func (t Tree) splitChunkBelow(c encoding.Chunk, bound uint64) (lo, hi encoding.Chunk) {
	if c.Empty() {
		return nil, nil
	}
	if bound > math.MaxUint32 {
		return c, nil
	}
	lo, found, hi := c.Split(t.p.Codec, uint32(bound))
	if found {
		panic("ctree: head value found inside a chunk")
	}
	return lo, hi
}

// chunkUnion merges two chunks under the tree's codec.
func (t Tree) chunkUnion(a, b encoding.Chunk) encoding.Chunk {
	return encoding.Union(t.p.Codec, a, b)
}

// wrap assembles a Tree from parts under t's params.
func (t Tree) wrap(root *hnode, prefix encoding.Chunk) Tree {
	return Tree{p: t.p, prefix: prefix, root: root}
}

// samep panics unless u shares t's parameters.
func (t Tree) samep(u Tree) {
	if t.p != u.p {
		panic(fmt.Sprintf("ctree: parameter mismatch: %+v vs %+v", t.p, u.p))
	}
}

// EqualRep reports whether t and u share the same representation (root node
// and prefix storage). Functional updates leave untouched subtrees
// pointer-identical across versions, so EqualRep lets version-diffing code
// skip them in O(1) — the structural-sharing dividend of persistence.
func (t Tree) EqualRep(u Tree) bool {
	if t.root != u.root || len(t.prefix) != len(u.prefix) {
		return false
	}
	return len(t.prefix) == 0 || &t.prefix[0] == &u.prefix[0]
}
