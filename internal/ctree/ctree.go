// Package ctree implements the C-tree (paper §3–§4): a compressed
// purely-functional search tree over uint32 elements, generic over a
// fixed-width per-element payload V. A hash function promotes roughly one
// in B elements to be a head; heads live in a purely-functional
// weight-balanced tree and every head stores, as its value, its own payload
// plus the chunk of non-head elements that follow it (its tail). Non-head
// elements smaller than every head form the prefix. Because head-ness is
// determined by the element's hash, the same element is a head in every
// tree that contains it, which keeps the batch algorithms simple and
// efficient.
//
// Chunks are stored contiguously and, for the Delta codec,
// difference-encoded with byte codes, with each element's value bytes
// interleaved after its gap code — giving the space usage and locality of
// compressed static representations while keeping O(log n)-ish
// purely-functional updates. V = struct{} (the Set alias) is the paper's
// id-only tree and pays zero bytes for the payload; V = float32 is the
// compressed weighted adjacency set the paper defers to future work (§6).
//
// Three configurations reproduce the paper's three memory formats:
//
//   - Params{Plain: true}: every element is a head with an empty tail — an
//     ordinary purely-functional tree ("Aspen Uncomp.").
//   - Params{B: b, Codec: encoding.Raw}: chunked, not difference-encoded
//     ("Aspen (No DE)").
//   - Params{B: b, Codec: encoding.Delta}: chunked and difference-encoded
//     ("Aspen (DE)") — the default.
package ctree

import (
	"fmt"
	"math"
	"reflect"
	"sync"

	"repro/internal/encoding"
	"repro/internal/pftree"
	"repro/internal/xhash"
)

// Value is the payload constraint re-exported from encoding: a fixed-width,
// pointer-free, comparable type.
type Value = encoding.Value

// Params fixes the chunking parameter and chunk representation of a C-tree.
// Trees combined by set operations must share identical Params.
type Params struct {
	// B is the expected chunk size: an element e is a head iff
	// hash(e) mod B == 0. Must be >= 1.
	B uint32
	// Codec selects the chunk payload encoding.
	Codec encoding.Codec
	// Plain promotes every element to a head, disabling chunking; the
	// result is an ordinary purely-functional tree.
	Plain bool
}

// DefaultB is the chunk size used across the paper's experiments (2^8,
// chosen in Table 5 as the best memory/parallelism tradeoff).
const DefaultB = 1 << 8

// DefaultParams returns the paper's default configuration: b = 2^8 with
// difference encoding.
func DefaultParams() Params { return Params{B: DefaultB, Codec: encoding.Delta} }

// PlainParams returns the uncompressed purely-functional tree configuration.
func PlainParams() Params { return Params{B: 1, Plain: true} }

// isHead reports whether e is promoted to a head under p.
func (p Params) isHead(e uint32) bool {
	return p.Plain || xhash.Mix32(e)%uint64(p.B) == 0
}

// tail is a head's stored value: the head element's own payload plus the
// encoded chunk of the non-head elements that follow it.
type tail[V Value] struct {
	hv V
	c  encoding.Chunk
}

// hnode is a node of the head tree: key = head element, value = tail,
// augmented with the total element count (head + tail) of the subtree.
type hnode[V Value] = pftree.Node[uint32, tail[V], uint64]

// hopsT is the node-level operation set of a head tree.
type hopsT[V Value] = pftree.Ops[uint32, tail[V], uint64]

func cmpU32(a, b uint32) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func addU64(a, b uint64) uint64 { return a + b }

// config bundles everything trees of one (payload type, Params) class
// share: the parameters, the head-tree operation table, and the two
// canonical merge-policy function values. Configs are interned, so a Tree
// carries a single pointer (keeping the struct at PR-1's size — the values
// stored per vertex-tree node are copied and GC-scanned constantly) and
// parameter equality is pointer equality. Function values referencing
// generic instantiations carry a dictionary pointer and so allocate when
// materialized; interning them keeps the nil-merge (last-writer-wins)
// Union path allocation-free.
type config[V Value] struct {
	p   Params
	ops *hopsT[V]
	// takeNew keeps the second (newer) value, takeOld the first.
	takeNew func(V, V) V
	takeOld func(V, V) V
}

// cfgKey keys the intern table by payload type and parameters.
type cfgKey struct {
	t reflect.Type
	p Params
}

var cfgCache sync.Map // cfgKey -> *config[V]

func cfgFor[V Value](p Params) *config[V] {
	key := cfgKey{t: reflect.TypeFor[V](), p: p}
	if v, ok := cfgCache.Load(key); ok {
		return v.(*config[V])
	}
	c := &config[V]{
		p: p,
		ops: &hopsT[V]{
			Cmp: cmpU32,
			Aug: pftree.Augment[uint32, tail[V], uint64]{
				Zero:      0,
				FromEntry: func(_ uint32, t tail[V]) uint64 { return 1 + uint64(t.c.Count()) },
				Combine:   addU64,
			},
		},
		takeNew: takeSecond[V],
		takeOld: takeFirst[V],
	}
	actual, _ := cfgCache.LoadOrStore(key, c)
	return actual.(*config[V])
}

// Tree is an immutable C-tree mapping uint32 elements to payloads of type
// V. The zero Tree has unusable Params; construct trees with New/NewKV or
// Build/BuildKV. All operations return new trees that share structure with
// their inputs, so existing snapshots are never disturbed.
type Tree[V Value] struct {
	h      *config[V]
	prefix encoding.Chunk
	root   *hnode[V]
}

// Set is the id-only C-tree — the paper's original structure, and the
// representation behind every unweighted Aspen graph.
type Set = Tree[struct{}]

// NewKV returns an empty C-tree over payload type V with the given
// parameters.
func NewKV[V Value](p Params) Tree[V] {
	if p.B < 1 {
		panic("ctree: Params.B must be >= 1")
	}
	return Tree[V]{h: cfgFor[V](p)}
}

// New returns an empty id-only C-tree with the given parameters.
func New(p Params) Set { return NewKV[struct{}](p) }

// ops returns the interned config, resolving the zero-Params config for
// zero-value trees that never went through a constructor (their Params are
// unusable, matching the historical zero Tree).
func (t Tree[V]) ops() *config[V] {
	if t.h != nil {
		return t.h
	}
	return cfgFor[V](Params{})
}

// BuildKV constructs a C-tree over ids (strictly increasing) carrying
// vals (same length, or nil for zero values). O(n) work given sorted
// input; O(b log n) depth w.h.p.
func BuildKV[V Value](p Params, ids []uint32, vals []V) Tree[V] {
	return NewKV[V](p).BuildLike(ids, vals)
}

// BuildLike builds a fresh tree over (ids, vals) sharing t's parameters
// and interned operation table. Batch loops that construct many trees use
// it to skip the per-call table lookup of BuildKV.
func (t Tree[V]) BuildLike(ids []uint32, vals []V) Tree[V] {
	t = Tree[V]{h: t.ops()}
	p := t.h.p
	if len(ids) == 0 {
		return t
	}
	if vals != nil && len(vals) != len(ids) {
		panic("ctree: ids/vals length mismatch")
	}
	// Single pass: each element is hashed once (isHead costs a multiply and
	// a divide) and every head's tail segment is encoded in place as soon
	// as the next head is found. The entry slice is sized to the expected
	// head count, n/B, so growth is rare.
	entries := make([]pftree.Entry[uint32, tail[V]], 0, len(ids)/int(p.B)+1)
	head := -1 // index of the pending head
	for i, e := range ids {
		if !p.isHead(e) {
			continue
		}
		if head < 0 {
			t.prefix = encoding.EncodeKV(p.Codec, ids[:i], valRange(vals, 0, i))
		} else {
			entries = append(entries, pftree.Entry[uint32, tail[V]]{
				Key: ids[head],
				Val: tail[V]{
					hv: valAt(vals, head),
					c:  encoding.EncodeKV(p.Codec, ids[head+1:i], valRange(vals, head+1, i)),
				},
			})
		}
		head = i
	}
	if head < 0 {
		t.prefix = encoding.EncodeKV(p.Codec, ids, vals)
		return t
	}
	entries = append(entries, pftree.Entry[uint32, tail[V]]{
		Key: ids[head],
		Val: tail[V]{
			hv: valAt(vals, head),
			c:  encoding.EncodeKV(p.Codec, ids[head+1:], valRange(vals, head+1, len(ids))),
		},
	})
	t.root = t.h.ops.BuildSorted(entries)
	return t
}

// Build constructs an id-only C-tree over elems, which must be strictly
// increasing.
func Build(p Params, elems []uint32) Set { return BuildKV[struct{}](p, elems, nil) }

// valAt returns vals[i], or the zero value when vals is nil.
func valAt[V Value](vals []V, i int) V {
	if vals == nil {
		var z V
		return z
	}
	return vals[i]
}

// valRange returns vals[lo:hi], staying nil when vals is nil.
func valRange[V Value](vals []V, lo, hi int) []V {
	if vals == nil {
		return nil
	}
	return vals[lo:hi]
}

// Params returns the tree's parameters.
func (t Tree[V]) Params() Params { return t.ops().p }

// Size returns the number of elements, in O(1) via augmentation.
func (t Tree[V]) Size() uint64 {
	return uint64(t.prefix.Count()) + t.root.AugOrZero()
}

// Empty reports whether the tree holds no elements.
func (t Tree[V]) Empty() bool { return t.root == nil && t.prefix.Empty() }

// Contains reports whether e is in the tree. O(log n + b) expected work.
func (t Tree[V]) Contains(e uint32) bool {
	_, ok := t.Find(e)
	return ok
}

// Find returns the payload stored for e. O(log n + b) expected work.
func (t Tree[V]) Find(e uint32) (V, bool) {
	t = t.norm()
	if v, ok := encoding.FindKV[V](t.h.p.Codec, t.prefix, e); ok {
		return v, true
	}
	n, ok := t.ops().ops.FindLE(t.root, e)
	if !ok {
		var z V
		return z, false
	}
	if n.Key() == e {
		return n.Val().hv, true
	}
	return encoding.FindKV[V](t.h.p.Codec, n.Val().c, e)
}

// ForEachKV applies f to every (element, payload) pair in increasing order
// until f returns false.
func (t Tree[V]) ForEachKV(f func(e uint32, v V) bool) {
	t = t.norm()
	stop := false
	encoding.ForEachKV(t.h.p.Codec, t.prefix, func(e uint32, v V) bool {
		if !f(e, v) {
			stop = true
		}
		return !stop
	})
	if stop {
		return
	}
	t.ops().ops.ForEach(t.root, func(h uint32, tl tail[V]) bool {
		if !f(h, tl.hv) {
			return false
		}
		ok := true
		encoding.ForEachKV(t.h.p.Codec, tl.c, func(e uint32, v V) bool {
			if !f(e, v) {
				ok = false
			}
			return ok
		})
		return ok
	})
}

// chunkForEach walks a chunk's ids under the tree's payload width (the
// id-only Chunk.ForEach would mis-parse value bytes as gap codes).
func (t Tree[V]) chunkForEach(c encoding.Chunk, f func(e uint32) bool) bool {
	return encoding.ForEachIDs[V](t.h.p.Codec, c, f)
}

// ForEach applies f to every element in increasing order until f returns
// false.
func (t Tree[V]) ForEach(f func(e uint32) bool) {
	t = t.norm()
	if !t.chunkForEach(t.prefix, f) {
		return
	}
	t.ops().ops.ForEach(t.root, func(h uint32, tl tail[V]) bool {
		if !f(h) {
			return false
		}
		return t.chunkForEach(tl.c, f)
	})
}

// ForEachPar applies f to every element with tree-node parallelism; within
// a chunk elements are delivered sequentially in order, across chunks the
// order is unspecified. f must be safe for concurrent use.
func (t Tree[V]) ForEachPar(f func(e uint32)) {
	t = t.norm()
	t.chunkForEach(t.prefix, func(e uint32) bool { f(e); return true })
	t.ops().ops.ForEachPar(t.root, func(h uint32, tl tail[V]) {
		f(h)
		t.chunkForEach(tl.c, func(e uint32) bool { f(e); return true })
	})
}

// ForEachKVPar is the (element, payload) analogue of ForEachPar.
func (t Tree[V]) ForEachKVPar(f func(e uint32, v V)) {
	t = t.norm()
	encoding.ForEachKV(t.h.p.Codec, t.prefix, func(e uint32, v V) bool { f(e, v); return true })
	t.ops().ops.ForEachPar(t.root, func(h uint32, tl tail[V]) {
		f(h, tl.hv)
		encoding.ForEachKV(t.h.p.Codec, tl.c, func(e uint32, v V) bool { f(e, v); return true })
	})
}

// ToSlice returns all elements in increasing order.
func (t Tree[V]) ToSlice() []uint32 {
	out := make([]uint32, 0, t.Size())
	t.ForEach(func(e uint32) bool {
		out = append(out, e)
		return true
	})
	return out
}

// First returns the smallest element.
func (t Tree[V]) First() (uint32, bool) {
	if !t.prefix.Empty() {
		return t.prefix.First(), true
	}
	if n := t.ops().ops.First(t.root); n != nil {
		return n.Key(), true
	}
	return 0, false
}

// Stats describes the memory shape of a C-tree for the space experiments.
type Stats struct {
	// Nodes is the number of head-tree nodes.
	Nodes int
	// ChunkBytes is the total encoded size of all chunks (tails + prefix),
	// including their 12-byte headers and any payload value bytes.
	ChunkBytes int
	// Elements is the total element count.
	Elements uint64
}

// Add accumulates s2 into s.
func (s *Stats) Add(s2 Stats) {
	s.Nodes += s2.Nodes
	s.ChunkBytes += s2.ChunkBytes
	s.Elements += s2.Elements
}

// Stats walks the tree and returns its memory shape.
func (t Tree[V]) Stats() Stats {
	s := Stats{ChunkBytes: t.prefix.Bytes(), Elements: t.Size()}
	t.ops().ops.ForEach(t.root, func(_ uint32, tl tail[V]) bool {
		s.Nodes++
		s.ChunkBytes += tl.c.Bytes()
		return true
	})
	return s
}

// smallestHead returns the smallest head of n, or math.MaxUint64 when n is
// nil (so comparisons treat the empty tree as +infinity).
func smallestHead[V Value](h *hopsT[V], n *hnode[V]) uint64 {
	if n == nil {
		return math.MaxUint64
	}
	return uint64(h.First(n).Key())
}

// splitChunkBelow splits c around bound (an exclusive upper key that is
// either a head value or +infinity). Heads never occur inside chunks, so
// the middle "found" slot is impossible; it is asserted away.
func (t Tree[V]) splitChunkBelow(c encoding.Chunk, bound uint64) (lo, hi encoding.Chunk) {
	if c.Empty() {
		return nil, nil
	}
	if bound > math.MaxUint32 {
		return c, nil
	}
	lo, _, found, hi := encoding.SplitKV[V](t.h.p.Codec, c, uint32(bound))
	if found {
		panic("ctree: head value found inside a chunk")
	}
	return lo, hi
}

// chunkUnion merges two chunks under the tree's codec; m resolves payload
// collisions as m(aVal, bVal), with nil keeping b's value.
func (t Tree[V]) chunkUnion(a, b encoding.Chunk, m func(av, bv V) V) encoding.Chunk {
	return encoding.UnionKV(t.h.p.Codec, a, b, m)
}

// wrap assembles a Tree from parts under t's params.
func (t Tree[V]) wrap(root *hnode[V], prefix encoding.Chunk) Tree[V] {
	return Tree[V]{h: t.h, prefix: prefix, root: root}
}

// norm returns t with its operation table resolved, so internal recursion
// can rely on t.h being non-nil.
func (t Tree[V]) norm() Tree[V] {
	if t.h == nil {
		t.h = cfgFor[V](Params{})
	}
	return t
}

// samep panics unless u shares t's parameters. Configs are interned per
// (payload, Params), so this is a pointer compare.
func (t Tree[V]) samep(u Tree[V]) {
	if t.ops() != u.ops() {
		panic(fmt.Sprintf("ctree: parameter mismatch: %+v vs %+v", t.Params(), u.Params()))
	}
}

// EqualRep reports whether t and u share the same representation (root node
// and prefix storage). Functional updates leave untouched subtrees
// pointer-identical across versions, so EqualRep lets version-diffing code
// skip them in O(1) — the structural-sharing dividend of persistence.
func (t Tree[V]) EqualRep(u Tree[V]) bool {
	if t.root != u.root || len(t.prefix) != len(u.prefix) {
		return false
	}
	return len(t.prefix) == 0 || &t.prefix[0] == &u.prefix[0]
}

// takeFirst and takeSecond are the canonical merge policies: keep the
// receiver's payload, or keep the argument's (last-writer-wins).
func takeFirst[V Value](a, _ V) V  { return a }
func takeSecond[V Value](_, b V) V { return b }
