package ctree

import (
	"testing"
	"testing/quick"

	"repro/internal/encoding"
	"repro/internal/xhash"
)

// Metamorphic laws over the set algebra: each derives the same set two
// different ways and demands identical enumerations. These catch subtle
// boundary-chunk bugs (orphaned tails, prefix misplacement) that point
// lookups miss.

func mkPair(s1, s2 uint64, p Params) (Set, Set) {
	r1, r2 := xhash.NewRNG(s1), xhash.NewRNG(s2)
	a := Build(p, sortedUnique(r1, 150+int(s1%100), 1200))
	b := Build(p, sortedUnique(r2, 150+int(s2%100), 1200))
	return a, b
}

func TestLawUnionDifference(t *testing.T) {
	// (A ∪ B) \ B == A \ B
	p := Params{B: 8, Codec: encoding.Delta}
	if err := quick.Check(func(s1, s2 uint64) bool {
		a, b := mkPair(s1, s2, p)
		lhs := a.Union(b).Difference(b)
		rhs := a.Difference(b)
		return slicesEqual(lhs.ToSlice(), rhs.ToSlice()) &&
			lhs.CheckInvariants() == nil
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLawIntersectViaDifference(t *testing.T) {
	// A ∩ B == A \ (A \ B)
	p := Params{B: 16, Codec: encoding.Delta}
	if err := quick.Check(func(s1, s2 uint64) bool {
		a, b := mkPair(s1, s2, p)
		lhs := a.Intersect(b)
		rhs := a.Difference(a.Difference(b))
		return slicesEqual(lhs.ToSlice(), rhs.ToSlice())
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLawUnionDecomposition(t *testing.T) {
	// A ∪ B == (A \ B) ∪ (A ∩ B) ∪ (B \ A)
	p := Params{B: 8, Codec: encoding.Delta}
	if err := quick.Check(func(s1, s2 uint64) bool {
		a, b := mkPair(s1, s2, p)
		lhs := a.Union(b)
		rhs := a.Difference(b).Union(a.Intersect(b)).Union(b.Difference(a))
		return slicesEqual(lhs.ToSlice(), rhs.ToSlice())
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLawSplitJoinIdentity(t *testing.T) {
	// Split(A, k) partitions A: left ∪ {k?} ∪ right == A, and rebuilding
	// via Union restores A exactly.
	p := Params{B: 4, Codec: encoding.Delta}
	if err := quick.Check(func(seed uint64, k uint32) bool {
		r := xhash.NewRNG(seed)
		elems := sortedUnique(r, 200, 1500)
		k %= 1600
		a := Build(p, elems)
		l, found, rr := a.Split(k)
		u := l.Union(rr)
		if found {
			u = u.Insert(k)
		}
		return slicesEqual(u.ToSlice(), elems)
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLawMultiInsertIdempotent(t *testing.T) {
	// Inserting a batch twice equals inserting it once.
	p := DefaultParams()
	if err := quick.Check(func(s1, s2 uint64) bool {
		a, b := mkPair(s1, s2, p)
		batch := b.ToSlice()
		once := a.MultiInsert(batch)
		twice := once.MultiInsert(batch)
		return slicesEqual(once.ToSlice(), twice.ToSlice())
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLawDeleteAllYieldsEmpty(t *testing.T) {
	p := Params{B: 8, Codec: encoding.Delta}
	if err := quick.Check(func(seed uint64) bool {
		r := xhash.NewRNG(seed)
		elems := sortedUnique(r, 120, 900)
		a := Build(p, elems)
		return a.Difference(a).Empty() && a.MultiDelete(elems).Empty()
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossParamIndependenceOfContent(t *testing.T) {
	// The same element set must enumerate identically under every
	// parameterization (chunking is representation, not content).
	r := xhash.NewRNG(31)
	elems := sortedUnique(r, 3000, 30_000)
	want := Build(PlainParams(), elems).ToSlice()
	for _, p := range testParams {
		if got := Build(p, elems).ToSlice(); !slicesEqual(got, want) {
			t.Fatalf("params %+v changed content", p)
		}
	}
}
