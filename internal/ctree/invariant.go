package ctree

import (
	"fmt"

	"repro/internal/encoding"
	"repro/internal/pftree"
)

// CheckInvariants verifies the structural invariants of the C-tree:
//
//  1. the head tree is a valid weight-balanced BST with correct element
//     counts in its augmentation;
//  2. every head satisfies the head-hash condition and no chunk element does;
//  3. elements are globally sorted: prefix < first head, and every tail lies
//     strictly between its head and the successor head.
//
// It is O(n) and intended for tests.
func (t Tree[V]) CheckInvariants() error {
	t = t.norm()
	ht := pftree.Wrap(t.h.ops, t.root)
	if err := ht.CheckInvariants(func(a, b uint64) bool { return a == b }); err != nil {
		return err
	}
	if !t.prefix.Empty() {
		if first := t.h.ops.First(t.root); first != nil && t.prefix.Last() >= first.Key() {
			return fmt.Errorf("ctree: prefix reaches past the first head")
		}
	}
	if err := t.checkChunk(t.prefix, "prefix"); err != nil {
		return err
	}
	var prev int64 = -1
	var err error
	t.ForEach(func(e uint32) bool {
		if int64(e) <= prev {
			err = fmt.Errorf("ctree: elements out of order at %d (prev %d)", e, prev)
			return false
		}
		prev = int64(e)
		return true
	})
	if err != nil {
		return err
	}
	t.h.ops.ForEach(t.root, func(h uint32, tl tail[V]) bool {
		if !t.h.p.isHead(h) {
			err = fmt.Errorf("ctree: %d stored as head but does not hash as one", h)
			return false
		}
		if !tl.c.Empty() && tl.c.First() <= h {
			err = fmt.Errorf("ctree: tail of head %d starts at %d", h, tl.c.First())
			return false
		}
		if e := t.checkChunk(tl.c, fmt.Sprintf("tail of %d", h)); e != nil {
			err = e
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	// Tail elements must precede the successor head: global order already
	// checked above via ForEach, which interleaves heads and tails.
	var count uint64
	t.ForEach(func(uint32) bool { count++; return true })
	if count != t.Size() {
		return fmt.Errorf("ctree: Size() = %d but %d elements enumerated", t.Size(), count)
	}
	return nil
}

// checkChunk verifies no chunk element hashes as a head and the chunk
// header matches its payload (decoded under the tree's payload width).
func (t Tree[V]) checkChunk(c encoding.Chunk, what string) error {
	if c.Empty() {
		return nil
	}
	ids, _ := encoding.DecodeKV[V](t.h.p.Codec, c, nil, nil)
	if len(ids) != c.Count() {
		return fmt.Errorf("ctree: %s count header %d != %d decoded", what, c.Count(), len(ids))
	}
	if ids[0] != c.First() || ids[len(ids)-1] != c.Last() {
		return fmt.Errorf("ctree: %s first/last header mismatch", what)
	}
	for _, e := range ids {
		if t.h.p.isHead(e) {
			return fmt.Errorf("ctree: %s contains head-valued element %d", what, e)
		}
	}
	return nil
}
