package ligra

import (
	"testing"
)

// flatCSR is a minimal FlatGraph over static CSR arrays, used to exercise
// the dense-direction scheduling without importing an engine package.
type flatCSR struct {
	offs []int
	nbrs []uint32
	degs []int32
}

func buildFlatCSR(adj [][]uint32) *flatCSR {
	g := &flatCSR{offs: make([]int, len(adj)+1), degs: make([]int32, len(adj))}
	for u, ns := range adj {
		g.offs[u+1] = g.offs[u] + len(ns)
		g.degs[u] = int32(len(ns))
		g.nbrs = append(g.nbrs, ns...)
	}
	return g
}

func (g *flatCSR) Order() int          { return len(g.degs) }
func (g *flatCSR) NumEdges() uint64    { return uint64(len(g.nbrs)) }
func (g *flatCSR) Degree(u uint32) int { return int(g.degs[u]) }
func (g *flatCSR) Degrees() []int32    { return g.degs }
func (g *flatCSR) ForEachNeighbor(u uint32, f func(v uint32) bool) {
	for _, v := range g.nbrs[g.offs[u]:g.offs[u+1]] {
		if !f(v) {
			return
		}
	}
}

// ringAdj builds a ring where every vertex additionally links to a hub
// cluster, giving a skewed degree profile: hubs carry ~n/h edges each.
func ringAdj(n, hubs int) [][]uint32 {
	adj := make([][]uint32, n)
	for u := 0; u < n; u++ {
		adj[u] = append(adj[u], uint32((u+1)%n), uint32((u+n-1)%n))
		h := uint32(u % hubs)
		if uint32(u) != h {
			adj[u] = append(adj[u], h)
			adj[h] = append(adj[h], uint32(u))
		}
	}
	return adj
}

func TestDenseGrainAdaptive(t *testing.T) {
	g := buildFlatCSR(ringAdj(1<<12, 8))
	denseGrainOverride = 0
	grain := denseGrain(g, g.degs)
	if grain < 16 || grain > 4096 {
		t.Fatalf("grain %d outside clamp [16, 4096]", grain)
	}
	// Average degree here is ~4, so the adaptive grain must be much finer
	// than a sparse id space's and coarser than a dense one's.
	dense := &flatCSR{degs: make([]int32, 100)}
	dense.offs = make([]int, 101)
	hi := denseGrain(dense, dense.degs) // m = 0: coarsest
	if hi != 4096 {
		t.Fatalf("zero-edge graph grain = %d, want 4096 (coarsest)", hi)
	}
	if denseGrain(g, nil) != denseGrainFixed {
		t.Fatalf("no degree array must keep the fixed grain %d", denseGrainFixed)
	}
	denseGrainOverride = 256
	if denseGrain(g, g.degs) != 256 {
		t.Fatal("override ignored")
	}
	denseGrainOverride = 0
}

// TestDenseGrainSameResults: the grain is a scheduling knob only — dense
// EdgeMap results must be identical under any grain.
func TestDenseGrainSameResults(t *testing.T) {
	g := buildFlatCSR(ringAdj(1<<10, 4))
	frontier := FromSparse(g.Order(), func() []uint32 {
		ids := make([]uint32, g.Order())
		for i := range ids {
			ids[i] = uint32(i)
		}
		return ids
	}())
	run := func() []uint32 {
		out := EdgeMap(g, frontier,
			func(src, dst uint32) bool { return dst%3 == 0 },
			func(v uint32) bool { return true },
			EdgeMapOpts{})
		s := out.ToSparse().Sparse()
		return s
	}
	denseGrainOverride = 256
	want := run()
	for _, grain := range []int{16, 64, 1024, 4096, 0} {
		denseGrainOverride = grain
		got := run()
		if len(got) != len(want) {
			t.Fatalf("grain %d: %d targets, want %d", grain, len(got), len(want))
		}
		seen := map[uint32]bool{}
		for _, v := range want {
			seen[v] = true
		}
		for _, v := range got {
			if !seen[v] {
				t.Fatalf("grain %d: unexpected target %d", grain, v)
			}
		}
	}
	denseGrainOverride = 0
}

// BenchmarkEdgeMapDenseGrain shows the ROADMAP (o) effect: a full-frontier
// dense EdgeMap under the historical fixed 256 grain versus the adaptive
// m/n-derived grain, on a skewed degree profile where equal-count blocks
// strand the hub block on one worker.
func BenchmarkEdgeMapDenseGrain(b *testing.B) {
	g := buildFlatCSR(ringAdj(1<<16, 16))
	ids := make([]uint32, g.Order())
	for i := range ids {
		ids[i] = uint32(i)
	}
	frontier := FromSparse(g.Order(), ids)
	for _, cfg := range []struct {
		name  string
		grain int
	}{{"fixed256", 256}, {"adaptive", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			denseGrainOverride = cfg.grain
			defer func() { denseGrainOverride = 0 }()
			if cfg.grain == 0 {
				b.Logf("adaptive grain = %d (m/n = %.1f)",
					denseGrain(g, g.degs), float64(g.NumEdges())/float64(g.Order()))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				EdgeMap(g, frontier,
					func(src, dst uint32) bool { return true },
					func(v uint32) bool { return true },
					EdgeMapOpts{})
			}
			b.ReportMetric(float64(g.NumEdges())*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
		})
	}
}
