// Package ligra implements the Ligra processing interface the paper extends
// (§2, §5.1): vertexSubsets, vertexMap and a direction-optimizing edgeMap.
// The primitives are written against a minimal Graph interface so the exact
// same algorithm code runs over Aspen snapshots, Aspen flat snapshots and
// every baseline engine in this repository — mirroring how the paper runs
// one algorithm suite over multiple systems.
//
// Graphs are treated as symmetric (the paper symmetrizes all inputs), so a
// vertex's neighbor list serves as both its out- and in-edges.
package ligra

import (
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
)

// Graph is the minimal traversal interface. Order is the size of the
// vertex-id space (max id + 1); algorithm state arrays are indexed by id.
type Graph interface {
	Order() int
	NumEdges() uint64
	Degree(u uint32) int
	// ForEachNeighbor applies f to u's neighbors until f returns false.
	ForEachNeighbor(u uint32, f func(v uint32) bool)
}

// ParallelNeighborGraph is an optional capability: engines whose adjacency
// structure supports intra-vertex parallelism (Aspen's edge trees) implement
// it and EdgeMap fans out over high-degree vertices. Linked-list engines
// like Stinger structurally cannot (paper §7.5), which is one source of
// Aspen's traversal advantage on skewed graphs.
type ParallelNeighborGraph interface {
	Graph
	// ForEachNeighborPar applies f to every neighbor of u, possibly in
	// parallel; f must be safe for concurrent use.
	ForEachNeighborPar(u uint32, f func(v uint32))
}

// FlatGraph is the §5.1 flat-snapshot capability: engines backed by a dense
// id-indexed view (aspen.FlatSnapshot and friends) expose their degree
// array, and EdgeMap routes both directions through it — O(1) degree access
// without an interface call per vertex, and exact (not estimated)
// work-based granularity in the parallel scheduler, since block boundaries
// can be placed on real degree prefix sums.
type FlatGraph interface {
	Graph
	// Degrees returns the id-indexed degree array, length Order(). Callers
	// must treat it as read-only.
	Degrees() []int32
}

// parDegreeThreshold is the degree above which sparse EdgeMap uses
// intra-vertex parallelism when available.
const parDegreeThreshold = 1 << 12

// VertexSubset is a set of vertex ids with dual sparse/dense representation.
type VertexSubset struct {
	n      int
	sparse []uint32
	dense  []bool
	count  int
	isDen  bool
	// idx lazily caches a sorted copy of sparse for O(log |s|) Contains.
	// It is a pointer so every value copy of the subset shares one index.
	idx *sparseIndex
}

// sparseIndex is the lazily-built sorted membership index of a sparse
// subset. The build happens at most once (sync.Once) on first Contains.
type sparseIndex struct {
	once   sync.Once
	sorted []uint32
}

// FromVertex returns the singleton subset {v} in a universe of size n.
func FromVertex(n int, v uint32) VertexSubset {
	return VertexSubset{n: n, sparse: []uint32{v}, count: 1, idx: &sparseIndex{}}
}

// FromSparse wraps a list of distinct vertex ids.
func FromSparse(n int, ids []uint32) VertexSubset {
	return VertexSubset{n: n, sparse: ids, count: len(ids), idx: &sparseIndex{}}
}

// FromDense wraps a dense membership array; count must equal the number of
// true entries.
func FromDense(flags []bool, count int) VertexSubset {
	return VertexSubset{n: len(flags), dense: flags, count: count, isDen: true}
}

// Empty returns the empty subset in a universe of size n.
func Empty(n int) VertexSubset { return VertexSubset{n: n} }

// Size returns the number of vertices in the subset.
func (s VertexSubset) Size() int { return s.count }

// IsEmpty reports whether the subset is empty.
func (s VertexSubset) IsEmpty() bool { return s.count == 0 }

// Universe returns the universe size n.
func (s VertexSubset) Universe() int { return s.n }

// IsDense reports the current representation.
func (s VertexSubset) IsDense() bool { return s.isDen }

// Contains reports membership. O(1) for dense subsets. Sparse subsets pay a
// one-time O(|s| log |s|) build of a sorted index (shared by all copies of
// the subset, built on first call) and O(log |s|) per lookup afterwards —
// replacing the old O(|s|) linear scan per call.
func (s VertexSubset) Contains(v uint32) bool {
	if s.isDen {
		return int(v) < len(s.dense) && s.dense[v]
	}
	if len(s.sparse) == 0 {
		return false
	}
	if s.idx == nil {
		// Zero-value subsets never went through a constructor; fall back to
		// the scan rather than racing to attach an index to a shared copy.
		return slices.Contains(s.sparse, v)
	}
	s.idx.once.Do(func() {
		if slices.IsSorted(s.sparse) {
			s.idx.sorted = s.sparse
			return
		}
		sorted := slices.Clone(s.sparse)
		parallel.SortUint32(sorted)
		s.idx.sorted = sorted
	})
	_, ok := slices.BinarySearch(s.idx.sorted, v)
	return ok
}

// ToSparse returns the subset in sparse form.
func (s VertexSubset) ToSparse() VertexSubset {
	if !s.isDen {
		return s
	}
	ids := parallel.PackIndices(s.n, func(i int) bool { return s.dense[i] })
	return FromSparse(s.n, ids)
}

// ToDense returns the subset in dense form.
func (s VertexSubset) ToDense() VertexSubset {
	if s.isDen {
		return s
	}
	flags := make([]bool, s.n)
	parallel.For(len(s.sparse), func(i int) { flags[s.sparse[i]] = true })
	return VertexSubset{n: s.n, dense: flags, count: s.count, isDen: true}
}

// ForEach applies f to each member (sparse order or id order).
func (s VertexSubset) ForEach(f func(v uint32)) {
	if s.isDen {
		for v, in := range s.dense {
			if in {
				f(uint32(v))
			}
		}
		return
	}
	for _, v := range s.sparse {
		f(v)
	}
}

// Sparse returns the member ids (converting if needed).
func (s VertexSubset) Sparse() []uint32 { return s.ToSparse().sparse }

// VertexMap applies f to each member of s in parallel.
func VertexMap(s VertexSubset, f func(v uint32)) {
	if s.isDen {
		parallel.For(s.n, func(i int) {
			if s.dense[i] {
				f(uint32(i))
			}
		})
		return
	}
	parallel.ForGrain(len(s.sparse), 128, func(i int) { f(s.sparse[i]) })
}

// VertexFilter returns the members of s satisfying pred.
func VertexFilter(s VertexSubset, pred func(v uint32) bool) VertexSubset {
	sp := s.ToSparse()
	kept := parallel.FilterUint32(sp.sparse, pred)
	return FromSparse(s.n, kept)
}

// EdgeMapOpts tunes EdgeMap.
type EdgeMapOpts struct {
	// NoDense disables direction optimization (used for the fair
	// comparisons against systems without it, Table 11).
	NoDense bool
	// DenseThresholdDiv is the denominator d of the |U| + deg(U) > m/d
	// density test; 0 means the Ligra default of 20.
	DenseThresholdDiv uint64
}

// EdgeMap applies F over edges (u, v) with u in subset U and C(v) true, and
// returns the subset of targets v for which F returned true (§2). F must be
// safe for concurrent calls and, in sparse mode, should claim each target
// atomically (e.g. with a CAS) if it must fire once per vertex — exactly the
// Ligra contract. Direction optimization (§5.1) picks a dense, in-neighbor
// oriented traversal when the frontier is large.
func EdgeMap(g Graph, u VertexSubset, f func(src, dst uint32) bool, c func(v uint32) bool, opts EdgeMapOpts) VertexSubset {
	if u.IsEmpty() {
		return Empty(u.n)
	}
	div := opts.DenseThresholdDiv
	if div == 0 {
		div = 20
	}
	if !opts.NoDense {
		sp := u.ToSparse()
		outDeg := degreeSum(g, sp.sparse)
		if uint64(u.Size())+outDeg > g.NumEdges()/div {
			return edgeMapDense(g, u, f, c)
		}
		u = sp
	}
	return edgeMapSparse(g, u.ToSparse(), f, c)
}

// degreeSum sums the degrees of ids. On a FlatGraph the sum indexes the
// dense degree array directly — no interface call per vertex.
func degreeSum(g Graph, ids []uint32) uint64 {
	if fg, ok := g.(FlatGraph); ok {
		degs := fg.Degrees()
		return parallel.ReduceUint64(len(ids), 0,
			func(i int) uint64 {
				if v := ids[i]; int(v) < len(degs) {
					return uint64(degs[v])
				}
				return 0
			},
			func(a, b uint64) uint64 { return a + b })
	}
	return parallel.ReduceUint64(len(ids), 0,
		func(i int) uint64 { return uint64(g.Degree(ids[i])) },
		func(a, b uint64) uint64 { return a + b })
}

// frontierBlocks partitions the frontier src into up to maxBlocks contiguous
// ranges. With a degree array the boundaries fall on prefix sums of
// (degree + 1) — exact work-based granularity, so one block of hubs does not
// serialize the map while equal-count blocks of leaves sit idle. Without one
// it falls back to equal-count ranges. Returns the block boundary indexes
// (len = blocks + 1).
func frontierBlocks(degs []int32, src []uint32, maxBlocks int) []int {
	nb := maxBlocks
	if nb > len(src) {
		nb = len(src)
	}
	if nb <= 0 {
		return nil
	}
	bounds := make([]int, nb+1)
	bounds[nb] = len(src)
	// Equal-count split when there is no degree array — and when every
	// vertex gets its own block anyway (nb == len(src), i.e. a frontier no
	// larger than the block budget): the work-based partition cannot differ
	// from the trivial one there, so skip the prefix scan. BFS tails and
	// heads hit this every round.
	if degs == nil || nb == 1 || nb == len(src) {
		sz := (len(src) + nb - 1) / nb
		for b := 1; b < nb; b++ {
			bounds[b] = min(b*sz, len(src))
		}
		return bounds
	}
	// Exclusive prefix sums of per-vertex cost (degree + 1: a zero-degree
	// vertex still costs the visit), in pooled scratch so the per-round
	// partitioning stays allocation-free on the EdgeMap hot path.
	wp := workPool.Get().(*[]uint64)
	work := *wp
	if cap(work) < len(src) {
		work = make([]uint64, len(src))
	} else {
		work = work[:len(src)]
	}
	parallel.For(len(src), func(i int) {
		var d uint64
		if v := src[i]; int(v) < len(degs) {
			d = uint64(degs[v])
		}
		work[i] = d + 1
	})
	total := parallel.ScanExclusive(work)
	for b := 1; b < nb; b++ {
		target := total / uint64(nb) * uint64(b)
		bounds[b] = sort.Search(len(src), func(i int) bool { return work[i] >= target })
	}
	*wp = work[:0]
	workPool.Put(wp)
	return bounds
}

// workPool recycles frontierBlocks' prefix-sum scratch (pointers pooled so
// Put does not allocate).
var workPool = sync.Pool{New: func() any { b := make([]uint64, 0, 4096); return &b }}

// edgeMapSparse maps over the out-edges of the frontier, collecting targets.
// On a FlatGraph the frontier is partitioned by exact degree prefix sums
// rather than equal vertex counts (see frontierBlocks).
func edgeMapSparse(g Graph, u VertexSubset, f func(src, dst uint32) bool, c func(v uint32) bool) VertexSubset {
	png, hasPar := g.(ParallelNeighborGraph)
	var degs []int32
	if fg, ok := g.(FlatGraph); ok {
		degs = fg.Degrees()
	}
	src := u.sparse
	bounds := frontierBlocks(degs, src, parallel.Procs*4)
	nb := len(bounds) - 1
	if nb <= 0 {
		return Empty(u.n)
	}
	buffers := make([][]uint32, nb)
	parallel.ForGrain(nb, 1, func(b int) {
		lo, hi := bounds[b], bounds[b+1]
		if lo >= hi {
			return
		}
		var buf []uint32
		for _, s := range src[lo:hi] {
			if hasPar && g.Degree(s) >= parDegreeThreshold {
				// High-degree vertex: fan out within its edge tree
				// and collect targets through a local channel-free
				// mutex (rare path; the threshold keeps it off the
				// common case).
				var mu sync.Mutex
				png.ForEachNeighborPar(s, func(v uint32) {
					if c(v) && f(s, v) {
						mu.Lock()
						buf = append(buf, v)
						mu.Unlock()
					}
				})
				continue
			}
			g.ForEachNeighbor(s, func(v uint32) bool {
				if c(v) && f(s, v) {
					buf = append(buf, v)
				}
				return true
			})
		}
		buffers[b] = buf
	})
	total := 0
	for _, b := range buffers {
		total += len(b)
	}
	out := make([]uint32, 0, total)
	for _, b := range buffers {
		out = append(out, b...)
	}
	return FromSparse(u.n, out)
}

// denseGrainWork is the edge-pull budget one dense-direction block targets
// when a flat degree array is available; denseGrainFixed is the historical
// grain used without one.
const (
	denseGrainWork  = 4096
	denseGrainFixed = 256
)

// denseGrainOverride, when positive, forces a fixed dense grain — a test
// hook so the EdgeMap bench can compare the adaptive choice against the
// old fixed 256 without forking the mapper.
var denseGrainOverride int

// denseGrain picks the dense-direction block size from m/n (ROADMAP (o)).
// The dense scan visits every id slot and pulls ~deg(v) edges from the
// live ones, so expected work per slot is about the average degree: blocks
// of denseGrainWork/(m/n + 1) slots each cost roughly denseGrainWork edge
// pulls, making blocks fine on dense graphs (load balance across heavy
// regions of the degree array) and coarse on sparse id spaces (fewer
// scheduling handoffs per scan). Without a degree array the estimate is
// not worth the two interface calls — the fixed grain stands, as before.
func denseGrain(g Graph, degs []int32) int {
	if denseGrainOverride > 0 {
		return denseGrainOverride
	}
	n := len(degs)
	if n == 0 {
		return denseGrainFixed
	}
	avg := float64(g.NumEdges()) / float64(n)
	grain := int(float64(denseGrainWork) / (avg + 1))
	if grain < 16 {
		return 16
	}
	if grain > 4096 {
		return 4096
	}
	return grain
}

// edgeMapDense scans all vertices v with C(v) true and pulls from their
// in-neighbors (== neighbors on symmetric graphs), stopping early once C(v)
// turns false.
func edgeMapDense(g Graph, u VertexSubset, f func(src, dst uint32) bool, c func(v uint32) bool) VertexSubset {
	ud := u.ToDense()
	var degs []int32
	if fg, ok := g.(FlatGraph); ok {
		degs = fg.Degrees()
	}
	out := make([]bool, ud.n)
	var count atomic.Int64
	parallel.ForGrain(ud.n, denseGrain(g, degs), func(i int) {
		// O(1) degree probe: a vertex with no neighbors cannot pull anything,
		// so skip it before paying the condition and the edge-tree dispatch.
		if degs != nil && i < len(degs) && degs[i] == 0 {
			return
		}
		v := uint32(i)
		if !c(v) {
			return
		}
		g.ForEachNeighbor(v, func(s uint32) bool {
			if ud.dense[s] && f(s, v) {
				if !out[v] {
					out[v] = true
					count.Add(1)
				}
			}
			return c(v)
		})
	})
	return FromDense(out, int(count.Load()))
}

// EdgeCount sums the degrees of the subset (used by tests and schedulers).
func EdgeCount(g Graph, u VertexSubset) uint64 {
	sp := u.ToSparse()
	return degreeSum(g, sp.sparse)
}
