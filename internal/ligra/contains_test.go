package ligra

import (
	"math/rand"
	"testing"
)

// TestSparseContainsUnsorted exercises the lazily-built sorted index on ids
// supplied out of order (as EdgeMap produces them) and on zero-value
// subsets that never went through a constructor.
func TestSparseContainsUnsorted(t *testing.T) {
	ids := []uint32{9, 3, 14, 0, 7, 11}
	s := FromSparse(20, ids)
	member := map[uint32]bool{}
	for _, v := range ids {
		member[v] = true
	}
	for v := uint32(0); v < 20; v++ {
		if s.Contains(v) != member[v] {
			t.Fatalf("Contains(%d) = %v, want %v", v, s.Contains(v), !member[v])
		}
	}
	// The wrapped slice must not be reordered (callers own it).
	if ids[0] != 9 || ids[5] != 11 {
		t.Fatal("Contains mutated the caller's id slice")
	}
	// Copies share the same index and agree.
	cp := s
	for v := uint32(0); v < 20; v++ {
		if cp.Contains(v) != member[v] {
			t.Fatalf("copy Contains(%d) wrong", v)
		}
	}
	var zero VertexSubset
	if zero.Contains(3) {
		t.Fatal("zero subset contains 3")
	}
}

// TestSparseContainsRandom cross-checks the binary-search index against a
// map over random subsets.
func TestSparseContainsRandom(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(500)
		member := map[uint32]bool{}
		var ids []uint32
		for len(ids) < n/2 {
			v := uint32(r.Intn(n))
			if !member[v] {
				member[v] = true
				ids = append(ids, v)
			}
		}
		s := FromSparse(n, ids)
		for v := uint32(0); v < uint32(n); v++ {
			if s.Contains(v) != member[v] {
				t.Fatalf("trial %d: Contains(%d) = %v, want %v", trial, v, s.Contains(v), member[v])
			}
		}
	}
}
