package ligra

import (
	"sync/atomic"
	"testing"
)

// sliceGraph is a trivial adjacency-slice graph for unit-testing the
// primitives without pulling in an engine.
type sliceGraph [][]uint32

func (g sliceGraph) Order() int { return len(g) }

func (g sliceGraph) NumEdges() uint64 {
	var m uint64
	for _, nbrs := range g {
		m += uint64(len(nbrs))
	}
	return m
}

func (g sliceGraph) Degree(u uint32) int { return len(g[u]) }

func (g sliceGraph) ForEachNeighbor(u uint32, f func(v uint32) bool) {
	for _, v := range g[u] {
		if !f(v) {
			return
		}
	}
}

// path5 is 0-1-2-3-4.
var path5 = sliceGraph{{1}, {0, 2}, {1, 3}, {2, 4}, {3}}

func TestVertexSubsetConversions(t *testing.T) {
	s := FromSparse(10, []uint32{2, 5, 7})
	if s.Size() != 3 || s.IsDense() || s.Universe() != 10 {
		t.Fatal("sparse subset misconfigured")
	}
	d := s.ToDense()
	if !d.IsDense() || d.Size() != 3 {
		t.Fatal("dense conversion broken")
	}
	for v := uint32(0); v < 10; v++ {
		want := v == 2 || v == 5 || v == 7
		if d.Contains(v) != want || s.Contains(v) != want {
			t.Fatalf("membership of %d wrong", v)
		}
	}
	back := d.ToSparse()
	if back.Size() != 3 {
		t.Fatal("round trip lost members")
	}
	ids := back.Sparse()
	if len(ids) != 3 || ids[0] != 2 || ids[1] != 5 || ids[2] != 7 {
		t.Fatalf("sparse ids = %v", ids)
	}
}

func TestEmptySubset(t *testing.T) {
	e := Empty(5)
	if !e.IsEmpty() || e.Size() != 0 {
		t.Fatal("Empty not empty")
	}
	out := EdgeMap(path5, e, func(u, v uint32) bool { return true },
		func(v uint32) bool { return true }, EdgeMapOpts{})
	if !out.IsEmpty() {
		t.Fatal("EdgeMap over empty subset must be empty")
	}
}

func TestVertexMapAndFilter(t *testing.T) {
	s := FromSparse(10, []uint32{1, 2, 3, 4})
	var sum atomic.Int64
	VertexMap(s, func(v uint32) { sum.Add(int64(v)) })
	if sum.Load() != 10 {
		t.Fatalf("VertexMap sum = %d", sum.Load())
	}
	f := VertexFilter(s, func(v uint32) bool { return v%2 == 0 })
	if f.Size() != 2 {
		t.Fatalf("filter size = %d", f.Size())
	}
}

func edgeMapOnce(t *testing.T, opts EdgeMapOpts) {
	t.Helper()
	// One BFS step from vertex 2 of the path: targets 1 and 3.
	visited := make([]int32, 5)
	visited[2] = 1
	claim := func(u, v uint32) bool {
		return atomic.CompareAndSwapInt32(&visited[v], 0, 1)
	}
	cond := func(v uint32) bool { return atomic.LoadInt32(&visited[v]) == 0 }
	out := EdgeMap(path5, FromVertex(5, 2), claim, cond, opts)
	if out.Size() != 2 {
		t.Fatalf("frontier size = %d, want 2", out.Size())
	}
	if !out.ToDense().Contains(1) || !out.ToDense().Contains(3) {
		t.Fatal("wrong frontier members")
	}
}

func TestEdgeMapSparse(t *testing.T) { edgeMapOnce(t, EdgeMapOpts{NoDense: true}) }

func TestEdgeMapDense(t *testing.T) {
	// Forcing the dense path: threshold divisor 1 makes everything dense.
	edgeMapOnce(t, EdgeMapOpts{DenseThresholdDiv: 1})
}

func TestEdgeMapDenseMatchesSparse(t *testing.T) {
	// A small complete graph: both modes must produce identical frontiers.
	const n = 16
	g := make(sliceGraph, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				g[u] = append(g[u], uint32(v))
			}
		}
	}
	run := func(opts EdgeMapOpts) []int32 {
		visited := make([]int32, n)
		visited[0] = 1
		frontier := FromVertex(n, 0)
		for !frontier.IsEmpty() {
			frontier = EdgeMap(g, frontier,
				func(u, v uint32) bool { return atomic.CompareAndSwapInt32(&visited[v], 0, 1) },
				func(v uint32) bool { return atomic.LoadInt32(&visited[v]) == 0 },
				opts)
		}
		return visited
	}
	a := run(EdgeMapOpts{NoDense: true})
	b := run(EdgeMapOpts{DenseThresholdDiv: 1})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("visited mismatch at %d", i)
		}
	}
}

func TestEdgeCount(t *testing.T) {
	if got := EdgeCount(path5, FromSparse(5, []uint32{0, 1})); got != 3 {
		t.Fatalf("EdgeCount = %d, want 3", got)
	}
}

func TestForEachSubset(t *testing.T) {
	s := FromSparse(6, []uint32{5, 1})
	var got []uint32
	s.ForEach(func(v uint32) { got = append(got, v) })
	if len(got) != 2 {
		t.Fatalf("ForEach visited %d", len(got))
	}
	d := s.ToDense()
	got = nil
	d.ForEach(func(v uint32) { got = append(got, v) })
	if len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("dense ForEach = %v", got)
	}
}
