package ligra

import (
	"sync/atomic"

	"repro/internal/parallel"
)

// WeightedGraph is the optional weighted-traversal capability: engines
// whose adjacency carries per-edge weights (aspen.WeightedGraph's
// compressed float32 payload) expose them to the algorithm layer through
// ForEachNeighborW, and weighted algorithms (SSSP and friends) run over
// WeightedEdgeMap exactly as their unweighted counterparts run over
// EdgeMap.
type WeightedGraph interface {
	Graph
	// ForEachNeighborW applies f to u's (neighbor, weight) pairs in
	// increasing neighbor order until f returns false.
	ForEachNeighborW(u uint32, f func(v uint32, w float32) bool)
}

// FlatWeightedGraph is the weighted flat-snapshot capability
// (aspen.FlatWeightedSnapshot): a dense id-indexed degree array over a
// weighted adjacency, giving WeightedEdgeMap the same O(1) degree access
// and exact work-based scheduling as FlatGraph gives EdgeMap.
type FlatWeightedGraph interface {
	WeightedGraph
	// Degrees returns the id-indexed degree array, length Order(). Callers
	// must treat it as read-only.
	Degrees() []int32
}

// WeightedEdgeMap applies F over weighted edges (u, v, w) with u in subset
// U and C(v) true, and returns the subset of targets v for which F returned
// true. The contract mirrors EdgeMap (§2): F must be safe for concurrent
// calls and should claim each target atomically if it must fire once per
// vertex. Direction optimization (§5.1) picks a dense, in-neighbor oriented
// traversal when the frontier is large; weights are symmetric on the
// symmetrized inputs this repository uses, so the pulled weight equals the
// pushed one.
func WeightedEdgeMap(g WeightedGraph, u VertexSubset, f func(src, dst uint32, w float32) bool, c func(v uint32) bool, opts EdgeMapOpts) VertexSubset {
	if u.IsEmpty() {
		return Empty(u.n)
	}
	div := opts.DenseThresholdDiv
	if div == 0 {
		div = 20
	}
	if !opts.NoDense {
		sp := u.ToSparse()
		outDeg := degreeSum(g, sp.sparse)
		if uint64(u.Size())+outDeg > g.NumEdges()/div {
			return weightedEdgeMapDense(g, u, f, c)
		}
		u = sp
	}
	return weightedEdgeMapSparse(g, u.ToSparse(), f, c)
}

// weightedEdgeMapSparse maps over the out-edges of the frontier, collecting
// targets. On a FlatWeightedGraph the frontier is partitioned by exact
// degree prefix sums (see frontierBlocks).
func weightedEdgeMapSparse(g WeightedGraph, u VertexSubset, f func(src, dst uint32, w float32) bool, c func(v uint32) bool) VertexSubset {
	var degs []int32
	if fg, ok := g.(FlatWeightedGraph); ok {
		degs = fg.Degrees()
	}
	src := u.sparse
	bounds := frontierBlocks(degs, src, parallel.Procs*4)
	nb := len(bounds) - 1
	if nb <= 0 {
		return Empty(u.n)
	}
	buffers := make([][]uint32, nb)
	parallel.ForGrain(nb, 1, func(b int) {
		lo, hi := bounds[b], bounds[b+1]
		if lo >= hi {
			return
		}
		var buf []uint32
		for _, s := range src[lo:hi] {
			g.ForEachNeighborW(s, func(v uint32, w float32) bool {
				if c(v) && f(s, v, w) {
					buf = append(buf, v)
				}
				return true
			})
		}
		buffers[b] = buf
	})
	total := 0
	for _, b := range buffers {
		total += len(b)
	}
	out := make([]uint32, 0, total)
	for _, b := range buffers {
		out = append(out, b...)
	}
	return FromSparse(u.n, out)
}

// weightedEdgeMapDense scans all vertices v with C(v) true and pulls from
// their in-neighbors (== neighbors on symmetric graphs), stopping early
// once C(v) turns false.
func weightedEdgeMapDense(g WeightedGraph, u VertexSubset, f func(src, dst uint32, w float32) bool, c func(v uint32) bool) VertexSubset {
	ud := u.ToDense()
	var degs []int32
	if fg, ok := g.(FlatWeightedGraph); ok {
		degs = fg.Degrees()
	}
	out := make([]bool, ud.n)
	var count atomic.Int64
	parallel.ForGrain(ud.n, denseGrain(g, degs), func(i int) {
		if degs != nil && i < len(degs) && degs[i] == 0 {
			return
		}
		v := uint32(i)
		if !c(v) {
			return
		}
		g.ForEachNeighborW(v, func(s uint32, w float32) bool {
			if ud.dense[s] && f(s, v, w) {
				if !out[v] {
					out[v] = true
					count.Add(1)
				}
			}
			return c(v)
		})
	})
	return FromDense(out, int(count.Load()))
}
