package ligra

import (
	"sync"
	"sync/atomic"
	"testing"
)

// parSliceGraph augments sliceGraph with intra-vertex parallelism, modelling
// the Aspen capability.
type parSliceGraph struct{ sliceGraph }

func (g parSliceGraph) ForEachNeighborPar(u uint32, f func(v uint32)) {
	var wg sync.WaitGroup
	nbrs := g.sliceGraph[u]
	half := len(nbrs) / 2
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, v := range nbrs[:half] {
			f(v)
		}
	}()
	for _, v := range nbrs[half:] {
		f(v)
	}
	wg.Wait()
}

func TestEdgeMapUsesIntraVertexParallelism(t *testing.T) {
	// One hub with degree above the threshold: the sparse path must take
	// the ForEachNeighborPar branch and still produce an exact frontier.
	const deg = parDegreeThreshold + 100
	g := make(sliceGraph, deg+1)
	hub := uint32(deg)
	for v := uint32(0); v < deg; v++ {
		g[deg] = append(g[deg], v)
		g[v] = []uint32{hub}
	}
	pg := parSliceGraph{g}
	visited := make([]int32, deg+1)
	visited[hub] = 1
	out := EdgeMap(pg, FromVertex(deg+1, hub),
		func(u, v uint32) bool { return atomic.CompareAndSwapInt32(&visited[v], 0, 1) },
		func(v uint32) bool { return atomic.LoadInt32(&visited[v]) == 0 },
		EdgeMapOpts{NoDense: true})
	if out.Size() != deg {
		t.Fatalf("frontier size = %d, want %d", out.Size(), deg)
	}
	seen := map[uint32]bool{}
	for _, v := range out.Sparse() {
		if seen[v] {
			t.Fatalf("duplicate %d in frontier", v)
		}
		seen[v] = true
	}
}

func TestLowDegreeAvoidsParPath(t *testing.T) {
	// Sanity: engines without the capability work identically.
	visited := make([]int32, 5)
	visited[0] = 1
	out := EdgeMap(path5, FromVertex(5, 0),
		func(u, v uint32) bool { return atomic.CompareAndSwapInt32(&visited[v], 0, 1) },
		func(v uint32) bool { return atomic.LoadInt32(&visited[v]) == 0 },
		EdgeMapOpts{NoDense: true})
	if out.Size() != 1 || !out.Contains(1) {
		t.Fatal("path BFS step wrong")
	}
}
