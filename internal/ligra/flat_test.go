package ligra

import (
	"testing"
)

// flatStub is a minimal FlatGraph over explicit adjacency, for exercising
// the degree-array routing without importing aspen (avoids a test-only
// dependency cycle).
type flatStub struct {
	adj  [][]uint32
	degs []int32
	m    uint64
}

func newFlatStub(adj [][]uint32) *flatStub {
	s := &flatStub{adj: adj, degs: make([]int32, len(adj))}
	for u, ns := range adj {
		s.degs[u] = int32(len(ns))
		s.m += uint64(len(ns))
	}
	return s
}

func (s *flatStub) Order() int          { return len(s.adj) }
func (s *flatStub) NumEdges() uint64    { return s.m }
func (s *flatStub) Degree(u uint32) int { return int(s.degs[u]) }
func (s *flatStub) Degrees() []int32    { return s.degs }
func (s *flatStub) ForEachNeighbor(u uint32, f func(v uint32) bool) {
	for _, v := range s.adj[u] {
		if !f(v) {
			return
		}
	}
}

// baseOnly strips the FlatGraph capability from a stub so EdgeMap takes the
// estimated-granularity path over the same graph.
type baseOnly struct{ s *flatStub }

func (b baseOnly) Order() int          { return b.s.Order() }
func (b baseOnly) NumEdges() uint64    { return b.s.NumEdges() }
func (b baseOnly) Degree(u uint32) int { return b.s.Degree(u) }
func (b baseOnly) ForEachNeighbor(u uint32, f func(v uint32) bool) {
	b.s.ForEachNeighbor(u, f)
}

// star returns a hub-and-leaves adjacency plus a chain, a skewed shape that
// makes equal-count frontier blocks maximally unbalanced.
func star(n int) [][]uint32 {
	adj := make([][]uint32, n)
	for i := 1; i < n; i++ {
		adj[0] = append(adj[0], uint32(i))
		adj[i] = append(adj[i], 0)
		if i+1 < n {
			adj[i] = append(adj[i], uint32(i+1))
			adj[i+1] = append(adj[i+1], uint32(i))
		}
	}
	return adj
}

// TestFrontierBlocksInvariants: boundaries must be monotone, cover the
// frontier exactly, and (with degrees) place the hub in its own ballpark.
func TestFrontierBlocksInvariants(t *testing.T) {
	s := newFlatStub(star(500))
	src := make([]uint32, s.Order())
	for i := range src {
		src[i] = uint32(i)
	}
	for _, degs := range [][]int32{nil, s.degs} {
		for _, maxBlocks := range []int{1, 3, 8, 64, 1000} {
			bounds := frontierBlocks(degs, src, maxBlocks)
			if bounds[0] != 0 || bounds[len(bounds)-1] != len(src) {
				t.Fatalf("bounds do not cover the frontier: %v", bounds[:min(len(bounds), 8)])
			}
			for i := 1; i < len(bounds); i++ {
				if bounds[i] < bounds[i-1] {
					t.Fatalf("non-monotone bounds at %d", i)
				}
			}
		}
	}
	// Exact work split: with the hub at index 0 carrying half the edges, a
	// work-based split must cut the rest into thin slices, i.e. the first
	// boundary lands right after the hub rather than at len/blocks.
	bounds := frontierBlocks(s.degs, src, 8)
	if bounds[1] > len(src)/8 {
		t.Fatalf("work-based split ignored the hub: first boundary %d", bounds[1])
	}
}

// TestEdgeMapFlatMatchesBase: routing through the degree array must not
// change EdgeMap results in either direction.
func TestEdgeMapFlatMatchesBase(t *testing.T) {
	s := newFlatStub(star(300))
	frontier := FromSparse(s.Order(), []uint32{0, 5, 17, 120})
	visit := func(src, dst uint32) bool { return true }
	cond := func(v uint32) bool { return v%3 != 1 }
	for _, opts := range []EdgeMapOpts{{}, {NoDense: true}, {DenseThresholdDiv: 1}} {
		a := EdgeMap(s, frontier, visit, cond, opts).Sparse()
		b := EdgeMap(baseOnly{s}, frontier, visit, cond, opts).Sparse()
		am := map[uint32]int{}
		bm := map[uint32]int{}
		for _, v := range a {
			am[v]++
		}
		for _, v := range b {
			bm[v]++
		}
		if len(am) != len(bm) {
			t.Fatalf("opts=%+v: flat and base disagree (%d vs %d targets)", opts, len(am), len(bm))
		}
		for v := range am {
			if _, ok := bm[v]; !ok {
				t.Fatalf("opts=%+v: flat-only target %d", opts, v)
			}
		}
	}
}
