package xhash

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64Bijective(t *testing.T) {
	// Distinct inputs must map to distinct outputs (spot-check a window).
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 1_000_00; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d) == %#x", i, prev, h)
		}
		seen[h] = i
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	const trials = 4096
	var totalFlips, totalBits int
	r := NewRNG(7)
	for i := 0; i < trials; i++ {
		x := r.Next()
		bit := uint(r.Intn(64))
		d := Mix64(x) ^ Mix64(x^(1<<bit))
		for d != 0 {
			totalFlips += int(d & 1)
			d >>= 1
		}
		totalBits += 64
	}
	ratio := float64(totalFlips) / float64(totalBits)
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("avalanche ratio %f, want ~0.5", ratio)
	}
}

func TestHeadSelectionRate(t *testing.T) {
	// With b = 128 roughly 1/128 of elements should be heads.
	const b = 128
	const n = 1 << 20
	heads := 0
	for i := uint32(0); i < n; i++ {
		if Mix32(i)%b == 0 {
			heads++
		}
	}
	expected := float64(n) / b
	if math.Abs(float64(heads)-expected) > 0.1*expected {
		t.Fatalf("head count %d, want within 10%% of %f", heads, expected)
	}
}

func TestSeededIndependence(t *testing.T) {
	// Different seeds should disagree on most inputs.
	agree := 0
	for i := uint64(0); i < 1000; i++ {
		if Seeded(1, i)%2 == Seeded(2, i)%2 {
			agree++
		}
	}
	if agree < 400 || agree > 600 {
		t.Fatalf("seeded functions agree on %d/1000 parities, want ~500", agree)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(5)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}
