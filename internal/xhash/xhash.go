// Package xhash provides the fixed uniform hash functions used across the
// repository. C-trees select chunk heads with a hash drawn from a uniformly
// random family (paper §3.1); because head-ness must be content determined —
// the same element must be a head in every tree that contains it — the head
// hash is a single fixed, high-quality mixing function rather than a seeded
// one. Seeded variants are provided for generators and randomized algorithms.
package xhash

// Mix64 is the splitmix64 finalizer: a bijective mixing function on 64-bit
// integers with full avalanche. It is the h in the paper's head condition
// h(e) mod b == 0.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix32 hashes a 32-bit element to a 64-bit value using Mix64.
func Mix32(x uint32) uint64 { return Mix64(uint64(x)) }

// Seeded combines a seed with a value, giving an indexed family of hash
// functions; distinct seeds behave as independent functions in practice.
func Seeded(seed, x uint64) uint64 { return Mix64(seed ^ Mix64(x)) }

// RNG is a small, fast, deterministic pseudo-random generator (splitmix64
// stream). It is used by the workload generators and randomized algorithms so
// every experiment is reproducible without math/rand global state.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64-bit value of the stream.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next value reduced to 32 bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Next() >> 32) }

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xhash: Intn with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}
