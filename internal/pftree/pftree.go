// Package pftree implements purely-functional (immutable, persistent)
// weight-balanced binary search trees with augmentation, following the
// join-based algorithms of Blelloch, Ferizovic and Sun ("Just Join for
// Parallel Ordered Sets", SPAA 2016) that the paper builds on (its trees come
// from PAM [73]). Every operation leaves existing trees untouched and returns
// new roots, so any number of readers can traverse snapshots while a writer
// prepares the next version — the property Aspen's versioned graphs rely on.
//
// Trees are parameterized by key K, value V and augmented value A. The
// augmented value of a node combines the augmented values of its children
// with FromEntry(key, value); the vertex-tree uses this to maintain the total
// edge count of the graph in O(1) (paper §5), and C-trees use it to maintain
// total element counts.
//
// Set operations (Union, Intersect, Difference, MultiInsert) run in parallel
// using fork-join recursion, matching the work/depth bounds the paper cites.
package pftree

import "repro/internal/parallel"

// Node is an immutable tree node. The zero of *Node (nil) is the empty tree.
type Node[K, V, A any] struct {
	key         K
	val         V
	left, right *Node[K, V, A]
	size        uint32 // number of nodes in this subtree
	aug         A
}

// Key returns the node's key.
func (n *Node[K, V, A]) Key() K { return n.key }

// Val returns the node's value.
func (n *Node[K, V, A]) Val() V { return n.val }

// Left returns the left subtree.
func (n *Node[K, V, A]) Left() *Node[K, V, A] { return n.left }

// Right returns the right subtree.
func (n *Node[K, V, A]) Right() *Node[K, V, A] { return n.right }

// Size returns the number of nodes in the subtree rooted at n; nil has size 0.
func (n *Node[K, V, A]) Size() int {
	if n == nil {
		return 0
	}
	return int(n.size)
}

// AugOrZero returns the augmented value of the subtree at n, or the zero A
// for nil — the allocation- and table-free form of Ops.AugOf for hot
// aggregate queries.
func (n *Node[K, V, A]) AugOrZero() A {
	if n == nil {
		var z A
		return z
	}
	return n.aug
}

// Augment describes how augmented values are computed.
type Augment[K, V, A any] struct {
	// Zero is the augmented value of the empty tree.
	Zero A
	// FromEntry maps one entry to its augmented value.
	FromEntry func(K, V) A
	// Combine merges augmented values; it must be associative with
	// identity Zero.
	Combine func(A, A) A
}

// NoAug is the trivial augmentation for trees that do not need one.
func NoAug[K, V any]() Augment[K, V, struct{}] {
	return Augment[K, V, struct{}]{
		FromEntry: func(K, V) struct{} { return struct{}{} },
		Combine:   func(struct{}, struct{}) struct{} { return struct{}{} },
	}
}

// Ops bundles the comparison and augmentation of a tree type and hosts the
// node-level persistent algorithms. Clients that need structural access (the
// C-tree) use Ops directly; others use the Tree wrapper.
type Ops[K, V, A any] struct {
	// Cmp is a total order on keys: negative, zero or positive as a<b,
	// a==b, a>b.
	Cmp func(a, b K) int
	// Aug computes augmented values.
	Aug Augment[K, V, A]
}

// Aug returns the augmented value of the subtree at n (Zero for nil).
func (o *Ops[K, V, A]) AugOf(n *Node[K, V, A]) A {
	if n == nil {
		return o.Aug.Zero
	}
	return n.aug
}

// weight of a subtree for the balance criterion: size + 1.
func weight[K, V, A any](n *Node[K, V, A]) uint64 {
	if n == nil {
		return 1
	}
	return uint64(n.size) + 1
}

// Weight-balance parameter alpha = 0.29, inside the valid range
// (1/4, 1-1/sqrt(2)] for join-based weight-balanced trees.
const alphaNum, alphaDen = 29, 100

// balancedWeights reports whether sibling subtrees with weights wl and wr
// satisfy the alpha-weight-balance invariant.
func balancedWeights(wl, wr uint64) bool {
	s := wl + wr
	return alphaNum*s <= alphaDen*wl && alphaNum*s <= alphaDen*wr
}

// mk allocates a node over children l and r, computing size and augmentation.
func (o *Ops[K, V, A]) mk(l *Node[K, V, A], k K, v V, r *Node[K, V, A]) *Node[K, V, A] {
	n := &Node[K, V, A]{key: k, val: v, left: l, right: r}
	n.size = uint32(l.Size()+r.Size()) + 1
	n.aug = o.Aug.Combine(o.AugOf(l), o.Aug.Combine(o.Aug.FromEntry(k, v), o.AugOf(r)))
	return n
}

// rotateLeft returns the left rotation of n; n.right must be non-nil.
func (o *Ops[K, V, A]) rotateLeft(n *Node[K, V, A]) *Node[K, V, A] {
	r := n.right
	return o.mk(o.mk(n.left, n.key, n.val, r.left), r.key, r.val, r.right)
}

// rotateRight returns the right rotation of n; n.left must be non-nil.
func (o *Ops[K, V, A]) rotateRight(n *Node[K, V, A]) *Node[K, V, A] {
	l := n.left
	return o.mk(l.left, l.key, l.val, o.mk(l.right, n.key, n.val, n.right))
}

// Join combines l, entry (k, v) and r into a balanced tree. All keys in l
// must be smaller than k and all keys in r larger. O(|log(w(l)/w(r))|) work.
func (o *Ops[K, V, A]) Join(l *Node[K, V, A], k K, v V, r *Node[K, V, A]) *Node[K, V, A] {
	wl, wr := weight(l), weight(r)
	switch {
	case balancedWeights(wl, wr):
		return o.mk(l, k, v, r)
	case wl > wr:
		return o.joinIntoLeft(l, k, v, r)
	default:
		return o.joinIntoRight(l, k, v, r)
	}
}

// joinIntoLeft handles Join when l is too heavy: descend l's right spine
// until the remainder balances with r (joinRightWB in Just Join).
func (o *Ops[K, V, A]) joinIntoLeft(l *Node[K, V, A], k K, v V, r *Node[K, V, A]) *Node[K, V, A] {
	if balancedWeights(weight(l), weight(r)) {
		return o.mk(l, k, v, r)
	}
	t1 := o.joinIntoLeft(l.right, k, v, r)
	if balancedWeights(weight(l.left), weight(t1)) {
		return o.mk(l.left, l.key, l.val, t1)
	}
	if balancedWeights(weight(l.left), weight(t1.left)) &&
		balancedWeights(weight(l.left)+weight(t1.left), weight(t1.right)) {
		return o.rotateLeft(o.mk(l.left, l.key, l.val, t1))
	}
	return o.rotateLeft(o.mk(l.left, l.key, l.val, o.rotateRight(t1)))
}

// joinIntoRight is the mirror image of joinIntoLeft.
func (o *Ops[K, V, A]) joinIntoRight(l *Node[K, V, A], k K, v V, r *Node[K, V, A]) *Node[K, V, A] {
	if balancedWeights(weight(l), weight(r)) {
		return o.mk(l, k, v, r)
	}
	t1 := o.joinIntoRight(l, k, v, r.left)
	if balancedWeights(weight(t1), weight(r.right)) {
		return o.mk(t1, r.key, r.val, r.right)
	}
	if balancedWeights(weight(t1.right), weight(r.right)) &&
		balancedWeights(weight(t1.right)+weight(r.right), weight(t1.left)) {
		return o.rotateRight(o.mk(t1, r.key, r.val, r.right))
	}
	return o.rotateRight(o.mk(o.rotateLeft(t1), r.key, r.val, r.right))
}

// SplitLast removes and returns the maximum entry of t (t must be non-nil).
func (o *Ops[K, V, A]) SplitLast(t *Node[K, V, A]) (rest *Node[K, V, A], k K, v V) {
	if t.right == nil {
		return t.left, t.key, t.val
	}
	rest, k, v = o.SplitLast(t.right)
	return o.Join(t.left, t.key, t.val, rest), k, v
}

// SplitFirst removes and returns the minimum entry of t (t must be non-nil).
func (o *Ops[K, V, A]) SplitFirst(t *Node[K, V, A]) (rest *Node[K, V, A], k K, v V) {
	if t.left == nil {
		return t.right, t.key, t.val
	}
	rest, k, v = o.SplitFirst(t.left)
	return o.Join(rest, t.key, t.val, t.right), k, v
}

// Join2 concatenates l and r (all keys in l smaller than all keys in r).
func (o *Ops[K, V, A]) Join2(l, r *Node[K, V, A]) *Node[K, V, A] {
	if l == nil {
		return r
	}
	rest, k, v := o.SplitLast(l)
	return o.Join(rest, k, v, r)
}

// Split partitions t by key k into trees of smaller and larger keys,
// reporting k's value if present. O(log n) work.
func (o *Ops[K, V, A]) Split(t *Node[K, V, A], k K) (l *Node[K, V, A], v V, found bool, r *Node[K, V, A]) {
	if t == nil {
		return nil, v, false, nil
	}
	switch c := o.Cmp(k, t.key); {
	case c == 0:
		return t.left, t.val, true, t.right
	case c < 0:
		ll, v, found, lr := o.Split(t.left, k)
		return ll, v, found, o.Join(lr, t.key, t.val, t.right)
	default:
		rl, v, found, rr := o.Split(t.right, k)
		return o.Join(t.left, t.key, t.val, rl), v, found, rr
	}
}

// Find returns the value stored at k.
func (o *Ops[K, V, A]) Find(t *Node[K, V, A], k K) (V, bool) {
	for t != nil {
		switch c := o.Cmp(k, t.key); {
		case c == 0:
			return t.val, true
		case c < 0:
			t = t.left
		default:
			t = t.right
		}
	}
	var zero V
	return zero, false
}

// FindLE returns the entry with the largest key <= k, if any. This is the
// head lookup used by C-trees (FindHead in the paper's UnionBC).
func (o *Ops[K, V, A]) FindLE(t *Node[K, V, A], k K) (*Node[K, V, A], bool) {
	var best *Node[K, V, A]
	for t != nil {
		switch c := o.Cmp(k, t.key); {
		case c == 0:
			return t, true
		case c < 0:
			t = t.left
		default:
			best = t
			t = t.right
		}
	}
	return best, best != nil
}

// First returns the minimum node of t (nil for empty trees).
func (o *Ops[K, V, A]) First(t *Node[K, V, A]) *Node[K, V, A] {
	if t == nil {
		return nil
	}
	for t.left != nil {
		t = t.left
	}
	return t
}

// Last returns the maximum node of t (nil for empty trees).
func (o *Ops[K, V, A]) Last(t *Node[K, V, A]) *Node[K, V, A] {
	if t == nil {
		return nil
	}
	for t.right != nil {
		t = t.right
	}
	return t
}

// Insert returns t with (k, v) added; an existing value is merged with
// combine(old, new), or replaced when combine is nil.
func (o *Ops[K, V, A]) Insert(t *Node[K, V, A], k K, v V, combine func(old, new V) V) *Node[K, V, A] {
	if t == nil {
		return o.mk(nil, k, v, nil)
	}
	switch c := o.Cmp(k, t.key); {
	case c == 0:
		if combine != nil {
			v = combine(t.val, v)
		}
		return o.mk(t.left, k, v, t.right)
	case c < 0:
		return o.Join(o.Insert(t.left, k, v, combine), t.key, t.val, t.right)
	default:
		return o.Join(t.left, t.key, t.val, o.Insert(t.right, k, v, combine))
	}
}

// Delete returns t without key k (no-op if absent).
func (o *Ops[K, V, A]) Delete(t *Node[K, V, A], k K) *Node[K, V, A] {
	if t == nil {
		return nil
	}
	switch c := o.Cmp(k, t.key); {
	case c == 0:
		return o.Join2(t.left, t.right)
	case c < 0:
		return o.Join(o.Delete(t.left, k), t.key, t.val, t.right)
	default:
		return o.Join(t.left, t.key, t.val, o.Delete(t.right, k))
	}
}

// parThreshold is the subtree size above which set operations fork.
const parThreshold = 1 << 11

// Union merges t1 and t2; values of keys present in both are merged with
// combine(valueInT1, valueInT2) (t2's value wins when combine is nil).
// O(m log(n/m + 1)) work, polylog depth.
func (o *Ops[K, V, A]) Union(t1, t2 *Node[K, V, A], combine func(a, b V) V) *Node[K, V, A] {
	if t1 == nil {
		return t2
	}
	if t2 == nil {
		return t1
	}
	l1, v1, found, r1 := o.Split(t1, t2.key)
	var l, r *Node[K, V, A]
	o.maybePar(t1, t2,
		func() { l = o.Union(l1, t2.left, combine) },
		func() { r = o.Union(r1, t2.right, combine) },
	)
	v := t2.val
	if found && combine != nil {
		v = combine(v1, v)
	}
	return o.Join(l, t2.key, v, r)
}

// Intersect keeps keys present in both trees, merging values with
// combine(valueInT1, valueInT2) (t2's value when nil).
func (o *Ops[K, V, A]) Intersect(t1, t2 *Node[K, V, A], combine func(a, b V) V) *Node[K, V, A] {
	if t1 == nil || t2 == nil {
		return nil
	}
	l1, v1, found, r1 := o.Split(t1, t2.key)
	var l, r *Node[K, V, A]
	o.maybePar(t1, t2,
		func() { l = o.Intersect(l1, t2.left, combine) },
		func() { r = o.Intersect(r1, t2.right, combine) },
	)
	if found {
		v := t2.val
		if combine != nil {
			v = combine(v1, v)
		}
		return o.Join(l, t2.key, v, r)
	}
	return o.Join2(l, r)
}

// Difference returns the entries of t1 whose keys are not in t2.
func (o *Ops[K, V, A]) Difference(t1, t2 *Node[K, V, A]) *Node[K, V, A] {
	if t1 == nil || t2 == nil {
		return t1
	}
	l1, _, _, r1 := o.Split(t1, t2.key)
	var l, r *Node[K, V, A]
	o.maybePar(t1, t2,
		func() { l = o.Difference(l1, t2.left) },
		func() { r = o.Difference(r1, t2.right) },
	)
	return o.Join2(l, r)
}

// maybePar runs f and g in parallel when both trees are large.
func (o *Ops[K, V, A]) maybePar(t1, t2 *Node[K, V, A], f, g func()) {
	if parallel.Procs > 1 && t1.Size() > parThreshold && t2.Size() > parThreshold {
		parallel.Do(f, g)
	} else {
		f()
		g()
	}
}

// Entry is a key-value pair used by bulk constructors.
type Entry[K, V any] struct {
	Key K
	Val V
}

// BuildSorted constructs a perfectly balanced tree from entries sorted by
// strictly increasing key. O(n) work, O(log n) depth.
func (o *Ops[K, V, A]) BuildSorted(entries []Entry[K, V]) *Node[K, V, A] {
	n := len(entries)
	if n == 0 {
		return nil
	}
	mid := n / 2
	e := entries[mid]
	if n <= parThreshold || parallel.Procs <= 1 {
		return o.mk(o.BuildSorted(entries[:mid]), e.Key, e.Val, o.BuildSorted(entries[mid+1:]))
	}
	var l, r *Node[K, V, A]
	parallel.Do(
		func() { l = o.BuildSorted(entries[:mid]) },
		func() { r = o.BuildSorted(entries[mid+1:]) },
	)
	return o.mk(l, e.Key, e.Val, r)
}

// MultiInsert inserts the sorted, duplicate-free entries into t, merging
// collisions with combine(oldInTree, newFromBatch). It is the bulk update
// primitive used for batch edge insertions (paper §5).
func (o *Ops[K, V, A]) MultiInsert(t *Node[K, V, A], entries []Entry[K, V], combine func(old, new V) V) *Node[K, V, A] {
	return o.Union(t, o.BuildSorted(entries), func(a, b V) V {
		if combine == nil {
			return b
		}
		return combine(a, b)
	})
}

// MultiDelete removes the sorted keys from t.
func (o *Ops[K, V, A]) MultiDelete(t *Node[K, V, A], keys []K) *Node[K, V, A] {
	entries := make([]Entry[K, V], len(keys))
	for i, k := range keys {
		entries[i] = Entry[K, V]{Key: k}
	}
	return o.Difference(t, o.BuildSorted(entries))
}

// ForEach applies f in key order; if f returns false iteration stops.
func (o *Ops[K, V, A]) ForEach(t *Node[K, V, A], f func(K, V) bool) bool {
	if t == nil {
		return true
	}
	return o.ForEach(t.left, f) && f(t.key, t.val) && o.ForEach(t.right, f)
}

// ForEachPar applies f to every entry in parallel (no ordering guarantee).
func (o *Ops[K, V, A]) ForEachPar(t *Node[K, V, A], f func(K, V)) {
	if t == nil {
		return
	}
	if t.Size() <= parThreshold || parallel.Procs <= 1 {
		o.ForEach(t, func(k K, v V) bool { f(k, v); return true })
		return
	}
	parallel.Do(
		func() { o.ForEachPar(t.left, f) },
		func() { f(t.key, t.val) },
		func() { o.ForEachPar(t.right, f) },
	)
}

// ForEachIndexed applies f(i, k, v) in parallel, where i is the in-order rank
// of the entry. Used to build flat snapshots in O(n) work and O(log n) depth.
func (o *Ops[K, V, A]) ForEachIndexed(t *Node[K, V, A], f func(int, K, V)) {
	o.forEachIndexed(t, 0, f)
}

func (o *Ops[K, V, A]) forEachIndexed(t *Node[K, V, A], offset int, f func(int, K, V)) {
	if t == nil {
		return
	}
	mid := offset + t.left.Size()
	if t.Size() <= parThreshold || parallel.Procs <= 1 {
		o.forEachIndexed(t.left, offset, f)
		f(mid, t.key, t.val)
		o.forEachIndexed(t.right, mid+1, f)
		return
	}
	parallel.Do(
		func() { o.forEachIndexed(t.left, offset, f) },
		func() { f(mid, t.key, t.val) },
		func() { o.forEachIndexed(t.right, mid+1, f) },
	)
}

// ForEachRankRange applies f, in key order, to every entry whose in-order
// rank lies in [lo, hi), stopping early if f returns false; it reports
// whether the traversal ran to completion. The size augmentation prunes the
// descent, so one call costs O(hi - lo + log n) — partitioning [0, Size())
// into per-worker rank ranges and issuing one call per worker yields an
// indexed parallel traversal with O(n) total work and O(n/P + log n) depth,
// the schedule flat-snapshot construction uses (paper §5.1).
func (o *Ops[K, V, A]) ForEachRankRange(t *Node[K, V, A], lo, hi int, f func(K, V) bool) bool {
	if t == nil || hi <= lo || hi <= 0 || lo >= t.Size() {
		return true
	}
	ls := t.left.Size()
	if lo < ls {
		if !o.ForEachRankRange(t.left, lo, min(hi, ls), f) {
			return false
		}
	}
	if lo <= ls && ls < hi {
		if !f(t.key, t.val) {
			return false
		}
	}
	if hi > ls+1 {
		return o.ForEachRankRange(t.right, max(lo-ls-1, 0), hi-ls-1, f)
	}
	return true
}

// Select returns the i-th entry (0-based) in key order.
func (o *Ops[K, V, A]) Select(t *Node[K, V, A], i int) (*Node[K, V, A], bool) {
	for t != nil {
		ls := t.left.Size()
		switch {
		case i < ls:
			t = t.left
		case i == ls:
			return t, true
		default:
			i -= ls + 1
			t = t.right
		}
	}
	return nil, false
}

// Rank returns the number of keys in t smaller than k.
func (o *Ops[K, V, A]) Rank(t *Node[K, V, A], k K) int {
	rank := 0
	for t != nil {
		if o.Cmp(k, t.key) <= 0 {
			t = t.left
		} else {
			rank += t.left.Size() + 1
			t = t.right
		}
	}
	return rank
}
