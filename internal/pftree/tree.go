package pftree

import "fmt"

// Tree is the user-facing handle: an Ops plus a root. Trees are immutable;
// every method returns a new Tree sharing structure with the receiver.
type Tree[K, V, A any] struct {
	ops  *Ops[K, V, A]
	root *Node[K, V, A]
}

// New returns an empty tree using the given comparison and augmentation.
func New[K, V, A any](cmp func(a, b K) int, aug Augment[K, V, A]) Tree[K, V, A] {
	return Tree[K, V, A]{ops: &Ops[K, V, A]{Cmp: cmp, Aug: aug}}
}

// Wrap builds a Tree from an Ops and root produced by node-level operations.
func Wrap[K, V, A any](ops *Ops[K, V, A], root *Node[K, V, A]) Tree[K, V, A] {
	return Tree[K, V, A]{ops: ops, root: root}
}

// Ops exposes the node-level operations of the tree.
func (t Tree[K, V, A]) Ops() *Ops[K, V, A] { return t.ops }

// Root returns the root node (nil for the empty tree).
func (t Tree[K, V, A]) Root() *Node[K, V, A] { return t.root }

// Size returns the number of entries, in O(1).
func (t Tree[K, V, A]) Size() int { return t.root.Size() }

// AugVal returns the augmented value of the whole tree in O(1).
func (t Tree[K, V, A]) AugVal() A { return t.ops.AugOf(t.root) }

// Insert adds (k, v), replacing an existing value.
func (t Tree[K, V, A]) Insert(k K, v V) Tree[K, V, A] {
	return Wrap(t.ops, t.ops.Insert(t.root, k, v, nil))
}

// InsertWith adds (k, v), merging an existing value with combine(old, new).
func (t Tree[K, V, A]) InsertWith(k K, v V, combine func(old, new V) V) Tree[K, V, A] {
	return Wrap(t.ops, t.ops.Insert(t.root, k, v, combine))
}

// Delete removes key k if present.
func (t Tree[K, V, A]) Delete(k K) Tree[K, V, A] {
	return Wrap(t.ops, t.ops.Delete(t.root, k))
}

// Find returns the value at k.
func (t Tree[K, V, A]) Find(k K) (V, bool) { return t.ops.Find(t.root, k) }

// Union merges t and u (u's values win on collisions when combine is nil).
func (t Tree[K, V, A]) Union(u Tree[K, V, A], combine func(a, b V) V) Tree[K, V, A] {
	return Wrap(t.ops, t.ops.Union(t.root, u.root, combine))
}

// Intersect keeps the keys present in both trees.
func (t Tree[K, V, A]) Intersect(u Tree[K, V, A], combine func(a, b V) V) Tree[K, V, A] {
	return Wrap(t.ops, t.ops.Intersect(t.root, u.root, combine))
}

// Difference removes from t all keys present in u.
func (t Tree[K, V, A]) Difference(u Tree[K, V, A]) Tree[K, V, A] {
	return Wrap(t.ops, t.ops.Difference(t.root, u.root))
}

// Split partitions t around k.
func (t Tree[K, V, A]) Split(k K) (left Tree[K, V, A], v V, found bool, right Tree[K, V, A]) {
	l, v, found, r := t.ops.Split(t.root, k)
	return Wrap(t.ops, l), v, found, Wrap(t.ops, r)
}

// BuildSorted replaces the contents of t with the sorted entries.
func (t Tree[K, V, A]) BuildSorted(entries []Entry[K, V]) Tree[K, V, A] {
	return Wrap(t.ops, t.ops.BuildSorted(entries))
}

// MultiInsert bulk-inserts sorted, duplicate-free entries.
func (t Tree[K, V, A]) MultiInsert(entries []Entry[K, V], combine func(old, new V) V) Tree[K, V, A] {
	return Wrap(t.ops, t.ops.MultiInsert(t.root, entries, combine))
}

// MultiDelete bulk-removes sorted keys.
func (t Tree[K, V, A]) MultiDelete(keys []K) Tree[K, V, A] {
	return Wrap(t.ops, t.ops.MultiDelete(t.root, keys))
}

// ForEach applies f in key order until it returns false.
func (t Tree[K, V, A]) ForEach(f func(K, V) bool) { t.ops.ForEach(t.root, f) }

// ForEachPar applies f to all entries in parallel.
func (t Tree[K, V, A]) ForEachPar(f func(K, V)) { t.ops.ForEachPar(t.root, f) }

// ForEachIndexed applies f(rank, k, v) to all entries in parallel.
func (t Tree[K, V, A]) ForEachIndexed(f func(int, K, V)) { t.ops.ForEachIndexed(t.root, f) }

// Keys returns all keys in order.
func (t Tree[K, V, A]) Keys() []K {
	out := make([]K, 0, t.Size())
	t.ForEach(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// CheckInvariants verifies the BST ordering, weight-balance, size and
// augmentation bookkeeping of the whole tree. It is O(n) and meant for tests.
// The aug check uses eq; pass nil to skip it.
func (t Tree[K, V, A]) CheckInvariants(eq func(a, b A) bool) error {
	_, err := t.ops.check(t.root, eq)
	return err
}

func (o *Ops[K, V, A]) check(n *Node[K, V, A], eq func(a, b A) bool) (A, error) {
	if n == nil {
		return o.Aug.Zero, nil
	}
	if n.left != nil && o.Cmp(n.left.key, n.key) >= 0 {
		return o.Aug.Zero, fmt.Errorf("pftree: order violation at left child")
	}
	if n.right != nil && o.Cmp(n.right.key, n.key) <= 0 {
		return o.Aug.Zero, fmt.Errorf("pftree: order violation at right child")
	}
	if !balancedWeights(weight(n.left), weight(n.right)) {
		return o.Aug.Zero, fmt.Errorf("pftree: balance violation: left weight %d, right weight %d",
			weight(n.left), weight(n.right))
	}
	if got, want := int(n.size), n.left.Size()+n.right.Size()+1; got != want {
		return o.Aug.Zero, fmt.Errorf("pftree: size %d, want %d", got, want)
	}
	la, err := o.check(n.left, eq)
	if err != nil {
		return o.Aug.Zero, err
	}
	ra, err := o.check(n.right, eq)
	if err != nil {
		return o.Aug.Zero, err
	}
	aug := o.Aug.Combine(la, o.Aug.Combine(o.Aug.FromEntry(n.key, n.val), ra))
	if eq != nil && !eq(aug, n.aug) {
		return o.Aug.Zero, fmt.Errorf("pftree: augmentation mismatch")
	}
	return aug, nil
}
