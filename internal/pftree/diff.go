package pftree

// DiffKind classifies one key's change between two versions of a tree.
type DiffKind uint8

const (
	// DiffAdded marks a key present only in the new tree.
	DiffAdded DiffKind = iota
	// DiffRemoved marks a key present only in the old tree.
	DiffRemoved
	// DiffChanged marks a key present in both trees with differing values.
	DiffChanged
)

// String names the kind for test failures and logs.
func (k DiffKind) String() string {
	switch k {
	case DiffAdded:
		return "added"
	case DiffRemoved:
		return "removed"
	case DiffChanged:
		return "changed"
	default:
		return "unknown"
	}
}

// Diff walks old and new in ascending key order and applies emit to every
// key whose membership or value differs, classifying it as added (new
// only), removed (old only) or changed (in both, but sameVal reports the
// values unequal). emit receives the zero V for the side a key is absent
// from and may return false to stop the walk; Diff reports whether it ran
// to completion.
//
// Structural sharing is what makes this cheap: a pair of pointer-equal
// subtrees is skipped in O(1), and functional updates (Insert, Union,
// MultiInsert, ...) reallocate only the spine above the entries they touch,
// so diffing a version against a batch-updated successor costs
// O(d log(n/d + 1)) for d differing keys instead of O(n). The recursion
// aligns the two trees structurally while their shapes agree; where they
// diverge (a rotation or key edit) it follows the new tree's structure and
// narrows the old side by key bounds instead of physically splitting it, so
// the whole walk allocates nothing — clipping the old subtree to the
// current bound re-surfaces shared subtrees below a divergence, keeping the
// pointer short-circuit effective. sameVal is consulted once per surviving
// shared key; callers whose values are themselves persistent structures
// should pass their representation-equality check (pointer compare) to keep
// that O(1).
func (o *Ops[K, V, A]) Diff(old, new *Node[K, V, A], sameVal func(a, b V) bool, emit func(k K, kind DiffKind, oldV, newV V) bool) bool {
	return o.diffRange(old, new, nil, nil, sameVal, emit)
}

// clip descends old past subtrees wholly outside the open interval
// (lo, hi) — nil bounds are unbounded. The returned subtree's root key (if
// any) lies inside the interval; deeper keys may still fall outside and are
// filtered by the bounded recursion.
func (o *Ops[K, V, A]) clip(t *Node[K, V, A], lo, hi *K) *Node[K, V, A] {
	for t != nil {
		if lo != nil && o.Cmp(t.key, *lo) <= 0 {
			t = t.right
			continue
		}
		if hi != nil && o.Cmp(t.key, *hi) >= 0 {
			t = t.left
			continue
		}
		break
	}
	return t
}

// forEachBounded applies f to t's entries with keys inside (lo, hi), in
// ascending order, until f returns false.
func (o *Ops[K, V, A]) forEachBounded(t *Node[K, V, A], lo, hi *K, f func(K, V) bool) bool {
	t = o.clip(t, lo, hi)
	if t == nil {
		return true
	}
	// t.key is in range, so the left spine only needs the lower bound and
	// the right spine only the upper.
	if !o.forEachBounded(t.left, lo, nil, f) {
		return false
	}
	if !f(t.key, t.val) {
		return false
	}
	return o.forEachBounded(t.right, nil, hi, f)
}

// diffRange diffs old's entries inside (lo, hi) against new, all of whose
// keys the caller guarantees lie inside (lo, hi).
func (o *Ops[K, V, A]) diffRange(old, new *Node[K, V, A], lo, hi *K, sameVal func(a, b V) bool, emit func(k K, kind DiffKind, oldV, newV V) bool) bool {
	old = o.clip(old, lo, hi)
	// Pointer-equal subtrees hold identical entries; since new's are all
	// in-range, so are old's, and the pair contributes nothing.
	if old == new {
		return true
	}
	if old == nil {
		return o.ForEach(new, func(k K, v V) bool {
			var z V
			return emit(k, DiffAdded, z, v)
		})
	}
	if new == nil {
		return o.forEachBounded(old, lo, hi, func(k K, v V) bool {
			var z V
			return emit(k, DiffRemoved, v, z)
		})
	}
	if o.Cmp(old.key, new.key) == 0 {
		// Aligned roots: recurse on both sides. This is the hot path between
		// versions of the same lineage — batch updates keep untouched node
		// keys in place, so the walk re-aligns immediately below every edit.
		// Each side inherits one bound; the shared root key supplies the
		// other implicitly.
		if !o.diffRange(old.left, new.left, lo, nil, sameVal, emit) {
			return false
		}
		if !sameVal(old.val, new.val) && !emit(new.key, DiffChanged, old.val, new.val) {
			return false
		}
		return o.diffRange(old.right, new.right, nil, hi, sameVal, emit)
	}
	// Shapes diverge (rotation or a key edit): follow the new tree's
	// structure and thread the same old subtree down both sides, narrowed by
	// the new root's key. The clip at each entry re-aligns the old side, so
	// subtrees shared below the divergence still short-circuit.
	k := &new.key
	if !o.diffRange(old, new.left, lo, k, sameVal, emit) {
		return false
	}
	if v, found := o.Find(old, new.key); found {
		if !sameVal(v, new.val) && !emit(new.key, DiffChanged, v, new.val) {
			return false
		}
	} else {
		var z V
		if !emit(new.key, DiffAdded, z, new.val) {
			return false
		}
	}
	return o.diffRange(old, new.right, k, hi, sameVal, emit)
}
