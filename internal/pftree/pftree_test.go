package pftree

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/xhash"
)

// sumAug counts entries and sums values, exercising augmentation.
var sumAug = Augment[int, int, int]{
	Zero:      0,
	FromEntry: func(_, v int) int { return v },
	Combine:   func(a, b int) int { return a + b },
}

func cmpInt(a, b int) int { return a - b }

func newIntTree() Tree[int, int, int] { return New(cmpInt, sumAug) }

func intEq(a, b int) bool { return a == b }

// model-based checking against a Go map.
func treeEqualsModel(t *testing.T, tr Tree[int, int, int], model map[int]int) {
	t.Helper()
	if tr.Size() != len(model) {
		t.Fatalf("size = %d, want %d", tr.Size(), len(model))
	}
	wantSum := 0
	for k, v := range model {
		got, ok := tr.Find(k)
		if !ok || got != v {
			t.Fatalf("Find(%d) = (%d,%v), want (%d,true)", k, got, ok, v)
		}
		wantSum += v
	}
	if tr.AugVal() != wantSum {
		t.Fatalf("aug = %d, want %d", tr.AugVal(), wantSum)
	}
	prev := -1 << 62
	ordered := true
	tr.ForEach(func(k, _ int) bool {
		if k <= prev {
			ordered = false
		}
		prev = k
		return true
	})
	if !ordered {
		t.Fatal("keys not in order")
	}
	if err := tr.CheckInvariants(intEq); err != nil {
		t.Fatal(err)
	}
}

func TestInsertFindDeleteModel(t *testing.T) {
	r := xhash.NewRNG(1)
	tr := newIntTree()
	model := map[int]int{}
	for step := 0; step < 4000; step++ {
		k := r.Intn(500)
		switch r.Intn(3) {
		case 0, 1:
			v := r.Intn(100)
			tr = tr.Insert(k, v)
			model[k] = v
		case 2:
			tr = tr.Delete(k)
			delete(model, k)
		}
	}
	treeEqualsModel(t, tr, model)
}

func TestInsertWithCombine(t *testing.T) {
	tr := newIntTree()
	add := func(old, new int) int { return old + new }
	tr = tr.InsertWith(5, 10, add)
	tr = tr.InsertWith(5, 7, add)
	if v, _ := tr.Find(5); v != 17 {
		t.Fatalf("combined value = %d, want 17", v)
	}
}

func TestPersistence(t *testing.T) {
	// Old versions must be unaffected by later updates.
	tr := newIntTree()
	versions := []Tree[int, int, int]{tr}
	for i := 0; i < 200; i++ {
		tr = tr.Insert(i, i*2)
		versions = append(versions, tr)
	}
	for i, v := range versions {
		if v.Size() != i {
			t.Fatalf("version %d has size %d", i, v.Size())
		}
		if i > 0 {
			if got, ok := v.Find(i - 1); !ok || got != (i-1)*2 {
				t.Fatalf("version %d lost key %d", i, i-1)
			}
		}
		if _, ok := v.Find(i); ok {
			t.Fatalf("version %d sees key from the future", i)
		}
	}
}

func TestBuildSorted(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, 10_000} {
		entries := make([]Entry[int, int], n)
		for i := range entries {
			entries[i] = Entry[int, int]{Key: i, Val: i}
		}
		tr := newIntTree().BuildSorted(entries)
		if tr.Size() != n {
			t.Fatalf("n=%d: size %d", n, tr.Size())
		}
		if err := tr.CheckInvariants(intEq); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		keys := tr.Keys()
		for i, k := range keys {
			if k != i {
				t.Fatalf("n=%d: keys[%d] = %d", n, i, k)
			}
		}
	}
}

func randomTree(seed uint64, maxKey, n int) (Tree[int, int, int], map[int]int) {
	r := xhash.NewRNG(seed)
	tr := newIntTree()
	model := map[int]int{}
	for i := 0; i < n; i++ {
		k := r.Intn(maxKey)
		v := r.Intn(1000)
		tr = tr.Insert(k, v)
		model[k] = v
	}
	return tr, model
}

func TestUnionProperty(t *testing.T) {
	if err := quick.Check(func(s1, s2 uint64) bool {
		t1, m1 := randomTree(s1, 300, 150)
		t2, m2 := randomTree(s2, 300, 150)
		u := t1.Union(t2, nil)
		if err := u.CheckInvariants(intEq); err != nil {
			return false
		}
		want := map[int]int{}
		for k, v := range m1 {
			want[k] = v
		}
		for k, v := range m2 {
			want[k] = v // t2 wins
		}
		if u.Size() != len(want) {
			return false
		}
		ok := true
		u.ForEach(func(k, v int) bool {
			if want[k] != v {
				ok = false
				return false
			}
			return true
		})
		return ok
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectDifferenceProperty(t *testing.T) {
	if err := quick.Check(func(s1, s2 uint64) bool {
		t1, m1 := randomTree(s1, 200, 120)
		t2, m2 := randomTree(s2, 200, 120)
		in := t1.Intersect(t2, func(a, _ int) int { return a })
		di := t1.Difference(t2)
		if err := in.CheckInvariants(intEq); err != nil {
			return false
		}
		if err := di.CheckInvariants(intEq); err != nil {
			return false
		}
		wantIn, wantDi := 0, 0
		for k := range m1 {
			if _, ok := m2[k]; ok {
				wantIn++
			} else {
				wantDi++
			}
		}
		if in.Size() != wantIn || di.Size() != wantDi {
			return false
		}
		okAll := true
		in.ForEach(func(k, v int) bool {
			if m1[k] != v {
				okAll = false
			}
			if _, ok := m2[k]; !ok {
				okAll = false
			}
			return okAll
		})
		di.ForEach(func(k, v int) bool {
			if m1[k] != v {
				okAll = false
			}
			if _, ok := m2[k]; ok {
				okAll = false
			}
			return okAll
		})
		return okAll
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, kRaw uint16) bool {
		k := int(kRaw % 250)
		tr, model := randomTree(seed, 200, 100)
		l, v, found, r := tr.Split(k)
		if err := l.CheckInvariants(intEq); err != nil {
			return false
		}
		if err := r.CheckInvariants(intEq); err != nil {
			return false
		}
		wantV, wantFound := model[k]
		if found != wantFound || (found && v != wantV) {
			return false
		}
		ok := true
		l.ForEach(func(kk, _ int) bool {
			if kk >= k {
				ok = false
			}
			return ok
		})
		r.ForEach(func(kk, _ int) bool {
			if kk <= k {
				ok = false
			}
			return ok
		})
		n := l.Size() + r.Size()
		if found {
			n++
		}
		return ok && n == len(model)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiInsertDelete(t *testing.T) {
	tr, model := randomTree(77, 1000, 500)
	var batch []Entry[int, int]
	for i := 0; i < 300; i += 3 {
		batch = append(batch, Entry[int, int]{Key: i, Val: -i})
	}
	tr2 := tr.MultiInsert(batch, nil)
	for _, e := range batch {
		model[e.Key] = e.Val
	}
	treeEqualsModel(t, tr2, model)

	var dels []int
	for i := 0; i < 1000; i += 7 {
		dels = append(dels, i)
	}
	tr3 := tr2.MultiDelete(dels)
	for _, k := range dels {
		delete(model, k)
	}
	treeEqualsModel(t, tr3, model)
}

func TestFindLE(t *testing.T) {
	tr := newIntTree()
	for _, k := range []int{10, 20, 30, 40} {
		tr = tr.Insert(k, k)
	}
	o := tr.Ops()
	cases := []struct {
		q      int
		want   int
		wantOK bool
	}{
		{5, 0, false}, {10, 10, true}, {15, 10, true},
		{40, 40, true}, {100, 40, true},
	}
	for _, c := range cases {
		n, ok := o.FindLE(tr.Root(), c.q)
		if ok != c.wantOK {
			t.Fatalf("FindLE(%d) ok = %v", c.q, ok)
		}
		if ok && n.Key() != c.want {
			t.Fatalf("FindLE(%d) = %d, want %d", c.q, n.Key(), c.want)
		}
	}
}

func TestSelectRank(t *testing.T) {
	tr := newIntTree()
	keys := []int{3, 1, 4, 1, 5, 9, 2, 6}
	for _, k := range keys {
		tr = tr.Insert(k, k)
	}
	uniq := []int{1, 2, 3, 4, 5, 6, 9}
	o := tr.Ops()
	for i, want := range uniq {
		n, ok := o.Select(tr.Root(), i)
		if !ok || n.Key() != want {
			t.Fatalf("Select(%d) = %v, want %d", i, n, want)
		}
		if got := o.Rank(tr.Root(), want); got != i {
			t.Fatalf("Rank(%d) = %d, want %d", want, got, i)
		}
	}
	if _, ok := o.Select(tr.Root(), len(uniq)); ok {
		t.Fatal("Select out of range should fail")
	}
	if got := o.Rank(tr.Root(), 100); got != len(uniq) {
		t.Fatalf("Rank(100) = %d", got)
	}
}

func TestForEachIndexed(t *testing.T) {
	tr := newIntTree()
	const n = 5000
	for i := 0; i < n; i++ {
		tr = tr.Insert(i*2, i)
	}
	got := make([]int, n)
	tr.ForEachIndexed(func(i, k, _ int) { got[i] = k })
	for i := 0; i < n; i++ {
		if got[i] != i*2 {
			t.Fatalf("rank %d: key %d, want %d", i, got[i], i*2)
		}
	}
}

func TestForEachParCoversAll(t *testing.T) {
	tr := newIntTree()
	const n = 10_000
	for i := 0; i < n; i++ {
		tr = tr.Insert(i, 1)
	}
	counts := make([]int32, n)
	var mu sort.IntSlice // placeholder to avoid import cycle; use channel-free atomic
	_ = mu
	done := make(chan int, 64)
	go func() {
		tr.ForEachPar(func(k, _ int) { done <- k })
		close(done)
	}()
	for k := range done {
		counts[k]++
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("key %d visited %d times", i, c)
		}
	}
}

func TestJoin2ViaDifference(t *testing.T) {
	// Difference that removes a middle run exercises Join2/SplitLast.
	tr := newIntTree()
	for i := 0; i < 1000; i++ {
		tr = tr.Insert(i, i)
	}
	var mid []int
	for i := 300; i < 700; i++ {
		mid = append(mid, i)
	}
	got := tr.MultiDelete(mid)
	if got.Size() != 600 {
		t.Fatalf("size = %d, want 600", got.Size())
	}
	if err := got.CheckInvariants(intEq); err != nil {
		t.Fatal(err)
	}
}

func TestLargeSequentialInsertBalance(t *testing.T) {
	// Sorted insertion is the classic worst case for unbalanced trees.
	tr := newIntTree()
	const n = 50_000
	for i := 0; i < n; i++ {
		tr = tr.Insert(i, i)
	}
	if err := tr.CheckInvariants(intEq); err != nil {
		t.Fatal(err)
	}
	// Height must be logarithmic: walk to the deepest leaf.
	depth := 0
	n2 := tr.Root()
	for n2 != nil {
		depth++
		if n2.Left().Size() > n2.Right().Size() {
			n2 = n2.Left()
		} else {
			n2 = n2.Right()
		}
	}
	if depth > 40 {
		t.Fatalf("tree depth %d too large for n=%d", depth, n)
	}
}

func TestEmptyTreeOperations(t *testing.T) {
	tr := newIntTree()
	if tr.Size() != 0 || tr.AugVal() != 0 {
		t.Fatal("empty tree wrong size/aug")
	}
	if _, ok := tr.Find(1); ok {
		t.Fatal("found in empty tree")
	}
	tr2 := tr.Delete(1)
	if tr2.Size() != 0 {
		t.Fatal("delete on empty changed size")
	}
	u := tr.Union(tr, nil)
	if u.Size() != 0 {
		t.Fatal("union of empties non-empty")
	}
	l, _, found, r := tr.Split(5)
	if found || l.Size() != 0 || r.Size() != 0 {
		t.Fatal("split of empty wrong")
	}
}
