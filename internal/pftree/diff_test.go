package pftree

import (
	"testing"

	"repro/internal/xhash"
)

type diffRec struct {
	k, oldV, newV int
	kind          DiffKind
}

// refDiff computes the expected key-level diff from full enumerations.
func refDiff(old, new Tree[int, int, int]) []diffRec {
	om, nm := map[int]int{}, map[int]int{}
	old.ForEach(func(k, v int) bool { om[k] = v; return true })
	new.ForEach(func(k, v int) bool { nm[k] = v; return true })
	keys := map[int]bool{}
	for k := range om {
		keys[k] = true
	}
	for k := range nm {
		keys[k] = true
	}
	var sorted []int
	for k := range keys {
		sorted = append(sorted, k)
	}
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	var out []diffRec
	for _, k := range sorted {
		ov, inOld := om[k]
		nv, inNew := nm[k]
		switch {
		case inOld && !inNew:
			out = append(out, diffRec{k, ov, 0, DiffRemoved})
		case !inOld && inNew:
			out = append(out, diffRec{k, 0, nv, DiffAdded})
		case ov != nv:
			out = append(out, diffRec{k, ov, nv, DiffChanged})
		}
	}
	return out
}

func runDiff(t *testing.T, old, new Tree[int, int, int]) []diffRec {
	t.Helper()
	var got []diffRec
	if !old.Ops().Diff(old.Root(), new.Root(), intEq, func(k int, kind DiffKind, ov, nv int) bool {
		got = append(got, diffRec{k, ov, nv, kind})
		return true
	}) {
		t.Fatal("Diff stopped early without emit returning false")
	}
	return got
}

func TestDiffAgainstReference(t *testing.T) {
	r := xhash.NewRNG(11)
	base := newIntTree()
	for i := 0; i < 400; i++ {
		base = base.Insert(r.Intn(2000), r.Intn(100))
	}
	versions := []Tree[int, int, int]{base}
	for step := 0; step < 10; step++ {
		cur := versions[len(versions)-1]
		next := cur
		for k := 0; k < 25; k++ {
			switch r.Intn(3) {
			case 0:
				next = next.Delete(r.Intn(2000))
			default:
				next = next.Insert(r.Intn(2000), r.Intn(100))
			}
		}
		versions = append(versions, next)
	}
	for i := range versions {
		for j := range versions {
			got := runDiff(t, versions[i], versions[j])
			want := refDiff(versions[i], versions[j])
			if len(got) != len(want) {
				t.Fatalf("pair (%d,%d): %d entries, want %d", i, j, len(got), len(want))
			}
			for x := range got {
				if got[x] != want[x] {
					t.Fatalf("pair (%d,%d) entry %d: got %+v, want %+v", i, j, x, got[x], want[x])
				}
			}
			if i == j && len(got) != 0 {
				t.Fatalf("self diff emitted %d entries", len(got))
			}
		}
	}
}

func TestDiffEarlyStop(t *testing.T) {
	a := newIntTree()
	for i := 0; i < 50; i++ {
		a = a.Insert(i, i)
	}
	b := newIntTree()
	n := 0
	if a.Ops().Diff(a.Root(), b.Root(), intEq, func(int, DiffKind, int, int) bool {
		n++
		return n < 10
	}) {
		t.Fatal("Diff reported completion despite early stop")
	}
	if n != 10 {
		t.Fatalf("emitted %d, want 10", n)
	}
}

func TestDiffKindString(t *testing.T) {
	if DiffAdded.String() != "added" || DiffRemoved.String() != "removed" ||
		DiffChanged.String() != "changed" || DiffKind(9).String() != "unknown" {
		t.Fatal("DiffKind.String mismatch")
	}
}
