package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/ligra"
	"repro/internal/xhash"
)

// Flat is the PR-4 experiment: the §5.1 flat view as the default fast path
// for global kernels. Per dataset it reports the parallel flat-snapshot
// build (1 thread vs all cores — the per-worker-range traversal must
// scale), and tree-vs-flat running times for BFS, CC and SSSP (the
// acceptance target is flat ≥ 15% faster). SSSP runs over the weighted
// graph and its weighted flat view.
func Flat(w io.Writer, cfg Config) {
	t := tw(w)
	fmt.Fprintln(t, "Graph\tFS build 1T\tFS build PT\tSU\tBFS tree\tBFS flat\tx\tCC tree\tCC flat\tx\tSSSP tree\tSSSP flat\tx")
	for _, d := range datasets(cfg.Quick) {
		g := d.AspenGraph(ctree.DefaultParams())
		var b1, bp time.Duration
		withProcs(1, func() { b1 = medianOf3(func() { aspen.BuildFlatSnapshot(g) }) })
		withProcs(cfg.procs(), func() { bp = medianOf3(func() { aspen.BuildFlatSnapshot(g) }) })
		fs := aspen.BuildFlatSnapshot(g)
		src := firstNonIsolated(fs)

		bfsT := medianOf3(func() { algos.BFS(g, src, false) })
		bfsF := medianOf3(func() { algos.BFS(fs, src, false) })
		ccT := medianOf3(func() { algos.ConnectedComponents(g) })
		ccF := medianOf3(func() { algos.ConnectedComponents(fs) })

		wg := weightedDataset(d)
		fw := aspen.BuildFlatWeightedSnapshot(wg)
		ssspT := medianOf3(func() { algos.SSSP(wg, src) })
		ssspF := medianOf3(func() { algos.SSSP(fw, src) })

		fmt.Fprintf(t, "%s\t%s\t%s\t%.2f\t%s\t%s\t%.2f\t%s\t%s\t%.2f\t%s\t%s\t%.2f\n",
			d.Name, secs(b1), secs(bp), ratio(b1, bp),
			secs(bfsT), secs(bfsF), ratio(bfsT, bfsF),
			secs(ccT), secs(ccF), ratio(ccT, ccF),
			secs(ssspT), secs(ssspF), ratio(ssspT, ssspF))
	}
	t.Flush()
	fmt.Fprintln(w, "x = tree/flat speedup (>= 1.15 is the PR-4 acceptance bar); SU = 1T/PT build self-speedup")
}

// ratio guards against zero denominators on tiny quick-mode inputs.
func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// weightedDataset builds the weighted twin of a dataset: same symmetric
// structure with deterministic per-edge weights (both directions agree).
func weightedDataset(d Dataset) aspen.WeightedGraph {
	adj := d.Adjacency()
	var batch []aspen.WeightedEdge
	for u, nbrs := range adj {
		for _, v := range nbrs {
			lo, hi := uint32(u), v
			if lo > hi {
				lo, hi = hi, lo
			}
			batch = append(batch, aspen.WeightedEdge{
				Src: uint32(u), Dst: v,
				Weight: 0.5 + float32(xhash.Mix32(lo^hi*0x9e3779b9)%1000)/100,
			})
		}
	}
	return aspen.NewWeightedGraph().InsertEdges(batch)
}

// flatCapabilityCheck is a compile-time assertion that the aspen views
// carry the ligra capabilities the EdgeMap routing dispatches on.
var (
	_ ligra.FlatGraph         = (*aspen.FlatSnapshot)(nil)
	_ ligra.FlatWeightedGraph = (*aspen.FlatWeightedSnapshot)(nil)
)
