// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (§7), printing the same rows the paper reports.
// Absolute numbers reflect this machine and the synthetic stand-in graphs
// (DESIGN.md documents the substitutions); the comparisons and trends are
// the reproduction targets recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/parallel"
	"repro/internal/rmat"
)

// Dataset is a synthetic stand-in for one of the paper's input graphs
// (Table 1), generated deterministically with rMAT at a scale chosen for a
// small machine while preserving the paper's average-degree regime.
type Dataset struct {
	// Name of the stand-in and the paper graph it models.
	Name    string
	StandIn string
	// Scale is log2 of the vertex count; GenEdges is the number of rMAT
	// samples drawn before symmetrization.
	Scale    int
	GenEdges uint64
	Seed     uint64
}

// datasets returns the benchmark inputs; quick mode shrinks them for tests.
func datasets(quick bool) []Dataset {
	if quick {
		return []Dataset{
			{Name: "social-S", StandIn: "LiveJournal", Scale: 10, GenEdges: 8_000, Seed: 1},
			{Name: "social-M", StandIn: "com-Orkut", Scale: 9, GenEdges: 16_000, Seed: 2},
		}
	}
	return []Dataset{
		{Name: "social-S", StandIn: "LiveJournal", Scale: 16, GenEdges: 600_000, Seed: 1},
		{Name: "social-M", StandIn: "com-Orkut", Scale: 15, GenEdges: 1_300_000, Seed: 2},
		{Name: "social-L", StandIn: "Twitter", Scale: 17, GenEdges: 3_800_000, Seed: 3},
		{Name: "web-L", StandIn: "ClueWeb", Scale: 18, GenEdges: 4_000_000, Seed: 4},
	}
}

// adjacency caches generated graphs across table runners.
var (
	adjMu    sync.Mutex
	adjCache = map[string][][]uint32{}
)

// Adjacency generates (or returns the cached) symmetric adjacency lists.
func (d Dataset) Adjacency() [][]uint32 {
	adjMu.Lock()
	defer adjMu.Unlock()
	key := fmt.Sprintf("%s/%d/%d/%d", d.Name, d.Scale, d.GenEdges, d.Seed)
	if adj, ok := adjCache[key]; ok {
		return adj
	}
	gen := rmat.NewGenerator(d.Scale, d.Seed)
	adj := gen.Adjacency(d.GenEdges)
	adjCache[key] = adj
	return adj
}

// AspenGraph builds the dataset as an Aspen graph with the given params.
func (d Dataset) AspenGraph(p ctree.Params) aspen.Graph {
	return aspen.FromAdjacency(p, d.Adjacency())
}

// NumEdges counts directed edges of the symmetrized dataset.
func (d Dataset) NumEdges() uint64 {
	var m uint64
	for _, nbrs := range d.Adjacency() {
		m += uint64(len(nbrs))
	}
	return m
}

// timeIt returns the wall-clock duration of f.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// medianOf3 runs f three times and returns the median duration (the paper
// reports medians for the update experiments).
func medianOf3(f func()) time.Duration {
	a, b, c := timeIt(f), timeIt(f), timeIt(f)
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// withProcs runs f with the parallelism primitives limited to p workers and
// restores the previous setting (used for the 1-thread columns).
func withProcs(p int, f func()) {
	old := parallel.Procs
	parallel.Procs = p
	defer func() { parallel.Procs = old }()
	f()
}

// secs formats a duration in seconds like the paper's tables.
func secs(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 1:
		return fmt.Sprintf("%.2f", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.4f", s)
	default:
		return fmt.Sprintf("%.2e", s)
	}
}

// gb formats a byte count as gigabytes (or MB below 0.1 GB) for the memory
// tables.
func gb(bytes uint64) string {
	g := float64(bytes) / 1e9
	if g >= 0.1 {
		return fmt.Sprintf("%.3f GB", g)
	}
	return fmt.Sprintf("%.2f MB", float64(bytes)/1e6)
}

// rate formats an updates-per-second figure.
func rate(updates uint64, d time.Duration) string {
	if d <= 0 {
		return "inf"
	}
	r := float64(updates) / d.Seconds()
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.1fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fK", r/1e3)
	default:
		return fmt.Sprintf("%.0f", r)
	}
}
