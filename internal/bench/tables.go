package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/csr"
	"repro/internal/ctree"
	"repro/internal/llama"
	"repro/internal/parallel"
	"repro/internal/stinger"
	"repro/internal/worklist"
)

// Config selects the experiment scale.
type Config struct {
	// Quick shrinks every input for smoke tests and CI.
	Quick bool
	// Procs is the all-core worker count (0 = current parallel.Procs).
	Procs int
}

func (c Config) procs() int {
	if c.Procs > 0 {
		return c.Procs
	}
	return parallel.Procs
}

// tw returns a tab-aligned writer that callers must Flush.
func tw(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// Table1 prints the input-graph statistics table (paper Table 1).
func Table1(w io.Writer, cfg Config) {
	t := tw(w)
	fmt.Fprintln(t, "Graph\tStand-in for\tNum. Vertices\tNum. Edges\tAvg. Deg.")
	for _, d := range datasets(cfg.Quick) {
		adj := d.Adjacency()
		n := len(adj)
		m := d.NumEdges()
		fmt.Fprintf(t, "%s\t%s\t%d\t%d\t%.1f\n", d.Name, d.StandIn, n, m, float64(m)/float64(n))
	}
	t.Flush()
}

// Table2 prints the memory-usage comparison across Aspen formats (Table 2).
func Table2(w io.Writer, cfg Config) {
	t := tw(w)
	fmt.Fprintln(t, "Graph\tFlat Snap.\tAspen Uncomp.\tAspen (No DE)\tAspen (DE)\tSavings")
	for _, d := range datasets(cfg.Quick) {
		var cols []string
		var uncomp, de uint64
		var flat uint64
		for _, f := range aspenFormats(ctree.DefaultB) {
			g := d.AspenGraph(f.p)
			mem := aspenMemoryBytes(g)
			if f.name == "Aspen Uncomp." {
				uncomp = mem
				flat = flatSnapshotBytes(g)
			}
			if f.name == "Aspen (DE)" {
				de = mem
			}
			cols = append(cols, gb(mem))
		}
		fmt.Fprintf(t, "%s\t%s\t%s\t%s\t%s\t%.2fx\n",
			d.Name, gb(flat), cols[0], cols[1], cols[2], float64(uncomp)/float64(de))
	}
	t.Flush()
}

// algoSet runs the five benchmark algorithms of Tables 3-4 on g, returning
// named durations. Local queries are averaged over several sources.
func algoSet(g aspen.Graph, quick bool) map[string]time.Duration {
	fs := aspen.BuildFlatSnapshot(g)
	src := firstNonIsolated(fs)
	out := map[string]time.Duration{}
	out["BFS"] = timeIt(func() { algos.BFS(fs, src, false) })
	out["BC"] = timeIt(func() { algos.BC(fs, src, false) })
	out["MIS"] = timeIt(func() { algos.MIS(fs, 42) })
	locals := 32
	if quick {
		locals = 4
	}
	d := timeIt(func() {
		for i := 0; i < locals; i++ {
			algos.TwoHop(g, uint32(i*7)%uint32(g.Order()))
		}
	})
	out["2-hop"] = d / time.Duration(locals)
	d = timeIt(func() {
		for i := 0; i < locals; i++ {
			algos.LocalCluster(g, uint32(i*13)%uint32(g.Order()), 1e-6, 10)
		}
	})
	out["Local-Cluster"] = d / time.Duration(locals)
	return out
}

func firstNonIsolated(g interface {
	Order() int
	Degree(u uint32) int
}) uint32 {
	for u := 0; u < g.Order(); u++ {
		if g.Degree(uint32(u)) > 0 {
			return uint32(u)
		}
	}
	return 0
}

// Table34 prints algorithm running times with 1 thread and all cores plus
// self-relative speedups (Tables 3 and 4 merged across datasets).
func Table34(w io.Writer, cfg Config) {
	t := tw(w)
	fmt.Fprintf(t, "Graph\tApplication\t(1)\t(%dc)\t(SU)\n", cfg.procs())
	names := []string{"BFS", "BC", "MIS", "2-hop", "Local-Cluster"}
	for _, d := range datasets(cfg.Quick) {
		g := d.AspenGraph(ctree.DefaultParams())
		var seq, par map[string]time.Duration
		withProcs(1, func() { seq = algoSet(g, cfg.Quick) })
		withProcs(cfg.procs(), func() { par = algoSet(g, cfg.Quick) })
		for _, name := range names {
			su := float64(seq[name]) / float64(par[name])
			fmt.Fprintf(t, "%s\t%s\t%s\t%s\t%.2f\n", d.Name, name, secs(seq[name]), secs(par[name]), su)
		}
	}
	t.Flush()
}

// Table5 prints memory and algorithm performance as a function of the chunk
// size b (Table 5).
func Table5(w io.Writer, cfg Config) {
	t := tw(w)
	fmt.Fprintln(t, "b (Exp. Chunk Size)\tMemory\tBFS\tBC\tMIS")
	ds := datasets(cfg.Quick)
	d := ds[len(ds)-1] // largest configured dataset (Twitter stand-in role)
	maxExp := 12
	if cfg.Quick {
		maxExp = 6
	}
	for exp := 1; exp <= maxExp; exp++ {
		p := ctree.DefaultParams()
		p.B = 1 << exp
		g := d.AspenGraph(p)
		mem := aspenMemoryBytes(g)
		fs := aspen.BuildFlatSnapshot(g)
		src := firstNonIsolated(fs)
		bfs := timeIt(func() { algos.BFS(fs, src, false) })
		bc := timeIt(func() { algos.BC(fs, src, false) })
		mis := timeIt(func() { algos.MIS(fs, 42) })
		fmt.Fprintf(t, "2^%d\t%s\t%s\t%s\t%s\n", exp, gb(mem), secs(bfs), secs(bc), secs(mis))
	}
	t.Flush()
}

// Table6 prints BFS with and without flat snapshots plus the snapshot build
// time (Table 6).
func Table6(w io.Writer, cfg Config) {
	t := tw(w)
	fmt.Fprintln(t, "Graph\tWithout FS\tWith FS\tSpeedup\tFS Time")
	for _, d := range datasets(cfg.Quick) {
		g := d.AspenGraph(ctree.DefaultParams())
		src := uint32(0)
		without := medianOf3(func() { algos.BFS(g, src, false) })
		var fs *aspen.FlatSnapshot
		fsTime := medianOf3(func() { fs = aspen.BuildFlatSnapshot(g) })
		with := medianOf3(func() { algos.BFS(fs, src, false) })
		fmt.Fprintf(t, "%s\t%s\t%s\t%.2f\t%s\n",
			d.Name, secs(without), secs(with+fsTime), float64(without)/float64(with+fsTime), secs(fsTime))
	}
	t.Flush()
}

// Table13 prints BFS over uncompressed trees vs C-trees (appendix Table 13).
func Table13(w io.Writer, cfg Config) {
	t := tw(w)
	fmt.Fprintln(t, "Graph\tAspen Uncomp.\tAspen (DE)\t(S)")
	for _, d := range datasets(cfg.Quick) {
		gu := d.AspenGraph(ctree.PlainParams())
		gc := d.AspenGraph(ctree.DefaultParams())
		fu := aspen.BuildFlatSnapshot(gu)
		fc := aspen.BuildFlatSnapshot(gc)
		src := firstNonIsolated(fc)
		tu := medianOf3(func() { algos.BFS(fu, src, false) })
		tc := medianOf3(func() { algos.BFS(fc, src, false) })
		fmt.Fprintf(t, "%s\t%s\t%s\t%.2fx\n", d.Name, secs(tu), secs(tc), float64(tu)/float64(tc))
	}
	t.Flush()
}

// AblationDirOpt compares Aspen BFS and BC with and without the direction
// optimization of §5.1 — the design-choice ablation for the sparse/dense
// traversal switch (the paper isolates it in Table 11's "A" vs "A†"
// columns).
func AblationDirOpt(w io.Writer, cfg Config) {
	t := tw(w)
	fmt.Fprintln(t, "Graph\tBFS (sparse only)\tBFS (dir. opt.)\tSpeedup\tBC (sparse only)\tBC (dir. opt.)\tSpeedup")
	for _, d := range datasets(cfg.Quick) {
		fs := aspen.BuildFlatSnapshot(d.AspenGraph(ctree.DefaultParams()))
		src := firstNonIsolated(fs)
		bfsNo := medianOf3(func() { algos.BFS(fs, src, true) })
		bfsYes := medianOf3(func() { algos.BFS(fs, src, false) })
		bcNo := medianOf3(func() { algos.BC(fs, src, true) })
		bcYes := medianOf3(func() { algos.BC(fs, src, false) })
		fmt.Fprintf(t, "%s\t%s\t%s\t%.2fx\t%s\t%s\t%.2fx\n", d.Name,
			secs(bfsNo), secs(bfsYes), float64(bfsNo)/float64(bfsYes),
			secs(bcNo), secs(bcYes), float64(bcNo)/float64(bcYes))
	}
	t.Flush()
}

// Table9 prints the memory comparison against Stinger, LLAMA and Ligra+
// (Table 9).
func Table9(w io.Writer, cfg Config) {
	t := tw(w)
	fmt.Fprintln(t, "Graph\tST\tLL\tLigra+\tAspen\tST/Asp.\tLL/Asp.\tL+/Asp.")
	for _, d := range datasets(cfg.Quick) {
		adj := d.Adjacency()
		st := stinger.New(len(adj))
		for u, nbrs := range adj {
			for _, v := range nbrs {
				st.InsertEdge(uint32(u), v)
			}
		}
		ll := llama.FromAdjacency(adj)
		lp := csr.CompressAdjacency(adj)
		asp := d.AspenGraph(ctree.DefaultParams())
		stB, llB, lpB, aB := st.MemoryBytes(), ll.MemoryBytes(), lp.MemoryBytes(), aspenMemoryBytes(asp)
		fmt.Fprintf(t, "%s\t%s\t%s\t%s\t%s\t%.2fx\t%.2fx\t%.3fx\n",
			d.Name, gb(stB), gb(llB), gb(lpB), gb(aB),
			float64(stB)/float64(aB), float64(llB)/float64(aB), float64(lpB)/float64(aB))
	}
	t.Flush()
}

// Table11 prints BFS and BC running times for Stinger, LLAMA and Aspen with
// direction optimization disabled for fairness (Table 11).
func Table11(w io.Writer, cfg Config) {
	t := tw(w)
	fmt.Fprintln(t, "App.\tGraph\tST\tLL\tAspen\tST/A\tLL/A")
	for _, d := range datasets(cfg.Quick) {
		adj := d.Adjacency()
		st := stinger.New(len(adj))
		for u, nbrs := range adj {
			for _, v := range nbrs {
				st.InsertEdge(uint32(u), v)
			}
		}
		ll := llama.FromAdjacency(adj)
		asp := aspen.BuildFlatSnapshot(d.AspenGraph(ctree.DefaultParams()))
		src := firstNonIsolated(asp)
		stBFS := medianOf3(func() { algos.BFS(st, src, true) })
		llBFS := medianOf3(func() { algos.BFS(ll, src, true) })
		aBFS := medianOf3(func() { algos.BFS(asp, src, true) })
		fmt.Fprintf(t, "BFS\t%s\t%s\t%s\t%s\t%.2f\t%.2f\n", d.Name,
			secs(stBFS), secs(llBFS), secs(aBFS),
			float64(stBFS)/float64(aBFS), float64(llBFS)/float64(aBFS))
		stBC := medianOf3(func() { algos.BC(st, src, true) })
		llBC := medianOf3(func() { algos.BC(ll, src, true) })
		aBC := medianOf3(func() { algos.BC(asp, src, true) })
		fmt.Fprintf(t, "BC\t%s\t%s\t%s\t%s\t%.2f\t%.2f\n", d.Name,
			secs(stBC), secs(llBC), secs(aBC),
			float64(stBC)/float64(aBC), float64(llBC)/float64(aBC))
	}
	t.Flush()
}

// Table12 prints BFS, BC and MIS against the static baselines: GAP-style
// flat CSR, Galois-style async worklist, and Ligra+-style compressed CSR
// (Table 12).
func Table12(w io.Writer, cfg Config) {
	t := tw(w)
	fmt.Fprintln(t, "App.\tGraph\tGAP\tGalois\tLigra+\tAspen\tGAP/A\tGAL/A\tL+/A")
	for _, d := range datasets(cfg.Quick) {
		adj := d.Adjacency()
		gap := csr.FromAdjacency(adj)
		lp := csr.CompressAdjacency(adj)
		asp := aspen.BuildFlatSnapshot(d.AspenGraph(ctree.DefaultParams()))
		src := firstNonIsolated(asp)

		gapBFS := medianOf3(func() { algos.BFS(gap, src, false) })
		galBFS := medianOf3(func() { worklist.BFSAsync(gap, src) })
		lpBFS := medianOf3(func() { algos.BFS(lp, src, false) })
		aBFS := medianOf3(func() { algos.BFS(asp, src, false) })
		fmt.Fprintf(t, "BFS\t%s\t%s\t%s\t%s\t%s\t%.2fx\t%.2fx\t%.2fx\n", d.Name,
			secs(gapBFS), secs(galBFS), secs(lpBFS), secs(aBFS),
			float64(gapBFS)/float64(aBFS), float64(galBFS)/float64(aBFS), float64(lpBFS)/float64(aBFS))

		gapBC := medianOf3(func() { algos.BC(gap, src, false) })
		lpBC := medianOf3(func() { algos.BC(lp, src, false) })
		aBC := medianOf3(func() { algos.BC(asp, src, false) })
		fmt.Fprintf(t, "BC\t%s\t%s\t-\t%s\t%s\t%.2fx\t-\t%.2fx\n", d.Name,
			secs(gapBC), secs(lpBC), secs(aBC),
			float64(gapBC)/float64(aBC), float64(lpBC)/float64(aBC))

		galMIS := medianOf3(func() { worklist.MISSerial(gap) })
		lpMIS := medianOf3(func() { algos.MIS(lp, 42) })
		aMIS := medianOf3(func() { algos.MIS(asp, 42) })
		fmt.Fprintf(t, "MIS\t%s\t-\t%s\t%s\t%s\t-\t%.2fx\t%.2fx\n", d.Name,
			secs(galMIS), secs(lpMIS), secs(aMIS),
			float64(galMIS)/float64(aMIS), float64(lpMIS)/float64(aMIS))
	}
	t.Flush()
}

// Table1415 prints the full Ligra+ vs Aspen algorithm comparison (appendix
// Tables 14 and 15).
func Table1415(w io.Writer, cfg Config) {
	t := tw(w)
	fmt.Fprintln(t, "Application\tGraph\tL\tA\tA/L")
	for _, d := range datasets(cfg.Quick) {
		adj := d.Adjacency()
		lp := csr.CompressAdjacency(adj)
		g := d.AspenGraph(ctree.DefaultParams())
		fs := aspen.BuildFlatSnapshot(g)
		src := firstNonIsolated(fs)
		row := func(name string, lf, af func()) {
			lt := medianOf3(lf)
			at := medianOf3(af)
			fmt.Fprintf(t, "%s\t%s\t%s\t%s\t%.2fx\n", name, d.Name, secs(lt), secs(at), float64(at)/float64(lt))
		}
		row("BFS", func() { algos.BFS(lp, src, false) }, func() { algos.BFS(fs, src, false) })
		row("BC", func() { algos.BC(lp, src, false) }, func() { algos.BC(fs, src, false) })
		row("MIS", func() { algos.MIS(lp, 42) }, func() { algos.MIS(fs, 42) })
		row("2-hop", func() { algos.TwoHop(lp, src) }, func() { algos.TwoHop(g, src) })
		row("Local-Cluster",
			func() { algos.LocalCluster(lp, src, 1e-6, 10) },
			func() { algos.LocalCluster(g, src, 1e-6, 10) })
	}
	t.Flush()
}
