package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/ligra"
	"repro/internal/rmat"
	"repro/internal/stream"
)

// Sec78 reproduces §7.8 through the serving layer (internal/stream) rather
// than the hand-rolled goroutines of Table7: per input graph, a writer
// sustains batched inserts/deletes through the coalescing ingest queue
// while reader transactions run BFS and CC on pinned snapshots, and the
// engine's histograms report sustained throughput and tail latencies. The
// full sweep (reader scaling, SSSP, baselines, JSON capture) lives in
// cmd/stream.
func Sec78(w io.Writer, cfg Config) {
	t := tw(w)
	fmt.Fprintln(t, "Graph\tUpdates/sec\tCommit p50\tCommit p99\tQuery p50\tQuery p99\tCoalesce\tRetired\tFlat builds/commits")
	readers := 2
	batch := uint64(2_000)
	d := 1 * time.Second
	if cfg.Quick {
		batch, d = 500, 150*time.Millisecond
	}
	for _, ds := range datasets(cfg.Quick) {
		g := ds.AspenGraph(ctree.DefaultParams())
		gen := rmat.NewGenerator(ds.Scale, ds.Seed+3000)
		e := stream.NewGraphEngine(g, stream.Options{})
		wl := stream.Workload[aspen.Graph, aspen.Edge]{
			Engine: e,
			NextBatch: stream.UpdateSchedule(ds.GenEdges, batch,
				func(lo, hi uint64) []aspen.Edge { return aspen.MakeUndirected(gen.Edges(lo, hi)) }),
			Readers: readers,
			Kernels: []stream.Kernel[aspen.Graph]{
				{Name: "bfs",
					Run:     func(g aspen.Graph) { algos.BFS(g, 0, false) },
					RunFlat: func(g ligra.Graph) { algos.BFS(g, 0, false) }},
				{Name: "cc",
					Run:     func(g aspen.Graph) { algos.ConnectedComponents(g) },
					RunFlat: func(g ligra.Graph) { algos.ConnectedComponents(g) }},
			},
			Duration: d,
			UseFlat:  true,
		}
		rep := wl.Run()
		e.Close()
		fmt.Fprintf(t, "%s\t%.3g\t%s\t%s\t%s\t%s\t%.2f\t%d\t%d/%d\n", ds.Name,
			rep.UpdatesPerSec, secs(rep.Commit.P50), secs(rep.Commit.P99),
			secs(rep.Query.P50), secs(rep.Query.P99), rep.Coalesce, rep.RetiredVersions,
			rep.FlatBuilds, rep.Commits)
	}
	t.Flush()
}
