package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/ligra"
	"repro/internal/rmat"
	"repro/internal/shard"
	"repro/internal/stream"
)

// Shard reports PR-5's multi-writer scaling surface: saturated batched
// ingest through the sharded serving layer at 1/2/4 shards, with readers
// running BFS on stitched flat views of pinned version vectors. Shard
// count 1 is the plain single engine (the ground-truth baseline, no
// facade); higher counts route every batch per shard and commit on all
// shard writers concurrently. The speedup column is the headline: it
// tracks available cores (a 1-core host shows ~1x — sharding is a
// scaling mechanism, not a constant-factor win).
func Shard(w io.Writer, cfg Config) {
	t := tw(w)
	fmt.Fprintln(t, "Graph\tShards\tUpdates/sec\tSpeedup\tCommit p99 (worst)\tQuery p50\tStitch builds/hits")
	batch := uint64(4_000)
	d := 1 * time.Second
	readers := 2
	if cfg.Quick {
		batch, d = 500, 150*time.Millisecond
	}
	for _, ds := range datasets(cfg.Quick) {
		gen := rmat.NewGenerator(ds.Scale, ds.Seed+4000)
		var base float64
		for _, shards := range []int{1, 2, 4} {
			var upsec float64
			var commitP99, queryP50 time.Duration
			var builds, hits uint64
			if shards == 1 {
				// Same initial edges as the sharded runs (one generator
				// prefix), so the sweep compares engines, not inputs.
				g := aspen.NewGraph(ctree.DefaultParams()).
					InsertEdges(aspen.MakeUndirected(gen.Edges(0, ds.GenEdges)))
				e := stream.NewGraphEngine(g, stream.Options{})
				wl := stream.Workload[aspen.Graph, aspen.Edge]{
					Engine: e,
					NextBatch: stream.UpdateSchedule(ds.GenEdges, batch,
						func(lo, hi uint64) []aspen.Edge { return aspen.MakeUndirected(gen.Edges(lo, hi)) }),
					Readers: readers,
					Kernels: []stream.Kernel[aspen.Graph]{{Name: "bfs",
						Run:     func(g aspen.Graph) { algos.BFS(g, 0, false) },
						RunFlat: func(g ligra.Graph) { algos.BFS(g, 0, false) }}},
					Duration: d,
					UseFlat:  true,
				}
				rep := wl.Run()
				e.Close()
				upsec, commitP99, queryP50 = rep.UpdatesPerSec, rep.Commit.P99, rep.Query.P50
			} else {
				part := shard.NewRangePartitioner(shards, uint32(1)<<ds.Scale)
				// Preload outside the serving path (same generator prefix
				// as the 1-shard baseline), so the table measures only the
				// streamed updates.
				c := shard.NewGraphClusterFrom(part, ctree.DefaultParams(),
					aspen.MakeUndirected(gen.Edges(0, ds.GenEdges)), stream.Options{})
				wl := shard.Workload[aspen.Graph, aspen.Edge]{
					Cluster: c,
					NextBatch: stream.UpdateSchedule(ds.GenEdges, batch,
						func(lo, hi uint64) []aspen.Edge { return aspen.MakeUndirected(gen.Edges(lo, hi)) }),
					Readers: readers,
					Kernels: []shard.Kernel{{Name: "bfs",
						Run: func(g ligra.Graph) { algos.BFS(g, 0, false) }}},
					Duration: d,
					UseFlat:  true,
				}
				rep := wl.Run()
				c.Close()
				upsec, commitP99, queryP50 = rep.UpdatesPerSec, rep.CommitWorst.P99, rep.Query.P50
				builds, hits = rep.StitchBuilds, rep.StitchHits
			}
			if shards == 1 {
				base = upsec
			}
			speedup := 0.0
			if base > 0 {
				speedup = upsec / base
			}
			fmt.Fprintf(t, "%s\t%d\t%.3g\t%.2fx\t%s\t%s\t%d/%d\n",
				ds.Name, shards, upsec, speedup, secs(commitP99), secs(queryP50), builds, hits)
		}
	}
	t.Flush()
}
