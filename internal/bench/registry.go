package bench

import (
	"fmt"
	"io"
	"sort"
)

// Experiment couples a runner with the paper table/figure it regenerates.
type Experiment struct {
	// ID is the harness name, e.g. "table2" or "figure5".
	ID string
	// Title describes the paper artifact.
	Title string
	// Run executes the experiment, writing rows to w.
	Run func(w io.Writer, cfg Config)
}

// Experiments enumerates every table and figure of the evaluation.
var Experiments = []Experiment{
	{"table1", "Table 1: input graph statistics", Table1},
	{"table2", "Table 2: memory usage across Aspen formats", Table2},
	{"table3", "Tables 3-4: algorithm times, 1-thread vs all cores", Table34},
	{"table4", "Tables 3-4: algorithm times, 1-thread vs all cores", Table34},
	{"table5", "Table 5: memory and performance vs chunk size b", Table5},
	{"table6", "Table 6: BFS with and without flat snapshots", Table6},
	{"table7", "Table 7: concurrent updates and queries", Table7},
	{"table8", "Table 8: parallel batch-update throughput", Table8},
	{"figure5", "Figure 5: batch size vs insert/delete throughput", Figure5},
	{"table9", "Table 9: memory vs Stinger, LLAMA, Ligra+", Table9},
	{"table10", "Table 10: batch updates on an empty graph vs Stinger", Table10},
	{"table11", "Table 11: BFS/BC vs Stinger and LLAMA", Table11},
	{"table12", "Table 12: BFS/BC/MIS vs GAP, Galois, Ligra+", Table12},
	{"table13", "Table 13: BFS on uncompressed trees vs C-trees", Table13},
	{"table14", "Tables 14-15: Ligra+ vs Aspen, all algorithms", Table1415},
	{"table15", "Tables 14-15: Ligra+ vs Aspen, all algorithms", Table1415},
	{"ablation-diropt", "Ablation: direction optimization on Aspen BFS/BC", AblationDirOpt},
	{"sec7.8", "§7.8: live-stream engine, simultaneous updates and queries", Sec78},
	{"flat", "PR-4: §5.1 flat snapshots — parallel build scaling, flat vs tree kernels", Flat},
	{"shard", "PR-5: sharded serving — multi-writer ingest scaling with stitched flat reads", Shard},
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every distinct experiment in order.
func RunAll(w io.Writer, cfg Config) {
	seen := map[string]bool{}
	ids := make([]string, 0, len(Experiments))
	for _, e := range Experiments {
		if !seen[e.Title] {
			seen[e.Title] = true
			ids = append(ids, e.ID)
		}
	}
	sort.SliceStable(ids, func(i, j int) bool { return i < j }) // preserve listed order
	for _, id := range ids {
		e, _ := Lookup(id)
		fmt.Fprintf(w, "== %s ==\n", e.Title)
		e.Run(w, cfg)
		fmt.Fprintln(w)
	}
}
