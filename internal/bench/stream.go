package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/rmat"
	"repro/internal/stinger"
)

// Table7 reproduces the simultaneous-updates-and-queries experiment (§7.3):
// one goroutine replays a sequential stream of single-edge updates sampled
// from the graph while another runs a stream of BFS queries; reported are
// the update throughput, the average latency to make an edge visible, and
// the average BFS latency both concurrent with updates and in isolation.
func Table7(w io.Writer, cfg Config) {
	t := tw(w)
	fmt.Fprintln(t, "Graph\tUpdates/sec\tUpd. Latency\tBFS Latency (C)\tBFS Latency (I)")
	for _, d := range datasets(cfg.Quick) {
		g := d.AspenGraph(ctree.DefaultParams())
		sampleK := 20_000
		queries := 6
		if cfg.Quick {
			sampleK, queries = 500, 2
		}
		start, stream := rmat.SampleUpdateStream(g, sampleK, 11)
		vg := aspen.NewVersionedGraph(start)

		// Isolated query latency on the final state of the stream. The
		// queries repeat over one static snapshot, so the §5.1 flat view
		// amortizes its O(n) build and is the right access path (ROADMAP
		// (n)); the concurrent path below stays tree-based — every query
		// there lands on a fresh version, so a per-query flat build would
		// never amortize.
		final := start
		for _, op := range stream.Ops {
			ue := aspen.MakeUndirected([]aspen.Edge{op.Edge})
			if op.Delete {
				final = final.DeleteEdges(ue)
			} else {
				final = final.InsertEdges(ue)
			}
		}
		finalFlat := aspen.BuildFlatSnapshot(final)
		isolated := timeIt(func() {
			for q := 0; q < queries; q++ {
				algos.BFS(finalFlat, uint32(q*17)%uint32(final.Order()), false)
			}
		}) / time.Duration(queries)

		var updates atomic.Int64
		var updDur atomic.Int64
		var wg sync.WaitGroup
		var stop atomic.Bool
		wg.Add(1)
		go func() { // sequential update stream (2 directed edges per op)
			defer wg.Done()
			for _, op := range stream.Ops {
				if stop.Load() {
					return
				}
				ue := aspen.MakeUndirected([]aspen.Edge{op.Edge})
				t0 := time.Now()
				if op.Delete {
					vg.DeleteEdges(ue)
				} else {
					vg.InsertEdges(ue)
				}
				updDur.Add(int64(time.Since(t0)))
				updates.Add(2)
			}
		}()
		var concurrent time.Duration
		for q := 0; q < queries; q++ {
			v := vg.Acquire()
			concurrent += timeIt(func() {
				algos.BFS(v.Graph, uint32(q*17)%uint32(v.Graph.Order()), false)
			})
			vg.Release(v)
		}
		concurrent /= time.Duration(queries)
		stop.Store(true)
		wg.Wait()
		u := uint64(updates.Load())
		total := time.Duration(updDur.Load())
		lat := time.Duration(0)
		if u > 0 {
			lat = total / time.Duration(u/2)
		}
		fmt.Fprintf(t, "%s\t%s\t%s\t%s\t%s\n", d.Name, rate(u, total), secs(lat),
			secs(concurrent), secs(isolated))
	}
	t.Flush()
}

// batchSizes returns the Table 8 batch-size sweep, scaled to the machine.
func batchSizes(quick bool) []int {
	if quick {
		return []int{10, 1_000, 10_000}
	}
	return []int{10, 1_000, 100_000, 1_000_000, 2_000_000}
}

// allocsDuring runs f and returns the number of heap allocations performed
// while it ran (via runtime.MemStats deltas; concurrent allocation from
// other goroutines is attributed too, so run it on a quiet process).
func allocsDuring(f func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// Table8 reports parallel batch-insert throughput into each input graph with
// edges drawn from the rMAT generator (§7.4). Times include sorting and
// duplicate combination, as in the paper. Alongside each throughput the
// harness reports allocations per inserted edge — the metric the
// zero-allocation chunk pipeline targets.
func Table8(w io.Writer, cfg Config) {
	t := tw(w)
	fmt.Fprint(t, "Graph")
	for _, bs := range batchSizes(cfg.Quick) {
		fmt.Fprintf(t, "\t%d", bs)
	}
	fmt.Fprintln(t)
	for _, d := range datasets(cfg.Quick) {
		g := d.AspenGraph(ctree.DefaultParams())
		gen := rmat.NewGenerator(d.Scale, d.Seed+1000)
		fmt.Fprint(t, d.Name)
		for _, bs := range batchSizes(cfg.Quick) {
			batch := gen.Edges(0, uint64(bs))
			dur := medianOf3(func() { g.InsertEdges(batch) })
			al := allocsDuring(func() { g.InsertEdges(batch) })
			fmt.Fprintf(t, "\t%s (%.2f allocs/edge)", rate(uint64(bs), dur), float64(al)/float64(bs))
		}
		fmt.Fprintln(t)
	}
	t.Flush()
}

// Figure5 prints the insertion and deletion throughput series versus batch
// size for the smallest and largest inputs (Figure 5's log-log series).
func Figure5(w io.Writer, cfg Config) {
	t := tw(w)
	fmt.Fprintln(t, "Graph\tOp\tBatch Size\tThroughput (edges/sec)")
	ds := datasets(cfg.Quick)
	picks := []Dataset{ds[0]}
	if len(ds) > 1 {
		picks = append(picks, ds[len(ds)-1])
	}
	for _, d := range picks {
		g := d.AspenGraph(ctree.DefaultParams())
		gen := rmat.NewGenerator(d.Scale, d.Seed+2000)
		for _, bs := range batchSizes(cfg.Quick) {
			batch := gen.Edges(0, uint64(bs))
			ins := medianOf3(func() { g.InsertEdges(batch) })
			withBatch := g.InsertEdges(batch)
			del := medianOf3(func() { withBatch.DeleteEdges(batch) })
			fmt.Fprintf(t, "%s\tI\t%d\t%.3e\n", d.Name, bs, float64(bs)/ins.Seconds())
			fmt.Fprintf(t, "%s\tD\t%d\t%.3e\n", d.Name, bs, float64(bs)/del.Seconds())
		}
	}
	t.Flush()
}

// Table10 compares batch edge insertions into an initially empty graph
// between the Stinger analogue and Aspen (§7.5, Table 10).
func Table10(w io.Writer, cfg Config) {
	t := tw(w)
	fmt.Fprintln(t, "Batch Size\tStinger\tUpdates/sec\tAspen\tUpdates/sec")
	scale := 22
	sizes := []int{10, 100, 1_000, 10_000, 100_000, 1_000_000, 2_000_000}
	if cfg.Quick {
		scale = 12
		sizes = []int{10, 100, 1_000}
	}
	gen := rmat.NewGenerator(scale, 77)
	// As in §7.5, each system starts from a nearly-empty pre-allocated
	// graph and ingests consecutive distinct batches; the median batch
	// time is reported.
	for _, bs := range sizes {
		st := stinger.New(1 << scale)
		ag := aspen.NewGraph(ctree.DefaultParams())
		var stTimes, aTimes []time.Duration
		for trial := uint64(0); trial < 3; trial++ {
			batch := gen.Edges(trial*uint64(bs), (trial+1)*uint64(bs))
			stTimes = append(stTimes, timeIt(func() { st.InsertBatch(batch) }))
			aTimes = append(aTimes, timeIt(func() { ag = ag.InsertEdges(batch) }))
		}
		stTime := median(stTimes)
		aTime := median(aTimes)
		fmt.Fprintf(t, "%d\t%s\t%s\t%s\t%s\n", bs,
			secs(stTime), rate(uint64(bs), stTime),
			secs(aTime), rate(uint64(bs), aTime))
	}
	t.Flush()
}

// median of a small duration slice.
func median(ds []time.Duration) time.Duration {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j-1] > ds[j]; j-- {
			ds[j-1], ds[j] = ds[j], ds[j-1]
		}
	}
	return ds[len(ds)/2]
}
