package bench

import (
	"bytes"
	"strings"
	"testing"
)

// Every experiment must run end-to-end in quick mode and emit a header plus
// at least one data row.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := Config{Quick: true}
	seen := map[string]bool{}
	for _, e := range Experiments {
		if seen[e.Title] {
			continue
		}
		seen[e.Title] = true
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			e.Run(&buf, cfg)
			lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
			if len(lines) < 2 {
				t.Fatalf("experiment %s produced no data:\n%s", e.ID, buf.String())
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("table2"); !ok {
		t.Fatal("table2 missing")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus id found")
	}
}

func TestDatasetCaching(t *testing.T) {
	d := datasets(true)[0]
	a := d.Adjacency()
	b := d.Adjacency()
	if &a[0] != &b[0] {
		t.Fatal("adjacency not cached")
	}
}

func TestMemoryAccountingOrdering(t *testing.T) {
	// DE must be the smallest format, uncompressed the largest.
	d := datasets(true)[0]
	var sizes []uint64
	for _, f := range aspenFormats(128) {
		sizes = append(sizes, aspenMemoryBytes(d.AspenGraph(f.p)))
	}
	if !(sizes[0] > sizes[1] && sizes[1] >= sizes[2]) {
		t.Fatalf("expected Uncomp > NoDE >= DE, got %v", sizes)
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in regular mode only")
	}
	var buf bytes.Buffer
	RunAll(&buf, Config{Quick: true})
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatal("RunAll missing experiments")
	}
}
