package bench

import (
	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/encoding"
)

// Analytic node sizes from the paper (§7.1): in the uncompressed format a
// vertex-tree node is 48 bytes and an edge-tree node 32 bytes; with C-trees
// a vertex-tree node is 56 bytes (prefix pointers + padding) and an
// edge-tree (head) node 48 bytes. Computing memory analytically from node
// and chunk counts mirrors how the paper itself reports footprints for
// graphs that exceed physical memory.
const (
	uncompVertexNode = 48
	uncompEdgeNode   = 32
	ctreeVertexNode  = 56
	ctreeEdgeNode    = 48
)

// aspenMemoryBytes returns the analytic footprint of an Aspen graph under
// its configured format.
func aspenMemoryBytes(g aspen.Graph) uint64 {
	s := g.Stats()
	if g.Params().Plain {
		return uint64(s.VertexNodes)*uncompVertexNode + uint64(s.Edge.Nodes)*uncompEdgeNode
	}
	return uint64(s.VertexNodes)*ctreeVertexNode +
		uint64(s.Edge.Nodes)*ctreeEdgeNode +
		uint64(s.Edge.ChunkBytes)
}

// flatSnapshotBytes is the footprint of a flat snapshot: one 8-byte pointer
// per vertex id (Table 2's "Flat Snap." column).
func flatSnapshotBytes(g aspen.Graph) uint64 {
	return uint64(g.Order()) * 8
}

// aspenFormats enumerates the three memory formats of Table 2.
type aspenFormat struct {
	name string
	p    ctree.Params
}

func aspenFormats(b uint32) []aspenFormat {
	return []aspenFormat{
		{"Aspen Uncomp.", ctree.PlainParams()},
		{"Aspen (No DE)", ctree.Params{B: b, Codec: encoding.Raw}},
		{"Aspen (DE)", ctree.Params{B: b, Codec: encoding.Delta}},
	}
}
