package rpc

import (
	"bytes"
	"io"
	"testing"
)

// FuzzFrameCodec mirrors the WAL corruption sweep at the RPC layer:
// any byte stream must either decode into frames that re-encode
// byte-identically, or be refused with an error — never panic, never
// silently yield a frame that differs from what a writer produced.
func FuzzFrameCodec(f *testing.F) {
	var e Encoder
	seed := func(v Verb, flags uint8, id uint64, body []byte) []byte {
		e.Begin(v, flags, id)
		e.Bytes(body)
		fr, err := e.Finish()
		if err != nil {
			f.Fatal(err)
		}
		out := make([]byte, len(fr))
		copy(out, fr)
		return out
	}
	f.Add(seed(VerbHello, 0, 1, []byte{1, 2, 3, 4}))
	f.Add(seed(VerbSubmit, FlagDel, 99, bytes.Repeat([]byte{0xCD}, 256)))
	two := append(seed(VerbPin, FlagResp, 5, nil), seed(VerbRead, FlagBySeq, 6, []byte("range"))...)
	f.Add(two)
	f.Add(two[:len(two)-3]) // torn tail
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var re Encoder
		for {
			m, err := r.Next()
			if err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					return
				}
				// Framing errors are fine; panics are not (the fuzz
				// engine catches those itself).
				return
			}
			// A decoded frame must survive a re-encode round trip.
			re.Begin(m.Verb, m.Flags, m.ReqID)
			re.Bytes(m.Body)
			fr, err := re.Finish()
			if err != nil {
				t.Fatalf("re-encode of decoded frame failed: %v", err)
			}
			rt, err := NewReader(bytes.NewReader(fr)).Next()
			if err != nil {
				t.Fatalf("round trip decode failed: %v", err)
			}
			if rt.Verb != m.Verb || rt.Flags != m.Flags || rt.ReqID != m.ReqID || !bytes.Equal(rt.Body, m.Body) {
				t.Fatalf("round trip mismatch: %+v vs %+v", rt, m)
			}
			// Body aliasing: copy before the next Next invalidates it.
			// (We compared above before advancing, so nothing to keep.)
		}
	})
}
