// Package rpc implements the length-prefixed, checksummed message
// framing used by the distributed shard transport.
//
// The wire discipline mirrors the WAL's (internal/wal): every frame is
//
//	[len u32][crc u32][verb u8][flags u8][reserved u16][reqID u64][body ...]
//
// little-endian throughout. len counts everything after the crc field
// (the 12-byte message head plus the body) and crc is CRC32C
// (Castagnoli) over those same bytes, so a torn or bit-flipped frame is
// refused on decode exactly like a torn WAL record. Encoding reuses a
// grow-only scratch buffer per Encoder, so the steady-state hot path
// performs zero allocations (CI-gated by BenchmarkFrameEncode).
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Verb identifies the operation a frame carries.
type Verb uint8

const (
	// VerbHello is the connection handshake: the client announces the
	// protocol version and the shard identity it expects; the server
	// confirms or the connection dies.
	VerbHello Verb = 1
	// VerbSubmit carries one routed edge batch. The response is
	// deferred until the batch commits (and, under per-commit fsync,
	// is durable), so an ack implies the committed prefix contains it.
	VerbSubmit Verb = 2
	// VerbFlush drains the shard's ingest queue and returns the commit
	// stamp covering everything received before it on this connection.
	VerbFlush Verb = 3
	// VerbPin pins the shard's latest version and returns its stamp
	// plus the WAL sequence watermark used for replica reads.
	VerbPin Verb = 4
	// VerbRelease releases one pin taken by VerbPin.
	VerbRelease Verb = 5
	// VerbRead fetches a vertex range (degrees + adjacency) of a
	// pinned version (by stamp) or of a replica state (by WAL seq,
	// with FlagBySeq).
	VerbRead Verb = 6
	// VerbStats returns a JSON-encoded server stats snapshot.
	VerbStats Verb = 7
	// VerbTail subscribes the connection to the shard's commit log.
	// After an optional VerbTailSnap bootstrap, the server streams one
	// VerbTailRec per WAL record, in sequence order, forever.
	VerbTail Verb = 8
	// VerbTailRec is one shipped WAL record (server push).
	VerbTailRec Verb = 9
	// VerbTailSnap is a snapshot bootstrap for a tail subscriber whose
	// resume point predates the oldest retained WAL record.
	VerbTailSnap Verb = 10
	// VerbHealth is the liveness/role probe: the response carries the
	// endpoint's role (primary / replica / promoted replica), its latest
	// commit stamp and its WAL-seq watermark. Cheap enough to poll.
	VerbHealth Verb = 11

	// NumVerbs is one past the highest verb — sizes per-verb tables
	// (the server's dispatch-latency histograms).
	NumVerbs = 12
)

// verbNames maps verbs to the stable label spellings the metrics layer
// exports.
var verbNames = [NumVerbs]string{
	VerbHello: "hello", VerbSubmit: "submit", VerbFlush: "flush",
	VerbPin: "pin", VerbRelease: "release", VerbRead: "read",
	VerbStats: "stats", VerbTail: "tail", VerbTailRec: "tail_rec",
	VerbTailSnap: "tail_snap", VerbHealth: "health",
}

// String returns the verb's wire-stable lowercase name.
func (v Verb) String() string {
	if int(v) < len(verbNames) && verbNames[v] != "" {
		return verbNames[v]
	}
	return "unknown"
}

// Frame flag bits.
const (
	// FlagResp marks a response frame; its reqID echoes the request.
	FlagResp uint8 = 1 << 0
	// FlagErr marks an error response; the body is the message string.
	FlagErr uint8 = 1 << 1
	// FlagDel marks a VerbSubmit batch as deletes rather than inserts.
	FlagDel uint8 = 1 << 2
	// FlagBySeq marks a VerbRead that addresses replica state by WAL
	// sequence number instead of a pinned commit stamp.
	FlagBySeq uint8 = 1 << 3
	// FlagLagging marks an error response that means "replica behind
	// the requested sequence" — the client should fall back to the
	// primary rather than fail the read.
	FlagLagging uint8 = 1 << 4
	// FlagDeduped marks a VerbSubmit ack that was answered from the
	// server's per-client dedup window: the batch was already part of
	// the committed prefix (a retry after a lost ack) and was not
	// re-applied. The body carries a stamp at or above the original
	// commit's, exactly as binding as a first-attempt ack.
	FlagDeduped uint8 = 1 << 5
)

const (
	frameHead = 8  // len u32 | crc u32
	msgHead   = 12 // verb u8 | flags u8 | reserved u16 | reqID u64

	// MaxFrame bounds a single frame (head + body). Large enough for a
	// whole-shard adjacency fetch at bench scale, small enough that a
	// corrupt length field cannot drive an absurd allocation.
	MaxFrame = 1 << 26

	// ProtoVersion is bumped on any incompatible wire change.
	// v2: VerbSubmit bodies lead with a (clientID u64, clientSeq u64)
	// idempotency note; VerbHealth added.
	ProtoVersion = 2
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrFrame is wrapped by all framing-level decode failures (bad
// length, checksum mismatch, short message head).
var ErrFrame = errors.New("rpc: bad frame")

// Msg is one decoded frame. Body aliases the Reader's internal scratch
// and is valid only until the next call to Next.
type Msg struct {
	Verb  Verb
	Flags uint8
	ReqID uint64
	Body  []byte
}

// Encoder builds frames into a grow-only scratch buffer. It is not
// safe for concurrent use; callers serialize access (one Encoder per
// connection writer).
type Encoder struct {
	buf []byte
}

// Begin resets the encoder and writes the message head for a new
// frame. Body bytes are appended with the U*/F32/Bytes methods and the
// completed frame is obtained from Finish.
func (e *Encoder) Begin(v Verb, flags uint8, reqID uint64) {
	if cap(e.buf) < frameHead+msgHead {
		e.buf = make([]byte, 0, 512)
	}
	e.buf = e.buf[:frameHead+msgHead]
	// len and crc are filled in by Finish.
	e.buf[frameHead] = byte(v)
	e.buf[frameHead+1] = flags
	e.buf[frameHead+2] = 0
	e.buf[frameHead+3] = 0
	binary.LittleEndian.PutUint64(e.buf[frameHead+4:], reqID)
}

// U8 appends one byte to the body.
func (e *Encoder) U8(x uint8) { e.buf = append(e.buf, x) }

// U32 appends a little-endian uint32 to the body.
func (e *Encoder) U32(x uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, x)
}

// U64 appends a little-endian uint64 to the body.
func (e *Encoder) U64(x uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, x)
}

// F32 appends a little-endian IEEE-754 float32 to the body.
func (e *Encoder) F32(x float32) { e.U32(math.Float32bits(x)) }

// Bytes appends raw bytes to the body.
func (e *Encoder) Bytes(p []byte) { e.buf = append(e.buf, p...) }

// String appends the bytes of s to the body.
func (e *Encoder) String(s string) { e.buf = append(e.buf, s...) }

// Reserve extends the body by n bytes and returns the new region for
// the caller to fill in place (e.g. a codec encoding edges directly
// into the frame). The slice is only valid until the next append.
func (e *Encoder) Reserve(n int) []byte {
	off := len(e.buf)
	if cap(e.buf)-off < n {
		grown := make([]byte, off, off+n+off/2)
		copy(grown, e.buf)
		e.buf = grown
	}
	e.buf = e.buf[:off+n]
	return e.buf[off : off+n]
}

// Finish fills in the length and checksum and returns the completed
// frame. The slice aliases the encoder's scratch and is valid until
// the next Begin.
func (e *Encoder) Finish() ([]byte, error) {
	payload := len(e.buf) - frameHead
	if frameHead+payload > MaxFrame {
		return nil, fmt.Errorf("rpc: frame too large (%d bytes)", frameHead+payload)
	}
	binary.LittleEndian.PutUint32(e.buf[0:], uint32(payload))
	crc := crc32.Checksum(e.buf[frameHead:], castagnoli)
	binary.LittleEndian.PutUint32(e.buf[4:], crc)
	return e.buf, nil
}

// Reader decodes frames from an io.Reader into a grow-only scratch
// buffer. Not safe for concurrent use.
type Reader struct {
	r    io.Reader
	head [frameHead]byte
	buf  []byte
}

// NewReader returns a frame reader over r. Wrap network connections in
// a bufio.Reader first to avoid tiny reads.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// Next reads and verifies the next frame. A clean EOF at a frame
// boundary returns io.EOF; truncation mid-frame returns
// io.ErrUnexpectedEOF; a checksum or length violation returns an error
// wrapping ErrFrame. The returned Msg's Body aliases internal scratch.
func (r *Reader) Next() (Msg, error) {
	if _, err := io.ReadFull(r.r, r.head[:]); err != nil {
		return Msg{}, err // io.EOF only at a frame boundary
	}
	plen := binary.LittleEndian.Uint32(r.head[0:])
	want := binary.LittleEndian.Uint32(r.head[4:])
	if plen < msgHead || int(plen) > MaxFrame-frameHead {
		return Msg{}, fmt.Errorf("%w: payload length %d", ErrFrame, plen)
	}
	if cap(r.buf) < int(plen) {
		r.buf = make([]byte, plen)
	}
	r.buf = r.buf[:plen]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Msg{}, err
	}
	if got := crc32.Checksum(r.buf, castagnoli); got != want {
		return Msg{}, fmt.Errorf("%w: checksum mismatch (got %08x want %08x)", ErrFrame, got, want)
	}
	return Msg{
		Verb:  Verb(r.buf[0]),
		Flags: r.buf[1],
		ReqID: binary.LittleEndian.Uint64(r.buf[4:]),
		Body:  r.buf[msgHead:],
	}, nil
}
