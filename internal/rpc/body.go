package rpc

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrBody is returned by Body.Err when a decode ran past the end of
// the message body — a malformed (but checksum-valid) message.
var ErrBody = errors.New("rpc: short message body")

// Body is a sequential decode cursor over a message body. Overruns are
// sticky: once a read runs past the end, every subsequent read returns
// zero values and Err reports ErrBody, so handlers can decode a whole
// message and check once.
type Body struct {
	b    []byte
	off  int
	fail bool
}

// NewBody returns a cursor over b.
func NewBody(b []byte) Body { return Body{b: b} }

// Err reports whether any read overran the body.
func (d *Body) Err() error {
	if d.fail {
		return ErrBody
	}
	return nil
}

// Len returns the number of unread bytes.
func (d *Body) Len() int { return len(d.b) - d.off }

func (d *Body) take(n int) []byte {
	if d.fail || n < 0 || len(d.b)-d.off < n {
		d.fail = true
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

// U8 reads one byte.
func (d *Body) U8() uint8 {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// U32 reads a little-endian uint32.
func (d *Body) U32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 reads a little-endian uint64.
func (d *Body) U64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// F32 reads a little-endian IEEE-754 float32.
func (d *Body) F32() float32 { return math.Float32frombits(d.U32()) }

// Bytes reads n raw bytes, aliasing the underlying body.
func (d *Body) Bytes(n int) []byte { return d.take(n) }

// Rest returns all unread bytes, aliasing the underlying body.
func (d *Body) Rest() []byte {
	p := d.b[d.off:]
	d.off = len(d.b)
	return p
}
