package rpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func encodeFrame(t *testing.T, e *Encoder, v Verb, flags uint8, id uint64, body []byte) []byte {
	t.Helper()
	e.Begin(v, flags, id)
	e.Bytes(body)
	f, err := e.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	out := make([]byte, len(f))
	copy(out, f)
	return out
}

func TestFrameRoundTrip(t *testing.T) {
	var e Encoder
	var stream bytes.Buffer
	type msg struct {
		v     Verb
		flags uint8
		id    uint64
		body  []byte
	}
	msgs := []msg{
		{VerbHello, 0, 1, []byte{1, 2, 3}},
		{VerbSubmit, FlagDel, 2, bytes.Repeat([]byte{0xAB}, 1<<16)},
		{VerbFlush, FlagResp, 3, nil},
		{VerbRead, FlagResp | FlagErr | FlagLagging, 1 << 60, []byte("replica behind")},
	}
	for _, m := range msgs {
		stream.Write(encodeFrame(t, &e, m.v, m.flags, m.id, m.body))
	}
	r := NewReader(&stream)
	for i, m := range msgs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if got.Verb != m.v || got.Flags != m.flags || got.ReqID != m.id || !bytes.Equal(got.Body, m.body) {
			t.Fatalf("msg %d: got %+v want %+v", i, got, m)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("at end: want io.EOF, got %v", err)
	}
}

func TestFrameEncoderPrimitives(t *testing.T) {
	var e Encoder
	e.Begin(VerbPin, FlagResp, 7)
	e.U8(0xFE)
	e.U32(0xDEADBEEF)
	e.U64(1 << 50)
	e.F32(3.5)
	copy(e.Reserve(4), []byte{9, 8, 7, 6})
	e.String("tail")
	f, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewReader(bytes.NewReader(f)).Next()
	if err != nil {
		t.Fatal(err)
	}
	d := NewBody(m.Body)
	if got := d.U8(); got != 0xFE {
		t.Fatalf("U8 = %x", got)
	}
	if got := d.U32(); got != 0xDEADBEEF {
		t.Fatalf("U32 = %x", got)
	}
	if got := d.U64(); got != 1<<50 {
		t.Fatalf("U64 = %x", got)
	}
	if got := d.F32(); got != 3.5 {
		t.Fatalf("F32 = %v", got)
	}
	if got := d.Bytes(4); !bytes.Equal(got, []byte{9, 8, 7, 6}) {
		t.Fatalf("Bytes = %v", got)
	}
	if got := string(d.Rest()); got != "tail" {
		t.Fatalf("Rest = %q", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	// Overrun is sticky and reported once.
	d.U64()
	if err := d.Err(); !errors.Is(err, ErrBody) {
		t.Fatalf("overrun Err = %v", err)
	}
}

func TestFrameTruncationRefused(t *testing.T) {
	var e Encoder
	f := encodeFrame(t, &e, VerbSubmit, 0, 42, bytes.Repeat([]byte{7}, 100))
	for cut := 1; cut < len(f); cut++ {
		_, err := NewReader(bytes.NewReader(f[:cut])).Next()
		if err == nil {
			t.Fatalf("cut=%d: truncated frame accepted", cut)
		}
		if err == io.EOF {
			t.Fatalf("cut=%d: truncation reported as clean EOF", cut)
		}
	}
}

func TestFrameCorruptionRefused(t *testing.T) {
	var e Encoder
	f := encodeFrame(t, &e, VerbRead, FlagResp, 9, bytes.Repeat([]byte{3}, 64))
	for i := 0; i < len(f); i++ {
		mut := make([]byte, len(f))
		copy(mut, f)
		mut[i] ^= 0x40
		// CRC32 detects all single-bit errors, and a flipped length
		// field either truncates (CRC mismatch) or overruns (EOF).
		if _, err := NewReader(bytes.NewReader(mut)).Next(); err == nil {
			t.Fatalf("byte %d: corrupted frame accepted", i)
		}
	}
}

func TestFrameLengthBounds(t *testing.T) {
	// Absurd length field must be refused before allocating.
	var head [frameHead]byte
	binary.LittleEndian.PutUint32(head[0:], uint32(MaxFrame))
	_, err := NewReader(bytes.NewReader(head[:])).Next()
	if !errors.Is(err, ErrFrame) {
		t.Fatalf("oversize length: %v", err)
	}
	// Below the message head is also invalid.
	binary.LittleEndian.PutUint32(head[0:], msgHead-1)
	_, err = NewReader(bytes.NewReader(head[:])).Next()
	if !errors.Is(err, ErrFrame) {
		t.Fatalf("undersize length: %v", err)
	}
}

func TestFinishRejectsOversizeFrame(t *testing.T) {
	var e Encoder
	e.Begin(VerbSubmit, 0, 1)
	e.Reserve(MaxFrame)
	if _, err := e.Finish(); err == nil {
		t.Fatal("oversize frame encoded")
	}
}

func BenchmarkFrameEncode(b *testing.B) {
	var e Encoder
	edges := make([]byte, 1000*8)
	for i := range edges {
		edges[i] = byte(i)
	}
	b.ReportAllocs()
	b.SetBytes(int64(frameHead + msgHead + 8 + len(edges)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Begin(VerbSubmit, FlagDel, uint64(i))
		e.U8(8)
		e.U8(0)
		e.U8(0)
		e.U8(0)
		e.U32(1000)
		copy(e.Reserve(len(edges)), edges)
		if _, err := e.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameDecode(b *testing.B) {
	var e Encoder
	e.Begin(VerbSubmit, 0, 1)
	copy(e.Reserve(8000), bytes.Repeat([]byte{5}, 8000))
	f, err := e.Finish()
	if err != nil {
		b.Fatal(err)
	}
	frame := make([]byte, len(f))
	copy(frame, f)
	br := bytes.NewReader(frame)
	r := NewReader(br)
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Reset(frame)
		if _, err := r.Next(); err != nil {
			b.Fatal(err)
		}
	}
}
