package stream

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/rmat"
)

// BenchmarkTxBeginClose measures the read-transaction pin/unpin pair — the
// fixed cost every query pays on top of its kernel. Must stay
// allocation-free (gated in CI).
func BenchmarkTxBeginClose(b *testing.B) {
	e := NewGraphEngine(aspen.NewGraph(ctree.DefaultParams()), Options{})
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := e.Begin()
		tx.Close()
	}
}

// BenchmarkHistObserve measures the latency-sample cost paid on the commit
// path and by every reader. Must stay allocation-free (gated in CI).
func BenchmarkHistObserve(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

// BenchmarkTxFlatCached measures the steady-state cost of taking a read
// transaction on the §5.1 flat fast path: Begin + cached-Flat + Close. The
// view is built once per version, so after the first iteration every call
// is a cache hit — the map probe must stay cheap and allocation-free
// (gated in CI alongside TxBeginClose).
func BenchmarkTxFlatCached(b *testing.B) {
	gen := rmat.NewGenerator(16, 99)
	g := aspen.NewGraph(ctree.DefaultParams()).InsertEdges(aspen.MakeUndirected(gen.Edges(0, 50_000)))
	e := NewGraphEngine(g, Options{})
	defer e.Close()
	warm := e.Begin()
	warm.Flat() // pay the single per-version build outside the loop
	warm.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := e.Begin()
		tx.Flat()
		tx.Close()
	}
}

// BenchmarkFlatCacheFirstQuery measures the cold path: the first query
// after a commit pays one flat build for its version (amortized across all
// later readers of the same version).
func BenchmarkFlatCacheFirstQuery(b *testing.B) {
	gen := rmat.NewGenerator(16, 99)
	g := aspen.NewGraph(ctree.DefaultParams()).InsertEdges(aspen.MakeUndirected(gen.Edges(0, 50_000)))
	e := NewGraphEngine(g, Options{})
	defer e.Close()
	batch := aspen.MakeUndirected(gen.Edges(50_000, 50_500))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := e.Insert(batch)
		if err != nil {
			b.Fatal(err)
		}
		p.Wait()
		tx := e.Begin()
		tx.Flat()
		tx.Close()
	}
}

// BenchmarkEngineCommit measures end-to-end ingest through the queue and
// single-writer loop: submit one batch, wait for its commit. The per-batch
// engine overhead (queue, coalescing bookkeeping, ack) rides on top of the
// aspen batch insert.
func BenchmarkEngineCommit(b *testing.B) {
	for _, size := range []int{100, 10_000} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			gen := rmat.NewGenerator(20, 99)
			base := aspen.NewGraph(ctree.DefaultParams()).
				InsertEdges(aspen.MakeUndirected(gen.Edges(0, 100_000)))
			e := NewGraphEngine(base, Options{})
			defer e.Close()
			batch := gen.Edges(100_000, 100_000+uint64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := e.Insert(batch)
				if err != nil {
					b.Fatal(err)
				}
				p.Wait()
			}
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
		})
	}
}

// BenchmarkEnginePipelined measures sustained ingest with the queue kept
// full (waiting only at the end), the §7.8 writer configuration where
// coalescing can kick in.
func BenchmarkEnginePipelined(b *testing.B) {
	const size = 1_000
	gen := rmat.NewGenerator(20, 99)
	base := aspen.NewGraph(ctree.DefaultParams()).
		InsertEdges(aspen.MakeUndirected(gen.Edges(0, 100_000)))
	e := NewGraphEngine(base, Options{QueueCap: 64})
	defer e.Close()
	batch := gen.Edges(100_000, 100_000+size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Insert(batch); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := e.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
}
