package stream

import (
	"repro/internal/aspen"
	"repro/internal/ligra"
)

// Tx is a read transaction: an immutable snapshot pinned against epoch
// reclamation. Any number of transactions run concurrently with each other
// and with the ingest loop; a transaction never blocks a commit and a
// commit never disturbs an open transaction. Close releases the pin; the
// snapshot must not be used after Close (the version it pins may then be
// retired and its snapshot reference cleared).
type Tx[G ligra.Graph] struct {
	v   *aspen.Version[G]
	reg *aspen.Versioned[G]
	fc  *flatCache[G]
}

// Begin pins the latest published version and returns a transaction over
// it. Lock-free; never blocked by the writer or other readers.
func (e *Engine[G, E]) Begin() Tx[G] {
	return Tx[G]{v: e.reg.Acquire(), reg: e.reg, fc: &e.flat}
}

// Graph returns the pinned immutable snapshot. Any algos kernel accepting
// the ligra traversal interfaces runs against it directly.
func (t *Tx[G]) Graph() G { return t.v.Graph }

// Flat returns the §5.1 flat view of the pinned version — the default fast
// path for global kernels (O(1) degree and edge-tree access instead of the
// O(log n) vertex-tree lookup). The view is cached per version: it is built
// at most once, by whichever transaction (or the ingest loop, under
// Options.PrebuildFlat) asks first, and shared by every transaction pinning
// the same version until the version retires. When the engine has no
// flatten registered it falls back to the tree snapshot. Like Graph, the
// result must not be used after Close. The returned view also satisfies
// ligra.FlatGraph (and, for weighted engines, ligra.FlatWeightedGraph).
func (t *Tx[G]) Flat() ligra.Graph {
	if t.fc != nil {
		if view := t.fc.viewOf(t.v.Stamp, t.v.Graph); view != nil {
			if flatDebug {
				// aspendebug builds: a cached view handed to this
				// transaction must have been built from exactly the pinned
				// snapshot (aspen.FlatSnapshot.MustCurrent panics
				// otherwise). Compiled away in release builds.
				if c, ok := view.(interface{ MustCurrent(G) }); ok {
					c.MustCurrent(t.v.Graph)
				}
			}
			return view
		}
	}
	return t.v.Graph
}

// Stamp returns the pinned version's sequence number.
func (t *Tx[G]) Stamp() uint64 { return t.v.Stamp }

// Close releases the pin, allowing the version to be retired once its last
// reader is done. Reports whether this Close retired the version.
// Idempotent: second and later calls return false.
func (t *Tx[G]) Close() bool {
	if t.v == nil {
		return false
	}
	v := t.v
	t.v = nil
	return t.reg.Release(v)
}
