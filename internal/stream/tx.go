package stream

import (
	"repro/internal/aspen"
	"repro/internal/ligra"
)

// Tx is a read transaction: an immutable snapshot pinned against epoch
// reclamation. Any number of transactions run concurrently with each other
// and with the ingest loop; a transaction never blocks a commit and a
// commit never disturbs an open transaction. Close releases the pin; the
// snapshot must not be used after Close (the version it pins may then be
// retired and its snapshot reference cleared).
type Tx[G ligra.Graph] struct {
	v   *aspen.Version[G]
	reg *aspen.Versioned[G]
}

// Begin pins the latest published version and returns a transaction over
// it. Lock-free; never blocked by the writer or other readers.
func (e *Engine[G, E]) Begin() Tx[G] {
	return Tx[G]{v: e.reg.Acquire(), reg: e.reg}
}

// Graph returns the pinned immutable snapshot. Any algos kernel accepting
// the ligra traversal interfaces runs against it directly.
func (t *Tx[G]) Graph() G { return t.v.Graph }

// Stamp returns the pinned version's sequence number.
func (t *Tx[G]) Stamp() uint64 { return t.v.Stamp }

// Close releases the pin, allowing the version to be retired once its last
// reader is done. Reports whether this Close retired the version.
// Idempotent: second and later calls return false.
func (t *Tx[G]) Close() bool {
	if t.v == nil {
		return false
	}
	v := t.v
	t.v = nil
	return t.reg.Release(v)
}
