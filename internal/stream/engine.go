// Package stream is the live-serving layer over Aspen's purely-functional
// snapshots: a single-writer ingest loop drains a bounded queue of edge
// batches — coalescing queued batches into one functional commit — while
// any number of concurrent read transactions pin immutable versions and
// run analytics against them (the paper's §7.8 "simultaneous updates and
// queries" scenario, served rather than benchmarked). Version lifetime is
// managed by the epoch-refcounted aspen.Versioned store: a retired
// snapshot is released — its C-tree root dropped for the runtime GC —
// exactly when its last reader finishes.
//
// The engine is generic over the snapshot type G (aspen.Graph,
// aspen.WeightedGraph, or anything else satisfying ligra.Graph) and the
// update type E (aspen.Edge, aspen.WeightedEdge), so one serving path
// covers every graph flavor in the repository.
package stream

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aspen"
	"repro/internal/ligra"
	"repro/internal/obs"
	"repro/internal/wal"
)

// ErrClosed is returned by Insert/Delete/Flush after Close.
var ErrClosed = errors.New("stream: engine closed")

// ErrQueueFull is returned by TrySubmit when the ingest queue is at
// capacity (the non-blocking alternative to Insert/Delete backpressure).
var ErrQueueFull = errors.New("stream: queue full")

// Options tunes the ingest queue. The zero value selects defaults.
type Options struct {
	// QueueCap bounds the number of submitted-but-uncommitted batches;
	// submits block (backpressure) when the queue is full. Default 256.
	QueueCap int
	// MaxCoalesce bounds how many queued batches one commit may fold
	// together. Default 32.
	MaxCoalesce int
	// MaxCoalesceEdges bounds the total edges one commit may fold
	// together (a single larger batch still commits, alone). Default
	// 1 << 20.
	MaxCoalesceEdges int
	// PrebuildFlat builds each committed version's flat view on the ingest
	// goroutine immediately after publish, so the first reader of every
	// version finds it cached instead of paying the O(n) build inside its
	// query. Off by default: views build lazily on the first Tx.Flat.
	PrebuildFlat bool
	// PatchFlat derives each version's flat view from its predecessor's by
	// patching only what the commit changed — O(batch) copy-on-write work
	// instead of the O(n) rebuild — so PrebuildFlat commits amortize to the
	// batch size. Honored by the graph-flavored constructors (which register
	// the aspen patcher); custom snapshot types opt in via SetFlatPatcher.
	// The cache then holds its newest view one version past retirement to
	// anchor the patch chain (see flatCache).
	PatchFlat bool
	// PriorityEdges routes batches of at most this many edges through a
	// priority lane that the ingest loop drains first (a second channel
	// behind a biased select), so small-batch commit latency under
	// saturation is bounded by one in-flight commit instead of the whole
	// backlog of giant coalesced batches (ROADMAP (i)). 0 disables the
	// lane. Note the lane relaxes cross-lane FIFO: a priority batch may
	// commit before normal-lane batches submitted earlier, so updates whose
	// relative order matters (insert then delete of the same edge) must
	// ride the same lane. Flush covers both lanes.
	PriorityEdges int
	// TraceSlow arms the stage tracer's slow-commit ring: commits whose
	// total staged time (enqueue through ack) reaches this threshold are
	// captured with their per-stage breakdown, readable via
	// Tracer().Slow and cmd/stream -trace-slow. 0 keeps the ring off;
	// the per-stage histograms record regardless.
	TraceSlow time.Duration
}

func (o Options) withDefaults() Options {
	if o.QueueCap <= 0 {
		o.QueueCap = 256
	}
	if o.MaxCoalesce <= 0 {
		o.MaxCoalesce = 32
	}
	if o.MaxCoalesceEdges <= 0 {
		o.MaxCoalesceEdges = 1 << 20
	}
	return o
}

// Note is an idempotency tag carried by SubmitNoted batches: the WAL
// record of a noted batch embeds (Client, Seq), so recovery and WAL
// tail shipping rebuild the server's per-client dedup window in the
// same atomic unit as the data. The zero Note means "untagged".
type Note struct {
	Client uint64
	Seq    uint64
}

// pending is one submitted batch waiting in the ingest queue.
type pending[E any] struct {
	del   bool
	edges []E
	note  Note
	enq   time.Time
	done  chan uint64 // nil unless a waiter wants the commit stamp
}

// Engine is the live-stream engine: one ingest goroutine owns the write
// path; readers run concurrently via Begin/Close transactions. Create with
// New (or the NewGraphEngine / NewWeightedEngine conveniences); the ingest
// loop starts immediately.
type Engine[G ligra.Graph, E any] struct {
	reg    *aspen.Versioned[G]
	insert func(G, []E) G
	remove func(G, []E) G
	opts   Options

	// flat caches one §5.1 flat view per live version (see flatcache.go);
	// userRetire is the client hook chained after the cache drop.
	flat       flatCache[G]
	userRetire func(stamp uint64)

	// onCommit, when set, observes every published version on the ingest
	// goroutine — the hook behind incremental kernel maintenance.
	onCommit func(prev, cur G, stamp uint64, runs []CommitRun[E])

	// dur, when non-nil, is the durable commit path (durable.go): WAL
	// append + policy fsync before apply/ack, background checkpointing.
	// Attached by Recover between newEngine and start.
	dur   *durable[G, E]
	durWG sync.WaitGroup // checkpointer + sync ticker

	mu     sync.RWMutex // guards closed and the queue close
	closed bool
	queue  chan pending[E]
	prio   chan pending[E] // small-batch priority lane; nil unless enabled
	wg     sync.WaitGroup

	commitHist Hist
	edges      atomic.Uint64 // directed edge updates applied
	batches    atomic.Uint64 // batches committed
	commits    atomic.Uint64 // versions published

	// tracer aggregates per-stage commit latency (obs.StageTracer);
	// trace is the ingest goroutine's reusable scratch record, a
	// persistent field so recording a commit never allocates.
	tracer obs.StageTracer
	trace  obs.StageTrace
}

// New builds an engine over an initial snapshot g and the two functional
// batch operations of the snapshot type. The ingest loop starts running;
// call Close to stop it. Submitted edge slices must not be mutated by the
// caller afterwards (the engine never mutates them).
func New[G ligra.Graph, E any](g G, insert, remove func(G, []E) G, opts Options) *Engine[G, E] {
	e := newEngine(g, insert, remove, opts)
	e.start()
	return e
}

// newEngine builds the engine without starting any goroutine, so durable
// state (Recover) can attach before the ingest loop first reads it.
func newEngine[G ligra.Graph, E any](g G, insert, remove func(G, []E) G, opts Options) *Engine[G, E] {
	e := &Engine[G, E]{
		reg:    aspen.NewVersioned(g),
		insert: insert,
		remove: remove,
		opts:   opts.withDefaults(),
	}
	e.queue = make(chan pending[E], e.opts.QueueCap)
	if e.opts.PriorityEdges > 0 {
		e.prio = make(chan pending[E], e.opts.QueueCap)
	}
	if e.opts.TraceSlow > 0 {
		e.tracer.SetSlowThreshold(e.opts.TraceSlow)
	}
	// The engine owns the registry's retire hook: it drops the version's
	// cached flat view first, then forwards to the client hook.
	e.reg.SetRetireHook(func(stamp uint64) {
		e.flat.drop(stamp)
		if fn := e.userRetire; fn != nil {
			fn(stamp)
		}
	})
	return e
}

// start launches the ingest loop and, when durability is attached, the
// checkpointer and (under SyncInterval) the fsync ticker.
func (e *Engine[G, E]) start() {
	if e.dur != nil {
		e.durWG.Add(1)
		go e.checkpointer()
		if e.dur.opts.Policy == SyncInterval {
			e.durWG.Add(1)
			go e.syncLoop()
		}
	}
	e.wg.Add(1)
	go e.loop()
}

// NewGraphEngine serves an unweighted aspen.Graph with the §5.1 flat-view
// cache wired to aspen.BuildFlatSnapshot.
func NewGraphEngine(g aspen.Graph, opts Options) *Engine[aspen.Graph, aspen.Edge] {
	e := New(g,
		func(g aspen.Graph, b []aspen.Edge) aspen.Graph { return g.InsertEdges(b) },
		func(g aspen.Graph, b []aspen.Edge) aspen.Graph { return g.DeleteEdges(b) },
		opts)
	wireGraphFlat(e, opts)
	return e
}

// wireGraphFlat registers the aspen flat-view builder (and, under
// Options.PatchFlat, the incremental patcher) on an unweighted engine —
// shared by the in-memory and durable constructors.
func wireGraphFlat(e *Engine[aspen.Graph, aspen.Edge], opts Options) {
	e.SetFlatten(func(g aspen.Graph) ligra.Graph { return aspen.BuildFlatSnapshot(g) })
	if opts.PatchFlat {
		e.SetFlatPatcher(func(prev ligra.Graph, g aspen.Graph) ligra.Graph {
			if fs, ok := prev.(*aspen.FlatSnapshot); ok {
				return aspen.PatchFlatSnapshot(fs, g)
			}
			return aspen.BuildFlatSnapshot(g)
		})
	}
}

// NewWeightedEngine serves an aspen.WeightedGraph with the flat-view cache
// wired to aspen.BuildFlatWeightedSnapshot (the returned views satisfy
// ligra.FlatWeightedGraph, so weighted kernels can type-assert for
// ForEachNeighborW).
func NewWeightedEngine(g aspen.WeightedGraph, opts Options) *Engine[aspen.WeightedGraph, aspen.WeightedEdge] {
	e := New(g,
		func(g aspen.WeightedGraph, b []aspen.WeightedEdge) aspen.WeightedGraph { return g.InsertEdges(b) },
		func(g aspen.WeightedGraph, b []aspen.WeightedEdge) aspen.WeightedGraph { return g.DeleteEdges(b) },
		opts)
	wireWeightedFlat(e, opts)
	return e
}

// wireWeightedFlat is wireGraphFlat for weighted engines.
func wireWeightedFlat(e *Engine[aspen.WeightedGraph, aspen.WeightedEdge], opts Options) {
	e.SetFlatten(func(g aspen.WeightedGraph) ligra.Graph { return aspen.BuildFlatWeightedSnapshot(g) })
	if opts.PatchFlat {
		e.SetFlatPatcher(func(prev ligra.Graph, g aspen.WeightedGraph) ligra.Graph {
			if fs, ok := prev.(*aspen.FlatWeightedSnapshot); ok {
				return aspen.PatchFlatWeightedSnapshot(fs, g)
			}
			return aspen.BuildFlatWeightedSnapshot(g)
		})
	}
}

// SetFlatten registers the snapshot-to-flat-view builder behind Tx.Flat.
// Nil disables the cache (Flat then returns the tree view). Must be called
// before the first Submit or Begin; the graph-flavored constructors
// register the aspen builders automatically.
func (e *Engine[G, E]) SetFlatten(fn func(G) ligra.Graph) { e.flat.flatten = fn }

// SetFlatPatcher registers the incremental view derivation behind the flat
// cache: fn receives a previously materialized view (always of an older
// version of the same lineage) and the snapshot to view, and returns that
// snapshot's flat view — typically by copy-on-write patching in O(diff)
// (aspen.PatchFlatSnapshot). fn must fall back to a full build when prev is
// not a type it can patch. Must be called before the first Submit or Begin;
// the graph-flavored constructors register the aspen patchers when
// Options.PatchFlat is set.
func (e *Engine[G, E]) SetFlatPatcher(fn func(prev ligra.Graph, g G) ligra.Graph) {
	e.flat.patch = fn
}

// CommitRun is one same-kind run of a committed group, in application
// order: the deletions or insertions folded into a single functional tree
// pass. Slices are the engine's — observers must not mutate or retain them
// past the hook call.
type CommitRun[E any] struct {
	Del   bool
	Edges []E
}

// OnCommit registers fn to observe every published version, called on the
// ingest goroutine after the version (and, under PrebuildFlat, its flat
// view) is published but before the commit is acknowledged — so a Flush
// returning guarantees the hook has run for everything submitted before it.
// prev and cur are the snapshots immediately before and after the commit
// (both immutable and safe to retain; holding them only delays GC, not
// correctness), runs the applied update sequence. The hook serializes with
// ingest: incremental maintenance (algos.IncrementalCC) belongs here, heavy
// recomputation does not. Call before the first Submit.
func (e *Engine[G, E]) OnCommit(fn func(prev, cur G, stamp uint64, runs []CommitRun[E])) {
	e.onCommit = fn
}

// OnRetire registers fn to run when a superseded version's last reader
// drops it (after the engine evicts the version's cached flat view; see
// aspen.Versioned.SetRetireHook). Call before the first Submit.
func (e *Engine[G, E]) OnRetire(fn func(stamp uint64)) { e.userRetire = fn }

// Pending is a handle to a submitted batch; Wait blocks until the batch is
// part of a published version and returns that version's stamp.
type Pending struct{ ch <-chan uint64 }

// Wait blocks until the batch commits and returns the commit stamp.
func (p Pending) Wait() uint64 { return <-p.ch }

// Done exposes the commit notification channel (closed after the stamp is
// sent).
func (p Pending) Done() <-chan uint64 { return p.ch }

// Insert enqueues a batch of edge insertions. Blocks while the queue is
// full. The returned Pending resolves when the batch is visible to new
// read transactions.
func (e *Engine[G, E]) Insert(edges []E) (Pending, error) { return e.submit(false, edges) }

// Delete enqueues a batch of edge deletions.
func (e *Engine[G, E]) Delete(edges []E) (Pending, error) { return e.submit(true, edges) }

// closedPending is returned on the ErrClosed path so a caller that drops
// the error and calls Wait fails fast (yields stamp 0) instead of
// blocking forever on a nil channel.
var closedPending = func() Pending {
	ch := make(chan uint64)
	close(ch)
	return Pending{ch: ch}
}()

func (e *Engine[G, E]) submit(del bool, edges []E) (Pending, error) {
	// Small batches jump to the priority lane when it is enabled; zero-edge
	// markers (Flush) always ride the normal lane so they cover it fully.
	prio := e.prio != nil && len(edges) > 0 && len(edges) <= e.opts.PriorityEdges
	return e.submitNoted(del, edges, Note{}, prio)
}

// SubmitNoted enqueues a batch tagged with an idempotency note: the
// batch's WAL record carries (note.Client, note.Seq) so a dedup window
// rebuilt from the log knows the batch is part of the committed prefix.
// Routing (priority lane, backpressure) matches Insert/Delete. The
// caller owns deduplication — the engine only journals the tag.
func (e *Engine[G, E]) SubmitNoted(del bool, edges []E, note Note) (Pending, error) {
	prio := e.prio != nil && len(edges) > 0 && len(edges) <= e.opts.PriorityEdges
	return e.submitNoted(del, edges, note, prio)
}

func (e *Engine[G, E]) submitTo(del bool, edges []E, prio bool) (Pending, error) {
	return e.submitNoted(del, edges, Note{}, prio)
}

func (e *Engine[G, E]) submitNoted(del bool, edges []E, note Note, prio bool) (Pending, error) {
	done := make(chan uint64, 1)
	p := pending[E]{del: del, edges: edges, note: note, enq: time.Now(), done: done}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return closedPending, ErrClosed
	}
	if prio {
		e.prio <- p
	} else {
		e.queue <- p // may block (backpressure); the loop drains until close
	}
	e.mu.RUnlock()
	return Pending{ch: done}, nil
}

// TrySubmit enqueues a batch without blocking: a full queue returns
// ErrQueueFull instead of applying backpressure, so latency-sensitive
// producers can shed load (drop, buffer elsewhere, or retry) rather than
// stall. Routing (priority lane) matches Insert/Delete.
func (e *Engine[G, E]) TrySubmit(del bool, edges []E) (Pending, error) {
	prio := e.prio != nil && len(edges) > 0 && len(edges) <= e.opts.PriorityEdges
	done := make(chan uint64, 1)
	p := pending[E]{del: del, edges: edges, enq: time.Now(), done: done}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return closedPending, ErrClosed
	}
	lane := e.queue
	if prio {
		lane = e.prio
	}
	select {
	case lane <- p:
		return Pending{ch: done}, nil
	default:
		return closedPending, ErrQueueFull
	}
}

// SubmitCtx enqueues a batch, giving up when ctx is done while blocked on
// a full queue. The returned error is ctx.Err() on cancellation.
func (e *Engine[G, E]) SubmitCtx(ctx context.Context, del bool, edges []E) (Pending, error) {
	prio := e.prio != nil && len(edges) > 0 && len(edges) <= e.opts.PriorityEdges
	done := make(chan uint64, 1)
	p := pending[E]{del: del, edges: edges, enq: time.Now(), done: done}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return closedPending, ErrClosed
	}
	lane := e.queue
	if prio {
		lane = e.prio
	}
	select {
	case lane <- p:
		return Pending{ch: done}, nil
	case <-ctx.Done():
		return closedPending, ctx.Err()
	}
}

// Flush blocks until every batch submitted before the call has committed,
// and returns the stamp current at that point. With the priority lane
// enabled, one marker rides each lane so both are covered.
func (e *Engine[G, E]) Flush() (uint64, error) {
	p, err := e.submitTo(false, nil, false)
	if err != nil {
		return 0, err
	}
	if e.prio == nil {
		return p.Wait(), nil
	}
	pp, err := e.submitTo(false, nil, true)
	if err != nil {
		return 0, err
	}
	return max(p.Wait(), pp.Wait()), nil
}

// Close stops the ingest loop after draining every queued batch, then
// waits for it to exit. Concurrent Submits either enqueue before the close
// (and are committed) or observe ErrClosed. Read transactions are
// unaffected and may outlive Close.
func (e *Engine[G, E]) Close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.queue)
		if e.prio != nil {
			close(e.prio)
		}
	}
	e.mu.Unlock()
	e.wg.Wait()
	if e.dur != nil {
		// Drain the background durability goroutines, write a final
		// checkpoint of the current version, close the log cleanly.
		e.closeDurable()
	}
}

// loop is the single-writer ingest loop: take one batch (blocking), drain
// whatever else is already queued up to the coalescing caps, commit once.
// A batch received past the MaxCoalesceEdges budget is carried over to
// start the next commit group, so the edge cap is a hard bound per group
// (except for a single batch that alone exceeds it, which commits alone).
// Intake is biased: the priority lane, when enabled, is checked before the
// normal queue at every receive, so a queued small batch waits for at most
// the commit in flight plus one commit group, never the whole backlog.
// Closed lanes nil out; the loop exits when both are drained.
func (e *Engine[G, E]) loop() {
	defer e.wg.Done()
	var batch []pending[E]
	var carry pending[E]
	hasCarry := false
	queue, prio := e.queue, e.prio
	for {
		var first pending[E]
		hasFirst := false
		if hasCarry {
			first, hasCarry, hasFirst = carry, false, true
		} else {
			if prio == nil && queue == nil {
				return
			}
			if prio != nil {
				select {
				case p, ok := <-prio:
					if ok {
						first, hasFirst = p, true
					} else {
						prio = nil
					}
				default:
				}
			}
			if !hasFirst {
				if prio == nil && queue == nil {
					return
				}
				// Block until either lane delivers; a nil lane's case
				// blocks forever, leaving the other live.
				select {
				case p, ok := <-prio:
					if !ok {
						prio = nil
						continue
					}
					first, hasFirst = p, true
				case p, ok := <-queue:
					if !ok {
						queue = nil
						continue
					}
					first, hasFirst = p, true
				}
			}
		}
		pickup := time.Now() // StageEnqueue ends, StageCoalesce begins
		batch = append(batch[:0], first)
		edges := len(first.edges)
		for len(batch) < e.opts.MaxCoalesce && edges < e.opts.MaxCoalesceEdges {
			var next pending[E]
			got := false
			if prio != nil {
				select {
				case p, ok := <-prio:
					if ok {
						next, got = p, true
					} else {
						prio = nil
						continue
					}
				default:
				}
			}
			if !got && queue != nil {
				select {
				case p, ok := <-queue:
					if ok {
						next, got = p, true
					} else {
						queue = nil
						continue
					}
				default:
				}
			}
			if !got {
				break // both lanes idle (or closed): commit what we have
			}
			if edges > 0 && edges+len(next.edges) > e.opts.MaxCoalesceEdges {
				carry, hasCarry = next, true
				break
			}
			batch = append(batch, next)
			edges += len(next.edges)
		}
		e.commit(batch, edges, pickup)
	}
}

// run is a maximal FIFO sequence of queued batches with the same kind,
// concatenated so the whole run pays one radix-sorted tree pass.
type run[E any] struct {
	del   bool
	edges []E
	owned bool // edges is engine-allocated (safe to append to)
}

// commit folds the batch into same-kind runs, logs them to the WAL (when
// durability is attached), applies them in order to the latest snapshot,
// publishes one new version, then acknowledges every batch with the commit
// stamp. Durability failures are fail-stop: the batch (and every later one)
// is nacked — its done channel closes without a stamp — and nothing further
// is applied, so an acknowledged batch is always both applied and logged
// (and fsynced, under the per-commit policy).
func (e *Engine[G, E]) commit(batch []pending[E], totalEdges int, pickup time.Time) {
	if e.dur != nil && e.dur.failed.Load() {
		nack(batch)
		return
	}
	// Stage trace: e.trace is the ingest goroutine's persistent scratch
	// record (no per-commit allocation). Enqueue covers the oldest
	// batch's submit-to-pickup wait; coalesce the group folding; the
	// remaining stages are timed around the work below. Stages that do
	// not run stay zero and are excluded from their histograms.
	tr := &e.trace
	*tr = obs.StageTrace{Edges: totalEdges, Batches: len(batch)}
	tr.Durs[obs.StageEnqueue] = pickup.Sub(batch[0].enq)
	t := time.Now()
	tr.Durs[obs.StageCoalesce] = t.Sub(pickup)
	stamp := e.reg.Current()
	if totalEdges > 0 {
		var runs []run[E]
		for _, b := range batch {
			if len(b.edges) == 0 {
				continue
			}
			if n := len(runs); n > 0 && runs[n-1].del == b.del {
				last := &runs[n-1]
				if !last.owned {
					merged := make([]E, len(last.edges), len(last.edges)+len(b.edges))
					copy(merged, last.edges)
					last.edges = merged
					last.owned = true
				}
				last.edges = append(last.edges, b.edges...)
				continue
			}
			runs = append(runs, run[E]{del: b.del, edges: b.edges})
		}
		if e.dur != nil {
			appendDur, syncDur, err := e.dur.logCommit(batch, runs)
			tr.Durs[obs.StageWALAppend] = appendDur
			tr.Durs[obs.StageFsync] = syncDur
			if err != nil {
				e.dur.fail(err)
				nack(batch)
				return
			}
		}
		var before, committed G
		t = time.Now()
		stamp = e.reg.Update(func(g G) G {
			before = g
			for _, r := range runs {
				if r.del {
					g = e.remove(g, r.edges)
				} else {
					g = e.insert(g, r.edges)
				}
			}
			committed = g
			return g
		})
		tr.Durs[obs.StageApply] = time.Since(t)
		e.commits.Add(1)
		if e.dur != nil {
			e.maybeCheckpoint(committed, stamp)
		}
		if e.opts.PrebuildFlat {
			// Build-on-commit: the ingest goroutine still holds the freshly
			// published version current, so the stamp cannot retire under us.
			t = time.Now()
			e.flat.viewOf(stamp, committed)
			tr.Durs[obs.StageFlatPatch] = time.Since(t)
		}
		if e.onCommit != nil {
			crs := make([]CommitRun[E], len(runs))
			for i, r := range runs {
				crs[i] = CommitRun[E]{Del: r.del, Edges: r.edges}
			}
			e.onCommit(before, committed, stamp, crs)
		}
	}
	// Counters and latencies first, acks last: a waiter woken by its ack
	// must observe the commit already reflected in Stats. Zero-edge
	// batches (Flush markers) are acknowledged but never counted or
	// sampled — they are not committed work and would skew the tail.
	now := time.Now()
	for _, b := range batch {
		if len(b.edges) > 0 {
			e.batches.Add(1)
			e.commitHist.Observe(now.Sub(b.enq))
		}
	}
	e.edges.Add(uint64(totalEdges))
	for _, b := range batch {
		if b.done != nil {
			b.done <- stamp
			close(b.done)
		}
	}
	if totalEdges > 0 {
		tr.Durs[obs.StageAck] = time.Since(now)
		tr.Stamp = stamp
		e.tracer.Record(tr)
	}
}

// nack closes every waiter's done channel without sending a stamp, so
// Pending.Wait returns 0 — unambiguous, since real commit stamps start
// at 1. The fail-stop path after a durability error.
func nack[E any](batch []pending[E]) {
	for _, b := range batch {
		if b.done != nil {
			close(b.done)
		}
	}
}

// Stats is a point-in-time view of the engine's counters.
type Stats struct {
	// Stamp is the latest published version.
	Stamp uint64 `json:"stamp"`
	// Commits is the number of versions published by the ingest loop.
	Commits uint64 `json:"commits"`
	// Batches is the number of submitted batches committed (≥ Commits;
	// the ratio is the coalescing factor).
	Batches uint64 `json:"batches"`
	// Edges is the number of directed edge updates applied.
	Edges uint64 `json:"edges"`
	// QueueDepth is the number of batches waiting in the ingest queue
	// (both lanes, when the priority lane is enabled).
	QueueDepth int `json:"queue_depth"`
	// LiveVersions / RetiredVersions mirror the epoch registry: versions
	// still pinned (plus the current one) and versions fully released.
	LiveVersions    int64  `json:"live_versions"`
	RetiredVersions uint64 `json:"retired_versions"`
	// FlatBuilds / FlatPatches / FlatHits account the flat-view cache:
	// views built from scratch, views derived from a predecessor view in
	// O(batch) (Options.PatchFlat), and Tx.Flat calls served from cache.
	// Builds + patches is at most one per version. FlatCached is the number
	// of views currently held (≤ LiveVersions).
	FlatBuilds  uint64 `json:"flat_builds"`
	FlatPatches uint64 `json:"flat_patches,omitempty"`
	FlatHits    uint64 `json:"flat_hits"`
	FlatCached  int    `json:"flat_cached"`
	// Commit digests the enqueue-to-visible latency of committed batches.
	Commit LatencySummary `json:"commit"`
	// Durable reports whether the engine has a durable commit path; the
	// remaining fields are zero without one. WAL mirrors the log's
	// counters; Checkpoints / CheckpointSeq account the background
	// checkpointer (CheckpointSeq is the last WAL sequence number covered
	// by a persisted checkpoint).
	Durable       bool      `json:"durable,omitempty"`
	WAL           wal.Stats `json:"wal,omitzero"`
	Checkpoints   uint64    `json:"checkpoints,omitempty"`
	CheckpointSeq uint64    `json:"checkpoint_seq,omitempty"`
}

// Stamp returns the latest published version stamp (same value Stats
// reports; a cheap accessor for callers that need only this).
func (e *Engine[G, E]) Stamp() uint64 { return e.reg.Current() }

// CoalesceFactor is committed batches per published version.
func (s Stats) CoalesceFactor() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.Batches) / float64(s.Commits)
}

// Stats returns the engine's counters. Safe to call concurrently with
// everything else.
func (e *Engine[G, E]) Stats() Stats {
	s := Stats{
		Stamp:           e.reg.Current(),
		Commits:         e.commits.Load(),
		Batches:         e.batches.Load(),
		Edges:           e.edges.Load(),
		QueueDepth:      len(e.queue) + len(e.prio),
		LiveVersions:    e.reg.LiveVersions(),
		RetiredVersions: e.reg.RetiredVersions(),
		FlatBuilds:      e.flat.builds.Load(),
		FlatPatches:     e.flat.patches.Load(),
		FlatHits:        e.flat.hits.Load(),
		FlatCached:      e.flat.size(),
		Commit:          e.commitHist.Summary(),
	}
	if e.dur != nil {
		s.Durable = true
		s.WAL = e.dur.log.Stats()
		s.Checkpoints = e.dur.checkpoints.Load()
		s.CheckpointSeq = e.dur.ckptSeq.Load()
	}
	return s
}
