package stream

import (
	"sync"
	"testing"
	"time"

	"repro/internal/aspen"
)

// slowEngine builds an engine whose insert path sleeps per batch (a stand-in
// for an expensive tree pass) and blocks its very first apply on gate, so a
// test can deterministically fill both lanes while "a commit is in flight".
func slowEngine(gate chan struct{}, perBatch time.Duration, opts Options) *Engine[aspen.Graph, aspen.Edge] {
	var gated sync.Once
	return New(aspen.NewGraph(testParams()),
		func(g aspen.Graph, b []aspen.Edge) aspen.Graph {
			gated.Do(func() { <-gate })
			time.Sleep(perBatch)
			return g.InsertEdges(b)
		},
		func(g aspen.Graph, b []aspen.Edge) aspen.Graph { return g.DeleteEdges(b) },
		opts)
}

func dummyBatch(n int, base uint32) []aspen.Edge {
	out := make([]aspen.Edge, n)
	for i := range out {
		out[i] = aspen.Edge{Src: base + uint32(i), Dst: base + uint32(i) + 1}
	}
	return out
}

// TestPriorityLaneBoundsSmallBatchLatency is the ROADMAP (i) contract: a
// small batch submitted behind a backlog of giant batches commits after at
// most the commit in flight plus its own, not after the whole backlog —
// bounding small-batch tail latency under saturation.
func TestPriorityLaneBoundsSmallBatchLatency(t *testing.T) {
	const (
		larges    = 8
		largeSize = 1_000
		perBatch  = 10 * time.Millisecond
	)
	gate := make(chan struct{})
	e := slowEngine(gate, perBatch, Options{
		QueueCap: 64, MaxCoalesce: 1, PriorityEdges: 10,
	})
	defer e.Close()

	// The loop takes large #0 immediately and blocks inside its commit on
	// the gate; everything submitted next piles up behind it. MaxCoalesce=1
	// forces one batch per commit so stamps count commit order exactly.
	largeP := make([]Pending, larges)
	var err error
	if largeP[0], err = e.Insert(dummyBatch(largeSize, 0)); err != nil {
		t.Fatal(err)
	}
	// Wait until the loop owns batch #0 (queue drained) so stamp order is
	// deterministic: everything below queues behind the in-flight commit.
	for len(e.queue) > 0 {
		time.Sleep(time.Millisecond)
	}
	for i := 1; i < larges; i++ {
		if largeP[i], err = e.Insert(dummyBatch(largeSize, uint32(i*10_000))); err != nil {
			t.Fatal(err)
		}
	}
	smallStart := time.Now()
	smallP, err := e.Insert(dummyBatch(1, 900_000))
	if err != nil {
		t.Fatal(err)
	}
	close(gate)

	smallStamp := smallP.Wait()
	smallLat := time.Since(smallStart)
	largeStamps := make([]uint64, larges)
	for i, p := range largeP {
		largeStamps[i] = p.Wait()
	}
	lastLargeLat := time.Since(smallStart)

	// The biased select must commit the small batch immediately after the
	// in-flight large #0: stamp 2 of the run, ahead of larges 1..7.
	if smallStamp != largeStamps[0]+1 {
		t.Fatalf("small batch committed at stamp %d, want %d (right after the in-flight commit)",
			smallStamp, largeStamps[0]+1)
	}
	for i := 1; i < larges; i++ {
		if largeStamps[i] <= smallStamp {
			t.Fatalf("large batch %d (stamp %d) committed before the priority batch (stamp %d)",
				i, largeStamps[i], smallStamp)
		}
	}
	// Latency bound: one in-flight commit plus its own, not the backlog.
	if smallLat >= lastLargeLat/2 {
		t.Fatalf("small-batch latency %v not bounded (backlog drained in %v)", smallLat, lastLargeLat)
	}

	// All edges from both lanes must be visible after the drain.
	tx := e.Begin()
	defer tx.Close()
	if !tx.Graph().HasEdge(900_000, 900_001) {
		t.Fatal("priority-lane edge missing")
	}
	if !tx.Graph().HasEdge(10_000, 10_001) {
		t.Fatal("normal-lane edge missing")
	}
}

// TestFlushCoversBothLanes: Flush must not resolve before priority-lane
// batches submitted ahead of it are committed.
func TestFlushCoversBothLanes(t *testing.T) {
	gate := make(chan struct{})
	e := slowEngine(gate, 0, Options{QueueCap: 64, PriorityEdges: 10})
	defer e.Close()

	if _, err := e.Insert(dummyBatch(100, 0)); err != nil { // occupies the loop at the gate
		t.Fatal(err)
	}
	for len(e.queue) > 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := e.Insert(dummyBatch(2, 50_000)); err != nil { // priority lane
		t.Fatal(err)
	}
	if _, err := e.Insert(dummyBatch(200, 60_000)); err != nil { // normal lane
		t.Fatal(err)
	}
	close(gate)
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	defer tx.Close()
	if !tx.Graph().HasEdge(50_000, 50_001) || !tx.Graph().HasEdge(60_000, 60_001) {
		t.Fatal("Flush returned before both lanes were committed")
	}
	st := e.Stats()
	if st.Batches != 3 {
		t.Fatalf("batches = %d, want 3 (markers must not count)", st.Batches)
	}
}

// TestPriorityDisabledKeepsFIFO: with PriorityEdges = 0 small batches take
// the normal lane and strict submission order is preserved.
func TestPriorityDisabledKeepsFIFO(t *testing.T) {
	gate := make(chan struct{})
	e := slowEngine(gate, 0, Options{QueueCap: 64, MaxCoalesce: 1})
	defer e.Close()
	var ps []Pending
	if p, err := e.Insert(dummyBatch(100, 0)); err == nil {
		ps = append(ps, p)
	} else {
		t.Fatal(err)
	}
	for len(e.queue) > 0 {
		time.Sleep(time.Millisecond)
	}
	for i := 1; i < 5; i++ {
		big, err := e.Insert(dummyBatch(100, uint32(i*1_000)))
		if err != nil {
			t.Fatal(err)
		}
		small, err := e.Insert(dummyBatch(1, uint32(i*1_000+500)))
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, big, small)
	}
	close(gate)
	var prev uint64
	for i, p := range ps {
		s := p.Wait()
		if s < prev {
			t.Fatalf("batch %d committed at stamp %d before an earlier batch's %d", i, s, prev)
		}
		prev = s
	}
}
