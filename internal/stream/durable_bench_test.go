package stream

import (
	"testing"
	"time"

	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/rmat"
)

// BenchmarkDurableIngest measures sustained pipelined ingest (the
// BenchmarkEnginePipelined configuration) under each durability policy, to
// price the WAL against the PR-5 in-memory baseline. Checkpointing is
// disabled in the policy arms so the numbers isolate the append/fsync cost;
// the ckpt arm turns it back on to show the background-checkpoint overhead.
func BenchmarkDurableIngest(b *testing.B) {
	const size = 1_000
	arms := []struct {
		name string
		dur  *Durability
	}{
		{"nowal", nil},
		{"fsync=off", &Durability{Policy: SyncOff, CheckpointEvery: 1 << 30}},
		{"fsync=interval", &Durability{Policy: SyncInterval, Interval: 20 * time.Millisecond, CheckpointEvery: 1 << 30}},
		{"fsync=commit", &Durability{Policy: SyncEveryCommit, CheckpointEvery: 1 << 30}},
		{"fsync=interval/ckpt", &Durability{Policy: SyncInterval, Interval: 20 * time.Millisecond, CheckpointEvery: 64}},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			gen := rmat.NewGenerator(20, 99)
			seed := aspen.MakeUndirected(gen.Edges(0, 100_000))
			batch := gen.Edges(100_000, 100_000+size)
			opts := Options{QueueCap: 64}
			var e *Engine[aspen.Graph, aspen.Edge]
			if arm.dur == nil {
				e = NewGraphEngine(aspen.NewGraph(ctree.DefaultParams()), opts)
			} else {
				d := *arm.dur
				d.Dir = b.TempDir()
				var err error
				e, err = RecoverGraphEngine(ctree.DefaultParams(), opts, d)
				if err != nil {
					b.Fatal(err)
				}
			}
			defer e.Close()
			if _, err := e.Insert(seed); err != nil {
				b.Fatal(err)
			}
			if _, err := e.Flush(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Insert(batch); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := e.Flush(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := e.Err(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
		})
	}
}
