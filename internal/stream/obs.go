package stream

import "repro/internal/obs"

// This file federates the engine's counters into an obs.Registry. The
// counters themselves stay where they are (atomics on the engine, the
// flat cache, the WAL, the epoch registry) — Stats() and the metric
// series read the same words, so `/metrics` and `-json` cannot drift
// apart. Registration happens once at wiring time; the commit path is
// untouched.

// Tracer exposes the engine's commit stage tracer: per-stage latency
// histograms (enqueue/coalesce/wal_append/fsync/apply/flat_patch/ack)
// plus the slow-commit ring armed by Options.TraceSlow.
func (e *Engine[G, E]) Tracer() *obs.StageTracer { return &e.tracer }

// RegisterMetrics registers every engine counter, the commit latency
// summary, the per-stage tracer summaries, and — on durable engines —
// the WAL and checkpointer counters into reg, all carrying labels
// (the shard layer passes shard="N"). Call once per engine per
// registry, after construction.
func (e *Engine[G, E]) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.GaugeFunc("aspen_engine_version_stamp",
		"Latest published version stamp.", func() float64 { return float64(e.reg.Current()) }, labels...)
	reg.CounterFunc("aspen_engine_commits_total",
		"Versions published by the ingest loop.", e.commits.Load, labels...)
	reg.CounterFunc("aspen_engine_batches_total",
		"Submitted batches committed (>= commits; ratio is the coalescing factor).",
		e.batches.Load, labels...)
	reg.CounterFunc("aspen_engine_edges_total",
		"Directed edge updates applied.", e.edges.Load, labels...)
	reg.GaugeFunc("aspen_engine_queue_depth",
		"Batches waiting in the ingest queue (both lanes).",
		func() float64 { return float64(len(e.queue) + len(e.prio)) }, labels...)
	reg.GaugeFunc("aspen_engine_live_versions",
		"Versions still pinned by readers, plus the current one.",
		func() float64 { return float64(e.reg.LiveVersions()) }, labels...)
	reg.CounterFunc("aspen_engine_retired_versions_total",
		"Versions fully released by their last reader.", e.reg.RetiredVersions, labels...)
	reg.CounterFunc("aspen_flat_builds_total",
		"Flat views built from scratch.", e.flat.builds.Load, labels...)
	reg.CounterFunc("aspen_flat_patches_total",
		"Flat views derived from a predecessor in O(batch).", e.flat.patches.Load, labels...)
	reg.CounterFunc("aspen_flat_hits_total",
		"Tx.Flat calls served from the view cache.", e.flat.hits.Load, labels...)
	reg.GaugeFunc("aspen_flat_cached",
		"Flat views currently held (<= live versions).",
		func() float64 { return float64(e.flat.size()) }, labels...)
	reg.Summary("aspen_commit_latency_seconds",
		"Enqueue-to-visible latency of committed batches.", &e.commitHist, labels...)
	e.tracer.Register(reg, "aspen_commit_stage_seconds",
		"Per-stage commit pipeline latency.", labels...)
	if e.dur != nil {
		e.dur.log.RegisterMetrics(reg, labels...)
		reg.CounterFunc("aspen_checkpoints_total",
			"Checkpoints persisted by the background checkpointer.",
			e.dur.checkpoints.Load, labels...)
		reg.GaugeFunc("aspen_checkpoint_seq",
			"Last WAL sequence number covered by a persisted checkpoint.",
			func() float64 { return float64(e.dur.ckptSeq.Load()) }, labels...)
		reg.GaugeFunc("aspen_durability_failed",
			"1 after a durability error moved the engine to fail-stop.",
			func() float64 {
				if e.dur.failed.Load() {
					return 1
				}
				return 0
			}, labels...)
	}
}
