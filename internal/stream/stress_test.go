package stream

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aspen"
	"repro/internal/rmat"
)

// TestSnapshotLifecycleStress is the snapshot-lifecycle satellite: many
// readers acquire and release versions while the writer commits and the
// epoch registry GCs retired versions, asserting (under -race in CI)
//
//   - no use-after-release: a version never retires while a transaction
//     holds it, and an open transaction's snapshot is never cleared;
//   - exact refcount drain: every superseded version retires exactly
//     once, and after the run every version but the current one has
//     drained (live == 1, retired == stamp).
func TestSnapshotLifecycleStress(t *testing.T) {
	readers := 2 * runtime.GOMAXPROCS(0)
	if readers > 16 {
		readers = 16
	}
	updates := 300
	if testing.Short() {
		updates = 60
	}

	gen := rmat.NewGenerator(10, 17)
	g := aspen.NewGraph(testParams()).InsertEdges(aspen.MakeUndirected(gen.Edges(0, 2_000)))
	e := NewGraphEngine(g, Options{QueueCap: 8, MaxCoalesce: 4})

	var mu sync.Mutex
	retired := map[uint64]int{}
	e.OnRetire(func(stamp uint64) {
		mu.Lock()
		retired[stamp]++
		mu.Unlock()
	})
	retiredAt := func(stamp uint64) int {
		mu.Lock()
		defer mu.Unlock()
		return retired[stamp]
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				tx := e.Begin()
				stamp := tx.Stamp()
				if retiredAt(stamp) != 0 {
					t.Error("acquired an already-retired version")
					stop.Store(true)
				}
				// Touch the snapshot: it must stay fully intact while
				// pinned, even as the writer races ahead.
				if tx.Graph().NumVertices() == 0 {
					t.Error("pinned snapshot was cleared (use-after-release)")
					stop.Store(true)
				}
				if r%3 == 0 {
					// Hold some pins across several commits to keep old
					// epochs alive.
					time.Sleep(200 * time.Microsecond)
				}
				if retiredAt(stamp) != 0 {
					t.Error("version retired while a reader held it")
					stop.Store(true)
				}
				tx.Close()
			}
		}(r)
	}

	for i := 0; i < updates && !stop.Load(); i++ {
		lo := 2_000 + uint64(i)*50
		batch := aspen.MakeUndirected(gen.Edges(lo, lo+50))
		var err error
		if i%7 == 6 {
			_, err = e.Delete(batch)
		} else {
			_, err = e.Insert(batch)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()
	e.Close()

	st := e.Stats()
	if st.LiveVersions != 1 {
		t.Fatalf("LiveVersions = %d after drain, want 1 (current only)", st.LiveVersions)
	}
	if st.RetiredVersions != st.Stamp {
		t.Fatalf("RetiredVersions = %d, want %d (exact refcount drain)", st.RetiredVersions, st.Stamp)
	}
	mu.Lock()
	defer mu.Unlock()
	if uint64(len(retired)) != st.Stamp {
		t.Fatalf("%d distinct stamps retired, want %d", len(retired), st.Stamp)
	}
	for stamp, n := range retired {
		if n != 1 {
			t.Fatalf("stamp %d retired %d times, want exactly once", stamp, n)
		}
		if stamp >= st.Stamp {
			t.Fatalf("current stamp %d reported retired", stamp)
		}
	}
}

// TestAcquireRetireRace hammers the acquire/supersede/drain window: a
// version must never be handed to a reader after its count drained.
func TestAcquireRetireRace(t *testing.T) {
	e := NewGraphEngine(aspen.NewGraph(testParams()), Options{QueueCap: 2, MaxCoalesce: 1})
	var retiredMax atomic.Uint64 // highest retired stamp
	e.OnRetire(func(stamp uint64) {
		for {
			m := retiredMax.Load()
			if stamp <= m || retiredMax.CompareAndSwap(m, stamp) {
				return
			}
		}
	})
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				tx := e.Begin()
				tx.Close()
			}
		}()
	}
	for i := 0; i < 500; i++ {
		u := uint32(2 * i)
		if _, err := e.Insert([]aspen.Edge{{Src: u, Dst: u + 1}}); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	stop.Store(true)
	wg.Wait()
	st := e.Stats()
	if st.LiveVersions != 1 || st.RetiredVersions != st.Stamp {
		t.Fatalf("live=%d retired=%d stamp=%d", st.LiveVersions, st.RetiredVersions, st.Stamp)
	}
}
