package stream

import (
	"sync"
	"testing"
	"time"

	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/rmat"
)

func testParams() ctree.Params { return ctree.Params{B: 8} }

func TestEngineCommitVisibility(t *testing.T) {
	e := NewGraphEngine(aspen.NewGraph(testParams()), Options{})
	defer e.Close()

	p, err := e.Insert(aspen.MakeUndirected([]aspen.Edge{{Src: 1, Dst: 2}}))
	if err != nil {
		t.Fatal(err)
	}
	stamp := p.Wait()
	tx := e.Begin()
	if tx.Stamp() < stamp {
		t.Fatalf("transaction pinned stamp %d, committed %d", tx.Stamp(), stamp)
	}
	if !tx.Graph().HasEdge(1, 2) || !tx.Graph().HasEdge(2, 1) {
		t.Fatal("committed edge not visible")
	}
	tx.Close()

	p, err = e.Delete(aspen.MakeUndirected([]aspen.Edge{{Src: 1, Dst: 2}}))
	if err != nil {
		t.Fatal(err)
	}
	p.Wait()
	tx = e.Begin()
	if tx.Graph().HasEdge(1, 2) {
		t.Fatal("deleted edge still visible")
	}
	tx.Close()
}

// TestEngineCoalescing checks that batches queued while a commit is in
// flight are folded into fewer commits, FIFO order preserved, and that
// every Pending resolves with a stamp at which its batch is visible.
func TestEngineCoalescing(t *testing.T) {
	// Gate the first apply so later submits deterministically pile up in
	// the queue while the first commit is "in flight".
	gate := make(chan struct{})
	var gated sync.Once
	e := New(aspen.NewGraph(testParams()),
		func(g aspen.Graph, b []aspen.Edge) aspen.Graph {
			gated.Do(func() { <-gate })
			return g.InsertEdges(b)
		},
		func(g aspen.Graph, b []aspen.Edge) aspen.Graph { return g.DeleteEdges(b) },
		Options{QueueCap: 64, MaxCoalesce: 16})
	defer e.Close()

	if _, err := e.Insert([]aspen.Edge{{Src: 7, Dst: 8}}); err != nil {
		t.Fatal(err)
	}
	const k = 32
	pendings := make([]Pending, 0, k)
	for i := 0; i < k; i++ {
		u := uint32(1_000_000 + 2*i)
		p, err := e.Insert([]aspen.Edge{{Src: u, Dst: u + 1}})
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}
	// Interleave a delete of an early edge to exercise run splitting.
	pd, err := e.Delete([]aspen.Edge{{Src: 1_000_000, Dst: 1_000_001}})
	if err != nil {
		t.Fatal(err)
	}
	close(gate) // release the first commit; everything queued behind it
	for i, p := range pendings {
		stamp := p.Wait()
		tx := e.Begin()
		if tx.Stamp() < stamp {
			t.Fatalf("pinned %d < committed %d", tx.Stamp(), stamp)
		}
		u := uint32(1_000_000 + 2*i)
		if i > 0 && !tx.Graph().HasEdge(u, u+1) {
			t.Fatalf("edge %d not visible at its commit stamp", i)
		}
		tx.Close()
	}
	pd.Wait()
	tx := e.Begin()
	if tx.Graph().HasEdge(1_000_000, 1_000_001) {
		t.Fatal("FIFO violated: delete submitted after insert did not win")
	}
	tx.Close()

	st := e.Stats()
	if st.Batches != k+2 {
		t.Fatalf("batches = %d, want %d", st.Batches, k+2)
	}
	if st.Commits >= st.Batches {
		t.Fatalf("no coalescing happened: %d commits for %d batches", st.Commits, st.Batches)
	}
}

// TestEngineCoalesceEdgeCap checks that MaxCoalesceEdges is a hard bound
// per commit group: a batch that would push the group over the budget is
// carried into the next group instead (and still commits).
func TestEngineCoalesceEdgeCap(t *testing.T) {
	gate := make(chan struct{})
	var gated sync.Once
	var groups []int // edges per insert run; loop-goroutine only, read after Close
	e := New(aspen.NewGraph(testParams()),
		func(g aspen.Graph, b []aspen.Edge) aspen.Graph {
			gated.Do(func() { <-gate })
			groups = append(groups, len(b))
			return g.InsertEdges(b)
		},
		func(g aspen.Graph, b []aspen.Edge) aspen.Graph { return g.DeleteEdges(b) },
		Options{QueueCap: 64, MaxCoalesce: 16, MaxCoalesceEdges: 250})
	const batches = 10
	const per = 100
	var last Pending
	for i := 0; i < batches; i++ {
		batch := make([]aspen.Edge, per)
		for j := range batch {
			u := uint32(2 * (i*per + j))
			batch[j] = aspen.Edge{Src: u, Dst: u + 1}
		}
		p, err := e.Insert(batch)
		if err != nil {
			t.Fatal(err)
		}
		last = p
	}
	close(gate)
	last.Wait()
	e.Close()
	total := 0
	for _, g := range groups {
		if g > 250 {
			t.Fatalf("commit group folded %d edges, cap 250", g)
		}
		total += g
	}
	if total != batches*per {
		t.Fatalf("committed %d edges, want %d (carried batch lost?)", total, batches*per)
	}
}

func TestEngineFlushAndClose(t *testing.T) {
	e := NewGraphEngine(aspen.NewGraph(testParams()), Options{})
	for i := 0; i < 10; i++ {
		u := uint32(2 * i)
		if _, err := e.Insert([]aspen.Edge{{Src: u, Dst: u + 1}}); err != nil {
			t.Fatal(err)
		}
	}
	stamp, err := e.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if stamp == 0 {
		t.Fatal("flush returned the initial stamp")
	}
	tx := e.Begin()
	if got := tx.Graph().NumEdges(); got != 10 {
		t.Fatalf("NumEdges = %d after flush, want 10", got)
	}
	tx.Close()
	e.Close()
	if _, err := e.Insert([]aspen.Edge{{Src: 100, Dst: 101}}); err != ErrClosed {
		t.Fatalf("Insert after Close: err = %v, want ErrClosed", err)
	}
	if _, err := e.Flush(); err != ErrClosed {
		t.Fatalf("Flush after Close: err = %v, want ErrClosed", err)
	}
	e.Close() // idempotent
}

// TestWeightedEngineKernels runs the weighted engine with SSSP — the
// generic-over-WeightedGraph half of the serving layer.
func TestWeightedEngineKernels(t *testing.T) {
	e := NewWeightedEngine(aspen.NewWeightedGraph(), Options{})
	defer e.Close()
	edges := []aspen.WeightedEdge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 2, Weight: 2},
		{Src: 0, Dst: 2, Weight: 5},
	}
	p, err := e.Insert(aspen.MakeUndirectedWeighted(edges))
	if err != nil {
		t.Fatal(err)
	}
	p.Wait()
	tx := e.Begin()
	defer tx.Close()
	dist := algos.SSSP(tx.Graph(), 0)
	if dist[2] != 3 {
		t.Fatalf("SSSP dist[2] = %v, want 3 (via vertex 1)", dist[2])
	}
}

// TestWorkloadRun smoke-tests the §7.8 runner at tiny scale.
func TestWorkloadRun(t *testing.T) {
	gen := rmat.NewGenerator(10, 3)
	g := aspen.NewGraph(testParams()).InsertEdges(aspen.MakeUndirected(gen.Edges(0, 4_000)))
	e := NewGraphEngine(g, Options{QueueCap: 16})
	defer e.Close()
	w := Workload[aspen.Graph, aspen.Edge]{
		Engine: e,
		NextBatch: func(i uint64) (bool, []aspen.Edge) {
			lo := 4_000 + i*100
			batch := aspen.MakeUndirected(gen.Edges(lo, lo+100))
			return i%10 == 9, batch
		},
		Readers: 2,
		Kernels: []Kernel[aspen.Graph]{
			{Name: "bfs", Run: func(g aspen.Graph) { algos.BFS(g, 0, false) }},
			{Name: "cc", Run: func(g aspen.Graph) { algos.ConnectedComponents(g) }},
		},
		Duration: 150 * time.Millisecond,
	}
	rep := w.Run()
	if rep.Updates == 0 || rep.Queries == 0 {
		t.Fatalf("workload idle: %d updates, %d queries", rep.Updates, rep.Queries)
	}
	if rep.LiveVersions != 1 {
		t.Fatalf("LiveVersions = %d after drain, want 1", rep.LiveVersions)
	}
	if rep.RetiredVersions != rep.FinalStamp {
		t.Fatalf("retired %d versions, want %d (every superseded version)", rep.RetiredVersions, rep.FinalStamp)
	}
	if rep.Commit.Count == 0 || rep.Query.Count == 0 {
		t.Fatal("latency histograms empty")
	}
	if len(rep.PerKernel) != 2 {
		t.Fatalf("PerKernel = %v", rep.PerKernel)
	}
}

// TestSubmitCloseRace checks that concurrent Submit and Close never panic
// and every accepted batch is committed.
func TestSubmitCloseRace(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		e := NewGraphEngine(aspen.NewGraph(testParams()), Options{QueueCap: 4})
		var wg sync.WaitGroup
		var accepted sync.Map
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ; i++ {
					u := uint32(w*1_000_000 + 2*i)
					p, err := e.Insert([]aspen.Edge{{Src: u, Dst: u + 1}})
					if err != nil {
						return
					}
					accepted.Store(u, p)
				}
			}(w)
		}
		time.Sleep(time.Duration(trial%5) * 100 * time.Microsecond)
		e.Close()
		wg.Wait()
		// Every accepted Pending must resolve (Close drains the queue).
		accepted.Range(func(_, v any) bool {
			v.(Pending).Wait()
			return true
		})
		tx := e.Begin()
		edges := tx.Graph().NumEdges()
		var want uint64
		accepted.Range(func(_, _ any) bool { want++; return true })
		if edges != want {
			t.Fatalf("trial %d: %d edges committed, %d accepted", trial, edges, want)
		}
		tx.Close()
	}
}
