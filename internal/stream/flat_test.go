package stream

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/ligra"
	"repro/internal/rmat"
)

func flatTestEngine(tb testing.TB, opts Options) *Engine[aspen.Graph, aspen.Edge] {
	tb.Helper()
	gen := rmat.NewGenerator(10, 7)
	g := aspen.NewGraph(ctree.DefaultParams()).InsertEdges(aspen.MakeUndirected(gen.Edges(0, 4_000)))
	return NewGraphEngine(g, opts)
}

// TestTxFlatCachedPerVersion: one build per version, shared by every
// transaction pinning it, dropped when the version retires.
func TestTxFlatCachedPerVersion(t *testing.T) {
	e := flatTestEngine(t, Options{})
	defer e.Close()

	tx1 := e.Begin()
	v1 := tx1.Flat()
	if _, ok := v1.(ligra.FlatGraph); !ok {
		t.Fatal("Flat view should satisfy ligra.FlatGraph")
	}
	tx2 := e.Begin()
	v2 := tx2.Flat()
	if v1 != v2 {
		t.Fatal("transactions on the same version must share one flat view")
	}
	if st := e.Stats(); st.FlatBuilds != 1 || st.FlatHits != 1 {
		t.Fatalf("builds=%d hits=%d, want 1/1", st.FlatBuilds, st.FlatHits)
	}
	tx1.Close()
	tx2.Close()

	// Commit: version 0 retires (no readers left) and its view is evicted.
	gen := rmat.NewGenerator(10, 8)
	p, err := e.Insert(aspen.MakeUndirected(gen.Edges(0, 500)))
	if err != nil {
		t.Fatal(err)
	}
	p.Wait()
	if st := e.Stats(); st.FlatCached != 0 {
		t.Fatalf("retired version's view still cached (%d entries)", st.FlatCached)
	}

	tx3 := e.Begin()
	defer tx3.Close()
	v3 := tx3.Flat()
	if v3 == v1 {
		t.Fatal("new version must get a fresh flat view")
	}
	st := e.Stats()
	if st.FlatBuilds != 2 || st.FlatCached != 1 {
		t.Fatalf("builds=%d cached=%d, want 2/1", st.FlatBuilds, st.FlatCached)
	}
	// The view answers for the pinned version even while newer commits land.
	if v3.NumEdges() != tx3.Graph().NumEdges() {
		t.Fatal("flat view disagrees with its pinned snapshot")
	}
}

// TestTxFlatFallback: an engine without a registered flatten serves the
// tree snapshot from Flat.
func TestTxFlatFallback(t *testing.T) {
	g := aspen.NewGraph(ctree.DefaultParams()).InsertEdges([]aspen.Edge{{Src: 1, Dst: 2}, {Src: 2, Dst: 1}})
	e := New(g,
		func(g aspen.Graph, b []aspen.Edge) aspen.Graph { return g.InsertEdges(b) },
		func(g aspen.Graph, b []aspen.Edge) aspen.Graph { return g.DeleteEdges(b) },
		Options{})
	defer e.Close()
	tx := e.Begin()
	defer tx.Close()
	if tx.Flat().NumEdges() != tx.Graph().NumEdges() {
		t.Fatal("fallback Flat must serve the tree snapshot")
	}
	if st := e.Stats(); st.FlatBuilds != 0 {
		t.Fatal("no flatten registered, nothing should build")
	}
}

// TestPrebuildFlat: with the knob on, the ingest loop builds the view on
// commit, so the first reader of the new version is a cache hit.
func TestPrebuildFlat(t *testing.T) {
	e := flatTestEngine(t, Options{PrebuildFlat: true})
	defer e.Close()
	gen := rmat.NewGenerator(10, 9)
	p, err := e.Insert(aspen.MakeUndirected(gen.Edges(0, 500)))
	if err != nil {
		t.Fatal(err)
	}
	p.Wait()
	if st := e.Stats(); st.FlatBuilds != 1 {
		t.Fatalf("builds=%d, want the commit-time build", st.FlatBuilds)
	}
	tx := e.Begin()
	defer tx.Close()
	tx.Flat()
	st := e.Stats()
	if st.FlatBuilds != 1 || st.FlatHits != 1 {
		t.Fatalf("builds=%d hits=%d, want prebuilt view served from cache", st.FlatBuilds, st.FlatHits)
	}
}

// TestWeightedTxFlat: the weighted engine's view satisfies the weighted
// flat capability and agrees with the tree snapshot under SSSP.
func TestWeightedTxFlat(t *testing.T) {
	gen := rmat.NewGenerator(9, 11)
	var batch []aspen.WeightedEdge
	for i, ed := range gen.Edges(0, 2_000) {
		w := 1 + float32(i%7)
		batch = append(batch,
			aspen.WeightedEdge{Src: ed.Src, Dst: ed.Dst, Weight: w},
			aspen.WeightedEdge{Src: ed.Dst, Dst: ed.Src, Weight: w})
	}
	e := NewWeightedEngine(aspen.NewWeightedGraph().InsertEdges(batch), Options{})
	defer e.Close()
	tx := e.Begin()
	defer tx.Close()
	fw, ok := tx.Flat().(ligra.FlatWeightedGraph)
	if !ok {
		t.Fatal("weighted Flat view should satisfy ligra.FlatWeightedGraph")
	}
	got := algos.SSSP(fw, 0)
	want := algos.SSSP(tx.Graph(), 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("SSSP[%d] = %v (flat) vs %v (tree)", v, got[v], want[v])
		}
	}
}

// TestFlatDebugCatchesCrossVersionView proves the aspendebug gate is real:
// sabotage the cache by seeding a new version's slot with an older
// version's view, and the next Flat must panic (MustCurrent) instead of
// silently answering for the wrong snapshot. Skipped in release builds,
// where the assertion compiles away.
func TestFlatDebugCatchesCrossVersionView(t *testing.T) {
	if !flatDebug {
		t.Skip("requires -tags aspendebug")
	}
	e := flatTestEngine(t, Options{})
	defer e.Close()
	tx0 := e.Begin()
	stale := tx0.Flat()
	tx0.Close()
	gen := rmat.NewGenerator(10, 13)
	p, err := e.Insert(aspen.MakeUndirected(gen.Edges(0, 100)))
	if err != nil {
		t.Fatal(err)
	}
	stamp := p.Wait()
	entry := &flatEntry{}
	entry.once.Do(func() { entry.view = stale })
	e.flat.mu.Lock()
	if e.flat.m == nil {
		e.flat.m = map[uint64]*flatEntry{}
	}
	e.flat.m[stamp] = entry
	e.flat.mu.Unlock()
	tx := e.Begin()
	defer tx.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("cross-version cached view was not caught by the aspendebug assert")
		}
	}()
	tx.Flat()
}

// TestConcurrentFlatSharedUnderCommits is the satellite-(c) race test:
// many readers share per-version cached flat views while the writer
// commits and versions retire underneath them. Run under -race in CI; the
// invariant checked here is "at most one build per published version" and
// full cache drain once every reader is done.
func TestConcurrentFlatSharedUnderCommits(t *testing.T) {
	e := flatTestEngine(t, Options{})
	gen := rmat.NewGenerator(10, 12)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				tx := e.Begin()
				fg := tx.Flat()
				algos.BFS(fg, uint32(i%1024), false)
				if fg.NumEdges() != tx.Graph().NumEdges() {
					t.Error("flat view diverged from pinned snapshot")
				}
				tx.Close()
			}
		}(r)
	}
	pos := uint64(4_000)
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		p, err := e.Insert(aspen.MakeUndirected(gen.Edges(pos, pos+200)))
		if err != nil {
			t.Fatal(err)
		}
		p.Wait()
		pos += 200
	}
	stop.Store(true)
	wg.Wait()
	st := e.Stats()
	e.Close()
	if st.FlatBuilds > st.Stamp+1 {
		t.Fatalf("more flat builds (%d) than versions (%d): cache not shared", st.FlatBuilds, st.Stamp+1)
	}
	if st.LiveVersions != 1 {
		t.Fatalf("live versions = %d after drain, want 1", st.LiveVersions)
	}
	if final := e.Stats(); final.FlatCached > 1 {
		t.Fatalf("cache holds %d entries after drain, want ≤ 1", final.FlatCached)
	}
}
