package stream

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ligra"
)

// Kernel is a named analytics query run inside read transactions — any
// algos kernel (BFS, CC, SSSP, ...) closed over its parameters.
type Kernel[G ligra.Graph] struct {
	Name string
	// Run executes the kernel against the pinned tree snapshot.
	Run func(g G)
	// RunFlat, when set and the workload has UseFlat, executes against the
	// transaction's cached flat view (Tx.Flat) instead — the §5.1 fast path.
	// Weighted kernels type-assert the view to ligra.FlatWeightedGraph.
	RunFlat func(g ligra.Graph)
}

// Workload drives the paper's §7.8 experiment against a live engine: one
// writer goroutine sustains batched updates while Readers goroutines issue
// queries on pinned snapshots, for Duration. All latencies are measured
// end-to-end (commit: enqueue → visible; query: begin → close).
type Workload[G ligra.Graph, E any] struct {
	Engine *Engine[G, E]
	// NextBatch returns the i-th update batch of the stream (del reports
	// a deletion batch). Called only from the writer goroutine. Nil means
	// an idle writer (the query-only baseline).
	NextBatch func(i uint64) (del bool, edges []E)
	// Readers is the number of concurrent query goroutines.
	Readers int
	// Kernels are cycled round-robin by every reader.
	Kernels []Kernel[G]
	// Duration is how long the writer sustains updates; readers stop with
	// the writer.
	Duration time.Duration
	// Interval, when positive, paces the writer to one batch per Interval
	// (an offered-load experiment: commit latency is measured at that
	// rate). Zero saturates: submit as fast as the queue accepts
	// (latency then includes queue backpressure).
	Interval time.Duration
	// UseFlat routes kernels that define RunFlat through the per-version
	// cached flat view; kernels without RunFlat keep the tree snapshot.
	UseFlat bool
}

// UpdateSchedule returns the §7.8 writer schedule shared by cmd/stream
// and the bench harness: 9 insert batches of fresh generator edges
// followed by 1 delete batch replaying a recently inserted range (so
// deletions perform real work), repeating. start is the first unconsumed
// generator index, batch the edges drawn per batch, and mk materializes a
// generator range [lo, hi) as updates. The returned closure is
// single-goroutine (writer-only), like NextBatch.
func UpdateSchedule[E any](start, batch uint64, mk func(lo, hi uint64) []E) func(i uint64) (bool, []E) {
	type span struct{ lo, hi uint64 }
	var recent []span
	pos := start
	return func(i uint64) (bool, []E) {
		if i%10 == 9 && len(recent) > 4 {
			s := recent[0]
			recent = recent[1:]
			return true, mk(s.lo, s.hi)
		}
		lo := pos
		pos += batch
		recent = append(recent, span{lo, pos})
		return false, mk(lo, pos)
	}
}

// KernelStat pairs a kernel with its query-latency digest.
type KernelStat struct {
	Name    string         `json:"name"`
	Latency LatencySummary `json:"latency"`
}

// Report is the outcome of one Workload run — the §7.8 numbers.
type Report struct {
	Duration      time.Duration `json:"duration_ns"`
	Readers       int           `json:"readers"`
	Updates       uint64        `json:"updates"`         // directed edge updates applied
	UpdatesPerSec float64       `json:"updates_per_sec"` // sustained, over Duration
	Commits       uint64        `json:"commits"`
	Batches       uint64        `json:"batches"`
	Coalesce      float64       `json:"coalesce_factor"` // batches per commit

	Commit LatencySummary `json:"commit_latency"`

	Queries       uint64         `json:"queries"`
	QueriesPerSec float64        `json:"queries_per_sec"`
	Query         LatencySummary `json:"query_latency"`
	PerKernel     []KernelStat   `json:"per_kernel"`

	// LiveVersions and RetiredVersions are sampled after the run drains:
	// live must be 1 (only the current version) when every reader exited,
	// proving retired snapshots were released.
	LiveVersions    int64  `json:"live_versions"`
	RetiredVersions uint64 `json:"retired_versions"`
	FinalStamp      uint64 `json:"final_stamp"`

	// FlatBuilds / FlatHits prove the flat-cache contract under load: with
	// flat kernels, builds ≤ versions published + 1 (at most one build per
	// committed version) while hits cover every other query.
	FlatBuilds uint64 `json:"flat_builds"`
	FlatHits   uint64 `json:"flat_hits"`
}

// Run executes the workload and reports. The engine is flushed but left
// open (Close it separately).
func (w *Workload[G, E]) Run() Report {
	type kernelHist struct {
		name string
		hist *Hist
	}
	kh := make([]kernelHist, len(w.Kernels))
	for i, k := range w.Kernels {
		kh[i] = kernelHist{name: k.Name, hist: &Hist{}}
	}
	var queryHist Hist
	var queries atomic.Uint64
	var stop atomic.Bool

	var readerWG sync.WaitGroup
	readers := w.Readers
	if len(w.Kernels) == 0 {
		readers = 0
	}
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for i := r; !stop.Load(); i++ {
				k := w.Kernels[i%len(w.Kernels)]
				t0 := time.Now()
				tx := w.Engine.Begin()
				if w.UseFlat && k.RunFlat != nil {
					k.RunFlat(tx.Flat())
				} else {
					k.Run(tx.Graph())
				}
				tx.Close()
				d := time.Since(t0)
				queryHist.Observe(d)
				kh[i%len(w.Kernels)].hist.Observe(d)
				queries.Add(1)
			}
		}(r)
	}

	// Writer: pipeline batches through the bounded queue until the
	// deadline, then flush so every submitted batch is committed.
	start := time.Now()
	deadline := start.Add(w.Duration)
	if w.NextBatch == nil {
		time.Sleep(w.Duration)
	}
	for i := uint64(0); w.NextBatch != nil && time.Now().Before(deadline); i++ {
		if w.Interval > 0 {
			// Absolute schedule: batch i is due at start + i*Interval, so
			// a slow commit doesn't shift the whole offered load.
			if due := start.Add(time.Duration(i) * w.Interval); time.Until(due) > 0 {
				time.Sleep(time.Until(due))
			}
		}
		del, edges := w.NextBatch(i)
		var err error
		if del {
			_, err = w.Engine.Delete(edges)
		} else {
			_, err = w.Engine.Insert(edges)
		}
		if err != nil {
			break
		}
	}
	stamp, _ := w.Engine.Flush()
	elapsed := time.Since(start)
	stop.Store(true)
	readerWG.Wait()

	st := w.Engine.Stats()
	rep := Report{
		Duration:        elapsed,
		Readers:         w.Readers,
		Updates:         st.Edges,
		UpdatesPerSec:   float64(st.Edges) / elapsed.Seconds(),
		Commits:         st.Commits,
		Batches:         st.Batches,
		Coalesce:        st.CoalesceFactor(),
		Commit:          st.Commit,
		Queries:         queries.Load(),
		QueriesPerSec:   float64(queries.Load()) / elapsed.Seconds(),
		Query:           queryHist.Summary(),
		LiveVersions:    st.LiveVersions,
		RetiredVersions: st.RetiredVersions,
		FinalStamp:      stamp,
		FlatBuilds:      st.FlatBuilds,
		FlatHits:        st.FlatHits,
	}
	for _, k := range kh {
		rep.PerKernel = append(rep.PerKernel, KernelStat{Name: k.name, Latency: k.hist.Summary()})
	}
	sort.Slice(rep.PerKernel, func(i, j int) bool { return rep.PerKernel[i].Name < rep.PerKernel[j].Name })
	return rep
}
