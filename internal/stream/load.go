package stream

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ligra"
)

// Kernel is a named analytics query run inside read transactions — any
// algos kernel (BFS, CC, SSSP, ...) closed over its parameters.
type Kernel[G ligra.Graph] struct {
	Name string
	// Run executes the kernel against the pinned tree snapshot.
	Run func(g G)
	// RunFlat, when set and the workload has UseFlat, executes against the
	// transaction's cached flat view (Tx.Flat) instead — the §5.1 fast path.
	// Weighted kernels type-assert the view to ligra.FlatWeightedGraph.
	RunFlat func(g ligra.Graph)
}

// Workload drives the paper's §7.8 experiment against a live engine: one
// writer goroutine sustains batched updates while Readers goroutines issue
// queries on pinned snapshots, for Duration. All latencies are measured
// end-to-end (commit: enqueue → visible; query: begin → close).
type Workload[G ligra.Graph, E any] struct {
	Engine *Engine[G, E]
	// NextBatch returns the i-th update batch of the stream (del reports
	// a deletion batch). Called only from the writer goroutine. Nil means
	// an idle writer (the query-only baseline).
	NextBatch func(i uint64) (del bool, edges []E)
	// Readers is the number of concurrent query goroutines.
	Readers int
	// Kernels are cycled round-robin by every reader.
	Kernels []Kernel[G]
	// Duration is how long the writer sustains updates; readers stop with
	// the writer.
	Duration time.Duration
	// Interval, when positive, paces the writer to one batch per Interval
	// (an offered-load experiment: commit latency is measured at that
	// rate). Zero saturates: submit as fast as the queue accepts
	// (latency then includes queue backpressure).
	Interval time.Duration
	// UseFlat routes kernels that define RunFlat through the per-version
	// cached flat view; kernels without RunFlat keep the tree snapshot.
	UseFlat bool
	// Stop, when non-nil, ends the run early once closed (graceful
	// shutdown): the writer stops submitting, everything already submitted
	// is flushed, and readers drain as usual.
	Stop <-chan struct{}
}

// UpdateSchedule returns the §7.8 writer schedule shared by cmd/stream
// and the bench harness: 9 insert batches of fresh generator edges
// followed by 1 delete batch replaying a recently inserted range (so
// deletions perform real work), repeating. start is the first unconsumed
// generator index, batch the edges drawn per batch, and mk materializes a
// generator range [lo, hi) as updates. The returned closure is
// single-goroutine (writer-only), like NextBatch.
func UpdateSchedule[E any](start, batch uint64, mk func(lo, hi uint64) []E) func(i uint64) (bool, []E) {
	return UpdateScheduleMix(start, batch, 10, mk)
}

// UpdateScheduleMix generalizes UpdateSchedule to an arbitrary delete
// frequency: one delete batch (replaying the oldest recently inserted
// range) every period batches — period 10 is the classic 9:1 mix, period 2
// the delete-heavy expiry mix that stresses the incremental-maintenance
// paths (flat-view patching, IncrementalCC splits). period < 2 (or a dry
// replay buffer) degenerates to inserts only; the buffer keeps a few spans
// in flight so deletes never chase the batch just inserted.
func UpdateScheduleMix[E any](start, batch, period uint64, mk func(lo, hi uint64) []E) func(i uint64) (bool, []E) {
	type span struct{ lo, hi uint64 }
	var recent []span
	pos := start
	return func(i uint64) (bool, []E) {
		if period >= 2 && i%period == period-1 && len(recent) > 4 {
			s := recent[0]
			recent = recent[1:]
			return true, mk(s.lo, s.hi)
		}
		lo := pos
		pos += batch
		recent = append(recent, span{lo, pos})
		return false, mk(lo, pos)
	}
}

// KernelStat pairs a kernel with its query-latency digest.
type KernelStat struct {
	Name    string         `json:"name"`
	Latency LatencySummary `json:"latency"`
}

// Report is the outcome of one Workload run — the §7.8 numbers.
type Report struct {
	Duration      time.Duration `json:"duration_ns"`
	Readers       int           `json:"readers"`
	Updates       uint64        `json:"updates"`         // directed edge updates applied
	UpdatesPerSec float64       `json:"updates_per_sec"` // sustained, over Duration
	Commits       uint64        `json:"commits"`
	Batches       uint64        `json:"batches"`
	Coalesce      float64       `json:"coalesce_factor"` // batches per commit

	Commit LatencySummary `json:"commit_latency"`

	Queries       uint64         `json:"queries"`
	QueriesPerSec float64        `json:"queries_per_sec"`
	Query         LatencySummary `json:"query_latency"`
	PerKernel     []KernelStat   `json:"per_kernel"`

	// LiveVersions and RetiredVersions are sampled after the run drains:
	// live must be 1 (only the current version) when every reader exited,
	// proving retired snapshots were released.
	LiveVersions    int64  `json:"live_versions"`
	RetiredVersions uint64 `json:"retired_versions"`
	FinalStamp      uint64 `json:"final_stamp"`

	// FlatBuilds / FlatPatches / FlatHits prove the flat-cache contract
	// under load: with flat kernels, builds + patches ≤ versions published
	// + 1 (at most one materialization per committed version; under
	// Options.PatchFlat all but the first are O(batch) patches) while hits
	// cover every other query.
	FlatBuilds  uint64 `json:"flat_builds"`
	FlatPatches uint64 `json:"flat_patches,omitempty"`
	FlatHits    uint64 `json:"flat_hits"`
}

// DriveSpec parameterizes the shared §7.8 load loop (Drive) that both the
// single-engine Workload and the sharded cluster workload run: Readers
// goroutines cycle Kernels round-robin, each query through RunKernel,
// while one writer goroutine feeds Submit until the deadline — paced to
// Interval or saturated — and Flush then drains everything submitted.
// One implementation keeps the two workloads' measurement semantics
// identical by construction.
type DriveSpec struct {
	Readers int
	// Kernels is the number of kernels cycled; 0 disables readers.
	Kernels int
	// RunKernel executes one query against kernel k (begin a transaction,
	// run, close). Called concurrently from reader goroutines.
	RunKernel func(k int)
	// Submit enqueues update batch i; nil means an idle writer.
	Submit func(i uint64) error
	// Flush blocks until everything submitted has committed.
	Flush    func()
	Duration time.Duration
	Interval time.Duration
	// Stop, when non-nil, ends the loop early once closed: the writer
	// stops submitting (mid-sleep pacing waits are interrupted), Flush
	// still runs, and readers join as usual.
	Stop <-chan struct{}
}

// DriveStats is what the loop itself measures: wall time and query
// latencies. Callers fold in their engine or cluster counter deltas.
type DriveStats struct {
	Elapsed   time.Duration
	Queries   uint64
	Query     LatencySummary
	PerKernel []LatencySummary
}

// Drive runs the load loop to completion (writer deadline reached, flush
// drained, readers joined).
func Drive(s DriveSpec) DriveStats {
	kh := make([]*Hist, s.Kernels)
	for i := range kh {
		kh[i] = &Hist{}
	}
	var queryHist Hist
	var queries atomic.Uint64
	var stop atomic.Bool

	var readerWG sync.WaitGroup
	readers := s.Readers
	if s.Kernels == 0 {
		readers = 0
	}
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for i := r; !stop.Load(); i++ {
				k := i % s.Kernels
				t0 := time.Now()
				s.RunKernel(k)
				d := time.Since(t0)
				queryHist.Observe(d)
				kh[k].Observe(d)
				queries.Add(1)
			}
		}(r)
	}

	// sleep waits for d unless Stop closes first; reports whether the loop
	// should keep going.
	sleep := func(d time.Duration) bool {
		if s.Stop == nil {
			time.Sleep(d)
			return true
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-s.Stop:
			return false
		case <-t.C:
			return true
		}
	}
	stopped := func() bool {
		if s.Stop == nil {
			return false
		}
		select {
		case <-s.Stop:
			return true
		default:
			return false
		}
	}

	// Writer: pipeline batches through the bounded queue(s) until the
	// deadline, then flush so every submitted batch is committed.
	start := time.Now()
	deadline := start.Add(s.Duration)
	if s.Submit == nil {
		sleep(s.Duration)
	}
	for i := uint64(0); s.Submit != nil && time.Now().Before(deadline); i++ {
		if stopped() {
			break
		}
		if s.Interval > 0 {
			// Absolute schedule: batch i is due at start + i*Interval, so
			// a slow commit doesn't shift the whole offered load.
			if due := start.Add(time.Duration(i) * s.Interval); time.Until(due) > 0 {
				if !sleep(time.Until(due)) {
					break
				}
			}
		}
		if s.Submit(i) != nil {
			break
		}
	}
	s.Flush()
	elapsed := time.Since(start)
	stop.Store(true)
	readerWG.Wait()

	ds := DriveStats{
		Elapsed: elapsed,
		Queries: queries.Load(),
		Query:   queryHist.Summary(),
	}
	for _, h := range kh {
		ds.PerKernel = append(ds.PerKernel, h.Summary())
	}
	return ds
}

// Run executes the workload and reports. The engine is flushed but left
// open (Close it separately). Counters are reported as deltas over the
// run, so an engine that already served traffic (or was preloaded through
// its own ingest path) measures only this run's updates.
func (w *Workload[G, E]) Run() Report {
	before := w.Engine.Stats()
	var stamp uint64
	spec := DriveSpec{
		Readers: w.Readers,
		Kernels: len(w.Kernels),
		RunKernel: func(k int) {
			kn := w.Kernels[k]
			tx := w.Engine.Begin()
			if w.UseFlat && kn.RunFlat != nil {
				kn.RunFlat(tx.Flat())
			} else {
				kn.Run(tx.Graph())
			}
			tx.Close()
		},
		Flush:    func() { stamp, _ = w.Engine.Flush() },
		Duration: w.Duration,
		Interval: w.Interval,
		Stop:     w.Stop,
	}
	if w.NextBatch != nil {
		spec.Submit = func(i uint64) error {
			del, edges := w.NextBatch(i)
			var err error
			if del {
				_, err = w.Engine.Delete(edges)
			} else {
				_, err = w.Engine.Insert(edges)
			}
			return err
		}
	}
	ds := Drive(spec)

	st := w.Engine.Stats()
	runStats := Stats{Commits: st.Commits - before.Commits, Batches: st.Batches - before.Batches}
	rep := Report{
		Duration:        ds.Elapsed,
		Readers:         w.Readers,
		Updates:         st.Edges - before.Edges,
		UpdatesPerSec:   float64(st.Edges-before.Edges) / ds.Elapsed.Seconds(),
		Commits:         runStats.Commits,
		Batches:         runStats.Batches,
		Coalesce:        runStats.CoalesceFactor(),
		Commit:          st.Commit,
		Queries:         ds.Queries,
		QueriesPerSec:   float64(ds.Queries) / ds.Elapsed.Seconds(),
		Query:           ds.Query,
		LiveVersions:    st.LiveVersions,
		RetiredVersions: st.RetiredVersions - before.RetiredVersions,
		FinalStamp:      stamp,
		FlatBuilds:      st.FlatBuilds - before.FlatBuilds,
		FlatPatches:     st.FlatPatches - before.FlatPatches,
		FlatHits:        st.FlatHits - before.FlatHits,
	}
	for i, k := range w.Kernels {
		rep.PerKernel = append(rep.PerKernel, KernelStat{Name: k.Name, Latency: ds.PerKernel[i]})
	}
	sort.Slice(rep.PerKernel, func(i, j int) bool { return rep.PerKernel[i].Name < rep.PerKernel[j].Name })
	return rep
}
