package stream

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aspen"
	"repro/internal/graphio"
	"repro/internal/ligra"
	"repro/internal/wal"
	"repro/internal/xhash"
)

// durBatch deterministically generates the i-th test batch: mostly inserts
// with periodic deletes of earlier edges, mirroring UpdateSchedule's mix.
func durBatch(i int) (del bool, edges []aspen.Edge) {
	r := xhash.NewRNG(uint64(1000 + i))
	del = i%5 == 4
	k := 8 + i%7
	edges = make([]aspen.Edge, 0, 2*k)
	for j := 0; j < k; j++ {
		src := uint32(r.Next() % 64)
		dst := uint32(r.Next() % 64)
		edges = append(edges, aspen.Edge{Src: src, Dst: dst}, aspen.Edge{Src: dst, Dst: src})
	}
	return del, edges
}

// prefixGraphs rebuilds the graphs after applying batches 0..j-1 for every
// j in [0, n] — the committed prefixes recovery may legally land on.
func prefixGraphs(n int) []aspen.Graph {
	out := make([]aspen.Graph, n+1)
	g := aspen.NewGraph(testParams())
	out[0] = g
	for i := 0; i < n; i++ {
		del, edges := durBatch(i)
		if del {
			g = g.DeleteEdges(edges)
		} else {
			g = g.InsertEdges(edges)
		}
		out[i+1] = g
	}
	return out
}

func testDurability(dir string) Durability {
	return Durability{
		Dir:             dir,
		Policy:          SyncEveryCommit,
		CheckpointEvery: 3,
		SegmentBytes:    2048, // force segment rotation under test loads
	}
}

// submitSerial pushes batches one at a time, waiting for each ack, and
// returns how many were acknowledged (stopping at the first nack).
func submitSerial(t *testing.T, e *Engine[aspen.Graph, aspen.Edge], n int) int {
	t.Helper()
	for i := 0; i < n; i++ {
		del, edges := durBatch(i)
		var p Pending
		var err error
		if del {
			p, err = e.Delete(edges)
		} else {
			p, err = e.Insert(edges)
		}
		if err != nil {
			return i
		}
		if p.Wait() == 0 {
			return i // nacked: durability failure
		}
	}
	return n
}

func TestDurableCleanRestart(t *testing.T) {
	dir := t.TempDir()
	d := testDurability(dir)
	e, err := RecoverGraphEngine(testParams(), Options{}, d)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	if acked := submitSerial(t, e, n); acked != n {
		t.Fatalf("acked %d/%d batches", acked, n)
	}
	want := e.Begin()
	wantEdges := want.Graph().NumEdges()
	want.Close()
	e.Close()
	if err := e.Err(); err != nil {
		t.Fatalf("engine error after clean close: %v", err)
	}

	// A clean close leaves a final checkpoint; reopening must reproduce the
	// exact graph and keep serving.
	e2, err := RecoverGraphEngine(testParams(), Options{}, d)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tx := e2.Begin()
	if got := tx.Graph().NumEdges(); got != wantEdges {
		t.Fatalf("recovered %d edges, want %d", got, wantEdges)
	}
	if !tx.Graph().Equal(prefixGraphs(n)[n]) {
		t.Fatal("recovered graph differs from the committed prefix")
	}
	tx.Close()
	// The recovered engine keeps committing durably.
	p, err := e2.Insert([]aspen.Edge{{Src: 200, Dst: 201}})
	if err != nil || p.Wait() == 0 {
		t.Fatalf("post-recovery insert failed: %v", err)
	}
}

func TestDurableWeightedRestart(t *testing.T) {
	dir := t.TempDir()
	d := testDurability(dir)
	e, err := RecoverWeightedEngine(testParams(), Options{}, d)
	if err != nil {
		t.Fatal(err)
	}
	var want aspen.WeightedGraph
	{
		g := aspen.NewWeightedGraphWith(testParams())
		for i := 0; i < 6; i++ {
			batch := []aspen.WeightedEdge{{Src: uint32(i), Dst: uint32(i + 1), Weight: float32(i) + 0.5}}
			g = g.InsertEdges(batch)
			p, err := e.Insert(batch)
			if err != nil || p.Wait() == 0 {
				t.Fatalf("insert %d failed: %v", i, err)
			}
		}
		want = g
	}
	e.Close()
	e2, err := RecoverWeightedEngine(testParams(), Options{}, d)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tx := e2.Begin()
	defer tx.Close()
	if !tx.Graph().Equal(want) {
		t.Fatal("recovered weighted graph differs")
	}
	if w, ok := tx.Graph().Weight(3, 4); !ok || w != 3.5 {
		t.Fatalf("weight(3,4) = %v %v, want 3.5", w, ok)
	}
}

// failAfter returns a failpoint that injects a crash on the n-th occurrence
// of op.
func failAfter(op string, n int) wal.Failpoint {
	var count atomic.Int64
	return func(got string) error {
		if got != op {
			return nil
		}
		if count.Add(1) == int64(n) {
			return wal.ErrCrash
		}
		return nil
	}
}

// TestCrashRecoveryMatrix is the crash-injection harness: for every kill
// point around append/fsync/checkpoint/truncate and several arm positions,
// it drives a durable engine until the injected crash, abandons it the way
// a dying process would, then recovers the directory and asserts the
// recovered graph equals SOME committed prefix of the submitted batches —
// and never a shorter prefix than the acknowledged (fsync'd) ones.
func TestCrashRecoveryMatrix(t *testing.T) {
	points := []string{"append", "append.partial", "append.flush", "sync", "checkpoint", "truncate"}
	const n = 14
	prefixes := prefixGraphs(n)
	for _, point := range points {
		for arm := 1; arm <= 3; arm++ {
			t.Run(fmt.Sprintf("%s/arm%d", point, arm), func(t *testing.T) {
				dir := t.TempDir()
				d := testDurability(dir)
				d.Fail = failAfter(point, arm)
				e, err := RecoverGraphEngine(testParams(), Options{}, d)
				if err != nil {
					t.Fatal(err)
				}
				acked := submitSerial(t, e, n)
				e.Close() // reaps goroutines; the log was abandoned by the injected crash

				if acked < n {
					// The engine must be fail-stopped with the injected error.
					if err := e.Err(); !errors.Is(err, wal.ErrCrash) {
						t.Fatalf("engine error = %v, want ErrCrash", err)
					}
				}

				// Recover and match against the committed prefixes.
				g, _, err := LoadGraph(testParams(), dir)
				if err != nil {
					t.Fatalf("recovery failed: %v", err)
				}
				// Submission is serial, so the recovered state must be the
				// acked prefix or at most one batch past it (the in-flight
				// append the crash stranded). Distinct prefixes can be equal
				// graphs (a delete of absent edges is a no-op), so test the
				// two legal prefixes directly rather than scanning for the
				// first structural match.
				switch {
				case g.Equal(prefixes[acked]):
				case acked < n && g.Equal(prefixes[acked+1]):
				default:
					t.Fatalf("recovered graph (%d edges) is neither the %d-batch acked prefix (%d edges) nor one past it",
						g.NumEdges(), acked, prefixes[acked].NumEdges())
				}
			})
		}
	}
}

// TestRecoverThenContinueAfterCrash checks the full cycle: crash, recover
// into a live engine, keep ingesting, close cleanly, recover again.
func TestRecoverThenContinueAfterCrash(t *testing.T) {
	dir := t.TempDir()
	d := testDurability(dir)
	d.Fail = failAfter("append", 8)
	e, err := RecoverGraphEngine(testParams(), Options{}, d)
	if err != nil {
		t.Fatal(err)
	}
	const n = 14
	acked := submitSerial(t, e, n)
	if acked == n {
		t.Fatal("crash never fired")
	}
	e.Close()

	// Reopen for appending (failpoint disarmed) and submit the remaining
	// batches on top of whatever prefix survived.
	d.Fail = nil
	e2, err := RecoverGraphEngine(testParams(), Options{}, d)
	if err != nil {
		t.Fatal(err)
	}
	tx := e2.Begin()
	survived := tx.Graph().NumEdges()
	tx.Close()
	prefixes := prefixGraphs(n)
	start := -1
	for j := 0; j <= n; j++ {
		if prefixes[j].NumEdges() == survived {
			tx := e2.Begin()
			eq := tx.Graph().Equal(prefixes[j])
			tx.Close()
			if eq {
				start = j
				break
			}
		}
	}
	if start < 0 {
		t.Fatal("recovered graph equals no prefix")
	}
	for i := start; i < n; i++ {
		del, edges := durBatch(i)
		var p Pending
		if del {
			p, _ = e2.Delete(edges)
		} else {
			p, _ = e2.Insert(edges)
		}
		if p.Wait() == 0 {
			t.Fatalf("batch %d nacked after recovery", i)
		}
	}
	e2.Close()

	g, _, err := LoadGraph(testParams(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(prefixes[n]) {
		t.Fatal("final recovery differs from the full prefix")
	}
}

// TestCorruptNewestCheckpointFallsBack damages the newest checkpoint file
// and asserts recovery falls back to the older retained checkpoint plus
// WAL replay, landing on the same final graph.
func TestCorruptNewestCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	d := testDurability(dir)
	e, err := RecoverGraphEngine(testParams(), Options{}, d)
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	if acked := submitSerial(t, e, n); acked != n {
		t.Fatalf("acked %d/%d", acked, n)
	}
	e.Close()

	cks, err := listCheckpoints(dir)
	if err != nil || len(cks) < 2 {
		t.Fatalf("want ≥2 checkpoints, have %d (err=%v)", len(cks), err)
	}
	newest := cks[len(cks)-1].path
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(newest, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	g, _, err := LoadGraph(testParams(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(prefixGraphs(n)[n]) {
		t.Fatal("fallback recovery differs from the committed graph")
	}
}

// TestDurableFailStop asserts the fail-stop contract: after a durability
// error, no later batch is acknowledged or applied, Flush resolves (with
// stamp 0) instead of hanging, and Err reports the cause.
func TestDurableFailStop(t *testing.T) {
	dir := t.TempDir()
	d := testDurability(dir)
	d.Fail = failAfter("append", 3)
	e, err := RecoverGraphEngine(testParams(), Options{}, d)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	acked := submitSerial(t, e, 10)
	if acked >= 10 {
		t.Fatal("crash never fired")
	}
	stampAt := e.Stats().Stamp
	// Everything after the failure is nacked; nothing else publishes.
	p, err := e.Insert([]aspen.Edge{{Src: 1, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Wait() != 0 {
		t.Fatal("batch acked after fail-stop")
	}
	if s, err := e.Flush(); err != nil || s != 0 {
		t.Fatalf("Flush after fail-stop = %d, %v", s, err)
	}
	if e.Stats().Stamp != stampAt {
		t.Fatal("version published after fail-stop")
	}
	if err := e.Err(); !errors.Is(err, wal.ErrCrash) {
		t.Fatalf("Err() = %v", err)
	}
}

// TestMidLogCorruptionRefusesRecovery flips a byte in the middle of a
// non-final WAL segment: recovery must refuse with wal.ErrCorrupt rather
// than silently serving a wrong graph.
func TestMidLogCorruptionRefusesRecovery(t *testing.T) {
	dir := t.TempDir()
	d := testDurability(dir)
	d.CheckpointEvery = 1 << 30 // no checkpoints: the WAL is the only copy
	e, err := RecoverGraphEngine(testParams(), Options{}, d)
	if err != nil {
		t.Fatal(err)
	}
	if acked := submitSerial(t, e, 12); acked != 12 {
		t.Fatalf("acked %d/12", acked)
	}
	// Abandon without the clean-close checkpoint so replay must walk the log.
	e.dur.log.Abort()
	e.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("want ≥2 segments, have %d", len(segs))
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadGraph(testParams(), dir); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("recovery over damaged mid-log = %v, want ErrCorrupt", err)
	}
}

// TestSyncPolicies drives each fsync policy through a restart cycle; all
// must reproduce the committed graph on a clean close.
func TestSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncEveryCommit, SyncInterval, SyncOff} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			d := testDurability(dir)
			d.Policy = policy
			d.Interval = time.Millisecond
			e, err := RecoverGraphEngine(testParams(), Options{}, d)
			if err != nil {
				t.Fatal(err)
			}
			const n = 8
			if acked := submitSerial(t, e, n); acked != n {
				t.Fatalf("acked %d/%d", acked, n)
			}
			if err := e.SyncWAL(); err != nil {
				t.Fatal(err)
			}
			e.Close()
			g, _, err := LoadGraph(testParams(), dir)
			if err != nil {
				t.Fatal(err)
			}
			if !g.Equal(prefixGraphs(n)[n]) {
				t.Fatalf("policy %v: recovered graph differs", policy)
			}
		})
	}
}

// blockGraph is a minimal ligra.Graph whose engine insert blocks until
// released — the tool for saturating the ingest queue deterministically.
type blockGraph struct{}

func (blockGraph) Order() int                                  { return 0 }
func (blockGraph) NumEdges() uint64                            { return 0 }
func (blockGraph) Degree(uint32) int                           { return 0 }
func (blockGraph) ForEachNeighbor(uint32, func(v uint32) bool) {}

func newBlockedEngine(queueCap int) (*Engine[blockGraph, aspen.Edge], chan struct{}, chan struct{}) {
	entered := make(chan struct{}, 64)
	release := make(chan struct{})
	apply := func(g blockGraph, _ []aspen.Edge) blockGraph {
		entered <- struct{}{}
		<-release
		return g
	}
	e := New(blockGraph{}, apply, apply, Options{QueueCap: queueCap, MaxCoalesce: 1})
	return e, entered, release
}

func TestTrySubmitSaturatedQueue(t *testing.T) {
	e, entered, release := newBlockedEngine(1)
	one := []aspen.Edge{{Src: 1, Dst: 2}}

	// First batch: picked up by the loop, now blocked applying.
	p1, err := e.TrySubmit(false, one)
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	// Second batch fills the queue (cap 1).
	p2, err := e.TrySubmit(false, one)
	if err != nil {
		t.Fatal(err)
	}
	// Queue full: TrySubmit must refuse instantly instead of blocking.
	if _, err := e.TrySubmit(false, one); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("TrySubmit on full queue = %v, want ErrQueueFull", err)
	}
	close(release)
	if p1.Wait() == 0 || p2.Wait() == 0 {
		t.Fatal("accepted batches must still commit")
	}
	e.Close()
	if _, err := e.TrySubmit(false, one); !errors.Is(err, ErrClosed) {
		t.Fatalf("TrySubmit after close = %v, want ErrClosed", err)
	}
}

func TestSubmitCtxSaturatedQueue(t *testing.T) {
	e, entered, release := newBlockedEngine(1)
	one := []aspen.Edge{{Src: 1, Dst: 2}}

	p1, err := e.SubmitCtx(context.Background(), false, one)
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	p2, err := e.SubmitCtx(context.Background(), false, one)
	if err != nil {
		t.Fatal(err)
	}
	// Queue full: a deadline must unblock the submitter with ctx's error.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := e.SubmitCtx(ctx, false, one); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SubmitCtx on full queue = %v, want DeadlineExceeded", err)
	}
	// An already-cancelled context never enqueues.
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := e.SubmitCtx(done, false, one); !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitCtx with cancelled ctx = %v, want Canceled", err)
	}
	close(release)
	if p1.Wait() == 0 || p2.Wait() == 0 {
		t.Fatal("accepted batches must still commit")
	}
	e.Close()
	if _, err := e.SubmitCtx(context.Background(), false, one); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitCtx after close = %v, want ErrClosed", err)
	}
}

// TestEngineRetirePinnedStamp covers version retention through the engine's
// retire hook: a transaction pinning a past stamp keeps that version
// readable while newer commits land, and releasing it retires the version
// exactly once.
func TestEngineRetirePinnedStamp(t *testing.T) {
	e := NewGraphEngine(aspen.NewGraph(testParams()), Options{})
	retired := make(map[uint64]int)
	var mu chanMutex = make(chan struct{}, 1)
	e.OnRetire(func(stamp uint64) {
		mu.lock()
		retired[stamp]++
		mu.unlock()
	})
	p, _ := e.Insert([]aspen.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}})
	first := p.Wait()
	tx := e.Begin() // pins version `first`
	for i := uint32(2); i < 6; i++ {
		p, _ := e.Insert([]aspen.Edge{{Src: i, Dst: i + 1}, {Src: i + 1, Dst: i}})
		p.Wait()
	}
	mu.lock()
	if retired[first] != 0 {
		mu.unlock()
		t.Fatal("pinned version retired while a transaction holds it")
	}
	mu.unlock()
	if tx.Stamp() != first || !tx.Graph().HasEdge(0, 1) || tx.Graph().NumEdges() != 2 {
		t.Fatal("pinned past stamp no longer readable")
	}
	tx.Close()
	mu.lock()
	if retired[first] != 1 {
		mu.unlock()
		t.Fatalf("pinned version retired %d times, want 1", retired[first])
	}
	for s, c := range retired {
		if c != 1 {
			mu.unlock()
			t.Fatalf("stamp %d retired %d times", s, c)
		}
	}
	mu.unlock()
	e.Close()
}

type chanMutex chan struct{}

func (m chanMutex) lock()   { m <- struct{}{} }
func (m chanMutex) unlock() { <-m }

// TestStatsDurable sanity-checks the durability counters surface.
func TestStatsDurable(t *testing.T) {
	dir := t.TempDir()
	e, err := RecoverGraphEngine(testParams(), Options{}, testDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	if acked := submitSerial(t, e, 7); acked != 7 {
		t.Fatalf("acked %d/7", acked)
	}
	s := e.Stats()
	if !s.Durable || s.WAL.Appends < 7 || s.WAL.Syncs < 7 {
		t.Fatalf("stats = %+v", s)
	}
	e.Close()
	if e.Stats().Checkpoints == 0 {
		t.Fatal("no checkpoint recorded after close")
	}
	if _, err := graphio.ReadSnapshot(mustOpenNewestCkpt(t, dir)); err != nil {
		t.Fatalf("final checkpoint unreadable: %v", err)
	}
}

func mustOpenNewestCkpt(t *testing.T, dir string) *os.File {
	t.Helper()
	cks, err := listCheckpoints(dir)
	if err != nil || len(cks) == 0 {
		t.Fatalf("no checkpoints (err=%v)", err)
	}
	f, err := os.Open(cks[len(cks)-1].path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

var _ ligra.Graph = blockGraph{}
