package stream

import (
	"sync"
	"sync/atomic"

	"repro/internal/ligra"
)

// flatCache caches one flat view (§5.1 flat snapshot) per published
// version, keyed by stamp. A version's view is built at most once —
// whichever reader (or the ingest loop, with Options.PrebuildFlat) gets
// there first builds it under the entry's sync.Once, every other
// transaction pinning that version shares the result — and the entry is
// dropped by the engine's retire hook exactly when the version's last
// reader finishes, so the dense arrays live no longer than the snapshot
// they index (ROADMAP (k)).
type flatCache[G any] struct {
	// flatten materializes the flat view of a snapshot; nil disables the
	// cache (Tx.Flat then falls back to the tree view).
	flatten func(G) ligra.Graph

	mu sync.Mutex
	m  map[uint64]*flatEntry

	builds atomic.Uint64 // views materialized (≤ one per version)
	hits   atomic.Uint64 // Flat calls served from the cache
}

// flatEntry is the build-at-most-once slot of one version.
type flatEntry struct {
	once sync.Once
	view ligra.Graph
}

// viewOf returns the flat view of the version (stamp, g), building it on
// first use. Callers must hold a pin on the version (a Tx, or the ingest
// loop right after publishing it), which is what keeps viewOf ordered
// before the retire-hook drop. Returns nil when no flatten is registered.
func (c *flatCache[G]) viewOf(stamp uint64, g G) ligra.Graph {
	if c.flatten == nil {
		return nil
	}
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[uint64]*flatEntry)
	}
	e := c.m[stamp]
	if e == nil {
		e = &flatEntry{}
		c.m[stamp] = e
	}
	c.mu.Unlock()
	built := false
	e.once.Do(func() {
		e.view = c.flatten(g)
		c.builds.Add(1)
		built = true
	})
	if !built {
		c.hits.Add(1)
	}
	return e.view
}

// drop forgets the version's cached view. Called from the retire hook; the
// version has no readers left, so nobody can be inside viewOf for it.
func (c *flatCache[G]) drop(stamp uint64) {
	c.mu.Lock()
	delete(c.m, stamp)
	c.mu.Unlock()
}

// size returns the number of cached views (for stats and tests).
func (c *flatCache[G]) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
