package stream

import (
	"sync"
	"sync/atomic"

	"repro/internal/ligra"
)

// flatCache caches one flat view (§5.1 flat snapshot) per published
// version, keyed by stamp. A version's view is built at most once —
// whichever reader (or the ingest loop, with Options.PrebuildFlat) gets
// there first builds it under the entry's sync.Once, every other
// transaction pinning that version shares the result — and the entry is
// dropped by the engine's retire hook exactly when the version's last
// reader finishes, so the dense arrays live no longer than the snapshot
// they index (ROADMAP (k)).
//
// With a patcher registered (Options.PatchFlat), the cache additionally
// keeps an anchor — the newest view it ever materialized — and derives each
// new version's view from it in O(batch) copy-on-write work instead of an
// O(n) rebuild. The anchor deliberately survives the version's retirement
// (drop only evicts map entries): under PrebuildFlat versions retire the
// moment they are superseded, which would otherwise break the patch chain
// on every commit. The cost is one extra view kept alive past its version —
// the same "one version longer at worst" trade the shard stitch slot makes
// — and it is replaced, not accumulated, on the next materialization.
type flatCache[G any] struct {
	// flatten materializes the flat view of a snapshot; nil disables the
	// cache (Tx.Flat then falls back to the tree view).
	flatten func(G) ligra.Graph
	// patch derives a snapshot's flat view from a previously materialized
	// one (O(diff) instead of O(n)); nil means every view is a full build.
	patch func(prev ligra.Graph, g G) ligra.Graph

	mu sync.Mutex
	m  map[uint64]*flatEntry
	// Patch-chain anchor: the newest view materialized so far and its
	// stamp. Only consulted when patch != nil.
	lastStamp uint64
	lastView  ligra.Graph

	builds  atomic.Uint64 // views built from scratch (≤ one per version)
	patches atomic.Uint64 // views derived from a predecessor view
	hits    atomic.Uint64 // Flat calls served from the cache
}

// flatEntry is the build-at-most-once slot of one version.
type flatEntry struct {
	once sync.Once
	view ligra.Graph
}

// viewOf returns the flat view of the version (stamp, g), building it on
// first use — or patching it out of the most recent older view when a
// patcher is registered. Callers must hold a pin on the version (a Tx, or
// the ingest loop right after publishing it), which is what keeps viewOf
// ordered before the retire-hook drop. Returns nil when no flatten is
// registered.
func (c *flatCache[G]) viewOf(stamp uint64, g G) ligra.Graph {
	if c.flatten == nil {
		return nil
	}
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[uint64]*flatEntry)
	}
	e := c.m[stamp]
	if e == nil {
		e = &flatEntry{}
		c.m[stamp] = e
	}
	c.mu.Unlock()
	built := false
	e.once.Do(func() {
		var prev ligra.Graph
		if c.patch != nil {
			c.mu.Lock()
			// Patch only forward: deriving an older version from a newer
			// view would be correct (the diff is two-sided) but would walk
			// the same batches twice on out-of-order lazy builds.
			if c.lastView != nil && c.lastStamp < stamp {
				prev = c.lastView
			}
			c.mu.Unlock()
		}
		if prev != nil {
			e.view = c.patch(prev, g)
			c.patches.Add(1)
		} else {
			e.view = c.flatten(g)
			c.builds.Add(1)
		}
		c.mu.Lock()
		if stamp > c.lastStamp {
			c.lastStamp, c.lastView = stamp, e.view
		}
		c.mu.Unlock()
		built = true
	})
	if !built {
		c.hits.Add(1)
	}
	return e.view
}

// drop forgets the version's cached view. Called from the retire hook; the
// version has no readers left, so nobody can be inside viewOf for it. The
// patch-chain anchor is intentionally left alone — see the type comment.
func (c *flatCache[G]) drop(stamp uint64) {
	c.mu.Lock()
	delete(c.m, stamp)
	c.mu.Unlock()
}

// size returns the number of cached views (for stats and tests).
func (c *flatCache[G]) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
