package stream

import (
	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/ligra"
)

// AttachIncrementalCC bootstraps an algos.IncrementalCC from the engine's
// current version and keeps it maintained on the commit path: every
// published version's runs are folded in, in application order, via the
// OnCommit hook — union-find for insert runs, confined recompute against
// the committed snapshot for delete runs. Component queries against the
// returned structure are O(1) array reads with zero kernel work, and after
// a Flush the structure reflects everything submitted before it.
//
// ends extracts an update's endpoints. Must be called before the first
// Submit (it claims the engine's OnCommit hook); the graph-flavored
// AttachGraphIncrementalCC / AttachWeightedIncrementalCC wrap it for the
// aspen edge types. Note the structure tracks undirected connectivity:
// engines fed asymmetric (one-direction) batches maintain the components of
// the symmetrized graph.
func AttachIncrementalCC[G ligra.Graph, E any](e *Engine[G, E], ends func(E) (uint32, uint32)) *algos.IncrementalCC {
	tx := e.Begin()
	cc := algos.NewIncrementalCC(tx.Graph())
	tx.Close()
	e.OnCommit(func(_, cur G, _ uint64, runs []CommitRun[E]) {
		for _, r := range runs {
			edges := r.Edges
			visit := func(f func(u, v uint32)) {
				for _, ed := range edges {
					u, v := ends(ed)
					f(u, v)
				}
			}
			if r.Del {
				// cur is the final committed snapshot, not the intermediate
				// graph after this run — still correct: re-union consumes
				// only edges present in cur, and any same-commit insert runs
				// are folded in order around this one, so connectivity
				// converges to cur's by the last run.
				cc.ApplyDeleteBatch(cur, visit)
			} else {
				cc.ApplyInsertBatch(cur.Order(), visit)
			}
		}
	})
	return cc
}

// AttachGraphIncrementalCC attaches incremental connectivity maintenance to
// an unweighted engine.
func AttachGraphIncrementalCC(e *Engine[aspen.Graph, aspen.Edge]) *algos.IncrementalCC {
	return AttachIncrementalCC(e, func(ed aspen.Edge) (uint32, uint32) { return ed.Src, ed.Dst })
}

// AttachWeightedIncrementalCC attaches incremental connectivity maintenance
// to a weighted engine (weight changes on existing edges do not affect
// connectivity; re-unions of present edges are no-ops).
func AttachWeightedIncrementalCC(e *Engine[aspen.WeightedGraph, aspen.WeightedEdge]) *algos.IncrementalCC {
	return AttachIncrementalCC(e, func(ed aspen.WeightedEdge) (uint32, uint32) { return ed.Src, ed.Dst })
}
