//go:build !aspendebug

package stream

// flatDebug gates the Tx.Flat stale-view assertion. Off in release builds:
// the check compiles away entirely, keeping the cache-hit path at its
// 0-alloc, ~55ns cost.
const flatDebug = false
