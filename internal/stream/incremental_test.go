package stream

import (
	"testing"

	"repro/internal/algos"
	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/ligra"
	"repro/internal/rmat"
)

// sameView requires two ligra.Graph views to agree on every observable the
// kernels consume: header, per-vertex degree, and neighbor enumeration.
func sameView(t *testing.T, a, b ligra.Graph, ctx string) {
	t.Helper()
	if a.Order() != b.Order() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("%s: header mismatch: (%d, %d) vs (%d, %d)",
			ctx, a.Order(), a.NumEdges(), b.Order(), b.NumEdges())
	}
	for u := uint32(0); int(u) < a.Order(); u++ {
		if a.Degree(u) != b.Degree(u) {
			t.Fatalf("%s: degree mismatch at %d: %d vs %d", ctx, u, a.Degree(u), b.Degree(u))
		}
		var xs, ys []uint32
		a.ForEachNeighbor(u, func(v uint32) bool { xs = append(xs, v); return true })
		b.ForEachNeighbor(u, func(v uint32) bool { ys = append(ys, v); return true })
		if len(xs) != len(ys) {
			t.Fatalf("%s: neighbor count mismatch at %d", ctx, u)
		}
		for i := range xs {
			if xs[i] != ys[i] {
				t.Fatalf("%s: neighbor mismatch at %d: %d vs %d", ctx, u, xs[i], ys[i])
			}
		}
	}
}

// TestPatchFlatEngineDifferential drives an Options.PatchFlat engine down a
// delete-heavy schedule, flushing after every batch, and checks the patched
// flat view against the pinned tree snapshot each version — plus the
// counter contract: exactly one full build (the first materialization),
// everything after it an O(batch) patch.
func TestPatchFlatEngineDifferential(t *testing.T) {
	gen := rmat.NewGenerator(10, 31)
	mk := func(lo, hi uint64) []aspen.Edge { return aspen.MakeUndirected(gen.Edges(lo, hi)) }
	e := NewGraphEngine(aspen.NewGraph(ctree.DefaultParams()).InsertEdges(mk(0, 3_000)),
		Options{PatchFlat: true, PrebuildFlat: true})
	defer e.Close()

	next := UpdateScheduleMix(3_000, 250, 2, mk)
	for i := uint64(0); i < 16; i++ {
		del, edges := next(i)
		var err error
		if del {
			_, err = e.Delete(edges)
		} else {
			_, err = e.Insert(edges)
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		tx := e.Begin()
		fg := tx.Flat()
		if _, ok := fg.(ligra.FlatGraph); !ok {
			t.Fatal("patched Flat view should still satisfy ligra.FlatGraph")
		}
		sameView(t, fg, tx.Graph(), "patched view vs tree snapshot")
		tx.Close()
	}

	st := e.Stats()
	if st.FlatBuilds != 1 {
		t.Fatalf("flat builds = %d, want exactly 1 (only the first materialization)", st.FlatBuilds)
	}
	if st.FlatPatches != st.Commits-1 {
		t.Fatalf("flat patches = %d, want commits-1 = %d", st.FlatPatches, st.Commits-1)
	}
	if st.FlatHits == 0 {
		t.Fatal("prebuilt patched views were never served from cache")
	}
}

// TestPatchFlatWeightedEngine checks the weighted engine's patcher wiring:
// weight re-inserts and deletes flow through PatchFlatWeightedSnapshot and
// the view keeps answering weighted queries correctly.
func TestPatchFlatWeightedEngine(t *testing.T) {
	gen := rmat.NewGenerator(9, 33)
	mkw := func(lo, hi uint64, scale float32) []aspen.WeightedEdge {
		var batch []aspen.WeightedEdge
		for i, ed := range gen.Edges(lo, hi) {
			w := scale + float32(i%5)
			batch = append(batch,
				aspen.WeightedEdge{Src: ed.Src, Dst: ed.Dst, Weight: w},
				aspen.WeightedEdge{Src: ed.Dst, Dst: ed.Src, Weight: w})
		}
		return batch
	}
	e := NewWeightedEngine(aspen.NewWeightedGraph().InsertEdges(mkw(0, 1_500, 1)),
		Options{PatchFlat: true, PrebuildFlat: true})
	defer e.Close()

	steps := []struct {
		del    bool
		lo, hi uint64
		scale  float32
	}{
		{false, 1_500, 1_800, 1}, // fresh edges
		{false, 0, 300, 7},       // re-weight an existing range
		{true, 500, 800, 1},      // delete a replayed range
	}
	for _, s := range steps {
		var err error
		if s.del {
			_, err = e.Delete(mkw(s.lo, s.hi, s.scale))
		} else {
			_, err = e.Insert(mkw(s.lo, s.hi, s.scale))
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		tx := e.Begin()
		fw, ok := tx.Flat().(ligra.FlatWeightedGraph)
		if !ok {
			t.Fatal("weighted patched view should satisfy ligra.FlatWeightedGraph")
		}
		sameView(t, fw, tx.Graph(), "weighted patched view")
		got := algos.SSSP(fw, 0)
		want := algos.SSSP(tx.Graph(), 0)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("SSSP[%d] = %v (patched flat) vs %v (tree)", v, got[v], want[v])
			}
		}
		tx.Close()
	}
	if st := e.Stats(); st.FlatBuilds != 1 || st.FlatPatches != st.Commits-1 {
		t.Fatalf("builds=%d patches=%d commits=%d, want 1 build and commits-1 patches",
			st.FlatBuilds, st.FlatPatches, st.Commits)
	}
}

// TestPatchFlatDurableEngine pins Options.PatchFlat on the durable
// constructor path: a recovered engine must wire the patcher exactly like
// the in-memory one (a regression here is silent — views stay correct,
// every commit just pays the O(n) rebuild again).
func TestPatchFlatDurableEngine(t *testing.T) {
	gen := rmat.NewGenerator(9, 37)
	mk := func(lo, hi uint64) []aspen.Edge { return aspen.MakeUndirected(gen.Edges(lo, hi)) }
	e, err := RecoverGraphEngine(ctree.DefaultParams(),
		Options{PatchFlat: true, PrebuildFlat: true},
		Durability{Dir: t.TempDir(), Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	for i := uint64(0); i < 4; i++ {
		if _, err := e.Insert(mk(i*200, (i+1)*200)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		tx := e.Begin()
		sameView(t, tx.Flat(), tx.Graph(), "durable patched view")
		tx.Close()
	}
	st := e.Stats()
	if st.FlatBuilds != 1 || st.FlatPatches != st.Commits-1 {
		t.Fatalf("durable engine: builds=%d patches=%d commits=%d, want 1 build and commits-1 patches",
			st.FlatBuilds, st.FlatPatches, st.Commits)
	}
}

// TestIncrementalCCDifferential is the standing-connectivity oracle test:
// after every committed batch of a delete-heavy symmetric schedule, the
// incrementally maintained labeling must equal a from-scratch
// ConnectedComponents run on the same snapshot — and the query path must
// move no maintenance counters (no kernel runs to answer).
func TestIncrementalCCDifferential(t *testing.T) {
	gen := rmat.NewGenerator(9, 41)
	mk := func(lo, hi uint64) []aspen.Edge { return aspen.MakeUndirected(gen.Edges(lo, hi)) }
	e := NewGraphEngine(aspen.NewGraph(ctree.DefaultParams()).InsertEdges(mk(0, 1_200)), Options{})
	defer e.Close()
	cc := AttachGraphIncrementalCC(e)

	next := UpdateScheduleMix(1_200, 150, 2, mk)
	for i := uint64(0); i < 24; i++ {
		del, edges := next(i)
		var err error
		if del {
			_, err = e.Delete(edges)
		} else {
			_, err = e.Insert(edges)
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		tx := e.Begin()
		want := algos.ConnectedComponents(tx.Graph())
		n := tx.Graph().Order()
		tx.Close()
		before := cc.Stats()
		got := cc.Labels(n)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("batch %d (del=%v): label[%d] = %d, want %d", i, del, v, got[v], want[v])
			}
			if cc.Component(uint32(v)) != want[v] {
				t.Fatalf("batch %d: Component(%d) disagrees with Labels", i, v)
			}
		}
		if after := cc.Stats(); after != before {
			t.Fatalf("queries moved maintenance counters: %+v -> %+v", before, after)
		}
	}
	st := cc.Stats()
	if st.Unions == 0 || st.Recomputes == 0 || st.Reverified == 0 {
		t.Fatalf("schedule did not exercise both directions: %+v", st)
	}
}

// TestIncrementalCCCoalescedRuns covers the multi-run commit path: several
// batches (insert and delete interleaved) submitted without intermediate
// flushes may coalesce into one commit with multiple runs, which the
// OnCommit fold must apply in order against the final snapshot.
func TestIncrementalCCCoalescedRuns(t *testing.T) {
	gen := rmat.NewGenerator(9, 43)
	mk := func(lo, hi uint64) []aspen.Edge { return aspen.MakeUndirected(gen.Edges(lo, hi)) }
	e := NewGraphEngine(aspen.NewGraph(ctree.DefaultParams()).InsertEdges(mk(0, 1_000)), Options{QueueCap: 64})
	defer e.Close()
	cc := AttachGraphIncrementalCC(e)

	next := UpdateScheduleMix(1_000, 120, 2, mk)
	for round := 0; round < 4; round++ {
		for i := uint64(0); i < 6; i++ {
			del, edges := next(uint64(round)*6 + i)
			var err error
			if del {
				_, err = e.Delete(edges)
			} else {
				_, err = e.Insert(edges)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		tx := e.Begin()
		want := algos.ConnectedComponents(tx.Graph())
		n := tx.Graph().Order()
		tx.Close()
		got := cc.Labels(n)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("round %d: label[%d] = %d, want %d", round, v, got[v], want[v])
			}
		}
	}
}

// TestIncrementalCCWeighted smoke-tests the weighted attach: weight
// re-inserts must not disturb connectivity.
func TestIncrementalCCWeighted(t *testing.T) {
	var batch []aspen.WeightedEdge
	add := func(u, v uint32, w float32) {
		batch = append(batch, aspen.WeightedEdge{Src: u, Dst: v, Weight: w},
			aspen.WeightedEdge{Src: v, Dst: u, Weight: w})
	}
	add(1, 2, 1)
	add(2, 3, 1)
	add(10, 11, 1)
	e := NewWeightedEngine(aspen.NewWeightedGraph().InsertEdges(batch), Options{})
	defer e.Close()
	cc := AttachWeightedIncrementalCC(e)
	if cc.Component(3) != 1 || cc.Component(11) != 10 {
		t.Fatal("bootstrap labeling wrong")
	}
	// Re-weight 1-2 (no connectivity change), then bridge the components.
	reweight := []aspen.WeightedEdge{{Src: 1, Dst: 2, Weight: 9}, {Src: 2, Dst: 1, Weight: 9}}
	if _, err := e.Insert(reweight); err != nil {
		t.Fatal(err)
	}
	bridge := []aspen.WeightedEdge{{Src: 3, Dst: 10, Weight: 1}, {Src: 10, Dst: 3, Weight: 1}}
	if _, err := e.Insert(bridge); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if cc.Component(11) != 1 {
		t.Fatalf("Component(11) = %d after bridge, want 1", cc.Component(11))
	}
	// Cut the bridge again: the split must be recomputed.
	if _, err := e.Delete(bridge); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if cc.Component(11) != 10 {
		t.Fatalf("Component(11) = %d after cut, want 10", cc.Component(11))
	}
	if st := cc.Stats(); st.Recomputes == 0 {
		t.Fatal("bridge cut did not trigger a confined recompute")
	}
}
