//go:build aspendebug

package stream

// flatDebug gates the Tx.Flat stale-view assertion. Built with
// -tags aspendebug, every Flat call verifies the cached view was built
// from exactly the snapshot the transaction pins (via the view's
// MustCurrent), so a cache bug that hands a view across versions panics
// in the race job instead of silently answering for the wrong version.
const flatDebug = true
