package stream

import "repro/internal/obs"

// The lock-free HDR-style histogram started life here on the engine's
// commit path and was promoted to internal/obs (PR 10) so every layer —
// engine, shards, remote client/server — records into the same type and
// the registry can export any of them. The aliases keep the stream API
// (stream.Hist, stream.LatencySummary and the BENCH_*_stream.json shape)
// exactly as it was.

// Hist is a lock-free log-linear latency histogram; see obs.Hist.
type Hist = obs.Hist

// LatencySummary is a fixed quantile digest of a Hist; see
// obs.LatencySummary.
type LatencySummary = obs.LatencySummary
