package stream

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/aspen"
	"repro/internal/obs"
)

func mkEdges(lo, hi uint64) []aspen.Edge {
	out := make([]aspen.Edge, 0, (hi-lo)*2)
	for i := lo; i < hi; i++ {
		out = append(out, aspen.Edge{Src: uint32(i), Dst: uint32(i + 1)},
			aspen.Edge{Src: uint32(i + 1), Dst: uint32(i)})
	}
	return out
}

// TestEngineMetricsUnderLoad registers a live engine, commits through
// it, and checks the exposition reflects the work: engine counters
// advance, the commit summary counts, and the stage histograms saw the
// pipeline (apply always runs; flat_patch runs under PrebuildFlat).
func TestEngineMetricsUnderLoad(t *testing.T) {
	e := NewGraphEngine(aspen.NewGraph(testParams()),
		Options{PrebuildFlat: true, PatchFlat: true, TraceSlow: time.Nanosecond})
	defer e.Close()
	reg := obs.NewRegistry()
	e.RegisterMetrics(reg)

	for i := 0; i < 20; i++ {
		p, err := e.Insert(mkEdges(uint64(i*10), uint64(i*10+10)))
		if err != nil {
			t.Fatal(err)
		}
		p.Wait()
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"aspen_engine_commits_total",
		"aspen_engine_edges_total 400",
		"aspen_flat_patches_total",
		`aspen_commit_stage_seconds_count{stage="apply"}`,
		`aspen_commit_stage_seconds_count{stage="flat_patch"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(text, "aspen_wal_appends_total") {
		t.Error("non-durable engine exposed WAL series")
	}
	if got := e.Tracer().StageHist(obs.StageApply).Count(); got < 20 {
		t.Errorf("apply stage count = %d, want >= 20", got)
	}
	// TraceSlow of 1ns means every commit lands in the slow ring.
	if _, seen := e.Tracer().Slow(); seen < 20 {
		t.Errorf("slow ring saw %d commits, want >= 20", seen)
	}
	// Stats() and the registry read the same counters — no drift.
	if st := e.Stats(); st.Edges != 400 {
		t.Errorf("Stats().Edges = %d, want 400", st.Edges)
	}
}

// TestDurableEngineMetrics checks the WAL/checkpoint families appear on
// a durable engine and that fsync/wal_append stages record.
func TestDurableEngineMetrics(t *testing.T) {
	// Default policy is SyncEveryCommit, so the fsync stage records too.
	e, err := RecoverGraphEngine(testParams(), Options{}, Durability{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	reg := obs.NewRegistry()
	e.RegisterMetrics(reg)

	p, err := e.Insert(mkEdges(0, 50))
	if err != nil {
		t.Fatal(err)
	}
	p.Wait()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"aspen_wal_appends_total", "aspen_wal_syncs_total",
		"aspen_checkpoints_total", "aspen_durability_failed 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("durable exposition missing %q", want)
		}
	}
	if got := e.Tracer().StageHist(obs.StageWALAppend).Count(); got == 0 {
		t.Error("wal_append stage never recorded on a durable engine")
	}
	if got := e.Tracer().StageHist(obs.StageFsync).Count(); got == 0 {
		t.Error("fsync stage never recorded with SyncEveryCommit")
	}
}

// TestScrapeDuringIngest races WritePrometheus and Tracer digests
// against a saturated writer — the -race proof that scraping never
// synchronizes with (or corrupts) the commit path.
func TestScrapeDuringIngest(t *testing.T) {
	e := NewGraphEngine(aspen.NewGraph(testParams()),
		Options{QueueCap: 64, PrebuildFlat: true, PatchFlat: true, TraceSlow: time.Nanosecond})
	reg := obs.NewRegistry()
	e.RegisterMetrics(reg)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // saturated writer
		defer wg.Done()
		var lo uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			p, err := e.Insert(mkEdges(lo, lo+5))
			if err != nil {
				return
			}
			p.Wait()
			lo += 5
		}
	}()
	for i := 0; i < 4; i++ { // concurrent scrapers
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				var sb strings.Builder
				if err := reg.WritePrometheus(&sb); err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				e.Tracer().Summaries()
				e.Tracer().SlowViews()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	e.Close()
}
