package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/graphio"
	"repro/internal/ligra"
	"repro/internal/wal"
)

// This file is the durable commit path: every coalesced commit appends its
// runs to a segmented WAL (internal/wal) before the snapshot is published
// and the batches acknowledged, a background checkpointer periodically
// persists a full snapshot (internal/graphio) and truncates the log behind
// it, and Recover reopens a directory by loading the newest valid
// checkpoint and replaying the log tail. Purely-functional snapshots make
// the whole design cheap: batch application is deterministic, so replaying
// the surviving record stream over a checkpoint reproduces a committed
// state exactly, and the checkpointer works from a pinned immutable version
// with zero coordination against the writer.

// SyncPolicy selects when the WAL is fsynced.
type SyncPolicy int

const (
	// SyncEveryCommit fsyncs before each commit is acknowledged: an acked
	// batch survives power loss. Highest latency cost.
	SyncEveryCommit SyncPolicy = iota
	// SyncInterval fsyncs from a background ticker: an acked batch survives
	// process death immediately and power loss after at most Interval.
	SyncInterval
	// SyncOff never fsyncs outside rotation, checkpoint and Close: an acked
	// batch survives process death only once its buffered frame reaches the
	// file (rotation or interval-free flush on Close/checkpoint).
	SyncOff
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncEveryCommit:
		return "per-commit"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy maps the flag spellings to a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "per-commit", "commit":
		return SyncEveryCommit, nil
	case "interval":
		return SyncInterval, nil
	case "off", "none":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("stream: unknown fsync policy %q", s)
}

// Durability configures the durable commit path. The zero Dir disables it.
type Durability struct {
	// Dir is the data directory holding WAL segments and checkpoints.
	Dir string
	// Policy selects the fsync policy. Default SyncEveryCommit.
	Policy SyncPolicy
	// Interval is the background fsync period under SyncInterval.
	// Default 20ms.
	Interval time.Duration
	// CheckpointEvery requests a checkpoint after this many commits
	// (skipped while one is already in flight). Default 256.
	CheckpointEvery int
	// KeepCheckpoints retains this many newest checkpoint files (older
	// ones are pruned after each new checkpoint lands). Default 2.
	KeepCheckpoints int
	// SegmentBytes is the WAL segment rotation size (wal.Options).
	SegmentBytes int64
	// Fail is the crash-injection hook, consulted at every WAL kill point
	// plus "checkpoint" (before a checkpoint file is written). Nil in
	// production.
	Fail wal.Failpoint
	// OnReplayNote, when set, observes the idempotency note of every
	// noted WAL record replayed during Recover, in log order — how the
	// distributed layer's per-client dedup window survives a restart.
	// Records covered by the checkpoint are not replayed; notes older
	// than the checkpoint horizon are gone, which is why the dedup
	// window must be sized under the checkpoint cadence (see DESIGN.md).
	OnReplayNote func(client, seq uint64)
}

func (d Durability) withDefaults() Durability {
	if d.Interval <= 0 {
		d.Interval = 20 * time.Millisecond
	}
	if d.CheckpointEvery <= 0 {
		d.CheckpointEvery = 256
	}
	if d.KeepCheckpoints <= 0 {
		d.KeepCheckpoints = 2
	}
	return d
}

// Codec fixes the WAL wire format of one edge-update type: Width bytes per
// update, little-endian.
type Codec[E any] struct {
	Width  int
	Encode func(dst []byte, e E)
	Decode func(src []byte) E
}

// EdgeCodec encodes aspen.Edge as src u32, dst u32.
var EdgeCodec = Codec[aspen.Edge]{
	Width: 8,
	Encode: func(dst []byte, e aspen.Edge) {
		binary.LittleEndian.PutUint32(dst, e.Src)
		binary.LittleEndian.PutUint32(dst[4:], e.Dst)
	},
	Decode: func(src []byte) aspen.Edge {
		return aspen.Edge{
			Src: binary.LittleEndian.Uint32(src),
			Dst: binary.LittleEndian.Uint32(src[4:]),
		}
	},
}

// WeightedEdgeCodec encodes aspen.WeightedEdge as src u32, dst u32,
// float32 weight.
var WeightedEdgeCodec = Codec[aspen.WeightedEdge]{
	Width: 12,
	Encode: func(dst []byte, e aspen.WeightedEdge) {
		binary.LittleEndian.PutUint32(dst, e.Src)
		binary.LittleEndian.PutUint32(dst[4:], e.Dst)
		binary.LittleEndian.PutUint32(dst[8:], math.Float32bits(e.Weight))
	},
	Decode: func(src []byte) aspen.WeightedEdge {
		return aspen.WeightedEdge{
			Src:    binary.LittleEndian.Uint32(src),
			Dst:    binary.LittleEndian.Uint32(src[4:]),
			Weight: math.Float32frombits(binary.LittleEndian.Uint32(src[8:])),
		}
	},
}

// SnapshotCodec fixes the checkpoint file format of a snapshot type.
type SnapshotCodec[G any] struct {
	Write func(w io.Writer, g G) error
	Read  func(r io.Reader) (G, error)
}

// GraphSnapshotCodec checkpoints aspen.Graph through graphio.Snapshot;
// p supplies the C-tree parameters for the rebuild.
func GraphSnapshotCodec(p ctree.Params) SnapshotCodec[aspen.Graph] {
	return SnapshotCodec[aspen.Graph]{
		Write: func(w io.Writer, g aspen.Graph) error {
			return graphio.WriteSnapshot(w, g.Snapshot())
		},
		Read: func(r io.Reader) (aspen.Graph, error) {
			s, err := graphio.ReadSnapshot(r)
			if err != nil {
				return aspen.Graph{}, err
			}
			return aspen.GraphFromSnapshot(p, s)
		},
	}
}

// WeightedSnapshotCodec checkpoints aspen.WeightedGraph.
func WeightedSnapshotCodec(p ctree.Params) SnapshotCodec[aspen.WeightedGraph] {
	return SnapshotCodec[aspen.WeightedGraph]{
		Write: func(w io.Writer, g aspen.WeightedGraph) error {
			return graphio.WriteSnapshot(w, g.Snapshot())
		},
		Read: func(r io.Reader) (aspen.WeightedGraph, error) {
			s, err := graphio.ReadSnapshot(r)
			if err != nil {
				return aspen.WeightedGraph{}, err
			}
			return aspen.WeightedGraphFromSnapshot(p, s)
		},
	}
}

// ckptReq hands one pinned snapshot to the checkpointer goroutine. seq is
// the last WAL sequence number the snapshot includes.
type ckptReq[G any] struct {
	g     G
	stamp uint64
	seq   uint64
}

// durable is the engine's durability state. The scratch buffer and
// sinceCkpt counter are owned by the ingest goroutine; everything else is
// safe for the checkpointer and sync ticker.
type durable[G ligra.Graph, E any] struct {
	opts  Durability
	log   *wal.Log
	codec Codec[E]
	snap  SnapshotCodec[G]

	scratch   []byte
	sinceCkpt int
	onAppend  func(seq uint64, kind wal.Kind, width uint8, count uint32, data []byte)

	ckptCh    chan ckptReq[G]
	stopSync  chan struct{}
	closeOnce sync.Once

	failed      atomic.Bool
	errv        atomic.Value
	checkpoints atomic.Uint64
	ckptSeq     atomic.Uint64
}

// fail records the first durability error and abandons the log the way a
// crash would (buffered bytes lost, written bytes kept). The engine goes
// fail-stop: every subsequent batch is nacked, nothing further is applied.
func (d *durable[G, E]) fail(err error) {
	if d.failed.CompareAndSwap(false, true) {
		d.errv.Store(err)
		d.log.Abort()
	}
}

// logCommit journals one coalesced commit group before it is applied
// or acked. With no idempotency notes in the group, same-kind runs
// collapse to one record each (the PR-6 format). Any noted batch
// switches the group to one record per batch so every note lands in
// its own atomic record; application still uses the merged runs — the
// concatenated edge stream on disk is identical either way. The
// returned durations split the work for the stage tracer: appendDur is
// record encoding + buffered writes, syncDur the per-commit fsync
// (zero unless Policy is SyncEveryCommit) — the split that makes the
// PR 6 fsync overhead attributable per commit.
func (d *durable[G, E]) logCommit(batch []pending[E], runs []run[E]) (appendDur, syncDur time.Duration, err error) {
	start := time.Now()
	noted := false
	for _, b := range batch {
		if b.note != (Note{}) {
			noted = true
			break
		}
	}
	if !noted {
		for _, r := range runs {
			if err := d.logOne(r.del, r.edges, Note{}); err != nil {
				return time.Since(start), 0, err
			}
		}
	} else {
		for _, b := range batch {
			if len(b.edges) == 0 {
				continue
			}
			if err := d.logOne(b.del, b.edges, b.note); err != nil {
				return time.Since(start), 0, err
			}
		}
	}
	appended := time.Now()
	appendDur = appended.Sub(start)
	if d.opts.Policy == SyncEveryCommit {
		err = d.log.Sync()
		syncDur = time.Since(appended)
	}
	return appendDur, syncDur, err
}

// logOne appends one WAL record for a merged run or a noted batch.
func (d *durable[G, E]) logOne(del bool, edges []E, note Note) error {
	w := d.codec.Width
	hdr := 0
	kind := wal.Insert
	if del {
		kind = wal.Delete
	}
	if note != (Note{}) {
		hdr = wal.NoteLen
		kind = wal.NotedInsert
		if del {
			kind = wal.NotedDelete
		}
	}
	need := hdr + w*len(edges)
	if cap(d.scratch) < need {
		d.scratch = make([]byte, need+need/2)
	}
	buf := d.scratch[:need]
	if hdr != 0 {
		binary.LittleEndian.PutUint64(buf, note.Client)
		binary.LittleEndian.PutUint64(buf[8:], note.Seq)
	}
	for i, ed := range edges {
		d.codec.Encode(buf[hdr+i*w:], ed)
	}
	seq, err := d.log.Append(kind, uint8(w), uint32(len(edges)), buf)
	if err != nil {
		return err
	}
	if d.onAppend != nil {
		d.onAppend(seq, kind, uint8(w), uint32(len(edges)), buf)
	}
	return nil
}

// maybeCheckpoint counts commits and, at the configured cadence, hands the
// freshly committed snapshot to the checkpointer — non-blocking: if a
// checkpoint is already in flight the request is retried next commit.
func (e *Engine[G, E]) maybeCheckpoint(g G, stamp uint64) {
	d := e.dur
	d.sinceCkpt++
	if d.sinceCkpt < d.opts.CheckpointEvery {
		return
	}
	select {
	case d.ckptCh <- ckptReq[G]{g: g, stamp: stamp, seq: d.log.NextSeq() - 1}:
		d.sinceCkpt = 0
	default:
	}
}

// checkpointer is the background goroutine draining checkpoint requests.
func (e *Engine[G, E]) checkpointer() {
	defer e.durWG.Done()
	d := e.dur
	for req := range d.ckptCh {
		if d.failed.Load() {
			continue
		}
		if err := d.writeCheckpoint(req); err != nil {
			d.fail(err)
		}
	}
}

// syncLoop is the background fsync ticker of the SyncInterval policy.
func (e *Engine[G, E]) syncLoop() {
	defer e.durWG.Done()
	d := e.dur
	t := time.NewTicker(d.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-d.stopSync:
			return
		case <-t.C:
			if d.failed.Load() {
				continue
			}
			if err := d.log.Sync(); err != nil {
				d.fail(err)
			}
		}
	}
}

// writeCheckpoint persists one snapshot atomically (temp + fsync + rename +
// dirsync via graphio.WriteFile), prunes old checkpoints, then truncates
// WAL segments the new checkpoint covers.
func (d *durable[G, E]) writeCheckpoint(req ckptReq[G]) error {
	if d.opts.Fail != nil {
		if err := d.opts.Fail("checkpoint"); err != nil {
			return err
		}
	}
	path := filepath.Join(d.opts.Dir, ckptName(req.seq, req.stamp))
	if err := graphio.WriteFile(path, func(w io.Writer) error {
		return d.snap.Write(w, req.g)
	}); err != nil {
		return err
	}
	d.ckptSeq.Store(req.seq)
	d.checkpoints.Add(1)
	if err := d.pruneCheckpoints(); err != nil {
		return err
	}
	// Truncate only behind the OLDEST retained checkpoint: recovery must be
	// able to fall back to it (a corrupt newest checkpoint) and still reach
	// the present by replay, so every record above its seq stays on disk.
	cks, err := listCheckpoints(d.opts.Dir)
	if err != nil {
		return err
	}
	if len(cks) == 0 {
		return nil
	}
	return d.log.TruncateBefore(cks[0].seq)
}

// pruneCheckpoints removes all but the newest KeepCheckpoints files.
func (d *durable[G, E]) pruneCheckpoints() error {
	cks, err := listCheckpoints(d.opts.Dir)
	if err != nil {
		return err
	}
	for i := 0; i+d.opts.KeepCheckpoints < len(cks); i++ {
		if err := os.Remove(cks[i].path); err != nil {
			return err
		}
	}
	return nil
}

// closeDurable finishes the durable path on engine Close: stop the
// background goroutines, write a final checkpoint of the current version,
// and close the log cleanly. After an injected crash the log was already
// abandoned, so teardown only reaps the goroutines.
func (e *Engine[G, E]) closeDurable() {
	d := e.dur
	d.closeOnce.Do(func() {
		close(d.stopSync)
		close(d.ckptCh)
		e.durWG.Wait()
		if d.failed.Load() {
			return
		}
		if err := d.log.Sync(); err != nil {
			d.fail(err)
			return
		}
		v := e.reg.Acquire()
		req := ckptReq[G]{g: v.Graph, stamp: v.Stamp, seq: d.log.NextSeq() - 1}
		err := d.writeCheckpoint(req)
		e.reg.Release(v)
		if err != nil {
			d.fail(err)
			return
		}
		if err := d.log.Close(); err != nil {
			d.fail(err)
		}
	})
}

// Err returns the durability error that moved the engine to fail-stop, or
// nil. Once non-nil, every subsequent batch is nacked (Pending.Wait
// returns stamp 0) and no further version is published.
func (e *Engine[G, E]) Err() error {
	if e.dur == nil {
		return nil
	}
	if v := e.dur.errv.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// SyncWAL forces an fsync of the WAL, making every acknowledged batch
// durable against power loss regardless of policy (the shard layer's
// DurableBarrier). No-op without durability.
func (e *Engine[G, E]) SyncWAL() error {
	if e.dur == nil {
		return nil
	}
	if e.dur.failed.Load() {
		return e.Err()
	}
	if err := e.dur.log.Sync(); err != nil {
		e.dur.fail(err)
		return err
	}
	return nil
}

// OnWALAppend registers fn to observe every WAL record as it is
// appended on the commit path, before the commit is acknowledged —
// the feed a replication tail ships to read replicas. fn runs on the
// ingest goroutine and data aliases the engine's scratch buffer:
// observers must copy what they keep and return quickly. Like
// OnCommit, it must be registered before the engine serves traffic.
// No-op without durability.
func (e *Engine[G, E]) OnWALAppend(fn func(seq uint64, kind wal.Kind, width uint8, count uint32, data []byte)) {
	if e.dur != nil {
		e.dur.onAppend = fn
	}
}

// WALSeq returns the sequence number of the last WAL record appended
// (0 with an empty log or without durability). Because it is read
// outside the ingest goroutine it may overestimate the state any
// pinned version reflects — safe for replica read watermarks, where
// an overestimate only forces a primary fallback, never a stale read.
func (e *Engine[G, E]) WALSeq() uint64 {
	if e.dur == nil {
		return 0
	}
	return e.dur.log.NextSeq() - 1
}

// WALStats returns the log's counters (zero without durability).
func (e *Engine[G, E]) WALStats() wal.Stats {
	if e.dur == nil {
		return wal.Stats{}
	}
	return e.dur.log.Stats()
}

// checkpoint file naming: ckpt-<seq hex16>-<stamp hex16>.aspc

const (
	ckptPrefix = "ckpt-"
	ckptSuffix = ".aspc"
)

func ckptName(seq, stamp uint64) string {
	return fmt.Sprintf("%s%016x-%016x%s", ckptPrefix, seq, stamp, ckptSuffix)
}

type ckptFile struct {
	path       string
	seq, stamp uint64
}

func parseCkptName(name string) (seq, stamp uint64, ok bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, 0, false
	}
	body := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
	parts := strings.Split(body, "-")
	if len(parts) != 2 || len(parts[0]) != 16 || len(parts[1]) != 16 {
		return 0, 0, false
	}
	seq, err1 := strconv.ParseUint(parts[0], 16, 64)
	stamp, err2 := strconv.ParseUint(parts[1], 16, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return seq, stamp, true
}

// listCheckpoints returns dir's checkpoint files sorted oldest-first.
func listCheckpoints(dir string) ([]ckptFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var cks []ckptFile
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if seq, stamp, ok := parseCkptName(e.Name()); ok {
			cks = append(cks, ckptFile{path: filepath.Join(dir, e.Name()), seq: seq, stamp: stamp})
		}
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i].seq < cks[j].seq })
	return cks, nil
}

// Load rebuilds the newest recoverable state from dir without opening the
// log for appending: the newest readable checkpoint (a corrupt one falls
// back to the next older; none falls back to g0) plus a replay of the
// surviving WAL tail. Returns the recovered snapshot and the last WAL
// sequence number it includes. Tolerates the torn final record a crash
// leaves; reports mid-log damage as wal.ErrCorrupt.
func Load[G ligra.Graph, E any](dir string, g0 G, insert, remove func(G, []E) G, codec Codec[E], sc SnapshotCodec[G]) (G, uint64, error) {
	return loadWithNotes(dir, g0, insert, remove, codec, sc, nil)
}

// loadWithNotes is Load plus an observer for the idempotency notes of
// replayed Noted* records (Durability.OnReplayNote).
func loadWithNotes[G ligra.Graph, E any](dir string, g0 G, insert, remove func(G, []E) G, codec Codec[E], sc SnapshotCodec[G], onNote func(client, seq uint64)) (G, uint64, error) {
	g, after := g0, uint64(0)
	cks, err := listCheckpoints(dir)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return g0, 0, err
	}
	for i := len(cks) - 1; i >= 0; i-- {
		f, err := os.Open(cks[i].path)
		if err != nil {
			return g0, 0, err
		}
		loaded, rerr := sc.Read(f)
		f.Close()
		if rerr == nil {
			g, after = loaded, cks[i].seq
			break
		}
		if !errors.Is(rerr, graphio.ErrCorrupt) {
			return g0, 0, rerr
		}
		// A checkpoint torn mid-write (crash before the atomic rename
		// completed would leave no file at all, but a damaged disk can):
		// fall back to the previous one; the WAL still covers the gap.
	}
	last, err := wal.Replay(dir, after, func(rec wal.Record) error {
		if int(rec.Width) != codec.Width {
			return fmt.Errorf("%w: record width %d, engine expects %d", wal.ErrCorrupt, rec.Width, codec.Width)
		}
		data := rec.Data
		if rec.Kind.HasNote() {
			if onNote != nil {
				onNote(binary.LittleEndian.Uint64(data), binary.LittleEndian.Uint64(data[8:]))
			}
			data = data[wal.NoteLen:]
		}
		edges := make([]E, rec.Count)
		for i := range edges {
			edges[i] = codec.Decode(data[i*codec.Width:])
		}
		if rec.Kind.IsDelete() {
			g = remove(g, edges)
		} else {
			g = insert(g, edges)
		}
		return nil
	})
	if err != nil {
		return g0, 0, err
	}
	return g, last, nil
}

// LoadCheckpoint reads the newest valid checkpoint in dir (falling
// back past corrupt files like Load) without touching the WAL. It
// returns the snapshot and the exact WAL sequence number it covers —
// the pair a tail subscriber needs to bootstrap when its resume point
// predates the oldest retained WAL record. ok is false when the
// directory holds no readable checkpoint (resume from seq 0 instead).
func LoadCheckpoint[G any](dir string, sc SnapshotCodec[G]) (g G, seq uint64, ok bool, err error) {
	cks, err := listCheckpoints(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return g, 0, false, nil
		}
		return g, 0, false, err
	}
	for i := len(cks) - 1; i >= 0; i-- {
		f, oerr := os.Open(cks[i].path)
		if oerr != nil {
			return g, 0, false, oerr
		}
		loaded, rerr := sc.Read(f)
		f.Close()
		if rerr == nil {
			return loaded, cks[i].seq, true, nil
		}
		if !errors.Is(rerr, graphio.ErrCorrupt) {
			return g, 0, false, rerr
		}
	}
	return g, 0, false, nil
}

// Recover opens (or creates) a durable engine on d.Dir: load the newest
// valid checkpoint, replay the WAL tail over it, open the log for
// appending at the next sequence number, and start serving. A fresh
// directory comes up as g0 with an empty log, so Recover is also the
// constructor for new durable engines.
func Recover[G ligra.Graph, E any](g0 G, insert, remove func(G, []E) G, opts Options, d Durability, codec Codec[E], sc SnapshotCodec[G]) (*Engine[G, E], error) {
	if d.Dir == "" {
		return nil, errors.New("stream: Durability.Dir is required")
	}
	d = d.withDefaults()
	g, last, err := loadWithNotes(d.Dir, g0, insert, remove, codec, sc, d.OnReplayNote)
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(d.Dir, last+1, wal.Options{SegmentBytes: d.SegmentBytes, Fail: d.Fail})
	if err != nil {
		return nil, err
	}
	e := newEngine(g, insert, remove, opts)
	e.dur = &durable[G, E]{
		opts:     d,
		log:      log,
		codec:    codec,
		snap:     sc,
		ckptCh:   make(chan ckptReq[G], 1),
		stopSync: make(chan struct{}),
	}
	e.start()
	return e, nil
}

// RecoverGraphEngine recovers (or creates) a durable unweighted engine.
func RecoverGraphEngine(p ctree.Params, opts Options, d Durability) (*Engine[aspen.Graph, aspen.Edge], error) {
	e, err := Recover(aspen.NewGraph(p),
		func(g aspen.Graph, b []aspen.Edge) aspen.Graph { return g.InsertEdges(b) },
		func(g aspen.Graph, b []aspen.Edge) aspen.Graph { return g.DeleteEdges(b) },
		opts, d, EdgeCodec, GraphSnapshotCodec(p))
	if err != nil {
		return nil, err
	}
	wireGraphFlat(e, opts)
	return e, nil
}

// RecoverWeightedEngine recovers (or creates) a durable weighted engine.
func RecoverWeightedEngine(p ctree.Params, opts Options, d Durability) (*Engine[aspen.WeightedGraph, aspen.WeightedEdge], error) {
	e, err := Recover(aspen.NewWeightedGraphWith(p),
		func(g aspen.WeightedGraph, b []aspen.WeightedEdge) aspen.WeightedGraph { return g.InsertEdges(b) },
		func(g aspen.WeightedGraph, b []aspen.WeightedEdge) aspen.WeightedGraph { return g.DeleteEdges(b) },
		opts, d, WeightedEdgeCodec, WeightedSnapshotCodec(p))
	if err != nil {
		return nil, err
	}
	wireWeightedFlat(e, opts)
	return e, nil
}

// LoadGraph recovers just the unweighted snapshot from dir (read-only; the
// -recover-only verification path).
func LoadGraph(p ctree.Params, dir string) (aspen.Graph, uint64, error) {
	return Load(dir, aspen.NewGraph(p),
		func(g aspen.Graph, b []aspen.Edge) aspen.Graph { return g.InsertEdges(b) },
		func(g aspen.Graph, b []aspen.Edge) aspen.Graph { return g.DeleteEdges(b) },
		EdgeCodec, GraphSnapshotCodec(p))
}

// LoadWeightedGraph is LoadGraph for weighted directories.
func LoadWeightedGraph(p ctree.Params, dir string) (aspen.WeightedGraph, uint64, error) {
	return Load(dir, aspen.NewWeightedGraphWith(p),
		func(g aspen.WeightedGraph, b []aspen.WeightedEdge) aspen.WeightedGraph { return g.InsertEdges(b) },
		func(g aspen.WeightedGraph, b []aspen.WeightedEdge) aspen.WeightedGraph { return g.DeleteEdges(b) },
		WeightedEdgeCodec, WeightedSnapshotCodec(p))
}
