package graphio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// ErrCorrupt reports a damaged or truncated graph file: bad magic, a
// failed checksum, inconsistent offsets, or an unexpected end of data.
// Callers distinguish it from I/O errors with errors.Is — a corrupt
// checkpoint is skipped in favor of an older one, while a permission
// error should stop recovery cold.
var ErrCorrupt = errors.New("graphio: corrupt file")

// corruptf wraps ErrCorrupt with context.
func corruptf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrCorrupt)...)
}

// Snapshot is the on-disk form of one graph version: a sparse CSR whose
// vertex ids are stored explicitly (isolated vertices and id gaps survive
// a round trip exactly), with an optional fixed-width per-edge payload —
// the same payload-generality as the in-memory chunks, so the weighted
// graph serializes through the identical shape with Width = 4.
type Snapshot struct {
	// Width is the payload bytes per edge (0 for unweighted graphs).
	Width int
	// Verts lists the vertex ids present, strictly increasing.
	Verts []uint32
	// Offs has len(Verts)+1 entries; vertex Verts[i]'s neighbors are
	// Edges[Offs[i]:Offs[i+1]]. Offs[0] is 0.
	Offs []uint64
	// Edges holds the concatenated neighbor ids.
	Edges []uint32
	// Payload holds Width bytes per edge, aligned with Edges.
	Payload []byte
}

// NumEdges returns the number of directed edges in the snapshot.
func (s *Snapshot) NumEdges() uint64 { return uint64(len(s.Edges)) }

// Snapshot file layout (all little-endian):
//
//	header (36 bytes): magic u32, version u32, width u32, reserved u32,
//	                   nverts u64, medges u64, crc32c(header[0:32]) u32
//	body:  verts (4·n), offs (8·(n+1)), edges (4·m), payload (width·m)
//	trailer (4 bytes): crc32c(body)
//
// The header checksum catches a torn or overwritten header before any
// allocation is sized from it; the body checksum catches torn tails and
// bit rot. Both failures surface as ErrCorrupt.
const (
	snapMagic   = 0x43505341 // "ASPC"
	snapVersion = 1
	snapHeader  = 36
	// maxSnapDim caps the vertex/edge counts read from a header before
	// allocating, so a corrupt header cannot OOM the process.
	maxSnapDim = 1 << 40
)

// crcWriter tees writes into a running CRC32C.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	return n, err
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// writeUint32s writes vals little-endian through a reused scratch buffer.
func writeUint32s(w io.Writer, scratch []byte, vals []uint32) error {
	for len(vals) > 0 {
		n := len(scratch) / 4
		if n > len(vals) {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(scratch[4*i:], vals[i])
		}
		if _, err := w.Write(scratch[:4*n]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

func writeUint64s(w io.Writer, scratch []byte, vals []uint64) error {
	for len(vals) > 0 {
		n := len(scratch) / 8
		if n > len(vals) {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(scratch[8*i:], vals[i])
		}
		if _, err := w.Write(scratch[:8*n]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// WriteSnapshot writes s in the checksummed binary snapshot format.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	n, m := len(s.Verts), len(s.Edges)
	if len(s.Offs) != n+1 {
		return fmt.Errorf("graphio: snapshot has %d offsets for %d vertices", len(s.Offs), n)
	}
	if len(s.Payload) != s.Width*m {
		return fmt.Errorf("graphio: snapshot payload is %d bytes, want %d", len(s.Payload), s.Width*m)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [snapHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], snapMagic)
	binary.LittleEndian.PutUint32(hdr[4:], snapVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(s.Width))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(n))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(m))
	binary.LittleEndian.PutUint32(hdr[32:], crc32.Checksum(hdr[:32], castagnoli))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	cw := &crcWriter{w: bw}
	scratch := make([]byte, 1<<16)
	if err := writeUint32s(cw, scratch, s.Verts); err != nil {
		return err
	}
	if err := writeUint64s(cw, scratch, s.Offs); err != nil {
		return err
	}
	if err := writeUint32s(cw, scratch, s.Edges); err != nil {
		return err
	}
	if _, err := cw.Write(s.Payload); err != nil {
		return err
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], cw.crc)
	if _, err := bw.Write(trailer[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// crcReader tees reads into a running CRC32C.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	return n, err
}

func readUint32s(r io.Reader, scratch []byte, out []uint32) error {
	for len(out) > 0 {
		n := len(scratch) / 4
		if n > len(out) {
			n = len(out)
		}
		if _, err := io.ReadFull(r, scratch[:4*n]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			out[i] = binary.LittleEndian.Uint32(scratch[4*i:])
		}
		out = out[n:]
	}
	return nil
}

func readUint64s(r io.Reader, scratch []byte, out []uint64) error {
	for len(out) > 0 {
		n := len(scratch) / 8
		if n > len(out) {
			n = len(out)
		}
		if _, err := io.ReadFull(r, scratch[:8*n]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			out[i] = binary.LittleEndian.Uint64(scratch[8*i:])
		}
		out = out[n:]
	}
	return nil
}

// ReadSnapshot parses the checksummed binary snapshot format, returning
// ErrCorrupt (wrapped) on any framing, checksum or consistency failure.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [snapHeader]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, corruptf("graphio: short snapshot header")
	}
	if crc32.Checksum(hdr[:32], castagnoli) != binary.LittleEndian.Uint32(hdr[32:]) {
		return nil, corruptf("graphio: snapshot header checksum mismatch")
	}
	if magic := binary.LittleEndian.Uint32(hdr[0:]); magic != snapMagic {
		return nil, corruptf("graphio: bad snapshot magic %#x", magic)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != snapVersion {
		return nil, corruptf("graphio: unsupported snapshot version %d", v)
	}
	width := int(binary.LittleEndian.Uint32(hdr[8:]))
	n := binary.LittleEndian.Uint64(hdr[16:])
	m := binary.LittleEndian.Uint64(hdr[24:])
	if width > 64 || n > maxSnapDim || m > maxSnapDim {
		return nil, corruptf("graphio: implausible snapshot dimensions (width=%d n=%d m=%d)", width, n, m)
	}
	s := &Snapshot{
		Width: width,
		Verts: make([]uint32, n),
		Offs:  make([]uint64, n+1),
		Edges: make([]uint32, m),
	}
	cr := &crcReader{r: br}
	scratch := make([]byte, 1<<16)
	if err := readUint32s(cr, scratch, s.Verts); err != nil {
		return nil, corruptf("graphio: truncated snapshot vertices")
	}
	if err := readUint64s(cr, scratch, s.Offs); err != nil {
		return nil, corruptf("graphio: truncated snapshot offsets")
	}
	if err := readUint32s(cr, scratch, s.Edges); err != nil {
		return nil, corruptf("graphio: truncated snapshot edges")
	}
	if width > 0 {
		s.Payload = make([]byte, uint64(width)*m)
		if _, err := io.ReadFull(cr, s.Payload); err != nil {
			return nil, corruptf("graphio: truncated snapshot payload")
		}
	}
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return nil, corruptf("graphio: missing snapshot trailer")
	}
	if cr.crc != binary.LittleEndian.Uint32(trailer[:]) {
		return nil, corruptf("graphio: snapshot body checksum mismatch")
	}
	// Structural consistency: offsets must be a monotone prefix ending at
	// m, vertex ids strictly increasing.
	if s.Offs[0] != 0 || s.Offs[n] != m {
		return nil, corruptf("graphio: snapshot offsets do not span the edge array")
	}
	for i := uint64(0); i < n; i++ {
		if s.Offs[i] > s.Offs[i+1] {
			return nil, corruptf("graphio: snapshot offsets decrease at vertex %d", i)
		}
		if i > 0 && s.Verts[i-1] >= s.Verts[i] {
			return nil, corruptf("graphio: snapshot vertex ids not strictly increasing at %d", i)
		}
	}
	return s, nil
}

// WriteFile writes a file atomically and durably: the content goes to a
// temp file in the target's directory, is flushed and fsynced, the file
// closed, renamed over the target, and the directory fsynced — with every
// error on the way checked and propagated (a checkpoint that lies about
// being on disk is worse than no checkpoint).
func WriteFile(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
