package graphio_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graphio"
	"repro/internal/rmat"
)

func adjEqual(a, b [][]uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for u := range a {
		if len(a[u]) != len(b[u]) {
			return false
		}
		for i := range a[u] {
			if a[u][i] != b[u][i] {
				return false
			}
		}
	}
	return true
}

func TestTextRoundTrip(t *testing.T) {
	adj := rmat.NewGenerator(8, 4).Adjacency(1000)
	var buf bytes.Buffer
	if err := graphio.WriteAdjacency(&buf, adj); err != nil {
		t.Fatal(err)
	}
	got, err := graphio.ReadAdjacency(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !adjEqual(adj, got) {
		t.Fatal("round trip mismatch")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	adj := rmat.NewGenerator(9, 6).Adjacency(3000)
	var buf bytes.Buffer
	if err := graphio.WriteBinary(&buf, adj); err != nil {
		t.Fatal(err)
	}
	got, err := graphio.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !adjEqual(adj, got) {
		t.Fatal("round trip mismatch")
	}
}

func TestEmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := graphio.WriteAdjacency(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := graphio.ReadAdjacency(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("expected empty graph")
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := graphio.ReadAdjacency(strings.NewReader("WeightedAdjacencyGraph\n1\n0\n0\n")); err == nil {
		t.Fatal("expected header error")
	}
	if _, err := graphio.ReadBinary(strings.NewReader("garbage-bytes")); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestTruncatedInput(t *testing.T) {
	if _, err := graphio.ReadAdjacency(strings.NewReader("AdjacencyGraph\n5\n10\n0\n")); err == nil {
		t.Fatal("expected truncation error")
	}
}
