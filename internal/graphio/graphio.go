// Package graphio reads and writes graphs in the Ligra adjacency-graph text
// format ("AdjacencyGraph" header, n, m, n offsets, m edges), the format the
// paper's artifacts use, plus a compact binary format for larger graphs.
package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
)

// WriteAdjacency writes adj in the Ligra text format.
func WriteAdjacency(w io.Writer, adj [][]uint32) error {
	bw := bufio.NewWriter(w)
	var m uint64
	for _, nbrs := range adj {
		m += uint64(len(nbrs))
	}
	if _, err := fmt.Fprintf(bw, "AdjacencyGraph\n%d\n%d\n", len(adj), m); err != nil {
		return err
	}
	var off uint64
	for _, nbrs := range adj {
		if _, err := fmt.Fprintln(bw, off); err != nil {
			return err
		}
		off += uint64(len(nbrs))
	}
	for _, nbrs := range adj {
		for _, v := range nbrs {
			if _, err := fmt.Fprintln(bw, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadAdjacency parses the Ligra text format.
func ReadAdjacency(r io.Reader) ([][]uint32, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	next := func() (string, error) {
		for sc.Scan() {
			tok := sc.Text()
			if tok != "" {
				return tok, nil
			}
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", corruptf("graphio: truncated adjacency file")
	}
	sc.Split(bufio.ScanWords)
	head, err := next()
	if err != nil {
		return nil, err
	}
	if head != "AdjacencyGraph" {
		return nil, corruptf("graphio: bad header %q", head)
	}
	readInt := func() (uint64, error) {
		tok, err := next()
		if err != nil {
			return 0, err
		}
		return strconv.ParseUint(tok, 10, 64)
	}
	n, err := readInt()
	if err != nil {
		return nil, err
	}
	m, err := readInt()
	if err != nil {
		return nil, err
	}
	offs := make([]uint64, n+1)
	for i := uint64(0); i < n; i++ {
		if offs[i], err = readInt(); err != nil {
			return nil, err
		}
	}
	offs[n] = m
	edges := make([]uint32, m)
	for i := uint64(0); i < m; i++ {
		v, err := readInt()
		if err != nil {
			return nil, err
		}
		edges[i] = uint32(v)
	}
	adj := make([][]uint32, n)
	for u := uint64(0); u < n; u++ {
		if offs[u] > offs[u+1] || offs[u+1] > m {
			return nil, corruptf("graphio: bad offsets at vertex %d", u)
		}
		adj[u] = edges[offs[u]:offs[u+1]]
	}
	return adj, nil
}

// binaryMagic identifies the binary format.
const binaryMagic = 0x41535047 // "ASPG"

// WriteBinary writes adj in the compact binary format (little-endian:
// magic, n, m, offsets, edges).
func WriteBinary(w io.Writer, adj [][]uint32) error {
	bw := bufio.NewWriter(w)
	var m uint64
	for _, nbrs := range adj {
		m += uint64(len(nbrs))
	}
	hdr := []uint64{binaryMagic, uint64(len(adj)), m}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	var off uint64
	for _, nbrs := range adj {
		if err := binary.Write(bw, binary.LittleEndian, off); err != nil {
			return err
		}
		off += uint64(len(nbrs))
	}
	for _, nbrs := range adj {
		for _, v := range nbrs {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format. Truncation and framing damage are
// reported as ErrCorrupt; genuine I/O errors pass through unchanged.
func ReadBinary(r io.Reader) ([][]uint32, error) {
	br := bufio.NewReader(r)
	var magic, n, m uint64
	for _, p := range []*uint64{&magic, &n, &m} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, truncOr(err)
		}
	}
	if magic != binaryMagic {
		return nil, corruptf("graphio: bad magic %#x", magic)
	}
	if n > maxSnapDim || m > maxSnapDim {
		return nil, corruptf("graphio: implausible dimensions (n=%d m=%d)", n, m)
	}
	offs := make([]uint64, n+1)
	for i := uint64(0); i < n; i++ {
		if err := binary.Read(br, binary.LittleEndian, &offs[i]); err != nil {
			return nil, truncOr(err)
		}
	}
	offs[n] = m
	edges := make([]uint32, m)
	if err := binary.Read(br, binary.LittleEndian, edges); err != nil {
		return nil, truncOr(err)
	}
	adj := make([][]uint32, n)
	for u := uint64(0); u < n; u++ {
		if offs[u] > offs[u+1] || offs[u+1] > m {
			return nil, corruptf("graphio: bad offsets at vertex %d", u)
		}
		adj[u] = edges[offs[u]:offs[u+1]]
	}
	return adj, nil
}

// truncOr maps end-of-data errors to ErrCorrupt (a truncated file), and
// returns any other error unchanged.
func truncOr(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return corruptf("graphio: truncated binary file")
	}
	return err
}
