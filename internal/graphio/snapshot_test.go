package graphio_test

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/graphio"
)

func sampleSnapshot(width int) *graphio.Snapshot {
	s := &graphio.Snapshot{
		Width: width,
		Verts: []uint32{0, 3, 4, 900, 1 << 20},
		Offs:  []uint64{0, 2, 2, 5, 6, 6},
		Edges: []uint32{3, 900, 0, 4, 900, 0},
	}
	if width > 0 {
		s.Payload = make([]byte, width*len(s.Edges))
		for i := range s.Payload {
			s.Payload[i] = byte(i * 13)
		}
	}
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, width := range []int{0, 4} {
		s := sampleSnapshot(width)
		var buf bytes.Buffer
		if err := graphio.WriteSnapshot(&buf, s); err != nil {
			t.Fatal(err)
		}
		got, err := graphio.ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s, got) {
			t.Fatalf("width %d: round trip mismatch\n got %+v\nwant %+v", width, got, s)
		}
	}
}

func TestSnapshotEmptyRoundTrip(t *testing.T) {
	s := &graphio.Snapshot{Offs: []uint64{0}}
	var buf bytes.Buffer
	if err := graphio.WriteSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := graphio.ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Verts) != 0 || len(got.Edges) != 0 || len(got.Offs) != 1 {
		t.Fatalf("empty round trip: %+v", got)
	}
}

// TestSnapshotCorruption flips or drops bytes everywhere and checks every
// damage mode surfaces as graphio.ErrCorrupt — never a panic, hang, or silently
// wrong graph.
func TestSnapshotCorruption(t *testing.T) {
	s := sampleSnapshot(4)
	var buf bytes.Buffer
	if err := graphio.WriteSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	t.Run("truncation", func(t *testing.T) {
		for cut := 0; cut < len(raw); cut += 7 {
			if _, err := graphio.ReadSnapshot(bytes.NewReader(raw[:cut])); !errors.Is(err, graphio.ErrCorrupt) {
				t.Fatalf("cut at %d: err=%v, want graphio.ErrCorrupt", cut, err)
			}
		}
	})
	t.Run("bitflips", func(t *testing.T) {
		for pos := 0; pos < len(raw); pos += 11 {
			mut := append([]byte(nil), raw...)
			mut[pos] ^= 0x40
			got, err := graphio.ReadSnapshot(bytes.NewReader(mut))
			if err == nil {
				// A surviving read must still be the original data (the
				// flip landed on a byte the format doesn't use — there are
				// none, so this is a failure).
				if !reflect.DeepEqual(got, s) {
					t.Fatalf("flip at %d: accepted corrupted data", pos)
				}
				t.Fatalf("flip at %d: accepted", pos)
			}
			if !errors.Is(err, graphio.ErrCorrupt) {
				t.Fatalf("flip at %d: err=%v, want graphio.ErrCorrupt", pos, err)
			}
		}
	})
}

func TestBinaryCorruptTyped(t *testing.T) {
	adj := [][]uint32{{1, 2}, {0}, {}}
	var buf bytes.Buffer
	if err := graphio.WriteBinary(&buf, adj); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := graphio.ReadBinary(bytes.NewReader(raw[:5])); !errors.Is(err, graphio.ErrCorrupt) {
		t.Fatalf("truncated: err=%v, want graphio.ErrCorrupt", err)
	}
	mut := append([]byte(nil), raw...)
	mut[0] ^= 0xFF
	if _, err := graphio.ReadBinary(bytes.NewReader(mut)); !errors.Is(err, graphio.ErrCorrupt) {
		t.Fatalf("bad magic: err=%v, want graphio.ErrCorrupt", err)
	}
	if _, err := graphio.ReadAdjacency(bytes.NewReader([]byte("NotAGraph\n1\n"))); !errors.Is(err, graphio.ErrCorrupt) {
		t.Fatalf("bad text header: err=%v, want graphio.ErrCorrupt", err)
	}
	if _, err := graphio.ReadAdjacency(bytes.NewReader([]byte("AdjacencyGraph\n5\n"))); !errors.Is(err, graphio.ErrCorrupt) {
		t.Fatalf("truncated text: err=%v, want graphio.ErrCorrupt", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.aspc")
	s := sampleSnapshot(0)
	if err := graphio.WriteFile(path, func(w io.Writer) error {
		return graphio.WriteSnapshot(w, s)
	}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := graphio.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Verts, s.Verts) {
		t.Fatalf("file round trip mismatch")
	}
	// A failed write leaves no target and no temp litter.
	bad := filepath.Join(dir, "bad.aspc")
	if err := graphio.WriteFile(bad, func(io.Writer) error {
		return errors.New("boom")
	}); err == nil {
		t.Fatal("expected error")
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if e.Name() != "snap.aspc" {
			t.Fatalf("unexpected leftover %q", e.Name())
		}
	}
}
