package parallel

import (
	"math/rand"
	"slices"
	"testing"
)

// radixCases covers the distributions the LSD sort must handle: uniform
// 64-bit keys, keys confined to a narrow byte range (pass skipping),
// constant keys, presorted and reverse-sorted runs, and sizes straddling
// the sequential/parallel thresholds.
func TestRadixSortUint64(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	sizes := []int{0, 1, 2, radixMinLen - 1, radixMinLen, 10_000, radixParLen, radixParLen + 12345}
	gens := map[string]func(n int) []uint64{
		"uniform": func(n int) []uint64 {
			a := make([]uint64, n)
			for i := range a {
				a[i] = r.Uint64()
			}
			return a
		},
		"narrow": func(n int) []uint64 { // only low 2 bytes vary
			a := make([]uint64, n)
			for i := range a {
				a[i] = uint64(r.Intn(1 << 16))
			}
			return a
		},
		"packed-edges": func(n int) []uint64 { // (src<<32|dst), small ids
			a := make([]uint64, n)
			for i := range a {
				a[i] = uint64(r.Intn(1<<20))<<32 | uint64(r.Intn(1<<20))
			}
			return a
		},
		"constant": func(n int) []uint64 {
			a := make([]uint64, n)
			for i := range a {
				a[i] = 0xdeadbeef
			}
			return a
		},
		"sorted": func(n int) []uint64 {
			a := make([]uint64, n)
			for i := range a {
				a[i] = uint64(i)
			}
			return a
		},
		"reversed": func(n int) []uint64 {
			a := make([]uint64, n)
			for i := range a {
				a[i] = uint64(n - i)
			}
			return a
		},
	}
	for name, gen := range gens {
		for _, n := range sizes {
			a := gen(n)
			want := slices.Clone(a)
			slices.Sort(want)
			RadixSortUint64(a)
			if !slices.Equal(a, want) {
				t.Fatalf("%s/n=%d: radix sort disagrees with slices.Sort", name, n)
			}
		}
	}
}

func TestRadixSortUint32(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 100, radixMinLen, 50_000, radixParLen + 999} {
		a := make([]uint32, n)
		for i := range a {
			a[i] = r.Uint32()
		}
		want := slices.Clone(a)
		slices.Sort(want)
		RadixSortUint32(a)
		if !slices.Equal(a, want) {
			t.Fatalf("n=%d: radix sort disagrees with slices.Sort", n)
		}
	}
}

// TestRadixSortHighProcs pins the trailing-block partitioning: with many
// workers, ceil-divided block bounds can start past the end of the input
// (e.g. Procs=64, n=40000 → nb=256, sz=157, block 255 starts at 40035) and
// must be skipped rather than sliced.
func TestRadixSortHighProcs(t *testing.T) {
	old := Procs
	defer func() { Procs = old }()
	r := rand.New(rand.NewSource(13))
	for _, procs := range []int{64, 200, 384} {
		Procs = procs
		for _, n := range []int{radixParLen + 1, 40_000, 32_769} {
			a := make([]uint64, n)
			for i := range a {
				a[i] = r.Uint64()
			}
			want := slices.Clone(a)
			slices.Sort(want)
			RadixSortUint64(a)
			if !slices.Equal(a, want) {
				t.Fatalf("procs=%d n=%d: mismatch", procs, n)
			}
		}
	}
}

// TestRadixSortSingleProc pins the Procs==1 sequential path.
func TestRadixSortSingleProc(t *testing.T) {
	old := Procs
	Procs = 1
	defer func() { Procs = old }()
	r := rand.New(rand.NewSource(11))
	a := make([]uint64, 100_000)
	for i := range a {
		a[i] = r.Uint64()
	}
	want := slices.Clone(a)
	slices.Sort(want)
	RadixSortUint64(a)
	if !slices.Equal(a, want) {
		t.Fatal("sequential radix sort disagrees with slices.Sort")
	}
}

func BenchmarkRadixSortUint64(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	src := make([]uint64, 1_000_000)
	for i := range src {
		src[i] = uint64(r.Intn(1<<20))<<32 | uint64(r.Intn(1<<20))
	}
	a := make([]uint64, len(src))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(a, src)
		RadixSortUint64(a)
	}
	b.ReportMetric(float64(len(src))*float64(b.N)/b.Elapsed().Seconds(), "keys/sec")
}
