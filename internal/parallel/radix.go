package parallel

import "slices"

// This file implements a parallel LSD (least-significant-digit) radix sort
// for fixed-width integer keys. It is the sort under every batch update:
// edge batches are packed as (src<<32 | dst) uint64 keys and sorted before
// grouping (paper §5, "Batch Updates"). Radix sort replaces the previous
// comparison-based parallel merge sort: it is O(n · passes) with sequential
// memory traffic, and passes over byte positions in which no key differs are
// skipped outright, so batches drawn from a small vertex-id space (e.g.
// 2^20 vertices → only 5 of 8 bytes populated) pay only for the bytes that
// carry information.

const (
	radixBits    = 8
	radixBuckets = 1 << radixBits
	// radixMinLen is the input size below which the stdlib comparison sort
	// wins (cache-resident, no histogram overhead).
	radixMinLen = 512
	// radixParLen is the input size above which histogram and scatter
	// phases fan out across Procs workers.
	radixParLen = 1 << 15
)

type radixKey interface{ ~uint32 | ~uint64 }

// RadixSortUint64 sorts a in ascending order with a parallel LSD radix
// sort. O(n) work per populated byte position; stable within passes (and
// therefore correct across them).
func RadixSortUint64(a []uint64) { radixSort(a, 8) }

// RadixSortUint32 sorts a in ascending order with a parallel LSD radix sort.
func RadixSortUint32(a []uint32) { radixSort(a, 4) }

// radixSort sorts a, whose keys are width bytes wide at most.
func radixSort[T radixKey](a []T, width int) {
	n := len(a)
	if n < radixMinLen {
		slices.Sort(a)
		return
	}
	// orDiff has a bit set wherever any key differs from a[0]; byte
	// positions that are zero in orDiff are constant across the input and
	// their passes are skipped.
	orDiff := orDiffOf(a)
	if orDiff == 0 {
		return // all keys equal
	}
	buf := make([]T, n)
	src, dst := a, buf
	for pass := 0; pass < width; pass++ {
		shift := uint(pass * radixBits)
		if (orDiff>>shift)&(radixBuckets-1) == 0 {
			continue
		}
		radixPass(src, dst, shift)
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

// orDiffOf returns the OR over all keys of (key XOR a[0]), computed with a
// parallel reduction for large inputs.
func orDiffOf[T radixKey](a []T) T {
	ref := a[0]
	if Procs <= 1 || len(a) < radixParLen {
		var d T
		for _, x := range a {
			d |= x ^ ref
		}
		return d
	}
	nb := Procs * 4
	if nb > len(a) {
		nb = len(a)
	}
	partial := make([]T, nb)
	sz := (len(a) + nb - 1) / nb
	ForGrain(nb, 1, func(b int) {
		lo, hi := b*sz, (b+1)*sz
		if hi > len(a) {
			hi = len(a)
		}
		if lo >= hi {
			return
		}
		var d T
		for _, x := range a[lo:hi] {
			d |= x ^ ref
		}
		partial[b] = d
	})
	var d T
	for _, x := range partial {
		d |= x
	}
	return d
}

// radixPass performs one stable counting-sort pass on the byte at shift,
// scattering src into dst. For large inputs the histogram and scatter run
// across Procs workers over contiguous blocks; per-worker offset rows make
// every scatter write target disjoint, so no synchronization is needed
// beyond the two barriers.
func radixPass[T radixKey](src, dst []T, shift uint) {
	n := len(src)
	if Procs <= 1 || n < radixParLen {
		var cnt [radixBuckets]int
		for _, x := range src {
			cnt[uint8(x>>shift)]++
		}
		s := 0
		for d := range cnt {
			c := cnt[d]
			cnt[d] = s
			s += c
		}
		for _, x := range src {
			d := uint8(x >> shift)
			dst[cnt[d]] = x
			cnt[d]++
		}
		return
	}
	p := Procs
	sz := (n + p - 1) / p
	counts := make([]int, p*radixBuckets)
	ForGrain(p, 1, func(w int) {
		lo, hi := w*sz, (w+1)*sz
		if hi > n {
			hi = n
		}
		if lo >= hi {
			return
		}
		cnt := counts[w*radixBuckets : (w+1)*radixBuckets]
		for _, x := range src[lo:hi] {
			cnt[uint8(x>>shift)]++
		}
	})
	// Exclusive scan in (digit, worker) order: worker w's run of digit d
	// lands after every smaller digit and after earlier workers' runs of d,
	// preserving stability.
	s := 0
	for d := 0; d < radixBuckets; d++ {
		for w := 0; w < p; w++ {
			i := w*radixBuckets + d
			c := counts[i]
			counts[i] = s
			s += c
		}
	}
	ForGrain(p, 1, func(w int) {
		lo, hi := w*sz, (w+1)*sz
		if hi > n {
			hi = n
		}
		if lo >= hi {
			return
		}
		off := counts[w*radixBuckets : (w+1)*radixBuckets]
		for _, x := range src[lo:hi] {
			d := uint8(x >> shift)
			dst[off[d]] = x
			off[d]++
		}
	})
}
