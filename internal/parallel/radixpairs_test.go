package parallel

import (
	"sort"
	"testing"

	"repro/internal/xhash"
)

func TestRadixSortPairsMatchesReference(t *testing.T) {
	for _, n := range []int{0, 1, 2, 10, radixMinLen - 1, radixMinLen + 1, 10_000, radixParLen + 5} {
		r := xhash.NewRNG(uint64(n) + 3)
		keys := make([]uint64, n)
		vals := make([]float32, n)
		for i := range keys {
			keys[i] = uint64(r.Uint32() % 5000) // many duplicates
			vals[i] = float32(i)                // input position as payload
		}
		type pair struct {
			k   uint64
			pos int
		}
		ref := make([]pair, n)
		for i := range ref {
			ref[i] = pair{keys[i], i}
		}
		sort.SliceStable(ref, func(a, b int) bool { return ref[a].k < ref[b].k })

		RadixSortUint64Pairs(keys, vals)
		for i := range keys {
			if keys[i] != ref[i].k {
				t.Fatalf("n=%d: keys[%d] = %d, want %d", n, i, keys[i], ref[i].k)
			}
			if vals[i] != float32(ref[i].pos) {
				t.Fatalf("n=%d: payload not permuted stably at %d: got %v want %v",
					n, i, vals[i], float32(ref[i].pos))
			}
		}
	}
}

func TestRadixSortPairsAllEqualKeys(t *testing.T) {
	keys := make([]uint64, 2000)
	vals := make([]int, 2000)
	for i := range keys {
		keys[i] = 42
		vals[i] = i
	}
	RadixSortUint64Pairs(keys, vals)
	for i := range vals {
		if vals[i] != i {
			t.Fatalf("equal-key input not left stable at %d", i)
		}
	}
}

func TestDedupSortedPairsLast(t *testing.T) {
	keys := []uint64{1, 1, 2, 3, 3, 3, 9}
	vals := []string{"a", "b", "c", "d", "e", "f", "g"}
	k, v := DedupSortedUint64PairsLast(keys, vals)
	wantK := []uint64{1, 2, 3, 9}
	wantV := []string{"b", "c", "f", "g"}
	if len(k) != len(wantK) {
		t.Fatalf("len = %d", len(k))
	}
	for i := range wantK {
		if k[i] != wantK[i] || v[i] != wantV[i] {
			t.Fatalf("at %d: (%d, %s), want (%d, %s)", i, k[i], v[i], wantK[i], wantV[i])
		}
	}
	if k2, v2 := DedupSortedUint64PairsLast([]uint64{}, []int{}); len(k2) != 0 || len(v2) != 0 {
		t.Fatal("empty input mishandled")
	}
}

// TestRadixSortPairsLWW pins the composed behavior batch updates rely on:
// stable sort + keep-last dedup == last write in input order wins.
func TestRadixSortPairsLWW(t *testing.T) {
	r := xhash.NewRNG(77)
	n := 30_000
	keys := make([]uint64, n)
	vals := make([]float32, n)
	want := map[uint64]float32{}
	for i := range keys {
		k := uint64(r.Uint32() % 2000)
		keys[i] = k
		vals[i] = float32(r.Uint32() % 100_000)
		want[k] = vals[i]
	}
	RadixSortUint64Pairs(keys, vals)
	k, v := DedupSortedUint64PairsLast(keys, vals)
	if len(k) != len(want) {
		t.Fatalf("%d distinct keys, want %d", len(k), len(want))
	}
	for i := range k {
		if v[i] != want[k[i]] {
			t.Fatalf("key %d kept %v, want %v", k[i], v[i], want[k[i]])
		}
	}
}
