// Package parallel provides the fork-join primitives used by the tree and
// graph code: parallel loops with grain control, reductions, prefix sums
// (scan), filters and a parallel sort. They mirror the work-depth primitives
// the paper assumes (appendix §10.1) on top of goroutines.
//
// All primitives fall back to sequential execution below a grain size, so the
// 1-thread configurations used in the scalability experiments run without
// scheduling overhead (set Procs to 1 or call the *Seq variants).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Procs is the degree of parallelism used by the primitives in this package.
// It defaults to GOMAXPROCS and may be lowered (e.g. to 1) by benchmarks that
// measure single-threaded running time.
var Procs = runtime.GOMAXPROCS(0)

// defaultGrain is the smallest amount of work a goroutine is handed.
const defaultGrain = 1024

// For runs f(i) for every i in [0, n) in parallel, in unspecified order.
func For(n int, f func(i int)) {
	ForGrain(n, defaultGrain, f)
}

// ForGrain is For with an explicit grain: ranges smaller than grain run
// sequentially in the calling goroutine.
func ForGrain(n, grain int, f func(i int)) {
	if n <= 0 {
		return
	}
	p := Procs
	if grain < 1 {
		grain = 1
	}
	if p <= 1 || n <= grain {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	// Dynamic chunk assignment: workers claim blocks with an atomic cursor,
	// which balances irregular per-element work (e.g. skewed vertex degrees).
	blocks := (n + grain - 1) / grain
	if p > blocks {
		p = blocks
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for {
				b := int(cursor.Add(1)) - 1
				if b >= blocks {
					return
				}
				lo := b * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					f(i)
				}
			}
		}()
	}
	wg.Wait()
}

// Range runs f(lo, hi) over a partition of [0, n) into contiguous blocks, one
// call per block. It is the bulk variant of For for callers that want to
// amortize per-element overhead themselves.
func Range(n, grain int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	p := Procs
	if p <= 1 || n <= grain {
		f(0, n)
		return
	}
	blocks := (n + grain - 1) / grain
	if p > blocks {
		p = blocks
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for {
				b := int(cursor.Add(1)) - 1
				if b >= blocks {
					return
				}
				lo := b * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				f(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Do runs the given thunks, possibly in parallel, and waits for all of them.
// It is the binary/fork-join primitive used by the tree algorithms.
func Do(fs ...func()) {
	if Procs <= 1 || len(fs) <= 1 {
		for _, f := range fs {
			f()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fs) - 1)
	for _, f := range fs[1:] {
		go func(f func()) {
			defer wg.Done()
			f()
		}(f)
	}
	fs[0]()
	wg.Wait()
}

// ReduceUint64 computes the sum under op of f(i) for i in [0, n); op must be
// associative and id its identity.
func ReduceUint64(n int, id uint64, f func(i int) uint64, op func(a, b uint64) uint64) uint64 {
	if n <= 0 {
		return id
	}
	p := Procs
	if p <= 1 || n <= defaultGrain {
		acc := id
		for i := 0; i < n; i++ {
			acc = op(acc, f(i))
		}
		return acc
	}
	nb := p * 4
	if nb > n {
		nb = n
	}
	partial := make([]uint64, nb)
	sz := (n + nb - 1) / nb
	ForGrain(nb, 1, func(b int) {
		lo, hi := b*sz, (b+1)*sz
		if hi > n {
			hi = n
		}
		acc := id
		for i := lo; i < hi; i++ {
			acc = op(acc, f(i))
		}
		partial[b] = acc
	})
	acc := id
	for _, v := range partial {
		acc = op(acc, v)
	}
	return acc
}

// ScanExclusive replaces a with its exclusive prefix sums and returns the
// total. Runs in O(n) work and O(log n) depth for large inputs.
func ScanExclusive(a []uint64) uint64 {
	n := len(a)
	if n == 0 {
		return 0
	}
	if Procs <= 1 || n <= 2*defaultGrain {
		var acc uint64
		for i := 0; i < n; i++ {
			v := a[i]
			a[i] = acc
			acc += v
		}
		return acc
	}
	nb := Procs * 4
	if nb > n {
		nb = n
	}
	sz := (n + nb - 1) / nb
	sums := make([]uint64, nb)
	ForGrain(nb, 1, func(b int) {
		lo, hi := b*sz, (b+1)*sz
		if hi > n {
			hi = n
		}
		var acc uint64
		for i := lo; i < hi; i++ {
			acc += a[i]
		}
		sums[b] = acc
	})
	var acc uint64
	for b := 0; b < nb; b++ {
		v := sums[b]
		sums[b] = acc
		acc += v
	}
	total := acc
	ForGrain(nb, 1, func(b int) {
		lo, hi := b*sz, (b+1)*sz
		if hi > n {
			hi = n
		}
		acc := sums[b]
		for i := lo; i < hi; i++ {
			v := a[i]
			a[i] = acc
			acc += v
		}
	})
	return total
}

// FilterUint32 returns the elements of a satisfying keep, preserving order.
func FilterUint32(a []uint32, keep func(x uint32) bool) []uint32 {
	n := len(a)
	if n == 0 {
		return nil
	}
	if Procs <= 1 || n <= 2*defaultGrain {
		out := make([]uint32, 0, n)
		for _, x := range a {
			if keep(x) {
				out = append(out, x)
			}
		}
		return out
	}
	flags := make([]uint64, n)
	For(n, func(i int) {
		if keep(a[i]) {
			flags[i] = 1
		}
	})
	total := ScanExclusive(flags)
	out := make([]uint32, total)
	For(n, func(i int) {
		if keep(a[i]) {
			out[flags[i]] = a[i]
		}
	})
	return out
}

// PackIndices returns the indices i in [0, n) for which keep(i) is true, in
// increasing order.
func PackIndices(n int, keep func(i int) bool) []uint32 {
	if n == 0 {
		return nil
	}
	if Procs <= 1 || n <= 2*defaultGrain {
		var out []uint32
		for i := 0; i < n; i++ {
			if keep(i) {
				out = append(out, uint32(i))
			}
		}
		return out
	}
	flags := make([]uint64, n)
	For(n, func(i int) {
		if keep(i) {
			flags[i] = 1
		}
	})
	total := ScanExclusive(flags)
	out := make([]uint32, total)
	For(n, func(i int) {
		if keep(i) {
			out[flags[i]] = uint32(i)
		}
	})
	return out
}
