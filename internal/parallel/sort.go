package parallel

import "sort"

// SortUint64 sorts a in ascending order using a parallel merge sort above a
// size threshold and the standard library sort below it. It is used to sort
// edge batches encoded as (src<<32 | dst) pairs, the first step of every
// batch update (paper §5 "Batch Updates").
func SortUint64(a []uint64) {
	if len(a) <= 4*defaultGrain || Procs <= 1 {
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		return
	}
	buf := make([]uint64, len(a))
	mergeSort(a, buf, Procs)
}

// mergeSort sorts a using buf as scratch, splitting into p leaves.
func mergeSort(a, buf []uint64, p int) {
	if p <= 1 || len(a) <= 4*defaultGrain {
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		return
	}
	mid := len(a) / 2
	Do(
		func() { mergeSort(a[:mid], buf[:mid], p/2) },
		func() { mergeSort(a[mid:], buf[mid:], p-p/2) },
	)
	copy(buf, a)
	merge(buf[:mid], buf[mid:], a)
}

// merge merges sorted x and y into out (len(out) == len(x)+len(y)).
func merge(x, y, out []uint64) {
	i, j, k := 0, 0, 0
	for i < len(x) && j < len(y) {
		if x[i] <= y[j] {
			out[k] = x[i]
			i++
		} else {
			out[k] = y[j]
			j++
		}
		k++
	}
	for i < len(x) {
		out[k] = x[i]
		i++
		k++
	}
	for j < len(y) {
		out[k] = y[j]
		j++
		k++
	}
}

// SortUint32 sorts a in ascending order.
func SortUint32(a []uint32) {
	if len(a) <= 4*defaultGrain || Procs <= 1 {
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		return
	}
	wide := make([]uint64, len(a))
	For(len(a), func(i int) { wide[i] = uint64(a[i]) })
	SortUint64(wide)
	For(len(a), func(i int) { a[i] = uint32(wide[i]) })
}

// DedupSortedUint64 removes adjacent duplicates from sorted a in place and
// returns the shortened slice.
func DedupSortedUint64(a []uint64) []uint64 {
	if len(a) == 0 {
		return a
	}
	w := 1
	for i := 1; i < len(a); i++ {
		if a[i] != a[w-1] {
			a[w] = a[i]
			w++
		}
	}
	return a[:w]
}

// DedupSortedUint32 removes adjacent duplicates from sorted a in place.
func DedupSortedUint32(a []uint32) []uint32 {
	if len(a) == 0 {
		return a
	}
	w := 1
	for i := 1; i < len(a); i++ {
		if a[i] != a[w-1] {
			a[w] = a[i]
			w++
		}
	}
	return a[:w]
}
