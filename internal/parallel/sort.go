package parallel

// SortUint64 sorts a in ascending order. It is used to sort edge batches
// encoded as (src<<32 | dst) pairs, the first step of every batch update
// (paper §5 "Batch Updates"). Implemented as a parallel LSD radix sort (see
// radix.go) with a comparison-sort fallback for small inputs.
func SortUint64(a []uint64) { RadixSortUint64(a) }

// SortUint32 sorts a in ascending order (parallel LSD radix sort).
func SortUint32(a []uint32) { RadixSortUint32(a) }

// DedupSortedUint64 removes adjacent duplicates from sorted a in place and
// returns the shortened slice.
func DedupSortedUint64(a []uint64) []uint64 {
	if len(a) == 0 {
		return a
	}
	w := 1
	for i := 1; i < len(a); i++ {
		if a[i] != a[w-1] {
			a[w] = a[i]
			w++
		}
	}
	return a[:w]
}

// DedupSortedUint32 removes adjacent duplicates from sorted a in place.
func DedupSortedUint32(a []uint32) []uint32 {
	if len(a) == 0 {
		return a
	}
	w := 1
	for i := 1; i < len(a); i++ {
		if a[i] != a[w-1] {
			a[w] = a[i]
			w++
		}
	}
	return a[:w]
}
