package parallel

import (
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/xhash"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000, 50_000} {
		hits := make([]atomic.Int32, n)
		For(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, got)
			}
		}
	}
}

func TestForGrainSmallGrain(t *testing.T) {
	const n = 10_000
	var sum atomic.Int64
	ForGrain(n, 8, func(i int) { sum.Add(int64(i)) })
	want := int64(n) * (n - 1) / 2
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestRangePartition(t *testing.T) {
	const n = 12_345
	covered := make([]atomic.Int32, n)
	Range(n, 100, func(lo, hi int) {
		if lo >= hi {
			t.Errorf("empty block [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			covered[i].Add(1)
		}
	})
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, covered[i].Load())
		}
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c atomic.Bool
	Do(func() { a.Store(true) }, func() { b.Store(true) }, func() { c.Store(true) })
	if !a.Load() || !b.Load() || !c.Load() {
		t.Fatal("Do did not run all thunks")
	}
}

func TestReduceUint64Sum(t *testing.T) {
	for _, n := range []int{0, 1, 999, 100_000} {
		got := ReduceUint64(n, 0, func(i int) uint64 { return uint64(i) },
			func(a, b uint64) uint64 { return a + b })
		want := uint64(n) * uint64(max(n-1, 0)) / 2
		if got != want {
			t.Fatalf("n=%d: sum = %d, want %d", n, got, want)
		}
	}
}

func TestReduceUint64Max(t *testing.T) {
	vals := []uint64{5, 99, 3, 42, 99, 7}
	got := ReduceUint64(len(vals), 0, func(i int) uint64 { return vals[i] },
		func(a, b uint64) uint64 { return max(a, b) })
	if got != 99 {
		t.Fatalf("max = %d, want 99", got)
	}
}

func TestScanExclusive(t *testing.T) {
	for _, n := range []int{0, 1, 5, 4096, 100_000} {
		a := make([]uint64, n)
		for i := range a {
			a[i] = uint64(i % 7)
		}
		want := make([]uint64, n)
		var acc uint64
		for i := range a {
			want[i] = acc
			acc += a[i]
		}
		total := ScanExclusive(a)
		if total != acc {
			t.Fatalf("n=%d: total = %d, want %d", n, total, acc)
		}
		for i := range a {
			if a[i] != want[i] {
				t.Fatalf("n=%d: a[%d] = %d, want %d", n, i, a[i], want[i])
			}
		}
	}
}

func TestFilterUint32(t *testing.T) {
	for _, n := range []int{0, 10, 100_000} {
		a := make([]uint32, n)
		for i := range a {
			a[i] = uint32(i)
		}
		got := FilterUint32(a, func(x uint32) bool { return x%3 == 0 })
		var want []uint32
		for _, x := range a {
			if x%3 == 0 {
				want = append(want, x)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: len = %d, want %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: got[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestPackIndices(t *testing.T) {
	got := PackIndices(10, func(i int) bool { return i%2 == 1 })
	want := []uint32{1, 3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSortUint64Property(t *testing.T) {
	r := xhash.NewRNG(3)
	if err := quick.Check(func(seed uint64, szRaw uint16) bool {
		n := int(szRaw % 2000)
		a := make([]uint64, n)
		rr := xhash.NewRNG(seed)
		for i := range a {
			a[i] = rr.Next() % 1000
		}
		ref := append([]uint64(nil), a...)
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		SortUint64(a)
		for i := range a {
			if a[i] != ref[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50, Rand: nil}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestSortUint64Large(t *testing.T) {
	const n = 200_000
	a := make([]uint64, n)
	r := xhash.NewRNG(9)
	for i := range a {
		a[i] = r.Next()
	}
	SortUint64(a)
	for i := 1; i < n; i++ {
		if a[i-1] > a[i] {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestSortUint32Large(t *testing.T) {
	const n = 150_000
	a := make([]uint32, n)
	r := xhash.NewRNG(10)
	for i := range a {
		a[i] = r.Uint32()
	}
	SortUint32(a)
	for i := 1; i < n; i++ {
		if a[i-1] > a[i] {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestDedupSorted(t *testing.T) {
	a := []uint64{1, 1, 2, 3, 3, 3, 9}
	got := DedupSortedUint64(a)
	want := []uint64{1, 2, 3, 9}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	b := []uint32{4, 4, 4}
	if got := DedupSortedUint32(b); len(got) != 1 || got[0] != 4 {
		t.Fatalf("DedupSortedUint32 = %v", got)
	}
	if got := DedupSortedUint32(nil); len(got) != 0 {
		t.Fatalf("DedupSortedUint32(nil) = %v", got)
	}
}

func TestSequentialModeMatchesParallel(t *testing.T) {
	old := Procs
	defer func() { Procs = old }()
	const n = 30_000
	a := make([]uint64, n)
	for i := range a {
		a[i] = uint64(i % 13)
	}
	b := append([]uint64(nil), a...)
	Procs = 1
	t1 := ScanExclusive(a)
	Procs = old
	t2 := ScanExclusive(b)
	if t1 != t2 {
		t.Fatalf("totals differ: %d vs %d", t1, t2)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scan mismatch at %d", i)
		}
	}
}
