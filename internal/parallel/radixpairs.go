package parallel

import "sort"

// This file extends the parallel LSD radix sort of radix.go to key/payload
// pairs: the payload array is permuted in lockstep with the keys. It is the
// sort under weighted batch updates, where each packed (src<<32 | dst) key
// carries its edge weight. Passes are stable, so equal keys keep their
// input order — which is what lets a keep-last dedup implement
// last-writer-wins in batch order.

// RadixSortUint64Pairs sorts keys in ascending order with a parallel LSD
// radix sort, permuting vals identically. len(vals) must equal len(keys).
// Stable: equal keys retain their relative input order.
func RadixSortUint64Pairs[P any](keys []uint64, vals []P) {
	n := len(keys)
	if len(vals) != n {
		panic("parallel: keys/vals length mismatch")
	}
	if n < radixMinLen {
		sortPairsStable(keys, vals)
		return
	}
	orDiff := orDiffOf(keys)
	if orDiff == 0 {
		return // all keys equal
	}
	kbuf := make([]uint64, n)
	vbuf := make([]P, n)
	ksrc, kdst := keys, kbuf
	vsrc, vdst := vals, vbuf
	for pass := 0; pass < 8; pass++ {
		shift := uint(pass * radixBits)
		if (orDiff>>shift)&(radixBuckets-1) == 0 {
			continue
		}
		radixPassPairs(ksrc, kdst, vsrc, vdst, shift)
		ksrc, kdst = kdst, ksrc
		vsrc, vdst = vdst, vsrc
	}
	if &ksrc[0] != &keys[0] {
		copy(keys, ksrc)
		copy(vals, vsrc)
	}
}

// sortPairsStable is the small-input fallback: a stable comparison sort
// over the pair view.
func sortPairsStable[P any](keys []uint64, vals []P) {
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	kout := make([]uint64, len(keys))
	vout := make([]P, len(vals))
	for i, j := range idx {
		kout[i] = keys[j]
		vout[i] = vals[j]
	}
	copy(keys, kout)
	copy(vals, vout)
}

// radixPassPairs is radixPass carrying a payload: one stable counting-sort
// pass on the byte at shift, scattering (key, val) from src into dst.
func radixPassPairs[P any](ksrc, kdst []uint64, vsrc, vdst []P, shift uint) {
	n := len(ksrc)
	if Procs <= 1 || n < radixParLen {
		var cnt [radixBuckets]int
		for _, x := range ksrc {
			cnt[uint8(x>>shift)]++
		}
		s := 0
		for d := range cnt {
			c := cnt[d]
			cnt[d] = s
			s += c
		}
		for i, x := range ksrc {
			d := uint8(x >> shift)
			kdst[cnt[d]] = x
			vdst[cnt[d]] = vsrc[i]
			cnt[d]++
		}
		return
	}
	p := Procs
	sz := (n + p - 1) / p
	counts := make([]int, p*radixBuckets)
	ForGrain(p, 1, func(w int) {
		lo, hi := w*sz, (w+1)*sz
		if hi > n {
			hi = n
		}
		if lo >= hi {
			return
		}
		cnt := counts[w*radixBuckets : (w+1)*radixBuckets]
		for _, x := range ksrc[lo:hi] {
			cnt[uint8(x>>shift)]++
		}
	})
	// Exclusive scan in (digit, worker) order — see radixPass for why this
	// preserves stability.
	s := 0
	for d := 0; d < radixBuckets; d++ {
		for w := 0; w < p; w++ {
			i := w*radixBuckets + d
			c := counts[i]
			counts[i] = s
			s += c
		}
	}
	ForGrain(p, 1, func(w int) {
		lo, hi := w*sz, (w+1)*sz
		if hi > n {
			hi = n
		}
		if lo >= hi {
			return
		}
		off := counts[w*radixBuckets : (w+1)*radixBuckets]
		for i := lo; i < hi; i++ {
			x := ksrc[i]
			d := uint8(x >> shift)
			kdst[off[d]] = x
			vdst[off[d]] = vsrc[i]
			off[d]++
		}
	})
}

// DedupSortedUint64PairsLast removes duplicate keys from the sorted pair
// arrays in place, keeping the LAST occurrence of each key (so a stable
// sort followed by this implements last-writer-wins in input order).
// Returns the truncated slices.
func DedupSortedUint64PairsLast[P any](keys []uint64, vals []P) ([]uint64, []P) {
	if len(keys) == 0 {
		return keys, vals
	}
	w := 0
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[w] {
			w++
			keys[w] = keys[i]
			vals[w] = vals[i]
		} else {
			// Same key: later entry wins.
			vals[w] = vals[i]
		}
	}
	return keys[:w+1], vals[:w+1]
}
