package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp, string(body)
}

func TestServerMetrics(t *testing.T) {
	s := NewServer()
	c := s.Registry().Counter("test_hits_total", "Hits.")
	c.Add(3)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content-type = %q, want exposition 0.0.4", ct)
	}
	samples := parseExposition(t, body)
	if samples["test_hits_total"] != "3" {
		t.Errorf("scrape = %v, want test_hits_total 3", samples)
	}
}

func TestServerStatusz(t *testing.T) {
	s := NewServer()
	s.Registry().Counter("test_a_total", "a")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Default payload: the registered metric names.
	resp, body := get(t, ts, "/statusz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statusz status = %d", resp.StatusCode)
	}
	var def struct {
		Metrics []string `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &def); err != nil {
		t.Fatalf("default /statusz not JSON: %v\n%s", err, body)
	}
	if len(def.Metrics) != 1 || def.Metrics[0] != "test_a_total" {
		t.Errorf("default payload = %+v", def)
	}

	// Installed payload round-trips through JSON.
	s.SetStatus(func() any {
		return map[string]any{"stamp": 42, "mode": "durable"}
	})
	_, body = get(t, ts, "/statusz")
	var got map[string]any
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("statusz not JSON: %v", err)
	}
	if got["stamp"] != float64(42) || got["mode"] != "durable" {
		t.Errorf("statusz = %v", got)
	}

	// nil uninstalls, back to the default payload.
	s.SetStatus(nil)
	_, body = get(t, ts, "/statusz")
	if !strings.Contains(body, "metrics") {
		t.Errorf("after uninstall: %s", body)
	}
}

func TestServerHealthz(t *testing.T) {
	s := NewServer()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK || body != "ok\n" {
		t.Fatalf("default health = %d %q", resp.StatusCode, body)
	}
	s.SetHealth(func() error { return errors.New("wal torn") })
	resp, body = get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "wal torn") {
		t.Fatalf("failing health = %d %q", resp.StatusCode, body)
	}
	s.SetHealth(nil)
	resp, _ = get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("uninstalled health = %d", resp.StatusCode)
	}
}

func TestServerRegistrySwap(t *testing.T) {
	s := NewServer()
	s.Registry().Counter("test_old_total", "old")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	fresh := NewRegistry()
	fresh.Counter("test_new_total", "new")
	s.SetRegistry(fresh)
	_, body := get(t, ts, "/metrics")
	if strings.Contains(body, "test_old_total") || !strings.Contains(body, "test_new_total") {
		t.Errorf("swap did not take: %s", body)
	}
	// nil resets to an empty registry rather than crashing the scrape.
	s.SetRegistry(nil)
	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK || strings.Contains(body, "test_new_total") {
		t.Errorf("nil swap: %d %s", resp.StatusCode, body)
	}
}

func TestServerPprof(t *testing.T) {
	s := NewServer()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := get(t, ts, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index = %d", resp.StatusCode)
	}
	resp, _ = get(t, ts, "/debug/pprof/goroutine?debug=1")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("goroutine profile = %d", resp.StatusCode)
	}
	resp, _ = get(t, ts, "/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("cmdline = %d", resp.StatusCode)
	}
}

func TestServerStartClose(t *testing.T) {
	s := NewServer()
	if s.Addr() != "" {
		t.Fatalf("Addr before Start = %q", s.Addr())
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatalf("GET over real listener: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
