package obs

import (
	"strings"
	"testing"
	"time"
)

// parseExposition does a minimal 0.0.4 text-format parse: every
// non-comment line must be `name{labels} value` or `name value`, every
// series must follow a HELP+TYPE pair for its family, and no family may
// be introduced twice.
func parseExposition(t *testing.T, text string) map[string]string {
	t.Helper()
	samples := make(map[string]string)
	helped := make(map[string]bool)
	typed := make(map[string]bool)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if helped[name] {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			helped[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			if !found || (typ != "counter" && typ != "gauge" && typ != "summary") {
				t.Fatalf("line %d: bad TYPE: %q", ln+1, line)
			}
			if typed[name] {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			typed[name] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		}
		key, value, found := strings.Cut(line, " ")
		if !found || value == "" || strings.Contains(value, " ") {
			t.Fatalf("line %d: not `key value`: %q", ln+1, line)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated labels: %q", ln+1, line)
			}
			name = key[:i]
		}
		// _sum/_count series belong to the summary family they suffix.
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Fatalf("line %d: series %s before its TYPE", ln+1, name)
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("line %d: duplicate series %s", ln+1, key)
		}
		samples[key] = value
	}
	return samples
}

func scrape(t *testing.T, r *Registry) map[string]string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return parseExposition(t, sb.String())
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	c.Add(41)
	c.Inc()
	g := r.Gauge("test_depth", "Queue depth.", Label{Key: "lane", Value: "priority"})
	g.Set(7)
	g.Add(-2)
	r.CounterFunc("test_reads_total", "Reads.", func() uint64 { return 9 })
	r.GaugeFunc("test_ratio", "A fraction.", func() float64 { return 0.25 })
	var h Hist
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	r.Summary("test_latency_seconds", "Latency.", &h)

	samples := scrape(t, r)
	if got := samples["test_ops_total"]; got != "42" {
		t.Errorf("counter = %q, want 42", got)
	}
	if got := samples[`test_depth{lane="priority"}`]; got != "5" {
		t.Errorf("gauge = %q, want 5", got)
	}
	if got := samples["test_reads_total"]; got != "9" {
		t.Errorf("counter func = %q, want 9", got)
	}
	if got := samples["test_ratio"]; got != "0.25" {
		t.Errorf("gauge func = %q, want 0.25", got)
	}
	if got := samples["test_latency_seconds_count"]; got != "100" {
		t.Errorf("summary count = %q, want 100", got)
	}
	if _, ok := samples[`test_latency_seconds{quantile="0.5"}`]; !ok {
		t.Errorf("missing p50 quantile series; have %v", samples)
	}
	// _sum is 1+2+...+100 ms = 5.05 s.
	if got := samples["test_latency_seconds_sum"]; got != "5.05" {
		t.Errorf("summary sum = %q, want 5.05", got)
	}
}

func TestRegistryMultiSeriesFamily(t *testing.T) {
	r := NewRegistry()
	for _, shard := range []string{"0", "1", "2"} {
		r.CounterFunc("test_commits_total", "Commits.",
			func() uint64 { return 1 }, Label{Key: "shard", Value: shard})
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if n := strings.Count(text, "# TYPE test_commits_total"); n != 1 {
		t.Errorf("TYPE emitted %d times, want once", n)
	}
	samples := parseExposition(t, text)
	if len(samples) != 3 {
		t.Errorf("got %d series, want 3: %v", len(samples), samples)
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("test_weird", "Escapes.", func() float64 { return 1 },
		Label{Key: "path", Value: `C:\tmp "x"` + "\n"})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `test_weird{path="C:\\tmp \"x\"\n"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("escaped series %q not found in:\n%s", want, sb.String())
	}
}

func TestRegistryNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "z")
	r.Gauge("aaa", "a")
	names := r.Names()
	if len(names) != 2 || names[0] != "aaa" || names[1] != "zzz_total" {
		t.Errorf("Names() = %v, want sorted [aaa zzz_total]", names)
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_thing", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("test_thing", "x")
}

func TestRegistryDuplicateSeriesPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_dup_total", "x", Label{Key: "a", Value: "b"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate (name, labels) did not panic")
		}
	}()
	r.Counter("test_dup_total", "x", Label{Key: "a", Value: "b"})
}

// TestInstrumentAllocs pins the zero-allocation contract of the hot
// instruments: counter/gauge updates and histogram observes on the
// commit path must not allocate. CI gates the same property through
// the benchmarks' allocs/op.
func TestInstrumentAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_allocs_total", "x")
	g := r.Gauge("test_allocs_gauge", "x")
	var h Hist
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(5) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(time.Millisecond) }); n != 0 {
		t.Errorf("Hist.Observe allocates %v/op", n)
	}
}
