// Package obs is the observability layer: a zero-allocation metrics
// registry (atomic counters, gauges, read-through views over existing
// counters, and the HDR-style latency histograms the stream engine
// records into), a per-commit stage tracer, and an HTTP server exposing
// Prometheus-text /metrics, JSON /statusz, /healthz, and net/http/pprof
// under /debug/pprof. Everything on the hot path — counter increments,
// histogram observes, stage-trace recording — is allocation-free and
// lock-free (the slow-trace ring takes a mutex only for commits over the
// slow threshold); scraping pays whatever it costs, the writers don't.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a lock-free log-linear latency histogram (HDR-style): durations
// are bucketed by octave with 2^subBits linear sub-buckets per octave, so
// every recorded value lands in a bucket whose width is at most 1/2^subBits
// of its magnitude (quantile error ≤ ~1.6% with subBits = 5). Observe is a
// single atomic increment, safe for any number of concurrent recorders —
// the property the stream engine needs to take latency samples on the
// commit path and on every reader without perturbing either.
//
// The zero Hist is ready to use.
type Hist struct {
	counts [numBuckets]atomic.Uint64
	n      atomic.Uint64
	sum    atomic.Uint64 // nanoseconds
	max    atomic.Uint64 // nanoseconds
}

const (
	subBits = 5
	subMask = 1<<subBits - 1
	// Buckets 0..31 hold exact nanosecond values; above that, each octave
	// o ≥ subBits contributes 2^subBits sub-buckets.
	numBuckets = (64 - subBits + 1) << subBits
)

// bucketOf maps a nanosecond value to its bucket index (monotone in v).
func bucketOf(v uint64) int {
	if v < 1<<subBits {
		return int(v)
	}
	o := bits.Len64(v) - 1 // position of the leading bit, ≥ subBits
	sub := (v >> (uint(o) - subBits)) & subMask
	return (o-subBits)<<subBits + 1<<subBits + int(sub)
}

// bucketMid returns a representative (midpoint) nanosecond value for idx.
func bucketMid(idx int) uint64 {
	if idx < 1<<subBits {
		return uint64(idx)
	}
	k := idx - 1<<subBits
	o := uint(k>>subBits) + subBits
	sub := uint64(k & subMask)
	lo := uint64(1)<<o + sub<<(o-subBits)
	return lo + uint64(1)<<(o-subBits)/2
}

// Observe records one duration. Negative durations count as zero.
func (h *Hist) Observe(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.counts[bucketOf(v)].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.n.Load() }

// Sum returns the total of all recorded observations.
func (h *Hist) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// LatencySummary is a fixed quantile digest of a histogram, in nanoseconds
// (the JSON shape BENCH_*_stream.json records).
type LatencySummary struct {
	Count uint64        `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Summary digests the histogram. Concurrent Observes may or may not be
// included; call at quiescence for exact numbers.
func (h *Hist) Summary() LatencySummary {
	var s LatencySummary
	s.Count = h.n.Load()
	if s.Count == 0 {
		return s
	}
	s.Mean = time.Duration(h.sum.Load() / s.Count)
	s.Max = time.Duration(h.max.Load())
	// Snapshot the buckets once and extract all quantiles from it.
	var counts [numBuckets]uint64
	total := uint64(0)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	quantile := func(q float64) time.Duration {
		if total == 0 {
			return 0
		}
		rank := uint64(q * float64(total-1))
		cum := uint64(0)
		for i, c := range counts {
			cum += c
			if cum > rank {
				return time.Duration(bucketMid(i))
			}
		}
		return time.Duration(bucketMid(numBuckets - 1))
	}
	s.P50 = quantile(0.50)
	s.P95 = quantile(0.95)
	s.P99 = quantile(0.99)
	if s.P99 > s.Max {
		s.P99 = s.Max // bucket midpoint may overshoot the true extreme
	}
	if s.P95 > s.Max {
		s.P95 = s.Max
	}
	if s.P50 > s.Max {
		s.P50 = s.Max
	}
	return s
}
