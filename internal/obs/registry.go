package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a process-local metric registry rendering the Prometheus
// text exposition format. Registration (engine/cluster construction
// time) takes a mutex; the instruments themselves are single atomic
// words, so incrementing on the commit path costs one uncontended
// atomic add and zero allocations.
//
// Memory-ordering contract: every instrument is a relaxed atomic — an
// increment is visible to a concurrent scrape eventually and each
// series is monotone (counters) or last-write-wins (gauges), but a
// scrape is NOT a consistent cut across instruments. A reader may see
// aspen_engine_commits_total already incremented while
// aspen_engine_edges_total still shows the previous commit, because the
// writer updates them with independent atomic operations and no fence
// orders them for the scraper. Derived ratios (edges per commit,
// coalesce factor) are therefore approximate while ingest is running
// and exact only at quiescence — the same contract the Stats() structs
// this registry federates have always had.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// Label is one metric label pair, rendered at registration time so the
// scrape path never re-escapes or re-joins labels.
type Label struct {
	Key   string
	Value string
}

// family is every series sharing one metric name (HELP/TYPE emitted once).
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "summary"
	series []series
}

// series is one labeled instrument inside a family. Exactly one of
// read/hist is set: read yields the current value of a counter or
// gauge; hist backs a summary family.
type series struct {
	labels string // pre-rendered `key="value",...` (no braces), may be ""
	read   func() float64
	hist   *Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// renderLabels joins labels into the `k="v",...` body, escaping values.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register adds one series to the named family, creating the family on
// first use. Registering the same name with a different type is a
// programming error and panics; registering the same (name, labels)
// twice likewise — duplicate series would render an ill-formed
// exposition.
func (r *Registry) register(name, help, typ string, labels []Label, s series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	s.labels = renderLabels(labels)
	for _, old := range f.series {
		if old.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// Counter is a monotone counter owned by the registry caller. The zero
// value is usable before registration; Add/Inc are one atomic add.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Counter registers and returns a new counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", labels, series{read: func() float64 { return float64(c.v.Load()) }})
	return c
}

// Gauge registers and returns a new gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", labels, series{read: func() float64 { return float64(g.v.Load()) }})
	return g
}

// CounterFunc registers a read-through counter series over an existing
// monotone source (an atomic.Uint64 already owned by an engine or
// client struct) — the "one source of truth" federation path: the
// owner keeps its counter and accessors, the registry only reads it at
// scrape time.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(name, help, "counter", labels, series{read: func() float64 { return float64(fn()) }})
}

// GaugeFunc registers a read-through gauge series.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "gauge", labels, series{read: fn})
}

// Summary registers an existing histogram as a Prometheus summary
// family: quantile series (0.5, 0.95, 0.99) plus _sum and _count, all
// rendered in seconds. The histogram stays owned by its writer; the
// registry digests it at scrape time.
func (r *Registry) Summary(name, help string, h *Hist, labels ...Label) {
	r.register(name, help, "summary", labels, series{hist: h})
}

// WritePrometheus renders every family in registration order in the
// text exposition format (version 0.0.4): HELP/TYPE once per family,
// one line per series, summaries as quantile series plus _sum/_count in
// seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.help)
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		for _, s := range f.series {
			if s.hist != nil {
				writeSummary(&b, f.name, s.labels, s.hist)
				continue
			}
			b.WriteString(f.name)
			if s.labels != "" {
				b.WriteByte('{')
				b.WriteString(s.labels)
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatValue(s.read()))
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeSummary renders one histogram as summary series in seconds.
func writeSummary(b *strings.Builder, name, labels string, h *Hist) {
	sum := h.Summary()
	q := func(qv string, d float64) {
		b.WriteString(name)
		b.WriteByte('{')
		if labels != "" {
			b.WriteString(labels)
			b.WriteByte(',')
		}
		b.WriteString(`quantile="`)
		b.WriteString(qv)
		b.WriteString(`"} `)
		b.WriteString(formatValue(d / 1e9))
		b.WriteByte('\n')
	}
	q("0.5", float64(sum.P50))
	q("0.95", float64(sum.P95))
	q("0.99", float64(sum.P99))
	suffix := func(sfx string, v float64) {
		b.WriteString(name)
		b.WriteString(sfx)
		if labels != "" {
			b.WriteByte('{')
			b.WriteString(labels)
			b.WriteByte('}')
		}
		b.WriteByte(' ')
		b.WriteString(formatValue(v))
		b.WriteByte('\n')
	}
	suffix("_sum", float64(h.Sum())/1e9)
	suffix("_count", float64(sum.Count))
}

// formatValue renders a sample value: integers without an exponent,
// everything else in shortest-round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Names returns the registered family names, sorted — test and /statusz
// introspection.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for _, f := range r.families {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}
