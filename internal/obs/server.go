package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// Server exposes a registry over HTTP: Prometheus-text /metrics, JSON
// /statusz (whatever the owner's status function returns), /healthz
// (200 "ok" or 503 with the error), and net/http/pprof under
// /debug/pprof. The registry, status, and health hooks are swappable at
// runtime (atomic pointers) because cmd/stream builds a fresh engine —
// and therefore a fresh registry — per sweep run while one server stays
// mounted on -obs-addr for the whole process.
type Server struct {
	reg    atomic.Pointer[Registry]
	status atomic.Pointer[func() any]
	health atomic.Pointer[func() error]

	mux *http.ServeMux
	srv *http.Server
	ln  net.Listener
}

// NewServer builds an unstarted server with an empty registry.
func NewServer() *Server {
	s := &Server{mux: http.NewServeMux()}
	s.reg.Store(NewRegistry())
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/statusz", s.handleStatusz)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	// net/http/pprof self-registers only on http.DefaultServeMux; wire
	// its handlers onto ours explicitly.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Registry returns the currently mounted registry.
func (s *Server) Registry() *Registry { return s.reg.Load() }

// SetRegistry swaps the registry served by /metrics.
func (s *Server) SetRegistry(r *Registry) {
	if r == nil {
		r = NewRegistry()
	}
	s.reg.Store(r)
}

// SetStatus installs the /statusz payload producer. The returned value
// is marshaled as JSON per request; nil uninstalls.
func (s *Server) SetStatus(fn func() any) {
	if fn == nil {
		s.status.Store(nil)
		return
	}
	s.status.Store(&fn)
}

// SetHealth installs the /healthz check: nil error is healthy (200),
// non-nil serves 503 with the error text. Without a hook /healthz is
// always healthy.
func (s *Server) SetHealth(fn func() error) {
	if fn == nil {
		s.health.Store(nil)
		return
	}
	s.health.Store(&fn)
}

// Handler returns the server's mux (tests mount it on httptest).
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.Load().WritePrometheus(w)
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	var payload any
	if fn := s.status.Load(); fn != nil {
		payload = (*fn)()
	}
	if payload == nil {
		payload = map[string]any{"metrics": s.reg.Load().Names()}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if fn := s.health.Load(); fn != nil {
		if err := (*fn)(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

// Start listens on addr (e.g. "127.0.0.1:9090", ":0" for an ephemeral
// port) and serves in the background until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener. In-flight requests are abandoned — the
// observability plane has nothing worth draining for.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
