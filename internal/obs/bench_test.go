package obs

import (
	"testing"
	"time"
)

// BenchmarkObsCounterAdd and BenchmarkStageTraceRecord are the PR 10
// CI gate (BENCH_pr10_obs.json): both must stay at 0 allocs/op, or the
// instrumentation is no longer free on the commit path.

func BenchmarkObsCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_ops_total", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkStageTraceRecord(b *testing.B) {
	var tr StageTracer
	rec := StageTrace{Stamp: 1, Edges: 100, Batches: 4}
	rec.Durs[StageCoalesce] = 20 * time.Microsecond
	rec.Durs[StageApply] = 300 * time.Microsecond
	rec.Durs[StageFlatPatch] = 80 * time.Microsecond
	rec.Durs[StageAck] = 5 * time.Microsecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(&rec)
	}
}

func BenchmarkStageTraceRecordSlow(b *testing.B) {
	var tr StageTracer
	tr.SetSlowThreshold(1) // every record takes the ring path
	rec := StageTrace{Stamp: 1, Edges: 100, Batches: 4}
	rec.Durs[StageApply] = 300 * time.Microsecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(&rec)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 8; i++ {
		c := r.Counter("bench_family_total", "x",
			Label{Key: "shard", Value: string(rune('0' + i))})
		c.Add(uint64(i))
	}
	var h Hist
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	r.Summary("bench_latency_seconds", "x", &h)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
