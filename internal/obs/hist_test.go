package obs

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/xhash"
)

func TestBucketRoundTrip(t *testing.T) {
	// bucketOf must be monotone and bucketMid must land inside its bucket
	// with bounded relative error.
	prev := -1
	for _, v := range []uint64{0, 1, 2, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, 1<<40 + 12345, math.MaxUint64 / 2} {
		idx := bucketOf(v)
		if idx < prev {
			t.Fatalf("bucketOf not monotone at %d", v)
		}
		prev = idx
		mid := bucketMid(idx)
		if v >= 1<<subBits {
			if relErr := math.Abs(float64(mid)-float64(v)) / float64(v); relErr > 1.0/float64(subMask) {
				t.Fatalf("bucketMid(%d) = %d for value %d: rel err %.4f", idx, mid, v, relErr)
			}
		} else if mid != v {
			t.Fatalf("small values must be exact: got %d for %d", mid, v)
		}
	}
	// Exhaustive monotonicity + containment over octave boundaries.
	for v := uint64(1); v < 1<<16; v++ {
		a, b := bucketOf(v-1), bucketOf(v)
		if b < a {
			t.Fatalf("not monotone at %d", v)
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	// Uniform 1..1000 µs: p50 ≈ 500µs, p99 ≈ 990µs.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Summary()
	if s.Count != 1000 {
		t.Fatalf("Count = %d", s.Count)
	}
	check := func(name string, got time.Duration, want float64) {
		if math.Abs(float64(got)-want)/want > 0.05 {
			t.Fatalf("%s = %v, want ≈%v", name, got, time.Duration(want))
		}
	}
	check("p50", s.P50, 500e3)
	check("p95", s.P95, 950e3)
	check("p99", s.P99, 990e3)
	check("mean", s.Mean, 500.5e3)
	if s.Max != time.Millisecond {
		t.Fatalf("Max = %v", s.Max)
	}
	if s.P99 > s.Max {
		t.Fatal("quantile exceeded max")
	}
}

func TestHistConcurrent(t *testing.T) {
	var h Hist
	const goroutines = 8
	const per = 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := xhash.NewRNG(uint64(g))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(r.Next() % uint64(time.Second)))
			}
		}(g)
	}
	wg.Wait()
	s := h.Summary()
	if s.Count != goroutines*per {
		t.Fatalf("lost observations: %d", s.Count)
	}
	// Uniform over [0, 1s): p50 ≈ 500ms within histogram error.
	if s.P50 < 450*time.Millisecond || s.P50 > 550*time.Millisecond {
		t.Fatalf("p50 = %v for uniform [0,1s)", s.P50)
	}
}

func TestHistZero(t *testing.T) {
	var h Hist
	if s := h.Summary(); s.Count != 0 || s.P99 != 0 {
		t.Fatalf("zero hist summary = %+v", s)
	}
	h.Observe(-time.Second) // clamps to zero, must not panic
	if s := h.Summary(); s.Count != 1 || s.Max != 0 {
		t.Fatalf("negative observation: %+v", s)
	}
}
