package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage enumerates the commit pipeline, in order: enqueue (submit to
// ingest-loop pickup), coalesce (folding the commit group), WAL append,
// fsync, functional tree apply, flat-view build/patch, and ack (waking
// the submitters). A stage that did not run for a commit (no WAL
// without durability, no flat stage without PrebuildFlat) records zero
// and is excluded from its histogram.
type Stage uint8

const (
	StageEnqueue Stage = iota
	StageCoalesce
	StageWALAppend
	StageFsync
	StageApply
	StageFlatPatch
	StageAck
	NumStages int = iota
)

var stageNames = [NumStages]string{
	"enqueue", "coalesce", "wal_append", "fsync", "apply", "flat_patch", "ack",
}

func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// StageTrace is one commit's timing record. The engine keeps a single
// persistent StageTrace per ingest goroutine and reuses it every
// commit, so recording never allocates; the tracer copies it into the
// slow ring by value when it crosses the threshold.
type StageTrace struct {
	Stamp   uint64                  `json:"stamp"`
	Edges   int                     `json:"edges"`
	Batches int                     `json:"batches"`
	Durs    [NumStages]time.Duration `json:"-"`
}

// Total is the sum over all stages — enqueue-to-ack latency of the
// oldest batch in the commit group.
func (t *StageTrace) Total() time.Duration {
	var sum time.Duration
	for _, d := range t.Durs {
		sum += d
	}
	return sum
}

// StageTraceView is the JSON shape of one slow-commit trace
// (/statusz and the -trace-slow dump): per-stage durations keyed by
// stage name, in nanoseconds.
type StageTraceView struct {
	Stamp   uint64           `json:"stamp"`
	Edges   int              `json:"edges"`
	Batches int              `json:"batches"`
	TotalNS time.Duration    `json:"total_ns"`
	Stages  map[string]int64 `json:"stages_ns"`
}

// View renders the trace for JSON output, dropping zero stages.
func (t *StageTrace) View() StageTraceView {
	v := StageTraceView{
		Stamp:   t.Stamp,
		Edges:   t.Edges,
		Batches: t.Batches,
		TotalNS: t.Total(),
		Stages:  make(map[string]int64, NumStages),
	}
	for i, d := range t.Durs {
		if d > 0 {
			v.Stages[Stage(i).String()] = int64(d)
		}
	}
	return v
}

// slowRingSize bounds the in-memory ring of recent slow-commit traces.
const slowRingSize = 64

// StageTracer aggregates per-stage latency histograms and keeps a
// bounded ring of recent slow commits. Record is allocation-free; the
// ring mutex is taken only for commits over the slow threshold. The
// zero StageTracer is ready to use (slow-trace capture disabled until
// SetSlowThreshold).
type StageTracer struct {
	hists  [NumStages]Hist
	thresh atomic.Int64 // nanoseconds; 0 disables the slow ring

	mu   sync.Mutex
	ring [slowRingSize]StageTrace
	next int    // ring write cursor
	seen uint64 // slow traces recorded since start (may exceed ring size)
}

// SetSlowThreshold arms the slow ring: commits whose total stage time
// is ≥ d are copied into it. 0 disables capture (histograms still
// record).
func (t *StageTracer) SetSlowThreshold(d time.Duration) {
	t.thresh.Store(int64(d))
}

// SlowThreshold returns the current threshold (0 = disabled).
func (t *StageTracer) SlowThreshold() time.Duration {
	return time.Duration(t.thresh.Load())
}

// Record folds one commit's trace into the per-stage histograms and,
// when its total crosses the slow threshold, into the slow ring. tr is
// copied; the caller reuses it for the next commit. Stages with zero
// duration did not run and are not observed.
func (t *StageTracer) Record(tr *StageTrace) {
	var total time.Duration
	for i := range tr.Durs {
		d := tr.Durs[i]
		if d > 0 {
			t.hists[i].Observe(d)
			total += d
		}
	}
	th := t.thresh.Load()
	if th <= 0 || total < time.Duration(th) {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = *tr
	t.next = (t.next + 1) % slowRingSize
	t.seen++
	t.mu.Unlock()
}

// StageHist exposes one stage's histogram (readers digest it; the
// tracer keeps writing).
func (t *StageTracer) StageHist(s Stage) *Hist { return &t.hists[s] }

// Summaries digests every stage histogram at once.
func (t *StageTracer) Summaries() [NumStages]LatencySummary {
	var out [NumStages]LatencySummary
	for i := range t.hists {
		out[i] = t.hists[i].Summary()
	}
	return out
}

// Slow snapshots the slow ring, newest first. The second result is the
// total number of slow commits recorded (the ring keeps the most recent
// slowRingSize of them).
func (t *StageTracer) Slow() ([]StageTrace, uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := int(min(t.seen, slowRingSize))
	out := make([]StageTrace, 0, n)
	for i := 0; i < n; i++ {
		idx := (t.next - 1 - i + 2*slowRingSize) % slowRingSize
		out = append(out, t.ring[idx])
	}
	return out, t.seen
}

// SlowViews is Slow rendered for JSON output.
func (t *StageTracer) SlowViews() ([]StageTraceView, uint64) {
	traces, seen := t.Slow()
	views := make([]StageTraceView, len(traces))
	for i := range traces {
		views[i] = traces[i].View()
	}
	return views, seen
}

// Register adds the per-stage latency summaries to reg as
// <name>{stage="..."} series (seconds).
func (t *StageTracer) Register(reg *Registry, name, help string, labels ...Label) {
	for i := range t.hists {
		ls := make([]Label, 0, len(labels)+1)
		ls = append(ls, labels...)
		ls = append(ls, Label{Key: "stage", Value: Stage(i).String()})
		reg.Summary(name, help, &t.hists[i], ls...)
	}
}
