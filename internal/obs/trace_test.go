package obs

import (
	"encoding/json"
	"testing"
	"time"
)

func mkTrace(stamp uint64, total time.Duration) StageTrace {
	tr := StageTrace{Stamp: stamp, Edges: 10, Batches: 2}
	tr.Durs[StageApply] = total / 2
	tr.Durs[StageAck] = total - total/2
	return tr
}

func TestStageNames(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < NumStages; i++ {
		n := Stage(i).String()
		if n == "" || n == "unknown" || seen[n] {
			t.Fatalf("stage %d has bad/duplicate name %q", i, n)
		}
		seen[n] = true
	}
	if Stage(NumStages).String() != "unknown" {
		t.Errorf("out-of-range stage should be unknown")
	}
	if StageEnqueue.String() != "enqueue" || StageAck.String() != "ack" {
		t.Errorf("stage order broken: %s..%s", StageEnqueue, StageAck)
	}
}

func TestTracerHistograms(t *testing.T) {
	var tr StageTracer
	rec := mkTrace(1, 2*time.Millisecond)
	tr.Record(&rec)
	if got := tr.StageHist(StageApply).Count(); got != 1 {
		t.Errorf("apply count = %d, want 1", got)
	}
	// Zero-duration stages must not be observed.
	if got := tr.StageHist(StageFsync).Count(); got != 0 {
		t.Errorf("fsync count = %d, want 0 (stage did not run)", got)
	}
	sums := tr.Summaries()
	if sums[StageApply].Count != 1 || sums[StageFsync].Count != 0 {
		t.Errorf("Summaries() = %+v", sums)
	}
}

func TestTracerThresholdGating(t *testing.T) {
	var tr StageTracer
	// Threshold unset: nothing is retained.
	rec := mkTrace(1, 10*time.Millisecond)
	tr.Record(&rec)
	if traces, seen := tr.Slow(); seen != 0 || len(traces) != 0 {
		t.Fatalf("disarmed tracer retained %d/%d traces", len(traces), seen)
	}
	tr.SetSlowThreshold(5 * time.Millisecond)
	if got := tr.SlowThreshold(); got != 5*time.Millisecond {
		t.Fatalf("SlowThreshold = %v", got)
	}
	fast := mkTrace(2, time.Millisecond)
	slow := mkTrace(3, 6*time.Millisecond)
	tr.Record(&fast)
	tr.Record(&slow)
	traces, seen := tr.Slow()
	if seen != 1 || len(traces) != 1 || traces[0].Stamp != 3 {
		t.Fatalf("Slow() = %+v seen=%d, want one trace with stamp 3", traces, seen)
	}
}

func TestTracerRingBoundedNewestFirst(t *testing.T) {
	var tr StageTracer
	tr.SetSlowThreshold(1)
	const n = slowRingSize + 10
	for i := 1; i <= n; i++ {
		rec := mkTrace(uint64(i), time.Millisecond)
		tr.Record(&rec)
	}
	traces, seen := tr.Slow()
	if seen != n {
		t.Fatalf("seen = %d, want %d", seen, n)
	}
	if len(traces) != slowRingSize {
		t.Fatalf("retained %d traces, want %d", len(traces), slowRingSize)
	}
	for i, got := range traces {
		if want := uint64(n - i); got.Stamp != want {
			t.Fatalf("traces[%d].Stamp = %d, want %d (newest first)", i, got.Stamp, want)
		}
	}
}

func TestTraceView(t *testing.T) {
	rec := mkTrace(7, 4*time.Millisecond)
	v := rec.View()
	if v.Stamp != 7 || v.Edges != 10 || v.Batches != 2 {
		t.Fatalf("View header = %+v", v)
	}
	if v.TotalNS != rec.Total() {
		t.Errorf("TotalNS = %v, want %v", v.TotalNS, rec.Total())
	}
	if len(v.Stages) != 2 {
		t.Errorf("Stages = %v, want apply+ack only", v.Stages)
	}
	if v.Stages["apply"]+v.Stages["ack"] != int64(4*time.Millisecond) {
		t.Errorf("stage sum = %v, want 4ms", v.Stages)
	}
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var back StageTraceView
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Stamp != v.Stamp || back.Stages["apply"] != v.Stages["apply"] {
		t.Errorf("JSON round-trip lost data: %+v vs %+v", back, v)
	}
}

func TestTracerRegister(t *testing.T) {
	var tr StageTracer
	rec := mkTrace(1, time.Millisecond)
	tr.Record(&rec)
	r := NewRegistry()
	tr.Register(r, "test_stage_seconds", "Stage latency.")
	samples := scrape(t, r)
	if _, ok := samples[`test_stage_seconds_count{stage="apply"}`]; !ok {
		t.Errorf("missing apply stage series; have %v", samples)
	}
	if got := samples[`test_stage_seconds_count{stage="apply"}`]; got != "1" {
		t.Errorf("apply count = %q, want 1", got)
	}
}

// TestRecordAllocs pins the zero-allocation contract of the per-commit
// trace record, with and without the slow ring armed (the armed path
// copies into a fixed array under a mutex — still no allocation).
func TestRecordAllocs(t *testing.T) {
	var tr StageTracer
	rec := mkTrace(1, time.Millisecond)
	if n := testing.AllocsPerRun(1000, func() { tr.Record(&rec) }); n != 0 {
		t.Errorf("Record (disarmed) allocates %v/op", n)
	}
	tr.SetSlowThreshold(1)
	if n := testing.AllocsPerRun(1000, func() { tr.Record(&rec) }); n != 0 {
		t.Errorf("Record (slow path) allocates %v/op", n)
	}
}
