package algos

import (
	"sync/atomic"

	"repro/internal/ligra"
)

// BFSResult holds the output of a breadth-first search.
type BFSResult struct {
	// Parents maps each reached vertex to its BFS parent (the source maps
	// to itself); unreached vertices hold -1.
	Parents []int32
	// Rounds is the number of frontier expansions (the BFS depth).
	Rounds int
	// Visited is the number of reached vertices.
	Visited int
}

// BFS runs a parallel, optionally direction-optimizing breadth-first search
// from src. With noDense set it uses only sparse (push) traversals, the
// configuration used for the fair comparisons of Table 11.
func BFS(g ligra.Graph, src uint32, noDense bool) BFSResult {
	n := g.Order()
	parents := make([]int32, n)
	for i := range parents {
		parents[i] = -1
	}
	if int(src) >= n {
		return BFSResult{Parents: parents}
	}
	parents[src] = int32(src)
	frontier := ligra.FromVertex(n, src)
	visited := 1
	rounds := 0
	opts := ligra.EdgeMapOpts{NoDense: noDense}
	for !frontier.IsEmpty() {
		rounds++
		frontier = ligra.EdgeMap(g, frontier,
			func(u, v uint32) bool { return casInt32(parents, v, -1, int32(u)) },
			func(v uint32) bool { return atomic.LoadInt32(&parents[v]) == -1 },
			opts)
		visited += frontier.Size()
	}
	return BFSResult{Parents: parents, Rounds: rounds, Visited: visited}
}

// Distances derives hop distances from BFS parents (-1 when unreached).
func (r BFSResult) Distances() []int32 {
	n := len(r.Parents)
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	// Resolve each vertex by walking to the root, memoizing along the way.
	var walk func(v int32) int32
	walk = func(v int32) int32 {
		if dist[v] >= 0 {
			return dist[v]
		}
		p := r.Parents[v]
		if p < 0 {
			return -1
		}
		if p == v {
			dist[v] = 0
			return 0
		}
		d := walk(p)
		if d < 0 {
			return -1
		}
		dist[v] = d + 1
		return dist[v]
	}
	for v := range r.Parents {
		if r.Parents[v] >= 0 {
			walk(int32(v))
		}
	}
	return dist
}
