package algos

import (
	"sync"
	"sync/atomic"

	"repro/internal/ligra"
	"repro/internal/parallel"
)

// KCore computes the coreness of every vertex by parallel bucketed peeling
// (the Julienne-style bucketing algorithm the paper cites as running on
// Aspen [24]): vertices are peeled in rounds of non-decreasing induced
// degree; a vertex's coreness is the bucket at which it is peeled.
func KCore(g ligra.Graph) []uint32 {
	n := g.Order()
	deg := make([]int32, n)
	parallel.For(n, func(i int) { deg[i] = int32(g.Degree(uint32(i))) })
	coreness := make([]uint32, n)
	peeled := make([]int32, n) // 0 = live, 1 = peeled
	remaining := int64(0)
	for i := 0; i < n; i++ {
		if deg[i] > 0 {
			remaining++
		} else {
			peeled[i] = 1 // isolated ids have coreness 0
		}
	}
	k := int32(0)
	for remaining > 0 {
		// Frontier: live vertices whose induced degree dropped to <= k.
		frontier := parallel.PackIndices(n, func(i int) bool {
			return peeled[i] == 0 && atomic.LoadInt32(&deg[i]) <= k
		})
		if len(frontier) == 0 {
			k++
			continue
		}
		for len(frontier) > 0 {
			// Peel the frontier; their neighbors lose induced degree
			// and may fall into the same bucket (coreness k).
			for _, v := range frontier {
				peeled[v] = 1
				coreness[v] = uint32(k)
			}
			remaining -= int64(len(frontier))
			var mu sync.Mutex
			next := make(map[uint32]bool)
			fs := ligra.FromSparse(n, frontier)
			ligra.VertexMap(fs, func(v uint32) {
				g.ForEachNeighbor(v, func(u uint32) bool {
					if atomic.LoadInt32(&peeled[u]) == 1 {
						return true
					}
					if atomic.AddInt32(&deg[u], -1) <= k {
						mu.Lock()
						next[u] = true
						mu.Unlock()
					}
					return true
				})
			})
			frontier = frontier[:0]
			for u := range next {
				if atomic.LoadInt32(&peeled[u]) == 0 {
					frontier = append(frontier, u)
				}
			}
		}
		k++
	}
	return coreness
}

// MaxCore returns the largest coreness value (the graph's degeneracy).
func MaxCore(coreness []uint32) uint32 {
	var maxC uint32
	for _, c := range coreness {
		if c > maxC {
			maxC = c
		}
	}
	return maxC
}
