package algos

import (
	"math"
	"testing"

	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/ligra"
	"repro/internal/xhash"
)

// randomGraph builds a symmetric Aspen graph over n vertices with k random
// undirected edges, plus a reference adjacency structure.
func randomGraph(seed uint64, n, k int) (aspen.Graph, [][]uint32) {
	r := xhash.NewRNG(seed)
	adj := make([][]uint32, n)
	seen := map[uint64]bool{}
	var edges []aspen.Edge
	for len(seen) < k {
		u, v := uint32(r.Intn(n)), uint32(r.Intn(n))
		if u == v {
			continue
		}
		key := uint64(min(u, v))<<32 | uint64(max(u, v))
		if seen[key] {
			continue
		}
		seen[key] = true
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
		edges = append(edges, aspen.Edge{Src: u, Dst: v})
	}
	g := aspen.NewGraph(ctree.Params{B: 8}).InsertVertices(rangeIDs(n)).
		InsertEdges(aspen.MakeUndirected(edges))
	return g, adj
}

func rangeIDs(n int) []uint32 {
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(i)
	}
	return ids
}

// refBFS is a sequential queue BFS over the adjacency reference.
func refBFS(adj [][]uint32, src uint32) []int32 {
	dist := make([]int32, len(adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []uint32{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

func TestBFSMatchesReference(t *testing.T) {
	for _, noDense := range []bool{false, true} {
		for seed := uint64(1); seed <= 5; seed++ {
			g, adj := randomGraph(seed, 200, 500)
			res := BFS(g, 0, noDense)
			want := refBFS(adj, 0)
			got := res.Distances()
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("noDense=%v seed=%d: dist[%d] = %d, want %d",
						noDense, seed, v, got[v], want[v])
				}
			}
			// Parents must be actual edges.
			for v, p := range res.Parents {
				if p >= 0 && p != int32(v) && !g.HasEdge(uint32(p), uint32(v)) {
					t.Fatalf("parent (%d -> %d) is not an edge", p, v)
				}
			}
		}
	}
}

func TestBFSOnFlatSnapshotMatches(t *testing.T) {
	g, adj := randomGraph(9, 300, 900)
	fs := aspen.BuildFlatSnapshot(g)
	got := BFS(fs, 3, false).Distances()
	want := refBFS(adj, 3)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

// refBC is a sequential single-source Brandes implementation.
func refBC(adj [][]uint32, src uint32) []float64 {
	n := len(adj)
	dep := make([]float64, n)
	sigma := make([]float64, n)
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	sigma[src] = 1
	dist[src] = 0
	var order []uint32
	queue := []uint32{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
			if dist[v] == dist[u]+1 {
				sigma[v] += sigma[u]
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		for _, v := range adj[u] {
			if dist[v] == dist[u]+1 {
				dep[u] += sigma[u] / sigma[v] * (1 + dep[v])
			}
		}
	}
	return dep
}

func TestBCMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		g, adj := randomGraph(seed+100, 120, 300)
		got := BC(g, 1, false)
		want := refBC(adj, 1)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-9*(1+math.Abs(want[v])) {
				t.Fatalf("seed %d: dep[%d] = %g, want %g", seed, v, got[v], want[v])
			}
		}
	}
}

func TestMISIndependentAndMaximal(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		g, adj := randomGraph(seed+200, 150, 400)
		in := MIS(g, 42)
		for u := range adj {
			if !in[u] {
				continue
			}
			for _, v := range adj[u] {
				if in[v] {
					t.Fatalf("seed %d: adjacent %d and %d both in MIS", seed, u, v)
				}
			}
		}
		// Maximality: every excluded vertex has an in-MIS neighbor.
		for u := range adj {
			if in[u] {
				continue
			}
			hasInNbr := false
			for _, v := range adj[u] {
				if in[v] {
					hasInNbr = true
					break
				}
			}
			if !hasInNbr {
				t.Fatalf("seed %d: vertex %d excluded with no MIS neighbor", seed, u)
			}
		}
	}
}

func TestMISDeterministic(t *testing.T) {
	g, _ := randomGraph(7, 100, 250)
	a := MIS(g, 5)
	b := MIS(g, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("MIS not deterministic for fixed seed")
		}
	}
}

func TestTwoHop(t *testing.T) {
	g, adj := randomGraph(11, 100, 200)
	got := TwoHop(g, 0)
	want := map[uint32]bool{}
	for _, v := range adj[0] {
		want[v] = true
	}
	for _, v := range adj[0] {
		for _, w := range adj[v] {
			if w != 0 && !contains(adj[0], w) {
				want[w] = true
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("2-hop size = %d, want %d", len(got), len(want))
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("2-hop includes %d", v)
		}
	}
}

func contains(a []uint32, x uint32) bool {
	for _, v := range a {
		if v == x {
			return true
		}
	}
	return false
}

func TestLocalClusterFindsBlob(t *testing.T) {
	// Two 12-cliques joined by a single bridge edge: a walk from inside
	// one clique must identify (most of) that clique at low conductance.
	const k = 12
	var edges []aspen.Edge
	for a := uint32(0); a < k; a++ {
		for b := a + 1; b < k; b++ {
			edges = append(edges, aspen.Edge{Src: a, Dst: b})
			edges = append(edges, aspen.Edge{Src: a + k, Dst: b + k})
		}
	}
	edges = append(edges, aspen.Edge{Src: 0, Dst: k})
	g := aspen.NewGraph(ctree.Params{B: 8}).InsertEdges(aspen.MakeUndirected(edges))
	res := LocalCluster(g, 3, 1e-6, 10)
	if len(res.Cluster) == 0 {
		t.Fatal("empty cluster")
	}
	inFirst := 0
	for _, v := range res.Cluster {
		if v < k {
			inFirst++
		}
	}
	if inFirst < len(res.Cluster)-1 {
		t.Fatalf("cluster leaked into the other clique: %v", res.Cluster)
	}
	if res.Conductance > 0.5 {
		t.Fatalf("conductance %f too high", res.Conductance)
	}
	if res.Support == 0 {
		t.Fatal("no support")
	}
}

// refCC is union-find over the adjacency reference.
func refCC(adj [][]uint32) []uint32 {
	parent := make([]uint32, len(adj))
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for u := range adj {
		for _, v := range adj[u] {
			ru, rv := find(uint32(u)), find(v)
			if ru != rv {
				if ru < rv {
					parent[rv] = ru
				} else {
					parent[ru] = rv
				}
			}
		}
	}
	out := make([]uint32, len(adj))
	for i := range out {
		out[i] = find(uint32(i))
	}
	return out
}

func TestConnectedComponentsMatchesUnionFind(t *testing.T) {
	g, adj := randomGraph(13, 300, 350)
	got := ConnectedComponents(g)
	want := refCC(adj)
	// Labels must induce the same partition; our labels are component
	// minima so they should be identical to union-find minima.
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("cc[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestPageRank(t *testing.T) {
	// On a cycle (regular graph) PageRank is uniform.
	const n = 50
	var edges []aspen.Edge
	for i := uint32(0); i < n; i++ {
		edges = append(edges, aspen.Edge{Src: i, Dst: (i + 1) % n})
	}
	g := aspen.NewGraph(ctree.Params{B: 8}).InsertEdges(aspen.MakeUndirected(edges))
	pr := PageRank(g, 1e-10, 100)
	var sum float64
	for _, p := range pr {
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("PageRank sums to %f", sum)
	}
	for i := 1; i < n; i++ {
		if math.Abs(pr[i]-pr[0]) > 1e-9 {
			t.Fatalf("non-uniform rank on a cycle: pr[%d]=%g pr[0]=%g", i, pr[i], pr[0])
		}
	}
}

func TestPageRankHubGetsMoreMass(t *testing.T) {
	// A star: the hub must outrank the leaves.
	var edges []aspen.Edge
	for i := uint32(1); i <= 20; i++ {
		edges = append(edges, aspen.Edge{Src: 0, Dst: i})
	}
	g := aspen.NewGraph(ctree.Params{B: 8}).InsertEdges(aspen.MakeUndirected(edges))
	pr := PageRank(g, 1e-10, 100)
	if pr[0] <= pr[1] {
		t.Fatalf("hub rank %g <= leaf rank %g", pr[0], pr[1])
	}
}

func TestBFSUnreachableAndOutOfRange(t *testing.T) {
	g, _ := randomGraph(3, 50, 60)
	res := BFS(g, 1<<20, false)
	if res.Visited != 0 {
		t.Fatal("out-of-range source should visit nothing")
	}
	// Isolated vertex: its own component only.
	g2 := aspen.NewGraph(ctree.Params{B: 8}).InsertVertices([]uint32{0, 1})
	r2 := BFS(g2, 0, false)
	if r2.Visited != 1 || r2.Parents[1] != -1 {
		t.Fatal("isolated BFS wrong")
	}
	_ = ligra.Empty(1)
}
