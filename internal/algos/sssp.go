package algos

import (
	"container/heap"
	"math"
	"sync/atomic"

	"repro/internal/ligra"
)

// Single-source shortest paths over the weighted traversal interface: a
// frontier-based Bellman-Ford in the style of Ligra's SSSP, running over
// WeightedEdgeMap so the exact same code serves Aspen's compressed weighted
// snapshots and any other engine exposing ForEachNeighborW. Weights must be
// non-negative (the atomic write-min below relies on the IEEE-754 ordering
// of non-negative float bit patterns).

// Inf is the distance reported for unreachable vertices.
var Inf = float32(math.Inf(1))

// writeMinF32 atomically lowers the float32 stored in bits to d, reporting
// whether it changed the value. For non-negative floats the uint32 bit
// pattern preserves order, so CAS on the bits implements min.
func writeMinF32(bits *atomic.Uint32, d float32) bool {
	db := math.Float32bits(d)
	for {
		cur := bits.Load()
		if db >= cur {
			return false
		}
		if bits.CompareAndSwap(cur, db) {
			return true
		}
	}
}

// SSSP computes shortest-path distances from src over non-negatively
// weighted edges. Bellman-Ford with frontier sparsification: each round
// relaxes only the out-edges of vertices whose distance improved, via
// direction-optimizing WeightedEdgeMap. O(diameter) rounds on
// non-negative inputs; a round cap of |V| guards against pathological
// inputs. Returns +Inf for unreachable vertices.
func SSSP(g ligra.WeightedGraph, src uint32) []float32 {
	n := g.Order()
	dist := make([]atomic.Uint32, n)
	infBits := math.Float32bits(Inf)
	for i := range dist {
		dist[i].Store(infBits)
	}
	out := make([]float32, n)
	if int(src) >= n {
		for i := range out {
			out[i] = Inf
		}
		return out
	}
	dist[src].Store(0)
	// visited dedupes frontier membership within a round by stamping each
	// claimed vertex with the round number: a vertex joins round r's output
	// frontier on the first successful CAS from a stale stamp to r. Stamps
	// from earlier rounds are simply stale, so no per-round reset pass is
	// needed (ROADMAP (f): this drops the VertexMap reset from the hot
	// loop). Stamp 0 means "never claimed"; rounds start at 1.
	visited := make([]atomic.Uint32, n)
	round := uint32(0)
	frontier := ligra.FromVertex(n, src)
	relax := func(s, d uint32, w float32) bool {
		nd := math.Float32frombits(dist[s].Load()) + w
		if writeMinF32(&dist[d], nd) {
			for {
				cur := visited[d].Load()
				if cur == round {
					return false
				}
				if visited[d].CompareAndSwap(cur, round) {
					return true
				}
			}
		}
		return false
	}
	cond := func(uint32) bool { return true }
	for rounds := 0; !frontier.IsEmpty() && rounds < n; rounds++ {
		round++
		frontier = ligra.WeightedEdgeMap(g, frontier, relax, cond, ligra.EdgeMapOpts{})
	}
	for i := range out {
		out[i] = math.Float32frombits(dist[i].Load())
	}
	return out
}

// pqItem is a Dijkstra priority-queue entry.
type pqItem struct {
	v    uint32
	dist float32
}

type ssspPQ []pqItem

func (p ssspPQ) Len() int           { return len(p) }
func (p ssspPQ) Less(i, j int) bool { return p[i].dist < p[j].dist }
func (p ssspPQ) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *ssspPQ) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *ssspPQ) Pop() any          { old := *p; it := old[len(old)-1]; *p = old[:len(old)-1]; return it }

// DijkstraRef is the sequential reference implementation used to validate
// SSSP in tests (and as a baseline in benchmarks). Same contract as SSSP.
func DijkstraRef(g ligra.WeightedGraph, src uint32) []float32 {
	n := g.Order()
	dist := make([]float32, n)
	for i := range dist {
		dist[i] = Inf
	}
	if int(src) >= n {
		return dist
	}
	dist[src] = 0
	pq := &ssspPQ{{v: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if it.dist > dist[it.v] {
			continue
		}
		g.ForEachNeighborW(it.v, func(u uint32, w float32) bool {
			if nd := it.dist + w; nd < dist[u] {
				dist[u] = nd
				heap.Push(pq, pqItem{v: u, dist: nd})
			}
			return true
		})
	}
	return dist
}
