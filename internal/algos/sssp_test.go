package algos

import (
	"sync/atomic"
	"testing"

	"repro/internal/aspen"
	"repro/internal/ligra"
	"repro/internal/rmat"
	"repro/internal/xhash"
)

// symWeight derives a deterministic symmetric weight for an undirected
// edge, so both directions of the symmetrized batch agree.
func symWeight(u, v uint32) float32 {
	lo, hi := u, v
	if lo > hi {
		lo, hi = hi, lo
	}
	return 0.5 + float32(xhash.Mix32(lo^hi*0x9e3779b9)%1000)/100
}

func weightedRMATGraph(scale int, m uint64, seed uint64) aspen.WeightedGraph {
	gen := rmat.NewGenerator(scale, seed)
	edges := gen.Edges(0, m)
	batch := make([]aspen.WeightedEdge, 0, 2*len(edges))
	for _, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		w := symWeight(e.Src, e.Dst)
		batch = append(batch,
			aspen.WeightedEdge{Src: e.Src, Dst: e.Dst, Weight: w},
			aspen.WeightedEdge{Src: e.Dst, Dst: e.Src, Weight: w})
	}
	return aspen.NewWeightedGraph().InsertEdges(batch)
}

func distancesMatch(t *testing.T, got, want []float32, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for v := range got {
		d, r := got[v], want[v]
		if d == r {
			continue
		}
		// Float addition order differs between the parallel relaxation and
		// the sequential reference; allow tiny drift.
		diff := d - r
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-3*(1+r) {
			t.Fatalf("%s: dist[%d] = %v, want %v", what, v, d, r)
		}
	}
}

// TestSSSPMatchesDijkstraRMAT is the acceptance test: Bellman-Ford over
// the weighted EdgeMap must agree with the Dijkstra reference on rMAT
// inputs at several scales and sources.
func TestSSSPMatchesDijkstraRMAT(t *testing.T) {
	for _, cfg := range []struct {
		scale int
		m     uint64
		seed  uint64
	}{
		{8, 1 << 11, 1},
		{10, 1 << 13, 2},
		{12, 1 << 15, 3},
	} {
		g := weightedRMATGraph(cfg.scale, cfg.m, cfg.seed)
		for _, src := range []uint32{0, 1, 1 << (cfg.scale - 1)} {
			got := SSSP(g, src)
			want := DijkstraRef(g, src)
			distancesMatch(t, got, want, "rmat")
		}
	}
}

func TestSSSPSmallHandmade(t *testing.T) {
	// 0 --4-- 1 --3-- 2
	//  \             /
	//   10 -- 3 -- 2     (0-3 weight 10, 3-2 weight 2)
	batch := aspen.MakeUndirectedWeighted([]aspen.WeightedEdge{
		{Src: 0, Dst: 1, Weight: 4},
		{Src: 1, Dst: 2, Weight: 3},
		{Src: 0, Dst: 3, Weight: 10},
		{Src: 2, Dst: 3, Weight: 2},
	})
	g := aspen.NewWeightedGraph().InsertEdges(batch)
	dist := SSSP(g, 0)
	want := []float32{0, 4, 7, 9}
	for v, w := range want {
		if dist[v] != w {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], w)
		}
	}
	// Unreachable vertices report +Inf.
	g2 := g.InsertEdges([]aspen.WeightedEdge{{Src: 7, Dst: 8, Weight: 1}, {Src: 8, Dst: 7, Weight: 1}})
	dist2 := SSSP(g2, 0)
	if dist2[7] != Inf || dist2[8] != Inf {
		t.Fatalf("disconnected component got finite distance: %v, %v", dist2[7], dist2[8])
	}
	if dist2[3] != 9 {
		t.Fatalf("dist2[3] = %v", dist2[3])
	}
}

// TestSSSPStampReclaim exercises the stamp-based visited array across many
// rounds: a long unit-weight chain forces one round per hop, and a heavy
// shortcut to the chain's tail makes the tail claimed in round 1 and then
// re-claimed (improved) in the final round — a CAS from a stale stamp many
// epochs old.
func TestSSSPStampReclaim(t *testing.T) {
	const k = 200
	var edges []aspen.WeightedEdge
	for i := uint32(0); i < k; i++ {
		edges = append(edges, aspen.WeightedEdge{Src: i, Dst: i + 1, Weight: 1})
	}
	edges = append(edges, aspen.WeightedEdge{Src: 0, Dst: k, Weight: 2 * k})
	g := aspen.NewWeightedGraph().InsertEdges(aspen.MakeUndirectedWeighted(edges))
	dist := SSSP(g, 0)
	for i := uint32(0); i <= k; i++ {
		if dist[i] != float32(i) {
			t.Fatalf("dist[%d] = %v, want %d", i, dist[i], i)
		}
	}
}

func TestSSSPNoDenseMatchesDense(t *testing.T) {
	// The direction-optimized and sparse-only traversals must agree; drive
	// the dense path by querying a hub-heavy graph from the hub.
	g := weightedRMATGraph(9, 1<<13, 9)
	got := SSSP(g, 0)
	want := DijkstraRef(g, 0)
	distancesMatch(t, got, want, "dense-vs-ref")
}

// TestWeightedEdgeMapVisitsAllEdges sanity-checks the weighted traversal
// primitive directly: one hop from a full frontier touches every edge once
// per direction.
func TestWeightedEdgeMapVisitsAllEdges(t *testing.T) {
	g := weightedRMATGraph(8, 1<<10, 4)
	n := g.Order()
	all := make([]uint32, 0, n)
	for v := 0; v < n; v++ {
		if g.Degree(uint32(v)) > 0 {
			all = append(all, uint32(v))
		}
	}
	var visited atomic.Int64
	ligra.WeightedEdgeMap(g, ligra.FromSparse(n, all),
		func(_, _ uint32, w float32) bool {
			if w <= 0 {
				t.Error("non-positive weight delivered")
			}
			visited.Add(1)
			return false
		},
		func(uint32) bool { return true },
		ligra.EdgeMapOpts{NoDense: true})
	if visited.Load() != int64(g.NumEdges()) {
		t.Fatalf("visited %d edges, want %d", visited.Load(), g.NumEdges())
	}
}
