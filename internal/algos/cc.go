package algos

import (
	"sync/atomic"

	"repro/internal/ligra"
	"repro/internal/parallel"
)

// ConnectedComponents labels every vertex with the minimum vertex id of its
// component via parallel label propagation (an extension beyond the paper's
// five benchmark algorithms, exercising dense iteration). Vertices absent
// from the graph label themselves.
func ConnectedComponents(g ligra.Graph) []uint32 {
	n := g.Order()
	labels := make([]uint32, n)
	parallel.For(n, func(i int) { labels[i] = uint32(i) })
	for {
		var changed atomic.Bool
		parallel.ForGrain(n, 256, func(i int) {
			v := uint32(i)
			m := atomic.LoadUint32(&labels[v])
			g.ForEachNeighbor(v, func(u uint32) bool {
				if l := atomic.LoadUint32(&labels[u]); l < m {
					m = l
				}
				return true
			})
			if m < atomic.LoadUint32(&labels[v]) {
				atomic.StoreUint32(&labels[v], m)
				changed.Store(true)
			}
		})
		if !changed.Load() {
			return labels
		}
	}
}

// PageRank runs classic damped power iteration (damping 0.85) until the L1
// change drops below tol or maxIters passes, treating the symmetric neighbor
// lists as both in- and out-edges. Returns the final rank vector, which sums
// to 1 over the id space.
func PageRank(g ligra.Graph, tol float64, maxIters int) []float64 {
	const damping = 0.85
	n := g.Order()
	if n == 0 {
		return nil
	}
	cur := make([]float64, n)
	next := make([]float64, n)
	inv := 1.0 / float64(n)
	parallel.For(n, func(i int) { cur[i] = inv })
	for iter := 0; iter < maxIters; iter++ {
		// Dangling mass (degree-0 ids) is redistributed uniformly.
		var danglingMass float64
		for i := 0; i < n; i++ {
			if g.Degree(uint32(i)) == 0 {
				danglingMass += cur[i]
			}
		}
		base := (1-damping)*inv + damping*danglingMass*inv
		parallel.ForGrain(n, 256, func(i int) {
			v := uint32(i)
			var acc float64
			g.ForEachNeighbor(v, func(u uint32) bool {
				acc += cur[u] / float64(g.Degree(u))
				return true
			})
			next[i] = base + damping*acc
		})
		var delta float64
		for i := 0; i < n; i++ {
			d := next[i] - cur[i]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		cur, next = next, cur
		if delta < tol {
			break
		}
	}
	return cur
}
