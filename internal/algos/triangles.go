package algos

import (
	"sync/atomic"

	"repro/internal/ligra"
	"repro/internal/parallel"
)

// TriangleCount returns the number of triangles in the symmetric graph g
// using the standard rank-ordered merge algorithm from the paper's algorithm
// suite source [25]: for every edge (u, v) with u < v, it sums the size of
// the intersection of N(u) and N(v) restricted to ids greater than v, so
// each triangle is counted exactly once at its smallest vertex. Neighbor
// lists must be sorted (true for Aspen, flat snapshots and CSR engines).
func TriangleCount(g ligra.Graph) uint64 {
	n := g.Order()
	// Materialize sorted adjacency once: the merge-based intersection
	// needs indexed access.
	adj := make([][]uint32, n)
	parallel.ForGrain(n, 64, func(i int) {
		u := uint32(i)
		d := g.Degree(u)
		if d == 0 {
			return
		}
		lst := make([]uint32, 0, d)
		g.ForEachNeighbor(u, func(v uint32) bool {
			lst = append(lst, v)
			return true
		})
		adj[i] = lst
	})
	var total atomic.Uint64
	parallel.ForGrain(n, 16, func(i int) {
		u := uint32(i)
		var local uint64
		for _, v := range adj[i] {
			if v <= u {
				continue
			}
			local += intersectAbove(adj[u], adj[v], v)
		}
		if local > 0 {
			total.Add(local)
		}
	})
	return total.Load()
}

// intersectAbove counts common elements of sorted a and b strictly greater
// than lo.
func intersectAbove(a, b []uint32, lo uint32) uint64 {
	i, j := upper(a, lo), upper(b, lo)
	var count uint64
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// upper returns the index of the first element > lo in sorted a.
func upper(a []uint32, lo uint32) int {
	l, r := 0, len(a)
	for l < r {
		m := (l + r) / 2
		if a[m] <= lo {
			l = m + 1
		} else {
			r = m
		}
	}
	return l
}
