// Package algos implements the paper's algorithm suite (§7: BFS, BC, MIS,
// 2-hop and Local-Cluster) plus connected components and PageRank as
// extensions, all written once against the ligra.Graph interface so they run
// unchanged over Aspen snapshots, flat snapshots and every baseline engine.
package algos

import (
	"math"
	"sync/atomic"
)

// atomicFloats is a float64 array supporting atomic accumulation, stored as
// raw bits so compare-and-swap applies (Ligra's BC uses the same
// fetch-and-add-on-double primitive).
type atomicFloats []uint64

func newAtomicFloats(n int) atomicFloats { return make(atomicFloats, n) }

// Add atomically adds delta to element i.
func (a atomicFloats) Add(i uint32, delta float64) {
	for {
		old := atomic.LoadUint64(&a[i])
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(&a[i], old, new) {
			return
		}
	}
}

// Get reads element i.
func (a atomicFloats) Get(i uint32) float64 {
	return math.Float64frombits(atomic.LoadUint64(&a[i]))
}

// Set stores v into element i (non-atomic contexts only).
func (a atomicFloats) Set(i uint32, v float64) {
	atomic.StoreUint64(&a[i], math.Float64bits(v))
}

// casInt32 claims slot i from expected old to new.
func casInt32(a []int32, i uint32, old, new int32) bool {
	return atomic.CompareAndSwapInt32(&a[i], old, new)
}
