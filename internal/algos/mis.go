package algos

import (
	"sync/atomic"

	"repro/internal/ligra"
	"repro/internal/parallel"
	"repro/internal/xhash"
)

// Vertex states for MIS.
const (
	misUndecided int32 = iota
	misIn
	misOut
)

// MIS computes a maximal independent set with the rootset-based parallel
// greedy algorithm (random priorities; a vertex enters the set when it beats
// every undecided neighbor, its neighbors leave). Deterministic for a fixed
// seed, O(log n) rounds w.h.p. Returns membership flags.
func MIS(g ligra.Graph, seed uint64) []bool {
	n := g.Order()
	status := make([]int32, n)
	prio := make([]uint64, n)
	parallel.For(n, func(i int) {
		prio[i] = xhash.Seeded(seed, uint64(i))<<20 | uint64(i)
	})
	remaining := int64(n)
	for remaining > 0 {
		// Phase 1: decide entrants against a frozen view of status.
		enter := make([]bool, n)
		var entered atomic.Int64
		parallel.ForGrain(n, 256, func(i int) {
			v := uint32(i)
			if atomic.LoadInt32(&status[v]) != misUndecided {
				return
			}
			wins := true
			g.ForEachNeighbor(v, func(u uint32) bool {
				s := atomic.LoadInt32(&status[u])
				if s == misIn || (s == misUndecided && prio[u] < prio[v]) {
					wins = false
					return false
				}
				return true
			})
			if wins {
				enter[v] = true
				entered.Add(1)
			}
		})
		if entered.Load() == 0 {
			// No vertex can win only if the graph is empty of
			// undecided vertices; guard against livelock.
			break
		}
		// Phase 2: commit entrants and retire their neighbors.
		var retired atomic.Int64
		parallel.ForGrain(n, 256, func(i int) {
			v := uint32(i)
			if !enter[v] {
				return
			}
			atomic.StoreInt32(&status[v], misIn)
			retired.Add(1)
			g.ForEachNeighbor(v, func(u uint32) bool {
				if atomic.CompareAndSwapInt32(&status[u], misUndecided, misOut) {
					retired.Add(1)
				}
				return true
			})
		})
		remaining -= retired.Load()
	}
	in := make([]bool, n)
	parallel.For(n, func(i int) { in[i] = status[i] == misIn })
	return in
}
