package algos

import (
	"testing"

	"repro/internal/aspen"
	"repro/internal/ctree"
)

// refKCore peels sequentially with a naive loop.
func refKCore(adj [][]uint32) []uint32 {
	n := len(adj)
	deg := make([]int, n)
	for i := range adj {
		deg[i] = len(adj[i])
	}
	coreness := make([]uint32, n)
	removed := make([]bool, n)
	for k := 0; ; k++ {
		progress := true
		remaining := 0
		for progress {
			progress = false
			for v := 0; v < n; v++ {
				if !removed[v] && deg[v] <= k {
					removed[v] = true
					coreness[v] = uint32(k)
					if deg[v] > 0 || len(adj[v]) > 0 {
						// decrement live neighbors
						for _, u := range adj[v] {
							if !removed[u] {
								deg[u]--
							}
						}
					}
					progress = true
				}
			}
		}
		for v := 0; v < n; v++ {
			if !removed[v] {
				remaining++
			}
		}
		if remaining == 0 {
			return coreness
		}
	}
}

func TestKCoreMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		g, adj := randomGraph(seed+300, 120, 350)
		got := KCore(g)
		want := refKCore(adj)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("seed %d: coreness[%d] = %d, want %d", seed, v, got[v], want[v])
			}
		}
	}
}

func TestKCoreOnClique(t *testing.T) {
	// A (k+1)-clique has coreness k everywhere.
	const k = 7
	var edges []aspen.Edge
	for a := uint32(0); a <= k; a++ {
		for b := a + 1; b <= k; b++ {
			edges = append(edges, aspen.Edge{Src: a, Dst: b})
		}
	}
	g := aspen.NewGraph(ctree.Params{B: 8}).InsertEdges(aspen.MakeUndirected(edges))
	cores := KCore(g)
	for v := uint32(0); v <= k; v++ {
		if cores[v] != k {
			t.Fatalf("coreness[%d] = %d, want %d", v, cores[v], k)
		}
	}
	if MaxCore(cores) != k {
		t.Fatalf("MaxCore = %d", MaxCore(cores))
	}
}

// refTriangles brute-forces over all vertex triples present as edges.
func refTriangles(adj [][]uint32) uint64 {
	has := map[uint64]bool{}
	for u, nbrs := range adj {
		for _, v := range nbrs {
			has[uint64(u)<<32|uint64(v)] = true
		}
	}
	edge := func(a, b uint32) bool { return has[uint64(a)<<32|uint64(b)] }
	var count uint64
	n := len(adj)
	for a := uint32(0); int(a) < n; a++ {
		for b := a + 1; int(b) < n; b++ {
			if !edge(a, b) {
				continue
			}
			for c := b + 1; int(c) < n; c++ {
				if edge(a, c) && edge(b, c) {
					count++
				}
			}
		}
	}
	return count
}

func TestTriangleCountMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		g, adj := randomGraph(seed+400, 60, 250)
		got := TriangleCount(g)
		want := refTriangles(adj)
		if got != want {
			t.Fatalf("seed %d: triangles = %d, want %d", seed, got, want)
		}
	}
}

func TestTriangleCountOnKnownGraphs(t *testing.T) {
	// A triangle plus a pendant edge: exactly one triangle.
	g := aspen.NewGraph(ctree.Params{B: 8}).InsertEdges(aspen.MakeUndirected([]aspen.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}, {Src: 2, Dst: 3},
	}))
	if got := TriangleCount(g); got != 1 {
		t.Fatalf("triangles = %d, want 1", got)
	}
	// K5 has C(5,3) = 10 triangles.
	var edges []aspen.Edge
	for a := uint32(0); a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			edges = append(edges, aspen.Edge{Src: a, Dst: b})
		}
	}
	k5 := aspen.NewGraph(ctree.Params{B: 8}).InsertEdges(aspen.MakeUndirected(edges))
	if got := TriangleCount(k5); got != 10 {
		t.Fatalf("K5 triangles = %d, want 10", got)
	}
}

func TestKCoreEmptyAndIsolated(t *testing.T) {
	g := aspen.NewGraph(ctree.Params{B: 8}).InsertVertices([]uint32{0, 1, 2})
	cores := KCore(g)
	for v, c := range cores {
		if c != 0 {
			t.Fatalf("isolated coreness[%d] = %d", v, c)
		}
	}
}
