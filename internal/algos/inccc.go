package algos

import (
	"sync"

	"repro/internal/ligra"
)

// IncrementalCC maintains the connected components of an evolving
// undirected graph under batched edge updates, so a component query is two
// array reads instead of a label-propagation kernel run — the standing
// sliding-window-connectivity structure the stream layer keeps hot on its
// commit path (stream.AttachIncrementalCC).
//
// Representation: every vertex carries the canonical id of its component
// (label); per canonical id the structure keeps the component's public
// label (minID — the minimum member id, matching ConnectedComponents'
// labeling exactly), its size, and a circular ring threading its members
// (next). Inserts union by relabeling the smaller component's ring —
// amortized O(log n) relabels per vertex over any insert sequence, since a
// vertex is only relabeled when its component at least doubles. Deletes are
// the hard direction for union-find; IncrementalCC confines the damage to
// the components the deleted edges touch: their members (enumerated via the
// rings, never the whole graph) are reset to singletons and re-unioned by
// scanning only their current adjacency, an O(affected-component volume)
// recompute instead of a global kernel run. Batches whose deletes all land
// in small components — the common expiry pattern — cost far below a full
// ConnectedComponents pass; a delete inside a giant component degrades to
// that component's volume, never more.
//
// Methods are safe for one writer (the engine's ingest goroutine) against
// any number of concurrent Component/Labels readers.
type IncrementalCC struct {
	mu    sync.RWMutex
	label []uint32 // vertex → canonical id of its component (a member id)
	minID []uint32 // canonical id → minimum member id (the public label)
	size  []int32  // canonical id → member count
	next  []uint32 // vertex → next member on its component's ring

	unions     uint64 // effective (merging) unions applied
	recomputes uint64 // delete batches that triggered a confined recompute
	reverified uint64 // vertices reset and re-unioned across all recomputes
}

// IncrementalCCStats is a point-in-time view of the maintenance counters:
// merging unions applied, delete-batch recomputes run, and vertices
// reverified (reset + re-unioned) across them. Queries never move any of
// these — the query path runs no kernel.
type IncrementalCCStats struct {
	Unions     uint64 `json:"unions"`
	Recomputes uint64 `json:"recomputes"`
	Reverified uint64 `json:"reverified"`
}

// NewIncrementalCC bootstraps the structure from a snapshot by unioning
// every edge once — O(n + m) — after which maintenance is incremental.
func NewIncrementalCC(g ligra.Graph) *IncrementalCC {
	cc := &IncrementalCC{}
	n := g.Order()
	cc.grow(n)
	for i := 0; i < n; i++ {
		u := uint32(i)
		g.ForEachNeighbor(u, func(v uint32) bool {
			if int(v) >= len(cc.label) {
				cc.grow(int(v) + 1)
			}
			cc.union(u, v)
			return true
		})
	}
	return cc
}

// grow extends the id space to n, adding new ids as singleton components.
// Callers hold the write lock (or own the structure exclusively).
func (cc *IncrementalCC) grow(n int) {
	for u := len(cc.label); u < n; u++ {
		cc.label = append(cc.label, uint32(u))
		cc.minID = append(cc.minID, uint32(u))
		cc.size = append(cc.size, 1)
		cc.next = append(cc.next, uint32(u))
	}
}

// union merges the components of a and b (no-op when already joined) by
// relabeling the smaller ring to the larger's canonical id and splicing the
// rings — the classic relabel-the-smaller-half argument bounds total
// relabel work at O(n log n) over any insert sequence.
func (cc *IncrementalCC) union(a, b uint32) {
	ca, cb := cc.label[a], cc.label[b]
	if ca == cb {
		return
	}
	if cc.size[ca] < cc.size[cb] {
		ca, cb = cb, ca
	}
	m := cb
	for {
		cc.label[m] = ca
		m = cc.next[m]
		if m == cb {
			break
		}
	}
	cc.size[ca] += cc.size[cb]
	if cc.minID[cb] < cc.minID[ca] {
		cc.minID[ca] = cc.minID[cb]
	}
	// Swapping two ring successors concatenates two disjoint circular
	// lists into one.
	cc.next[ca], cc.next[cb] = cc.next[cb], cc.next[ca]
	cc.unions++
}

// ApplyInsertBatch folds a batch of edge insertions in: the id space grows
// to n (the post-commit Order) and each edge unions its endpoints.
// each is called once with the edge visitor; edge direction is irrelevant
// (union is symmetric), so callers may stream either or both directions of
// an undirected batch.
func (cc *IncrementalCC) ApplyInsertBatch(n int, each func(f func(u, v uint32))) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.grow(n)
	each(func(u, v uint32) {
		if m := int(max(u, v)) + 1; m > len(cc.label) {
			cc.grow(m)
		}
		cc.union(u, v)
	})
}

// ApplyDeleteBatch folds a batch of edge deletions in, given the
// post-commit snapshot g: the components touched by any deleted endpoint
// are enumerated via their member rings, reset to singletons, and
// re-unioned by scanning only those members' adjacency in g — no
// edge-existence filtering is needed, because re-union only consumes edges
// present in g, which is exactly the ground truth after the commit. Cost is
// the volume (members + their edges) of the affected components only.
//
// g must be the snapshot with this batch (and any earlier same-commit runs'
// updates) applied; scanning a newer snapshot of the same lineage is also
// correct as long as the interleaving runs are themselves applied in order.
func (cc *IncrementalCC) ApplyDeleteBatch(g ligra.Graph, each func(f func(u, v uint32))) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	// The canonical ids of every component a deleted edge touches. Deleted
	// endpoints beyond the id space were never tracked — nothing to split.
	affected := make(map[uint32]struct{})
	each(func(u, v uint32) {
		if int(u) < len(cc.label) {
			affected[cc.label[u]] = struct{}{}
		}
		if int(v) < len(cc.label) {
			affected[cc.label[v]] = struct{}{}
		}
	})
	if len(affected) == 0 {
		return
	}
	var members []uint32
	for c := range affected {
		m := c
		for {
			members = append(members, m)
			m = cc.next[m]
			if m == c {
				break
			}
		}
	}
	for _, m := range members {
		cc.label[m], cc.minID[m], cc.size[m], cc.next[m] = m, m, 1, m
	}
	for _, m := range members {
		g.ForEachNeighbor(m, func(v uint32) bool {
			if int(v) >= len(cc.label) {
				cc.grow(int(v) + 1)
			}
			cc.union(m, v)
			return true
		})
	}
	cc.recomputes++
	cc.reverified += uint64(len(members))
}

// Component returns u's component label — the minimum vertex id of its
// component, matching ConnectedComponents — in O(1): two array reads under
// a read lock, zero kernel work. Ids beyond the tracked space are their own
// singleton, mirroring ConnectedComponents' treatment of absent vertices.
func (cc *IncrementalCC) Component(u uint32) uint32 {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	if int(u) >= len(cc.label) {
		return u
	}
	return cc.minID[cc.label[u]]
}

// Labels materializes the component labeling over an id space of size n,
// element-for-element comparable with ConnectedComponents(g) for the
// matching snapshot.
func (cc *IncrementalCC) Labels(n int) []uint32 {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	out := make([]uint32, n)
	for i := range out {
		if i < len(cc.label) {
			out[i] = cc.minID[cc.label[i]]
		} else {
			out[i] = uint32(i)
		}
	}
	return out
}

// Stats returns the maintenance counters.
func (cc *IncrementalCC) Stats() IncrementalCCStats {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return IncrementalCCStats{Unions: cc.unions, Recomputes: cc.recomputes, Reverified: cc.reverified}
}
