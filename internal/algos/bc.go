package algos

import (
	"sync/atomic"

	"repro/internal/ligra"
)

// BC computes single-source betweenness-centrality contributions from src
// using the Ligra-style parallel Brandes algorithm the paper evaluates: a
// forward phase counts shortest paths level by level with atomic
// accumulation, and a backward phase propagates dependencies over the level
// structure. Returns the dependency score of every vertex.
func BC(g ligra.Graph, src uint32, noDense bool) []float64 {
	n := g.Order()
	dep := make([]float64, n)
	if int(src) >= n {
		return dep
	}
	numPaths := newAtomicFloats(n)
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	numPaths.Set(src, 1)
	level[src] = 0
	frontier := ligra.FromVertex(n, src)
	levels := [][]uint32{frontier.Sparse()}
	opts := ligra.EdgeMapOpts{NoDense: noDense}
	round := int32(0)
	for !frontier.IsEmpty() {
		round++
		r := round
		// The condition stays true for targets claimed in the current
		// round so that every frontier in-neighbor contributes its path
		// count (Ligra applies the visited marking only after the
		// round; claiming via CAS on the level keeps the output
		// frontier duplicate-free while allowing further adds).
		frontier = ligra.EdgeMap(g, frontier,
			func(u, v uint32) bool {
				numPaths.Add(v, numPaths.Get(u))
				return casInt32(level, v, -1, r)
			},
			func(v uint32) bool {
				l := atomic.LoadInt32(&level[v])
				return l == -1 || l == r
			},
			opts)
		if !frontier.IsEmpty() {
			levels = append(levels, frontier.Sparse())
		}
	}
	// Backward sweep: each vertex pulls dependencies from its successors
	// one level deeper; a vertex's score is written only by its own task,
	// so no atomics are needed.
	for r := len(levels) - 2; r >= 0; r-- {
		lv := ligra.FromSparse(n, levels[r])
		ligra.VertexMap(lv, func(u uint32) {
			var acc float64
			pu := numPaths.Get(u)
			g.ForEachNeighbor(u, func(v uint32) bool {
				if level[v] == int32(r+1) {
					acc += pu / numPaths.Get(v) * (1 + dep[v])
				}
				return true
			})
			dep[u] = acc
		})
	}
	return dep
}
