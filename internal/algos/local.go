package algos

import (
	"sort"
	"sync/atomic"

	"repro/internal/ligra"
)

// TwoHop returns the set of vertices within at most two hops of src
// (excluding src itself), using two sparse edgeMap rounds — the local query
// of §7. It deliberately avoids flat snapshots: local algorithms amortize
// the O(log n) vertex access against the degree (§5.1).
func TwoHop(g ligra.Graph, src uint32) []uint32 {
	n := g.Order()
	if int(src) >= n {
		return nil
	}
	seen := make([]int32, n)
	for i := range seen {
		seen[i] = -1
	}
	seen[src] = 0
	frontier := ligra.FromVertex(n, src)
	var out []uint32
	for hop := int32(1); hop <= 2 && !frontier.IsEmpty(); hop++ {
		frontier = ligra.EdgeMap(g, frontier,
			func(u, v uint32) bool { return casInt32(seen, v, -1, hop) },
			func(v uint32) bool { return atomic.LoadInt32(&seen[v]) == -1 },
			ligra.EdgeMapOpts{NoDense: true})
		out = append(out, frontier.Sparse()...)
	}
	return out
}

// LocalClusterResult is the output of a Nibble run.
type LocalClusterResult struct {
	// Cluster is the best sweep-cut prefix (contains the seed's mass).
	Cluster []uint32
	// Conductance of the returned cluster (cut / min(vol, 2m - vol)).
	Conductance float64
	// Support is the number of vertices touched by the truncated walk.
	Support int
}

// LocalCluster runs the sequential Nibble-Serial local clustering algorithm
// of Spielman-Teng, the paper's second local query (§7, run with eps = 1e-6
// and T = 10): T steps of a truncated lazy random walk from seed, followed by
// a sweep cut over the normalized probabilities.
func LocalCluster(g ligra.Graph, seed uint32, eps float64, T int) LocalClusterResult {
	p := map[uint32]float64{seed: 1}
	for t := 0; t < T; t++ {
		next := make(map[uint32]float64, len(p)*2)
		for v, pv := range p {
			d := g.Degree(v)
			if d == 0 {
				next[v] += pv
				continue
			}
			// Truncation: drop mass below eps*deg(v).
			if pv < eps*float64(d) {
				continue
			}
			next[v] += pv / 2
			share := pv / (2 * float64(d))
			g.ForEachNeighbor(v, func(u uint32) bool {
				next[u] += share
				return true
			})
		}
		p = next
	}
	// Sweep cut by decreasing degree-normalized probability.
	type vp struct {
		v     uint32
		score float64
	}
	order := make([]vp, 0, len(p))
	for v, pv := range p {
		d := g.Degree(v)
		if d == 0 {
			continue
		}
		order = append(order, vp{v, pv / float64(d)})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].score > order[j].score })
	totalVol := float64(g.NumEdges())
	in := map[uint32]bool{}
	var vol, cut float64
	best, bestAt := 2.0, -1
	for i, o := range order {
		d := float64(g.Degree(o.v))
		internal := 0.0
		g.ForEachNeighbor(o.v, func(u uint32) bool {
			if in[u] {
				internal++
			}
			return true
		})
		in[o.v] = true
		vol += d
		cut += d - 2*internal
		denom := vol
		if totalVol-vol < denom {
			denom = totalVol - vol
		}
		if denom <= 0 {
			break
		}
		if phi := cut / denom; phi < best {
			best = phi
			bestAt = i
		}
	}
	res := LocalClusterResult{Conductance: best, Support: len(p)}
	for i := 0; i <= bestAt; i++ {
		res.Cluster = append(res.Cluster, order[i].v)
	}
	return res
}
