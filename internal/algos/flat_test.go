package algos

import (
	"math"
	"slices"
	"testing"

	"repro/internal/aspen"
	"repro/internal/ctree"
	"repro/internal/ligra"
	"repro/internal/rmat"
)

// rmatGraph builds a symmetrized unweighted rMAT graph (self-loops
// dropped) — the same input family the benchmark harness uses.
func rmatGraph(scale int, m, seed uint64) aspen.Graph {
	gen := rmat.NewGenerator(int(scale), seed)
	var batch []aspen.Edge
	for _, e := range gen.Edges(0, m) {
		if e.Src != e.Dst {
			batch = append(batch, e)
		}
	}
	return aspen.NewGraph(ctree.DefaultParams()).InsertEdges(aspen.MakeUndirected(batch))
}

// The flat view must be a drop-in for the tree snapshot under every global
// kernel: same answers, only the access path differs (O(1) array indexing
// vs O(log n) vertex-tree lookups). These are the differential tests the
// §5.1 routing in ligra is gated on.

func TestFlatMatchesTreeBFS(t *testing.T) {
	g := rmatGraph(10, 6_000, 42)
	fs := aspen.BuildFlatSnapshot(g)
	var _ ligra.FlatGraph = fs // the capability EdgeMap routes on
	for _, src := range []uint32{0, 1, 77, 555} {
		for _, noDense := range []bool{false, true} {
			want := BFS(g, src, noDense).Distances()
			got := BFS(fs, src, noDense).Distances()
			if !slices.Equal(got, want) {
				t.Fatalf("BFS(src=%d noDense=%v) differs between flat and tree", src, noDense)
			}
		}
	}
}

func TestFlatMatchesTreeCC(t *testing.T) {
	g := rmatGraph(10, 6_000, 43)
	fs := aspen.BuildFlatSnapshot(g)
	if !slices.Equal(ConnectedComponents(fs), ConnectedComponents(g)) {
		t.Fatal("CC labels differ between flat and tree")
	}
}

func TestFlatMatchesTreeBC(t *testing.T) {
	g := rmatGraph(9, 3_000, 44)
	fs := aspen.BuildFlatSnapshot(g)
	want := BC(g, 2, false)
	got := BC(fs, 2, false)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9*(1+math.Abs(want[v])) {
			t.Fatalf("BC[%d] = %g (flat) vs %g (tree)", v, got[v], want[v])
		}
	}
}

func TestFlatMatchesTreePageRank(t *testing.T) {
	g := rmatGraph(9, 3_000, 45)
	fs := aspen.BuildFlatSnapshot(g)
	want := PageRank(g, 1e-10, 50)
	got := PageRank(fs, 1e-10, 50)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-8*(1+math.Abs(want[v])) {
			t.Fatalf("PageRank[%d] = %g (flat) vs %g (tree)", v, got[v], want[v])
		}
	}
}

func TestFlatMatchesTreeKCore(t *testing.T) {
	g := rmatGraph(10, 6_000, 46)
	fs := aspen.BuildFlatSnapshot(g)
	want := KCore(g)
	got := KCore(fs)
	if !slices.Equal(got, want) {
		t.Fatal("coreness differs between flat and tree")
	}
	if MaxCore(got) != MaxCore(want) {
		t.Fatal("max core differs between flat and tree")
	}
}

func TestFlatMatchesTreeTriangles(t *testing.T) {
	g := rmatGraph(9, 3_000, 47)
	fs := aspen.BuildFlatSnapshot(g)
	if got, want := TriangleCount(fs), TriangleCount(g); got != want {
		t.Fatalf("triangles = %d (flat) vs %d (tree)", got, want)
	}
}

func TestFlatMatchesTreeTwoHop(t *testing.T) {
	g := rmatGraph(9, 3_000, 48)
	fs := aspen.BuildFlatSnapshot(g)
	for _, src := range []uint32{0, 5, 100} {
		want := TwoHop(g, src)
		got := TwoHop(fs, src)
		slices.Sort(want)
		slices.Sort(got)
		if !slices.Equal(got, want) {
			t.Fatalf("TwoHop(%d) differs between flat and tree", src)
		}
	}
}

func TestFlatMISValid(t *testing.T) {
	// MIS is randomized per round but fully determined by (graph, seed);
	// the flat result must be a valid MIS of the same graph, and equal to
	// the tree result since the kernel is deterministic for a fixed seed.
	g := rmatGraph(9, 3_000, 49)
	fs := aspen.BuildFlatSnapshot(g)
	got := MIS(fs, 42)
	want := MIS(g, 42)
	if !slices.Equal(got, want) {
		t.Fatal("MIS differs between flat and tree for the same seed")
	}
	for u := range got {
		if !got[u] {
			continue
		}
		fs.ForEachNeighbor(uint32(u), func(v uint32) bool {
			if got[v] {
				t.Fatalf("adjacent %d and %d both in MIS", u, v)
			}
			return true
		})
	}
}

func TestFlatWeightedMatchesTreeSSSP(t *testing.T) {
	wg := weightedRMATGraph(10, 6_000, 7)
	fw := aspen.BuildFlatWeightedSnapshot(wg)
	var _ ligra.FlatWeightedGraph = fw
	for _, src := range []uint32{0, 3, 200} {
		want := SSSP(wg, src)
		got := SSSP(fw, src)
		distancesMatch(t, got, want, "flat vs tree SSSP")
		distancesMatch(t, got, DijkstraRef(fw, src), "flat SSSP vs Dijkstra")
	}
}

func TestFlatWeightedMatchesTreeUnweightedKernels(t *testing.T) {
	// The weighted flat view also serves unweighted kernels (weights
	// dropped), exactly like the weighted tree graph does.
	wg := weightedRMATGraph(9, 3_000, 8)
	fw := aspen.BuildFlatWeightedSnapshot(wg)
	if !slices.Equal(BFS(fw, 1, false).Distances(), BFS(wg, 1, false).Distances()) {
		t.Fatal("BFS differs between weighted flat and weighted tree")
	}
	if !slices.Equal(ConnectedComponents(fw), ConnectedComponents(wg)) {
		t.Fatal("CC differs between weighted flat and weighted tree")
	}
}
