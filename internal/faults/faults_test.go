package faults

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestRegistrySkipAndTimes(t *testing.T) {
	var r Registry
	if err := r.Hit("x"); err != nil {
		t.Fatalf("unarmed hit: %v", err)
	}
	r.Set("x", 2, 3, nil)
	for i := 0; i < 2; i++ {
		if err := r.Hit("x"); err != nil {
			t.Fatalf("skip hit %d fired: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := r.Hit("x"); !errors.Is(err, ErrInjected) {
			t.Fatalf("armed hit %d: %v", i, err)
		}
	}
	if err := r.Hit("x"); err != nil {
		t.Fatalf("exhausted point fired: %v", err)
	}
	if err := r.Hit("other"); err != nil {
		t.Fatalf("unrelated point fired: %v", err)
	}
}

func TestRegistryForeverAndClear(t *testing.T) {
	var r Registry
	want := errors.New("boom")
	r.Set("y", 0, -1, want)
	for i := 0; i < 10; i++ {
		if err := r.Hit("y"); !errors.Is(err, want) {
			t.Fatalf("forever hit %d: %v", i, err)
		}
	}
	r.Clear("y")
	if err := r.Hit("y"); err != nil {
		t.Fatalf("cleared point fired: %v", err)
	}
	if r.armed.Load() != 0 {
		t.Fatalf("armed count %d after clear", r.armed.Load())
	}
}

// echoListener accepts connections and copies every byte back.
func echoListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(nc, nc); nc.Close() }()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func dialVia(t *testing.T, tr *Transport, addr string) net.Conn {
	t.Helper()
	nc, err := tr.Dialer(nil)("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return nc
}

func TestTransportEchoAndDuplicate(t *testing.T) {
	ln := echoListener(t)
	tr := NewTransport()
	nc := dialVia(t, tr, ln.Addr().String())
	defer nc.Close()

	msg := []byte("hello")
	if _, err := nc.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(nc, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("echo %q, want %q", buf, msg)
	}

	tr.DuplicateNext(1)
	if _, err := nc.Write(msg); err != nil {
		t.Fatal(err)
	}
	dup := make([]byte, 2*len(msg))
	if _, err := io.ReadFull(nc, dup); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dup, append(append([]byte(nil), msg...), msg...)) {
		t.Fatalf("duplicated echo %q", dup)
	}
}

func TestTransportDropKillsConn(t *testing.T) {
	ln := echoListener(t)
	tr := NewTransport()
	nc := dialVia(t, tr, ln.Addr().String())
	defer nc.Close()

	tr.DropNext(1)
	if _, err := nc.Write([]byte("lost")); err != nil {
		t.Fatalf("dropped write must report success, got %v", err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := nc.Read(make([]byte, 1)); err == nil {
		t.Fatal("conn survived a dropped write")
	}
	if _, drops, _, _ := tr.Stats(); drops != 1 {
		t.Fatalf("drops = %d, want 1", drops)
	}
}

func TestTransportPartition(t *testing.T) {
	ln := echoListener(t)
	tr := NewTransport()
	nc := dialVia(t, tr, ln.Addr().String())
	defer nc.Close()

	tr.Partition(true)
	if _, err := tr.Dialer(nil)("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("dial succeeded during partition")
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := nc.Read(make([]byte, 1)); err == nil {
		t.Fatal("live conn survived the partition")
	}
	tr.Partition(false)
	nc2 := dialVia(t, tr, ln.Addr().String())
	nc2.Close()
}

func TestTransportConcurrentFaults(t *testing.T) {
	ln := echoListener(t)
	tr := NewTransport()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			nc, err := tr.Dialer(nil)("tcp", ln.Addr().String(), time.Second)
			if err != nil {
				return
			}
			nc.Write([]byte("x"))
			nc.Close()
		}()
	}
	for i := 0; i < 4; i++ {
		tr.DropNext(1)
		tr.KillAll()
	}
	wg.Wait()
}
