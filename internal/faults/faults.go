// Package faults is the fault-injection toolkit behind the distributed
// layer's chaos tests: a failpoint registry consulted at named sites in
// production code (free when nothing is armed) and a Transport that
// wraps dialed net.Conns with scriptable drop / delay / duplicate /
// truncate / partition faults. Production code only ever calls Hit at
// a handful of named points; everything else lives in tests.
package faults

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error an armed failpoint returns.
var ErrInjected = errors.New("faults: injected failure")

// point is one armed failpoint: skip hits pass through first, then
// remaining hits fire (negative: forever).
type point struct {
	skip      int
	remaining int
	err       error
}

// Registry holds armed failpoints by name. The zero value is ready to
// use; Hit on an empty registry is one atomic load.
type Registry struct {
	armed  atomic.Int32
	mu     sync.Mutex
	points map[string]*point
}

// Default is the process-wide registry production call sites consult.
var Default = &Registry{}

// Set arms a failpoint: the first skip hits pass, the next times hits
// return err (ErrInjected when err is nil; times < 0 fires forever).
func (r *Registry) Set(name string, skip, times int, err error) {
	if err == nil {
		err = ErrInjected
	}
	r.mu.Lock()
	if r.points == nil {
		r.points = make(map[string]*point)
	}
	if _, exists := r.points[name]; !exists {
		r.armed.Add(1)
	}
	r.points[name] = &point{skip: skip, remaining: times, err: err}
	r.mu.Unlock()
}

// Clear disarms one failpoint.
func (r *Registry) Clear(name string) {
	r.mu.Lock()
	if _, exists := r.points[name]; exists {
		delete(r.points, name)
		r.armed.Add(-1)
	}
	r.mu.Unlock()
}

// ClearAll disarms everything.
func (r *Registry) ClearAll() {
	r.mu.Lock()
	r.armed.Add(-int32(len(r.points)))
	r.points = nil
	r.mu.Unlock()
}

// ArmedCount returns how many failpoints are currently armed — the
// observability layer's aspen_faults_armed gauge, so a scrape of a
// production process can prove no chaos hooks were left set. One
// atomic load.
func (r *Registry) ArmedCount() int { return int(r.armed.Load()) }

// Hit consults a named failpoint, returning its error when it fires.
// The unarmed fast path is a single atomic load.
func (r *Registry) Hit(name string) error {
	if r.armed.Load() == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.points[name]
	if p == nil {
		return nil
	}
	if p.skip > 0 {
		p.skip--
		return nil
	}
	if p.remaining == 0 {
		return nil
	}
	if p.remaining > 0 {
		p.remaining--
	}
	return p.err
}

// Hit consults the Default registry.
func Hit(name string) error { return Default.Hit(name) }

// Set arms a failpoint on the Default registry.
func Set(name string, skip, times int, err error) { Default.Set(name, skip, times, err) }

// Clear disarms a Default-registry failpoint.
func Clear(name string) { Default.Clear(name) }

// Transport manufactures faulty connections for chaos tests: Dialer
// wraps a real dial function, and every connection it returns registers
// with the transport so partitions and kills reach live traffic, not
// just future dials. Write-level faults (drop / duplicate / truncate)
// act on whole flushes, which is exactly the granularity a bufio-backed
// rpc client writes frames at.
type Transport struct {
	mu          sync.Mutex
	conns       map[*faultConn]struct{}
	partitioned bool
	delay       time.Duration
	dropNext    int // swallow the write, kill the conn
	dupNext     int // write the bytes twice
	truncNext   int // write a prefix, kill the conn

	dials, drops, dups, truncs atomic.Uint64
}

// NewTransport returns an empty (fault-free) transport.
func NewTransport() *Transport {
	return &Transport{conns: make(map[*faultConn]struct{})}
}

// Dialer wraps inner so every dialed connection routes its writes
// through the transport's fault schedule. A nil inner uses
// net.DialTimeout.
func (t *Transport) Dialer(inner func(network, addr string, timeout time.Duration) (net.Conn, error)) func(network, addr string, timeout time.Duration) (net.Conn, error) {
	if inner == nil {
		inner = net.DialTimeout
	}
	return func(network, addr string, timeout time.Duration) (net.Conn, error) {
		t.mu.Lock()
		parted := t.partitioned
		t.mu.Unlock()
		if parted {
			return nil, errors.New("faults: partitioned")
		}
		nc, err := inner(network, addr, timeout)
		if err != nil {
			return nil, err
		}
		fc := &faultConn{Conn: nc, t: t}
		t.mu.Lock()
		if t.partitioned { // raced with Partition(true)
			t.mu.Unlock()
			nc.Close()
			return nil, errors.New("faults: partitioned")
		}
		t.conns[fc] = struct{}{}
		t.mu.Unlock()
		t.dials.Add(1)
		return fc, nil
	}
}

// Partition switches the partition on or off: while on, new dials are
// refused and every live connection is severed.
func (t *Transport) Partition(on bool) {
	t.mu.Lock()
	t.partitioned = on
	var victims []*faultConn
	if on {
		for fc := range t.conns {
			victims = append(victims, fc)
		}
	}
	t.mu.Unlock()
	for _, fc := range victims {
		fc.Conn.Close()
	}
}

// KillAll severs every live connection without blocking future dials —
// connection churn rather than a partition.
func (t *Transport) KillAll() {
	t.mu.Lock()
	victims := make([]*faultConn, 0, len(t.conns))
	for fc := range t.conns {
		victims = append(victims, fc)
	}
	t.mu.Unlock()
	for _, fc := range victims {
		fc.Conn.Close()
	}
}

// Delay makes every subsequent write sleep d first (0 clears).
func (t *Transport) Delay(d time.Duration) {
	t.mu.Lock()
	t.delay = d
	t.mu.Unlock()
}

// DropNext schedules the next n writes to be silently swallowed — the
// writer sees success, the peer sees the connection die. The lost-write
// shape of an ack that never arrives.
func (t *Transport) DropNext(n int) {
	t.mu.Lock()
	t.dropNext += n
	t.mu.Unlock()
}

// DuplicateNext schedules the next n writes to be sent twice — the
// double-delivery shape that exercises server-side dedup.
func (t *Transport) DuplicateNext(n int) {
	t.mu.Lock()
	t.dupNext += n
	t.mu.Unlock()
}

// TruncateNext schedules the next n writes to deliver only a prefix
// before the connection dies — a torn frame on the peer's wire.
func (t *Transport) TruncateNext(n int) {
	t.mu.Lock()
	t.truncNext += n
	t.mu.Unlock()
}

// ClearScheduled drops any not-yet-consumed one-shot write faults —
// the deterministic end of a test's fault phase.
func (t *Transport) ClearScheduled() {
	t.mu.Lock()
	t.dropNext, t.dupNext, t.truncNext = 0, 0, 0
	t.mu.Unlock()
}

// Stats returns (dials, drops, duplicates, truncations) so far.
func (t *Transport) Stats() (dials, drops, dups, truncs uint64) {
	return t.dials.Load(), t.drops.Load(), t.dups.Load(), t.truncs.Load()
}

type faultAction int

const (
	actPass faultAction = iota
	actDrop
	actDup
	actTrunc
)

// faultConn routes writes through the owning transport's schedule.
type faultConn struct {
	net.Conn
	t *Transport
}

func (c *faultConn) Write(p []byte) (int, error) {
	t := c.t
	t.mu.Lock()
	delay := t.delay
	act := actPass
	switch {
	case t.dropNext > 0:
		t.dropNext--
		act = actDrop
	case t.truncNext > 0:
		t.truncNext--
		act = actTrunc
	case t.dupNext > 0:
		t.dupNext--
		act = actDup
	}
	t.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	switch act {
	case actDrop:
		t.drops.Add(1)
		c.Conn.Close()
		// Report success: the writer believes the bytes went out, the
		// way a kernel buffer accepts a write the peer never sees.
		return len(p), nil
	case actTrunc:
		t.truncs.Add(1)
		c.Conn.Write(p[:len(p)/2])
		c.Conn.Close()
		return len(p), nil
	case actDup:
		t.dups.Add(1)
		if n, err := c.Conn.Write(p); err != nil {
			return n, err
		}
		c.Conn.Write(p) // best-effort second copy
		return len(p), nil
	default:
		return c.Conn.Write(p)
	}
}

func (c *faultConn) Close() error {
	c.t.mu.Lock()
	delete(c.t.conns, c)
	c.t.mu.Unlock()
	return c.Conn.Close()
}
