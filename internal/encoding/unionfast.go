package encoding

import "encoding/binary"

// This file holds the specialized chunk-union kernels behind UnionKV —
// ROADMAP items (b) and (h). The generic streaming merge (unionKVGeneric in
// kv.go) pays an out-of-line IterKV.Next/Builder.AppendKV call per element;
// these kernels open-code the same two-pointer merge against the byte
// layout directly:
//
//   - Raw–Raw (unionRawKV): elements are fixed-stride words, so every
//     maximal run of one side that falls strictly below the other side's
//     next element is located by binary search and copied word-wise with
//     one memmove — per-element work only remains on genuinely interleaved
//     ranges, and the disjoint-at-the-Raw-level case degenerates to two
//     block copies.
//   - Delta–Delta (unionDeltaKV): the hottest merge loop of the batch-update
//     path (every MultiInsert tail union lands here under the default
//     params). Gap decoding, payload copy and output encoding are inlined
//     into one loop with no iterator or builder method calls; kept gaps are
//     re-emitted as bytes when the predecessor element is unchanged.
//
// The generic path remains the reference implementation: differential and
// fuzz tests (TestUnionFastMatchesGeneric, FuzzStreamingSetOps) hold the
// kernels byte-for-byte equal to it.

// unionRawKV merges two non-empty, range-overlapping Raw chunks.
func unionRawKV[V Value](a, b Chunk, merge func(av, bv V) V) Chunk {
	w := valueWidth[V]()
	stride := 4 + w
	an, bn := a.Count(), b.Count()
	out := make(Chunk, headerSize, len(a)+len(b)-headerSize)
	n := 0
	var last uint32
	ai, bi := 0, 0
	for ai < an && bi < bn {
		av := binary.LittleEndian.Uint32(a[headerSize+stride*ai:])
		bv := binary.LittleEndian.Uint32(b[headerSize+stride*bi:])
		switch {
		case av < bv:
			// Copy a's entire run below bv word-wise.
			j := rawLowerBound(a, stride, ai+1, an, bv)
			out = append(out, a[headerSize+stride*ai:headerSize+stride*j]...)
			n += j - ai
			last = binary.LittleEndian.Uint32(a[headerSize+stride*(j-1):])
			ai = j
		case bv < av:
			j := rawLowerBound(b, stride, bi+1, bn, av)
			out = append(out, b[headerSize+stride*bi:headerSize+stride*j]...)
			n += j - bi
			last = binary.LittleEndian.Uint32(b[headerSize+stride*(j-1):])
			bi = j
		default:
			out = binary.LittleEndian.AppendUint32(out, av)
			if w != 0 {
				if merge != nil {
					out = appendValue(out, merge(
						readValue[V](a[headerSize+stride*ai+4:]),
						readValue[V](b[headerSize+stride*bi+4:])))
				} else {
					out = append(out, b[headerSize+stride*bi+4:headerSize+stride*(bi+1)]...)
				}
			}
			n++
			last = av
			ai++
			bi++
		}
	}
	if ai < an {
		out = append(out, a[headerSize+stride*ai:]...)
		n += an - ai
		last = a.Last()
	} else if bi < bn {
		out = append(out, b[headerSize+stride*bi:]...)
		n += bn - bi
		last = b.Last()
	}
	binary.LittleEndian.PutUint32(out[0:4], uint32(n))
	binary.LittleEndian.PutUint32(out[4:8], min(a.First(), b.First()))
	binary.LittleEndian.PutUint32(out[8:12], last)
	return out
}

// rawLowerBound returns the first index in [lo, hi) whose element is >= key.
func rawLowerBound(c Chunk, stride, lo, hi int, key uint32) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if binary.LittleEndian.Uint32(c[headerSize+stride*mid:]) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// deltaCursor is the open-coded iteration state of one Delta input: the
// current element's id, the offset of its value bytes, and the offset of
// the gap code that follows them.
type deltaCursor struct {
	cur    uint32
	valOff int
	rem    int
}

// advance moves to the next element (rem must be > 1 before the call).
func (d *deltaCursor) advance(c Chunk, w int) {
	g, off := uvarint(c, d.valOff+w)
	d.cur += g
	d.valOff = off
	d.rem--
}

// unionDeltaKV merges two non-empty, range-overlapping Delta chunks.
func unionDeltaKV[V Value](a, b Chunk, merge func(av, bv V) V) Chunk {
	w := valueWidth[V]()
	buf := bytePool.Get().(*[]byte)
	defer bytePool.Put(buf)
	var hdr [headerSize]byte
	out := append((*buf)[:0], hdr[:]...)

	ac := deltaCursor{cur: a.First(), valOff: headerSize, rem: a.Count()}
	bc := deltaCursor{cur: b.First(), valOff: headerSize, rem: b.Count()}
	n := 0
	var first, last uint32
	// emit appends one element (id gap + value bytes copied from src at
	// valOff) to the output encoding.
	emit := func(id uint32, src Chunk, valOff int) {
		if n == 0 {
			first = id
		} else {
			out = putUvarint(out, id-last)
		}
		if w != 0 {
			out = append(out, src[valOff:valOff+w]...)
		}
		last = id
		n++
	}
	for ac.rem > 0 && bc.rem > 0 {
		switch {
		case ac.cur < bc.cur:
			emit(ac.cur, a, ac.valOff)
			if ac.rem == 1 {
				ac.rem = 0
			} else {
				ac.advance(a, w)
			}
		case bc.cur < ac.cur:
			emit(bc.cur, b, bc.valOff)
			if bc.rem == 1 {
				bc.rem = 0
			} else {
				bc.advance(b, w)
			}
		default:
			id := ac.cur
			if n == 0 {
				first = id
			} else {
				out = putUvarint(out, id-last)
			}
			if w != 0 {
				if merge != nil {
					out = appendValue(out, merge(readValue[V](a[ac.valOff:]), readValue[V](b[bc.valOff:])))
				} else {
					out = append(out, b[bc.valOff:bc.valOff+w]...)
				}
			}
			last = id
			n++
			if ac.rem == 1 {
				ac.rem = 0
			} else {
				ac.advance(a, w)
			}
			if bc.rem == 1 {
				bc.rem = 0
			} else {
				bc.advance(b, w)
			}
		}
	}
	// Drain: a chunk suffix starting at an element boundary is byte-copyable
	// (gaps are position-independent, value bytes fixed-width), so the
	// remainder is one bridging gap plus a memcpy.
	drain := func(c Chunk, dc *deltaCursor, clast uint32) {
		if dc.rem <= 0 {
			return
		}
		if n == 0 {
			first = dc.cur
		} else {
			out = putUvarint(out, dc.cur-last)
		}
		// The current element's value bytes sit at valOff and the rest of
		// the encoding follows them contiguously: one copy drains both.
		out = append(out, c[dc.valOff:]...)
		n += dc.rem
		last = clast
		dc.rem = 0
	}
	drain(a, &ac, a.Last())
	drain(b, &bc, b.Last())

	binary.LittleEndian.PutUint32(out[0:4], uint32(n))
	binary.LittleEndian.PutUint32(out[4:8], first)
	binary.LittleEndian.PutUint32(out[8:12], last)
	res := make(Chunk, len(out))
	copy(res, out)
	*buf = out[:0]
	return res
}
