package encoding

import "encoding/binary"

// This file is the generic core of the chunk format: every operation is
// parameterized by a fixed-width payload type V (see value.go). The byte
// layout interleaves ids and values so one forward scan visits both:
//
//	Raw:   header | id₀ val₀ | id₁ val₁ | ...
//	Delta: header | val₀ | gap₁ val₁ | gap₂ val₂ | ...
//
// (gapᵢ is the varint-coded difference idᵢ − idᵢ₋₁; id₀ lives in the
// header). With width(V) = 0 both layouts are byte-identical to the PR-1
// id-only format, so the unweighted wrappers in chunk.go are free.
//
// Two properties of the PR-1 pipeline are preserved because value bytes are
// fixed-width and delta gaps are position-independent:
//
//   - any chunk suffix starting at an element boundary is byte-copyable
//     (the memcpy drain in IterKV.AppendRemaining);
//   - disjoint-range concatenation is a byte splice plus, for Delta, one
//     bridging gap varint (concatDisjoint).

// EncodeKV builds a chunk from ids (strictly increasing) and their values.
// vals must have the same length as ids, or be nil to encode zero values.
// Neither slice is retained.
func EncodeKV[V Value](codec Codec, ids []uint32, vals []V) Chunk {
	n := len(ids)
	if n == 0 {
		return nil
	}
	if vals != nil && len(vals) != n {
		panic("encoding: ids/vals length mismatch")
	}
	w := valueWidth[V]()
	var c []byte
	switch {
	case codec == Raw && w == 0:
		c = make([]byte, headerSize+4*n)
		for i, e := range ids {
			binary.LittleEndian.PutUint32(c[headerSize+4*i:], e)
		}
	case codec == Raw:
		c = make([]byte, headerSize, headerSize+(4+w)*n)
		for i, e := range ids {
			c = binary.LittleEndian.AppendUint32(c, e)
			c = appendValue(c, valAt(vals, i))
		}
	case codec == Delta && w == 0:
		c = make([]byte, headerSize, headerSize+n+n/2)
		prev := ids[0]
		for _, e := range ids[1:] {
			c = putUvarint(c, e-prev)
			prev = e
		}
	case codec == Delta:
		c = make([]byte, headerSize, headerSize+n+n/2+w*n)
		c = appendValue(c, valAt(vals, 0))
		prev := ids[0]
		for i := 1; i < n; i++ {
			c = putUvarint(c, ids[i]-prev)
			prev = ids[i]
			c = appendValue(c, valAt(vals, i))
		}
	default:
		panic("encoding: unknown codec")
	}
	binary.LittleEndian.PutUint32(c[0:4], uint32(n))
	binary.LittleEndian.PutUint32(c[4:8], ids[0])
	binary.LittleEndian.PutUint32(c[8:12], ids[n-1])
	return c
}

// DecodeKV appends the ids and values of c to the given slices and returns
// them. Intended for tests and invariant checks; hot paths use IterKV.
func DecodeKV[V Value](codec Codec, c Chunk, ids []uint32, vals []V) ([]uint32, []V) {
	for it := NewIterKV[V](codec, c); it.Valid(); it.Next() {
		ids = append(ids, it.Value())
		vals = append(vals, it.Payload())
	}
	return ids, vals
}

// ForEachKV calls f on each (id, value) pair of c in increasing id order.
// If f returns false iteration stops early.
func ForEachKV[V Value](codec Codec, c Chunk, f func(x uint32, v V) bool) {
	n := c.Count()
	if n == 0 {
		return
	}
	w := valueWidth[V]()
	switch codec {
	case Raw:
		stride := 4 + w
		for i := 0; i < n; i++ {
			off := headerSize + stride*i
			if !f(binary.LittleEndian.Uint32(c[off:]), readValueAt[V](c, off+4, w)) {
				return
			}
		}
	case Delta:
		v := c.First()
		if !f(v, readValueAt[V](c, headerSize, w)) {
			return
		}
		i := headerSize + w
		for k := 1; k < n; k++ {
			var d uint32
			d, i = uvarint(c, i)
			v += d
			if !f(v, readValueAt[V](c, i, w)) {
				return
			}
			i += w
		}
	default:
		panic("encoding: unknown codec")
	}
}

// ForEachIDs walks only the ids of a width-V chunk — the traversal hot
// path. The per-element work is an open-coded decode (no iterator method
// calls), matching the zero-allocation ForEach of the id-only format.
func ForEachIDs[V Value](codec Codec, c Chunk, f func(x uint32) bool) bool {
	n := c.Count()
	if n == 0 {
		return true
	}
	w := valueWidth[V]()
	switch codec {
	case Raw:
		stride := 4 + w
		for i := 0; i < n; i++ {
			if !f(binary.LittleEndian.Uint32(c[headerSize+stride*i:])) {
				return false
			}
		}
	case Delta:
		v := c.First()
		if !f(v) {
			return false
		}
		i := headerSize + w
		for k := 1; k < n; k++ {
			var d uint32
			d, i = uvarint(c, i)
			i += w
			v += d
			if !f(v) {
				return false
			}
		}
	default:
		panic("encoding: unknown codec")
	}
	return true
}

// FindKV returns the value stored for x. O(1) rejection via the header
// bounds, O(chunk) scan otherwise.
func FindKV[V Value](codec Codec, c Chunk, x uint32) (V, bool) {
	var z V
	if c.Empty() || x < c.First() || x > c.Last() {
		return z, false
	}
	for it := NewIterKV[V](codec, c); it.Valid(); it.Next() {
		if e := it.Value(); e >= x {
			if e == x {
				return it.Payload(), true
			}
			return z, false
		}
	}
	return z, false
}

// ContainsKV reports whether x is an element of c under the payload-aware
// layout.
func ContainsKV[V Value](codec Codec, c Chunk, x uint32) bool {
	_, ok := FindKV[V](codec, c, x)
	return ok
}

// SplitKV partitions c around k: left receives elements < k, right elements
// > k, and (v, found) report k's value and presence. Cheap boundary cases
// avoid decoding entirely; Raw chunks binary-search the fixed-stride payload
// and splice bytes, Delta chunks stream once through the gap code. Neither
// path materializes decoded slices.
func SplitKV[V Value](codec Codec, c Chunk, k uint32) (left Chunk, v V, found bool, right Chunk) {
	var z V
	if c.Empty() {
		return nil, z, false, nil
	}
	if k < c.First() {
		return nil, z, false, c
	}
	if k > c.Last() {
		return c, z, false, nil
	}
	if codec == Raw {
		return splitRawKV[V](c, k)
	}
	return splitDeltaKV[V](c, k)
}

// splitDeltaKV splits a Delta chunk around k (within header bounds) with a
// single forward scan and two byte copies — no re-encoding. The left half is
// a byte-prefix of c (kept gaps and values are unchanged) and the right half
// a byte-suffix starting at an element boundary, so only headers are
// rewritten.
func splitDeltaKV[V Value](c Chunk, k uint32) (left Chunk, fv V, found bool, right Chunk) {
	w := valueWidth[V]()
	n := c.Count()
	v := c.First()
	valOff := headerSize // offset of the current element's value bytes
	i := 0               // index of the current element
	encStart := headerSize
	var pv uint32 // ids[i-1], valid once i > 0
	for v < k {
		// k <= Last() guarantees another element exists.
		pv = v
		gapPos := valOff + w
		encStart = gapPos
		d, ngap := uvarint(c, gapPos)
		v += d
		valOff = ngap
		i++
	}
	// v == ids[i] is the first element >= k; its encoding (for i >= 1)
	// begins at encStart and its value bytes at valOff.
	if i > 0 {
		left = make(Chunk, encStart)
		copy(left, c[:encStart])
		binary.LittleEndian.PutUint32(left[0:4], uint32(i))
		binary.LittleEndian.PutUint32(left[8:12], pv)
	}
	if v == k {
		fv = readValueAt[V](c, valOff, w)
		if i+1 < n {
			d, ngap := uvarint(c, valOff+w)
			right = make(Chunk, headerSize+len(c)-ngap)
			copy(right[headerSize:], c[ngap:])
			binary.LittleEndian.PutUint32(right[0:4], uint32(n-i-1))
			binary.LittleEndian.PutUint32(right[4:8], v+d)
			binary.LittleEndian.PutUint32(right[8:12], c.Last())
		}
		return left, fv, true, right
	}
	right = make(Chunk, headerSize+len(c)-valOff)
	copy(right[headerSize:], c[valOff:])
	binary.LittleEndian.PutUint32(right[0:4], uint32(n-i))
	binary.LittleEndian.PutUint32(right[4:8], v)
	binary.LittleEndian.PutUint32(right[8:12], c.Last())
	var z V
	return left, z, false, right
}

// splitRawKV splits a Raw chunk around k (within header bounds) by binary
// search over the fixed-stride payload, copying each half byte-wise.
func splitRawKV[V Value](c Chunk, k uint32) (left Chunk, fv V, found bool, right Chunk) {
	w := valueWidth[V]()
	stride := 4 + w
	n := c.Count()
	word := func(i int) uint32 { return binary.LittleEndian.Uint32(c[headerSize+stride*i:]) }
	// First index with element >= k.
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if word(mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo
	found = i < n && word(i) == k
	j := i
	if found {
		fv = readValueAt[V](c, headerSize+stride*i+4, w)
		j++
	}
	if i > 0 {
		left = make(Chunk, headerSize+stride*i)
		copy(left[headerSize:], c[headerSize:headerSize+stride*i])
		binary.LittleEndian.PutUint32(left[0:4], uint32(i))
		binary.LittleEndian.PutUint32(left[4:8], c.First())
		binary.LittleEndian.PutUint32(left[8:12], word(i-1))
	}
	if j < n {
		right = make(Chunk, headerSize+stride*(n-j))
		copy(right[headerSize:], c[headerSize+stride*j:])
		binary.LittleEndian.PutUint32(right[0:4], uint32(n-j))
		binary.LittleEndian.PutUint32(right[4:8], word(j))
		binary.LittleEndian.PutUint32(right[8:12], c.Last())
	}
	return left, fv, found, right
}

// readValueAt reads a value of width w at offset off; w == 0 yields the
// zero value without touching c.
func readValueAt[V Value](c Chunk, off, w int) V {
	if w == 0 {
		var z V
		return z
	}
	return readValue[V](c[off:])
}

// UnionKV merges two chunks into a new chunk: one allocation (the result),
// no intermediate decode. For ids present in both, the stored value is
// merge(aVal, bVal); a nil merge keeps b's value (last-writer-wins with b
// as the newer side). Overlapping ranges dispatch to the open-coded
// per-codec kernels in unionfast.go; unionKVGeneric below is the reference
// implementation they are differential-tested against.
func UnionKV[V Value](codec Codec, a, b Chunk, merge func(av, bv V) V) Chunk {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	// Fast path: disjoint ranges concatenate payload bytes without decoding
	// a single element (values ride along byte-for-byte).
	if a.Last() < b.First() {
		return concatDisjoint(codec, a, b)
	}
	if b.Last() < a.First() {
		return concatDisjoint(codec, b, a)
	}
	switch codec {
	case Raw:
		return unionRawKV(a, b, merge)
	case Delta:
		return unionDeltaKV(a, b, merge)
	default:
		panic("encoding: unknown codec")
	}
}

// unionKVGeneric is the iterator-based streaming merge — the reference the
// specialized kernels must match byte for byte. It accepts any codec and
// stays the single implementation set-op correctness arguments are written
// against.
func unionKVGeneric[V Value](codec Codec, a, b Chunk, merge func(av, bv V) V) Chunk {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	if a.Last() < b.First() {
		return concatDisjoint(codec, a, b)
	}
	if b.Last() < a.First() {
		return concatDisjoint(codec, b, a)
	}
	ai, bi := NewIterKV[V](codec, a), NewIterKV[V](codec, b)
	out := NewBuilderKV[V](codec)
	defer out.Release()
	for ai.Valid() && bi.Valid() {
		av, bv := ai.Value(), bi.Value()
		switch {
		case av < bv:
			out.AppendKV(av, ai.Payload())
			ai.Next()
		case av > bv:
			out.AppendKV(bv, bi.Payload())
			bi.Next()
		default:
			v := bi.Payload()
			if merge != nil {
				v = merge(ai.Payload(), v)
			}
			out.AppendKV(av, v)
			ai.Next()
			bi.Next()
		}
	}
	ai.AppendRemaining(&out)
	bi.AppendRemaining(&out)
	return out.Chunk()
}

// DifferenceKV returns the (id, value) pairs of a whose ids are not present
// in b, as a streaming two-pointer merge.
func DifferenceKV[V Value](codec Codec, a, b Chunk) Chunk {
	if a.Empty() || b.Empty() {
		return a
	}
	if b.Last() < a.First() || b.First() > a.Last() {
		return a
	}
	ai, bi := NewIterKV[V](codec, a), NewIterKV[V](codec, b)
	out := NewBuilderKV[V](codec)
	defer out.Release()
	for ai.Valid() {
		av := ai.Value()
		for bi.Valid() && bi.Value() < av {
			bi.Next()
		}
		if !bi.Valid() {
			// b exhausted: the rest of a survives verbatim.
			ai.AppendRemaining(&out)
			break
		}
		if bi.Value() == av {
			ai.Next()
			continue
		}
		out.AppendKV(av, ai.Payload())
		ai.Next()
	}
	return out.Chunk()
}

// IntersectKV returns the pairs whose ids are common to a and b; the stored
// value is merge(aVal, bVal), or a's value when merge is nil.
func IntersectKV[V Value](codec Codec, a, b Chunk, merge func(av, bv V) V) Chunk {
	if a.Empty() || b.Empty() {
		return nil
	}
	if b.Last() < a.First() || b.First() > a.Last() {
		return nil
	}
	ai, bi := NewIterKV[V](codec, a), NewIterKV[V](codec, b)
	out := NewBuilderKV[V](codec)
	defer out.Release()
	for ai.Valid() && bi.Valid() {
		av, bv := ai.Value(), bi.Value()
		switch {
		case av < bv:
			ai.Next()
		case av > bv:
			bi.Next()
		default:
			v := ai.Payload()
			if merge != nil {
				v = merge(v, bi.Payload())
			}
			out.AppendKV(av, v)
			ai.Next()
			bi.Next()
		}
	}
	return out.Chunk()
}

// InsertKV returns a chunk with (x, v) added. When x is already present the
// chunk is returned unchanged unless overwrite is set, in which case the
// stored value is replaced. One streaming pass over pooled scratch.
func InsertKV[V Value](codec Codec, c Chunk, x uint32, v V, overwrite bool) Chunk {
	if c.Empty() {
		out := NewBuilderKV[V](codec)
		defer out.Release()
		out.AppendKV(x, v)
		return out.Chunk()
	}
	present := ContainsKV[V](codec, c, x)
	if present && !overwrite {
		return c
	}
	if !present && x > c.Last() {
		// Appending past the end is a disjoint concatenation of c and {x}.
		one := NewBuilderKV[V](codec)
		defer one.Release()
		one.AppendKV(x, v)
		return concatDisjoint(codec, c, one.Chunk())
	}
	out := NewBuilderKV[V](codec)
	defer out.Release()
	placed := false
	for it := NewIterKV[V](codec, c); it.Valid(); it.Next() {
		e := it.Value()
		if !placed && x <= e {
			out.AppendKV(x, v)
			placed = true
			if x == e {
				continue
			}
		}
		out.AppendKV(e, it.Payload())
	}
	if !placed {
		out.AppendKV(x, v)
	}
	return out.Chunk()
}

// RemoveKV returns a chunk with x removed (no-op if absent). One streaming
// pass over pooled scratch.
func RemoveKV[V Value](codec Codec, c Chunk, x uint32) Chunk {
	if c.Empty() || x < c.First() || x > c.Last() {
		return c
	}
	if !ContainsKV[V](codec, c, x) {
		return c
	}
	out := NewBuilderKV[V](codec)
	defer out.Release()
	for it := NewIterKV[V](codec, c); it.Valid(); it.Next() {
		if e := it.Value(); e != x {
			out.AppendKV(e, it.Payload())
		}
	}
	return out.Chunk()
}
