package encoding

import "unsafe"

// This file defines the payload side of the generic chunk format: every
// element of a chunk may carry a fixed-width value V interleaved with its
// id. V = struct{} (width 0) degenerates to the id-only format, byte for
// byte — the unweighted wrappers in chunk.go are instantiations at struct{}.
//
// Values are stored as their in-memory byte image. That requires V to be a
// fixed-size, pointer-free type (float32, uint64, small structs of such):
// pointers smuggled into a byte slice would be invisible to the garbage
// collector. The Value constraint cannot express "pointer-free", so the
// requirement is documented here and in DESIGN.md; all instantiations in
// this repository are scalars.

// Value is the constraint on per-element chunk payloads: a fixed-width,
// pointer-free, comparable type. struct{} selects the zero-width (id-only)
// format.
type Value interface{ comparable }

// valueWidth returns the encoded width of V in bytes.
func valueWidth[V Value]() int {
	var v V
	return int(unsafe.Sizeof(v))
}

// appendValue appends v's byte image to dst. Byte-wise copies through a
// stack local keep every access aligned, so this is portable to strict-
// alignment targets.
func appendValue[V Value](dst []byte, v V) []byte {
	w := int(unsafe.Sizeof(v))
	if w == 0 {
		return dst
	}
	n := len(dst)
	if cap(dst)-n < w {
		dst = append(dst, make([]byte, w)...)
	} else {
		dst = dst[:n+w]
	}
	copy(dst[n:n+w], unsafe.Slice((*byte)(unsafe.Pointer(&v)), w))
	return dst
}

// readValue decodes a value from the start of src.
func readValue[V Value](src []byte) V {
	var v V
	w := int(unsafe.Sizeof(v))
	if w != 0 {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&v)), w), src[:w])
	}
	return v
}

// valAt returns vals[i], or the zero value when vals is nil (the calling
// convention that lets id-only callers pass nil instead of a slice of
// zeros).
func valAt[V Value](vals []V, i int) V {
	if vals == nil {
		var z V
		return z
	}
	return vals[i]
}

// valRange returns vals[lo:hi], staying nil when vals is nil.
func valRange[V Value](vals []V, lo, hi int) []V {
	if vals == nil {
		return nil
	}
	return vals[lo:hi]
}
