package encoding

import (
	"testing"
	"testing/quick"

	"repro/internal/xhash"
)

// Tests of the payload-aware (KV) chunk core at V = float32, cross-checked
// against map references. The id-only behavior is covered transitively: the
// whole unweighted test suite runs through the same generic code at
// V = struct{}.

// weightOf derives a deterministic per-id weight.
func weightOf(x uint32) float32 {
	return float32(xhash.Mix32(x)%1000) / 8
}

func weightsFor(ids []uint32) []float32 {
	ws := make([]float32, len(ids))
	for i, x := range ids {
		ws[i] = weightOf(x)
	}
	return ws
}

func encodeW(codec Codec, ids []uint32) Chunk {
	return EncodeKV(codec, ids, weightsFor(ids))
}

func pairsOf(codec Codec, c Chunk) map[uint32]float32 {
	m := map[uint32]float32{}
	ForEachKV(codec, c, func(x uint32, v float32) bool {
		m[x] = v
		return true
	})
	return m
}

func TestKVEncodeDecodeRoundTrip(t *testing.T) {
	for _, codec := range codecs {
		if err := quick.Check(func(seed uint64) bool {
			ids := randomSorted(seed, 200)
			c := encodeW(codec, ids)
			gotIDs, gotVals := DecodeKV[float32](codec, c, nil, nil)
			if !equal(gotIDs, ids) || len(gotVals) != len(ids) {
				return false
			}
			for i, x := range ids {
				if gotVals[i] != weightOf(x) {
					return false
				}
			}
			if len(ids) == 0 {
				return c.Empty()
			}
			return c.Count() == len(ids) && c.First() == ids[0] && c.Last() == ids[len(ids)-1]
		}, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("codec %v: %v", codec, err)
		}
	}
}

func TestKVZeroWidthMatchesUnweightedBytes(t *testing.T) {
	// The struct{} instantiation must be byte-identical to the id-only
	// format: that is what makes the unweighted wrappers free.
	for _, codec := range codecs {
		for seed := uint64(0); seed < 50; seed++ {
			ids := randomSorted(seed, 300)
			a := Encode(codec, ids)
			b := EncodeKV[struct{}](codec, ids, nil)
			if len(a) != len(b) {
				t.Fatalf("codec %v: len %d != %d", codec, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("codec %v: byte %d differs", codec, i)
				}
			}
		}
	}
}

func TestKVFind(t *testing.T) {
	for _, codec := range codecs {
		ids := []uint32{3, 10, 11, 500, 70_000}
		c := encodeW(codec, ids)
		for _, x := range ids {
			if v, ok := FindKV[float32](codec, c, x); !ok || v != weightOf(x) {
				t.Fatalf("codec %v: FindKV(%d) = %v,%v", codec, x, v, ok)
			}
		}
		for _, x := range []uint32{0, 4, 499, 70_001} {
			if _, ok := FindKV[float32](codec, c, x); ok {
				t.Fatalf("codec %v: phantom %d", codec, x)
			}
		}
	}
}

func TestKVSplitProperty(t *testing.T) {
	for _, codec := range codecs {
		if err := quick.Check(func(seed uint64, k uint32) bool {
			ids := randomSorted(seed, 150)
			k %= 700
			c := encodeW(codec, ids)
			l, fv, found, r := SplitKV[float32](codec, c, k)
			lp, rp := pairsOf(codec, l), pairsOf(codec, r)
			wantFound := false
			for _, x := range ids {
				switch {
				case x < k:
					if lp[x] != weightOf(x) {
						return false
					}
					delete(lp, x)
				case x > k:
					if rp[x] != weightOf(x) {
						return false
					}
					delete(rp, x)
				default:
					wantFound = true
				}
			}
			if found != wantFound || len(lp) != 0 || len(rp) != 0 {
				return false
			}
			return !found || fv == weightOf(k)
		}, &quick.Config{MaxCount: 250}); err != nil {
			t.Fatalf("codec %v: %v", codec, err)
		}
	}
}

func TestKVUnionMergePolicies(t *testing.T) {
	for _, codec := range codecs {
		a := EncodeKV(codec, []uint32{1, 2, 3}, []float32{10, 20, 30})
		b := EncodeKV(codec, []uint32{2, 3, 4}, []float32{200, 300, 400})
		// nil merge: b (the newer side) wins.
		lww := pairsOf(codec, UnionKV[float32](codec, a, b, nil))
		want := map[uint32]float32{1: 10, 2: 200, 3: 300, 4: 400}
		for k, v := range want {
			if lww[k] != v {
				t.Fatalf("codec %v: lww[%d] = %v, want %v", codec, k, lww[k], v)
			}
		}
		// explicit merge: keep the first side.
		keepA := pairsOf(codec, UnionKV(codec, a, b, func(av, _ float32) float32 { return av }))
		want = map[uint32]float32{1: 10, 2: 20, 3: 30, 4: 400}
		for k, v := range want {
			if keepA[k] != v {
				t.Fatalf("codec %v: keepA[%d] = %v, want %v", codec, k, keepA[k], v)
			}
		}
	}
}

func TestKVSetOpsMatchReference(t *testing.T) {
	for _, codec := range codecs {
		if err := quick.Check(func(s1, s2 uint64) bool {
			ia, ib := randomSorted(s1, 250), randomSorted(s2, 250)
			// Give the two sides distinguishable weights to catch
			// wrong-side value leaks.
			va, vb := make([]float32, len(ia)), make([]float32, len(ib))
			for i, x := range ia {
				va[i] = float32(x) + 0.25
			}
			for i, x := range ib {
				vb[i] = float32(x) + 0.75
			}
			a, b := EncodeKV(codec, ia, va), EncodeKV(codec, ib, vb)
			inA, inB := map[uint32]bool{}, map[uint32]bool{}
			for _, x := range ia {
				inA[x] = true
			}
			for _, x := range ib {
				inB[x] = true
			}

			u := pairsOf(codec, UnionKV[float32](codec, a, b, nil))
			d := pairsOf(codec, DifferenceKV[float32](codec, a, b))
			in := pairsOf(codec, IntersectKV[float32](codec, a, b, nil))
			for x := uint32(0); x < 1100; x++ {
				switch {
				case inA[x] && inB[x]:
					if u[x] != float32(x)+0.75 || in[x] != float32(x)+0.25 {
						return false
					}
					if _, ok := d[x]; ok {
						return false
					}
				case inA[x]:
					if u[x] != float32(x)+0.25 || d[x] != float32(x)+0.25 {
						return false
					}
					if _, ok := in[x]; ok {
						return false
					}
				case inB[x]:
					if u[x] != float32(x)+0.75 {
						return false
					}
					if _, ok := d[x]; ok {
						return false
					}
					if _, ok := in[x]; ok {
						return false
					}
				default:
					if _, ok := u[x]; ok {
						return false
					}
				}
			}
			return len(u) == len(inA)+len(inB)-len(in)
		}, &quick.Config{MaxCount: 120}); err != nil {
			t.Fatalf("codec %v: %v", codec, err)
		}
	}
}

func TestKVInsertRemoveOverwrite(t *testing.T) {
	for _, codec := range codecs {
		var c Chunk
		c = InsertKV(codec, c, 10, float32(1), false)
		c = InsertKV(codec, c, 5, float32(2), false)
		c = InsertKV(codec, c, 20, float32(3), false)
		c = InsertKV(codec, c, 10, float32(99), false) // present, no overwrite
		if v, _ := FindKV[float32](codec, c, 10); v != 1 {
			t.Fatalf("codec %v: no-overwrite insert changed value to %v", codec, v)
		}
		c = InsertKV(codec, c, 10, float32(42), true) // overwrite
		if v, _ := FindKV[float32](codec, c, 10); v != 42 {
			t.Fatalf("codec %v: overwrite did not stick: %v", codec, v)
		}
		got := pairsOf(codec, c)
		want := map[uint32]float32{5: 2, 10: 42, 20: 3}
		if len(got) != len(want) {
			t.Fatalf("codec %v: %v", codec, got)
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("codec %v: got[%d] = %v want %v", codec, k, got[k], v)
			}
		}
		c = RemoveKV[float32](codec, c, 10)
		if _, ok := FindKV[float32](codec, c, 10); ok || c.Count() != 2 {
			t.Fatalf("codec %v: remove failed", codec)
		}
	}
}

func TestKVDisjointConcatRoundTrip(t *testing.T) {
	for _, codec := range codecs {
		a := EncodeKV(codec, []uint32{1, 3, 7}, []float32{1, 3, 7})
		b := EncodeKV(codec, []uint32{100, 101}, []float32{100, 101})
		u := pairsOf(codec, UnionKV[float32](codec, a, b, nil))
		for _, x := range []uint32{1, 3, 7, 100, 101} {
			if u[x] != float32(x) {
				t.Fatalf("codec %v: concat lost value of %d: %v", codec, x, u[x])
			}
		}
	}
}

// TestKVUnionAllocBound is the weighted analogue of the unweighted chunk
// alloc regressions: the payload must not reintroduce per-element
// allocations.
func TestKVUnionAllocBound(t *testing.T) {
	for _, codec := range codecs {
		ia := make([]uint32, 256)
		ib := make([]uint32, 256)
		for i := range ia {
			ia[i] = 3 * uint32(i)
			ib[i] = 3*uint32(i) + 1
		}
		a, b := encodeW(codec, ia), encodeW(codec, ib)
		UnionKV[float32](codec, a, b, nil) // warm the builder pool
		if n := testing.AllocsPerRun(100, func() {
			UnionKV[float32](codec, a, b, nil)
		}); n > 2 {
			t.Errorf("codec %v: weighted Union allocated %.1f/op, want <= 2", codec, n)
		}
	}
}

func TestKVIterAllocFree(t *testing.T) {
	for _, codec := range codecs {
		ids := make([]uint32, 256)
		for i := range ids {
			ids[i] = 2 * uint32(i)
		}
		c := encodeW(codec, ids)
		var sum float32
		if n := testing.AllocsPerRun(100, func() {
			for it := NewIterKV[float32](codec, c); it.Valid(); it.Next() {
				sum += it.Payload()
			}
		}); n != 0 {
			t.Errorf("codec %v: weighted Iter allocated %.1f/op, want 0", codec, n)
		}
	}
}
