// Package encoding implements the compressed chunk format used by C-trees
// (paper §3.2, "Integer C-trees"). A chunk is a sorted run of uint32 elements
// stored contiguously. Two codecs are provided:
//
//   - Delta: difference encoding — the gaps between consecutive elements are
//     encoded with a variable-length byte code (the same family of codes
//     Ligra+ uses). This is the "Aspen (DE)" configuration.
//   - Raw: elements stored as 4-byte little-endian words, no difference
//     encoding. This is the "Aspen (No DE)" configuration.
//
// Every chunk carries a fixed header with its element count and its first and
// last elements, so Count/First/Last are O(1). The paper relies on O(1)
// first/last probes to obtain the O(b log n) Split bound (§4.1, Appendix
// 10.3: "we store the first and last elements at the head of each chunk").
package encoding

import "encoding/binary"

// Codec selects the payload representation of a chunk.
type Codec uint8

const (
	// Delta stores byte-coded differences between consecutive elements.
	Delta Codec = iota
	// Raw stores 4-byte little-endian elements.
	Raw
)

// String returns the codec name.
func (c Codec) String() string {
	switch c {
	case Delta:
		return "delta"
	case Raw:
		return "raw"
	default:
		return "unknown"
	}
}

// headerSize is count(4) + first(4) + last(4) bytes.
const headerSize = 12

// Chunk is an immutable encoded run of sorted uint32 elements. A nil Chunk is
// the empty chunk. Chunks are value types; all operations return new chunks.
type Chunk []byte

// Count returns the number of elements in c in O(1).
func (c Chunk) Count() int {
	if len(c) == 0 {
		return 0
	}
	return int(binary.LittleEndian.Uint32(c[0:4]))
}

// Empty reports whether c holds no elements.
func (c Chunk) Empty() bool { return len(c) == 0 }

// First returns the smallest element in O(1). The chunk must be non-empty.
func (c Chunk) First() uint32 {
	return binary.LittleEndian.Uint32(c[4:8])
}

// Last returns the largest element in O(1). The chunk must be non-empty.
func (c Chunk) Last() uint32 {
	return binary.LittleEndian.Uint32(c[8:12])
}

// Bytes returns the total encoded size of the chunk in bytes, including the
// header. Used by the memory-accounting experiments (Tables 2, 5, 9).
func (c Chunk) Bytes() int { return len(c) }

// putUvarint appends x to dst using the standard varint byte code.
func putUvarint(dst []byte, x uint32) []byte {
	for x >= 0x80 {
		dst = append(dst, byte(x)|0x80)
		x >>= 7
	}
	return append(dst, byte(x))
}

// uvarint decodes a varint starting at c[i], returning the value and the next
// offset.
func uvarint(c []byte, i int) (uint32, int) {
	var x uint32
	var s uint
	for {
		b := c[i]
		i++
		if b < 0x80 {
			return x | uint32(b)<<s, i
		}
		x |= uint32(b&0x7f) << s
		s += 7
	}
}

// Encode builds a chunk from elems, which must be strictly increasing. The
// slice is not retained. A nil or empty input yields the empty chunk.
func Encode(codec Codec, elems []uint32) Chunk {
	n := len(elems)
	if n == 0 {
		return nil
	}
	var c []byte
	switch codec {
	case Raw:
		c = make([]byte, headerSize+4*n)
		for i, e := range elems {
			binary.LittleEndian.PutUint32(c[headerSize+4*i:], e)
		}
	case Delta:
		c = make([]byte, headerSize, headerSize+n+n/2)
		prev := elems[0]
		for _, e := range elems[1:] {
			c = putUvarint(c, e-prev)
			prev = e
		}
	default:
		panic("encoding: unknown codec")
	}
	binary.LittleEndian.PutUint32(c[0:4], uint32(n))
	binary.LittleEndian.PutUint32(c[4:8], elems[0])
	binary.LittleEndian.PutUint32(c[8:12], elems[n-1])
	return c
}

// Decode appends the elements of c to dst and returns the extended slice.
// Decoding is sequential within a chunk; chunks are O(b log n) long w.h.p. so
// this does not affect the asymptotic depth of tree operations (§3.2).
func (c Chunk) Decode(codec Codec, dst []uint32) []uint32 {
	n := c.Count()
	if n == 0 {
		return dst
	}
	switch codec {
	case Raw:
		for i := 0; i < n; i++ {
			dst = append(dst, binary.LittleEndian.Uint32(c[headerSize+4*i:]))
		}
	case Delta:
		v := c.First()
		dst = append(dst, v)
		i := headerSize
		for k := 1; k < n; k++ {
			var d uint32
			d, i = uvarint(c, i)
			v += d
			dst = append(dst, v)
		}
	default:
		panic("encoding: unknown codec")
	}
	return dst
}

// ForEach calls f on each element of c in increasing order. If f returns
// false iteration stops early.
func (c Chunk) ForEach(codec Codec, f func(x uint32) bool) {
	n := c.Count()
	if n == 0 {
		return
	}
	switch codec {
	case Raw:
		for i := 0; i < n; i++ {
			if !f(binary.LittleEndian.Uint32(c[headerSize+4*i:])) {
				return
			}
		}
	case Delta:
		v := c.First()
		if !f(v) {
			return
		}
		i := headerSize
		for k := 1; k < n; k++ {
			var d uint32
			d, i = uvarint(c, i)
			v += d
			if !f(v) {
				return
			}
		}
	default:
		panic("encoding: unknown codec")
	}
}

// Contains reports whether x is an element of c. O(1) rejection via the
// header bounds, O(chunk) scan otherwise.
func (c Chunk) Contains(codec Codec, x uint32) bool {
	if c.Empty() || x < c.First() || x > c.Last() {
		return false
	}
	found := false
	c.ForEach(codec, func(e uint32) bool {
		if e >= x {
			found = e == x
			return false
		}
		return true
	})
	return found
}

// Split partitions c around k: left receives elements < k, right elements
// > k, and found reports whether k was present. Cheap boundary cases (k
// outside [First, Last]) avoid decoding entirely. Raw chunks binary-search
// the payload in place and splice bytes; Delta chunks stream once through
// the gap code. Neither path materializes a []uint32.
func (c Chunk) Split(codec Codec, k uint32) (left Chunk, found bool, right Chunk) {
	if c.Empty() {
		return nil, false, nil
	}
	if k < c.First() {
		return nil, false, c
	}
	if k > c.Last() {
		return c, false, nil
	}
	if codec == Raw {
		return c.splitRaw(k)
	}
	return c.splitDelta(k)
}

// splitDelta splits a Delta chunk around k (which is within header bounds)
// with a single forward scan and two byte copies — no re-encoding. The left
// half's payload is a byte-prefix of c's payload (gaps between the kept
// elements are unchanged) and the right half's payload is a byte-suffix
// (ditto), so only the 12-byte headers need rewriting.
func (c Chunk) splitDelta(k uint32) (left Chunk, found bool, right Chunk) {
	n := c.Count()
	v := c.First()
	off := headerSize // offset of the gap following v
	i := 0            // index of v
	gapStart := headerSize
	var pv uint32 // elems[i-1], valid once i > 0
	for v < k {
		// k <= Last() guarantees another element exists.
		pv = v
		gapStart = off
		d, noff := uvarint(c, off)
		v += d
		off = noff
		i++
	}
	// v == elems[i] is the first element >= k; gapStart is where its gap
	// varint begins.
	if i > 0 {
		left = make(Chunk, gapStart)
		copy(left, c[:gapStart])
		binary.LittleEndian.PutUint32(left[0:4], uint32(i))
		binary.LittleEndian.PutUint32(left[8:12], pv)
	}
	if v == k {
		found = true
		if i+1 < n {
			d, noff := uvarint(c, off)
			right = make(Chunk, headerSize+len(c)-noff)
			copy(right[headerSize:], c[noff:])
			binary.LittleEndian.PutUint32(right[0:4], uint32(n-i-1))
			binary.LittleEndian.PutUint32(right[4:8], v+d)
			binary.LittleEndian.PutUint32(right[8:12], c.Last())
		}
		return left, true, right
	}
	right = make(Chunk, headerSize+len(c)-off)
	copy(right[headerSize:], c[off:])
	binary.LittleEndian.PutUint32(right[0:4], uint32(n-i))
	binary.LittleEndian.PutUint32(right[4:8], v)
	binary.LittleEndian.PutUint32(right[8:12], c.Last())
	return left, false, right
}

// splitRaw splits a Raw chunk around k (which is within header bounds) by
// binary search over the fixed-width payload, copying each half byte-wise.
func (c Chunk) splitRaw(k uint32) (left Chunk, found bool, right Chunk) {
	n := c.Count()
	word := func(i int) uint32 { return binary.LittleEndian.Uint32(c[headerSize+4*i:]) }
	// First index with element >= k.
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if word(mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo
	found = i < n && word(i) == k
	j := i
	if found {
		j++
	}
	if i > 0 {
		left = make(Chunk, headerSize+4*i)
		copy(left[headerSize:], c[headerSize+0:headerSize+4*i])
		binary.LittleEndian.PutUint32(left[0:4], uint32(i))
		binary.LittleEndian.PutUint32(left[4:8], c.First())
		binary.LittleEndian.PutUint32(left[8:12], word(i-1))
	}
	if j < n {
		right = make(Chunk, headerSize+4*(n-j))
		copy(right[headerSize:], c[headerSize+4*j:])
		binary.LittleEndian.PutUint32(right[0:4], uint32(n-j))
		binary.LittleEndian.PutUint32(right[4:8], word(j))
		binary.LittleEndian.PutUint32(right[8:12], c.Last())
	}
	return left, found, right
}

// Union merges two chunks (duplicates combined) into a new chunk via a
// streaming two-pointer merge: one allocation (the result), no intermediate
// decode.
func Union(codec Codec, a, b Chunk) Chunk {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	// Fast path: disjoint ranges concatenate payload bytes without decoding
	// a single element.
	if a.Last() < b.First() {
		return concatDisjoint(codec, a, b)
	}
	if b.Last() < a.First() {
		return concatDisjoint(codec, b, a)
	}
	ai, bi := NewIter(codec, a), NewIter(codec, b)
	out := NewBuilder(codec)
	defer out.Release()
	for ai.Valid() && bi.Valid() {
		av, bv := ai.Value(), bi.Value()
		switch {
		case av < bv:
			out.Append(av)
			ai.Next()
		case av > bv:
			out.Append(bv)
			bi.Next()
		default:
			out.Append(av)
			ai.Next()
			bi.Next()
		}
	}
	ai.AppendRemaining(&out)
	bi.AppendRemaining(&out)
	return out.Chunk()
}

// Difference returns the elements of a not present in b, as a streaming
// two-pointer merge.
func Difference(codec Codec, a, b Chunk) Chunk {
	if a.Empty() || b.Empty() {
		return a
	}
	if b.Last() < a.First() || b.First() > a.Last() {
		return a
	}
	ai, bi := NewIter(codec, a), NewIter(codec, b)
	out := NewBuilder(codec)
	defer out.Release()
	for ai.Valid() {
		av := ai.Value()
		for bi.Valid() && bi.Value() < av {
			bi.Next()
		}
		if !bi.Valid() {
			// b exhausted: the rest of a survives verbatim.
			ai.AppendRemaining(&out)
			break
		}
		if bi.Value() == av {
			ai.Next()
			continue
		}
		out.Append(av)
		ai.Next()
	}
	return out.Chunk()
}

// Intersect returns the elements common to a and b, as a streaming
// two-pointer merge.
func Intersect(codec Codec, a, b Chunk) Chunk {
	if a.Empty() || b.Empty() {
		return nil
	}
	if b.Last() < a.First() || b.First() > a.Last() {
		return nil
	}
	ai, bi := NewIter(codec, a), NewIter(codec, b)
	out := NewBuilder(codec)
	defer out.Release()
	for ai.Valid() && bi.Valid() {
		av, bv := ai.Value(), bi.Value()
		switch {
		case av < bv:
			ai.Next()
		case av > bv:
			bi.Next()
		default:
			out.Append(av)
			ai.Next()
			bi.Next()
		}
	}
	return out.Chunk()
}

// Insert returns a chunk with x added (no-op if already present). The new
// chunk is re-encoded in one streaming pass over pooled scratch.
func (c Chunk) Insert(codec Codec, x uint32) Chunk {
	if c.Empty() {
		out := NewBuilder(codec)
		defer out.Release()
		out.Append(x)
		return out.Chunk()
	}
	if c.Contains(codec, x) {
		return c
	}
	if x > c.Last() {
		// Appending past the end is a disjoint concatenation of c and {x}.
		one := NewBuilder(codec)
		defer one.Release()
		one.Append(x)
		return concatDisjoint(codec, c, one.Chunk())
	}
	out := NewBuilder(codec)
	defer out.Release()
	placed := false
	for it := NewIter(codec, c); it.Valid(); it.Next() {
		v := it.Value()
		if !placed && x < v {
			out.Append(x)
			placed = true
		}
		out.Append(v)
	}
	return out.Chunk()
}

// Remove returns a chunk with x removed (no-op if absent). One streaming
// pass over pooled scratch.
func (c Chunk) Remove(codec Codec, x uint32) Chunk {
	if c.Empty() || x < c.First() || x > c.Last() {
		return c
	}
	if !c.Contains(codec, x) {
		return c
	}
	out := NewBuilder(codec)
	defer out.Release()
	for it := NewIter(codec, c); it.Valid(); it.Next() {
		if v := it.Value(); v != x {
			out.Append(v)
		}
	}
	return out.Chunk()
}
