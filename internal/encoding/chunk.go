// Package encoding implements the compressed chunk format used by C-trees
// (paper §3.2, "Integer C-trees"). A chunk is a sorted run of uint32
// elements stored contiguously, each optionally carrying a fixed-width
// payload value (kv.go; the paper's format is the zero-width instantiation).
// Two codecs are provided:
//
//   - Delta: difference encoding — the gaps between consecutive elements are
//     encoded with a variable-length byte code (the same family of codes
//     Ligra+ uses). This is the "Aspen (DE)" configuration.
//   - Raw: elements stored as 4-byte little-endian words, no difference
//     encoding. This is the "Aspen (No DE)" configuration.
//
// Every chunk carries a fixed header with its element count and its first
// and last elements, so Count/First/Last are O(1). The paper relies on O(1)
// first/last probes to obtain the O(b log n) Split bound (§4.1, Appendix
// 10.3: "we store the first and last elements at the head of each chunk").
//
// This file holds the chunk type, the byte-level primitives, and the
// id-only (V = struct{}) wrappers over the generic core in kv.go — the
// historical unweighted API, preserved verbatim for set-typed callers.
package encoding

import "encoding/binary"

// Codec selects the payload representation of a chunk.
type Codec uint8

const (
	// Delta stores byte-coded differences between consecutive elements.
	Delta Codec = iota
	// Raw stores 4-byte little-endian elements.
	Raw
)

// String returns the codec name.
func (c Codec) String() string {
	switch c {
	case Delta:
		return "delta"
	case Raw:
		return "raw"
	default:
		return "unknown"
	}
}

// headerSize is count(4) + first(4) + last(4) bytes.
const headerSize = 12

// Chunk is an immutable encoded run of sorted uint32 elements, each
// optionally paired with a fixed-width value. A nil Chunk is the empty
// chunk. Chunks are value types; all operations return new chunks. The
// payload type is not recorded in the bytes: callers must decode a chunk
// with the same V it was encoded with (C-trees guarantee this through their
// Params discipline).
type Chunk []byte

// Count returns the number of elements in c in O(1).
func (c Chunk) Count() int {
	if len(c) == 0 {
		return 0
	}
	return int(binary.LittleEndian.Uint32(c[0:4]))
}

// Empty reports whether c holds no elements.
func (c Chunk) Empty() bool { return len(c) == 0 }

// First returns the smallest element in O(1). The chunk must be non-empty.
func (c Chunk) First() uint32 {
	return binary.LittleEndian.Uint32(c[4:8])
}

// Last returns the largest element in O(1). The chunk must be non-empty.
func (c Chunk) Last() uint32 {
	return binary.LittleEndian.Uint32(c[8:12])
}

// Bytes returns the total encoded size of the chunk in bytes, including the
// header and any value bytes. Used by the memory-accounting experiments
// (Tables 2, 5, 9).
func (c Chunk) Bytes() int { return len(c) }

// putUvarint appends x to dst using the standard varint byte code.
func putUvarint(dst []byte, x uint32) []byte {
	for x >= 0x80 {
		dst = append(dst, byte(x)|0x80)
		x >>= 7
	}
	return append(dst, byte(x))
}

// uvarint decodes a varint starting at c[i], returning the value and the
// next offset.
func uvarint(c []byte, i int) (uint32, int) {
	var x uint32
	var s uint
	for {
		b := c[i]
		i++
		if b < 0x80 {
			return x | uint32(b)<<s, i
		}
		x |= uint32(b&0x7f) << s
		s += 7
	}
}

// Encode builds an id-only chunk from elems, which must be strictly
// increasing. The slice is not retained. A nil or empty input yields the
// empty chunk.
func Encode(codec Codec, elems []uint32) Chunk {
	return EncodeKV[struct{}](codec, elems, nil)
}

// Decode appends the elements of c to dst and returns the extended slice.
// Decoding is sequential within a chunk; chunks are O(b log n) long w.h.p.
// so this does not affect the asymptotic depth of tree operations (§3.2).
func (c Chunk) Decode(codec Codec, dst []uint32) []uint32 {
	ForEachIDs[struct{}](codec, c, func(x uint32) bool {
		dst = append(dst, x)
		return true
	})
	return dst
}

// ForEach calls f on each element of c in increasing order. If f returns
// false iteration stops early.
func (c Chunk) ForEach(codec Codec, f func(x uint32) bool) {
	ForEachIDs[struct{}](codec, c, f)
}

// Contains reports whether x is an element of c. O(1) rejection via the
// header bounds, O(chunk) scan otherwise.
func (c Chunk) Contains(codec Codec, x uint32) bool {
	return ContainsKV[struct{}](codec, c, x)
}

// Split partitions c around k: left receives elements < k, right elements
// > k, and found reports whether k was present.
func (c Chunk) Split(codec Codec, k uint32) (left Chunk, found bool, right Chunk) {
	l, _, f, r := SplitKV[struct{}](codec, c, k)
	return l, f, r
}

// Union merges two id-only chunks (duplicates combined) into a new chunk.
func Union(codec Codec, a, b Chunk) Chunk {
	return UnionKV[struct{}](codec, a, b, nil)
}

// Difference returns the elements of a not present in b.
func Difference(codec Codec, a, b Chunk) Chunk {
	return DifferenceKV[struct{}](codec, a, b)
}

// Intersect returns the elements common to a and b.
func Intersect(codec Codec, a, b Chunk) Chunk {
	return IntersectKV[struct{}](codec, a, b, nil)
}

// Insert returns a chunk with x added (no-op if already present).
func (c Chunk) Insert(codec Codec, x uint32) Chunk {
	return InsertKV[struct{}](codec, c, x, struct{}{}, false)
}

// Remove returns a chunk with x removed (no-op if absent).
func (c Chunk) Remove(codec Codec, x uint32) Chunk {
	return RemoveKV[struct{}](codec, c, x)
}
