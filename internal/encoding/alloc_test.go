package encoding

import "testing"

// Allocation regression tests for the zero-allocation chunk pipeline. The
// bounds are deliberately exact where the design guarantees exactness
// (ForEach, Iter: zero) and small constants where a single result chunk
// must be allocated (set ops: the output copy, plus at most one pool refill
// when the GC has emptied the sync.Pool between runs).

func benchChunks(codec Codec) (a, b Chunk) {
	ae := make([]uint32, 0, 256)
	be := make([]uint32, 0, 256)
	for i := uint32(0); i < 256; i++ {
		ae = append(ae, 3*i)
		be = append(be, 3*i+1)
	}
	return Encode(codec, ae), Encode(codec, be)
}

func TestForEachAllocFree(t *testing.T) {
	for _, codec := range codecs {
		c, _ := benchChunks(codec)
		var sum uint32
		f := func(x uint32) bool { sum += x; return true }
		if n := testing.AllocsPerRun(100, func() {
			c.ForEach(codec, f)
		}); n != 0 {
			t.Errorf("codec %v: ForEach allocated %.1f/op, want 0", codec, n)
		}
	}
}

func TestIterAllocFree(t *testing.T) {
	for _, codec := range codecs {
		c, _ := benchChunks(codec)
		var sum uint32
		if n := testing.AllocsPerRun(100, func() {
			for it := NewIter(codec, c); it.Valid(); it.Next() {
				sum += it.Value()
			}
		}); n != 0 {
			t.Errorf("codec %v: Iter allocated %.1f/op, want 0", codec, n)
		}
	}
}

func TestUnionAllocBound(t *testing.T) {
	for _, codec := range codecs {
		a, b := benchChunks(codec)
		Union(codec, a, b) // warm the builder pool
		if n := testing.AllocsPerRun(100, func() {
			Union(codec, a, b)
		}); n > 2 {
			t.Errorf("codec %v: Union allocated %.1f/op, want <= 2", codec, n)
		}
	}
}

func TestUnionDisjointAllocBound(t *testing.T) {
	for _, codec := range codecs {
		a, _ := benchChunks(codec)
		be := make([]uint32, 256)
		for i := range be {
			be[i] = 100_000 + uint32(i)
		}
		b := Encode(codec, be)
		if n := testing.AllocsPerRun(100, func() {
			Union(codec, a, b)
		}); n > 1 {
			t.Errorf("codec %v: disjoint Union allocated %.1f/op, want <= 1", codec, n)
		}
	}
}

func TestDifferenceAllocBound(t *testing.T) {
	for _, codec := range codecs {
		a, b := benchChunks(codec)
		Difference(codec, a, b) // warm the builder pool
		if n := testing.AllocsPerRun(100, func() {
			Difference(codec, a, b)
		}); n > 2 {
			t.Errorf("codec %v: Difference allocated %.1f/op, want <= 2", codec, n)
		}
	}
}
