package encoding

import (
	"bytes"
	"testing"

	"repro/internal/xhash"
)

// kvPair builds aligned (ids, vals) inputs deterministically from a seed.
func kvPair(seed uint64, maxLen int) ([]uint32, []float32) {
	ids := randomSorted(seed, maxLen)
	vals := make([]float32, len(ids))
	for i := range vals {
		vals[i] = float32(xhash.Seeded(seed, uint64(i))%1000) / 10
	}
	return ids, vals
}

// TestUnionFastMatchesGeneric holds the open-coded Raw and Delta union
// kernels byte-for-byte equal to the iterator-based generic merge, across
// payload widths, merge policies and overlap shapes (the generic path is
// the correctness reference the kernels were derived from).
func TestUnionFastMatchesGeneric(t *testing.T) {
	addW := func(a, b float32) float32 { return a + b }
	for _, codec := range codecs {
		for seed := uint64(0); seed < 200; seed++ {
			aIDs, aVals := kvPair(seed, 300)
			bIDs, bVals := kvPair(seed+10_000, 300)

			// Width 0 (id-only).
			a0 := EncodeKV[struct{}](codec, aIDs, nil)
			b0 := EncodeKV[struct{}](codec, bIDs, nil)
			got := UnionKV[struct{}](codec, a0, b0, nil)
			want := unionKVGeneric[struct{}](codec, a0, b0, nil)
			if !bytes.Equal(got, want) {
				t.Fatalf("codec=%v seed=%d id-only union bytes differ", codec, seed)
			}

			// Width 4 (float32 payload), LWW and custom merge.
			a4 := EncodeKV(codec, aIDs, aVals)
			b4 := EncodeKV(codec, bIDs, bVals)
			for _, merge := range []func(float32, float32) float32{nil, addW} {
				got := UnionKV(codec, a4, b4, merge)
				want := unionKVGeneric(codec, a4, b4, merge)
				if !bytes.Equal(got, want) {
					t.Fatalf("codec=%v seed=%d weighted union bytes differ (merge=%v)",
						codec, seed, merge != nil)
				}
			}
		}
	}
}

// TestUnionFastRunShapes exercises the run-copy paths explicitly: block-
// interleaved inputs (maximal word-wise copies in the Raw kernel, long
// byte-copy drains in the Delta kernel) and single-element overlaps.
func TestUnionFastRunShapes(t *testing.T) {
	shapes := []struct {
		name string
		a, b []uint32
	}{
		{"blocks", []uint32{1, 2, 3, 100, 101, 102, 500}, []uint32{50, 51, 52, 200, 201, 202}},
		{"contained", []uint32{10, 90}, []uint32{20, 30, 40, 50, 60, 70, 80}},
		{"sameset", []uint32{5, 6, 7, 8}, []uint32{5, 6, 7, 8}},
		{"alternating", []uint32{0, 2, 4, 6, 8}, []uint32{1, 3, 5, 7, 9}},
		{"touching", []uint32{1, 2, 3}, []uint32{3, 4, 5}},
		{"singleton", []uint32{7}, []uint32{3, 7, 11}},
	}
	for _, codec := range codecs {
		for _, s := range shapes {
			a := Encode(codec, s.a)
			b := Encode(codec, s.b)
			got := Union(codec, a, b)
			want := unionKVGeneric[struct{}](codec, a, b, nil)
			if !bytes.Equal(got, want) {
				t.Fatalf("codec=%v shape=%s: open-coded union diverges from generic", codec, s.name)
			}
			if gotRev := Union(codec, b, a); !equal(gotRev.Decode(codec, nil), got.Decode(codec, nil)) {
				t.Fatalf("codec=%v shape=%s: union not symmetric on ids", codec, s.name)
			}
		}
	}
}

// BenchmarkChunkUnionGeneric pins the reference merge loop so the open-coded
// kernels (BenchmarkChunkUnionFast on identical inputs, and the existing
// BenchmarkChunkUnion* through UnionKV) have an in-tree baseline.
func BenchmarkChunkUnionGeneric(b *testing.B) {
	aIDs := randomSorted(3, 400)
	bIDs := randomSorted(4, 400)
	for _, codec := range codecs {
		b.Run(codec.String(), func(b *testing.B) {
			ac := Encode(codec, aIDs)
			bc := Encode(codec, bIDs)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				unionKVGeneric[struct{}](codec, ac, bc, nil)
			}
		})
	}
}

// BenchmarkChunkUnionFast measures the dispatched open-coded kernels on the
// same inputs as BenchmarkChunkUnionGeneric.
func BenchmarkChunkUnionFast(b *testing.B) {
	aIDs := randomSorted(3, 400)
	bIDs := randomSorted(4, 400)
	for _, codec := range codecs {
		b.Run(codec.String(), func(b *testing.B) {
			ac := Encode(codec, aIDs)
			bc := Encode(codec, bIDs)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Union(codec, ac, bc)
			}
		})
	}
}
