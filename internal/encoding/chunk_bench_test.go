package encoding

import "testing"

func benchChunk(codec Codec, n int) Chunk {
	elems := make([]uint32, n)
	for i := range elems {
		elems[i] = uint32(3*i + i%5)
	}
	return Encode(codec, elems)
}

func BenchmarkEncodeDelta(b *testing.B) {
	elems := make([]uint32, 256)
	for i := range elems {
		elems[i] = uint32(3 * i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(Delta, elems)
	}
}

func BenchmarkDecodeDelta(b *testing.B) {
	c := benchChunk(Delta, 256)
	buf := make([]uint32, 0, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.Decode(Delta, buf[:0])
	}
}

func BenchmarkDecodeRaw(b *testing.B) {
	c := benchChunk(Raw, 256)
	buf := make([]uint32, 0, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.Decode(Raw, buf[:0])
	}
}

func BenchmarkChunkUnion(b *testing.B) {
	a := benchChunk(Delta, 256)
	c := benchChunk(Delta, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Union(Delta, a, c)
	}
}
