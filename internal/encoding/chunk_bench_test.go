package encoding

import "testing"

func benchChunk(codec Codec, n int) Chunk {
	elems := make([]uint32, n)
	for i := range elems {
		// Strictly increasing with irregular gaps (the old 3*i + i%5
		// formula was non-monotonic, violating Encode's contract).
		elems[i] = uint32(4*i + i%3)
	}
	return Encode(codec, elems)
}

func BenchmarkEncodeDelta(b *testing.B) {
	elems := make([]uint32, 256)
	for i := range elems {
		elems[i] = uint32(3 * i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(Delta, elems)
	}
}

func BenchmarkDecodeDelta(b *testing.B) {
	c := benchChunk(Delta, 256)
	buf := make([]uint32, 0, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.Decode(Delta, buf[:0])
	}
}

func BenchmarkDecodeRaw(b *testing.B) {
	c := benchChunk(Raw, 256)
	buf := make([]uint32, 0, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.Decode(Raw, buf[:0])
	}
}

func BenchmarkChunkUnion(b *testing.B) {
	a := benchChunk(Delta, 256)
	elems := make([]uint32, 256)
	for i := range elems {
		elems[i] = uint32(4*i + 2) // interleaves with benchChunk's elements
	}
	c := Encode(Delta, elems)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Union(Delta, a, c)
	}
}

func BenchmarkChunkUnionDisjoint(b *testing.B) {
	a := benchChunk(Delta, 256)
	elems := make([]uint32, 256)
	for i := range elems {
		elems[i] = 100_000 + uint32(4*i)
	}
	c := Encode(Delta, elems)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Union(Delta, a, c)
	}
}

func BenchmarkChunkDifference(b *testing.B) {
	a := benchChunk(Delta, 256)
	c := benchChunk(Delta, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Difference(Delta, a, c)
	}
}

func BenchmarkChunkIter(b *testing.B) {
	for _, codec := range codecs {
		b.Run(codec.String(), func(b *testing.B) {
			c := benchChunk(codec, 256)
			b.ReportAllocs()
			var sum uint32
			for i := 0; i < b.N; i++ {
				for it := NewIter(codec, c); it.Valid(); it.Next() {
					sum += it.Value()
				}
			}
			_ = sum
		})
	}
}
